GO ?= go

# benchgate baseline file; override to pin a checked-in baseline.
BENCH_BASELINE ?= BENCH_baseline.json

.PHONY: all build test vet fmt-check race check benchgate attr-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

check: build vet fmt-check test

# benchgate compares the analytic benchmark sweep against the baseline,
# writing one first if none exists (so a fresh checkout self-gates).
benchgate:
	@if [ ! -f "$(BENCH_BASELINE)" ]; then \
		echo "benchgate: no $(BENCH_BASELINE); writing one from this revision"; \
		$(GO) run ./cmd/runbench -out "$(BENCH_BASELINE)"; \
	fi
	$(GO) run ./cmd/runbench -compare "$(BENCH_BASELINE)" -tolerance 0.05

# attr-smoke proves the cost-attribution path end to end: compile and
# simulate one benchmark with -blame and a Chrome trace, assert the
# blame table and the superstep lane came out non-empty, and run the
# exposition tests covering the new Prometheus attribution families
# (gcao_superstep_hrelation_bytes, gcao_site_comm_bytes_total) through
# CheckPromText.
attr-smoke:
	@mkdir -p out
	$(GO) run ./cmd/commprof -bench shallow -procs 4 -version comb \
		-blame 5 -trace-out out/attr-trace.json | tee out/attr-blame.txt
	@grep -q 'communication blame: top' out/attr-blame.txt || { echo "attr-smoke: no blame table"; exit 1; }
	@grep -Eq 'critical path: [1-9][0-9]* of' out/attr-blame.txt || { echo "attr-smoke: empty critical path"; exit 1; }
	@grep -q 'comb/g' out/attr-blame.txt || { echo "attr-smoke: no blamed placement sites"; exit 1; }
	@grep -q '"tid":2' out/attr-trace.json || { echo "attr-smoke: trace lacks the superstep lane"; exit 1; }
	@grep -q '"h_in"' out/attr-trace.json || { echo "attr-smoke: trace lacks h-relations"; exit 1; }
	$(GO) test ./internal/obs -run 'TestRegistryAttributionFamilies|TestHistogramBucketBoundaries' -count=1
	$(GO) test ./internal/spmd -run 'TestAttributionMatchesSequential|TestBlameLinksToGreedyDecision' -count=1
	@echo "attr-smoke: ok (trace at out/attr-trace.json)"
