GO ?= go

# benchgate baseline file; override to pin a checked-in baseline.
BENCH_BASELINE ?= BENCH_baseline.json

.PHONY: all build test vet fmt-check race check benchgate

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

check: build vet fmt-check test

# benchgate compares the analytic benchmark sweep against the baseline,
# writing one first if none exists (so a fresh checkout self-gates).
benchgate:
	@if [ ! -f "$(BENCH_BASELINE)" ]; then \
		echo "benchgate: no $(BENCH_BASELINE); writing one from this revision"; \
		$(GO) run ./cmd/runbench -out "$(BENCH_BASELINE)"; \
	fi
	$(GO) run ./cmd/runbench -compare "$(BENCH_BASELINE)" -tolerance 0.05
