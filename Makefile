GO ?= go

.PHONY: all build test vet fmt-check race check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

check: build vet fmt-check test
