GO ?= go

# benchgate baseline file; override to pin a checked-in baseline.
BENCH_BASELINE ?= BENCH_baseline.json

# optimality-gap history store; the checked-in seed makes the first CI
# run compare against a real prior revision.
GAP_HISTORY ?= ci/bench-history.jsonl

.PHONY: all build test vet fmt-check race check benchgate gapreport attr-smoke obs-smoke native-smoke nativeprof-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (and lists the offenders) if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

check: build vet fmt-check test

# benchgate compares the analytic benchmark sweep against the baseline,
# writing one first if none exists (so a fresh checkout self-gates).
benchgate:
	@if [ ! -f "$(BENCH_BASELINE)" ]; then \
		echo "benchgate: no $(BENCH_BASELINE); writing one from this revision"; \
		$(GO) run ./cmd/runbench -out "$(BENCH_BASELINE)"; \
	fi
	$(GO) run ./cmd/runbench -compare "$(BENCH_BASELINE)" -tolerance 0.05

# gapreport appends this revision's sweep to the bench-history store,
# renders the optimality-gap dashboard (terminal + HTML artifact), and
# fails if any benchmark's gap ratio regressed past tolerance vs the
# previous recorded revision. Gates on gap_ratio only — byte counts
# over the analytic model are arch-deterministic where seconds aren't.
gapreport:
	@mkdir -p out
	$(GO) run ./cmd/runbench -history "$(GAP_HISTORY)"
	$(GO) run ./cmd/gcaoreport -history "$(GAP_HISTORY)" -check -html out/gap-dashboard.html

# attr-smoke proves the cost-attribution path end to end: compile and
# simulate one benchmark with -blame and a Chrome trace, assert the
# blame table and the superstep lane came out non-empty, and run the
# exposition tests covering the new Prometheus attribution families
# (gcao_superstep_hrelation_bytes, gcao_site_comm_bytes_total) through
# CheckPromText.
attr-smoke:
	@mkdir -p out
	$(GO) run ./cmd/commprof -bench shallow -procs 4 -version comb \
		-blame 5 -trace-out out/attr-trace.json | tee out/attr-blame.txt
	@grep -q 'communication blame: top' out/attr-blame.txt || { echo "attr-smoke: no blame table"; exit 1; }
	@grep -Eq 'critical path: [1-9][0-9]* of' out/attr-blame.txt || { echo "attr-smoke: empty critical path"; exit 1; }
	@grep -q 'comb/g' out/attr-blame.txt || { echo "attr-smoke: no blamed placement sites"; exit 1; }
	@grep -q '"tid":2' out/attr-trace.json || { echo "attr-smoke: trace lacks the superstep lane"; exit 1; }
	@grep -q '"h_in"' out/attr-trace.json || { echo "attr-smoke: trace lacks h-relations"; exit 1; }
	$(GO) test ./internal/obs -run 'TestRegistryAttributionFamilies|TestHistogramBucketBoundaries' -count=1
	$(GO) test ./internal/spmd -run 'TestAttributionMatchesSequential|TestBlameLinksToGreedyDecision' -count=1
	@echo "attr-smoke: ok (trace at out/attr-trace.json)"

# obs-smoke proves the request-tracing path end to end against a live
# daemon: compile once, take the response's X-Request-Id, resolve it at
# /debug/flightrecorder/{id} to a span tree with the expected phases,
# pull one /debug/live snapshot through gcaotop (rendered and raw JSON,
# the JSON lands in out/ for CI artifacts), and assert /metrics carries
# the RED and build-info families.
obs-smoke:
	@mkdir -p out
	$(GO) build -o out/gcaod ./cmd/gcaod
	$(GO) build -o out/gcaotop ./cmd/gcaotop
	@set -e; \
	./out/gcaod -addr 127.0.0.1:8377 -log-level warn 2>out/obs-gcaod.log & \
	daemon=$$!; \
	trap 'kill $$daemon 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:8377/healthz >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	printf '%s' '{"source": "routine smooth(n, steps)\nreal a(0:n+1, 0:n+1), b(0:n+1, 0:n+1)\n!hpf$$ distribute (block, block) :: a, b\ndo it = 1, steps\ndo i = 1, n\ndo j = 1, n\nb(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))\nenddo\nenddo\nenddo\nend\n", "params": {"n": 16, "steps": 2}, "procs": 4, "estimate": true}' > out/obs-req.json; \
	curl -fsS -D out/obs-headers.txt -X POST -H 'Content-Type: application/json' \
		--data @out/obs-req.json http://127.0.0.1:8377/compile > out/obs-compile.json; \
	grep -qi '^x-request-id:' out/obs-headers.txt || { echo "obs-smoke: no X-Request-Id header"; exit 1; }; \
	grep -qi '^traceparent: 00-' out/obs-headers.txt || { echo "obs-smoke: no traceparent header"; exit 1; }; \
	rid=$$(grep -i '^x-request-id:' out/obs-headers.txt | tr -d '\r' | awk '{print $$2}'); \
	echo "obs-smoke: request id $$rid"; \
	curl -fsS "http://127.0.0.1:8377/debug/flightrecorder/$$rid" > out/obs-flight.json; \
	grep -q '"phases"' out/obs-flight.json || { echo "obs-smoke: flight record lacks phases"; exit 1; }; \
	grep -q '"compile"' out/obs-flight.json || { echo "obs-smoke: flight record lacks a compile phase"; exit 1; }; \
	grep -q '"queue.wait"' out/obs-flight.json || { echo "obs-smoke: flight record lacks queue wait"; exit 1; }; \
	grep -q '"trace"' out/obs-flight.json || { echo "obs-smoke: flight record lacks the span tree"; exit 1; }; \
	./out/gcaotop -addr http://127.0.0.1:8377 -once | tee out/obs-top.txt; \
	grep -q 'req/s' out/obs-top.txt || { echo "obs-smoke: gcaotop rendered nothing"; exit 1; }; \
	./out/gcaotop -addr http://127.0.0.1:8377 -once -json > out/obs-live.json; \
	grep -q '"unix_ns"' out/obs-live.json || { echo "obs-smoke: live snapshot empty"; exit 1; }; \
	curl -fsS http://127.0.0.1:8377/metrics > out/obs-metrics.txt; \
	grep -q 'gcao_build_info{version=' out/obs-metrics.txt || { echo "obs-smoke: no build info metric"; exit 1; }; \
	grep -q 'gcao_http_requests_total{code="200",route="/compile"} 1' out/obs-metrics.txt || { echo "obs-smoke: no RED counter"; exit 1; }; \
	grep -q 'gcao_queue_wait_seconds_count{pool="compile"}' out/obs-metrics.txt || { echo "obs-smoke: no queue wait histogram"; exit 1; }; \
	kill $$daemon 2>/dev/null || true; \
	wait $$daemon 2>/dev/null || true
	$(GO) test ./cmd/gcaod -run 'TestFlightRecorderResolvesCompile|TestLiveSSE|TestTraceparentRoundTrip' -count=1
	$(GO) test ./cmd/gcaotop -count=1
	@echo "obs-smoke: ok (live snapshot at out/obs-live.json)"

# native-smoke proves the native execution backend end to end: compile
# the shallow benchmark, run it as real goroutines, verify bit-for-bit
# against the BSP simulator from the command line, then run the
# exhaustive native-vs-simulator matrix and the oversubscription
# regression test. Finally it measures the steady-state allocation
# benchmark (gravity, P=16, engine reuse) and fails if allocs/op
# exceeds the checked-in budget in ci/native-alloc-budget.txt — the
# recycled message fabric is the point of the backend, so a hot path
# that starts allocating again is a regression.
native-smoke:
	@mkdir -p out
	$(GO) run ./cmd/runbench -functional -backend native -fig b | tee out/native-smoke.txt
	@grep -q 'native ok, bit-identical to simulator' out/native-smoke.txt || { echo "native-smoke: no native verification line"; exit 1; }
	@n=$$(grep -c 'native ok, bit-identical to simulator' out/native-smoke.txt); \
	[ "$$n" -ge 6 ] || { echo "native-smoke: only $$n of 6 benchmarks verified"; exit 1; }
	$(GO) test ./internal/native -run 'TestNativeMatchesSimulator|TestNativeOversubscription' -count=1
	$(GO) test -short -run XXX -bench BenchmarkNativeAlloc -benchtime 3x -benchmem . | tee out/native-alloc.txt
	@budget=$$(cat ci/native-alloc-budget.txt); \
	allocs=$$(awk '/^BenchmarkNativeAlloc/ {for (i=1; i<NF; i++) if ($$(i+1) == "allocs/op") print $$i}' out/native-alloc.txt); \
	[ -n "$$allocs" ] || { echo "native-smoke: no allocs/op in benchmark output"; exit 1; }; \
	[ "$$allocs" -le "$$budget" ] || { echo "native-smoke: $$allocs allocs/op exceeds budget $$budget (ci/native-alloc-budget.txt)"; exit 1; }; \
	echo "native-smoke: $$allocs allocs/op within budget $$budget"
	@echo "native-smoke: ok"

# nativeprof-smoke proves the native runtime profiler end to end:
# profile a real gravity run at P=16 through commprof, assert the
# per-processor phase heatmap and skew line rendered, assert the
# least-squares calibration against the simulator's attribution record
# fitted a finite positive g, assert the Chrome trace carries the
# native processor lanes (process 2), run the bit-identity and fold
# tests (the latter under the race detector), and finally re-measure
# the profiling-OFF allocation benchmark against the checked-in budget
# — an armed-but-disabled profiler must cost nothing on the warm path.
nativeprof-smoke:
	@mkdir -p out
	$(GO) run ./cmd/commprof -bench gravity -n 12 -procs 16 -version comb \
		-native -trace-out out/nativeprof-trace.json | tee out/nativeprof.txt
	@grep -q '== native run: 16 procs' out/nativeprof.txt || { echo "nativeprof-smoke: no native run section"; exit 1; }
	@grep -Eq 'skew [0-9]+\.[0-9]+x' out/nativeprof.txt || { echo "nativeprof-smoke: no skew line"; exit 1; }
	@grep -Eq 'fitted +L=[0-9.e+-]+s +g=[0-9][0-9.e+-]*s/B' out/nativeprof.txt || { echo "nativeprof-smoke: fitted g missing, non-finite or negative"; exit 1; }
	@grep -q '"pid":2' out/nativeprof-trace.json || { echo "nativeprof-smoke: trace lacks native processor lanes"; exit 1; }
	$(GO) test ./internal/native -run 'TestNativeProfileBitIdentity|TestNativeProfileTilesWallTime|TestNativeProfilingOffCostsNothing' -count=1
	$(GO) test -race ./internal/native -run 'TestNativeProfileFoldRace' -count=1
	$(GO) test -short -run XXX -bench BenchmarkNativeAlloc -benchtime 3x -benchmem . | tee out/nativeprof-alloc.txt
	@budget=$$(cat ci/native-alloc-budget.txt); \
	allocs=$$(awk '/^BenchmarkNativeAlloc/ {for (i=1; i<NF; i++) if ($$(i+1) == "allocs/op") print $$i}' out/nativeprof-alloc.txt); \
	[ -n "$$allocs" ] || { echo "nativeprof-smoke: no allocs/op in benchmark output"; exit 1; }; \
	[ "$$allocs" -le "$$budget" ] || { echo "nativeprof-smoke: $$allocs allocs/op exceeds budget $$budget with the profiler compiled in"; exit 1; }; \
	echo "nativeprof-smoke: $$allocs allocs/op within budget $$budget (profiling off)"
	@echo "nativeprof-smoke: ok (trace at out/nativeprof-trace.json)"
