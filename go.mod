module gcao

go 1.22
