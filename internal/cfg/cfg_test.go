package cfg

import (
	"testing"

	"gcao/internal/ast"
	"gcao/internal/parser"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	r, err := parser.ParseRoutine(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := Build(r.Body)
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return g
}

func TestStraightLine(t *testing.T) {
	g := build(t, `
routine f()
real x, y
x = 1
y = 2
end
`)
	if len(g.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(g.Stmts))
	}
	if g.Stmts[0].Block != g.EntryBlock || g.Stmts[1].Index != 1 {
		t.Error("straight-line statements should share the entry block")
	}
	if len(g.Loops) != 0 {
		t.Error("no loops expected")
	}
}

func TestLoopAugmentation(t *testing.T) {
	g := build(t, `
routine f()
real x
do i = 1, 4
x = 1
enddo
x = 2
end
`)
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d", len(g.Loops))
	}
	l := g.Loops[0]
	if l.PreHeader.Kind != PreHeader || l.Header.Kind != Header || l.PostExit.Kind != PostExit {
		t.Fatal("augmented node kinds wrong")
	}
	// Preheader -> header and the zero-trip edge preheader -> postexit.
	if len(l.PreHeader.Succs) != 2 || l.PreHeader.Succs[0] != l.Header || l.PreHeader.Succs[1] != l.PostExit {
		t.Errorf("preheader succs = %v", l.PreHeader.Succs)
	}
	// Header branches to the body and the postexit.
	if len(l.Header.Succs) != 2 || l.Header.Succs[1] != l.PostExit {
		t.Errorf("header succs = %v", l.Header.Succs)
	}
	// Backedge: some block inside the loop returns to the header.
	foundBack := false
	for _, p := range l.Header.Preds {
		if p != l.PreHeader {
			foundBack = true
		}
	}
	if !foundBack {
		t.Error("missing backedge to header")
	}
	// The statement after the loop lands in the postexit block.
	last := g.Stmts[len(g.Stmts)-1]
	if last.Block != l.PostExit {
		t.Errorf("trailing statement in %v, want postexit", last.Block)
	}
	// Nesting levels: loop depth 1; header belongs to the loop.
	if l.Depth != 1 || l.Header.NL() != 1 || l.PreHeader.NL() != 0 {
		t.Errorf("depths: loop=%d header=%d pre=%d", l.Depth, l.Header.NL(), l.PreHeader.NL())
	}
}

func TestNestedLoops(t *testing.T) {
	g := build(t, `
routine f()
real x
do i = 1, 2
do j = 1, 3
x = 1
enddo
enddo
end
`)
	if len(g.Loops) != 2 {
		t.Fatalf("loops = %d", len(g.Loops))
	}
	outer, inner := g.Loops[0], g.Loops[1]
	if inner.Parent != outer || outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("nesting wrong: %+v %+v", outer, inner)
	}
	if !outer.Contains(inner) || inner.Contains(outer) {
		t.Error("Contains misbehaves")
	}
	st := g.Stmts[0]
	if st.NL() != 2 || st.LoopAtLevel(1) != outer || st.LoopAtLevel(2) != inner || st.LoopAtLevel(3) != nil {
		t.Errorf("statement loops = %v", st.Loops)
	}
	// Inner loop's preheader belongs to the outer loop.
	if inner.PreHeader.Loop != outer {
		t.Error("inner preheader should belong to the outer loop")
	}
}

func TestIfBranch(t *testing.T) {
	g := build(t, `
routine f()
real x
if (x > 0) then
x = 1
else
x = 2
endif
x = 3
end
`)
	entry := g.EntryBlock
	if entry.Branch == nil {
		t.Fatal("entry block should carry the branch condition")
	}
	if len(entry.Succs) != 2 {
		t.Fatalf("branch succs = %d", len(entry.Succs))
	}
	thenB, elseB := entry.Succs[0], entry.Succs[1]
	if len(thenB.Stmts) != 1 || len(elseB.Stmts) != 1 {
		t.Error("branch blocks should hold one statement each")
	}
	// Both branches join.
	if thenB.Succs[0] != elseB.Succs[0] || thenB.Succs[0].Kind != Join {
		t.Error("branches should meet at a join block")
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := build(t, `
routine f()
real x
if (x > 0) then
x = 1
endif
end
`)
	entry := g.EntryBlock
	if len(entry.Succs) != 2 {
		t.Fatalf("branch succs = %d", len(entry.Succs))
	}
	join := entry.Succs[1]
	if join.Kind != Join {
		t.Errorf("fallthrough should reach the join, got %v", join)
	}
}

func TestCommonLoopsAndCNL(t *testing.T) {
	g := build(t, `
routine f()
real x, y
do i = 1, 2
do j = 1, 2
x = 1
enddo
do k = 1, 2
y = 2
enddo
enddo
end
`)
	var sx, sy *Stmt
	for _, s := range g.Stmts {
		if s.Assign.LHS.Name == "x" {
			sx = s
		}
		if s.Assign.LHS.Name == "y" {
			sy = s
		}
	}
	if CNL(sx, sy) != 1 {
		t.Errorf("CNL across sibling nests = %d, want 1", CNL(sx, sy))
	}
	common := CommonLoops(sx, sy)
	if len(common) != 1 || common[0].Var() != "i" {
		t.Errorf("common loops = %v", common)
	}
	if CNL(sx, sx) != 2 {
		t.Errorf("CNL with self = %d", CNL(sx, sx))
	}
}

func TestZeroTripEdgeDataflow(t *testing.T) {
	// Every postexit must be reachable without entering the loop (the
	// zero-trip edge of Fig. 7).
	g := build(t, `
routine f()
real x
do i = 1, 0
x = 1
enddo
end
`)
	l := g.Loops[0]
	found := false
	for _, p := range l.PostExit.Preds {
		if p == l.PreHeader {
			found = true
		}
	}
	if !found {
		t.Error("zero-trip edge missing")
	}
}

func TestWalk(t *testing.T) {
	r, err := parser.ParseRoutine(`
routine f()
real x
do i = 1, 2
if (x > 0) then
x = 1
endif
enddo
end
`)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	ast.Walk(r.Body, func(ast.Stmt) { count++ })
	if count != 3 { // do, if, assign
		t.Errorf("Walk visited %d, want 3", count)
	}
}
