// Package cfg builds the augmented control flow graph of §4.1 / Fig. 7
// of the paper: a graph of basic blocks in which every loop has an
// explicit preheader node (dominating the whole loop), a header node, a
// postexit node per exit target, and a zero-trip edge from the
// preheader to the postexit. The extra nodes give the dataflow
// analyses convenient summary points and give the placement algorithm
// positions "just before the loop" to hoist communication to.
//
// The input language is structured (DO and IF/ELSE only), so the graph
// is reducible by construction; every loop has exactly one backedge and
// one postexit.
package cfg

import (
	"fmt"
	"strings"

	"gcao/internal/ast"
)

// BlockKind classifies blocks for diagnostics and for the placement
// pass (preheaders are preferred hoisting points).
type BlockKind int

const (
	Plain BlockKind = iota
	Entry
	Exit
	PreHeader
	Header
	PostExit
	Join
)

func (k BlockKind) String() string {
	switch k {
	case Plain:
		return "plain"
	case Entry:
		return "entry"
	case Exit:
		return "exit"
	case PreHeader:
		return "preheader"
	case Header:
		return "header"
	case PostExit:
		return "postexit"
	case Join:
		return "join"
	}
	return fmt.Sprintf("BlockKind(%d)", int(k))
}

// Stmt is a statement placed in the CFG: an assignment (possibly a
// reduction) from the scalarized AST. Control constructs do not appear
// as statements; they are encoded in the graph structure.
type Stmt struct {
	ID     int
	Assign *ast.AssignStmt
	Block  *Block
	Index  int // position within Block.Stmts
	// Loops lists the enclosing loops, outermost first.
	Loops []*Loop
}

// NL returns the statement's nesting level: the number of loops
// containing it (paper notation NL(v)).
func (s *Stmt) NL() int { return len(s.Loops) }

// Label returns the statement's source label for diagnostics.
func (s *Stmt) Label() string {
	if s.Assign != nil && s.Assign.Label != "" {
		return s.Assign.Label
	}
	return fmt.Sprintf("s%d", s.ID)
}

func (s *Stmt) String() string {
	if s.Assign == nil {
		return fmt.Sprintf("stmt#%d", s.ID)
	}
	return fmt.Sprintf("%s: %s = %s", s.Label(), ast.ExprString(s.Assign.LHS), ast.ExprString(s.Assign.RHS))
}

// Block is a basic block.
type Block struct {
	ID    int
	Kind  BlockKind
	Stmts []*Stmt
	Succs []*Block
	Preds []*Block
	// Loop is the innermost loop containing this block, nil at top
	// level. A loop's header and body blocks belong to the loop; its
	// preheader and postexit belong to the enclosing loop.
	Loop *Loop
	// Branch holds the IF statement whose condition terminates this
	// block; Succs[0] is the then-entry and Succs[1] the else-entry
	// (or the join when there is no else). Interpreters use it to pick
	// a successor.
	Branch *ast.IfStmt
}

// NL returns the block's nesting level.
func (b *Block) NL() int {
	n := 0
	for l := b.Loop; l != nil; l = l.Parent {
		n++
	}
	return n
}

func (b *Block) String() string {
	return fmt.Sprintf("B%d<%s>", b.ID, b.Kind)
}

// Loop is a DO loop with its augmented nodes.
type Loop struct {
	ID     int
	Do     *ast.DoStmt
	Parent *Loop
	// Depth is the paper's NL(L) counting the loop itself: the
	// outermost loop has Depth 1.
	Depth     int
	PreHeader *Block
	Header    *Block
	PostExit  *Block
	Children  []*Loop
}

// Var returns the loop index variable name.
func (l *Loop) Var() string { return l.Do.Var }

// Contains reports whether the loop (transitively) contains the other
// loop o, or l == o.
func (l *Loop) Contains(o *Loop) bool {
	for ; o != nil; o = o.Parent {
		if o == l {
			return true
		}
	}
	return false
}

// Graph is the augmented CFG of one routine body.
type Graph struct {
	EntryBlock *Block
	ExitBlock  *Block
	Blocks     []*Block
	Loops      []*Loop // all loops, preorder
	Stmts      []*Stmt // all statements, program order
}

type builder struct {
	g         *Graph
	loopStack []*Loop
}

// Build constructs the augmented CFG for a (scalarized) routine body.
func Build(body []ast.Stmt) *Graph {
	b := &builder{g: &Graph{}}
	entry := b.newBlock(Entry)
	b.g.EntryBlock = entry
	last := b.build(body, entry)
	exit := b.newBlock(Exit)
	b.g.ExitBlock = exit
	b.edge(last, exit)
	return b.g
}

func (b *builder) newBlock(kind BlockKind) *Block {
	blk := &Block{ID: len(b.g.Blocks), Kind: kind}
	if n := len(b.loopStack); n > 0 {
		blk.Loop = b.loopStack[n-1]
	}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) curLoops() []*Loop {
	return append([]*Loop(nil), b.loopStack...)
}

// build appends the CFG for stmts starting in cur and returns the block
// where control continues.
func (b *builder) build(stmts []ast.Stmt, cur *Block) *Block {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			st := &Stmt{
				ID:     len(b.g.Stmts),
				Assign: s,
				Block:  cur,
				Index:  len(cur.Stmts),
				Loops:  b.curLoops(),
			}
			cur.Stmts = append(cur.Stmts, st)
			b.g.Stmts = append(b.g.Stmts, st)

		case *ast.IfStmt:
			cur.Branch = s
			thenB := b.newBlock(Plain)
			join := b.newBlock(Join)
			b.edge(cur, thenB)
			thenEnd := b.build(s.Then, thenB)
			b.edge(thenEnd, join)
			if len(s.Else) > 0 {
				elseB := b.newBlock(Plain)
				b.edge(cur, elseB)
				elseEnd := b.build(s.Else, elseB)
				b.edge(elseEnd, join)
			} else {
				b.edge(cur, join)
			}
			cur = join

		case *ast.DoStmt:
			var parent *Loop
			if n := len(b.loopStack); n > 0 {
				parent = b.loopStack[n-1]
			}
			loop := &Loop{
				ID:     len(b.g.Loops),
				Do:     s,
				Parent: parent,
				Depth:  len(b.loopStack) + 1,
			}
			if parent != nil {
				parent.Children = append(parent.Children, loop)
			}
			b.g.Loops = append(b.g.Loops, loop)

			pre := b.newBlock(PreHeader) // belongs to enclosing loop
			b.edge(cur, pre)
			loop.PreHeader = pre

			b.loopStack = append(b.loopStack, loop)
			hdr := b.newBlock(Header)
			loop.Header = hdr
			b.edge(pre, hdr)
			bodyB := b.newBlock(Plain)
			b.edge(hdr, bodyB)
			bodyEnd := b.build(s.Body, bodyB)
			b.edge(bodyEnd, hdr) // backedge
			b.loopStack = b.loopStack[:len(b.loopStack)-1]

			post := b.newBlock(PostExit) // belongs to enclosing loop
			loop.PostExit = post
			b.edge(hdr, post) // loop exit edge
			b.edge(pre, post) // zero-trip edge
			cur = post

		default:
			panic(fmt.Sprintf("cfg: unexpected statement type %T", s))
		}
	}
	return cur
}

// CommonLoops returns the loops containing both statements, outermost
// first.
func CommonLoops(a, d *Stmt) []*Loop {
	n := min(len(a.Loops), len(d.Loops))
	var out []*Loop
	for i := 0; i < n; i++ {
		if a.Loops[i] != d.Loops[i] {
			break
		}
		out = append(out, a.Loops[i])
	}
	return out
}

// CNL returns the common nesting level of two statements: the depth of
// the deepest loop containing both (paper notation CNL(u, v)).
func CNL(a, d *Stmt) int { return len(CommonLoops(a, d)) }

// LoopAtLevel returns the statement's enclosing loop with Depth == lvl
// (1-based), or nil.
func (s *Stmt) LoopAtLevel(lvl int) *Loop {
	if lvl < 1 || lvl > len(s.Loops) {
		return nil
	}
	return s.Loops[lvl-1]
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%s (NL=%d)", blk, blk.NL())
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " B%d", s.ID)
			}
		}
		sb.WriteByte('\n')
		for _, st := range blk.Stmts {
			fmt.Fprintf(&sb, "  %s\n", st)
		}
	}
	return sb.String()
}

// Validate checks structural invariants; it is used by tests and
// returns a descriptive error on violation.
func (g *Graph) Validate() error {
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if !contains(s.Preds, blk) {
				return fmt.Errorf("cfg: %s -> %s missing pred backlink", blk, s)
			}
		}
		for _, p := range blk.Preds {
			if !contains(p.Succs, blk) {
				return fmt.Errorf("cfg: %s <- %s missing succ link", blk, p)
			}
		}
		for i, st := range blk.Stmts {
			if st.Block != blk || st.Index != i {
				return fmt.Errorf("cfg: statement %s has stale block/index", st)
			}
		}
	}
	for _, l := range g.Loops {
		if l.PreHeader == nil || l.Header == nil || l.PostExit == nil {
			return fmt.Errorf("cfg: loop %d missing augmented nodes", l.ID)
		}
		if l.Header.Loop != l {
			return fmt.Errorf("cfg: loop %d header not inside loop", l.ID)
		}
		if l.PreHeader.Loop == l || l.PostExit.Loop == l {
			return fmt.Errorf("cfg: loop %d preheader/postexit inside loop", l.ID)
		}
	}
	return nil
}

func contains(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}
