package runtime

import (
	"errors"
	"testing"

	"gcao/internal/machine"
	"gcao/internal/parser"
	"gcao/internal/section"
	"gcao/internal/sem"
)

func unit(t *testing.T, src string, params map[string]int, procs int) *sem.Unit {
	t.Helper()
	r, err := parser.ParseRoutine(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u, err := sem.Analyze(r, params, sem.Options{Procs: procs})
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return u
}

const memSrc = `
routine m(n)
real a(n, n), r(n)
!hpf$ processors p(2, 2)
!hpf$ distribute a(block, block)
a(1, 1) = 0
end
`

func TestOwnershipAndValidity(t *testing.T) {
	u := unit(t, memSrc, map[string]int{"n": 8}, 4)
	m := NewMemory(u, 4)

	// Owners partition the array; owned elements start valid.
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			o := m.Owner("a", []int{i, j})
			if v, err := m.Read(o, "a", []int{i, j}); err != nil || v != 0 {
				t.Fatalf("owner read a[%d %d]: %v %v", i, j, v, err)
			}
			for p := 0; p < 4; p++ {
				if p == o {
					continue
				}
				if _, err := m.Read(p, "a", []int{i, j}); err == nil {
					t.Fatalf("non-owner read of a[%d %d] by %d should be stale", i, j, p)
				}
			}
		}
	}
	// Replicated arrays are valid everywhere.
	for p := 0; p < 4; p++ {
		if _, err := m.Read(p, "r", []int{3}); err != nil {
			t.Fatalf("replicated read: %v", err)
		}
	}
}

func TestWriteInvalidates(t *testing.T) {
	u := unit(t, memSrc, map[string]int{"n": 8}, 4)
	m := NewMemory(u, 4)
	idx := []int{4, 4} // owned by proc 0 (blocks of 4)
	owner := m.Owner("a", idx)

	// Deliver a ghost copy everywhere via Broadcast, then overwrite:
	// the ghosts must go stale.
	m.Broadcast("a", section.Point(4, 4))
	for p := 0; p < 4; p++ {
		if _, err := m.Read(p, "a", idx); err != nil {
			t.Fatalf("post-broadcast read by %d: %v", p, err)
		}
	}
	m.Write("a", idx, 42)
	if v, err := m.Read(owner, "a", idx); err != nil || v != 42 {
		t.Fatalf("owner sees %v, %v", v, err)
	}
	for p := 0; p < 4; p++ {
		if p == owner {
			continue
		}
		_, err := m.Read(p, "a", idx)
		var stale *StaleReadError
		if !errors.As(err, &stale) {
			t.Fatalf("proc %d should see stale after redefinition, got %v", p, err)
		}
		if stale.Proc != p || stale.Array != "a" {
			t.Errorf("stale error fields = %+v", stale)
		}
	}
}

func TestShiftDeliversStrip(t *testing.T) {
	u := unit(t, memSrc, map[string]int{"n": 8}, 4)
	m := NewMemory(u, 4)
	// Fill with distinct values.
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			m.Write("a", []int{i, j}, float64(10*i+j))
		}
	}
	// Use a(i-1, j): data moves toward higher coords: sign -1 on grid
	// dim 0 (rows). Proc rows 1 need row 4 from proc rows 0.
	sec := section.Whole([]int{1, 1}, []int{8, 8})
	pairs := m.Shift("a", sec, 0, -1, 1)
	if len(pairs) == 0 {
		t.Fatal("no transfers")
	}
	// Reader (1,0) = pid 2 owns rows 5..8, cols 1..4 and reads row 4.
	pid := u.Grid.PID([]int{1, 0})
	for j := 1; j <= 4; j++ {
		v, err := m.Read(pid, "a", []int{4, j})
		if err != nil || v != float64(40+j) {
			t.Fatalf("ghost a[4 %d] on proc %d = %v, %v", j, pid, v, err)
		}
	}
	// Rows outside the strip stay stale.
	if _, err := m.Read(pid, "a", []int{3, 1}); err == nil {
		t.Error("row 3 should not be delivered with width 1")
	}
	// Bytes accounted per pair: row strip of 4 elements = 32 bytes.
	for pair, b := range pairs {
		if b != 32 {
			t.Errorf("pair %v moved %d bytes, want 32", pair, b)
		}
	}
}

func TestShiftForwardsGhosts(t *testing.T) {
	// Corner forwarding: after a dim-1 exchange, a dim-0 exchange must
	// forward the received ghosts so diagonal corners arrive (the
	// two-phase augmented exchange of §2.2).
	u := unit(t, memSrc, map[string]int{"n": 8}, 4)
	m := NewMemory(u, 4)
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			m.Write("a", []int{i, j}, float64(10*i+j))
		}
	}
	sec := section.Whole([]int{1, 1}, []int{8, 8})
	// Reading a(i-1, j-1) on proc (1,1): needs corner a[4 4] owned by
	// (0,0). Exchange dim 1 then dim 0.
	m.Shift("a", sec, 1, -1, 1)
	m.Shift("a", sec, 0, -1, 1)
	pid := u.Grid.PID([]int{1, 1}) // owns rows 5..8, cols 5..8
	v, err := m.Read(pid, "a", []int{4, 4})
	if err != nil || v != 44 {
		t.Fatalf("corner a[4 4] on proc %d = %v, %v", pid, v, err)
	}
}

func TestBroadcastAndSum(t *testing.T) {
	u := unit(t, memSrc, map[string]int{"n": 8}, 4)
	m := NewMemory(u, 4)
	total := 0.0
	for j := 1; j <= 8; j++ {
		m.Write("a", []int{1, j}, float64(j))
		total += float64(j)
	}
	sec := section.New(section.Dim{Lo: 1, Hi: 1, Step: 1}, section.Dim{Lo: 1, Hi: 8, Step: 1})
	got, counts := m.SumSection("a", sec)
	if got != total {
		t.Errorf("SumSection = %v, want %v", got, total)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 8 {
		t.Errorf("owned counts sum = %d, want 8", sum)
	}
	bytes := m.Broadcast("a", sec)
	if bytes != 8*8 {
		t.Errorf("broadcast bytes = %d", bytes)
	}
	for p := 0; p < 4; p++ {
		if _, err := m.Read(p, "a", []int{1, 5}); err != nil {
			t.Errorf("post-broadcast read by %d: %v", p, err)
		}
	}
}

func TestCanonical(t *testing.T) {
	u := unit(t, memSrc, map[string]int{"n": 8}, 4)
	m := NewMemory(u, 4)
	m.Write("a", []int{2, 3}, 7)
	flat := m.Canonical("a")
	if flat[(2-1)*8+(3-1)] != 7 {
		t.Error("Canonical did not pick up the owner value")
	}
}

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger(4, machine.SP2())
	l.Compute(0, 1000)
	l.Message(0, 1, 4096)
	if l.DynMessages != 1 || l.MsgsRecv[1] != 1 || l.BytesMoved != 4096 {
		t.Errorf("ledger = %+v", l)
	}
	if l.Net[0] == 0 || l.Net[1] == 0 {
		t.Error("both endpoints pay for a message")
	}
	before := l.ElapsedTime()
	l.Barrier()
	if l.ElapsedTime() != before {
		t.Error("barrier must not change the max clock")
	}
	// After a barrier all processors are at the same time.
	for p := 0; p < 4; p++ {
		if got := l.CPU[p] + l.Net[p]; got != before {
			t.Errorf("proc %d clock %v after barrier, want %v", p, got, before)
		}
	}
	l.Reduce(32)
	l.Broadcast(128)
	if l.DynMessages <= 1 {
		t.Error("collectives must account messages")
	}
	if l.CPUTime() <= 0 || l.NetTime() <= 0 {
		t.Error("component clocks must advance")
	}
}
