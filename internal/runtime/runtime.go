// Package runtime is the message-passing runtime of the simulated
// distributed-memory machine. It provides per-processor memories for
// block/cyclic-distributed arrays with validity tracking (an element a
// processor does not own is readable only after a communication
// operation delivered it — reading a stale copy is an error, which is
// how the test suite proves that a communication placement is
// sufficient), the communication operations the compiler emits (ghost
// exchange for NNC, broadcast, general gather, reduction accounting),
// and a ledger charging every operation to the machine cost model.
package runtime

import (
	"fmt"

	"gcao/internal/machine"
	"gcao/internal/section"
	"gcao/internal/sem"
)

// Ledger accumulates per-processor time and message statistics.
type Ledger struct {
	P       int
	Machine machine.Machine
	// CPU and Net are per-processor accumulated seconds.
	CPU []float64
	Net []float64
	// MsgsRecv counts point-to-point messages received per processor.
	MsgsRecv []int
	// BytesMoved is the total payload transferred.
	BytesMoved int
	// DynMessages counts all point-to-point messages.
	DynMessages int
	// Barriers counts synchronization events.
	Barriers int
}

// NewLedger builds a ledger for p processors on the given machine.
func NewLedger(p int, m machine.Machine) *Ledger {
	return &Ledger{
		P:        p,
		Machine:  m,
		CPU:      make([]float64, p),
		Net:      make([]float64, p),
		MsgsRecv: make([]int, p),
	}
}

// Barrier synchronizes all processor clocks to the maximum, modeling
// the bulk-synchronous execution the paper measures (overlap
// disabled).
func (l *Ledger) Barrier() {
	l.Barriers++
	maxT := 0.0
	for p := 0; p < l.P; p++ {
		if t := l.CPU[p] + l.Net[p]; t > maxT {
			maxT = t
		}
	}
	for p := 0; p < l.P; p++ {
		slack := maxT - (l.CPU[p] + l.Net[p])
		l.Net[p] += slack // waiting time is charged to the network bar
	}
}

// Message charges one point-to-point message of the given payload from
// src to dst, including packing and unpacking copies.
func (l *Ledger) Message(src, dst, bytes int) {
	m := l.Machine
	l.Net[src] += m.InjectTime(bytes) + m.BcopyTime(bytes)
	l.Net[dst] += m.RecvOverhead + m.Latency + float64(bytes)*m.PerByte + m.BcopyTime(bytes)
	l.MsgsRecv[dst]++
	l.DynMessages++
	l.BytesMoved += bytes
}

// Reduce charges a global combining tree moving the given payload.
func (l *Ledger) Reduce(bytes int) {
	t := l.Machine.ReduceTime(bytes, l.P)
	for p := 0; p < l.P; p++ {
		l.Net[p] += t
	}
	depth := 0
	for n := 1; n < l.P; n *= 2 {
		depth++
	}
	l.DynMessages += depth * 2 // combine down, result back up
	l.BytesMoved += bytes * depth
	for p := 0; p < l.P; p++ {
		l.MsgsRecv[p] += depth
	}
}

// Broadcast charges a binomial-tree broadcast of the payload.
func (l *Ledger) Broadcast(bytes int) {
	depth := 0
	for n := 1; n < l.P; n *= 2 {
		depth++
	}
	t := float64(depth) * l.Machine.MsgTime(bytes)
	for p := 0; p < l.P; p++ {
		l.Net[p] += t
	}
	l.DynMessages += l.P - 1
	l.BytesMoved += bytes * depth
	for p := 0; p < l.P; p++ {
		l.MsgsRecv[p] += depth
	}
}

// Compute charges flop-count floating point operations to a processor.
func (l *Ledger) Compute(proc, flops int) {
	l.CPU[proc] += float64(flops) * l.Machine.FlopTime
}

// ElapsedTime returns the bulk-synchronous completion time: the
// maximum per-processor clock.
func (l *Ledger) ElapsedTime() float64 {
	maxT := 0.0
	for p := 0; p < l.P; p++ {
		if t := l.CPU[p] + l.Net[p]; t > maxT {
			maxT = t
		}
	}
	return maxT
}

// CPUTime and NetTime return the maximum per-processor component
// clocks, the two segments of the paper's normalized bars.
func (l *Ledger) CPUTime() float64 {
	maxT := 0.0
	for p := 0; p < l.P; p++ {
		if l.CPU[p] > maxT {
			maxT = l.CPU[p]
		}
	}
	return maxT
}

func (l *Ledger) NetTime() float64 {
	maxT := 0.0
	for p := 0; p < l.P; p++ {
		if l.Net[p] > maxT {
			maxT = l.Net[p]
		}
	}
	return maxT
}

// StaleReadError reports a processor reading an element it neither
// owns nor received — evidence of insufficient communication.
type StaleReadError struct {
	Proc  int
	Array string
	Index []int
}

func (e *StaleReadError) Error() string {
	return fmt.Sprintf("runtime: processor %d read stale %s%v (element not owned and never delivered)", e.Proc, e.Array, e.Index)
}

// Memory is the distributed memory: every processor holds a full-size
// image of each distributed array, but only owned or delivered
// elements are valid. Replicated arrays are stored once.
type Memory struct {
	Unit *sem.Unit
	P    int

	data    map[string][][]float64
	valid   map[string][][]bool
	strides map[string][]int
}

// NewMemory allocates memories for all arrays of the unit.
func NewMemory(u *sem.Unit, p int) *Memory {
	m := &Memory{
		Unit:    u,
		P:       p,
		data:    map[string][][]float64{},
		valid:   map[string][][]bool{},
		strides: map[string][]int{},
	}
	for name, arr := range u.Arrays {
		size := arr.Size()
		strides := make([]int, arr.Rank())
		s := 1
		for i := arr.Rank() - 1; i >= 0; i-- {
			strides[i] = s
			s *= arr.Hi[i] - arr.Lo[i] + 1
		}
		m.strides[name] = strides
		copies := p
		if arr.Dist == nil {
			copies = 1
		}
		d := make([][]float64, copies)
		v := make([][]bool, copies)
		for c := 0; c < copies; c++ {
			d[c] = make([]float64, size)
			v[c] = make([]bool, size)
		}
		m.data[name] = d
		m.valid[name] = v
		// Owned (or replicated) elements start valid with value zero.
		if arr.Dist == nil {
			for i := range v[0] {
				v[0][i] = true
			}
			continue
		}
		m.forEachIndex(arr, func(idx []int) {
			o := arr.Dist.Owner(idx)
			v[o][m.offset(name, idx)] = true
		})
	}
	return m
}

func (m *Memory) forEachIndex(arr *sem.Array, f func(idx []int)) {
	idx := make([]int, arr.Rank())
	copy(idx, arr.Lo)
	for {
		f(idx)
		k := arr.Rank() - 1
		for k >= 0 {
			idx[k]++
			if idx[k] <= arr.Hi[k] {
				break
			}
			idx[k] = arr.Lo[k]
			k--
		}
		if k < 0 {
			return
		}
	}
}

func (m *Memory) offset(name string, idx []int) int {
	arr := m.Unit.Arrays[name]
	off := 0
	for i, x := range idx {
		if x < arr.Lo[i] || x > arr.Hi[i] {
			panic(fmt.Sprintf("runtime: %s%v out of bounds", name, idx))
		}
		off += (x - arr.Lo[i]) * m.strides[name][i]
	}
	return off
}

func (m *Memory) slot(name string, proc int) int {
	if m.Unit.Arrays[name].Dist == nil {
		return 0
	}
	return proc
}

// Owner returns the owning processor of an element (0 for replicated
// arrays).
func (m *Memory) Owner(name string, idx []int) int {
	arr := m.Unit.Arrays[name]
	if arr.Dist == nil {
		return 0
	}
	return arr.Dist.Owner(idx)
}

// Read returns a processor's view of an element, failing on stale
// copies.
func (m *Memory) Read(proc int, name string, idx []int) (float64, error) {
	off := m.offset(name, idx)
	s := m.slot(name, proc)
	if !m.valid[name][s][off] {
		return 0, &StaleReadError{Proc: proc, Array: name, Index: append([]int(nil), idx...)}
	}
	return m.data[name][s][off], nil
}

// ReadOwner returns the canonical (owner's) value of an element.
func (m *Memory) ReadOwner(name string, idx []int) float64 {
	off := m.offset(name, idx)
	return m.data[name][m.slot(name, m.Owner(name, idx))][off]
}

// Write stores an element at its owner and invalidates every other
// processor's copy (the killing semantics that make stale-read
// detection sound).
func (m *Memory) Write(name string, idx []int, v float64) {
	off := m.offset(name, idx)
	arr := m.Unit.Arrays[name]
	if arr.Dist == nil {
		m.data[name][0][off] = v
		return
	}
	o := arr.Dist.Owner(idx)
	for p := 0; p < m.P; p++ {
		if p == o {
			m.data[name][p][off] = v
			m.valid[name][p][off] = true
		} else {
			m.valid[name][p][off] = false
		}
	}
}

// deliver copies an element from its owner's memory into dst's memory.
func (m *Memory) deliver(name string, idx []int, dst int) {
	off := m.offset(name, idx)
	o := m.Owner(name, idx)
	m.data[name][dst][off] = m.data[name][o][off]
	m.valid[name][dst][off] = true
}

// Canonical assembles the owner values of an array into one flat
// row-major slice, for comparison against a sequential reference run.
func (m *Memory) Canonical(name string) []float64 {
	arr := m.Unit.Arrays[name]
	out := make([]float64, arr.Size())
	m.forEachIndex(arr, func(idx []int) {
		out[m.offset(name, idx)] = m.ReadOwner(name, idx)
	})
	return out
}

// ---------------------------------------------------------------------
// Communication operations

// Shift performs a ghost exchange for one array section along one
// grid dimension: every processor sends the strip of width elements at
// its sign-side block boundary — including ghost copies it received in
// earlier exchanges, which is how diagonal data reaches its corner in
// the classic two-phase augmented exchange — to the neighbouring
// processor opposite the data movement. The strip spans the
// receiver's local region plus a ghost margin in the other dimensions
// (Zima-style overlap regions). It returns per-(src,dst) byte counts
// which the caller charges as one message per pair (that is the whole
// point of combining).
func (m *Memory) Shift(name string, sec section.Section, gridDim, sign, width int) map[[2]int]int {
	arr := m.Unit.Arrays[name]
	if arr.Dist == nil {
		return nil
	}
	// Find the array dimension mapped to gridDim.
	ad := -1
	for k := range arr.Lo {
		if arr.Dist.Dims[k].Kind != 0 && arr.Dist.Dims[k].GridDim == gridDim {
			ad = k
			break
		}
	}
	if ad < 0 {
		return nil
	}
	grid := arr.Dist.Grid
	shape := grid.Shape[gridDim]
	elemBytes := arr.ElemBytes()
	margin := width // overlap allowance in the other dimensions
	pairs := map[[2]int]int{}
	sec.Elems(func(idx []int) bool {
		x := idx[ad]
		srcCoord := arr.Dist.OwnerDim(ad, x)
		lo, hi, ok := arr.Dist.LocalRange(ad, srcCoord)
		if !ok {
			return true
		}
		inStrip := false
		if sign > 0 {
			inStrip = x >= lo && x < lo+width
		} else {
			inStrip = x <= hi && x > hi-width
		}
		if !inStrip {
			return true
		}
		dstCoord := srcCoord - sign
		if dstCoord < 0 || dstCoord >= shape {
			return true // non-periodic boundary
		}
		// The element travels between every (src,dst) pair that agrees
		// on the other grid coordinates, provided src holds a current
		// copy (its own or a previously delivered ghost) and dst's
		// extended local region covers the element.
		off := m.offset(name, idx)
		for src := 0; src < m.P; src++ {
			coords := grid.Coords(src)
			if coords[gridDim] != srcCoord {
				continue
			}
			if !m.valid[name][src][off] {
				continue
			}
			coords[gridDim] = dstCoord
			dst := grid.PID(coords)
			if !m.inExtendedRegion(arr, coords, idx, ad, margin) {
				continue
			}
			if dst != src {
				// The strip is sent unconditionally — a compiled
				// exchange does not know what the receiver already
				// holds — so bytes are charged even for re-deliveries.
				m.data[name][dst][off] = m.data[name][src][off]
				m.valid[name][dst][off] = true
				pairs[[2]int{src, dst}] += elemBytes
			}
		}
		return true
	})
	return pairs
}

// inExtendedRegion reports whether an element lies within a
// processor's local block extended by the ghost margin in every
// distributed dimension other than ad.
func (m *Memory) inExtendedRegion(arr *sem.Array, coords []int, idx []int, ad, margin int) bool {
	for k := range arr.Lo {
		if k == ad || arr.Dist.Dims[k].Kind == 0 {
			continue
		}
		g := arr.Dist.Dims[k].GridDim
		lo, hi, ok := arr.Dist.LocalRange(k, coords[g])
		if !ok {
			return false
		}
		if idx[k] < lo-margin || idx[k] > hi+margin {
			return false
		}
	}
	return true
}

// Broadcast delivers a section from its owners to every processor.
func (m *Memory) Broadcast(name string, sec section.Section) int {
	arr := m.Unit.Arrays[name]
	if arr.Dist == nil {
		return 0
	}
	bytes := 0
	sec.Elems(func(idx []int) bool {
		for p := 0; p < m.P; p++ {
			if p != m.Owner(name, idx) {
				m.deliver(name, idx, p)
			}
		}
		bytes += arr.ElemBytes()
		return true
	})
	return bytes
}

// SumSection computes the global sum of a section from owner values
// and returns the per-processor owned element counts for CPU
// accounting.
func (m *Memory) SumSection(name string, sec section.Section) (float64, []int) {
	counts := make([]int, m.P)
	total := 0.0
	sec.Elems(func(idx []int) bool {
		total += m.ReadOwner(name, idx)
		counts[m.Owner(name, idx)]++
		return true
	})
	return total, counts
}
