// Package runtime is the message-passing runtime of the simulated
// distributed-memory machine. It provides per-processor memories for
// block/cyclic-distributed arrays with validity tracking (an element a
// processor does not own is readable only after a communication
// operation delivered it — reading a stale copy is an error, which is
// how the test suite proves that a communication placement is
// sufficient), the communication operations the compiler emits (ghost
// exchange for NNC, broadcast, general gather, reduction accounting),
// and a ledger charging every operation to the machine cost model.
package runtime

import (
	"fmt"

	"gcao/internal/dist"
	"gcao/internal/machine"
	"gcao/internal/section"
	"gcao/internal/sem"
)

// Ledger accumulates per-processor time and message statistics.
type Ledger struct {
	P       int
	Machine machine.Machine
	// CPU and Net are per-processor accumulated seconds.
	CPU []float64
	Net []float64
	// MsgsRecv counts point-to-point messages received per processor.
	MsgsRecv []int
	// BytesMoved is the total payload transferred.
	BytesMoved int
	// DynMessages counts all point-to-point messages.
	DynMessages int
	// Barriers counts synchronization events.
	Barriers int
}

// NewLedger builds a ledger for p processors on the given machine.
func NewLedger(p int, m machine.Machine) *Ledger {
	return &Ledger{
		P:        p,
		Machine:  m,
		CPU:      make([]float64, p),
		Net:      make([]float64, p),
		MsgsRecv: make([]int, p),
	}
}

// Barrier synchronizes all processor clocks to the maximum, modeling
// the bulk-synchronous execution the paper measures (overlap
// disabled).
func (l *Ledger) Barrier() {
	l.Barriers++
	maxT := 0.0
	for p := 0; p < l.P; p++ {
		if t := l.CPU[p] + l.Net[p]; t > maxT {
			maxT = t
		}
	}
	for p := 0; p < l.P; p++ {
		slack := maxT - (l.CPU[p] + l.Net[p])
		l.Net[p] += slack // waiting time is charged to the network bar
	}
}

// Message charges one point-to-point message of the given payload from
// src to dst, including packing and unpacking copies.
func (l *Ledger) Message(src, dst, bytes int) {
	m := l.Machine
	l.Net[src] += m.InjectTime(bytes) + m.BcopyTime(bytes)
	l.Net[dst] += m.RecvOverhead + m.Latency + float64(bytes)*m.PerByte + m.BcopyTime(bytes)
	l.MsgsRecv[dst]++
	l.DynMessages++
	l.BytesMoved += bytes
}

// Reduce charges a global combining tree moving the given payload.
func (l *Ledger) Reduce(bytes int) {
	t := l.Machine.ReduceTime(bytes, l.P)
	for p := 0; p < l.P; p++ {
		l.Net[p] += t
	}
	depth := 0
	for n := 1; n < l.P; n *= 2 {
		depth++
	}
	l.DynMessages += depth * 2 // combine down, result back up
	l.BytesMoved += bytes * depth
	for p := 0; p < l.P; p++ {
		l.MsgsRecv[p] += depth
	}
}

// Broadcast charges a binomial-tree broadcast of the payload.
func (l *Ledger) Broadcast(bytes int) {
	depth := 0
	for n := 1; n < l.P; n *= 2 {
		depth++
	}
	t := float64(depth) * l.Machine.MsgTime(bytes)
	for p := 0; p < l.P; p++ {
		l.Net[p] += t
	}
	l.DynMessages += l.P - 1
	l.BytesMoved += bytes * depth
	for p := 0; p < l.P; p++ {
		l.MsgsRecv[p] += depth
	}
}

// Compute charges flop-count floating point operations to a processor.
func (l *Ledger) Compute(proc, flops int) {
	l.CPU[proc] += float64(flops) * l.Machine.FlopTime
}

// ElapsedTime returns the bulk-synchronous completion time: the
// maximum per-processor clock.
func (l *Ledger) ElapsedTime() float64 {
	maxT := 0.0
	for p := 0; p < l.P; p++ {
		if t := l.CPU[p] + l.Net[p]; t > maxT {
			maxT = t
		}
	}
	return maxT
}

// CPUTime and NetTime return the maximum per-processor component
// clocks, the two segments of the paper's normalized bars.
func (l *Ledger) CPUTime() float64 {
	maxT := 0.0
	for p := 0; p < l.P; p++ {
		if l.CPU[p] > maxT {
			maxT = l.CPU[p]
		}
	}
	return maxT
}

func (l *Ledger) NetTime() float64 {
	maxT := 0.0
	for p := 0; p < l.P; p++ {
		if l.Net[p] > maxT {
			maxT = l.Net[p]
		}
	}
	return maxT
}

// LedgerView is a range-scoped window onto the CPU clocks of a ledger
// for processors [Lo, Hi). It owns an independent backing slice, so
// several views over disjoint ranges can accumulate compute time
// concurrently without sharing cache lines; Absorb folds a view back
// into the master ledger. Only CPU time is range-local — network and
// message accounting happens at barriers, under a single writer.
type LedgerView struct {
	Lo, Hi   int
	CPU      []float64
	flopTime float64
}

// View captures the current CPU clocks of processors [lo, hi) in an
// independent range-scoped accumulator.
func (l *Ledger) View(lo, hi int) *LedgerView {
	v := &LedgerView{Lo: lo, Hi: hi, CPU: make([]float64, hi-lo), flopTime: l.Machine.FlopTime}
	copy(v.CPU, l.CPU[lo:hi])
	return v
}

// Compute charges flop-count floating point operations to a processor
// of the view's range.
func (v *LedgerView) Compute(proc, flops int) {
	v.CPU[proc-v.Lo] += float64(flops) * v.flopTime
}

// Absorb copies a view's CPU clocks back into the master ledger. The
// view stays valid: CPU clocks only ever grow through the view, so
// absorbing is an idempotent snapshot, not a reset.
func (l *Ledger) Absorb(v *LedgerView) {
	copy(l.CPU[v.Lo:v.Hi], v.CPU)
}

// StaleReadError reports a processor reading an element it neither
// owns nor received — evidence of insufficient communication.
type StaleReadError struct {
	Proc  int
	Array string
	Index []int
}

func (e *StaleReadError) Error() string {
	return fmt.Sprintf("runtime: processor %d read stale %s%v (element not owned and never delivered)", e.Proc, e.Array, e.Index)
}

// Memory is the distributed memory: every processor holds a full-size
// image of each distributed array, but only owned or delivered
// elements are valid. Replicated arrays are stored once.
type Memory struct {
	Unit *sem.Unit
	P    int

	views map[string]*ArrayMem
}

// ArrayMem is the resolved per-array view of a Memory: the data and
// validity planes, strides and distribution of one array, with no
// string-keyed lookups on the access path. The interpreter's inner
// loops run on these views; per-processor rows are independent
// allocations, so shards working on disjoint processor ranges never
// share cache lines.
type ArrayMem struct {
	Name    string
	Arr     *sem.Array
	Dist    *dist.Dist // nil for replicated arrays (single row 0)
	Strides []int
	// Data[p][off] and Valid[p][off] are processor p's copy of the
	// element at flat offset off (row 0 only for replicated arrays).
	Data  [][]float64
	Valid [][]bool
}

// NewMemory allocates memories for all arrays of the unit.
func NewMemory(u *sem.Unit, p int) *Memory {
	m := &Memory{
		Unit:  u,
		P:     p,
		views: map[string]*ArrayMem{},
	}
	for name, arr := range u.Arrays {
		size := arr.Size()
		strides := make([]int, arr.Rank())
		s := 1
		for i := arr.Rank() - 1; i >= 0; i-- {
			strides[i] = s
			s *= arr.Hi[i] - arr.Lo[i] + 1
		}
		copies := p
		if arr.Dist == nil {
			copies = 1
		}
		am := &ArrayMem{
			Name:    name,
			Arr:     arr,
			Dist:    arr.Dist,
			Strides: strides,
			Data:    make([][]float64, copies),
			Valid:   make([][]bool, copies),
		}
		for c := 0; c < copies; c++ {
			am.Data[c] = make([]float64, size)
			am.Valid[c] = make([]bool, size)
		}
		m.views[name] = am
		m.initValidity(am)
	}
	return m
}

// initValidity marks the owned (or replicated) elements of one array
// valid; everything starts at value zero.
func (m *Memory) initValidity(am *ArrayMem) {
	arr := am.Arr
	if arr.Dist == nil {
		for i := range am.Valid[0] {
			am.Valid[0][i] = true
		}
		return
	}
	coords := make([]int, arr.Dist.Grid.Rank())
	m.forEachIndex(arr, func(idx []int) {
		o := am.OwnerInto(idx, coords)
		am.Valid[o][am.Offset(idx)] = true
	})
}

// Reset restores the memory image to its just-constructed state —
// every value zero, validity back to the ownership pattern — reusing
// the existing rows so repeated native runs do not allocate.
func (m *Memory) Reset() {
	for _, am := range m.views {
		for c := range am.Data {
			clear(am.Data[c])
			clear(am.Valid[c])
		}
		m.initValidity(am)
	}
}

// View returns the resolved per-array view, panicking on unknown
// arrays (callers pass names from the compiled unit).
func (m *Memory) View(name string) *ArrayMem {
	am := m.views[name]
	if am == nil {
		panic(fmt.Sprintf("runtime: unknown array %q", name))
	}
	return am
}

// Offset maps an index vector to the flat row-major offset, panicking
// when the index lies outside the declared bounds.
func (am *ArrayMem) Offset(idx []int) int {
	arr := am.Arr
	off := 0
	for i, x := range idx {
		if x < arr.Lo[i] || x > arr.Hi[i] {
			panic(fmt.Sprintf("runtime: %s%v out of bounds", am.Name, idx))
		}
		off += (x - arr.Lo[i]) * am.Strides[i]
	}
	return off
}

// OwnerInto computes the owning processor of an element, reusing the
// caller's grid-coordinate buffer (len = grid rank) to avoid the
// per-element allocation of dist.Owner on hot paths.
func (am *ArrayMem) OwnerInto(idx, coords []int) int {
	if am.Dist == nil {
		return 0
	}
	for i := range coords {
		coords[i] = 0
	}
	for i, dd := range am.Dist.Dims {
		if dd.Kind == dist.Star {
			continue
		}
		coords[dd.GridDim] = am.Dist.OwnerDim(i, idx[i])
	}
	return am.Dist.Grid.PID(coords)
}

// ReadAt returns processor proc's view of the element at offset off,
// failing on stale copies (idx is only used for the error message).
func (am *ArrayMem) ReadAt(proc, off int, idx []int) (float64, error) {
	s := proc
	if am.Dist == nil {
		s = 0
	}
	if !am.Valid[s][off] {
		return 0, &StaleReadError{Proc: proc, Array: am.Name, Index: append([]int(nil), idx...)}
	}
	return am.Data[s][off], nil
}

// StoreOwner writes the element at off into the owner's row and marks
// it valid. In a sharded run only the owner's shard calls this.
func (am *ArrayMem) StoreOwner(off, owner int, v float64) {
	s := owner
	if am.Dist == nil {
		s = 0
	}
	am.Data[s][off] = v
	am.Valid[s][off] = true
}

// InvalidateRange clears the validity of processors [lo, hi) except
// the owner — the range-scoped half of the killing write semantics
// that make stale-read detection sound. Replicated arrays have a
// single always-valid row, so there is nothing to invalidate.
func (am *ArrayMem) InvalidateRange(off, owner, lo, hi int) {
	if am.Dist == nil {
		return
	}
	for p := lo; p < hi; p++ {
		if p != owner {
			am.Valid[p][off] = false
		}
	}
}

func (m *Memory) forEachIndex(arr *sem.Array, f func(idx []int)) {
	idx := make([]int, arr.Rank())
	copy(idx, arr.Lo)
	for {
		f(idx)
		k := arr.Rank() - 1
		for k >= 0 {
			idx[k]++
			if idx[k] <= arr.Hi[k] {
				break
			}
			idx[k] = arr.Lo[k]
			k--
		}
		if k < 0 {
			return
		}
	}
}

// Owner returns the owning processor of an element (0 for replicated
// arrays).
func (m *Memory) Owner(name string, idx []int) int {
	am := m.View(name)
	if am.Dist == nil {
		return 0
	}
	return am.Dist.Owner(idx)
}

// Read returns a processor's view of an element, failing on stale
// copies.
func (m *Memory) Read(proc int, name string, idx []int) (float64, error) {
	am := m.View(name)
	return am.ReadAt(proc, am.Offset(idx), idx)
}

// ReadOwner returns the canonical (owner's) value of an element.
func (m *Memory) ReadOwner(name string, idx []int) float64 {
	am := m.View(name)
	off := am.Offset(idx)
	s := 0
	if am.Dist != nil {
		s = am.Dist.Owner(idx)
	}
	return am.Data[s][off]
}

// Write stores an element at its owner and invalidates every other
// processor's copy (the killing semantics that make stale-read
// detection sound).
func (m *Memory) Write(name string, idx []int, v float64) {
	am := m.View(name)
	off := am.Offset(idx)
	if am.Dist == nil {
		am.Data[0][off] = v
		return
	}
	o := am.Dist.Owner(idx)
	am.StoreOwner(off, o, v)
	am.InvalidateRange(off, o, 0, m.P)
}

// Canonical assembles the owner values of an array into one flat
// row-major slice, for comparison against a sequential reference run.
func (m *Memory) Canonical(name string) []float64 {
	arr := m.Unit.Arrays[name]
	am := m.View(name)
	out := make([]float64, arr.Size())
	m.forEachIndex(arr, func(idx []int) {
		out[am.Offset(idx)] = m.ReadOwner(name, idx)
	})
	return out
}

// ---------------------------------------------------------------------
// Communication operations

// ShiftArrayDim returns the array dimension mapped to the given grid
// dimension (the axis a shift along gridDim moves data over), or -1
// when the array is not distributed along it.
func (am *ArrayMem) ShiftArrayDim(gridDim int) int {
	if am.Dist == nil {
		return -1
	}
	for k := range am.Arr.Lo {
		if am.Dist.Dims[k].Kind != 0 && am.Dist.Dims[k].GridDim == gridDim {
			return k
		}
	}
	return -1
}

// Shift performs a ghost exchange for one array section along one
// grid dimension: every processor sends the strip of width elements at
// its sign-side block boundary — including ghost copies it received in
// earlier exchanges, which is how diagonal data reaches its corner in
// the classic two-phase augmented exchange — to the neighbouring
// processor opposite the data movement. The strip spans the
// receiver's local region plus a ghost margin in the other dimensions
// (Zima-style overlap regions). It returns per-(src,dst) byte counts
// which the caller charges as one message per pair (that is the whole
// point of combining).
func (m *Memory) Shift(name string, sec section.Section, gridDim, sign, width int) map[[2]int]int {
	return m.ShiftRange(name, sec, gridDim, sign, width, 0, m.P)
}

// ShiftRange is Shift restricted to deliveries whose receiving
// processor lies in [dstLo, dstHi). For a given element the sending
// grid row and the receiving grid row are distinct, and each receiver
// belongs to exactly one range, so shards running ShiftRange over
// disjoint ranges concurrently never write the same processor row and
// never read a row another shard writes; the per-pair byte maps they
// return are disjoint and merge into exactly the full-Shift map.
func (m *Memory) ShiftRange(name string, sec section.Section, gridDim, sign, width, dstLo, dstHi int) map[[2]int]int {
	am := m.View(name)
	arr := am.Arr
	if am.Dist == nil {
		return nil
	}
	ad := am.ShiftArrayDim(gridDim)
	if ad < 0 {
		return nil
	}
	grid := am.Dist.Grid
	shape := grid.Shape[gridDim]
	elemBytes := arr.ElemBytes()
	margin := width // overlap allowance in the other dimensions
	// Changing only the gridDim coordinate moves the linear pid by a
	// fixed stride, so neighbours are computed without coordinate
	// round-trips; coordinates themselves are resolved once per call.
	gridStride := 1
	for i := gridDim + 1; i < grid.Rank(); i++ {
		gridStride *= grid.Shape[i]
	}
	coordsOf := make([][]int, m.P)
	for p := 0; p < m.P; p++ {
		coordsOf[p] = grid.Coords(p)
	}
	pairs := map[[2]int]int{}
	sec.Elems(func(idx []int) bool {
		x := idx[ad]
		srcCoord := am.Dist.OwnerDim(ad, x)
		lo, hi, ok := am.Dist.LocalRange(ad, srcCoord)
		if !ok {
			return true
		}
		inStrip := false
		if sign > 0 {
			inStrip = x >= lo && x < lo+width
		} else {
			inStrip = x <= hi && x > hi-width
		}
		if !inStrip {
			return true
		}
		dstCoord := srcCoord - sign
		if dstCoord < 0 || dstCoord >= shape {
			return true // non-periodic boundary
		}
		// The element travels between every (src,dst) pair that agrees
		// on the other grid coordinates, provided src holds a current
		// copy (its own or a previously delivered ghost) and dst's
		// extended local region covers the element.
		off := am.Offset(idx)
		for src := 0; src < m.P; src++ {
			if coordsOf[src][gridDim] != srcCoord {
				continue
			}
			dst := src - sign*gridStride
			if dst < dstLo || dst >= dstHi {
				continue
			}
			if !am.Valid[src][off] {
				continue
			}
			if !m.inExtendedRegion(arr, coordsOf[dst], idx, ad, margin) {
				continue
			}
			// The strip is sent unconditionally — a compiled
			// exchange does not know what the receiver already
			// holds — so bytes are charged even for re-deliveries.
			am.Data[dst][off] = am.Data[src][off]
			am.Valid[dst][off] = true
			pairs[[2]int{src, dst}] += elemBytes
		}
		return true
	})
	return pairs
}

// inExtendedRegion reports whether an element lies within a
// processor's local block extended by the ghost margin in every
// distributed dimension other than ad.
func (m *Memory) inExtendedRegion(arr *sem.Array, coords []int, idx []int, ad, margin int) bool {
	return InExtendedRegion(arr, coords, idx, ad, margin)
}

// InExtendedRegion reports whether an element lies within a
// processor's local block extended by the ghost margin in every
// distributed dimension other than ad — the receiver-side filter of a
// ghost exchange, shared by the simulator's ShiftRange and the native
// backend's pack/unpack (both sides must agree on the element list).
func InExtendedRegion(arr *sem.Array, coords []int, idx []int, ad, margin int) bool {
	for k := range arr.Lo {
		if k == ad || arr.Dist.Dims[k].Kind == 0 {
			continue
		}
		g := arr.Dist.Dims[k].GridDim
		lo, hi, ok := arr.Dist.LocalRange(k, coords[g])
		if !ok {
			return false
		}
		if idx[k] < lo-margin || idx[k] > hi+margin {
			return false
		}
	}
	return true
}

// Broadcast delivers a section from its owners to every processor.
func (m *Memory) Broadcast(name string, sec section.Section) int {
	return m.BroadcastRange(name, sec, 0, m.P)
}

// BroadcastRange delivers a section from its owners to the processors
// in [dstLo, dstHi). The returned byte count is that of the full
// section payload regardless of the range, so concurrent shards each
// observe the same (chargeable) figure. An element's owner row is
// never written by any range (owners skip themselves), so disjoint
// ranges broadcast concurrently without data races.
func (m *Memory) BroadcastRange(name string, sec section.Section, dstLo, dstHi int) int {
	am := m.View(name)
	if am.Dist == nil {
		return 0
	}
	elemBytes := am.Arr.ElemBytes()
	coords := make([]int, am.Dist.Grid.Rank())
	bytes := 0
	sec.Elems(func(idx []int) bool {
		off := am.Offset(idx)
		o := am.OwnerInto(idx, coords)
		v := am.Data[o][off]
		for p := dstLo; p < dstHi; p++ {
			if p != o {
				am.Data[p][off] = v
				am.Valid[p][off] = true
			}
		}
		bytes += elemBytes
		return true
	})
	return bytes
}

// SumSection computes the global sum of a section from owner values
// and returns the per-processor owned element counts for CPU
// accounting.
func (m *Memory) SumSection(name string, sec section.Section) (float64, []int) {
	am := m.View(name)
	counts := make([]int, m.P)
	total := 0.0
	if am.Dist == nil {
		sec.Elems(func(idx []int) bool {
			total += am.Data[0][am.Offset(idx)]
			counts[0]++
			return true
		})
		return total, counts
	}
	coords := make([]int, am.Dist.Grid.Rank())
	sec.Elems(func(idx []int) bool {
		o := am.OwnerInto(idx, coords)
		total += am.Data[o][am.Offset(idx)]
		counts[o]++
		return true
	})
	return total, counts
}
