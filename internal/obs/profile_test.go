package obs

import (
	"reflect"
	"testing"
)

func TestCommProfileMerge(t *testing.T) {
	a := NewCommProfile(3)
	a.AddPair(0, 1, 100)
	a.AddStep("g1@B1.top", "NNC", 2, 200)
	a.ComputeSec = []float64{1, 2, 3}

	b := NewCommProfile(3)
	b.AddPair(0, 1, 50)
	b.AddPair(2, 0, 8)
	b.AddStep("g2@B2.top", "SUM", 1, 8)
	b.ComputeSec = []float64{0.5, 0.5, 0.5}
	b.IdleSec = []float64{0, 1, 0}

	a.Merge(b)
	if a.PairBytes[0][1] != 150 || a.PairMsgs[0][1] != 2 {
		t.Errorf("pair (0,1) = %d bytes / %d msgs, want 150 / 2", a.PairBytes[0][1], a.PairMsgs[0][1])
	}
	if a.PairBytes[2][0] != 8 || a.PairMsgs[2][0] != 1 {
		t.Errorf("pair (2,0) = %d bytes / %d msgs, want 8 / 1", a.PairBytes[2][0], a.PairMsgs[2][0])
	}
	if len(a.Steps) != 2 || a.Steps[1].Label != "g2@B2.top" || a.Steps[1].Index != 1 {
		t.Errorf("merged steps = %+v, want appended and reindexed", a.Steps)
	}
	if !reflect.DeepEqual(a.ComputeSec, []float64{1.5, 2.5, 3.5}) {
		t.Errorf("ComputeSec = %v", a.ComputeSec)
	}
	if !reflect.DeepEqual(a.IdleSec, []float64{0, 1, 0}) {
		t.Errorf("IdleSec = %v, want allocated from merge source", a.IdleSec)
	}
	if len(a.CommSec) != 0 {
		t.Errorf("CommSec = %v, want untouched when both empty", a.CommSec)
	}

	// Merge is nil-safe on both receivers.
	var nilProf *CommProfile
	nilProf.Merge(a)
	a.Merge(nil)

	defer func() {
		if recover() == nil {
			t.Error("merging mismatched processor counts must panic")
		}
	}()
	a.Merge(NewCommProfile(4))
}
