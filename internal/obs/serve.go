package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// This file holds the Registry's serving-layer surface: the RED
// metrics the daemon's HTTP middleware feeds (rate, errors, duration
// per route), the scheduler queue-wait ledger, the build identity,
// and the scrape-time ServerStats callback — the families a
// dashboard needs to watch saturation develop.

// ObserveHTTP records one served HTTP request: it increments
// gcao_http_requests_total{route,code} and feeds the route's
// gcao_http_request_seconds histogram.
func (g *Registry) ObserveHTTP(route string, code int, seconds float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	codes := g.httpReq[route]
	if codes == nil {
		codes = map[string]int64{}
		g.httpReq[route] = codes
	}
	codes[strconv.Itoa(code)]++
	g.histLocked(g.httpLat, route, LatencyBuckets).Observe(seconds)
}

// ObserveQueueWait records one job's scheduler admission-queue wait
// into the gcao_queue_wait_seconds histogram.
func (g *Registry) ObserveQueueWait(seconds float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.queueWait.Observe(seconds)
}

// SetBuildInfo sets the version label of the constant
// gcao_build_info{version} 1 sample ("" removes the family), so
// dashboards can correlate metric shifts with deploys.
func (g *Registry) SetBuildInfo(version string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.buildInfo = version
}

// ServerStats is the scrape-time snapshot of the serving layer's live
// occupancy, rendered as gauges plus the per-outcome job counter.
type ServerStats struct {
	HTTPInflight      int64
	QueueDepth        int64
	QueueCapacity     int64
	ActiveJobs        int64
	Workers           int64
	AvgServiceSeconds float64
	// JobOutcomes counts finished scheduler jobs by outcome
	// (completed, failed, expired, rejected).
	JobOutcomes map[string]int64
}

// SetServerStatsFunc registers the callback WritePrometheus invokes
// at scrape time to snapshot the serving layer (nil unregisters).
// The callback must be safe for concurrent use; it is called outside
// the registry lock.
func (g *Registry) SetServerStatsFunc(fn func() ServerStats) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.serverStats = fn
}

// RouteStat is one route's live latency summary, derived from the
// gcao_http_request_seconds histogram.
type RouteStat struct {
	Route string `json:"route"`
	Count uint64 `json:"count"`
	// P50ms and P99ms are bucket-interpolated latency quantiles in
	// milliseconds.
	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`
}

// HTTPRouteStats summarizes every observed route, sorted by route.
func (g *Registry) HTTPRouteStats() []RouteStat {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]RouteStat, 0, len(g.httpLat))
	for _, route := range sortedKeys(g.httpLat) {
		h := g.httpLat[route]
		out = append(out, RouteStat{
			Route: route,
			Count: h.Count(),
			P50ms: h.Quantile(0.50) * 1e3,
			P99ms: h.Quantile(0.99) * 1e3,
		})
	}
	return out
}

// HTTPCodeTotals sums served requests by status code across routes.
func (g *Registry) HTTPCodeTotals() map[string]int64 {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := map[string]int64{}
	for _, codes := range g.httpReq {
		for code, n := range codes {
			out[code] += n
		}
	}
	return out
}

// QueueWaitQuantile reports a bucket-interpolated quantile of the
// queue-wait histogram in seconds.
func (g *Registry) QueueWaitQuantile(q float64) float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queueWait.Quantile(q)
}

// writeHTTPFamilies renders the RED families: the two-label request
// counter (route-major, code-minor order — deterministic) and the
// per-route latency histogram.
func writeHTTPFamilies(b *strings.Builder, req map[string]map[string]int64, lat map[string]*Histogram) {
	if len(req) > 0 {
		fmt.Fprintf(b, "# HELP gcao_http_requests_total HTTP requests served, by route and status code.\n# TYPE gcao_http_requests_total counter\n")
		for _, route := range sortedKeys(req) {
			codes := req[route]
			for _, code := range sortedKeys(codes) {
				fmt.Fprintf(b, "gcao_http_requests_total{code=%s,route=%s} %d\n",
					quoteLabel(code), quoteLabel(route), codes[code])
			}
		}
	}
	writeHistFamily(b, "gcao_http_request_seconds",
		"HTTP request latency in seconds, by route.", "route", lat)
}

// writeServerFamilies renders the scrape-time serving gauges and the
// per-outcome scheduler job counter.
func writeServerFamilies(b *strings.Builder, st ServerStats) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatValue(v))
	}
	gauge("gcao_http_inflight", "HTTP requests currently being served.", float64(st.HTTPInflight))
	gauge("gcao_queue_depth", "Jobs waiting in the scheduler admission queue.", float64(st.QueueDepth))
	gauge("gcao_queue_capacity", "Admission queue capacity.", float64(st.QueueCapacity))
	gauge("gcao_jobs_active", "Jobs currently running on scheduler workers.", float64(st.ActiveJobs))
	gauge("gcao_pool_workers", "Scheduler worker goroutines.", float64(st.Workers))
	gauge("gcao_job_avg_service_seconds", "EWMA of per-job service time in seconds.", st.AvgServiceSeconds)
	if len(st.JobOutcomes) > 0 {
		outcomes := make(map[string]int64, len(st.JobOutcomes))
		for k, v := range st.JobOutcomes {
			outcomes[k] = v
		}
		writeScalarFamily(b, "gcao_sched_jobs_total", "counter",
			"Scheduler jobs by final outcome.", "outcome", outcomes)
	}
}
