package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"gcao/internal/native/prof"
	"gcao/internal/obs/attr"
)

// traceEvent is one Chrome trace_event record. The "X" (complete)
// phase carries both timestamp and duration in microseconds, so the
// file loads directly into chrome://tracing or Perfetto.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the Chrome trace_event JSON object form.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace emits the recorded spans in Chrome trace_event format.
// Span nesting is encoded by the events' time containment; counters
// are appended as a final instant event's args for easy inspection.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	r.mu.Lock()
	spans := append([]Span(nil), r.spans...)
	counters := make(map[string]any, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	attrRun := r.attrRun
	natProf := r.natProf
	r.mu.Unlock()
	f := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for _, s := range spans {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   s.StartUS,
			Dur:  s.DurUS,
			PID:  1,
			TID:  1,
			Args: map[string]any{"alloc_bytes": s.AllocBytes, "depth": s.Depth},
		})
	}
	// The simulator's supersteps render as a second lane (tid 2), laid
	// out serially under the default BSP cost model so the lane's
	// relative widths show where the communication time goes. The args
	// carry the blame record: placement site, h-relation, traffic.
	if attrRun != nil {
		model := attr.DefaultCostModel()
		ts := 0.0
		for _, s := range attrRun.Steps {
			cost := model.StepCost(s)
			dur := int64(cost * 1e6)
			if dur < 1 {
				dur = 1
			}
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: s.Site,
				Ph:   "X",
				TS:   int64(ts * 1e6),
				Dur:  dur,
				PID:  1,
				TID:  2,
				Args: map[string]any{
					"index": s.Index, "kind": s.Kind, "label": s.Label,
					"messages": s.Messages, "bytes": s.Bytes,
					"h_in": s.HIn, "h_out": s.HOut,
					"sources": s.Sources,
				},
			})
			ts += cost
		}
	}
	// A profiled native run renders as process 2: one lane per logical
	// processor (tid = processor number), each comm event a complete
	// span whose args carry the superstep, placement site and phase.
	// The gaps between spans ARE the compute time — the profiler only
	// records communication, so an empty stretch of lane reads as
	// compute, exactly as the fold accounts it.
	if natProf != nil {
		for q, evs := range natProf.Events {
			for _, ev := range evs {
				if ev.Dur == 0 {
					continue // zero-width markers clutter the lane
				}
				dur := ev.Dur / 1000
				if dur < 1 {
					dur = 1
				}
				f.TraceEvents = append(f.TraceEvents, traceEvent{
					Name: fmt.Sprintf("%s %s", ev.Phase, natProf.SiteName(ev.Site)),
					Ph:   "X",
					TS:   ev.Start / 1000,
					Dur:  dur,
					PID:  2,
					TID:  q,
					Args: map[string]any{
						"step": ev.Step, "site": natProf.SiteName(ev.Site),
						"phase": ev.Phase.String(), "dur_ns": ev.Dur,
					},
				})
			}
		}
	}
	if len(counters) > 0 {
		last := int64(0)
		for _, s := range spans {
			if end := s.StartUS + s.DurUS; end > last {
				last = end
			}
		}
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "metrics",
			Ph:   "i",
			TS:   last,
			PID:  1,
			TID:  1,
			Args: counters,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// MetricsDoc is the JSON document WriteMetrics emits: every counter
// and gauge, the placement decision log, the simulator communication
// profile when one was recorded, and the raw spans. encoding/json
// sorts map keys, so the output is deterministic.
type MetricsDoc struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Decisions  []Decision          `json:"decisions,omitempty"`
	Profile    *CommProfile        `json:"profile,omitempty"`
	Attr       *attr.Run           `json:"attr,omitempty"`
	NativeProf *prof.NativeProfile `json:"native_prof,omitempty"`
	Spans      []Span              `json:"spans,omitempty"`
}

// Doc snapshots the recorder into an exportable document.
func (r *Recorder) Doc() MetricsDoc {
	if r == nil {
		return MetricsDoc{Counters: map[string]int64{}}
	}
	return MetricsDoc{
		Counters:   r.Counters(),
		Gauges:     r.Gauges(),
		Decisions:  r.Decisions(),
		Profile:    r.CommProfile(),
		Attr:       r.Attribution(),
		NativeProf: r.NativeProfile(),
		Spans:      r.Spans(),
	}
}

// WriteMetrics emits the metrics document as indented JSON.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Doc())
}
