package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestRecorderConcurrency hammers one Recorder from many goroutines —
// spans, counters, gauges, decisions, profiles, snapshots and exports
// all interleaved — so `go test -race` proves every access path is
// guarded. The final totals double-check that no increments were lost
// to unsynchronized map writes.
func TestRecorderConcurrency(t *testing.T) {
	const workers = 16
	const iters = 200
	r := New()
	r.SetLog(NewLogger(io.Discard, LevelDebug), "race")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				end := r.Start(fmt.Sprintf("phase%d", w%4))
				r.Add("shared", 1)
				r.Add(fmt.Sprintf("worker.%d", w), 1)
				r.Gauge("g", float64(i))
				r.AddDecision(Decision{Entry: i, SubsumedBy: -1, Group: -1})
				r.Event(LevelDebug, "tick", F("i", i))
				if i%16 == 0 {
					p := NewCommProfile(2)
					p.AddPair(0, 1, 8)
					r.SetProfile(p)
				}
				// Concurrent readers.
				_ = r.Counters()
				_ = r.Gauges()
				_ = r.Spans()
				_ = r.Counter("shared")
				_ = r.CommProfile()
				if i%32 == 0 {
					_ = r.WriteTrace(io.Discard)
					_ = r.WriteMetrics(io.Discard)
				}
				end()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared"); got != workers*iters {
		t.Fatalf("lost counter increments: %d != %d", got, workers*iters)
	}
	if got := len(r.Decisions()); got != workers*iters {
		t.Fatalf("lost decisions: %d != %d", got, workers*iters)
	}
	if got := len(r.Spans()); got != workers*iters {
		t.Fatalf("lost spans: %d != %d", got, workers*iters)
	}
}

// TestRegistryConcurrency absorbs recorders and scrapes the registry
// concurrently, with the decision ring in the mix — the daemon's
// steady state under load.
func TestRegistryConcurrency(t *testing.T) {
	const workers = 12
	const iters = 100
	reg := NewRegistry()
	ring := NewDecisionRing(32)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rec := New()
				rec.Start("parse")()
				rec.Add("place.comb.groups", int64(w+1))
				rec.Add("spmd.comb.bytes", 1024)
				reg.Absorb(rec, "ok")
				reg.ObserveBytes("comb", 10)
				ring.Add(RequestRecord{ID: fmt.Sprintf("r%d-%d", w, i), Status: "ok"})
				_, _ = ring.Get(fmt.Sprintf("r%d-%d", w, i))
				_ = ring.IDs()
				if i%10 == 0 {
					if err := reg.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Requests(); got != workers*iters {
		t.Fatalf("lost requests: %d != %d", got, workers*iters)
	}
	if got := ring.Len(); got != 32 {
		t.Fatalf("ring len = %d", got)
	}
}
