package obs

import "math"

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: an observation lands in every bucket whose upper bound is at
// least the observed value, plus the implicit +Inf bucket. Buckets are
// fixed at construction so aggregation across requests and rendering
// in the text exposition format need no rebucketing.
//
// A Histogram is not internally locked; the Registry serializes all
// access to the histograms it owns.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf implicit
	counts []uint64  // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  uint64
}

// NewHistogram builds an empty histogram over the given upper bounds,
// which must be strictly increasing. An explicit trailing +Inf bound
// is dropped (it is always implicit).
func NewHistogram(bounds []float64) *Histogram {
	for len(bounds) > 0 && math.IsInf(bounds[len(bounds)-1], 1) {
		bounds = bounds[:len(bounds)-1]
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Bounds returns the finite upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Cumulative returns the cumulative bucket counts, one per finite
// bound plus the final +Inf bucket (which always equals Count).
func (h *Histogram) Cumulative() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		out[i] = acc
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) the way Prometheus's
// histogram_quantile does: find the bucket holding the target rank and
// interpolate linearly inside it. Observations in the +Inf overflow
// bucket report the largest finite bound (the histogram cannot resolve
// beyond its range). Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(h.bounds) { // +Inf bucket
			if len(h.bounds) == 0 {
				return h.sum / float64(h.count)
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	if len(h.bounds) == 0 {
		return h.sum / float64(h.count)
	}
	return h.bounds[len(h.bounds)-1]
}

// clone deep-copies the histogram (for lock-free rendering).
func (h *Histogram) clone() *Histogram {
	return &Histogram{
		bounds: h.bounds, // immutable after construction
		counts: append([]uint64(nil), h.counts...),
		sum:    h.sum,
		count:  h.count,
	}
}

// Default bucket sets for the three histogram families the Registry
// exports. The ranges cover the paper's workloads with headroom: phase
// latencies from tens of microseconds (parse on a kernel) to seconds
// (hydflo-sized sweeps), placed-message counts spanning Fig. 10(a)'s
// 2..52 column range, and per-compile communication volumes from a
// single ghost cell to hundreds of megabytes.
var (
	// LatencyBuckets are seconds.
	LatencyBuckets = []float64{
		100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3,
		50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5, 5, 10,
	}
	// CountBuckets are dimensionless counts (messages, groups).
	CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	// BytesBuckets are payload bytes.
	BytesBuckets = []float64{
		256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
	}
)
