package obs

import "fmt"

// CommProfile records the communication behaviour of one functional
// simulator run: the sender→receiver byte/message matrix (the Fig. 10
// message accounting, per pair), the per-superstep timeline, and the
// per-processor compute/communication/idle time split. It is built by
// a single goroutine (the interpreter) and is not internally locked.
type CommProfile struct {
	Procs int `json:"procs"`
	// PairBytes[src][dst] and PairMsgs[src][dst] accumulate the
	// point-to-point traffic between processor pairs. Collective
	// operations (reductions, broadcasts) appear in the superstep
	// timeline but not in the pair matrix.
	PairBytes [][]int64 `json:"pair_bytes"`
	PairMsgs  [][]int64 `json:"pair_msgs"`
	// Steps is the superstep timeline: one record per communication
	// group execution (each group is fenced by a barrier).
	Steps []Superstep `json:"supersteps"`
	// ComputeSec, CommSec and IdleSec split each processor's clock:
	// flop time, message/copy time, and barrier wait time.
	ComputeSec []float64 `json:"compute_seconds,omitempty"`
	CommSec    []float64 `json:"comm_seconds,omitempty"`
	IdleSec    []float64 `json:"idle_seconds,omitempty"`
}

// Superstep is one executed communication group: a barrier followed by
// the group's messages.
type Superstep struct {
	Index int `json:"index"`
	// Label identifies the placed group ("group3@B7.top"); Kind is the
	// communication kind ("NNC", "SUM", "BCAST", "GEN").
	Label string `json:"label"`
	Kind  string `json:"kind"`
	// Messages and Bytes are the dynamic messages and payload bytes
	// this execution charged to the ledger.
	Messages int   `json:"messages"`
	Bytes    int64 `json:"bytes"`
}

// NewCommProfile allocates an empty profile for p processors.
func NewCommProfile(p int) *CommProfile {
	prof := &CommProfile{Procs: p}
	prof.PairBytes = make([][]int64, p)
	prof.PairMsgs = make([][]int64, p)
	for i := 0; i < p; i++ {
		prof.PairBytes[i] = make([]int64, p)
		prof.PairMsgs[i] = make([]int64, p)
	}
	return prof
}

// AddPair charges one point-to-point message of the given payload.
func (p *CommProfile) AddPair(src, dst int, bytes int64) {
	if p == nil || src < 0 || dst < 0 || src >= p.Procs || dst >= p.Procs {
		return
	}
	p.PairBytes[src][dst] += bytes
	p.PairMsgs[src][dst]++
}

// AddStep appends one superstep record.
func (p *CommProfile) AddStep(label, kind string, messages int, bytes int64) {
	if p == nil {
		return
	}
	p.Steps = append(p.Steps, Superstep{
		Index:    len(p.Steps),
		Label:    label,
		Kind:     kind,
		Messages: messages,
		Bytes:    bytes,
	})
}

// Merge folds another profile into p: the pair matrices are summed
// elementwise, the supersteps appended (reindexed), and the
// per-processor second splits added where present. The sharded
// interpreter uses it to fold each shard's scratch pair matrix into
// the master profile; integer addition commutes, so the merged matrix
// is bit-identical regardless of shard count or merge order.
func (p *CommProfile) Merge(o *CommProfile) {
	if p == nil || o == nil {
		return
	}
	if o.Procs != p.Procs {
		panic(fmt.Sprintf("obs: merging CommProfile of %d procs into %d", o.Procs, p.Procs))
	}
	for i := 0; i < p.Procs; i++ {
		for j := 0; j < p.Procs; j++ {
			p.PairBytes[i][j] += o.PairBytes[i][j]
			p.PairMsgs[i][j] += o.PairMsgs[i][j]
		}
	}
	for _, s := range o.Steps {
		s.Index = len(p.Steps)
		p.Steps = append(p.Steps, s)
	}
	addSec := func(dst *[]float64, src []float64) {
		if len(src) == 0 {
			return
		}
		if len(*dst) == 0 {
			*dst = make([]float64, p.Procs)
		}
		for i := range src {
			(*dst)[i] += src[i]
		}
	}
	addSec(&p.ComputeSec, o.ComputeSec)
	addSec(&p.CommSec, o.CommSec)
	addSec(&p.IdleSec, o.IdleSec)
}

// TotalBytes sums the payload bytes over all supersteps.
func (p *CommProfile) TotalBytes() int64 {
	if p == nil {
		return 0
	}
	var total int64
	for _, s := range p.Steps {
		total += s.Bytes
	}
	return total
}

// TotalMessages sums the dynamic messages over all supersteps.
func (p *CommProfile) TotalMessages() int {
	if p == nil {
		return 0
	}
	total := 0
	for _, s := range p.Steps {
		total += s.Messages
	}
	return total
}

// MaxPairBytes returns the largest sender→receiver byte count, the
// heatmap normalizer.
func (p *CommProfile) MaxPairBytes() int64 {
	if p == nil {
		return 0
	}
	var m int64
	for _, row := range p.PairBytes {
		for _, b := range row {
			if b > m {
				m = b
			}
		}
	}
	return m
}
