package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gcao/internal/obs/attr"
)

// Registry is the process-global aggregation point of the
// observability layer: per-request Recorders are absorbed into it, and
// it renders the accumulated state in the Prometheus text exposition
// format for scraping. A long-lived server (cmd/gcaod) owns one
// Registry for its whole lifetime while every request gets a fresh
// Recorder, so Absorb must only ever see a recorder once — counter
// values are merged as deltas.
//
// The exported metric families, all prefixed gcao_:
//
//	gcao_requests_total{status}         counter, one per absorbed recorder
//	gcao_pipeline_counter_total{name}   every recorder counter, aggregated
//	gcao_pipeline_gauge{name}           last written value of each gauge
//	gcao_phase_seconds{phase}           histogram of pipeline span latency
//	gcao_placed_messages{version}       histogram of placed groups per compile
//	gcao_comm_bytes{version}            histogram of bytes moved per compile
//	gcao_superstep_hrelation_bytes{version}  histogram of per-superstep h-relations
//	gcao_site_comm_bytes_total{site}    counter of simulated bytes per placement site
//	gcao_comm_lower_bound_bytes{benchmark}  gauge, the routine's communication lower bound
//	gcao_optimality_gap_ratio{benchmark,version}  gauge, traffic over the lower bound
//	gcao_build_info{version}            constant 1, the build identity
//	gcao_http_requests_total{route,code}  counter of served HTTP requests
//	gcao_http_request_seconds{route}    histogram of HTTP request latency
//	gcao_queue_wait_seconds             histogram of scheduler queue wait
//
// plus, when a ServerStats callback is registered, scrape-time gauges
// (gcao_http_inflight, gcao_queue_depth, gcao_queue_capacity,
// gcao_jobs_active, gcao_pool_workers, gcao_job_avg_service_seconds)
// and the gcao_sched_jobs_total{outcome} counter family.
//
// Label values are rendered in sorted order, so the exposition is
// byte-deterministic given deterministic inputs.
type Registry struct {
	mu         sync.Mutex
	requests   map[string]int64
	counters   map[string]int64
	gauges     map[string]float64
	phase      map[string]*Histogram
	placed     map[string]*Histogram
	bytes      map[string]*Histogram
	hrel       map[string]*Histogram
	siteBytes  map[string]int64
	cacheStats func() []CacheTierStats

	// Optimality-gap state: the per-benchmark communication lower
	// bound and, per (benchmark, version), the latest observed traffic
	// against it. Gauges, not counters — each compile overwrites.
	gapBound  map[string]float64
	gapActual map[string]map[string]float64 // benchmark -> version -> bytes

	// Native-backend execution: wall-clock per run, message and
	// bytes-on-wire totals, collective tree hops and fabric buffer
	// allocations, by compiler version (see internal/native). Profiled
	// runs additionally feed the skew/blocked-time gauges and the
	// measured machine constants fitted against the BSP cost model
	// (see internal/native/prof).
	nativeSecs    map[string]*Histogram
	nativeMsgs    map[string]int64
	nativeWire    map[string]int64
	nativeHops    map[string]int64
	nativeAlloc   map[string]int64
	nativeSkew    map[string]float64
	nativeBlocked map[string]float64
	nativeFitL    map[string]float64
	nativeFitG    map[string]float64

	// Serving-layer state (see serve.go): RED metrics per route,
	// scheduler queue-wait ledger, build identity, and the live
	// gauges callback.
	httpReq     map[string]map[string]int64 // route -> code -> count
	httpLat     map[string]*Histogram       // route -> latency histogram
	queueWait   *Histogram
	buildInfo   string
	serverStats func() ServerStats
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		requests:      map[string]int64{},
		counters:      map[string]int64{},
		gauges:        map[string]float64{},
		phase:         map[string]*Histogram{},
		placed:        map[string]*Histogram{},
		bytes:         map[string]*Histogram{},
		hrel:          map[string]*Histogram{},
		siteBytes:     map[string]int64{},
		gapBound:      map[string]float64{},
		gapActual:     map[string]map[string]float64{},
		httpReq:       map[string]map[string]int64{},
		httpLat:       map[string]*Histogram{},
		queueWait:     NewHistogram(LatencyBuckets),
		nativeSecs:    map[string]*Histogram{},
		nativeMsgs:    map[string]int64{},
		nativeWire:    map[string]int64{},
		nativeHops:    map[string]int64{},
		nativeAlloc:   map[string]int64{},
		nativeSkew:    map[string]float64{},
		nativeBlocked: map[string]float64{},
		nativeFitL:    map[string]float64{},
		nativeFitG:    map[string]float64{},
	}
}

// NativeExecSample is one native-backend run's traffic summary as the
// registry records it: wall clock, point-to-point messages, raw bytes
// on the wire (payload plus validity bitmaps and framing), collective
// tree hops, and payload-buffer bytes the message fabric had to
// allocate (zero once the recycled pools are warm).
type NativeExecSample struct {
	Seconds    float64
	Messages   int64
	WireBytes  int64
	Hops       int64
	AllocBytes int64

	// Profiler-derived fields, present when the run was profiled:
	// compute skew (max/mean compute per superstep, 1.0 = perfectly
	// balanced), total seconds processors spent blocked in
	// communication, and — when the run was also calibrated against the
	// simulator's cost attribution — the measured machine constants.
	// Calibrated gates the fitted pair: an unprofiled or uncalibrated
	// run must not export stale zeros as "measured L and g".
	SkewRatio      float64
	BlockedSeconds float64
	FittedL        float64
	FittedG        float64
	Calibrated     bool
}

// ObserveNativeExec records one native-backend run, labeled by
// compiler version.
func (g *Registry) ObserveNativeExec(version string, s NativeExecSample) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.histLocked(g.nativeSecs, version, LatencyBuckets).Observe(s.Seconds)
	g.nativeMsgs[version] += s.Messages
	g.nativeWire[version] += s.WireBytes
	g.nativeHops[version] += s.Hops
	g.nativeAlloc[version] += s.AllocBytes
	// The fold pins SkewRatio >= 1 on every profiled run, so a positive
	// skew is the "this run was profiled" marker; unprofiled runs must
	// not materialize the profiler families at zero.
	if s.SkewRatio > 0 {
		g.nativeSkew[version] = s.SkewRatio
		g.nativeBlocked[version] += s.BlockedSeconds
	}
	if s.Calibrated {
		g.nativeFitL[version] = s.FittedL
		g.nativeFitG[version] = s.FittedG
	}
}

// NativeLiveStats is the profiled-native headline the ops view
// (/debug/live, gcaotop) shows: how many native runs the daemon has
// executed, the worst compute skew any version showed, accumulated
// blocked time, and the fitted machine constants of the preferred
// (comb, else lexicographically first calibrated) version.
type NativeLiveStats struct {
	Runs           int64   `json:"runs"`
	SkewRatio      float64 `json:"skew_ratio,omitempty"`
	BlockedSeconds float64 `json:"blocked_seconds,omitempty"`
	FittedL        float64 `json:"fitted_l_seconds,omitempty"`
	FittedG        float64 `json:"fitted_g_seconds_per_byte,omitempty"`
	Calibrated     bool    `json:"calibrated,omitempty"`
}

// NativeLive summarizes the native-backend state for the live view;
// ok is false until the daemon has observed at least one native run.
func (g *Registry) NativeLive() (NativeLiveStats, bool) {
	if g == nil {
		return NativeLiveStats{}, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	var st NativeLiveStats
	for _, h := range g.nativeSecs {
		st.Runs += int64(h.Count())
	}
	for _, skew := range g.nativeSkew {
		if skew > st.SkewRatio {
			st.SkewRatio = skew
		}
	}
	for _, sec := range g.nativeBlocked {
		st.BlockedSeconds += sec
	}
	if len(g.nativeFitG) > 0 {
		ver := "comb"
		if _, ok := g.nativeFitG[ver]; !ok {
			ver = sortedKeys(g.nativeFitG)[0]
		}
		st.FittedL = g.nativeFitL[ver]
		st.FittedG = g.nativeFitG[ver]
		st.Calibrated = true
	}
	return st, st.Runs > 0
}

// versions are the compiler versions whose per-compile counters Absorb
// turns into histogram observations.
var versions = []string{"orig", "nored", "comb"}

// Absorb merges one request's recorder into the registry: the request
// is counted under the given status, every counter is added, every
// gauge overwrites, every span feeds the phase-latency histogram, and
// the per-version placement/simulation counters feed the
// placed-messages and bytes-moved histograms. A nil recorder only
// counts the request.
func (g *Registry) Absorb(rec *Recorder, status string) {
	if g == nil {
		return
	}
	var (
		spans    []Span
		counters map[string]int64
		gauges   map[string]float64
		attrRun  *attr.Run
	)
	if rec != nil {
		spans = rec.Spans()
		counters = rec.Counters()
		gauges = rec.Gauges()
		attrRun = rec.Attribution()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.requests[status]++
	for k, v := range counters {
		g.counters[k] += v
	}
	for k, v := range gauges {
		g.gauges[k] = v
	}
	for _, s := range spans {
		g.histLocked(g.phase, s.Name, LatencyBuckets).Observe(float64(s.DurUS) / 1e6)
	}
	for _, v := range versions {
		if n, ok := counters["place."+v+".groups"]; ok {
			g.histLocked(g.placed, v, CountBuckets).Observe(float64(n))
		}
		if b, ok := counters["spmd."+v+".bytes"]; ok {
			g.histLocked(g.bytes, v, BytesBuckets).Observe(float64(b))
		}
	}
	if attrRun != nil {
		for _, s := range attrRun.Steps {
			g.histLocked(g.hrel, attrRun.Version, BytesBuckets).Observe(float64(s.H()))
			g.siteBytes[s.Site] += s.Bytes
		}
	}
}

// ObserveBytes records a bytes-moved-per-compile observation that did
// not come from a simulator run (the daemon feeds analytic estimates
// through this when a request asks for an estimate only).
func (g *Registry) ObserveBytes(version string, bytes float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.histLocked(g.bytes, version, BytesBuckets).Observe(bytes)
}

// SetOptimalityGap records a compile's communication lower bound and
// the traffic one compiler version actually produced against it. The
// gap ratio (actual/bound) is exported as
// gcao_optimality_gap_ratio{benchmark,version}; the bound itself as
// gcao_comm_lower_bound_bytes{benchmark}. A non-positive bound is
// recorded (the bound gauge is honest about "nothing provably moves")
// but yields no gap sample — the ratio would be meaningless.
func (g *Registry) SetOptimalityGap(benchmark, version string, boundBytes, actualBytes float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.gapBound[benchmark] = boundBytes
	byVer := g.gapActual[benchmark]
	if byVer == nil {
		byVer = map[string]float64{}
		g.gapActual[benchmark] = byVer
	}
	byVer[version] = actualBytes
}

// AggregateGap sums the registry's latest per-(benchmark, version)
// traffic against the matching lower bounds: the daemon-wide "how many
// times the floor are we moving" number the ops view shows. points is
// the number of (benchmark, version) samples with a measurable bound;
// zero points means no gap is known yet.
func (g *Registry) AggregateGap() (ratio float64, points int) {
	if g == nil {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	var actual, bound float64
	for bench, byVer := range g.gapActual {
		b := g.gapBound[bench]
		if b <= 0 {
			continue
		}
		for _, a := range byVer {
			actual += a
			bound += b
			points++
		}
	}
	if bound <= 0 {
		return 0, 0
	}
	return actual / bound, points
}

// histLocked returns (allocating on demand) the labeled histogram of a
// family. Callers hold g.mu.
func (g *Registry) histLocked(family map[string]*Histogram, label string, buckets []float64) *Histogram {
	h := family[label]
	if h == nil {
		h = NewHistogram(buckets)
		family[label] = h
	}
	return h
}

// CacheTierStats is one compilation-cache tier's scrape-time snapshot,
// rendered into the exposition as the gcao_cache_* families with the
// tier name as the label.
type CacheTierStats struct {
	Tier          string
	Entries       int
	Bytes         int64
	Hits          int64
	Misses        int64
	InflightWaits int64
	Evictions     int64
}

// SetCacheStatsFunc registers the callback WritePrometheus invokes at
// scrape time to snapshot the serving layer's cache tiers (nil
// unregisters). The callback must be safe for concurrent use; it is
// called outside the registry lock.
func (g *Registry) SetCacheStatsFunc(fn func() []CacheTierStats) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cacheStats = fn
}

// Requests returns the total number of absorbed requests.
func (g *Registry) Requests() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	var n int64
	for _, v := range g.requests {
		n += v
	}
	return n
}

// Counter returns an aggregated counter's value.
func (g *Registry) Counter(name string) int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.counters[name]
}

// registrySnapshot is the copied registry state rendering reads
// outside the lock.
type registrySnapshot struct {
	req           map[string]int64
	ctr           map[string]int64
	gau           map[string]float64
	phase         map[string]*Histogram
	placed        map[string]*Histogram
	bytes         map[string]*Histogram
	hrel          map[string]*Histogram
	siteBytes     map[string]int64
	gapBound      map[string]float64
	gapRatio      map[string]map[string]float64
	httpReq       map[string]map[string]int64
	httpLat       map[string]*Histogram
	queueWait     *Histogram
	buildInfo     string
	nativeSecs    map[string]*Histogram
	nativeMsgs    map[string]int64
	nativeWire    map[string]int64
	nativeHops    map[string]int64
	nativeAlloc   map[string]int64
	nativeSkew    map[string]float64
	nativeBlocked map[string]float64
	nativeFitL    map[string]float64
	nativeFitG    map[string]float64
}

// snapshot copies the registry state so rendering happens outside the
// lock.
func (g *Registry) snapshot() registrySnapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	cloneHists := func(m map[string]*Histogram) map[string]*Histogram {
		out := make(map[string]*Histogram, len(m))
		for k, h := range m {
			out[k] = h.clone()
		}
		return out
	}
	httpReq := make(map[string]map[string]int64, len(g.httpReq))
	for route, codes := range g.httpReq {
		httpReq[route] = copyMap(codes)
	}
	// Gap ratios are derived at snapshot time from the stored bound and
	// actual bytes, so the exposition always reflects one consistent
	// (bound, actual) pair.
	gapRatio := make(map[string]map[string]float64, len(g.gapActual))
	for bench, byVer := range g.gapActual {
		b := g.gapBound[bench]
		if b <= 0 {
			continue
		}
		out := make(map[string]float64, len(byVer))
		for ver, a := range byVer {
			out[ver] = a / b
		}
		gapRatio[bench] = out
	}
	return registrySnapshot{
		req:           copyMap(g.requests),
		ctr:           copyMap(g.counters),
		gau:           copyMap(g.gauges),
		phase:         cloneHists(g.phase),
		placed:        cloneHists(g.placed),
		bytes:         cloneHists(g.bytes),
		hrel:          cloneHists(g.hrel),
		siteBytes:     copyMap(g.siteBytes),
		gapBound:      copyMap(g.gapBound),
		gapRatio:      gapRatio,
		httpReq:       httpReq,
		httpLat:       cloneHists(g.httpLat),
		queueWait:     g.queueWait.clone(),
		buildInfo:     g.buildInfo,
		nativeSecs:    cloneHists(g.nativeSecs),
		nativeMsgs:    copyMap(g.nativeMsgs),
		nativeWire:    copyMap(g.nativeWire),
		nativeHops:    copyMap(g.nativeHops),
		nativeAlloc:   copyMap(g.nativeAlloc),
		nativeSkew:    copyMap(g.nativeSkew),
		nativeBlocked: copyMap(g.nativeBlocked),
		nativeFitL:    copyMap(g.nativeFitL),
		nativeFitG:    copyMap(g.nativeFitG),
	}
}

func copyMap[V int64 | float64](m map[string]V) map[string]V {
	out := make(map[string]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE headers per
// family, samples with sorted label values, histograms as cumulative
// _bucket series ending at le="+Inf" plus _sum and _count.
func (g *Registry) WritePrometheus(w io.Writer) error {
	if g == nil {
		return nil
	}
	snap := g.snapshot()
	g.mu.Lock()
	statsFn := g.cacheStats
	srvFn := g.serverStats
	g.mu.Unlock()
	var b strings.Builder
	if snap.buildInfo != "" {
		fmt.Fprintf(&b, "# HELP gcao_build_info Build identity; constant 1 labeled by version.\n# TYPE gcao_build_info gauge\n")
		fmt.Fprintf(&b, "gcao_build_info{version=%s} 1\n", quoteLabel(snap.buildInfo))
	}
	writeScalarFamily(&b, "gcao_requests_total", "counter",
		"Compile requests absorbed into the registry, by status.", "status", snap.req)
	writeHTTPFamilies(&b, snap.httpReq, snap.httpLat)
	if snap.queueWait.Count() > 0 {
		writeHistFamily(&b, "gcao_queue_wait_seconds",
			"Scheduler admission-queue wait in seconds, all jobs.", "pool",
			map[string]*Histogram{"compile": snap.queueWait})
	}
	writeScalarFamily(&b, "gcao_pipeline_counter_total", "counter",
		"Aggregated pipeline recorder counters, by dotted counter name.", "name", snap.ctr)
	writeScalarFamily(&b, "gcao_pipeline_gauge", "gauge",
		"Last written value of each pipeline recorder gauge, by name.", "name", snap.gau)
	writeHistFamily(&b, "gcao_phase_seconds",
		"Pipeline phase latency in seconds, by phase (span) name.", "phase", snap.phase)
	writeHistFamily(&b, "gcao_placed_messages",
		"Placed communication groups per compile, by compiler version.", "version", snap.placed)
	writeHistFamily(&b, "gcao_comm_bytes",
		"Bytes moved per compile (simulated or estimated), by compiler version.", "version", snap.bytes)
	writeHistFamily(&b, "gcao_superstep_hrelation_bytes",
		"Per-superstep h-relation size in bytes (max in/out per processor), by compiler version.", "version", snap.hrel)
	writeScalarFamily(&b, "gcao_site_comm_bytes_total", "counter",
		"Simulated communication bytes attributed to each placement site.", "site", snap.siteBytes)
	writeHistFamily(&b, "gcao_native_exec_seconds",
		"Native goroutine-backend wall clock per run in seconds, by compiler version.", "version", snap.nativeSecs)
	writeScalarFamily(&b, "gcao_native_messages_total", "counter",
		"Point-to-point messages moved by the native backend, by compiler version.", "version", snap.nativeMsgs)
	writeScalarFamily(&b, "gcao_native_wire_bytes_total", "counter",
		"Raw bytes the native backend put on the wire (payload, validity bitmaps and framing), by compiler version.", "version", snap.nativeWire)
	writeScalarFamily(&b, "gcao_native_collective_hops_total", "counter",
		"Binomial-tree hops moved by native collectives (gather ascents, broadcast descents), by compiler version.", "version", snap.nativeHops)
	writeScalarFamily(&b, "gcao_native_alloc_bytes_total", "counter",
		"Payload-buffer bytes the native message fabric allocated because no recycled buffer fit, by compiler version.", "version", snap.nativeAlloc)
	writeScalarFamily(&b, "gcao_native_skew_ratio", "gauge",
		"Compute skew of the last profiled native run (max/mean compute per superstep; 1.0 is perfectly balanced), by compiler version.", "version", snap.nativeSkew)
	writeScalarFamily(&b, "gcao_native_blocked_seconds_total", "counter",
		"Seconds native processors spent blocked in sends, receive waits, barrier trees and SUM collectives, by compiler version.", "version", snap.nativeBlocked)
	writeScalarFamily(&b, "gcao_native_fitted_l_seconds", "gauge",
		"Per-superstep latency constant L fitted by least squares from the last calibrated native run, by compiler version.", "version", snap.nativeFitL)
	writeScalarFamily(&b, "gcao_native_fitted_g_seconds_per_byte", "gauge",
		"Inverse-bandwidth constant g fitted by least squares from the last calibrated native run, by compiler version.", "version", snap.nativeFitG)
	writeScalarFamily(&b, "gcao_comm_lower_bound_bytes", "gauge",
		"Placement-independent communication lower bound of the last compile, by routine.", "benchmark", snap.gapBound)
	writeTwoLabelFamily(&b, "gcao_optimality_gap_ratio", "gauge",
		"Latest traffic over the communication lower bound, by routine and compiler version.",
		"benchmark", "version", snap.gapRatio)
	if statsFn != nil {
		writeCacheFamilies(&b, statsFn())
	}
	if srvFn != nil {
		writeServerFamilies(&b, srvFn())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeCacheFamilies renders the compilation-cache tiers as the
// gcao_cache_* families, labeled by tier.
func writeCacheFamilies(b *strings.Builder, tiers []CacheTierStats) {
	if len(tiers) == 0 {
		return
	}
	hits := map[string]int64{}
	misses := map[string]int64{}
	waits := map[string]int64{}
	evictions := map[string]int64{}
	entries := map[string]int64{}
	bytes := map[string]int64{}
	for _, t := range tiers {
		hits[t.Tier] = t.Hits
		misses[t.Tier] = t.Misses
		waits[t.Tier] = t.InflightWaits
		evictions[t.Tier] = t.Evictions
		entries[t.Tier] = int64(t.Entries)
		bytes[t.Tier] = t.Bytes
	}
	writeScalarFamily(b, "gcao_cache_hits_total", "counter",
		"Compilation cache lookups served from a resident entry, by tier.", "tier", hits)
	writeScalarFamily(b, "gcao_cache_misses_total", "counter",
		"Compilation cache lookups that computed the value, by tier.", "tier", misses)
	writeScalarFamily(b, "gcao_cache_inflight_waits_total", "counter",
		"Lookups coalesced onto a concurrent identical computation (singleflight), by tier.", "tier", waits)
	writeScalarFamily(b, "gcao_cache_evictions_total", "counter",
		"Entries evicted to respect the entry or byte bound, by tier.", "tier", evictions)
	writeScalarFamily(b, "gcao_cache_entries", "gauge",
		"Entries resident in the compilation cache, by tier.", "tier", entries)
	writeScalarFamily(b, "gcao_cache_bytes", "gauge",
		"Estimated bytes resident in the compilation cache, by tier.", "tier", bytes)
}

func writeScalarFamily[V int64 | float64](b *strings.Builder, name, typ, help, label string, samples map[string]V) {
	if len(samples) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, k := range sortedKeys(samples) {
		fmt.Fprintf(b, "%s{%s=%s} %s\n", name, label, quoteLabel(k), formatValue(float64(samples[k])))
	}
}

// writeTwoLabelFamily renders a family whose samples carry two labels,
// both in sorted order (outer, then inner), so the exposition stays
// byte-deterministic.
func writeTwoLabelFamily(b *strings.Builder, name, typ, help, outer, inner string, samples map[string]map[string]float64) {
	n := 0
	for _, m := range samples {
		n += len(m)
	}
	if n == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, k1 := range sortedKeys(samples) {
		for _, k2 := range sortedKeys(samples[k1]) {
			fmt.Fprintf(b, "%s{%s=%s,%s=%s} %s\n",
				name, outer, quoteLabel(k1), inner, quoteLabel(k2), formatValue(samples[k1][k2]))
		}
	}
}

func writeHistFamily(b *strings.Builder, name, help, label string, hists map[string]*Histogram) {
	if len(hists) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, k := range sortedKeys(hists) {
		h := hists[k]
		cum := h.Cumulative()
		bounds := h.Bounds()
		lv := quoteLabel(k)
		for i, bound := range bounds {
			fmt.Fprintf(b, "%s_bucket{%s=%s,le=\"%s\"} %d\n", name, label, lv, formatValue(bound), cum[i])
		}
		fmt.Fprintf(b, "%s_bucket{%s=%s,le=\"+Inf\"} %d\n", name, label, lv, cum[len(cum)-1])
		fmt.Fprintf(b, "%s_sum{%s=%s} %s\n", name, label, lv, formatValue(h.Sum()))
		fmt.Fprintf(b, "%s_count{%s=%s} %d\n", name, label, lv, h.Count())
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trip representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// quoteLabel renders a label value per the exposition format:
// backslash, double quote and newline escaped, wrapped in quotes.
func quoteLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return `"` + s + `"`
}
