// Package obs is the zero-dependency observability subsystem of the
// compiler and simulator: a span recorder capturing wall time and
// allocations for every pipeline phase, a named counter/gauge metrics
// registry, a structured per-entry placement decision log (the
// machine-readable version of the paper's Fig. 6 trace annotations),
// and a communication profile recording the simulator's per-superstep
// message traffic and sender→receiver byte matrix.
//
// Every method is nil-safe: a nil *Recorder is a no-op, so the
// compiler pipeline threads one unconditionally and pays nothing when
// observability is disabled.
package obs

import (
	"runtime"
	"sync"
	"time"

	"gcao/internal/native/prof"
	"gcao/internal/obs/attr"
)

// Span is one completed pipeline phase.
type Span struct {
	Name string `json:"name"`
	// StartUS and DurUS are microseconds relative to the recorder's
	// creation.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// AllocBytes is the heap allocated during the span (cumulative
	// allocation delta, not live bytes).
	AllocBytes int64 `json:"alloc_bytes"`
	// Depth is the nesting depth at which the span was opened.
	Depth int `json:"depth"`
}

// Recorder accumulates spans, metrics, placement decisions and a
// communication profile over one or more pipeline runs.
type Recorder struct {
	mu        sync.Mutex
	epoch     time.Time
	spans     []Span
	depth     int
	counters  map[string]int64
	gauges    map[string]float64
	decisions []Decision
	profile   *CommProfile
	attrRun   *attr.Run
	natProf   *prof.NativeProfile
	log       *Logger
	reqID     string
}

// New builds an empty recorder whose clock starts now.
func New() *Recorder {
	return &Recorder{
		epoch:    time.Now(),
		counters: map[string]int64{},
		gauges:   map[string]float64{},
	}
}

// SetLog attaches a structured event logger and a request id to the
// recorder: every subsequent Event (and the debug event emitted when a
// span ends) is written request-scoped. A nil logger detaches.
func (r *Recorder) SetLog(l *Logger, reqID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = l
	r.reqID = reqID
}

// Event emits one structured log event through the attached logger
// (no-op without one), prefixing the recorder's request id.
func (r *Recorder) Event(lv Level, event string, fields ...Field) {
	if r == nil {
		return
	}
	r.mu.Lock()
	l, id := r.log, r.reqID
	r.mu.Unlock()
	if !l.Enabled(lv) {
		return
	}
	if id != "" {
		fields = append([]Field{F("req", id)}, fields...)
	}
	l.Log(lv, event, fields...)
}

// SpanEnd closes a span opened by Start.
type SpanEnd func()

// Start opens a named span and returns the closure that ends it:
//
//	defer rec.Start("scalarize")()
//
// On a nil recorder it returns a no-op.
func (r *Recorder) Start(name string) SpanEnd {
	if r == nil {
		return func() {}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startAlloc := ms.TotalAlloc
	start := time.Now()
	r.mu.Lock()
	depth := r.depth
	r.depth++
	r.mu.Unlock()
	done := false
	return func() {
		if done {
			return
		}
		done = true
		dur := time.Since(start)
		runtime.ReadMemStats(&ms)
		alloc := int64(ms.TotalAlloc - startAlloc)
		r.mu.Lock()
		r.depth--
		r.spans = append(r.spans, Span{
			Name:       name,
			StartUS:    start.Sub(r.epoch).Microseconds(),
			DurUS:      dur.Microseconds(),
			AllocBytes: alloc,
			Depth:      depth,
		})
		r.mu.Unlock()
		r.Event(LevelDebug, "phase.done",
			F("phase", name), F("dur_us", dur.Microseconds()), F("alloc_bytes", alloc))
	}
}

// Spans returns a copy of the completed spans in completion order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Add increments a named counter.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += delta
}

// Gauge sets a named gauge.
func (r *Recorder) Gauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = v
}

// Counter returns a counter's current value (0 when absent or nil).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Counters returns a copy of all counters.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Gauges returns a copy of all gauges.
func (r *Recorder) Gauges() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// AddDecision appends one placement decision record.
func (r *Recorder) AddDecision(d Decision) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.decisions = append(r.decisions, d)
}

// Decisions returns a copy of the decision log.
func (r *Recorder) Decisions() []Decision {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Decision(nil), r.decisions...)
}

// SetProfile installs the communication profile of the latest
// simulator run (a later run replaces an earlier one).
func (r *Recorder) SetProfile(p *CommProfile) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.profile = p
}

// CommProfile returns the installed communication profile, or nil.
func (r *Recorder) CommProfile() *CommProfile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.profile
}

// SetAttribution installs the cost-attribution record of the latest
// simulator run (a later run replaces an earlier one; nil clears).
func (r *Recorder) SetAttribution(a *attr.Run) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attrRun = a
}

// Attribution returns the installed cost-attribution record, or nil.
func (r *Recorder) Attribution() *attr.Run {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attrRun
}

// SetNativeProfile installs the runtime profile of the latest profiled
// native run (a later run replaces an earlier one; nil clears).
func (r *Recorder) SetNativeProfile(p *prof.NativeProfile) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.natProf = p
}

// NativeProfile returns the installed native runtime profile, or nil.
func (r *Recorder) NativeProfile() *prof.NativeProfile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.natProf
}

// ModelSteps converts a simulator cost-attribution record into the
// profiler's model-step form under the given cost model: one entry per
// superstep, carrying the stable site id, the h-relation in bytes and
// the analytic cost L + g·h. Both backends execute the identical group
// sequence in program order, so index k joins native superstep k.
func ModelSteps(run *attr.Run, model attr.CostModel) []prof.ModelStep {
	if run == nil {
		return nil
	}
	out := make([]prof.ModelStep, len(run.Steps))
	for i, s := range run.Steps {
		out[i] = prof.ModelStep{
			Index:      s.Index,
			Site:       s.Site,
			HBytes:     s.H(),
			ModeledSec: model.StepCost(s),
		}
	}
	return out
}
