package obs

import (
	"fmt"
	"strings"
)

// Decision outcomes.
const (
	// OutcomePlaced marks an entry that survived elimination and is a
	// member of a placed communication group.
	OutcomePlaced = "placed"
	// OutcomeSubsumed marks an entry eliminated as redundant: a
	// subsuming entry's exchange delivers its data.
	OutcomeSubsumed = "subsumed"
	// OutcomeCoalesced marks a diagonal NNC entry absorbed into axis
	// exchanges by the front end (§2.2); its carriers move the data.
	OutcomeCoalesced = "coalesced"
)

// Decision is the machine-readable record of what the placement
// algorithm did with one communication entry — the structured version
// of the annotation the paper's prototype wrote into its listing file
// (Fig. 6): the entry's placement range, its candidate chain, and
// whether it was placed, killed by a subsumer, or absorbed by a
// combine.
type Decision struct {
	// Version is the compiler version ("orig", "nored", "comb") the
	// decision belongs to; one recorder may log several placements.
	Version string `json:"version"`
	Entry   int    `json:"entry"`
	Array   string `json:"array"`
	Kind    string `json:"kind"`
	// CommLevel is the paper's CommLevel(u) (§4.2).
	CommLevel int `json:"comm_level"`
	// Earliest and Latest bound the legal placement range (§4.2–4.3);
	// Candidates is the dominator-path chain between them (§4.4),
	// earliest-first. Empty for coalesced entries.
	Earliest   string   `json:"earliest,omitempty"`
	Latest     string   `json:"latest,omitempty"`
	Candidates []string `json:"candidates,omitempty"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// SubsumedBy / SubsumedAt identify the killing entry and the
	// position where subsumption was proven (−1 / empty when placed).
	SubsumedBy int    `json:"subsumed_by"`
	SubsumedAt string `json:"subsumed_at,omitempty"`
	// Carriers lists the axis-exchange entries a coalesced diagonal
	// rides on.
	Carriers []int `json:"carriers,omitempty"`
	// Group / GroupPos / GroupSize describe the placed group for
	// OutcomePlaced (Group is −1 otherwise); Combined reports whether
	// the group merged several entries into one message.
	Group     int    `json:"group"`
	GroupPos  string `json:"group_pos,omitempty"`
	GroupSize int    `json:"group_size,omitempty"`
	Combined  bool   `json:"combined,omitempty"`
	// Site is the placed group's stable site id — the key the cost
	// attribution layer blames simulator traffic to, linking the
	// decision log to the blame table.
	Site string `json:"site,omitempty"`
}

// Format renders the decision as one human-readable line, the form
// `hpfc -explain` prints.
func (d Decision) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "e%-3d %-8s %-5s level=%d", d.Entry, d.Array, d.Kind, d.CommLevel)
	if d.Earliest != "" {
		fmt.Fprintf(&b, " earliest=%s latest=%s candidates=%d", d.Earliest, d.Latest, len(d.Candidates))
	}
	switch d.Outcome {
	case OutcomePlaced:
		fmt.Fprintf(&b, " -> placed group%d@%s", d.Group, d.GroupPos)
		if d.Combined {
			fmt.Fprintf(&b, " (combined with %d others)", d.GroupSize-1)
		}
	case OutcomeSubsumed:
		fmt.Fprintf(&b, " -> subsumed by e%d", d.SubsumedBy)
		if d.SubsumedAt != "" {
			fmt.Fprintf(&b, " at %s", d.SubsumedAt)
		}
	case OutcomeCoalesced:
		carriers := make([]string, len(d.Carriers))
		for i, c := range d.Carriers {
			carriers[i] = fmt.Sprintf("e%d", c)
		}
		fmt.Fprintf(&b, " -> coalesced into axis exchanges {%s}", strings.Join(carriers, ", "))
	default:
		fmt.Fprintf(&b, " -> %s", d.Outcome)
	}
	return b.String()
}
