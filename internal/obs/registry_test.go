package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 107 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// le=1 catches 0.5 and the boundary value 1; le=2 adds 1.5; le=4
	// adds the boundary 4; +Inf adds 100.
	want := []uint64{2, 3, 4, 5}
	got := h.Cumulative()
	if len(got) != len(want) {
		t.Fatalf("cumulative = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", got, want)
		}
	}
	// A nil histogram is inert.
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Cumulative() != nil {
		t.Fatal("nil histogram retained state")
	}
}

func TestHistogramDropsExplicitInf(t *testing.T) {
	h := NewHistogram([]float64{1, math.Inf(1)})
	if got := len(h.Bounds()); got != 1 {
		t.Fatalf("bounds = %v", h.Bounds())
	}
}

func TestRegistryAbsorbAndRender(t *testing.T) {
	rec := New()
	rec.Start("parse")()
	rec.Start("place:comb")()
	rec.Add("place.comb.entries", 20)
	rec.Add("place.comb.groups", 8)
	rec.Add("spmd.comb.bytes", 4096)
	rec.Gauge("comm.ratio", 0.4)

	reg := NewRegistry()
	reg.Absorb(rec, "ok")
	reg.Absorb(nil, "error") // nil recorder still counts the request

	if reg.Requests() != 2 {
		t.Fatalf("requests = %d", reg.Requests())
	}
	if reg.Counter("place.comb.groups") != 8 {
		t.Fatalf("counter = %d", reg.Counter("place.comb.groups"))
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := CheckPromText(buf.Bytes()); err != nil {
		t.Fatalf("exposition not parseable: %v\n%s", err, text)
	}
	for _, want := range []string{
		`gcao_requests_total{status="ok"} 1`,
		`gcao_requests_total{status="error"} 1`,
		`gcao_pipeline_counter_total{name="place.comb.groups"} 8`,
		`gcao_pipeline_gauge{name="comm.ratio"} 0.4`,
		`gcao_phase_seconds_bucket{phase="parse",le="+Inf"} 1`,
		`gcao_phase_seconds_count{phase="parse"} 1`,
		`gcao_placed_messages_bucket{version="comb",le="8"} 1`,
		`gcao_placed_messages_sum{version="comb"} 8`,
		`gcao_comm_bytes_bucket{version="comb",le="4096"} 1`,
		`# TYPE gcao_phase_seconds histogram`,
		`# TYPE gcao_requests_total counter`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// A second render with no new absorption is byte-identical
	// (deterministic label order).
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("exposition not deterministic")
	}
}

func TestRegistryObserveBytes(t *testing.T) {
	reg := NewRegistry()
	reg.ObserveBytes("comb", 1000)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `gcao_comm_bytes_count{version="comb"} 1`) {
		t.Fatalf("estimate bytes not observed:\n%s", buf.String())
	}
}

func TestRegistryObserveNativeExec(t *testing.T) {
	reg := NewRegistry()
	reg.ObserveNativeExec("comb", NativeExecSample{Seconds: 0.012, Messages: 96, WireBytes: 4096, Hops: 12, AllocBytes: 0})
	reg.ObserveNativeExec("comb", NativeExecSample{Seconds: 0.014, Messages: 96, WireBytes: 4096, Hops: 12, AllocBytes: 512})
	reg.ObserveNativeExec("orig", NativeExecSample{Seconds: 0.020, Messages: 480, WireBytes: 20480, Hops: 60, AllocBytes: 2048})
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := CheckPromText(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	if !strings.Contains(text, `gcao_native_exec_seconds_count{version="comb"} 2`) {
		t.Fatalf("native exec histogram missing:\n%s", text)
	}
	if !strings.Contains(text, `gcao_native_messages_total{version="orig"} 480`) {
		t.Fatalf("native message counter missing:\n%s", text)
	}
	if !strings.Contains(text, `gcao_native_messages_total{version="comb"} 192`) {
		t.Fatalf("native message counter not accumulated:\n%s", text)
	}
	if !strings.Contains(text, `gcao_native_wire_bytes_total{version="comb"} 8192`) {
		t.Fatalf("native wire-byte counter missing:\n%s", text)
	}
	if !strings.Contains(text, `gcao_native_collective_hops_total{version="orig"} 60`) {
		t.Fatalf("native hop counter missing:\n%s", text)
	}
	if !strings.Contains(text, `gcao_native_alloc_bytes_total{version="comb"} 512`) {
		t.Fatalf("native alloc counter missing:\n%s", text)
	}
	// No run was profiled, so none of the profiler-derived families may
	// appear — an uncalibrated run must not export zeros as measurements.
	for _, fam := range []string{
		"gcao_native_skew_ratio", "gcao_native_blocked_seconds_total",
		"gcao_native_fitted_l_seconds", "gcao_native_fitted_g_seconds_per_byte",
	} {
		if strings.Contains(text, fam) {
			t.Fatalf("unprofiled run exported %s:\n%s", fam, text)
		}
	}
}

func TestRegistryObserveNativeProfiled(t *testing.T) {
	reg := NewRegistry()
	reg.ObserveNativeExec("comb", NativeExecSample{
		Seconds: 0.012, Messages: 96, WireBytes: 4096,
		SkewRatio: 1.25, BlockedSeconds: 0.004,
		FittedL: 42e-6, FittedG: 0.9e-9, Calibrated: true,
	})
	reg.ObserveNativeExec("comb", NativeExecSample{
		Seconds: 0.013, Messages: 96, WireBytes: 4096,
		SkewRatio: 1.5, BlockedSeconds: 0.006,
		FittedL: 40e-6, FittedG: 1.1e-9, Calibrated: true,
	})
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := CheckPromText(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	// Gauges carry the latest profiled run; blocked time accumulates.
	if !strings.Contains(text, `gcao_native_skew_ratio{version="comb"} 1.5`) {
		t.Fatalf("skew gauge missing or stale:\n%s", text)
	}
	if !strings.Contains(text, `gcao_native_blocked_seconds_total{version="comb"} 0.01`) {
		t.Fatalf("blocked counter not accumulated:\n%s", text)
	}
	if !strings.Contains(text, `gcao_native_fitted_l_seconds{version="comb"} 4e-05`) {
		t.Fatalf("fitted L gauge missing or stale:\n%s", text)
	}
	if !strings.Contains(text, `gcao_native_fitted_g_seconds_per_byte{version="comb"} 1.1e-09`) {
		t.Fatalf("fitted g gauge missing or stale:\n%s", text)
	}
}

func TestCheckPromTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"metric_without_type 1\n",
		"# TYPE m counter\nm{unterminated=\"x} 1\n",
		"# TYPE m histogram\nm_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3\nm_bucket{le=\"+Inf\"} 5\nm_sum 1\nm_count 5\n",
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", // missing _sum
		"not a metric line at all\n",
	} {
		if err := CheckPromText([]byte(bad)); err == nil {
			t.Errorf("CheckPromText accepted %q", bad)
		}
	}
	good := "# HELP m things\n# TYPE m counter\nm{l=\"a\"} 1\nm{l=\"b\"} 2\n"
	if err := CheckPromText([]byte(good)); err != nil {
		t.Errorf("CheckPromText rejected valid text: %v", err)
	}
}

func TestDecisionRingBoundsAndLookup(t *testing.T) {
	ring := NewDecisionRing(3)
	for i := 0; i < 5; i++ {
		ring.Add(RequestRecord{
			ID:       fmt.Sprintf("r%d", i),
			Status:   "ok",
			Decision: []Decision{{Entry: i, SubsumedBy: -1, Group: -1}},
		})
	}
	if ring.Len() != 3 {
		t.Fatalf("len = %d", ring.Len())
	}
	if _, ok := ring.Get("r0"); ok {
		t.Fatal("evicted record still retrievable")
	}
	rec, ok := ring.Get("r4")
	if !ok || len(rec.Decision) != 1 || rec.Decision[0].Entry != 4 {
		t.Fatalf("get r4 = %+v ok=%v", rec, ok)
	}
	ids := ring.IDs()
	if len(ids) != 3 || ids[0] != "r4" || ids[2] != "r2" {
		t.Fatalf("ids = %v", ids)
	}
	// Nil and zero-capacity rings are inert.
	var nilRing *DecisionRing
	nilRing.Add(RequestRecord{ID: "x"})
	if nilRing.Len() != 0 || nilRing.IDs() != nil {
		t.Fatal("nil ring retained state")
	}
	zero := NewDecisionRing(0)
	zero.Add(RequestRecord{ID: "x"})
	if zero.Len() != 0 {
		t.Fatal("zero-capacity ring retained a record")
	}
}

func TestLoggerLevelsAndBinding(t *testing.T) {
	var buf bytes.Buffer
	base := NewLogger(&buf, LevelInfo)
	base.now = func() time.Time { return time.Unix(12, 0) }
	l := base.With(F("req", "r1"))
	l.Debug("dropped")
	l.Info("kept", F("n", 3), F("arr", "cu"))
	l.Error("boom", F("err", "bad"))
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), buf.String())
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if ev["level"] != "info" || ev["event"] != "kept" || ev["req"] != "r1" || ev["n"] != 3.0 {
		t.Fatalf("event fields wrong: %v", ev)
	}
	if _, ok := ev["ts"]; !ok {
		t.Fatal("event missing ts")
	}
	// Field order: bound fields lead, call fields follow, insertion order.
	if !strings.Contains(lines[0], `"req":"r1","n":3,"arr":"cu"`) {
		t.Fatalf("field order lost: %s", lines[0])
	}
	// Nil logger and detached recorder are inert.
	var nilL *Logger
	nilL.Info("x")
	if nilL.With(F("a", 1)) != nil {
		t.Fatal("nil With should stay nil")
	}
	if nilL.Enabled(LevelError) {
		t.Fatal("nil logger enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "warning": LevelWarn, "ERROR": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestRecorderEventCarriesReqID(t *testing.T) {
	var buf bytes.Buffer
	rec := New()
	rec.SetLog(NewLogger(&buf, LevelDebug), "req-9")
	rec.Start("parse")() // emits phase.done at debug
	rec.Event(LevelInfo, "place.done", F("groups", 4))
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 events, got %d: %q", len(lines), out)
	}
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event not JSON: %v", err)
		}
		if ev["req"] != "req-9" {
			t.Fatalf("event missing request id: %s", line)
		}
	}
	// Detaching stops emission; nil recorder stays inert.
	rec.SetLog(nil, "")
	rec.Event(LevelError, "late")
	if strings.Count(buf.String(), "\n") != 2 {
		t.Fatal("detached recorder still logged")
	}
	var nilRec *Recorder
	nilRec.SetLog(NewLogger(&buf, LevelDebug), "x")
	nilRec.Event(LevelError, "x")
}

func TestRegistryCacheFamilies(t *testing.T) {
	g := NewRegistry()
	g.Absorb(nil, "ok")
	// Without a stats callback there are no gcao_cache_* families.
	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "gcao_cache_") {
		t.Fatal("cache families rendered without a callback")
	}
	g.SetCacheStatsFunc(func() []CacheTierStats {
		return []CacheTierStats{
			{Tier: "compile", Entries: 3, Bytes: 4096, Hits: 7, Misses: 3, InflightWaits: 2, Evictions: 1},
			{Tier: "place", Entries: 5, Bytes: 1024, Hits: 9, Misses: 5},
		}
	})
	buf.Reset()
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := CheckPromText([]byte(text)); err != nil {
		t.Fatalf("exposition with cache families invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`gcao_cache_hits_total{tier="compile"} 7`,
		`gcao_cache_hits_total{tier="place"} 9`,
		`gcao_cache_misses_total{tier="compile"} 3`,
		`gcao_cache_inflight_waits_total{tier="compile"} 2`,
		`gcao_cache_evictions_total{tier="compile"} 1`,
		`gcao_cache_entries{tier="place"} 5`,
		`gcao_cache_bytes{tier="compile"} 4096`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// Unregistering removes the families again.
	g.SetCacheStatsFunc(nil)
	buf.Reset()
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "gcao_cache_") {
		t.Fatal("cache families rendered after unregistering")
	}
}
