package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity, numbered like log/slog so the two scales
// interoperate.
type Level int

const (
	LevelDebug Level = -4
	LevelInfo  Level = 0
	LevelWarn  Level = 4
	LevelError Level = 8
)

func (l Level) String() string {
	switch {
	case l <= LevelDebug:
		return "debug"
	case l <= LevelInfo:
		return "info"
	case l <= LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel resolves "debug", "info", "warn" or "error".
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q", s)
}

// Field is one key/value pair of a structured event.
type Field struct {
	Key string
	Val any
}

// F builds a Field.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Logger is a leveled structured event logger emitting one JSON object
// per line: {"ts":…,"level":…,"event":…, bound fields…, call fields…}.
// Field order is insertion order (not sorted), so request-scoped bound
// fields like the request id lead every line. All methods are safe for
// concurrent use and nil-safe, mirroring the Recorder contract.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	min   Level
	bound []Field
	// now is the clock, replaceable in tests.
	now func() time.Time
}

// NewLogger builds a logger writing events at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, now: time.Now}
}

// With returns a logger sharing the sink whose every event carries the
// given bound fields first.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil {
		return nil
	}
	b := append(append([]Field(nil), l.bound...), fields...)
	return &Logger{mu: l.mu, w: l.w, min: l.min, bound: b, now: l.now}
}

// Enabled reports whether events at the level would be written.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.min }

// Log writes one event if the level passes the threshold.
func (l *Logger) Log(lv Level, event string, fields ...Field) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.WriteByte('{')
	writeJSONField(&b, "ts", l.now().UTC().Format(time.RFC3339Nano))
	b.WriteByte(',')
	writeJSONField(&b, "level", lv.String())
	b.WriteByte(',')
	writeJSONField(&b, "event", event)
	for _, f := range l.bound {
		b.WriteByte(',')
		writeJSONField(&b, f.Key, f.Val)
	}
	for _, f := range fields {
		b.WriteByte(',')
		writeJSONField(&b, f.Key, f.Val)
	}
	b.WriteString("}\n")
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}

// Debug, Info, Warn and Error are Log at fixed levels.
func (l *Logger) Debug(event string, fields ...Field) { l.Log(LevelDebug, event, fields...) }
func (l *Logger) Info(event string, fields ...Field)  { l.Log(LevelInfo, event, fields...) }
func (l *Logger) Warn(event string, fields ...Field)  { l.Log(LevelWarn, event, fields...) }
func (l *Logger) Error(event string, fields ...Field) { l.Log(LevelError, event, fields...) }

// writeJSONField appends `"key":value` with the value marshaled by
// encoding/json; unmarshalable values degrade to their fmt
// representation rather than dropping the event.
func writeJSONField(b *strings.Builder, key string, val any) {
	kb, _ := json.Marshal(key)
	b.Write(kb)
	b.WriteByte(':')
	vb, err := json.Marshal(val)
	if err != nil {
		vb, _ = json.Marshal(fmt.Sprintf("%v", val))
	}
	b.Write(vb)
}
