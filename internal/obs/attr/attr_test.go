package attr

import (
	"reflect"
	"strings"
	"testing"
)

// TestScratchMergeOrderInvariant: folding per-shard scratches must be
// independent of how deliveries were split across shards — the engine
// contract that makes attribution bit-identical for any -j.
func TestScratchMergeOrderInvariant(t *testing.T) {
	type delivery struct {
		src, dst int
		bytes    int64
	}
	deliveries := []delivery{
		{0, 1, 100}, {1, 2, 50}, {2, 3, 75}, {3, 0, 25},
		{0, 2, 10}, {1, 3, 60}, {2, 0, 90}, {0, 3, 5},
	}
	// One shard owns everything.
	whole := NewScratch(4)
	for _, d := range deliveries {
		whole.AddPair(d.src, d.dst, d.bytes)
	}
	// Sharded by receiver (the engine's split), folded in index order.
	shards := []*Scratch{NewScratch(4), NewScratch(4)}
	for _, d := range deliveries {
		shards[d.dst/2].AddPair(d.src, d.dst, d.bytes)
	}
	acc := shards[0]
	shards[1].MergeInto(acc)
	if !reflect.DeepEqual(acc.In, whole.In) || !reflect.DeepEqual(acc.Out, whole.Out) {
		t.Fatalf("merged scratch differs: in %v/%v out %v/%v", acc.In, whole.In, acc.Out, whole.Out)
	}
	// In: p3 receives 75+60+5 = 140; Out: p2 sends 75+90 = 165.
	hin, hout := acc.MaxInOut()
	if hin != 140 || hout != 165 {
		t.Fatalf("h-relation = (%d, %d), want (140, 165)", hin, hout)
	}
	acc.Reset()
	if in, out := acc.MaxInOut(); in != 0 || out != 0 {
		t.Fatalf("reset scratch not zero: (%d, %d)", in, out)
	}
}

func TestStepH(t *testing.T) {
	if h := (Step{HIn: 3, HOut: 7}).H(); h != 7 {
		t.Fatalf("H = %d, want 7", h)
	}
	if h := (Step{HIn: 9, HOut: 2}).H(); h != 9 {
		t.Fatalf("H = %d, want 9", h)
	}
}

// TestAnalyzeCriticalPath pins the longest-path DP on a hand-built
// run: two independent chains over disjoint arrays; the heavier chain
// must be the critical path and its site the top blame.
func TestAnalyzeCriticalPath(t *testing.T) {
	run := &Run{
		Version: "comb",
		Procs:   4,
		Steps: []Step{
			{Index: 0, Site: "comb/g0@B1.top/NNC", Kind: "NNC", Arrays: []string{"a"}, Messages: 4, Bytes: 400, HIn: 100, HOut: 100},
			{Index: 1, Site: "comb/g1@B1.top/NNC", Kind: "NNC", Arrays: []string{"b"}, Messages: 2, Bytes: 40, HIn: 10, HOut: 10},
			{Index: 2, Site: "comb/g0@B1.top/NNC", Kind: "NNC", Arrays: []string{"a"}, Messages: 4, Bytes: 400, HIn: 100, HOut: 100},
			{Index: 3, Site: "comb/g1@B1.top/NNC", Kind: "NNC", Arrays: []string{"b"}, Messages: 2, Bytes: 40, HIn: 10, HOut: 10},
		},
	}
	model := CostModel{GSecPerByte: 1e-6, LSec: 1e-5}
	rep := Analyze(run, model)

	if rep.TotalSteps != 4 || rep.TotalMessages != 12 || rep.TotalBytes != 880 {
		t.Fatalf("totals = %d/%d/%d", rep.TotalSteps, rep.TotalMessages, rep.TotalBytes)
	}
	// Chain over "a": 2 * (1e-5 + 1e-6*100) = 2.2e-4.
	want := 2 * (model.LSec + model.GSecPerByte*100)
	if rep.CriticalSec != want {
		t.Fatalf("critical sec = %g, want %g", rep.CriticalSec, want)
	}
	if len(rep.CriticalPath) != 2 || rep.CriticalPath[0].Index != 0 || rep.CriticalPath[1].Index != 2 {
		t.Fatalf("critical path = %+v", rep.CriticalPath)
	}
	serial := rep.CriticalSec + 2*(model.LSec+model.GSecPerByte*10)
	if rep.SerialSec != serial {
		t.Fatalf("serial sec = %g, want %g", rep.SerialSec, serial)
	}
	if len(rep.Sites) != 2 || rep.Sites[0].Site != "comb/g0@B1.top/NNC" {
		t.Fatalf("site ranking = %+v", rep.Sites)
	}
	top := rep.Sites[0]
	if top.Steps != 2 || top.CritSteps != 2 || top.CritSec != want || top.HBytes != 200 {
		t.Fatalf("top site = %+v", top)
	}
	if other := rep.Sites[1]; other.CritSec != 0 || other.CritSteps != 0 {
		t.Fatalf("off-path site has critical contribution: %+v", other)
	}
}

// TestAnalyzeDependsThroughSharedArray: a step touching two arrays
// links otherwise-independent chains.
func TestAnalyzeDependsThroughSharedArray(t *testing.T) {
	run := &Run{
		Version: "comb",
		Procs:   2,
		Steps: []Step{
			{Index: 0, Site: "s0", Arrays: []string{"a"}, HIn: 100, HOut: 100},
			{Index: 1, Site: "s1", Arrays: []string{"b"}, HIn: 100, HOut: 100},
			{Index: 2, Site: "s2", Arrays: []string{"a", "b"}, HIn: 100, HOut: 100},
		},
	}
	rep := Analyze(run, CostModel{GSecPerByte: 1e-6, LSec: 0})
	// Step 2 depends on the heavier of steps 0 and 1 (equal here, tie
	// toward the lower index), so the path has length 2, not 3.
	if len(rep.CriticalPath) != 2 || rep.CriticalPath[0].Index != 0 || rep.CriticalPath[1].Index != 2 {
		t.Fatalf("critical path = %+v", rep.CriticalPath)
	}
}

func TestAnalyzeEmptyRun(t *testing.T) {
	rep := Analyze(&Run{Version: "comb", Procs: 4}, DefaultCostModel())
	if rep.CriticalSec != 0 || len(rep.CriticalPath) != 0 || len(rep.Sites) != 0 {
		t.Fatalf("empty run produced %+v", rep)
	}
	if !strings.Contains(rep.FormatBlame(5), "no communication supersteps") {
		t.Fatalf("blame table for empty run:\n%s", rep.FormatBlame(5))
	}
}

func TestTopSitesAndFormatBlame(t *testing.T) {
	run := &Run{
		Version: "comb",
		Procs:   2,
		Steps: []Step{
			{Index: 0, Site: "sA", Kind: "NNC", Arrays: []string{"a"}, Sources: []string{"s1@4:1"}, Messages: 2, Bytes: 64, HIn: 32, HOut: 32},
			{Index: 1, Site: "sB", Kind: "SUM", Arrays: []string{"b"}, Messages: 1, Bytes: 8, HIn: 8, HOut: 8},
		},
	}
	rep := Analyze(run, DefaultCostModel())
	if got := len(rep.TopSites(1)); got != 1 {
		t.Fatalf("TopSites(1) = %d entries", got)
	}
	if got := len(rep.TopSites(0)); got != 2 {
		t.Fatalf("TopSites(0) = %d entries", got)
	}
	out := rep.FormatBlame(5)
	for _, want := range []string{"communication blame", "critical path:", "sA", "sB", "s1@4:1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("blame table missing %q:\n%s", want, out)
		}
	}
}
