// Package attr is the communication cost-attribution layer of the
// observability subsystem: it records, per rendezvous/superstep of a
// simulator run, an h-relation record — the maximum bytes any
// processor sends or receives in that superstep, in the sense of
// Valiant's BSP bridging model — and blames the traffic back to the
// placement site that scheduled it (the stable site id minted by
// internal/core placement and carried through codegen into the runtime
// comm groups) and to the originating source statements.
//
// On top of the superstep stream, Analyze computes the communication
// critical path: the heaviest chain of dependent supersteps under a
// configurable BSP cost model (per-byte cost g, per-superstep latency
// L), and ranks placement sites by the cost they contribute to that
// chain — the top-k bottleneck table.
//
// The package is stdlib-only so package obs can embed its types
// without an import cycle, and every aggregation is an integer sum or
// max folded in a fixed order, so attribution output is bit-identical
// regardless of how many shards the simulator ran on.
package attr

import (
	"fmt"
	"sort"
	"strings"
)

// CostModel is the BSP cost model attribution is evaluated under: one
// superstep moving an h-relation of h bytes costs L + g·h seconds.
type CostModel struct {
	// GSecPerByte is the per-byte cost g (reciprocal bandwidth).
	GSecPerByte float64 `json:"g_sec_per_byte"`
	// LSec is the per-superstep latency L (barrier plus startup).
	LSec float64 `json:"l_sec"`
}

// DefaultCostModel returns SP2-flavoured knobs: g matching the ~34
// MB/s receive bandwidth and L covering send+receive overhead plus
// wire latency of one message round.
func DefaultCostModel() CostModel {
	return CostModel{GSecPerByte: 1.0 / 34e6, LSec: 75e-6}
}

// StepCost evaluates one superstep under the model.
func (m CostModel) StepCost(s Step) float64 {
	return m.LSec + m.GSecPerByte*float64(s.H())
}

// Step is the h-relation record of one superstep (one barrier-fenced
// communication group execution).
type Step struct {
	// Index is the superstep's position in execution order.
	Index int `json:"index"`
	// Site is the placement site that scheduled this superstep's
	// traffic (core.Group.SiteID); the blame key.
	Site string `json:"site"`
	// Kind is the communication kind (NNC, SUM, BCAST, GEN).
	Kind string `json:"kind"`
	// Label is the human-readable group label ("group3@B7.top").
	Label string `json:"label"`
	// Arrays are the distributed arrays the superstep moved, sorted.
	Arrays []string `json:"arrays,omitempty"`
	// Sources are the originating source statements (label@line:col)
	// of the site's member entries, deduplicated and sorted.
	Sources []string `json:"sources,omitempty"`
	// Messages and Bytes are the ledger deltas charged to the step.
	Messages int   `json:"messages"`
	Bytes    int64 `json:"bytes"`
	// HIn and HOut are the h-relation: the maximum bytes received and
	// sent by any single processor during the step.
	HIn  int64 `json:"h_in"`
	HOut int64 `json:"h_out"`
}

// H returns the step's h-relation size: max over processors of bytes
// in or out.
func (s Step) H() int64 {
	if s.HIn > s.HOut {
		return s.HIn
	}
	return s.HOut
}

// Run is the attribution record of one simulator run: the superstep
// stream in execution order.
type Run struct {
	Version string `json:"version"`
	Procs   int    `json:"procs"`
	Steps   []Step `json:"steps"`
}

// TotalBytes sums the charged bytes over all supersteps.
func (r *Run) TotalBytes() int64 {
	var n int64
	for _, s := range r.Steps {
		n += s.Bytes
	}
	return n
}

// TotalMessages sums the charged messages over all supersteps.
func (r *Run) TotalMessages() int {
	n := 0
	for _, s := range r.Steps {
		n += s.Messages
	}
	return n
}

// ---------------------------------------------------------------------
// Scratch: shard-local h-relation accumulation

// Scratch accumulates one shard's view of a superstep's per-processor
// byte flows. Each simulator shard owns one Scratch and adds only the
// deliveries whose receivers fall in its own processor range, so no
// delivery is counted twice; the rendezvous leader folds the scratches
// in shard-index order. All operations are integer adds into indexed
// slots — commutative and associative — so the fold is bit-identical
// for any shard count.
type Scratch struct {
	In  []int64
	Out []int64
}

// NewScratch builds a zeroed scratch for p processors.
func NewScratch(p int) *Scratch {
	return &Scratch{In: make([]int64, p), Out: make([]int64, p)}
}

// AddPair charges one src→dst delivery of the given size.
func (s *Scratch) AddPair(src, dst int, bytes int64) {
	s.Out[src] += bytes
	s.In[dst] += bytes
}

// MergeInto folds this scratch into dst (integer adds).
func (s *Scratch) MergeInto(dst *Scratch) {
	for p := range s.In {
		dst.In[p] += s.In[p]
		dst.Out[p] += s.Out[p]
	}
}

// MaxInOut returns the h-relation of the accumulated flows: the
// maximum bytes into and out of any single processor.
func (s *Scratch) MaxInOut() (hin, hout int64) {
	for p := range s.In {
		if s.In[p] > hin {
			hin = s.In[p]
		}
		if s.Out[p] > hout {
			hout = s.Out[p]
		}
	}
	return hin, hout
}

// Reset zeroes the scratch for the next superstep.
func (s *Scratch) Reset() {
	for p := range s.In {
		s.In[p] = 0
		s.Out[p] = 0
	}
}

// ---------------------------------------------------------------------
// Analysis: per-site aggregation and the communication critical path

// SiteStat aggregates one placement site's supersteps under a cost
// model.
type SiteStat struct {
	Site    string   `json:"site"`
	Kind    string   `json:"kind"`
	Sources []string `json:"sources,omitempty"`
	// Steps/Messages/Bytes total the site's charged traffic; HBytes
	// sums its per-superstep h-relations.
	Steps    int   `json:"steps"`
	Messages int   `json:"messages"`
	Bytes    int64 `json:"bytes"`
	HBytes   int64 `json:"h_bytes"`
	// CostSec is the site's total modeled cost (all its supersteps);
	// CritSec is the part contributed by supersteps on the critical
	// path, with CritSteps counting them.
	CostSec   float64 `json:"cost_sec"`
	CritSec   float64 `json:"crit_sec"`
	CritSteps int     `json:"crit_steps"`
}

// CritStep is one superstep on the critical path.
type CritStep struct {
	Index int    `json:"index"`
	Site  string `json:"site"`
	// CostSec is the step's own modeled cost; CumSec the path cost
	// through it.
	CostSec float64 `json:"cost_sec"`
	CumSec  float64 `json:"cum_sec"`
}

// Report is the result of analyzing a run under a cost model.
type Report struct {
	Version string    `json:"version"`
	Procs   int       `json:"procs"`
	Model   CostModel `json:"model"`
	// TotalSteps/TotalMessages/TotalBytes summarize the whole run.
	TotalSteps    int   `json:"total_steps"`
	TotalMessages int   `json:"total_messages"`
	TotalBytes    int64 `json:"total_bytes"`
	// SerialSec is the fully-serialized bound (the sum of every
	// superstep's cost); CriticalSec the cost of the heaviest chain of
	// dependent supersteps.
	SerialSec   float64 `json:"serial_sec"`
	CriticalSec float64 `json:"critical_sec"`
	// CriticalPath lists the chain in execution order.
	CriticalPath []CritStep `json:"critical_path,omitempty"`
	// Sites ranks every placement site, heaviest critical-path
	// contribution first.
	Sites []SiteStat `json:"sites,omitempty"`
}

// Analyze aggregates a run's supersteps by site and computes the
// communication critical path under the model. Two supersteps are
// dependent when they touch a common array (the later one cannot
// start before the earlier one's barrier) — the DAG the longest-path
// DP runs over. Ties break toward the lower step index, so the report
// is deterministic.
func Analyze(run *Run, model CostModel) *Report {
	rep := &Report{
		Version:       run.Version,
		Procs:         run.Procs,
		Model:         model,
		TotalSteps:    len(run.Steps),
		TotalMessages: run.TotalMessages(),
		TotalBytes:    run.TotalBytes(),
	}
	if len(run.Steps) == 0 {
		return rep
	}

	// Longest-path DP over the array-dependence DAG: pred(j) is the
	// latest earlier step sharing an array with j (one edge per shared
	// array suffices — the latest toucher already transitively depends
	// on the earlier ones through its own predecessor chain).
	cost := make([]float64, len(run.Steps))
	pred := make([]int, len(run.Steps))
	lastTouch := map[string]int{} // array -> latest step index
	for j, s := range run.Steps {
		c := model.StepCost(s)
		rep.SerialSec += c
		best, bestPred := 0.0, -1
		for _, a := range s.Arrays {
			if i, ok := lastTouch[a]; ok {
				if cost[i] > best || (cost[i] == best && (bestPred == -1 || i < bestPred)) {
					best, bestPred = cost[i], i
				}
			}
		}
		cost[j] = best + c
		pred[j] = bestPred
		for _, a := range s.Arrays {
			lastTouch[a] = j
		}
	}
	end := 0
	for j := range cost {
		if cost[j] > cost[end] {
			end = j
		}
	}
	rep.CriticalSec = cost[end]
	var chain []int
	for j := end; j >= 0; j = pred[j] {
		chain = append(chain, j)
	}
	onPath := make([]bool, len(run.Steps))
	for i := len(chain) - 1; i >= 0; i-- {
		j := chain[i]
		onPath[j] = true
		rep.CriticalPath = append(rep.CriticalPath, CritStep{
			Index:   run.Steps[j].Index,
			Site:    run.Steps[j].Site,
			CostSec: model.StepCost(run.Steps[j]),
			CumSec:  cost[j],
		})
	}

	// Per-site aggregation.
	bySite := map[string]*SiteStat{}
	var order []string
	for j, s := range run.Steps {
		st := bySite[s.Site]
		if st == nil {
			st = &SiteStat{Site: s.Site, Kind: s.Kind, Sources: s.Sources}
			bySite[s.Site] = st
			order = append(order, s.Site)
		}
		st.Steps++
		st.Messages += s.Messages
		st.Bytes += s.Bytes
		st.HBytes += s.H()
		c := model.StepCost(s)
		st.CostSec += c
		if onPath[j] {
			st.CritSec += c
			st.CritSteps++
		}
	}
	for _, site := range order {
		rep.Sites = append(rep.Sites, *bySite[site])
	}
	sort.SliceStable(rep.Sites, func(i, j int) bool {
		a, b := rep.Sites[i], rep.Sites[j]
		if a.CritSec != b.CritSec {
			return a.CritSec > b.CritSec
		}
		if a.Bytes != b.Bytes {
			return a.Bytes > b.Bytes
		}
		return a.Site < b.Site
	})
	return rep
}

// TopSites returns the k heaviest sites (all of them when k <= 0 or
// exceeds the site count).
func (r *Report) TopSites(k int) []SiteStat {
	if k <= 0 || k > len(r.Sites) {
		k = len(r.Sites)
	}
	return r.Sites[:k]
}

// FormatBlame renders the top-k bottleneck table plus the critical-
// path summary line as fixed-width text — the `-blame` output of
// commprof and runbench.
func (r *Report) FormatBlame(k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== communication blame: top %d of %d sites (version=%s, g=%.3g s/B, L=%.3g s) ==\n",
		len(r.TopSites(k)), len(r.Sites), r.Version, r.Model.GSecPerByte, r.Model.LSec)
	fmt.Fprintf(&b, "critical path: %d of %d supersteps, %.6g s of %.6g s serialized\n",
		len(r.CriticalPath), r.TotalSteps, r.CriticalSec, r.SerialSec)
	if len(r.Sites) == 0 {
		b.WriteString("  (no communication supersteps)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  %4s  %-28s %-6s %5s %6s %10s %9s %10s  %s\n",
		"rank", "site", "kind", "steps", "msgs", "bytes", "h-bytes", "crit-sec", "sources")
	for i, st := range r.TopSites(k) {
		fmt.Fprintf(&b, "  %4d  %-28s %-6s %5d %6d %10d %9d %10.4g  %s\n",
			i+1, st.Site, st.Kind, st.Steps, st.Messages, st.Bytes, st.HBytes,
			st.CritSec, strings.Join(st.Sources, " "))
	}
	return b.String()
}
