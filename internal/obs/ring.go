package obs

import (
	"sync"

	"gcao/internal/native/prof"
	"gcao/internal/obs/attr"
)

// RequestRecord is the retained observability residue of one served
// compile request: its id, outcome, the full placement decision log,
// and the final counters. The daemon keeps the most recent records in
// a DecisionRing so `GET /debug/decisions/{id}` can answer "why did
// the compiler place it there?" for traffic that already completed.
type RequestRecord struct {
	ID       string           `json:"id"`
	UnixNS   int64            `json:"unix_ns"`
	Strategy string           `json:"strategy,omitempty"`
	Status   string           `json:"status"`
	Error    string           `json:"error,omitempty"`
	Decision []Decision       `json:"decisions,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	// Attr is the simulator's cost-attribution record, retained so
	// GET /debug/critpath/{id} can analyze completed traffic.
	Attr *attr.Run `json:"attr,omitempty"`
	// NativeProf is the native backend's measured runtime profile,
	// retained so GET /debug/nativeprof/{id} can answer "where did the
	// processors actually spend their time?" after the fact.
	NativeProf *prof.NativeProfile `json:"native_prof,omitempty"`
}

// DecisionRing is a bounded, concurrency-safe ring of RequestRecords:
// adding beyond the capacity evicts the oldest record.
type DecisionRing struct {
	mu   sync.Mutex
	cap  int
	recs []RequestRecord // oldest first
}

// NewDecisionRing builds a ring holding at most n records (n <= 0
// disables retention).
func NewDecisionRing(n int) *DecisionRing {
	return &DecisionRing{cap: n}
}

// Add retains one record, evicting the oldest when full.
func (r *DecisionRing) Add(rec RequestRecord) {
	if r == nil || r.cap <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = append(r.recs, rec)
	if len(r.recs) > r.cap {
		// Shift rather than reslice so the backing array does not pin
		// evicted records' decision logs.
		copy(r.recs, r.recs[1:])
		r.recs = r.recs[:r.cap]
	}
}

// Get returns the record with the given id, newest match first.
func (r *DecisionRing) Get(id string) (RequestRecord, bool) {
	if r == nil {
		return RequestRecord{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.recs) - 1; i >= 0; i-- {
		if r.recs[i].ID == id {
			return r.recs[i], true
		}
	}
	return RequestRecord{}, false
}

// IDs returns the retained request ids, newest first.
func (r *DecisionRing) IDs() []string {
	return r.RecentIDs(0)
}

// RecentIDs returns up to limit retained request ids, newest first;
// limit <= 0 returns all of them.
func (r *DecisionRing) RecentIDs(limit int) []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.recs)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]string, 0, n)
	for i := len(r.recs) - 1; i >= len(r.recs)-n; i-- {
		out = append(out, r.recs[i].ID)
	}
	return out
}

// Len returns the number of retained records.
func (r *DecisionRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}
