package obs

import (
	"strings"
	"testing"
)

func TestOptimalityGapFamilies(t *testing.T) {
	g := NewRegistry()
	g.SetOptimalityGap("shallow", "orig", 1000, 4000)
	g.SetOptimalityGap("shallow", "comb", 1000, 2500)
	g.SetOptimalityGap("gravity", "comb", 500, 2000)
	g.SetOptimalityGap("aligned", "comb", 0, 0) // bound 0: no gap sample

	var b strings.Builder
	if err := g.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := CheckPromText([]byte(text)); err != nil {
		t.Fatalf("exposition not scrapeable: %v", err)
	}
	for _, want := range []string{
		"# TYPE gcao_comm_lower_bound_bytes gauge",
		`gcao_comm_lower_bound_bytes{benchmark="shallow"} 1000`,
		`gcao_comm_lower_bound_bytes{benchmark="gravity"} 500`,
		`gcao_comm_lower_bound_bytes{benchmark="aligned"} 0`,
		"# TYPE gcao_optimality_gap_ratio gauge",
		`gcao_optimality_gap_ratio{benchmark="shallow",version="orig"} 4`,
		`gcao_optimality_gap_ratio{benchmark="shallow",version="comb"} 2.5`,
		`gcao_optimality_gap_ratio{benchmark="gravity",version="comb"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(text, `gap_ratio{benchmark="aligned"`) {
		t.Error("zero-bound benchmark produced a gap sample")
	}

	// Overwrite semantics: a fresh compile replaces the gauge.
	g.SetOptimalityGap("shallow", "comb", 1000, 3000)
	b.Reset()
	if err := g.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `gcao_optimality_gap_ratio{benchmark="shallow",version="comb"} 3`) {
		t.Error("gap gauge did not overwrite")
	}
}

func TestAggregateGap(t *testing.T) {
	g := NewRegistry()
	if ratio, points := g.AggregateGap(); ratio != 0 || points != 0 {
		t.Fatalf("empty registry gap = %v/%d", ratio, points)
	}
	g.SetOptimalityGap("shallow", "comb", 1000, 3000)
	g.SetOptimalityGap("gravity", "comb", 1000, 5000)
	g.SetOptimalityGap("aligned", "comb", 0, 100) // unmeasurable, excluded
	ratio, points := g.AggregateGap()
	if points != 2 {
		t.Fatalf("points = %d, want 2", points)
	}
	if ratio != 4 { // (3000+5000)/(1000+1000)
		t.Fatalf("aggregate = %v, want 4", ratio)
	}
	var nilReg *Registry
	if ratio, points := nilReg.AggregateGap(); ratio != 0 || points != 0 {
		t.Fatal("nil registry must be a no-op")
	}
	nilReg.SetOptimalityGap("x", "comb", 1, 1)
}

func TestCheckPromTextTwoLabelFamily(t *testing.T) {
	// The two-label writer must produce samples the validator accepts
	// even with exotic label values.
	g := NewRegistry()
	g.SetOptimalityGap(`we"ird\name`+"\n", "comb", 10, 25)
	var b strings.Builder
	if err := g.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := CheckPromText([]byte(b.String())); err != nil {
		t.Fatalf("escaped labels not scrapeable: %v", err)
	}
}
