package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestDecisionRingConcurrentWraparound hammers a small ring with many
// concurrent writers so every Add past the first few evicts — the
// wraparound path — while readers race Get/RecentIDs/Len. Run under
// -race this pins the locking; the post-conditions pin the semantics:
// exactly cap records retained, all of them records that were actually
// written, no duplicates, and each writer's surviving records still in
// its own write order.
func TestDecisionRingConcurrentWraparound(t *testing.T) {
	const (
		cap     = 8
		writers = 6
		perW    = 200 // 1200 adds into 8 slots: constant eviction
	)
	ring := NewDecisionRing(cap)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				ring.Add(RequestRecord{ID: fmt.Sprintf("w%d-%04d", w, i), Status: "ok"})
				if i%16 == 0 {
					_ = ring.RecentIDs(3)
					_, _ = ring.Get(fmt.Sprintf("w%d-%04d", w, i))
					_ = ring.Len()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := ring.Len(); got != cap {
		t.Fatalf("ring retains %d records, want %d", got, cap)
	}
	ids := ring.RecentIDs(0)
	if len(ids) != cap {
		t.Fatalf("RecentIDs(0) returned %d ids, want %d", len(ids), cap)
	}
	seen := map[string]bool{}
	lastSeq := map[string]int{} // per-writer sequence, walking newest → oldest
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q retained", id)
		}
		seen[id] = true
		var w, i int
		if _, err := fmt.Sscanf(id, "w%d-%d", &w, &i); err != nil {
			t.Fatalf("retained id %q was never written", id)
		}
		if w < 0 || w >= writers || i < 0 || i >= perW {
			t.Fatalf("retained id %q out of range", id)
		}
		key := id[:strings.IndexByte(id, '-')]
		if prev, ok := lastSeq[key]; ok && i >= prev {
			t.Fatalf("writer %s records out of order: %d then %d (newest first)", key, prev, i)
		}
		lastSeq[key] = i
	}
	// Every retained record must be retrievable, and RecentIDs must
	// honor its limit.
	for _, id := range ids {
		if _, ok := ring.Get(id); !ok {
			t.Fatalf("retained id %q not retrievable", id)
		}
	}
	if got := ring.RecentIDs(3); len(got) != 3 || got[0] != ids[0] {
		t.Fatalf("RecentIDs(3) = %v, want prefix of %v", got, ids)
	}
}

// TestDecisionRingRecentIDs pins the limit semantics deterministically.
func TestDecisionRingRecentIDs(t *testing.T) {
	ring := NewDecisionRing(4)
	for i := 0; i < 6; i++ { // two wraparounds
		ring.Add(RequestRecord{ID: "r" + strconv.Itoa(i)})
	}
	for _, tc := range []struct {
		limit int
		want  []string
	}{
		{0, []string{"r5", "r4", "r3", "r2"}},
		{-1, []string{"r5", "r4", "r3", "r2"}},
		{2, []string{"r5", "r4"}},
		{99, []string{"r5", "r4", "r3", "r2"}},
	} {
		got := ring.RecentIDs(tc.limit)
		if len(got) != len(tc.want) {
			t.Fatalf("RecentIDs(%d) = %v, want %v", tc.limit, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("RecentIDs(%d) = %v, want %v", tc.limit, got, tc.want)
			}
		}
	}
	if _, ok := ring.Get("r0"); ok {
		t.Fatal("evicted record r0 still retrievable")
	}
	var nilRing *DecisionRing
	if got := nilRing.RecentIDs(5); got != nil {
		t.Fatalf("nil ring RecentIDs = %v", got)
	}
}

// TestHistogramBucketBoundaries pins the Prometheus `le` convention:
// an observation exactly equal to an upper bound lands in that bucket,
// and the smallest increment above it spills into the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 10, 100}
	for bi, b := range bounds {
		h := NewHistogram(bounds)
		h.Observe(b)
		cum := h.Cumulative()
		for i, c := range cum {
			want := uint64(0)
			if i >= bi {
				want = 1 // cumulative from the boundary's own bucket up
			}
			if c != want {
				t.Fatalf("Observe(%g): cumulative[%d] = %d, want %d (%v)", b, i, c, want, cum)
			}
		}

		h2 := NewHistogram(bounds)
		h2.Observe(b * 1.0000001)
		cum2 := h2.Cumulative()
		if cum2[bi] != 0 {
			t.Fatalf("Observe(just above %g) landed at or below the boundary: %v", b, cum2)
		}
		if cum2[len(cum2)-1] != 1 {
			t.Fatalf("Observe(just above %g) lost the observation: %v", b, cum2)
		}
	}
	// Below the first bound and above the last (+Inf overflow).
	h := NewHistogram(bounds)
	h.Observe(0.5)
	h.Observe(1e9)
	cum := h.Cumulative()
	if cum[0] != 1 || cum[len(cum)-1] != 2 {
		t.Fatalf("under/overflow cumulative = %v", cum)
	}
	if h.Count() != 2 || h.Sum() != 0.5+1e9 {
		t.Fatalf("count/sum = %d/%g", h.Count(), h.Sum())
	}
	// The shipped bucket sets must keep strictly increasing bounds, or
	// the boundary convention above silently breaks.
	for name, set := range map[string][]float64{
		"LatencyBuckets": LatencyBuckets, "CountBuckets": CountBuckets, "BytesBuckets": BytesBuckets,
	} {
		for i := 1; i < len(set); i++ {
			if set[i] <= set[i-1] {
				t.Fatalf("%s not strictly increasing at %d: %v", name, i, set)
			}
		}
	}
}
