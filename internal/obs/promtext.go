package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// CheckPromText parses a Prometheus text exposition (version 0.0.4)
// document and reports the first violation it finds: malformed sample
// lines, samples of a family with no preceding # TYPE, histogram
// families missing their le="+Inf" bucket or _sum/_count series, or
// cumulative bucket counts that decrease. It exists so tests (and the
// daemon's own smoke checks) can assert /metrics output is actually
// scrapeable rather than merely string-matching it.
func CheckPromText(text []byte) error {
	types := map[string]string{}
	// histogram bookkeeping per family+labelset (minus le)
	type histState struct {
		prev    float64 // last cumulative bucket count
		prevLE  float64
		infSeen bool
		sum     bool
		count   bool
		infVal  float64
		cntVal  float64
	}
	hists := map[string]*histState{}

	for i, line := range strings.Split(string(text), "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 2 && (f[1] != "HELP" && f[1] != "TYPE") {
				return fmt.Errorf("line %d: unknown comment keyword %q", lineNo, f[1])
			}
			if len(f) >= 4 && f[1] == "TYPE" {
				switch f[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: invalid metric type %q", lineNo, f[3])
				}
				types[f[2]] = f[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		family, suffix := histFamily(name, types)
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		if typ != "histogram" {
			continue
		}
		le, baseLabels := splitLE(labels)
		key := family + "{" + baseLabels + "}"
		st := hists[key]
		if st == nil {
			st = &histState{prevLE: -1e308}
			hists[key] = st
		}
		switch suffix {
		case "_bucket":
			if le == "" {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			bound := 1e308
			if le != "+Inf" {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q: %w", lineNo, le, err)
				}
			} else {
				st.infSeen = true
				st.infVal = value
			}
			if bound < st.prevLE {
				return fmt.Errorf("line %d: le bounds out of order for %s", lineNo, key)
			}
			if value < st.prev {
				return fmt.Errorf("line %d: cumulative bucket count decreased for %s", lineNo, key)
			}
			st.prevLE, st.prev = bound, value
		case "_sum":
			st.sum = true
		case "_count":
			st.count = true
			st.cntVal = value
		default:
			return fmt.Errorf("line %d: histogram sample %q has no _bucket/_sum/_count suffix", lineNo, name)
		}
	}
	for key, st := range hists {
		if !st.infSeen {
			return fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", key)
		}
		if !st.sum || !st.count {
			return fmt.Errorf("histogram %s missing _sum or _count", key)
		}
		if st.infVal != st.cntVal {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", key, st.infVal, st.cntVal)
		}
	}
	return nil
}

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (NaN|[+-]?Inf|[-+0-9.eE]+)( [0-9]+)?$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// parseSample splits one sample line into name, raw label text and
// value.
func parseSample(line string) (name, labels string, value float64, err error) {
	m := sampleRe.FindStringSubmatch(line)
	if m == nil {
		return "", "", 0, fmt.Errorf("malformed sample line %q", line)
	}
	name, labels = m[1], m[3]
	if labels != "" {
		for _, lp := range splitLabels(labels) {
			if !labelRe.MatchString(lp) {
				return "", "", 0, fmt.Errorf("malformed label pair %q", lp)
			}
		}
	}
	switch m[4] {
	case "NaN":
		return name, labels, 0, nil
	case "+Inf", "Inf":
		return name, labels, 1e308, nil
	case "-Inf":
		return name, labels, -1e308, nil
	}
	value, err = strconv.ParseFloat(m[4], 64)
	return name, labels, value, err
}

// splitLabels splits `a="x",b="y"` into pairs, honoring escaped quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// splitLE extracts the le label value and returns the remaining label
// text (used as the histogram series key).
func splitLE(labels string) (le, rest string) {
	var kept []string
	for _, lp := range splitLabels(labels) {
		if strings.HasPrefix(lp, `le="`) {
			le = strings.TrimSuffix(strings.TrimPrefix(lp, `le="`), `"`)
			continue
		}
		kept = append(kept, lp)
	}
	return le, strings.Join(kept, ",")
}

// histFamily maps a sample name to its family: for histogram series
// the _bucket/_sum/_count suffix is stripped when the stripped name is
// a declared histogram.
func histFamily(name string, types map[string]string) (family, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok && types[base] == "histogram" {
			return base, suf
		}
	}
	return name, ""
}
