package obs

import (
	"bytes"
	"strings"
	"testing"

	"gcao/internal/obs/attr"
)

// TestRegistryAttributionFamilies: absorbing a recorder that carries a
// cost-attribution record must surface the two new metric families —
// the per-superstep h-relation histogram and the per-site byte counter
// — in a parseable, deterministic exposition.
func TestRegistryAttributionFamilies(t *testing.T) {
	rec := New()
	rec.SetAttribution(&attr.Run{
		Version: "comb",
		Procs:   4,
		Steps: []attr.Step{
			{Index: 0, Site: "comb/g0@B1.top/NNC", Kind: "NNC", Arrays: []string{"a"},
				Messages: 4, Bytes: 400, HIn: 100, HOut: 120},
			{Index: 1, Site: "comb/g1@B2.top/SUM", Kind: "SUM", Arrays: []string{"s"},
				Messages: 3, Bytes: 40, HIn: 40, HOut: 40},
			{Index: 2, Site: "comb/g0@B1.top/NNC", Kind: "NNC", Arrays: []string{"a"},
				Messages: 4, Bytes: 400, HIn: 100, HOut: 120},
		},
	})

	reg := NewRegistry()
	reg.Absorb(rec, "ok")

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := CheckPromText(buf.Bytes()); err != nil {
		t.Fatalf("exposition not parseable: %v\n%s", err, text)
	}
	for _, want := range []string{
		`# TYPE gcao_superstep_hrelation_bytes histogram`,
		// Each step observes max(HIn, HOut); 120 and 40 both land in
		// the first BytesBuckets bound (le=256).
		`gcao_superstep_hrelation_bytes_bucket{version="comb",le="256"} 3`,
		`gcao_superstep_hrelation_bytes_count{version="comb"} 3`,
		`gcao_superstep_hrelation_bytes_sum{version="comb"} 280`,
		`# TYPE gcao_site_comm_bytes_total counter`,
		`gcao_site_comm_bytes_total{site="comb/g0@B1.top/NNC"} 800`,
		`gcao_site_comm_bytes_total{site="comb/g1@B2.top/SUM"} 40`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := reg.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("exposition not deterministic")
	}
	// A recorder without attribution leaves the families absent but the
	// exposition still valid.
	reg2 := NewRegistry()
	reg2.Absorb(New(), "ok")
	var buf3 bytes.Buffer
	if err := reg2.WritePrometheus(&buf3); err != nil {
		t.Fatal(err)
	}
	if err := CheckPromText(buf3.Bytes()); err != nil {
		t.Fatalf("attribution-free exposition not parseable: %v", err)
	}
	if strings.Contains(buf3.String(), "gcao_site_comm_bytes_total{") {
		t.Fatal("site counter rendered without any attribution")
	}
}
