package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestTraceRoundTrip decodes WriteTrace output through encoding/json
// and checks the structural contract of the Chrome trace_event format:
// an object with a traceEvents array of "X" (complete) events carrying
// non-negative microsecond timestamps that are monotonically
// consistent — every span lies inside the recorder's observed window,
// nested spans lie inside the window of an enclosing shallower span,
// and the final counters land on one "i" instant event at the end.
func TestTraceRoundTrip(t *testing.T) {
	r := New()
	endOuter := r.Start("outer")
	r.Start("inner-a")()
	r.Start("inner-b")()
	endOuter()
	r.Start("tail")()
	r.Add("groups", 7)

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   *int64         `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) != 5 { // 4 spans + 1 metrics instant
		t.Fatalf("want 5 events, got %d", len(f.TraceEvents))
	}

	type win struct {
		name       string
		start, end int64
		depth      int
	}
	var spans []win
	var maxEnd int64
	var instant *int64
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "X":
			if e.TS == nil || *e.TS < 0 || e.Dur < 0 {
				t.Fatalf("span %q has inconsistent timestamps: ts=%v dur=%d", e.Name, e.TS, e.Dur)
			}
			depth, ok := e.Args["depth"].(float64)
			if !ok {
				t.Fatalf("span %q missing depth arg", e.Name)
			}
			if _, ok := e.Args["alloc_bytes"]; !ok {
				t.Fatalf("span %q missing alloc_bytes arg", e.Name)
			}
			spans = append(spans, win{e.Name, *e.TS, *e.TS + e.Dur, int(depth)})
			if end := *e.TS + e.Dur; end > maxEnd {
				maxEnd = end
			}
		case "i":
			if instant != nil {
				t.Fatal("more than one instant event")
			}
			instant = e.TS
			if g, ok := e.Args["groups"].(float64); !ok || g != 7 {
				t.Fatalf("instant event lost counters: %v", e.Args)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	// Every nested span must fit inside some enclosing shallower span's
	// window — the time containment chrome://tracing reconstructs the
	// stack from.
	for _, s := range spans {
		if s.depth == 0 {
			continue
		}
		contained := false
		for _, p := range spans {
			if p.depth == s.depth-1 && p.start <= s.start && s.end <= p.end {
				contained = true
				break
			}
		}
		if !contained {
			t.Fatalf("nested span %q (depth %d, [%d,%d]) not contained in any parent", s.name, s.depth, s.start, s.end)
		}
	}
	// The counters instant sits at the trace's end.
	if instant == nil || *instant != maxEnd {
		t.Fatalf("instant event at %v, want max span end %d", instant, maxEnd)
	}
	// Round-trip: re-encoding the decoded document must stay valid JSON
	// with the same event count.
	re, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(re, &back); err != nil {
		t.Fatalf("re-encoded trace invalid: %v", err)
	}
}
