// Package reqtrace is the request-tracing layer of the observability
// subsystem: where package obs attributes time to compiler pipeline
// phases inside one process, reqtrace attributes a served request's
// wall time to the serving stack it crossed — HTTP ingress, scheduler
// queue wait, cache probe, compile, place, simulate — as a span tree
// keyed by W3C trace-context ids. It is the paper's BSP cost ledger
// (every second charged to a program point) lifted one layer up, to
// the daemon.
//
// Like the rest of internal/obs it is stdlib-only and nil-safe: a nil
// *Trace or *Span is inert, so handlers thread one unconditionally.
//
// Two span idioms are supported:
//
//   - Child/End: ordinary nested spans with explicit lifetimes.
//   - Phase: gap-free sequential segments of a parent span. Ending
//     one phase and starting the next uses a single clock reading, so
//     the phases tile the parent exactly — summed phase durations
//     account for every microsecond between the first phase's start
//     and the last phase's end. That is what makes "queue + cache +
//     compile + place + simulate ≈ wall time" an invariant rather
//     than an aspiration.
package reqtrace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request's span tree plus its W3C trace-context
// identity. All methods are safe for concurrent use; the whole tree
// shares the trace's lock (span trees are shallow and short-lived, so
// contention is not a concern).
type Trace struct {
	mu sync.Mutex
	// traceID is 32 lowercase hex characters; remoteParent is the
	// 16-hex parent span id of an ingested traceparent ("" when the
	// trace was minted locally). flags preserves the inbound
	// trace-flags byte (01 when minted locally).
	traceID      string
	remoteParent string
	flags        byte
	reqID        string
	start        time.Time
	root         *Span
}

// Span is one timed operation inside a trace.
type Span struct {
	tr       *Trace
	name     string
	spanID   string
	startUS  int64
	durUS    int64
	ended    bool
	attrs    []attrKV
	children []*Span
	// phase is the currently open phase child (see Phase).
	phase *Span
}

type attrKV struct{ k, v string }

// New mints a trace with a fresh random trace id and opens its root
// span under the given name.
func New(name string) *Trace {
	t := &Trace{traceID: randHex(16), flags: 0x01, start: time.Now()}
	t.root = &Span{tr: t, name: name, spanID: randHex(8)}
	return t
}

// FromTraceparent builds a trace from an inbound W3C traceparent
// header, adopting its trace id and recording its span id as the
// remote parent; a missing or malformed header falls back to a
// locally minted trace. The second result reports whether the header
// was ingested.
func FromTraceparent(name, header string) (*Trace, bool) {
	traceID, parentID, flags, ok := ParseTraceparent(header)
	t := New(name)
	if ok {
		t.traceID = traceID
		t.remoteParent = parentID
		t.flags = flags
	}
	return t, ok
}

// ParseTraceparent validates a W3C traceparent header
// (version-traceid-parentid-flags) and returns its parts. Version
// ff, all-zero ids, wrong field widths and non-hex characters are
// rejected, per the spec.
func ParseTraceparent(header string) (traceID, parentID string, flags byte, ok bool) {
	if len(header) < 55 || header[2] != '-' || header[35] != '-' || header[52] != '-' {
		return "", "", 0, false
	}
	// Future versions may append fields after the flags, but a
	// version-00 header must be exactly 55 characters.
	ver, verOK := hexByte(header[0:2])
	if !verOK || ver == 0xff || (ver == 0 && len(header) != 55) {
		return "", "", 0, false
	}
	traceID, parentID = header[3:35], header[36:52]
	if !isLowerHex(traceID) || !isLowerHex(parentID) {
		return "", "", 0, false
	}
	if allZero(traceID) || allZero(parentID) {
		return "", "", 0, false
	}
	fl, flOK := hexByte(header[53:55])
	if !flOK {
		return "", "", 0, false
	}
	return traceID, parentID, fl, true
}

// Traceparent renders the header value identifying this trace's root
// span, suitable for echoing to the client (same trace id the caller
// sent, our root span as the parent for anything downstream).
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("00-%s-%s-%02x", t.traceID, t.root.spanID, t.flags)
}

// TraceID returns the 32-hex trace id.
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// SetReqID binds the daemon's request id to the trace.
func (t *Trace) SetReqID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reqID = id
}

// ReqID returns the bound request id.
func (t *Trace) ReqID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reqID
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Start returns the trace's epoch (the root span's start time).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// nowUS is the trace-relative clock all spans share.
func (t *Trace) nowUS() int64 { return time.Since(t.start).Microseconds() }

// Child opens a nested span; the caller must End it.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.childLocked(name, s.tr.nowUS())
}

func (s *Span) childLocked(name string, startUS int64) *Span {
	c := &Span{tr: s.tr, name: name, spanID: randHex(8), startUS: startUS}
	s.children = append(s.children, c)
	return c
}

// Phase ends the span's currently open phase (if any) and opens the
// next one at the same clock reading, so consecutive phases tile the
// parent with no gap. It returns the new phase span.
func (s *Span) Phase(name string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	now := s.tr.nowUS()
	s.closePhaseLocked(now)
	c := s.childLocked(name, now)
	s.phase = c
	return c
}

// ClosePhase ends the currently open phase without opening another.
func (s *Span) ClosePhase() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	s.closePhaseLocked(s.tr.nowUS())
}

func (s *Span) closePhaseLocked(nowUS int64) {
	if s.phase != nil && !s.phase.ended {
		s.phase.durUS = nowUS - s.phase.startUS
		s.phase.ended = true
	}
	s.phase = nil
}

// End closes the span (idempotent). Ending a span also closes its
// open phase at the same instant.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.ended {
		return
	}
	now := s.tr.nowUS()
	s.closePhaseLocked(now)
	s.durUS = now - s.startUS
	s.ended = true
}

// SetAttr attaches a key/value attribute (insertion order preserved;
// a repeated key overwrites).
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].k == key {
			s.attrs[i].v = val
			return
		}
	}
	s.attrs = append(s.attrs, attrKV{key, val})
}

// AddEvent records an instantaneous marker as a zero-duration child.
func (s *Span) AddEvent(name string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	now := s.tr.nowUS()
	c := s.childLocked(name, now)
	c.ended = true
}

// SpanDoc is the exported form of one span: microseconds relative to
// the trace start, attributes, and nested children.
type SpanDoc struct {
	Name     string            `json:"name"`
	SpanID   string            `json:"span_id"`
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Open     bool              `json:"open,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanDoc         `json:"children,omitempty"`
}

// TraceDoc is the exported form of a whole trace.
type TraceDoc struct {
	TraceID string `json:"trace_id"`
	// RemoteParent is the parent span id of the ingested traceparent,
	// when the client sent one.
	RemoteParent string  `json:"remote_parent,omitempty"`
	ReqID        string  `json:"req_id,omitempty"`
	UnixNS       int64   `json:"unix_ns"`
	Root         SpanDoc `json:"root"`
}

// Doc snapshots the trace. Spans still open are exported with their
// duration-so-far and Open set, so a snapshot mid-request is honest.
func (t *Trace) Doc() TraceDoc {
	if t == nil {
		return TraceDoc{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.nowUS()
	return TraceDoc{
		TraceID:      t.traceID,
		RemoteParent: t.remoteParent,
		ReqID:        t.reqID,
		UnixNS:       t.start.UnixNano(),
		Root:         t.root.docLocked(now),
	}
}

func (s *Span) docLocked(nowUS int64) SpanDoc {
	d := SpanDoc{Name: s.name, SpanID: s.spanID, StartUS: s.startUS, DurUS: s.durUS}
	if !s.ended {
		d.DurUS = nowUS - s.startUS
		d.Open = true
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for _, kv := range s.attrs {
			d.Attrs[kv.k] = kv.v
		}
	}
	for _, c := range s.children {
		d.Children = append(d.Children, c.docLocked(nowUS))
	}
	return d
}

// PhaseTotals sums a span doc's direct children by name — the
// flight-recorder summary of where the request's time went.
func PhaseTotals(d SpanDoc) map[string]int64 {
	if len(d.Children) == 0 {
		return nil
	}
	out := make(map[string]int64, len(d.Children))
	for _, c := range d.Children {
		out[c.Name] += c.DurUS
	}
	return out
}

type ctxKey struct{}

// NewContext binds a trace to a context.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the bound trace, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// randHex returns 2n lowercase hex characters from a crypto/rand
// seed, falling back to a counter-derived id if the system source is
// unavailable (ids must never be empty or all-zero).
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		c := fallbackCtr.Add(1)
		for i := range b {
			b[i] = byte(c >> (8 * (uint(i) % 8)))
		}
		b[0] |= 0x01
	}
	return hex.EncodeToString(b)
}

var fallbackCtr atomic.Uint64

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

func hexByte(s string) (byte, bool) {
	if len(s) != 2 || !isLowerHex(s) {
		return 0, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return 0, false
	}
	return b[0], true
}
