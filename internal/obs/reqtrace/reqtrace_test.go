package reqtrace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	traceID, parentID, flags, ok := ParseTraceparent(
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("valid header rejected")
	}
	if traceID != "4bf92f3577b34da6a3ce929d0e0e4736" || parentID != "00f067aa0ba902b7" || flags != 1 {
		t.Fatalf("parsed %q %q %02x", traceID, parentID, flags)
	}
	for _, bad := range []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // v00 with trailer
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero parent
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",   // non-hex
		"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-011",   // shifted dashes
	} {
		if _, _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent accepted %q", bad)
		}
	}
	// A future version may carry extra fields after the flags.
	if _, _, _, ok := ParseTraceparent(
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("future-version header with trailer rejected")
	}
}

func TestTraceIngestAndEcho(t *testing.T) {
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tr, ok := FromTraceparent("http.compile", in)
	if !ok {
		t.Fatal("header not ingested")
	}
	if tr.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s", tr.TraceID())
	}
	out := tr.Traceparent()
	if !strings.HasPrefix(out, "00-4bf92f3577b34da6a3ce929d0e0e4736-") || !strings.HasSuffix(out, "-01") {
		t.Fatalf("echoed traceparent = %q", out)
	}
	if strings.Contains(out, "00f067aa0ba902b7") {
		t.Fatal("echoed traceparent reused the inbound span id")
	}
	doc := tr.Doc()
	if doc.RemoteParent != "00f067aa0ba902b7" {
		t.Fatalf("remote parent = %q", doc.RemoteParent)
	}

	// A garbage header falls back to a minted trace.
	tr2, ok := FromTraceparent("http.compile", "nope")
	if ok {
		t.Fatal("garbage header reported ingested")
	}
	if len(tr2.TraceID()) != 32 || allZero(tr2.TraceID()) {
		t.Fatalf("minted trace id = %q", tr2.TraceID())
	}
	if tr2.TraceID() == tr.TraceID() {
		t.Fatal("minted trace id collided")
	}
}

// TestPhaseTiling pins the ledger property: consecutive phases share
// boundaries exactly, so their durations sum to the root span's
// active window with zero gap.
func TestPhaseTiling(t *testing.T) {
	tr := New("req")
	root := tr.Root()
	root.Phase("ingress")
	time.Sleep(2 * time.Millisecond)
	root.Phase("queue.wait")
	time.Sleep(2 * time.Millisecond)
	p := root.Phase("compile")
	p.SetAttr("outcome", "miss")
	time.Sleep(2 * time.Millisecond)
	root.Phase("finalize")
	root.End()

	doc := tr.Doc()
	if doc.Root.Open {
		t.Fatal("ended root still open")
	}
	if len(doc.Root.Children) != 4 {
		t.Fatalf("phases = %d", len(doc.Root.Children))
	}
	var sum int64
	for i, c := range doc.Root.Children {
		if c.Open {
			t.Fatalf("phase %s still open", c.Name)
		}
		sum += c.DurUS
		if i > 0 {
			prev := doc.Root.Children[i-1]
			if prev.StartUS+prev.DurUS != c.StartUS {
				t.Fatalf("gap between %s and %s: %d+%d != %d",
					prev.Name, c.Name, prev.StartUS, prev.DurUS, c.StartUS)
			}
		}
	}
	first := doc.Root.Children[0]
	last := doc.Root.Children[len(doc.Root.Children)-1]
	if got := last.StartUS + last.DurUS - first.StartUS; sum != got {
		t.Fatalf("phase sum %d != active window %d", sum, got)
	}
	// The root ends with the last phase, so phase sum == root duration
	// minus the (here zero) pre-phase lead-in.
	if sum > doc.Root.DurUS {
		t.Fatalf("phases (%dus) exceed root (%dus)", sum, doc.Root.DurUS)
	}
	if doc.Root.Children[2].Attrs["outcome"] != "miss" {
		t.Fatalf("attrs lost: %+v", doc.Root.Children[2].Attrs)
	}
	totals := PhaseTotals(doc.Root)
	if totals["compile"] != doc.Root.Children[2].DurUS {
		t.Fatalf("PhaseTotals = %v", totals)
	}
}

func TestChildSpansAndSnapshotOpen(t *testing.T) {
	tr := New("req")
	c := tr.Root().Child("inner")
	c.SetAttr("k", "v1")
	c.SetAttr("k", "v2") // overwrite, not duplicate
	mid := tr.Doc()
	if len(mid.Root.Children) != 1 || !mid.Root.Children[0].Open || !mid.Root.Open {
		t.Fatalf("mid-flight snapshot wrong: %+v", mid.Root)
	}
	c.End()
	c.End() // idempotent
	tr.Root().End()
	doc := tr.Doc()
	if doc.Root.Children[0].Open || doc.Root.Children[0].Attrs["k"] != "v2" {
		t.Fatalf("ended child wrong: %+v", doc.Root.Children[0])
	}
	// The doc marshals cleanly.
	if _, err := json.Marshal(doc); err != nil {
		t.Fatal(err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a trace")
	}
	tr := New("x")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.TraceID() != "" || tr.Traceparent() != "" || tr.ReqID() != "" {
		t.Fatal("nil trace not inert")
	}
	tr.SetReqID("x")
	if tr.Root() != nil {
		t.Fatal("nil trace has a root")
	}
	var s *Span
	s.End()
	s.SetAttr("a", "b")
	s.AddEvent("e")
	s.ClosePhase()
	if s.Child("c") != nil || s.Phase("p") != nil {
		t.Fatal("nil span spawned children")
	}
	doc := tr.Doc()
	if doc.TraceID != "" {
		t.Fatal("nil trace doc not empty")
	}
}

// TestTraceConcurrentSpans exercises the shared-lock tree under
// parallel writers (run with -race).
func TestTraceConcurrentSpans(t *testing.T) {
	tr := New("req")
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := root.Child("worker")
				c.SetAttr("n", "1")
				c.End()
				_ = tr.Doc()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Doc().Root.Children); got != 400 {
		t.Fatalf("children = %d, want 400", got)
	}
}
