package reqtrace

import (
	"sync"
	"time"
)

// Record is one completed request as retained by the flight recorder:
// an identity block joinable against client logs (request id, trace
// id), the outcome, a phase-duration summary, and the full span tree.
type Record struct {
	ID      string `json:"id"`
	TraceID string `json:"trace_id"`
	Route   string `json:"route"`
	// Status is the HTTP status code the response carried.
	Status   int    `json:"status"`
	Error    string `json:"error,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	// Cache is the compile-tier outcome (hit/miss/dedup) when known.
	Cache  string `json:"cache,omitempty"`
	UnixNS int64  `json:"unix_ns"`
	// WallUS is the request's wall time; Phases sums the root span's
	// direct children by name (queue.wait, compile, place, …) — the
	// tiling discipline makes them account for the wall time.
	WallUS int64            `json:"wall_us"`
	Phases map[string]int64 `json:"phases,omitempty"`
	// Slow marks records that crossed the recorder's latency
	// threshold (they are retained longer).
	Slow bool `json:"slow,omitempty"`
	// NativeSkew and NativeBlockedSec are the runtime profiler's
	// headline numbers when the request executed on the profiled
	// native backend (zero otherwise): compute skew max/mean and total
	// seconds blocked in communication.
	NativeSkew       float64 `json:"native_skew,omitempty"`
	NativeBlockedSec float64 `json:"native_blocked_sec,omitempty"`
	// Trace is the full span tree. List endpoints serve Summary()
	// instead, which drops it.
	Trace *TraceDoc `json:"trace,omitempty"`
}

// Summary returns the record without its span tree, for listings.
func (r Record) Summary() Record {
	r.Trace = nil
	return r
}

// FlightRecorder is an always-on bounded ring of completed-request
// records plus a second, longer-lived store for requests that were
// slow (wall time at or above the threshold) or errored (status >=
// 400). The main ring answers "what just happened"; the slow store
// keeps the interesting traces around even while healthy traffic
// churns the ring.
type FlightRecorder struct {
	mu      sync.Mutex
	cap     int
	recs    []Record // oldest first
	slowCap int
	slow    []Record // oldest first
	thresh  time.Duration

	added    int64
	retained int64
}

// NewFlightRecorder builds a recorder holding at most n recent
// records and nSlow slow/errored records; wall times at or above
// thresh mark a record slow. n <= 0 disables the main ring (slow
// retention still works); thresh <= 0 disables the slow mark (errors
// are still retained).
func NewFlightRecorder(n, nSlow int, thresh time.Duration) *FlightRecorder {
	return &FlightRecorder{cap: n, slowCap: nSlow, thresh: thresh}
}

// Threshold returns the slow-request latency threshold.
func (f *FlightRecorder) Threshold() time.Duration {
	if f == nil {
		return 0
	}
	return f.thresh
}

// Add retains one completed request. The record lands in the main
// ring always, and additionally in the slow store when it was slow or
// errored.
func (f *FlightRecorder) Add(rec Record) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.added++
	if f.thresh > 0 && time.Duration(rec.WallUS)*time.Microsecond >= f.thresh {
		rec.Slow = true
	}
	if f.cap > 0 {
		f.recs = append(f.recs, rec)
		if len(f.recs) > f.cap {
			copy(f.recs, f.recs[1:])
			f.recs = f.recs[:f.cap]
		}
	}
	if f.slowCap > 0 && (rec.Slow || rec.Status >= 400) {
		f.retained++
		f.slow = append(f.slow, rec)
		if len(f.slow) > f.slowCap {
			copy(f.slow, f.slow[1:])
			f.slow = f.slow[:f.slowCap]
		}
	}
}

// Get returns the record with the given id, preferring the newest
// match; the slow store is consulted after the main ring, so a trace
// evicted from the ring but retained as slow/errored still resolves.
func (f *FlightRecorder) Get(id string) (Record, bool) {
	if f == nil {
		return Record{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := len(f.recs) - 1; i >= 0; i-- {
		if f.recs[i].ID == id {
			return f.recs[i], true
		}
	}
	for i := len(f.slow) - 1; i >= 0; i-- {
		if f.slow[i].ID == id {
			return f.slow[i], true
		}
	}
	return Record{}, false
}

// Recent returns up to limit summaries from the main ring, newest
// first; limit <= 0 returns all of them.
func (f *FlightRecorder) Recent(limit int) []Record {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return summarize(f.recs, limit)
}

// Slow returns up to limit summaries from the slow/errored store,
// newest first.
func (f *FlightRecorder) Slow(limit int) []Record {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return summarize(f.slow, limit)
}

func summarize(recs []Record, limit int) []Record {
	n := len(recs)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Record, 0, n)
	for i := len(recs) - 1; i >= len(recs)-n; i-- {
		out = append(out, recs[i].Summary())
	}
	return out
}

// Stats reports the recorder's occupancy and lifetime totals.
type FlightStats struct {
	Capacity     int   `json:"capacity"`
	SlowCapacity int   `json:"slow_capacity"`
	ThresholdUS  int64 `json:"threshold_us"`
	Recent       int   `json:"recent"`
	SlowRetained int   `json:"slow_retained"`
	Added        int64 `json:"added"`
	Retained     int64 `json:"retained"`
}

// Stats snapshots the recorder.
func (f *FlightRecorder) Stats() FlightStats {
	if f == nil {
		return FlightStats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return FlightStats{
		Capacity:     f.cap,
		SlowCapacity: f.slowCap,
		ThresholdUS:  f.thresh.Microseconds(),
		Recent:       len(f.recs),
		SlowRetained: len(f.slow),
		Added:        f.added,
		Retained:     f.retained,
	}
}
