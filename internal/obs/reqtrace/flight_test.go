package reqtrace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func rec(id string, wallUS int64, status int) Record {
	return Record{
		ID: id, TraceID: id + "-trace", Route: "/compile",
		Status: status, WallUS: wallUS,
		Phases: map[string]int64{"compile": wallUS},
		Trace:  &TraceDoc{TraceID: id + "-trace", Root: SpanDoc{Name: "http.compile", DurUS: wallUS}},
	}
}

func TestFlightRingEvictionAndLookup(t *testing.T) {
	f := NewFlightRecorder(3, 2, 100*time.Millisecond)
	for i := 0; i < 5; i++ {
		f.Add(rec(fmt.Sprintf("r%d", i), 10, 200))
	}
	if st := f.Stats(); st.Recent != 3 || st.Added != 5 || st.SlowRetained != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := f.Get("r0"); ok {
		t.Fatal("evicted record still resolvable")
	}
	got, ok := f.Get("r4")
	if !ok || got.Trace == nil || got.Trace.Root.Name != "http.compile" {
		t.Fatalf("r4 = %+v ok=%v", got, ok)
	}
	ids := f.Recent(0)
	if len(ids) != 3 || ids[0].ID != "r4" || ids[2].ID != "r2" {
		t.Fatalf("recent = %+v", ids)
	}
	if ids[0].Trace != nil {
		t.Fatal("listing leaked the full span tree")
	}
	if lim := f.Recent(2); len(lim) != 2 || lim[0].ID != "r4" {
		t.Fatalf("limited recent = %+v", lim)
	}
}

// TestFlightSlowRetention pins the two-store contract: slow and
// errored requests survive ring churn.
func TestFlightSlowRetention(t *testing.T) {
	f := NewFlightRecorder(2, 4, 50*time.Millisecond)
	f.Add(rec("slow1", 60_000, 200)) // 60ms >= 50ms threshold
	f.Add(rec("err1", 10, 429))
	for i := 0; i < 10; i++ {
		f.Add(rec(fmt.Sprintf("fast%d", i), 10, 200))
	}
	// Both are long gone from the 2-deep ring but still resolve.
	got, ok := f.Get("slow1")
	if !ok || !got.Slow {
		t.Fatalf("slow1 = %+v ok=%v", got, ok)
	}
	if got, ok := f.Get("err1"); !ok || got.Status != 429 {
		t.Fatalf("err1 = %+v ok=%v", got, ok)
	}
	slow := f.Slow(0)
	if len(slow) != 2 || slow[0].ID != "err1" || slow[1].ID != "slow1" {
		t.Fatalf("slow store = %+v", slow)
	}
	if st := f.Stats(); st.Retained != 2 || st.SlowRetained != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// The slow store is bounded too.
	for i := 0; i < 10; i++ {
		f.Add(rec(fmt.Sprintf("e%d", i), 10, 500))
	}
	if st := f.Stats(); st.SlowRetained != 4 {
		t.Fatalf("slow store overgrew: %+v", st)
	}
	if _, ok := f.Get("slow1"); ok {
		t.Fatal("evicted slow record still resolvable")
	}
}

func TestFlightDisabledAndNil(t *testing.T) {
	var nilF *FlightRecorder
	nilF.Add(rec("x", 1, 200))
	if _, ok := nilF.Get("x"); ok || nilF.Recent(0) != nil || nilF.Slow(0) != nil {
		t.Fatal("nil recorder not inert")
	}
	if nilF.Stats() != (FlightStats{}) || nilF.Threshold() != 0 {
		t.Fatal("nil stats not zero")
	}
	// cap<=0 disables the ring but errors are still retained.
	f := NewFlightRecorder(0, 2, 0)
	f.Add(rec("ok", 1, 200))
	f.Add(rec("bad", 1, 500))
	if _, ok := f.Get("ok"); ok {
		t.Fatal("disabled ring retained a record")
	}
	if _, ok := f.Get("bad"); !ok {
		t.Fatal("errored record not retained")
	}
	// thresh==0 never marks slow.
	if got, _ := f.Get("bad"); got.Slow {
		t.Fatal("zero threshold marked a record slow")
	}
}

// TestFlightConcurrent exercises the recorder under concurrent
// writers and readers (run with -race).
func TestFlightConcurrent(t *testing.T) {
	f := NewFlightRecorder(16, 8, time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				status := 200
				if i%7 == 0 {
					status = 503
				}
				f.Add(rec(id, int64(i)*100, status))
				f.Get(id)
				f.Recent(4)
				f.Slow(4)
				f.Stats()
			}
		}(w)
	}
	wg.Wait()
	if st := f.Stats(); st.Added != 800 || st.Recent != 16 || st.SlowRetained != 8 {
		t.Fatalf("stats = %+v", st)
	}
}
