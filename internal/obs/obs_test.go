package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Start("phase")() // must not panic
	r.Add("c", 1)
	r.Gauge("g", 2)
	r.AddDecision(Decision{Entry: 1})
	r.SetProfile(NewCommProfile(2))
	if r.Counter("c") != 0 || r.Counters() != nil || r.Gauges() != nil {
		t.Fatal("nil recorder retained state")
	}
	if r.Spans() != nil || r.Decisions() != nil || r.CommProfile() != nil {
		t.Fatal("nil recorder returned data")
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("nil trace not valid JSON: %v", err)
	}
}

func TestNilProfileIsNoOp(t *testing.T) {
	var p *CommProfile
	p.AddPair(0, 1, 8)
	p.AddStep("g", "NNC", 1, 8)
	if p.TotalBytes() != 0 || p.TotalMessages() != 0 || p.MaxPairBytes() != 0 {
		t.Fatal("nil profile returned data")
	}
}

func TestSpansNestAndMeasure(t *testing.T) {
	r := New()
	endOuter := r.Start("outer")
	r.Start("inner")()
	endOuter()
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	// Completion order: inner closes first.
	if spans[0].Name != "inner" || spans[1].Name != "outer" {
		t.Fatalf("bad span order: %v", spans)
	}
	if spans[0].Depth != 1 || spans[1].Depth != 0 {
		t.Fatalf("bad depths: %+v", spans)
	}
	for _, s := range spans {
		if s.DurUS < 0 || s.StartUS < 0 {
			t.Fatalf("negative time in %+v", s)
		}
	}
	// Double-ending a span must not duplicate it.
	end := r.Start("once")
	end()
	end()
	if got := len(r.Spans()); got != 3 {
		t.Fatalf("double end duplicated span: %d spans", got)
	}
}

func TestCountersAndGauges(t *testing.T) {
	r := New()
	r.Add("x", 2)
	r.Add("x", 3)
	r.Gauge("ratio", 0.5)
	if r.Counter("x") != 5 {
		t.Fatalf("counter x = %d", r.Counter("x"))
	}
	if r.Gauges()["ratio"] != 0.5 {
		t.Fatal("gauge lost")
	}
	// Counters() returns a copy.
	r.Counters()["x"] = 99
	if r.Counter("x") != 5 {
		t.Fatal("Counters() leaked internal map")
	}
}

func TestTraceFormatIsValidChromeTrace(t *testing.T) {
	r := New()
	r.Start("parse")()
	r.Start("place")()
	r.Add("groups", 4)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   *int64 `json:"ts"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(f.TraceEvents) != 3 { // two spans + metrics instant
		t.Fatalf("want 3 events, got %d", len(f.TraceEvents))
	}
	for _, e := range f.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.TS == nil || e.PID == 0 || e.TID == 0 {
			t.Fatalf("event missing required fields: %+v", e)
		}
	}
}

func TestMetricsJSONDeterministic(t *testing.T) {
	build := func() string {
		r := New()
		r.Add("b", 2)
		r.Add("a", 1)
		r.Gauge("z", 1)
		r.Gauge("y", 2)
		r.AddDecision(Decision{Version: "comb", Entry: 0, Array: "u", Kind: "NNC", Outcome: OutcomePlaced, SubsumedBy: -1})
		doc := r.Doc()
		doc.Spans = nil // spans carry timings; exclude from determinism check
		b, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if build() != build() {
		t.Fatal("metrics JSON not deterministic")
	}
}

func TestCommProfileAccounting(t *testing.T) {
	p := NewCommProfile(3)
	p.AddPair(0, 1, 16)
	p.AddPair(0, 1, 16)
	p.AddPair(2, 0, 8)
	p.AddPair(9, 0, 8) // out of range: ignored
	p.AddStep("group0@B2.top", "NNC", 3, 40)
	if p.PairBytes[0][1] != 32 || p.PairMsgs[0][1] != 2 {
		t.Fatalf("pair accounting wrong: %+v", p.PairBytes)
	}
	if p.MaxPairBytes() != 32 {
		t.Fatalf("MaxPairBytes = %d", p.MaxPairBytes())
	}
	if p.TotalBytes() != 40 || p.TotalMessages() != 3 {
		t.Fatalf("step totals wrong: %d bytes %d msgs", p.TotalBytes(), p.TotalMessages())
	}
}

func TestDecisionFormat(t *testing.T) {
	placed := Decision{Version: "comb", Entry: 3, Array: "cu", Kind: "NNC", Earliest: "B2.top",
		Latest: "B5.top", Candidates: []string{"B2.top", "B5.top"}, Outcome: OutcomePlaced,
		SubsumedBy: -1, Group: 1, GroupPos: "B5.top", GroupSize: 3, Combined: true}
	s := placed.Format()
	for _, want := range []string{"e3", "cu", "NNC", "group1@B5.top", "combined with 2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("placed format %q missing %q", s, want)
		}
	}
	sub := Decision{Entry: 4, Array: "h", Kind: "NNC", Outcome: OutcomeSubsumed, SubsumedBy: 2, SubsumedAt: "B3.top"}
	if s := sub.Format(); !strings.Contains(s, "subsumed by e2") || !strings.Contains(s, "B3.top") {
		t.Fatalf("subsumed format %q", s)
	}
	coal := Decision{Entry: 5, Array: "z", Kind: "NNC", Outcome: OutcomeCoalesced, SubsumedBy: -1, Carriers: []int{1, 2}}
	if s := coal.Format(); !strings.Contains(s, "coalesced into axis exchanges {e1, e2}") {
		t.Fatalf("coalesced format %q", s)
	}
}
