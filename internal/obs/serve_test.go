package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// Uniform-ish fill: 4 obs in (0,1], 4 in (1,2], 4 in (2,4].
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
		h.Observe(3)
	}
	// Rank 6 of 12 lands at the end of the (1,2] bucket's first half.
	if got := h.Quantile(0.5); got < 1 || got > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", got)
	}
	if got := h.Quantile(0.99); got < 2 || got > 4 {
		t.Fatalf("p99 = %v, want within (2,4]", got)
	}
	// Quantiles are monotone in q.
	if h.Quantile(0.25) > h.Quantile(0.75) {
		t.Fatal("quantiles not monotone")
	}
	// Overflow observations clamp to the largest finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.9); got != 1 {
		t.Fatalf("overflow quantile = %v, want 1", got)
	}
	// Empty and nil histograms report 0.
	if NewHistogram([]float64{1}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
	// Out-of-range q is clamped, not NaN.
	if v := h.Quantile(-1); math.IsNaN(v) {
		t.Fatal("q<0 produced NaN")
	}
	if v := h.Quantile(2); math.IsNaN(v) {
		t.Fatal("q>1 produced NaN")
	}
}

// TestHistogramQuantileMassEdges pins the degenerate mass
// distributions: every observation in one bucket. These are the shapes
// the native profiler produces on tiny runs (all supersteps equally
// fast, or all slower than the largest bound), so the estimator must
// stay finite and ordered rather than divide by an empty bucket.
func TestHistogramQuantileMassEdges(t *testing.T) {
	// All mass in the first bucket: every quantile interpolates inside
	// (0, 1] and never escapes it.
	first := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		first.Observe(0.5)
	}
	for _, q := range []float64{0.01, 0.5, 1} {
		got := first.Quantile(q)
		if got <= 0 || got > 1 {
			t.Fatalf("first-bucket q=%v = %v, want within (0,1]", q, got)
		}
	}
	if first.Quantile(1) != 1 {
		t.Fatalf("first-bucket q=1 = %v, want the bucket's upper bound", first.Quantile(1))
	}

	// All mass in the last finite bucket: quantiles interpolate inside
	// (2, 4], never below the bucket's lower bound.
	last := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		last.Observe(3)
	}
	for _, q := range []float64{0.01, 0.5, 1} {
		got := last.Quantile(q)
		if got <= 2 || got > 4 {
			t.Fatalf("last-bucket q=%v = %v, want within (2,4]", q, got)
		}
	}

	// All mass past the largest bound: the histogram cannot resolve
	// beyond its range, so every quantile clamps to that bound.
	over := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		over.Observe(1000)
	}
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := over.Quantile(q); got != 4 {
			t.Fatalf("overflow q=%v = %v, want clamp to 4", q, got)
		}
	}

	// No finite bounds at all: only the +Inf bucket exists, so the best
	// available estimate is the mean.
	unbounded := NewHistogram(nil)
	unbounded.Observe(3)
	unbounded.Observe(5)
	if got := unbounded.Quantile(0.5); got != 4 {
		t.Fatalf("unbounded q=0.5 = %v, want the mean 4", got)
	}
}

// TestRegistryREDFamilies pins the serving-layer exposition: the
// two-label request counter, the per-route latency histogram, the
// queue-wait histogram and the build-info sample all render as valid
// scrapeable text.
func TestRegistryREDFamilies(t *testing.T) {
	g := NewRegistry()
	g.SetBuildInfo("v1.2.3-test")
	g.ObserveHTTP("/compile", 200, 0.010)
	g.ObserveHTTP("/compile", 200, 0.020)
	g.ObserveHTTP("/compile", 429, 0.0001)
	g.ObserveHTTP("/metrics", 200, 0.001)
	g.ObserveQueueWait(0.005)
	g.ObserveQueueWait(0.100)

	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := CheckPromText(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`gcao_build_info{version="v1.2.3-test"} 1`,
		`gcao_http_requests_total{code="200",route="/compile"} 2`,
		`gcao_http_requests_total{code="429",route="/compile"} 1`,
		`gcao_http_requests_total{code="200",route="/metrics"} 1`,
		`gcao_http_request_seconds_count{route="/compile"} 3`,
		`gcao_http_request_seconds_bucket{route="/compile",le="+Inf"} 3`,
		`gcao_queue_wait_seconds_count{pool="compile"} 2`,
		`# TYPE gcao_http_requests_total counter`,
		`# TYPE gcao_http_request_seconds histogram`,
		`# TYPE gcao_queue_wait_seconds histogram`,
		`# TYPE gcao_build_info gauge`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// Determinism: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := g.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("exposition not deterministic")
	}
	// Clearing the build info removes the family.
	g.SetBuildInfo("")
	buf.Reset()
	g.WritePrometheus(&buf)
	if strings.Contains(buf.String(), "gcao_build_info") {
		t.Fatal("build info rendered after clearing")
	}
}

func TestRegistryServerStatsFamilies(t *testing.T) {
	g := NewRegistry()
	g.Absorb(nil, "ok")
	var buf bytes.Buffer
	g.WritePrometheus(&buf)
	if strings.Contains(buf.String(), "gcao_http_inflight") {
		t.Fatal("server families rendered without a callback")
	}
	g.SetServerStatsFunc(func() ServerStats {
		return ServerStats{
			HTTPInflight: 2, QueueDepth: 3, QueueCapacity: 64,
			ActiveJobs: 4, Workers: 8, AvgServiceSeconds: 0.0125,
			JobOutcomes: map[string]int64{"completed": 10, "rejected": 1, "expired": 2},
		}
	})
	buf.Reset()
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := CheckPromText(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"gcao_http_inflight 2",
		"gcao_queue_depth 3",
		"gcao_queue_capacity 64",
		"gcao_jobs_active 4",
		"gcao_pool_workers 8",
		"gcao_job_avg_service_seconds 0.0125",
		`gcao_sched_jobs_total{outcome="completed"} 10`,
		`gcao_sched_jobs_total{outcome="rejected"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	g.SetServerStatsFunc(nil)
	buf.Reset()
	g.WritePrometheus(&buf)
	if strings.Contains(buf.String(), "gcao_http_inflight") {
		t.Fatal("server families rendered after unregistering")
	}
}

func TestHTTPRouteStatsAndCodeTotals(t *testing.T) {
	g := NewRegistry()
	for i := 0; i < 100; i++ {
		g.ObserveHTTP("/compile", 200, 0.004)
	}
	g.ObserveHTTP("/compile", 500, 2.0)
	g.ObserveHTTP("/metrics", 200, 0.0002)

	stats := g.HTTPRouteStats()
	if len(stats) != 2 || stats[0].Route != "/compile" || stats[1].Route != "/metrics" {
		t.Fatalf("route stats = %+v", stats)
	}
	c := stats[0]
	if c.Count != 101 {
		t.Fatalf("/compile count = %d", c.Count)
	}
	if c.P50ms <= 0 || c.P50ms > 10 {
		t.Fatalf("/compile p50 = %vms, want small", c.P50ms)
	}
	if c.P99ms < c.P50ms {
		t.Fatalf("p99 %v < p50 %v", c.P99ms, c.P50ms)
	}
	totals := g.HTTPCodeTotals()
	if totals["200"] != 101 || totals["500"] != 1 {
		t.Fatalf("code totals = %v", totals)
	}
	// Nil-safety.
	var nilG *Registry
	nilG.ObserveHTTP("/x", 200, 1)
	nilG.ObserveQueueWait(1)
	nilG.SetBuildInfo("x")
	nilG.SetServerStatsFunc(nil)
	if nilG.HTTPRouteStats() != nil || nilG.HTTPCodeTotals() != nil || nilG.QueueWaitQuantile(0.5) != 0 {
		t.Fatal("nil registry not inert")
	}
}

// TestRegistryREDConcurrent exercises the new write paths under
// concurrent scrapes (run with -race).
func TestRegistryREDConcurrent(t *testing.T) {
	g := NewRegistry()
	g.SetBuildInfo("race")
	g.SetServerStatsFunc(func() ServerStats { return ServerStats{Workers: 1} })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.ObserveHTTP("/compile", 200, 0.001)
				g.ObserveQueueWait(0.0001)
				if i%10 == 0 {
					var buf bytes.Buffer
					g.WritePrometheus(&buf)
					g.HTTPRouteStats()
					g.HTTPCodeTotals()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := g.HTTPCodeTotals()["200"]; got != 800 {
		t.Fatalf("code totals = %d, want 800", got)
	}
}
