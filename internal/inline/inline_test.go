package inline

import (
	"strings"
	"testing"

	"gcao/internal/ast"
	"gcao/internal/parser"
)

func flatten(t *testing.T, src, main string) *ast.Routine {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := Flatten(prog, main)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	return r
}

const twoRoutineSrc = `
routine main(n)
real a(n, n), b(n, n)
!hpf$ distribute (block, block) :: a, b
call smooth(a, n)
call smooth(b, n)
end

routine smooth(q, n)
real q(n, n)
real tmp(n, n)
!hpf$ distribute (block, block) :: tmp
do i = 2, n - 1
do j = 2, n - 1
tmp(i, j) = q(i - 1, j) + q(i + 1, j)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
q(i, j) = 0.5 * tmp(i, j)
enddo
enddo
end
`

func TestFlattenBasics(t *testing.T) {
	r := flatten(t, twoRoutineSrc, "main")
	body := renderBody(r)
	// Both expansions present, on the right arrays.
	if !strings.Contains(body, "a((i$c1 - 1),j$c1)") && !strings.Contains(body, "a((i$c1 - 1)") {
		t.Errorf("first expansion should read a:\n%s", body)
	}
	if !strings.Contains(body, "b(") {
		t.Errorf("second expansion should read b:\n%s", body)
	}
	// No calls remain.
	ast.Walk(r.Body, func(s ast.Stmt) {
		if _, ok := s.(*ast.CallStmt); ok {
			t.Error("call statement survived flattening")
		}
	})
	// tmp hoisted twice with distinct names + distribute directives.
	names := map[string]bool{}
	for _, d := range r.Decls {
		for _, item := range d.Items {
			names[item.Name] = true
		}
	}
	if !names["tmp$c1"] || !names["tmp$c2"] {
		t.Errorf("locals not hoisted uniquely: %v", names)
	}
	dirCount := 0
	for _, dir := range r.Dirs {
		if dd, ok := dir.(*ast.DistributeDir); ok {
			for _, a := range dd.Arrays {
				if strings.HasPrefix(a, "tmp$") {
					dirCount++
				}
			}
		}
	}
	if dirCount != 2 {
		t.Errorf("hoisted distribute directives = %d, want 2", dirCount)
	}
}

func renderBody(r *ast.Routine) string {
	var b strings.Builder
	for _, s := range r.Body {
		b.WriteString(ast.StmtString(s))
		b.WriteByte('\n')
	}
	return b.String()
}

func TestFlattenIntArgs(t *testing.T) {
	src := `
routine main(n)
real a(n)
call fill(a, n / 2)
end

routine fill(q, m)
real q(2 * m)
do i = 1, m
q(i) = i
enddo
end
`
	r := flatten(t, src, "main")
	body := renderBody(r)
	if !strings.Contains(body, "(n / 2)") {
		t.Errorf("integer argument should substitute as an expression:\n%s", body)
	}
}

func TestFlattenNested(t *testing.T) {
	src := `
routine main(n)
real a(n)
call outer(a, n)
end

routine outer(q, n)
real q(n)
call leaf(q, n)
end

routine leaf(q, n)
real q(n)
do i = 1, n
q(i) = 1
enddo
end
`
	r := flatten(t, src, "main")
	body := renderBody(r)
	if !strings.Contains(body, "a(") {
		t.Errorf("nested inline should bottom out on a:\n%s", body)
	}
}

func TestFlattenErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown", "routine main()\nreal a(4)\ncall nope(a)\nend\n", "unknown routine"},
		{"recursive", `
routine main()
real a(4)
call main()
end
`, "recursive"},
		{"arity", `
routine main()
real a(4)
call s(a, 1)
end
routine s(q)
real q(4)
q(1) = 0
end
`, "arguments"},
		{"non-array arg", `
routine main()
real x
call s(x)
end
routine s(q)
real q(4)
q(1) = 0
end
`, "must name an array"},
		{"callee processors", `
routine main()
real a(4)
call s(a)
end
routine s(q)
real q(4)
!hpf$ processors p(2)
q(1) = 0
end
`, "PROCESSORS"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := parser.Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Flatten(prog, "main")
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("want error containing %q, got %v", tc.wantSub, err)
			}
		})
	}
}
