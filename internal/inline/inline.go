// Package inline realizes the paper's §7 interprocedural direction the
// way pHPF-generation compilers did in practice: by inlining. Flatten
// substitutes every CALL statement with a renamed clone of the callee's
// body, producing a single routine over which the global communication
// analysis runs unchanged — so redundancy elimination and message
// combining work across what used to be procedure boundaries.
//
// Argument binding is Fortran-flavoured:
//
//   - an argument naming an array of the (flattened) caller binds the
//     formal by renaming: the formal's own declaration is dropped and
//     every reference is rewritten to the actual array;
//   - any other argument is substituted as an expression (macro
//     style), which covers the integer size parameters the mini-HPF
//     language uses;
//   - callee-local variables are renamed uniquely per call site, and
//     their declarations and DISTRIBUTE directives are hoisted into
//     the flattened routine.
//
// Recursion is rejected (HPF procedures are not recursive).
package inline

import (
	"fmt"

	"gcao/internal/ast"
	"gcao/internal/source"
)

// Flatten inlines every call reachable from the named main routine and
// returns the resulting self-contained routine. The input program is
// not modified.
type flattener struct {
	prog    *ast.Program
	main    *ast.Routine
	out     *ast.Routine
	callSeq int
	// arrays tracks array names visible in the flattened routine, for
	// argument classification.
	arrays map[string]bool
}

// Flatten inlines all calls in main.
func Flatten(prog *ast.Program, main string) (*ast.Routine, error) {
	r := prog.Routine(main)
	if r == nil {
		return nil, fmt.Errorf("inline: no routine %q", main)
	}
	f := &flattener{prog: prog, main: r, arrays: map[string]bool{}}
	f.out = &ast.Routine{
		Name:   r.Name,
		Params: append([]string(nil), r.Params...),
		Pos:    r.Pos,
	}
	for _, d := range r.Decls {
		f.out.Decls = append(f.out.Decls, d)
		for _, item := range d.Items {
			if len(item.Bounds) > 0 {
				f.arrays[item.Name] = true
			}
		}
	}
	f.out.Dirs = append(f.out.Dirs, r.Dirs...)
	body, err := f.body(r.Body, map[string]bool{main: true})
	if err != nil {
		return nil, err
	}
	f.out.Body = body
	return f.out, nil
}

func (f *flattener) body(stmts []ast.Stmt, active map[string]bool) ([]ast.Stmt, error) {
	var out []ast.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.CallStmt:
			inlined, err := f.expand(s, active)
			if err != nil {
				return nil, err
			}
			out = append(out, inlined...)
		case *ast.DoStmt:
			b, err := f.body(s.Body, active)
			if err != nil {
				return nil, err
			}
			out = append(out, &ast.DoStmt{Var: s.Var, Lo: s.Lo, Hi: s.Hi, Step: s.Step, Body: b, Pos: s.Pos})
		case *ast.IfStmt:
			t, err := f.body(s.Then, active)
			if err != nil {
				return nil, err
			}
			e, err := f.body(s.Else, active)
			if err != nil {
				return nil, err
			}
			out = append(out, &ast.IfStmt{Cond: s.Cond, Then: t, Else: e, Pos: s.Pos})
		default:
			out = append(out, s)
		}
	}
	return out, nil
}

// expand inlines one call site.
func (f *flattener) expand(call *ast.CallStmt, active map[string]bool) ([]ast.Stmt, error) {
	callee := f.prog.Routine(call.Name)
	if callee == nil {
		return nil, source.Errorf(call.Pos, "inline: call to unknown routine %q", call.Name)
	}
	if active[call.Name] {
		return nil, source.Errorf(call.Pos, "inline: recursive call to %q", call.Name)
	}
	if len(call.Args) != len(callee.Params) {
		return nil, source.Errorf(call.Pos, "inline: %q takes %d arguments, call passes %d",
			call.Name, len(callee.Params), len(call.Args))
	}
	f.callSeq++
	seq := f.callSeq

	// Classify formals: array binding vs expression substitution.
	// A formal is an array formal when the callee declares it with
	// bounds.
	formalArray := map[string]bool{}
	for _, d := range callee.Decls {
		for _, item := range d.Items {
			if len(item.Bounds) > 0 {
				for _, p := range callee.Params {
					if p == item.Name {
						formalArray[p] = true
					}
				}
			}
		}
	}

	rename := map[string]string{} // formal/local array or scalar -> new name
	substExpr := map[string]ast.Expr{}
	for i, p := range callee.Params {
		arg := call.Args[i]
		if formalArray[p] {
			id, ok := arg.(*ast.Ident)
			if !ok {
				if r, okr := arg.(*ast.Ref); okr && len(r.Subs) == 0 {
					id = &ast.Ident{Name: r.Name, Pos: r.Pos}
					ok = true
				}
			}
			if !ok || !f.arrays[id.Name] {
				return nil, source.Errorf(call.Pos,
					"inline: argument %d of %q must name an array (formal %q is an array)", i+1, call.Name, p)
			}
			rename[p] = id.Name
			continue
		}
		substExpr[p] = arg
	}

	// Hoist callee locals with fresh names; drop declarations of array
	// formals (they alias the actuals).
	for _, d := range callee.Decls {
		nd := &ast.Decl{Type: d.Type, Pos: d.Pos}
		for _, item := range d.Items {
			if _, isFormalArray := rename[item.Name]; isFormalArray && formalArray[item.Name] {
				continue
			}
			if _, isParam := substExpr[item.Name]; isParam {
				return nil, source.Errorf(d.Pos, "inline: %q: parameter %q redeclared as a local", call.Name, item.Name)
			}
			fresh := fmt.Sprintf("%s$c%d", item.Name, seq)
			rename[item.Name] = fresh
			ni := ast.DeclItem{Name: fresh}
			for _, b := range item.Bounds {
				ni.Bounds = append(ni.Bounds, ast.Bound{
					Lo: f.rewriteExpr(b.Lo, rename, substExpr),
					Hi: f.rewriteExpr(b.Hi, rename, substExpr),
				})
			}
			nd.Items = append(nd.Items, ni)
			if len(ni.Bounds) > 0 {
				f.arrays[fresh] = true
			}
		}
		if len(nd.Items) > 0 {
			f.out.Decls = append(f.out.Decls, nd)
		}
	}

	// Hoist callee directives with renamed targets; directives naming
	// array formals are dropped (the actual's distribution governs).
	for _, dir := range callee.Dirs {
		switch dir := dir.(type) {
		case *ast.ProcessorsDir:
			return nil, source.Errorf(dir.Pos, "inline: %q: PROCESSORS directives belong in the main routine", call.Name)
		case *ast.DistributeDir:
			nd := &ast.DistributeDir{Kinds: dir.Kinds, Onto: dir.Onto, Pos: dir.Pos}
			for _, name := range dir.Arrays {
				if formalArray[name] {
					continue // actual's distribution applies
				}
				if fresh, ok := rename[name]; ok {
					nd.Arrays = append(nd.Arrays, fresh)
				} else {
					nd.Arrays = append(nd.Arrays, name)
				}
			}
			if len(nd.Arrays) > 0 {
				f.out.Dirs = append(f.out.Dirs, nd)
			}
		}
	}

	// Clone and rewrite the body, then recursively inline nested calls.
	inner := map[string]bool{}
	for k := range active {
		inner[k] = true
	}
	inner[call.Name] = true
	cloned := f.rewriteBody(callee.Body, rename, substExpr)
	return f.body(cloned, inner)
}

func (f *flattener) rewriteBody(stmts []ast.Stmt, rename map[string]string, subst map[string]ast.Expr) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			out = append(out, &ast.AssignStmt{
				LHS:   f.rewriteRef(s.LHS, rename, subst),
				RHS:   f.rewriteExpr(s.RHS, rename, subst),
				Pos:   s.Pos,
				Label: s.Label,
			})
		case *ast.DoStmt:
			// Loop variables are local to the loop; rename them per
			// call site so nests from different expansions stay
			// independent.
			fresh := fmt.Sprintf("%s$c%d", s.Var, f.callSeq)
			inner := map[string]string{}
			for k, v := range rename {
				inner[k] = v
			}
			inner[s.Var] = fresh
			out = append(out, &ast.DoStmt{
				Var:  fresh,
				Lo:   f.rewriteExpr(s.Lo, rename, subst),
				Hi:   f.rewriteExpr(s.Hi, rename, subst),
				Step: f.rewriteExpr(s.Step, rename, subst),
				Body: f.rewriteBody(s.Body, inner, subst),
				Pos:  s.Pos,
			})
		case *ast.IfStmt:
			out = append(out, &ast.IfStmt{
				Cond: f.rewriteExpr(s.Cond, rename, subst),
				Then: f.rewriteBody(s.Then, rename, subst),
				Else: f.rewriteBody(s.Else, rename, subst),
				Pos:  s.Pos,
			})
		case *ast.CallStmt:
			args := make([]ast.Expr, len(s.Args))
			for i, a := range s.Args {
				args[i] = f.rewriteExpr(a, rename, subst)
			}
			out = append(out, &ast.CallStmt{Name: s.Name, Args: args, Pos: s.Pos})
		}
	}
	return out
}

func (f *flattener) rewriteRef(r *ast.Ref, rename map[string]string, subst map[string]ast.Expr) *ast.Ref {
	name := r.Name
	if fresh, ok := rename[name]; ok {
		name = fresh
	}
	nr := &ast.Ref{Name: name, Pos: r.Pos}
	for _, sub := range r.Subs {
		nr.Subs = append(nr.Subs, ast.Sub{
			Kind: sub.Kind,
			X:    f.rewriteExpr(sub.X, rename, subst),
			Lo:   f.rewriteExpr(sub.Lo, rename, subst),
			Hi:   f.rewriteExpr(sub.Hi, rename, subst),
			Step: f.rewriteExpr(sub.Step, rename, subst),
		})
	}
	return nr
}

func (f *flattener) rewriteExpr(e ast.Expr, rename map[string]string, subst map[string]ast.Expr) ast.Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.NumLit:
		return e
	case *ast.Ident:
		if repl, ok := subst[e.Name]; ok {
			return repl
		}
		if fresh, ok := rename[e.Name]; ok {
			return &ast.Ident{Name: fresh, Pos: e.Pos}
		}
		return e
	case *ast.Ref:
		if len(e.Subs) == 0 {
			if repl, ok := subst[e.Name]; ok {
				return repl
			}
		}
		return f.rewriteRef(e, rename, subst)
	case *ast.BinExpr:
		return &ast.BinExpr{Op: e.Op,
			X:   f.rewriteExpr(e.X, rename, subst),
			Y:   f.rewriteExpr(e.Y, rename, subst),
			Pos: e.Pos}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{X: f.rewriteExpr(e.X, rename, subst), Pos: e.Pos}
	case *ast.Call:
		args := make([]ast.Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = f.rewriteExpr(a, rename, subst)
		}
		return &ast.Call{Func: e.Func, Args: args, Pos: e.Pos}
	}
	return e
}
