package machine

import (
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"SP2", "sp2", "NOW", "now"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("CM5"); err == nil {
		t.Error("unknown machine must fail")
	}
}

// The qualitative facts of §3 the placement algorithm relies on.
func TestPaperFacts(t *testing.T) {
	sp2, now := SP2(), NOW()

	// The NOW has higher per-message overhead and lower bandwidth.
	if now.SendOverhead <= sp2.SendOverhead {
		t.Error("NOW send overhead should exceed SP2's")
	}
	if now.PerByte <= sp2.PerByte {
		t.Error("NOW bandwidth should be below SP2's")
	}

	for _, m := range []Machine{sp2, now} {
		// Startup amortization happens well below the cache size.
		if hp := m.HalfPowerPoint(); hp >= m.CacheBytes {
			t.Errorf("%s: half-power point %d not below cache %d", m.Name, hp, m.CacheBytes)
		}
		// In-cache bcopy dwarfs network bandwidth, so packing for
		// combining is nearly free.
		if m.BcopyBandwidth(4096) < 3*m.NetworkBandwidth(4096) {
			t.Errorf("%s: in-cache bcopy should dwarf network bandwidth", m.Name)
		}
		// Past the cache the bcopy advantage shrinks markedly.
		big := 8 * m.CacheBytes
		inRatio := m.BcopyBandwidth(4096) / m.NetworkBandwidth(4096)
		outRatio := m.BcopyBandwidth(big) / m.NetworkBandwidth(big)
		if outRatio > inRatio/2 {
			t.Errorf("%s: out-of-cache bcopy/network ratio %.1f did not shrink (in-cache %.1f)", m.Name, outRatio, inRatio)
		}
		// The 20 KB combining threshold is within the in-cache regime.
		if m.CombineThresholdBytes > m.CacheBytes {
			t.Errorf("%s: combining threshold beyond cache", m.Name)
		}
	}
}

func TestSP2BarelyTwice(t *testing.T) {
	// §3: "for the SP2, bcopy bandwidth is barely twice message
	// bandwidth beyond cache size".
	m := SP2()
	big := 8 * m.CacheBytes
	ratio := m.BcopyBandwidth(big) / m.NetworkBandwidth(big)
	if ratio < 1.2 || ratio > 2.5 {
		t.Errorf("SP2 out-of-cache bcopy/network ratio %.2f, want roughly 2", ratio)
	}
}

func TestMonotonicity(t *testing.T) {
	for _, m := range []Machine{SP2(), NOW()} {
		f := func(au, bu uint16) bool {
			a, b := int(au), int(bu)
			if a > b {
				a, b = b, a
			}
			return m.MsgTime(a) <= m.MsgTime(b) &&
				m.BcopyTime(a) <= m.BcopyTime(b) &&
				m.InjectTime(a) <= m.InjectTime(b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestBandwidthRises(t *testing.T) {
	// Effective network bandwidth must rise with message size (the
	// Fig. 5 bottom curve) and approach the asymptote.
	for _, m := range []Machine{SP2(), NOW()} {
		prev := 0.0
		for bytes := 16; bytes <= 1<<22; bytes *= 4 {
			bw := m.NetworkBandwidth(bytes)
			if bw < prev {
				t.Errorf("%s: bandwidth fell at %d bytes", m.Name, bytes)
			}
			prev = bw
		}
		asym := 1.0 / m.PerByte
		if got := m.NetworkBandwidth(1 << 22); got < 0.9*asym {
			t.Errorf("%s: large-message bandwidth %.0f below 90%% of asymptote %.0f", m.Name, got, asym)
		}
	}
}

func TestBcopyKnee(t *testing.T) {
	m := SP2()
	in := m.BcopyBandwidth(m.CacheBytes / 2)
	out := m.BcopyBandwidth(m.CacheBytes * 16)
	if in <= out {
		t.Errorf("bcopy bandwidth should drop past the cache: in %.0f, out %.0f", in, out)
	}
	if m.BcopyTime(0) != 0 || m.BcopyTime(-5) != 0 {
		t.Error("non-positive sizes copy in zero time")
	}
}

func TestReduceTime(t *testing.T) {
	m := SP2()
	if m.ReduceTime(8, 1) != 0 {
		t.Error("single processor reduces locally")
	}
	t2 := m.ReduceTime(8, 2)
	t16 := m.ReduceTime(8, 16)
	if t16 != 4*t2 {
		t.Errorf("tree depth scaling: P=16 should cost 4x P=2 (%g vs %g)", t16, t2)
	}
}

func TestEdgeSizes(t *testing.T) {
	m := NOW()
	if m.MsgTime(-1) != m.MsgTime(0) {
		t.Error("negative sizes clamp to zero")
	}
	if m.NetworkBandwidth(0) != 0 || m.BcopyBandwidth(0) != 0 || m.InjectBandwidth(0) != 0 {
		t.Error("zero-size bandwidth is zero")
	}
}
