// Package machine provides the network and memory cost models that
// stand in for the paper's two hardware platforms: the IBM SP2 with its
// custom switch driven through MPL, and the Berkeley NOW — Sparc
// workstations on a Myrinet switch driven through MPICH.
//
// The paper's §3 profiles three quantities as a function of size
// (Fig. 5): local bcopy bandwidth (cache-limited), sender injection
// bandwidth, and end-to-end receive bandwidth. The models here are
// simple LogGP-style affine costs with a cache knee for bcopy,
// parameterized so that the qualitative facts the paper relies on hold:
//
//   - message startup is expensive, so most of the amortization benefit
//     arrives at sizes well below the cache size;
//   - bcopy bandwidth inside the cache dwarfs network bandwidth, so the
//     packing cost of combining small messages is negligible;
//   - beyond the cache, bcopy bandwidth drops towards (on the SP2,
//     barely twice) the network bandwidth, so combining very large
//     sections stops paying — hence the ~20 KB combining threshold;
//   - the NOW has a higher per-message overhead and lower bandwidth
//     than the SP2, so message-count reductions buy relatively more.
//
// Absolute constants are calibrated to the mid-1990s numbers published
// for these machines (SP2: Stunkel et al., Snir et al., IBM Systems
// Journal 34(2); NOW: Keeton/Anderson/Patterson, Hot Interconnects III)
// but only the shape matters for reproducing the paper's charts.
package machine

import "fmt"

// Machine is a bulk-synchronous distributed-memory cost model.
type Machine struct {
	// Name identifies the platform ("SP2", "NOW").
	Name string

	// SendOverhead is the fixed per-message CPU cost on the sender, in
	// seconds (the "o" of LogP plus library overhead).
	SendOverhead float64
	// RecvOverhead is the fixed per-message CPU cost on the receiver.
	RecvOverhead float64
	// Latency is the wire latency in seconds (the "L" of LogP).
	Latency float64
	// PerByte is the reciprocal network bandwidth, seconds per byte
	// (the "G" of LogGP), as seen by the receiver-waits benchmark.
	PerByte float64
	// InjectPerByte is the reciprocal of the sender's injection
	// bandwidth, seconds per byte; on both machines injection is slower
	// than bcopy but can exceed receive bandwidth for some sizes.
	InjectPerByte float64

	// CacheBytes is the data cache size governing the bcopy knee.
	CacheBytes int
	// BcopyInCachePerByte is seconds per byte for buffers that fit in
	// cache; BcopyOutCachePerByte applies past the knee.
	BcopyInCachePerByte  float64
	BcopyOutCachePerByte float64

	// FlopTime is seconds per double-precision floating point
	// operation, including the loop/memory overhead of compiled
	// stencil code.
	FlopTime float64

	// CombineThresholdBytes is the combined-message size beyond which
	// the compiler should stop combining (20 KB on the SP2, §4.7).
	CombineThresholdBytes int

	// DefaultProcs is the processor count used in the paper's runs.
	DefaultProcs int
}

// SP2 returns the IBM SP2 / MPL model used for Fig. 10(a)–(c).
func SP2() Machine {
	return Machine{
		Name:                  "SP2",
		SendOverhead:          40e-6,
		RecvOverhead:          30e-6,
		Latency:               5e-6,
		PerByte:               1.0 / (34e6),  // ~34 MB/s receive bandwidth
		InjectPerByte:         1.0 / (41e6),  // injection a bit faster
		CacheBytes:            128 << 10,     // 128 KB data cache
		BcopyInCachePerByte:   1.0 / (150e6), // ~150 MB/s in cache
		BcopyOutCachePerByte:  1.0 / (65e6),  // barely 2x message bw beyond
		FlopTime:              45e-9,         // ~22 MFLOPS sustained stencil
		CombineThresholdBytes: 20 << 10,
		DefaultProcs:          25,
	}
}

// NOW returns the Berkeley NOW (Sparc + Myrinet + MPICH) model used
// for Fig. 10(d)–(f).
func NOW() Machine {
	return Machine{
		Name:                  "NOW",
		SendOverhead:          500e-6, // MPICH on Myrinet: very high per-msg cost
		RecvOverhead:          400e-6,
		Latency:               15e-6,
		PerByte:               1.0 / (8e6), // ~8 MB/s receive bandwidth via MPICH
		InjectPerByte:         1.0 / (12e6),
		CacheBytes:            1 << 20, // 1 MB external cache
		BcopyInCachePerByte:   1.0 / (170e6),
		BcopyOutCachePerByte:  1.0 / (45e6),
		FlopTime:              50e-9,
		CombineThresholdBytes: 20 << 10,
		DefaultProcs:          8,
	}
}

// ByName returns the named machine model.
func ByName(name string) (Machine, error) {
	switch name {
	case "SP2", "sp2":
		return SP2(), nil
	case "NOW", "now":
		return NOW(), nil
	}
	return Machine{}, fmt.Errorf("machine: unknown machine %q (want SP2 or NOW)", name)
}

// MsgTime returns the end-to-end time, in seconds, for one
// point-to-point message of the given size: the time the receiver
// waits for completion in the paper's profiling loop.
func (m Machine) MsgTime(bytes int) float64 {
	if bytes < 0 {
		bytes = 0
	}
	return m.SendOverhead + m.RecvOverhead + m.Latency + float64(bytes)*m.PerByte
}

// InjectTime returns the sender-side time to inject a message.
func (m Machine) InjectTime(bytes int) float64 {
	if bytes < 0 {
		bytes = 0
	}
	return m.SendOverhead + float64(bytes)*m.InjectPerByte
}

// BcopyTime returns the time to copy a buffer of the given size, with
// the cache knee: buffers at or below the cache size copy at the
// in-cache rate; larger buffers degrade smoothly to the out-of-cache
// rate (the part that fits copies fast, the rest slow).
func (m Machine) BcopyTime(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	if bytes <= m.CacheBytes {
		return float64(bytes) * m.BcopyInCachePerByte
	}
	fast := float64(m.CacheBytes) * m.BcopyInCachePerByte
	slow := float64(bytes-m.CacheBytes) * m.BcopyOutCachePerByte
	return fast + slow
}

// NetworkBandwidth returns the effective receive bandwidth, bytes per
// second, for a message of the given size (the bottom curve of Fig. 5).
func (m Machine) NetworkBandwidth(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.MsgTime(bytes)
}

// InjectBandwidth returns the sender-injection bandwidth, bytes per
// second (the middle curve of Fig. 5).
func (m Machine) InjectBandwidth(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.InjectTime(bytes)
}

// BcopyBandwidth returns the local-copy bandwidth, bytes per second
// (the top curve of Fig. 5).
func (m Machine) BcopyBandwidth(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.BcopyTime(bytes)
}

// HalfPowerPoint returns the message size at which the network achieves
// half its asymptotic bandwidth — the size where startup is amortized.
// The paper observes this point falls well below the cache size on
// both machines, which justifies combining small messages.
func (m Machine) HalfPowerPoint() int {
	// Solve bytes*PerByte == startup.
	startup := m.SendOverhead + m.RecvOverhead + m.Latency
	return int(startup / m.PerByte)
}

// ReduceTime returns the time for a global reduction of the given
// element payload across p processors, modeled as a binary combining
// tree of point-to-point messages.
func (m Machine) ReduceTime(bytes, p int) float64 {
	if p <= 1 {
		return 0
	}
	depth := 0
	for n := 1; n < p; n *= 2 {
		depth++
	}
	return float64(depth) * m.MsgTime(bytes)
}
