// Package sem performs semantic analysis of a parsed routine: it binds
// declarations and HPF directives into symbol tables, evaluates array
// bounds for the compile-time parameter values (the compiler, like
// pHPF in the paper's experiments, specializes on the problem size and
// processor count), and validates references.
package sem

import (
	"fmt"
	"math"
	"sort"

	"gcao/internal/ast"
	"gcao/internal/dist"
	"gcao/internal/source"
)

// Array is a declared array with concrete bounds and an optional
// distribution. A nil Dist means the array is replicated on every
// processor (the HPF default for undistributed arrays in this model).
type Array struct {
	Name   string
	Type   ast.ElemType
	Lo, Hi []int
	Dist   *dist.Dist
}

// Rank returns the array's dimensionality.
func (a *Array) Rank() int { return len(a.Lo) }

// Size returns the total element count.
func (a *Array) Size() int {
	n := 1
	for i := range a.Lo {
		n *= a.Hi[i] - a.Lo[i] + 1
	}
	return n
}

// ElemBytes returns the storage size of one element (the paper's
// benchmarks are all double precision: 8 bytes).
func (a *Array) ElemBytes() int { return 8 }

// Scalar is a declared scalar variable or routine parameter.
type Scalar struct {
	Name    string
	Type    ast.ElemType
	IsParam bool
}

// Unit is the analyzed routine: the result of semantic analysis and
// the input to scalarization and communication analysis.
type Unit struct {
	Routine *ast.Routine
	Params  map[string]int
	Arrays  map[string]*Array
	Scalars map[string]*Scalar
	Grid    dist.Grid
	// ArrayNames lists arrays in declaration order for deterministic
	// iteration.
	ArrayNames []string
}

// Options configures analysis.
type Options struct {
	// Procs is the processor count used when the routine lacks a
	// PROCESSORS directive. Ignored when a directive is present.
	Procs int
}

// Analyze checks the routine and builds its symbol tables. params
// supplies compile-time values for the routine's integer parameters.
func Analyze(r *ast.Routine, params map[string]int, opt Options) (*Unit, error) {
	u := &Unit{
		Routine: r,
		Params:  map[string]int{},
		Arrays:  map[string]*Array{},
		Scalars: map[string]*Scalar{},
	}
	for _, p := range r.Params {
		v, ok := params[p]
		if !ok {
			return nil, fmt.Errorf("sem: routine %q: no value supplied for parameter %q", r.Name, p)
		}
		u.Params[p] = v
		u.Scalars[p] = &Scalar{Name: p, Type: ast.Integer, IsParam: true}
	}

	// Declarations.
	for _, d := range r.Decls {
		for _, item := range d.Items {
			if _, dup := u.Arrays[item.Name]; dup {
				return nil, source.Errorf(d.Pos, "sem: %q declared twice", item.Name)
			}
			if _, dup := u.Scalars[item.Name]; dup {
				return nil, source.Errorf(d.Pos, "sem: %q declared twice", item.Name)
			}
			if len(item.Bounds) == 0 {
				u.Scalars[item.Name] = &Scalar{Name: item.Name, Type: d.Type}
				continue
			}
			a := &Array{Name: item.Name, Type: d.Type}
			for _, b := range item.Bounds {
				lo := 1
				if b.Lo != nil {
					v, err := u.EvalInt(b.Lo)
					if err != nil {
						return nil, err
					}
					lo = v
				}
				hi, err := u.EvalInt(b.Hi)
				if err != nil {
					return nil, err
				}
				if hi < lo {
					return nil, source.Errorf(d.Pos, "sem: array %q has empty dimension %d:%d", item.Name, lo, hi)
				}
				a.Lo = append(a.Lo, lo)
				a.Hi = append(a.Hi, hi)
			}
			u.Arrays[item.Name] = a
			u.ArrayNames = append(u.ArrayNames, item.Name)
		}
	}

	// Processor grid: from a PROCESSORS directive if present, else a
	// default grid sized by opt.Procs and the maximum distributed rank.
	var gridShape []int
	maxDistRank := 0
	for _, dir := range r.Dirs {
		switch dir := dir.(type) {
		case *ast.ProcessorsDir:
			if gridShape != nil {
				return nil, source.Errorf(dir.Pos, "sem: multiple PROCESSORS directives")
			}
			for _, e := range dir.Shape {
				v, err := u.EvalInt(e)
				if err != nil {
					return nil, err
				}
				gridShape = append(gridShape, v)
			}
		case *ast.DistributeDir:
			n := 0
			for _, k := range dir.Kinds {
				if k != ast.DistStar {
					n++
				}
			}
			if n > maxDistRank {
				maxDistRank = n
			}
		}
	}
	switch {
	case gridShape != nil:
		g, err := dist.NewGrid(gridShape...)
		if err != nil {
			return nil, err
		}
		u.Grid = g
	case maxDistRank >= 2:
		g, err := dist.SquareGrid(maxProcs(opt))
		if err != nil {
			return nil, err
		}
		u.Grid = g
	default:
		g, err := dist.NewGrid(maxProcs(opt))
		if err != nil {
			return nil, err
		}
		u.Grid = g
	}

	// Distribute directives.
	for _, dir := range r.Dirs {
		dd, ok := dir.(*ast.DistributeDir)
		if !ok {
			continue
		}
		for _, name := range dd.Arrays {
			a, ok := u.Arrays[name]
			if !ok {
				return nil, source.Errorf(dd.Pos, "sem: DISTRIBUTE names undeclared array %q", name)
			}
			if len(dd.Kinds) != a.Rank() {
				return nil, source.Errorf(dd.Pos, "sem: DISTRIBUTE rank %d for rank-%d array %q", len(dd.Kinds), a.Rank(), name)
			}
			kinds := make([]dist.Kind, len(dd.Kinds))
			for i, k := range dd.Kinds {
				switch k {
				case ast.DistStar:
					kinds[i] = dist.Star
				case ast.DistBlock:
					kinds[i] = dist.Block
				case ast.DistCyclic:
					kinds[i] = dist.Cyclic
				}
			}
			grid := u.Grid
			// A distribution using fewer grid dims than the full grid
			// uses a prefix; dist.New validates.
			nd := 0
			for _, k := range kinds {
				if k != dist.Star {
					nd++
				}
			}
			if nd < grid.Rank() {
				// Collapse onto the leading nd grid dims when possible:
				// flatten the grid so NumProcs is preserved only if the
				// trailing dims are 1; otherwise build a sub-grid.
				shape := append([]int(nil), grid.Shape[:nd]...)
				rest := 1
				for _, s := range grid.Shape[nd:] {
					rest *= s
				}
				if nd > 0 {
					shape[nd-1] *= rest
				} else {
					shape = []int{rest}
				}
				g2, err := dist.NewGrid(shape...)
				if err != nil {
					return nil, err
				}
				grid = g2
			}
			dv, err := dist.New(grid, a.Lo, a.Hi, kinds...)
			if err != nil {
				return nil, source.Errorf(dd.Pos, "sem: %q: %v", name, err)
			}
			a.Dist = &dv
		}
	}

	// Validate statements.
	if err := u.checkBody(r.Body, map[string]bool{}); err != nil {
		return nil, err
	}
	return u, nil
}

func maxProcs(opt Options) int {
	if opt.Procs > 0 {
		return opt.Procs
	}
	return 4
}

// checkBody validates references and collects implicitly declared loop
// index variables as integer scalars.
func (u *Unit) checkBody(body []ast.Stmt, loopVars map[string]bool) error {
	for _, s := range body {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if err := u.checkRef(s.LHS, loopVars, true); err != nil {
				return err
			}
			if err := u.checkExpr(s.RHS, loopVars); err != nil {
				return err
			}
		case *ast.DoStmt:
			for _, e := range []ast.Expr{s.Lo, s.Hi, s.Step} {
				if e == nil {
					continue
				}
				if err := u.checkExpr(e, loopVars); err != nil {
					return err
				}
			}
			if _, isArr := u.Arrays[s.Var]; isArr {
				return source.Errorf(s.Pos, "sem: loop index %q is an array", s.Var)
			}
			inner := map[string]bool{}
			for k := range loopVars {
				inner[k] = true
			}
			inner[s.Var] = true
			if err := u.checkBody(s.Body, inner); err != nil {
				return err
			}
		case *ast.IfStmt:
			if err := u.checkExpr(s.Cond, loopVars); err != nil {
				return err
			}
			if err := u.checkBody(s.Then, loopVars); err != nil {
				return err
			}
			if err := u.checkBody(s.Else, loopVars); err != nil {
				return err
			}
		case *ast.CallStmt:
			return source.Errorf(s.Pos, "sem: call to %q not inlined (run inline.Flatten on multi-routine programs)", s.Name)
		}
	}
	return nil
}

func (u *Unit) checkExpr(e ast.Expr, loopVars map[string]bool) error {
	var err error
	ast.WalkExprs(e, func(e ast.Expr) {
		if err != nil {
			return
		}
		switch e := e.(type) {
		case *ast.Ident:
			if !u.known(e.Name, loopVars) {
				err = source.Errorf(e.Pos, "sem: undeclared variable %q", e.Name)
			}
		case *ast.Ref:
			err = u.checkRef(e, loopVars, false)
		case *ast.Call:
			if !ast.Intrinsics[e.Func] {
				err = source.Errorf(e.Pos, "sem: unknown intrinsic %q", e.Func)
			}
		}
	})
	return err
}

func (u *Unit) known(name string, loopVars map[string]bool) bool {
	if loopVars[name] {
		return true
	}
	if _, ok := u.Scalars[name]; ok {
		return true
	}
	if _, ok := u.Arrays[name]; ok {
		return true
	}
	return false
}

func (u *Unit) checkRef(r *ast.Ref, loopVars map[string]bool, isLHS bool) error {
	a, isArr := u.Arrays[r.Name]
	if !isArr {
		if len(r.Subs) > 0 {
			return source.Errorf(r.Pos, "sem: %q subscripted but not an array", r.Name)
		}
		if !u.known(r.Name, loopVars) {
			return source.Errorf(r.Pos, "sem: undeclared variable %q", r.Name)
		}
		if isLHS {
			if loopVars[r.Name] {
				return source.Errorf(r.Pos, "sem: assignment to loop index %q", r.Name)
			}
			if sc := u.Scalars[r.Name]; sc != nil && sc.IsParam {
				return source.Errorf(r.Pos, "sem: assignment to parameter %q", r.Name)
			}
		}
		return nil
	}
	if len(r.Subs) != 0 && len(r.Subs) != a.Rank() {
		return source.Errorf(r.Pos, "sem: %q has rank %d, subscripted with %d", r.Name, a.Rank(), len(r.Subs))
	}
	for _, sub := range r.Subs {
		for _, e := range []ast.Expr{sub.X, sub.Lo, sub.Hi, sub.Step} {
			if e == nil {
				continue
			}
			if err := u.checkExpr(e, loopVars); err != nil {
				return err
			}
		}
	}
	return nil
}

// EvalInt evaluates an integer-valued constant expression using the
// routine parameters. Loop variables are not in scope.
func (u *Unit) EvalInt(e ast.Expr) (int, error) {
	v, err := u.evalIntEnv(e, nil)
	return v, err
}

// EvalIntEnv evaluates an integer expression with extra bindings (loop
// variable values during simulation, for example).
func (u *Unit) EvalIntEnv(e ast.Expr, env map[string]int) (int, error) {
	return u.evalIntEnv(e, env)
}

func (u *Unit) evalIntEnv(e ast.Expr, env map[string]int) (int, error) {
	switch e := e.(type) {
	case *ast.NumLit:
		if !e.IsInt {
			return 0, source.Errorf(e.Pos, "sem: real literal %q where integer expected", e.Text)
		}
		return int(e.Value), nil
	case *ast.Ident:
		if env != nil {
			if v, ok := env[e.Name]; ok {
				return v, nil
			}
		}
		if v, ok := u.Params[e.Name]; ok {
			return v, nil
		}
		return 0, source.Errorf(e.Pos, "sem: %q is not a compile-time integer", e.Name)
	case *ast.UnaryExpr:
		v, err := u.evalIntEnv(e.X, env)
		return -v, err
	case *ast.BinExpr:
		x, err := u.evalIntEnv(e.X, env)
		if err != nil {
			return 0, err
		}
		y, err := u.evalIntEnv(e.Y, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case ast.Add:
			return x + y, nil
		case ast.Sub_:
			return x - y, nil
		case ast.Mul:
			return x * y, nil
		case ast.Div:
			if y == 0 {
				return 0, source.Errorf(e.Pos, "sem: division by zero")
			}
			return x / y, nil
		case ast.Pow:
			return int(math.Pow(float64(x), float64(y))), nil
		}
		return 0, source.Errorf(e.Pos, "sem: operator %s in integer expression", e.Op)
	case *ast.Call:
		if e.Func == "mod" && len(e.Args) == 2 {
			x, err := u.evalIntEnv(e.Args[0], env)
			if err != nil {
				return 0, err
			}
			y, err := u.evalIntEnv(e.Args[1], env)
			if err != nil {
				return 0, err
			}
			if y == 0 {
				return 0, source.Errorf(e.Pos, "sem: mod by zero")
			}
			return x % y, nil
		}
	}
	return 0, source.Errorf(exprPos(e), "sem: not a compile-time integer expression: %s", ast.ExprString(e))
}

func exprPos(e ast.Expr) source.Pos {
	if e == nil {
		return source.Pos{}
	}
	return e.ExprPos()
}

// DistributedArrays returns the names of distributed arrays, sorted.
func (u *Unit) DistributedArrays() []string {
	var out []string
	for name, a := range u.Arrays {
		if a.Dist != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
