package sem

import (
	"strings"
	"testing"

	"gcao/internal/ast"
	"gcao/internal/dist"
	"gcao/internal/parser"
)

func analyze(t *testing.T, src string, params map[string]int, procs int) *Unit {
	t.Helper()
	r, err := parser.ParseRoutine(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u, err := Analyze(r, params, Options{Procs: procs})
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return u
}

func analyzeErr(t *testing.T, src string, params map[string]int) error {
	t.Helper()
	r, err := parser.ParseRoutine(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Analyze(r, params, Options{Procs: 4})
	if err == nil {
		t.Fatal("want semantic error, got none")
	}
	return err
}

func TestSymbolTables(t *testing.T) {
	u := analyze(t, `
routine f(n)
real a(n, 2*n), b(0:n)
real x
integer k
a(1, 1) = x
end
`, map[string]int{"n": 8}, 4)
	a := u.Arrays["a"]
	if a == nil || a.Rank() != 2 || a.Hi[1] != 16 || a.Size() != 8*16 {
		t.Fatalf("array a = %+v", a)
	}
	b := u.Arrays["b"]
	if b.Lo[0] != 0 || b.Hi[0] != 8 {
		t.Errorf("array b bounds = %v..%v", b.Lo, b.Hi)
	}
	if u.Scalars["x"] == nil || u.Scalars["k"] == nil || !u.Scalars["n"].IsParam {
		t.Error("scalar table incomplete")
	}
	if a.Dist != nil {
		t.Error("undistributed array should be replicated")
	}
}

func TestDistributionBinding(t *testing.T) {
	u := analyze(t, `
routine f(n)
real a(n, n), g(n, n, n)
!hpf$ processors p(2, 3)
!hpf$ distribute a(block, block) onto p
!hpf$ distribute g(*, block, block)
a(1, 1) = 0
end
`, map[string]int{"n": 12}, 0)
	if u.Grid.NumProcs() != 6 {
		t.Fatalf("grid = %v", u.Grid)
	}
	a := u.Arrays["a"]
	if a.Dist == nil || a.Dist.Dims[0].Kind != dist.Block {
		t.Fatalf("a dist = %+v", a.Dist)
	}
	g := u.Arrays["g"]
	if g.Dist == nil || g.Dist.Dims[0].Kind != dist.Star || g.Dist.Dims[1].GridDim != 0 {
		t.Fatalf("g dist = %+v", g.Dist)
	}
	if got := u.DistributedArrays(); len(got) != 2 || got[0] != "a" {
		t.Errorf("DistributedArrays = %v", got)
	}
}

func TestDefaultGrid(t *testing.T) {
	u := analyze(t, `
routine f(n)
real a(n, n)
!hpf$ distribute a(block, block)
a(1, 1) = 0
end
`, map[string]int{"n": 8}, 8)
	if u.Grid.Rank() != 2 || u.Grid.NumProcs() != 8 {
		t.Errorf("default grid for 2-d dist and 8 procs = %v", u.Grid)
	}
	u1 := analyze(t, `
routine f(n)
real a(n)
!hpf$ distribute a(block)
a(1) = 0
end
`, map[string]int{"n": 8}, 6)
	if u1.Grid.Rank() != 1 || u1.Grid.NumProcs() != 6 {
		t.Errorf("default 1-d grid = %v", u1.Grid)
	}
}

func TestEvalInt(t *testing.T) {
	u := analyze(t, `
routine f(n, m)
real a(n)
a(1) = 0
end
`, map[string]int{"n": 10, "m": 3}, 4)
	r, _ := parser.ParseRoutine("routine g(n, m)\nreal b((n+m)*2-1)\nb(1)=0\nend\n")
	u2, err := Analyze(r, map[string]int{"n": 10, "m": 3}, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if u2.Arrays["b"].Hi[0] != 25 {
		t.Errorf("bound eval = %d, want 25", u2.Arrays["b"].Hi[0])
	}
	if v, err := u.EvalIntEnv(&ast.Ident{Name: "i"}, map[string]int{"i": 7}); err != nil || v != 7 {
		t.Errorf("EvalIntEnv = %d, %v", v, err)
	}
	if _, err := u.EvalInt(&ast.Ident{Name: "zzz"}); err == nil {
		t.Error("unknown symbol must not be compile-time constant")
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
		params             map[string]int
	}{
		{"missing param", "routine f(n)\nreal a(n)\na(1)=0\nend\n", "no value supplied", map[string]int{}},
		{"dup decl", "routine f()\nreal a(4)\ninteger a\na(1)=0\nend\n", "declared twice", nil},
		{"undeclared", "routine f()\nreal a(4)\na(1) = q\nend\n", "undeclared", nil},
		{"rank mismatch", "routine f()\nreal a(4, 4)\na(1) = 0\nend\n", "rank", nil},
		{"subscripted scalar", "routine f()\nreal x\nreal a(4)\na(1) = x(2)\nend\n", "not an array", nil},
		{"distribute unknown", "routine f()\nreal a(4)\n!hpf$ distribute b(block)\na(1)=0\nend\n", "undeclared array", nil},
		{"distribute rank", "routine f()\nreal a(4)\n!hpf$ distribute a(block, block)\na(1)=0\nend\n", "rank", nil},
		{"empty dim", "routine f(n)\nreal a(n)\na(1)=0\nend\n", "empty dimension", map[string]int{"n": -1}},
		{"loop index is array", "routine f()\nreal a(4)\ndo a = 1, 3\nenddo\nend\n", "loop index", nil},
		{"assign to index", "routine f()\nreal a(4)\ndo i = 1, 3\ni = 2\nenddo\nend\n", "loop index", nil},
		{"assign to param", "routine f(n)\nreal a(n)\nn = 2\nend\n", "parameter", map[string]int{"n": 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.params == nil {
				tc.params = map[string]int{}
			}
			r, err := parser.ParseRoutine(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Analyze(r, tc.params, Options{Procs: 4})
			if err == nil {
				t.Fatalf("want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestLoopScoping(t *testing.T) {
	// Loop variables are implicitly declared within their loop.
	u := analyze(t, `
routine f(n)
real a(n)
do i = 1, n
a(i) = i
enddo
end
`, map[string]int{"n": 4}, 2)
	if u.Arrays["a"] == nil {
		t.Fatal("array missing")
	}
	// Using the index outside its loop is an error.
	analyzeErr(t, `
routine f(n)
real a(n)
do i = 1, n
a(i) = 0
enddo
a(1) = i
end
`, map[string]int{"n": 4})
}
