package source

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanBasics(t *testing.T) {
	toks, err := ScanAll("a = b(i-1, 1:n:2) + 3.5e2\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Ident, Assign, Ident, LParen, Ident, Minus, Number, Comma,
		Number, Colon, Ident, Colon, Number, RParen, Plus, Number, Newline, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), toks, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (stream %v)", i, got[i], want[i], toks)
		}
	}
}

func TestCaseInsensitiveIdents(t *testing.T) {
	toks, err := ScanAll("Do I = 1, N\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "do" || toks[1].Text != "i" || toks[5].Text != "n" {
		t.Errorf("identifiers not lower-cased: %v", toks)
	}
}

func TestCommentsAndDirectives(t *testing.T) {
	src := "a = 1 ! trailing comment\n!hpf$ distribute a(block)\n! full line\nb = 2\n"
	toks, err := ScanAll(src)
	if err != nil {
		t.Fatal(err)
	}
	var sawHPF bool
	for _, tok := range toks {
		if tok.Kind == HPFDir {
			sawHPF = true
		}
		if tok.Kind == Ident && tok.Text == "trailing" {
			t.Error("comment text leaked into token stream")
		}
	}
	if !sawHPF {
		t.Error("!hpf$ sentinel not recognized")
	}
	// Case-insensitive sentinel.
	toks2, err := ScanAll("!HPF$ processors p(4)\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks2[0].Kind != HPFDir {
		t.Error("!HPF$ (upper case) not recognized")
	}
}

func TestContinuation(t *testing.T) {
	toks, err := ScanAll("a = b + &\n    c\n")
	if err != nil {
		t.Fatal(err)
	}
	// The continuation swallows the newline: a = b + c NL EOF.
	want := []Kind{Ident, Assign, Ident, Plus, Ident, Newline, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("tokens %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]string{
		"42":     "42",
		"3.14":   "3.14",
		"1e6":    "1e6",
		"2.5d-3": "2.5e-3", // Fortran double exponent normalized
		"1E+2":   "1e+2",
	}
	for in, want := range cases {
		toks, err := ScanAll(in + "\n")
		if err != nil {
			t.Fatal(err)
		}
		if toks[0].Kind != Number || toks[0].Text != want {
			t.Errorf("scan %q = %v, want Number(%q)", in, toks[0], want)
		}
	}
	// "2elements" must not absorb the identifier.
	toks, err := ScanAll("2elements\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Number || toks[0].Text != "2" || toks[1].Kind != Ident {
		t.Errorf("2elements scanned as %v", toks[:2])
	}
}

func TestOperators(t *testing.T) {
	toks, err := ScanAll("a ** b <= c /= d == e >= f < g > h / i\n")
	if err != nil {
		t.Fatal(err)
	}
	var ops []Kind
	for _, tok := range toks {
		switch tok.Kind {
		case Power, Le, Ne, EqEq, Ge, Lt, Gt, Slash:
			ops = append(ops, tok.Kind)
		}
	}
	want := []Kind{Power, Le, Ne, EqEq, Ge, Lt, Gt, Slash}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := ScanAll("a = 1\n  b = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	// "b" is on line 2, column 3.
	for _, tok := range toks {
		if tok.Kind == Ident && tok.Text == "b" {
			if tok.Pos.Line != 2 || tok.Pos.Col != 3 {
				t.Errorf("b at %v, want 2:3", tok.Pos)
			}
			return
		}
	}
	t.Fatal("b not found")
}

func TestScanError(t *testing.T) {
	_, err := ScanAll("a = @\n")
	if err == nil {
		t.Fatal("unexpected character should error")
	}
	if !strings.Contains(err.Error(), "1:5") {
		t.Errorf("error should carry position: %v", err)
	}
}

func TestEOFIdempotent(t *testing.T) {
	s := NewScanner("x")
	s.Next() // x
	for i := 0; i < 3; i++ {
		if tok := s.Next(); tok.Kind != EOF {
			t.Fatalf("Next after EOF = %v", tok)
		}
	}
}
