// Package source provides source positions, tokens, and the scanner
// for the mini-HPF input language of this compiler. The language is a
// Fortran-90 flavoured subset sufficient to express the paper's
// benchmarks: routines, REAL/INTEGER declarations, HPF PROCESSORS and
// DISTRIBUTE directives, DO loops, IF/THEN/ELSE, array-section
// assignments, and the SUM and CSHIFT intrinsics.
//
// Lexical conventions follow free-form Fortran: case-insensitive
// keywords (we canonicalize to lower case), "!" starts a comment except
// for the "!hpf$" directive sentinel, and statements end at newlines.
package source

import (
	"fmt"
	"strings"
	"unicode"
)

// Pos is a source position, 1-based.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string {
	if p.Line == 0 {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Kind enumerates token kinds.
type Kind int

const (
	EOF Kind = iota
	Newline
	Ident
	Number // integer or real literal
	String // quoted string (used only in error messages today)
	HPFDir // the "!hpf$" sentinel; directive words follow as Idents
	LParen
	RParen
	Comma
	Colon
	Assign // =
	Plus
	Minus
	Star
	Slash
	Power // **
	Lt
	Gt
	Le
	Ge
	EqEq // ==
	Ne   // /=
)

var kindNames = map[Kind]string{
	EOF: "EOF", Newline: "newline", Ident: "identifier", Number: "number",
	String: "string", HPFDir: "!hpf$", LParen: "(", RParen: ")", Comma: ",",
	Colon: ":", Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Power: "**", Lt: "<", Gt: ">", Le: "<=", Ge: ">=", EqEq: "==", Ne: "/=",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // canonical (lower-cased for identifiers)
	Pos  Pos
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	}
	return t.Kind.String()
}

// Error is a positioned scan or parse error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Errorf builds a positioned error.
func Errorf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Scanner tokenizes mini-HPF source text.
type Scanner struct {
	src  string
	off  int
	line int
	col  int
	err  error
}

// NewScanner builds a scanner over the source text.
func NewScanner(src string) *Scanner {
	return &Scanner{src: src, line: 1, col: 1}
}

// Err returns the first scan error encountered, if any.
func (s *Scanner) Err() error { return s.err }

func (s *Scanner) pos() Pos { return Pos{Line: s.line, Col: s.col} }

func (s *Scanner) peek() byte {
	if s.off >= len(s.src) {
		return 0
	}
	return s.src[s.off]
}

func (s *Scanner) peek2() byte {
	if s.off+1 >= len(s.src) {
		return 0
	}
	return s.src[s.off+1]
}

func (s *Scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Next returns the next token. After EOF it keeps returning EOF.
func (s *Scanner) Next() Token {
	for {
		// Skip horizontal whitespace and line continuations ("&\n").
		for s.off < len(s.src) {
			c := s.peek()
			if c == ' ' || c == '\t' || c == '\r' {
				s.advance()
				continue
			}
			if c == '&' {
				// Fortran continuation: swallow through the newline.
				s.advance()
				for s.off < len(s.src) && s.peek() != '\n' {
					s.advance()
				}
				if s.off < len(s.src) {
					s.advance() // the newline itself
				}
				continue
			}
			break
		}
		if s.off >= len(s.src) {
			return Token{Kind: EOF, Pos: s.pos()}
		}
		start := s.pos()
		c := s.peek()
		switch {
		case c == '\n':
			s.advance()
			return Token{Kind: Newline, Pos: start}
		case c == '!':
			// Directive or comment.
			rest := s.src[s.off:]
			if len(rest) >= 5 && strings.EqualFold(rest[:5], "!hpf$") {
				for i := 0; i < 5; i++ {
					s.advance()
				}
				return Token{Kind: HPFDir, Text: "!hpf$", Pos: start}
			}
			for s.off < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
			continue
		case isIdentStart(c):
			var b strings.Builder
			for s.off < len(s.src) && isIdentCont(s.peek()) {
				b.WriteByte(s.advance())
			}
			return Token{Kind: Ident, Text: strings.ToLower(b.String()), Pos: start}
		case unicode.IsDigit(rune(c)):
			return s.scanNumber(start)
		case c == '(':
			s.advance()
			return Token{Kind: LParen, Pos: start}
		case c == ')':
			s.advance()
			return Token{Kind: RParen, Pos: start}
		case c == ',':
			s.advance()
			return Token{Kind: Comma, Pos: start}
		case c == ':':
			s.advance()
			return Token{Kind: Colon, Pos: start}
		case c == '+':
			s.advance()
			return Token{Kind: Plus, Pos: start}
		case c == '-':
			s.advance()
			return Token{Kind: Minus, Pos: start}
		case c == '*':
			s.advance()
			if s.peek() == '*' {
				s.advance()
				return Token{Kind: Power, Pos: start}
			}
			return Token{Kind: Star, Pos: start}
		case c == '/':
			s.advance()
			if s.peek() == '=' {
				s.advance()
				return Token{Kind: Ne, Pos: start}
			}
			return Token{Kind: Slash, Pos: start}
		case c == '=':
			s.advance()
			if s.peek() == '=' {
				s.advance()
				return Token{Kind: EqEq, Pos: start}
			}
			return Token{Kind: Assign, Pos: start}
		case c == '<':
			s.advance()
			if s.peek() == '=' {
				s.advance()
				return Token{Kind: Le, Pos: start}
			}
			return Token{Kind: Lt, Pos: start}
		case c == '>':
			s.advance()
			if s.peek() == '=' {
				s.advance()
				return Token{Kind: Ge, Pos: start}
			}
			return Token{Kind: Gt, Pos: start}
		default:
			if s.err == nil {
				s.err = Errorf(start, "unexpected character %q", string(rune(c)))
			}
			s.advance()
			continue
		}
	}
}

func (s *Scanner) scanNumber(start Pos) Token {
	var b strings.Builder
	for s.off < len(s.src) && unicode.IsDigit(rune(s.peek())) {
		b.WriteByte(s.advance())
	}
	// Fractional part; careful not to eat "1:2" or "1..2".
	if s.peek() == '.' && unicode.IsDigit(rune(s.peek2())) {
		b.WriteByte(s.advance())
		for s.off < len(s.src) && unicode.IsDigit(rune(s.peek())) {
			b.WriteByte(s.advance())
		}
	}
	// Exponent.
	if c := s.peek(); c == 'e' || c == 'E' || c == 'd' || c == 'D' {
		save := *s
		text := b.String()
		b2 := strings.Builder{}
		b2.WriteString(text)
		b2.WriteByte('e')
		s.advance()
		if s.peek() == '+' || s.peek() == '-' {
			b2.WriteByte(s.advance())
		}
		if unicode.IsDigit(rune(s.peek())) {
			for s.off < len(s.src) && unicode.IsDigit(rune(s.peek())) {
				b2.WriteByte(s.advance())
			}
			return Token{Kind: Number, Text: b2.String(), Pos: start}
		}
		*s = save // not an exponent after all (e.g. "2elements")
	}
	return Token{Kind: Number, Text: b.String(), Pos: start}
}

// ScanAll tokenizes the whole input, returning the token stream ending
// in EOF, or the first error.
func ScanAll(src string) ([]Token, error) {
	sc := NewScanner(src)
	var out []Token
	for {
		t := sc.Next()
		out = append(out, t)
		if t.Kind == EOF {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
