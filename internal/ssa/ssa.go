// Package ssa builds static single assignment form over the array
// variables of a routine, in the style the paper inherits from Cytron
// et al. and Choi/Cytron/Ferrante: every regular array definition is
// *preserving* (it may write only part of the array, so it takes the
// previous SSA value as an input), φ-defs appear at loop headers
// (φEntry — the augmented CFG's preheader/backedge join), at postexits
// (φExit — the exit/zero-trip join), and at ordinary joins, and a
// pseudo-def at ENTRY exists for every variable, which simplifies the
// dataflow walks (§4.1).
package ssa

import (
	"fmt"

	"gcao/internal/ast"
	"gcao/internal/cfg"
	"gcao/internal/dom"
)

// Def is an SSA definition of an array variable: a regular def, a
// φ-def, or the ENTRY pseudo-def.
type Def interface {
	VarName() string
	DefBlock() *cfg.Block
	// Loops returns the loops enclosing the definition point,
	// outermost first.
	Loops() []*cfg.Loop
	String() string
}

// EntryDef is the pseudo-definition at ENTRY (§4.1: "there is a
// pseudo-def at ENTRY for each variable accessed in the routine").
type EntryDef struct {
	Var string
	Blk *cfg.Block
}

func (d *EntryDef) VarName() string      { return d.Var }
func (d *EntryDef) DefBlock() *cfg.Block { return d.Blk }
func (d *EntryDef) Loops() []*cfg.Loop   { return nil }
func (d *EntryDef) String() string       { return d.Var + "@ENTRY" }

// RegularDef is a textual definition: the LHS of an assignment. All
// regular array defs are preserving, so the def carries the previous
// SSA value as Input.
type RegularDef struct {
	Var     string
	Stmt    *cfg.Stmt
	LHS     *ast.Ref
	Input   Def
	Version int
}

func (d *RegularDef) VarName() string      { return d.Var }
func (d *RegularDef) DefBlock() *cfg.Block { return d.Stmt.Block }
func (d *RegularDef) Loops() []*cfg.Loop   { return d.Stmt.Loops }
func (d *RegularDef) String() string {
	return fmt.Sprintf("%s_%d@%s", d.Var, d.Version, d.Stmt.Label())
}

// PhiKind distinguishes the paper's φEntry / φExit from plain joins.
type PhiKind int

const (
	PhiJoin PhiKind = iota
	PhiEntry
	PhiExit
)

func (k PhiKind) String() string {
	switch k {
	case PhiEntry:
		return "φEntry"
	case PhiExit:
		return "φExit"
	}
	return "φ"
}

// PhiDef is a φ-definition at the top of a join/header/postexit block.
// Args are aligned with the block's predecessor list.
type PhiDef struct {
	Var     string
	Blk     *cfg.Block
	Kind    PhiKind
	Args    []Def
	Version int
}

func (d *PhiDef) VarName() string      { return d.Var }
func (d *PhiDef) DefBlock() *cfg.Block { return d.Blk }
func (d *PhiDef) Loops() []*cfg.Loop {
	var out []*cfg.Loop
	for l := d.Blk.Loop; l != nil; l = l.Parent {
		out = append(out, l)
	}
	// Reverse to outermost-first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
func (d *PhiDef) String() string {
	return fmt.Sprintf("%s_%d=%s@B%d", d.Var, d.Version, d.Kind, d.Blk.ID)
}

// Use is a read of an array variable inside an assignment's RHS (or,
// for reductions, inside a SUM argument).
type Use struct {
	Var         string
	Stmt        *cfg.Stmt
	Ref         *ast.Ref
	Reaching    Def
	InReduction bool
	ID          int
}

func (u *Use) String() string {
	return fmt.Sprintf("use#%d %s@%s", u.ID, ast.ExprString(u.Ref), u.Stmt.Label())
}

// Info is the SSA form of a routine.
type Info struct {
	G       *cfg.Graph
	Dom     *dom.Tree
	Entries map[string]*EntryDef
	Defs    []*RegularDef
	Phis    []*PhiDef
	Uses    []*Use
	// PhisByBlock lists the φ-defs at the top of each block.
	PhisByBlock map[*cfg.Block][]*PhiDef
	// DefOfStmt maps a statement to its array def, if any.
	DefOfStmt map[*cfg.Stmt]*RegularDef
	// UsesOfStmt maps a statement to its array uses.
	UsesOfStmt map[*cfg.Stmt][]*Use
}

// Build constructs SSA form for the array variables named in isArray.
func Build(g *cfg.Graph, t *dom.Tree, isArray func(name string) bool) *Info {
	info := &Info{
		G:           g,
		Dom:         t,
		Entries:     map[string]*EntryDef{},
		PhisByBlock: map[*cfg.Block][]*PhiDef{},
		DefOfStmt:   map[*cfg.Stmt]*RegularDef{},
		UsesOfStmt:  map[*cfg.Stmt][]*Use{},
	}

	// Collect variables and their def sites.
	defSites := map[string][]*cfg.Block{}
	vars := map[string]bool{}
	for _, st := range g.Stmts {
		if st.Assign == nil {
			continue
		}
		if isArray(st.Assign.LHS.Name) {
			v := st.Assign.LHS.Name
			vars[v] = true
			defSites[v] = append(defSites[v], st.Block)
		}
		collectUses(st.Assign.RHS, false, func(r *ast.Ref, inSum bool) {
			if isArray(r.Name) {
				vars[r.Name] = true
			}
		})
	}
	var varList []string
	for _, st := range g.Stmts { // deterministic order of first appearance
		if st.Assign == nil {
			continue
		}
		if isArray(st.Assign.LHS.Name) && !containsStr(varList, st.Assign.LHS.Name) {
			varList = append(varList, st.Assign.LHS.Name)
		}
		collectUses(st.Assign.RHS, false, func(r *ast.Ref, inSum bool) {
			if isArray(r.Name) && !containsStr(varList, r.Name) {
				varList = append(varList, r.Name)
			}
		})
	}

	for _, v := range varList {
		info.Entries[v] = &EntryDef{Var: v, Blk: g.EntryBlock}
	}

	// φ insertion at iterated dominance frontiers of the def sites.
	df := t.Frontier()
	phiAt := map[*cfg.Block]map[string]*PhiDef{}
	for _, v := range varList {
		work := append([]*cfg.Block(nil), defSites[v]...)
		onWork := map[*cfg.Block]bool{}
		for _, b := range work {
			onWork[b] = true
		}
		hasPhi := map[*cfg.Block]bool{}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range df[b] {
				if hasPhi[fb] {
					continue
				}
				hasPhi[fb] = true
				kind := PhiJoin
				switch fb.Kind {
				case cfg.Header:
					kind = PhiEntry
				case cfg.PostExit:
					kind = PhiExit
				}
				phi := &PhiDef{Var: v, Blk: fb, Kind: kind, Args: make([]Def, len(fb.Preds))}
				info.Phis = append(info.Phis, phi)
				if phiAt[fb] == nil {
					phiAt[fb] = map[string]*PhiDef{}
				}
				phiAt[fb][v] = phi
				info.PhisByBlock[fb] = append(info.PhisByBlock[fb], phi)
				if !onWork[fb] {
					onWork[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Renaming over the dominator tree.
	stacks := map[string][]Def{}
	versions := map[string]int{}
	for _, v := range varList {
		stacks[v] = []Def{info.Entries[v]}
	}
	top := func(v string) Def { return stacks[v][len(stacks[v])-1] }
	nextVersion := func(v string) int {
		versions[v]++
		return versions[v]
	}

	predIndex := func(b, pred *cfg.Block) int {
		for i, p := range b.Preds {
			if p == pred {
				return i
			}
		}
		return -1
	}

	useID := 0
	var rename func(b *cfg.Block)
	rename = func(b *cfg.Block) {
		var pushed []string
		for _, phi := range info.PhisByBlock[b] {
			phi.Version = nextVersion(phi.Var)
			stacks[phi.Var] = append(stacks[phi.Var], phi)
			pushed = append(pushed, phi.Var)
		}
		for _, st := range b.Stmts {
			if st.Assign == nil {
				continue
			}
			var uses []*Use
			collectUses(st.Assign.RHS, false, func(r *ast.Ref, inSum bool) {
				if _, ok := stacks[r.Name]; !ok {
					return
				}
				u := &Use{Var: r.Name, Stmt: st, Ref: r, Reaching: top(r.Name), InReduction: inSum, ID: useID}
				useID++
				uses = append(uses, u)
				info.Uses = append(info.Uses, u)
			})
			if len(uses) > 0 {
				info.UsesOfStmt[st] = uses
			}
			if _, ok := stacks[st.Assign.LHS.Name]; ok {
				v := st.Assign.LHS.Name
				d := &RegularDef{Var: v, Stmt: st, LHS: st.Assign.LHS, Input: top(v), Version: nextVersion(v)}
				info.Defs = append(info.Defs, d)
				info.DefOfStmt[st] = d
				stacks[v] = append(stacks[v], d)
				pushed = append(pushed, v)
			}
		}
		for _, s := range b.Succs {
			j := predIndex(s, b)
			for _, phi := range info.PhisByBlock[s] {
				phi.Args[j] = top(phi.Var)
			}
		}
		for _, c := range t.Children(b) {
			rename(c)
		}
		for i := len(pushed) - 1; i >= 0; i-- {
			v := pushed[i]
			stacks[v] = stacks[v][:len(stacks[v])-1]
		}
	}
	rename(g.EntryBlock)
	return info
}

// collectUses walks an RHS expression reporting every array reference
// together with whether it sits inside a SUM call.
func collectUses(e ast.Expr, inSum bool, f func(r *ast.Ref, inSum bool)) {
	switch e := e.(type) {
	case nil:
	case *ast.Ref:
		f(e, inSum)
		for _, s := range e.Subs {
			collectUses(s.X, inSum, f)
			collectUses(s.Lo, inSum, f)
			collectUses(s.Hi, inSum, f)
			collectUses(s.Step, inSum, f)
		}
	case *ast.Ident:
		// Whole-array identifiers were expanded by the scalarizer;
		// plain scalars are not array uses.
	case *ast.BinExpr:
		collectUses(e.X, inSum, f)
		collectUses(e.Y, inSum, f)
	case *ast.UnaryExpr:
		collectUses(e.X, inSum, f)
	case *ast.Call:
		child := inSum || e.Func == "sum"
		for _, a := range e.Args {
			collectUses(a, child, f)
		}
	}
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// CommonLoops returns the loops containing both a definition and a
// use, outermost first.
func CommonLoops(d Def, u *Use) []*cfg.Loop {
	dl := d.Loops()
	ul := u.Stmt.Loops
	n := min(len(dl), len(ul))
	var out []*cfg.Loop
	for i := 0; i < n; i++ {
		if dl[i] != ul[i] {
			break
		}
		out = append(out, dl[i])
	}
	return out
}

// CNL returns the common nesting level of a def and a use (paper
// notation CNL(d, u)).
func CNL(d Def, u *Use) int { return len(CommonLoops(d, u)) }

// Validate checks SSA invariants: every φ argument is filled, every
// use's reaching def dominates the use (for regular defs and φs), and
// versions are unique per variable. Used by tests.
func (info *Info) Validate() error {
	seen := map[string]map[int]bool{}
	note := func(v string, ver int) error {
		if seen[v] == nil {
			seen[v] = map[int]bool{}
		}
		if seen[v][ver] {
			return fmt.Errorf("ssa: duplicate version %s_%d", v, ver)
		}
		seen[v][ver] = true
		return nil
	}
	for _, d := range info.Defs {
		if err := note(d.Var, d.Version); err != nil {
			return err
		}
		if d.Input == nil {
			return fmt.Errorf("ssa: %s has nil input", d)
		}
	}
	for _, p := range info.Phis {
		if err := note(p.Var, p.Version); err != nil {
			return err
		}
		for i, a := range p.Args {
			if a == nil {
				return fmt.Errorf("ssa: %s arg %d unfilled", p, i)
			}
		}
		switch p.Blk.Kind {
		case cfg.Header:
			if p.Kind != PhiEntry {
				return fmt.Errorf("ssa: %s at header not PhiEntry", p)
			}
		case cfg.PostExit:
			if p.Kind != PhiExit {
				return fmt.Errorf("ssa: %s at postexit not PhiExit", p)
			}
		}
	}
	for _, u := range info.Uses {
		if u.Reaching == nil {
			return fmt.Errorf("ssa: %s has nil reaching def", u)
		}
		if !info.Dom.Dominates(u.Reaching.DefBlock(), u.Stmt.Block) {
			return fmt.Errorf("ssa: reaching def %s does not dominate %s", u.Reaching, u)
		}
	}
	return nil
}
