package ssa

import (
	"math/rand"
	"strings"
	"testing"

	"gcao/internal/cfg"
	"gcao/internal/dom"
	"gcao/internal/parser"
)

func buildSSA(t *testing.T, src string, arrays ...string) (*Info, *cfg.Graph) {
	t.Helper()
	r, err := parser.ParseRoutine(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := cfg.Build(r.Body)
	tr := dom.New(g)
	set := map[string]bool{}
	for _, a := range arrays {
		set[a] = true
	}
	info := Build(g, tr, func(n string) bool { return set[n] })
	if err := info.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return info, g
}

func TestStraightLineChain(t *testing.T) {
	info, _ := buildSSA(t, `
routine f(n)
real a(n)
a(1) = 0
a(2) = a(1)
a(3) = a(2)
end
`, "a")
	if len(info.Defs) != 3 {
		t.Fatalf("defs = %d", len(info.Defs))
	}
	// Preserving chain: def2.Input = def1, def1.Input = def0,
	// def0.Input = ENTRY.
	if info.Defs[0].Input != info.Entries["a"] {
		t.Error("first def's input should be the ENTRY pseudo-def")
	}
	if info.Defs[1].Input != info.Defs[0] || info.Defs[2].Input != info.Defs[1] {
		t.Error("preserving def chain broken")
	}
	// Uses see the def just above them.
	if len(info.Uses) != 2 {
		t.Fatalf("uses = %d", len(info.Uses))
	}
	if info.Uses[0].Reaching != info.Defs[0] || info.Uses[1].Reaching != info.Defs[1] {
		t.Error("reaching defs wrong in straight line")
	}
}

func TestJoinPhi(t *testing.T) {
	info, _ := buildSSA(t, `
routine f(n)
real a(n), d(n)
real c
if (c > 0) then
a(1) = 3
else
a(1) = d(1)
endif
a(2) = a(1)
end
`, "a", "d")
	var joinPhi *PhiDef
	for _, p := range info.Phis {
		if p.Var == "a" && p.Kind == PhiJoin {
			joinPhi = p
		}
	}
	if joinPhi == nil {
		t.Fatal("missing join φ for a")
	}
	// The use after the if reaches through the φ.
	var use *Use
	for _, u := range info.Uses {
		if u.Var == "a" {
			use = u
		}
	}
	if use.Reaching != joinPhi {
		t.Errorf("use reaches %v, want the join φ", use.Reaching)
	}
	// φ args are the two branch defs.
	args := map[Def]bool{joinPhi.Args[0]: true, joinPhi.Args[1]: true}
	count := 0
	for _, d := range info.Defs {
		if d.Var == "a" && args[d] {
			count++
		}
	}
	if count != 2 {
		t.Errorf("join φ args should be the two branch defs, got %v", joinPhi.Args)
	}
}

func TestLoopPhis(t *testing.T) {
	info, g := buildSSA(t, `
routine f(n)
real a(n)
a(1) = 0
do i = 2, n
a(i) = a(i - 1)
enddo
a(2) = a(1)
end
`, "a")
	var entryPhi, exitPhi *PhiDef
	for _, p := range info.Phis {
		switch p.Kind {
		case PhiEntry:
			entryPhi = p
		case PhiExit:
			exitPhi = p
		}
	}
	if entryPhi == nil || exitPhi == nil {
		t.Fatalf("missing φEntry/φExit: %v", info.Phis)
	}
	l := g.Loops[0]
	if entryPhi.Blk != l.Header || exitPhi.Blk != l.PostExit {
		t.Error("φEntry/φExit in wrong blocks")
	}
	// The in-loop use reaches the φEntry.
	var inLoop, after *Use
	for _, u := range info.Uses {
		if u.Stmt.NL() == 1 {
			inLoop = u
		} else if u.Stmt.Block == l.PostExit {
			after = u
		}
	}
	if inLoop == nil || inLoop.Reaching != entryPhi {
		t.Errorf("in-loop use reaches %v, want φEntry", inLoop.Reaching)
	}
	if after == nil || after.Reaching != exitPhi {
		t.Errorf("post-loop use reaches %v, want φExit", after.Reaching)
	}
	// φEntry args: the pre-loop def and the in-loop def (through the
	// backedge).
	hasPre := false
	hasBack := false
	for _, a := range entryPhi.Args {
		if rd, ok := a.(*RegularDef); ok {
			if rd.Stmt.NL() == 0 {
				hasPre = true
			} else {
				hasBack = true
			}
		}
	}
	if !hasPre || !hasBack {
		t.Errorf("φEntry args = %v", entryPhi.Args)
	}
	// φExit args include the zero-trip path (the pre-loop def).
	zeroTrip := false
	for _, a := range exitPhi.Args {
		if rd, ok := a.(*RegularDef); ok && rd.Stmt.NL() == 0 {
			zeroTrip = true
		}
	}
	if !zeroTrip {
		t.Errorf("φExit should see the zero-trip value: %v", exitPhi.Args)
	}
}

func TestUsesInReduction(t *testing.T) {
	info, _ := buildSSA(t, `
routine f(n)
real g(n, n)
real x
x = sum(g(1, 1:n)) + g(2, 2)
end
`, "g")
	if len(info.Uses) != 2 {
		t.Fatalf("uses = %d", len(info.Uses))
	}
	inSum, plain := 0, 0
	for _, u := range info.Uses {
		if u.InReduction {
			inSum++
		} else {
			plain++
		}
	}
	if inSum != 1 || plain != 1 {
		t.Errorf("inSum=%d plain=%d", inSum, plain)
	}
}

func TestCNLAndCommonLoops(t *testing.T) {
	info, _ := buildSSA(t, `
routine f(n)
real a(n)
do i = 1, n
do j = 1, n
a(j) = a(j)
enddo
enddo
end
`, "a")
	u := info.Uses[0]
	d := info.DefOfStmt[u.Stmt]
	if d == nil {
		t.Fatal("missing def")
	}
	if CNL(d, u) != 2 {
		t.Errorf("CNL same statement = %d", CNL(d, u))
	}
	if got := len(CommonLoops(u.Reaching, u)); got > 2 {
		t.Errorf("common loops with reaching def = %d", got)
	}
}

// Property: on random structured programs, SSA invariants hold and
// every use's reaching def dominates it.
func TestRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		src := randomArrayProgram(rng)
		r, err := parser.ParseRoutine(src)
		if err != nil {
			t.Fatalf("parse %s: %v", src, err)
		}
		g := cfg.Build(r.Body)
		tr := dom.New(g)
		info := Build(g, tr, func(n string) bool { return n == "a" || n == "b" })
		if err := info.Validate(); err != nil {
			t.Fatalf("trial %d:\n%s\n%v", trial, src, err)
		}
	}
}

func randomArrayProgram(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("routine r(n)\nreal a(n), b(n)\nreal x\n")
	var gen func(d int)
	stmts := 0
	gen = func(d int) {
		n := 1 + rng.Intn(3)
		for i := 0; i < n && stmts < 25; i++ {
			switch {
			case d < 3 && rng.Intn(4) == 0:
				b.WriteString("do v" + string(rune('0'+stmts%10)) + string(rune('a'+d)) + " = 1, n\n")
				stmts++
				gen(d + 1)
				b.WriteString("enddo\n")
			case d < 3 && rng.Intn(4) == 0:
				b.WriteString("if (x > 0) then\n")
				stmts++
				gen(d + 1)
				if rng.Intn(2) == 0 {
					b.WriteString("else\n")
					gen(d + 1)
				}
				b.WriteString("endif\n")
			default:
				switch rng.Intn(3) {
				case 0:
					b.WriteString("a(1) = b(1)\n")
				case 1:
					b.WriteString("b(2) = a(2)\n")
				default:
					b.WriteString("a(3) = a(3) + b(3)\n")
				}
				stmts++
			}
		}
	}
	gen(0)
	b.WriteString("end\n")
	return b.String()
}
