package spmd

import (
	"math"
	"testing"

	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/parser"
	"gcao/internal/plan"
	"gcao/internal/sem"
)

func compile(t *testing.T, src string, params map[string]int, procs int) *core.Analysis {
	t.Helper()
	r, err := parser.ParseRoutine(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u, err := sem.Analyze(r, params, sem.Options{Procs: procs})
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	a, err := core.NewAnalysis(u)
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	return a
}

func placed(t *testing.T, a *core.Analysis, v core.Version) *core.Result {
	t.Helper()
	res, err := a.Place(core.Options{Version: v})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const stencilSrc = `
routine st(n, steps)
real a(n, n), b(n, n)
!hpf$ distribute (block, block) :: a, b
do i = 1, n
do j = 1, n
a(i, j) = i * 10 + j
b(i, j) = 0
enddo
enddo
do it = 1, steps
do i = 2, n - 1
do j = 2, n - 1
b(i, j) = 0.25 * (a(i - 1, j) + a(i + 1, j) + a(i, j - 1) + a(i, j + 1))
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
a(i, j) = b(i, j)
enddo
enddo
enddo
end
`

func TestRunComputesStencil(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 6, "steps": 1}, 4)
	res := placed(t, a, core.VersionCombine)
	run, err := Run(res, machine.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-check one interior element: b(3,3) after one step equals
	// the average of a's initial neighbours.
	want := 0.25 * float64((2*10+3)+(4*10+3)+(3*10+2)+(3*10+4))
	got := run.Mem.ReadOwner("a", []int{3, 3}) // copied into a by the second nest
	if got != want {
		t.Errorf("a[3 3] = %v, want %v", got, want)
	}
	if run.Ledger.DynMessages == 0 {
		t.Error("a 4-processor stencil must communicate")
	}
	if run.Ledger.ElapsedTime() <= 0 {
		t.Error("ledger must accumulate time")
	}
}

func TestRunRejectsWrongProcs(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 6, "steps": 1}, 4)
	res := placed(t, a, core.VersionCombine)
	if _, err := Run(res, machine.SP2(), 9); err == nil {
		t.Error("processor-count mismatch must fail")
	}
}

func TestVerifyAgainstSequential(t *testing.T) {
	a4 := compile(t, stencilSrc, map[string]int{"n": 6, "steps": 2}, 4)
	a1 := compile(t, stencilSrc, map[string]int{"n": 6, "steps": 2}, 1)
	par, err := Run(placed(t, a4, core.VersionCombine), machine.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(placed(t, a1, core.VersionCombine), machine.SP2(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgainstSequential(par, seq); err != nil {
		t.Fatal(err)
	}
	// Corrupt one owner value; verification must notice.
	par.Mem.Write("a", []int{3, 3}, -999)
	if err := VerifyAgainstSequential(par, seq); err == nil {
		t.Error("verification should detect a corrupted element")
	}
}

// TestMissingCommDetected: a placement with communication stripped
// must trigger a stale read, proving the validity tracking works end
// to end.
func TestMissingCommDetected(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 6, "steps": 1}, 4)
	res := placed(t, a, core.VersionCombine)
	res.Groups = nil // strip all communication
	if _, err := Run(res, machine.SP2(), 4); err == nil {
		t.Fatal("run without communication must fail with a stale read")
	}
}

func TestEstimateMatchesRunShape(t *testing.T) {
	// The analytic estimator and the functional simulator must agree
	// on the ordering of the three versions' network costs.
	a := compile(t, stencilSrc, map[string]int{"n": 12, "steps": 2}, 4)
	m := machine.SP2()
	var estNet, runNet []float64
	for _, v := range []core.Version{core.VersionOrig, core.VersionCombine} {
		res := placed(t, a, v)
		c, err := Estimate(res, m)
		if err != nil {
			t.Fatal(err)
		}
		run, err := Run(res, m, 4)
		if err != nil {
			t.Fatal(err)
		}
		estNet = append(estNet, c.Net)
		runNet = append(runNet, run.Ledger.NetTime())
	}
	if !(estNet[1] <= estNet[0]) {
		t.Errorf("estimate: comb net %v should not exceed orig %v", estNet[1], estNet[0])
	}
	if !(runNet[1] <= runNet[0]) {
		t.Errorf("functional: comb net %v should not exceed orig %v", runNet[1], runNet[0])
	}
}

func TestEstimateVersionsNormalized(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 64, "steps": 4}, 4)
	bars, err := EstimateVersions(a, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 3 {
		t.Fatalf("bars = %d", len(bars))
	}
	if tot := bars[0].CPU + bars[0].Net; math.Abs(tot-1.0) > 1e-9 {
		t.Errorf("orig bar normalized to %v, want 1.0", tot)
	}
	if bars[2].Net > bars[0].Net {
		t.Error("comb network segment must not exceed orig")
	}
	// CPU is identical across versions (same computation).
	if math.Abs(bars[0].CPU-bars[2].CPU) > 1e-12 {
		t.Errorf("CPU segments differ: %v vs %v", bars[0].CPU, bars[2].CPU)
	}
}

const reduceSrc = `
routine rsum(n)
real g(n, n)
real s1, s2
!hpf$ distribute (block, block) :: g
do i = 1, n
do j = 1, n
g(i, j) = 1
enddo
enddo
s1 = sum(g(1, 1:n))
s2 = sum(g(1:n, 1:n))
end
`

func TestReductionValues(t *testing.T) {
	a := compile(t, reduceSrc, map[string]int{"n": 8}, 4)
	res := placed(t, a, core.VersionCombine)
	run, err := Run(res, machine.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if run.Scalars["s1"] != 8 {
		t.Errorf("s1 = %v, want 8", run.Scalars["s1"])
	}
	if run.Scalars["s2"] != 64 {
		t.Errorf("s2 = %v, want 64", run.Scalars["s2"])
	}
}

const branchSrc = `
routine br(n)
real a(n), b(n)
real x
!hpf$ distribute (block) :: a, b
do i = 1, n
a(i) = i
enddo
x = 2
if (x > 1) then
do i = 2, n
b(i) = a(i - 1)
enddo
else
do i = 2, n
b(i) = 0
enddo
endif
end
`

func TestBranching(t *testing.T) {
	a := compile(t, branchSrc, map[string]int{"n": 8}, 4)
	res := placed(t, a, core.VersionCombine)
	run, err := Run(res, machine.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Mem.ReadOwner("b", []int{5}); got != 4 {
		t.Errorf("b[5] = %v, want 4 (then-branch taken)", got)
	}
}

const zeroTripSrc = `
routine zt(n)
real a(n)
real x
!hpf$ distribute (block) :: a
do i = 1, n
a(i) = 1
enddo
do i = 5, 4
a(i) = 99
enddo
x = 0
end
`

func TestZeroTripLoop(t *testing.T) {
	a := compile(t, zeroTripSrc, map[string]int{"n": 8}, 4)
	res := placed(t, a, core.VersionCombine)
	run, err := Run(res, machine.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if got := run.Mem.ReadOwner("a", []int{i}); got != 1 {
			t.Errorf("a[%d] = %v after zero-trip loop, want 1", i, got)
		}
	}
}

func TestStepLoop(t *testing.T) {
	src := `
routine sl(n)
real a(n)
!hpf$ distribute (block) :: a
do i = 1, n
a(i) = 0
enddo
do i = 1, n, 3
a(i) = 7
enddo
end
`
	a := compile(t, src, map[string]int{"n": 10}, 2)
	res := placed(t, a, core.VersionCombine)
	run, err := Run(res, machine.SP2(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		want := 0.0
		if (i-1)%3 == 0 {
			want = 7
		}
		if got := run.Mem.ReadOwner("a", []int{i}); got != want {
			t.Errorf("a[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestCountFlops(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 6, "steps": 1}, 4)
	// The stencil statement has 3 adds, 1 mul = 4 binary ops.
	found := false
	for _, st := range a.G.Stmts {
		if st.Assign.LHS.Name == "b" && st.NL() == 3 {
			if got := plan.CountFlops(st.Assign.RHS); got != 4 {
				t.Errorf("stencil flops = %d, want 4", got)
			}
			found = true
		}
	}
	if !found {
		t.Error("stencil statement not found")
	}
}

const replicatedSrc = `
routine rep(n)
real a(n), r(n)
real s
!hpf$ distribute (block) :: a
do i = 1, n
r(i) = i * 2
enddo
do i = 1, n
a(i) = r(i) + min(1.0, 2.0) + max(3.0, 1.0) + abs(0 - 2) + sqrt(4.0) + exp(0.0) + mod(5.0, 3.0)
enddo
s = sum(r(1:n))
end
`

// TestReplicatedAndIntrinsics exercises replicated-array statements,
// the intrinsic evaluators, and SUM over replicated data (local, no
// reduce group).
func TestReplicatedAndIntrinsics(t *testing.T) {
	a := compile(t, replicatedSrc, map[string]int{"n": 8}, 4)
	res := placed(t, a, core.VersionCombine)
	if got := res.Count(core.KindReduce); got != 0 {
		t.Errorf("sum over replicated array placed %d reduce groups, want 0", got)
	}
	run, err := Run(res, machine.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// a(i) = 2i + 1 + 3 + 2 + 2 + 1 + 2 = 2i + 11
	if got := run.Mem.ReadOwner("a", []int{3}); got != 17 {
		t.Errorf("a[3] = %v, want 17", got)
	}
	want := 0.0
	for i := 1; i <= 8; i++ {
		want += float64(2 * i)
	}
	if run.Scalars["s"] != want {
		t.Errorf("s = %v, want %v", run.Scalars["s"], want)
	}
}

const negStepSrc = `
routine ns(n)
real a(n)
!hpf$ distribute (block) :: a
do i = 1, n
a(i) = 0
enddo
do i = n, 1, -2
a(i) = i
enddo
end
`

func TestNegativeStepLoop(t *testing.T) {
	a := compile(t, negStepSrc, map[string]int{"n": 9}, 2)
	res := placed(t, a, core.VersionCombine)
	run, err := Run(res, machine.SP2(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// i = 9, 7, 5, 3, 1 set; evens stay zero.
	for i := 1; i <= 9; i++ {
		want := 0.0
		if i%2 == 1 {
			want = float64(i)
		}
		if got := run.Mem.ReadOwner("a", []int{i}); got != want {
			t.Errorf("a[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestEstimateBcastAndGeneral(t *testing.T) {
	src := `
routine bg(n)
real a(n)
real x
!hpf$ distribute (block) :: a
do i = 1, n
a(i) = i
enddo
x = a(3)
a(2) = a(n)
end
`
	a := compile(t, src, map[string]int{"n": 16}, 4)
	res := placed(t, a, core.VersionCombine)
	c, err := Estimate(res, machine.NOW())
	if err != nil {
		t.Fatal(err)
	}
	if c.Net <= 0 || c.Messages <= 0 {
		t.Errorf("bcast/general cost = %+v", c)
	}
	run, err := Run(res, machine.NOW(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if run.Scalars["x"] != 3 {
		t.Errorf("x = %v, want 3", run.Scalars["x"])
	}
	if got := run.Mem.ReadOwner("a", []int{2}); got != 16 {
		t.Errorf("a[2] = %v, want 16", got)
	}
}

func TestRunDeterminism(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 10, "steps": 2}, 4)
	res := placed(t, a, core.VersionCombine)
	r1, err := Run(res, machine.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(res, machine.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Ledger.DynMessages != r2.Ledger.DynMessages ||
		r1.Ledger.BytesMoved != r2.Ledger.BytesMoved ||
		r1.Ledger.ElapsedTime() != r2.Ledger.ElapsedTime() {
		t.Error("simulation must be deterministic")
	}
	if err := VerifyAgainstSequential(r1, r2); err != nil {
		t.Errorf("identical runs differ: %v", err)
	}
}
