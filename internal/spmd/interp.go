// Package spmd executes compiled programs on the simulated
// distributed-memory machine. It provides two engines:
//
//   - Run, a functional bulk-synchronous interpreter that executes the
//     scalarized program elementwise over per-processor memories with
//     validity tracking. It proves a communication placement correct
//     (a stale read aborts the run) and produces exact per-processor
//     time and message statistics under the machine cost model. The
//     per-processor loops are sharded over a pool of worker goroutines
//     on contiguous processor ranges (see parallel.go); results are
//     bit-identical to a single-shard run regardless of worker count.
//
//   - Estimate, an analytic walker that computes the same per-processor
//     CPU/network time split without touching data, so the paper's
//     problem sizes (up to 325³ gravity grids) are simulated in
//     microseconds.
//
// Both engines consume a placement Result from package core, so the
// three compiler versions (orig / nored / comb) can be compared on
// identical programs.
package spmd

import (
	"fmt"
	"math"

	"gcao/internal/ast"
	"gcao/internal/cfg"
	"gcao/internal/obs"
	"gcao/internal/plan"
	"gcao/internal/runtime"
	"gcao/internal/section"
)

// Local aliases keep the evaluator readable.
type (
	sectionT    = section.Section
	sectionDimT = section.Dim
)

// RunResult is the outcome of a functional simulation.
type RunResult struct {
	Ledger  *runtime.Ledger
	Mem     *runtime.Memory
	Scalars map[string]float64
}

// ---------------------------------------------------------------------
// shard: one worker's view of the run

// frame is one loop's iteration state (replicated per shard).
type frame struct {
	lo, hi, step, cur int
}

// sumEntry memoizes one SUM call's value within a single statement
// execution: the total is processor-independent, only the flop share
// differs, so each shard computes the section scan once per statement
// instead of once per processor.
type sumEntry struct {
	total  float64
	counts []int // per-processor owned element counts; nil if replicated
	n      int   // element count for replicated sums
}

// shard executes the full control flow for the contiguous processor
// range [lo, hi). All integer bookkeeping (loop frames, scalar
// environment) is replicated per shard; memory and ledger writes stay
// inside the range except at phaser rendezvous points.
type shard struct {
	eng     *engine
	idx     int
	lo, hi  int
	ienv    map[string]int
	scalars map[string]float64
	frames  map[*cfg.Loop]*frame
	led     *runtime.LedgerView
	// prof is the shard's scratch pair matrix, merged into the master
	// profile at each superstep rendezvous (nil when unprofiled).
	prof    *obs.CommProfile
	sumMemo map[*ast.Call]sumEntry
	coords  []int // grid-coordinate scratch for owner computations
}

func (sh *shard) run() error {
	cur := sh.eng.pl.A.G.EntryBlock
	var prev *cfg.Block
	for cur != nil {
		next, err := sh.execBlock(cur, prev)
		if err != nil {
			return err
		}
		prev, cur = cur, next
	}
	return nil
}

func (sh *shard) execBlock(b *cfg.Block, prev *cfg.Block) (*cfg.Block, error) {
	pl := sh.eng.pl
	switch b.Kind {
	case cfg.Header:
		loop := b.Loop
		fr := sh.frames[loop]
		if prev == loop.PreHeader {
			fr.cur = fr.lo
		} else {
			fr.cur += fr.step
		}
		sh.ienv[loop.Var()] = fr.cur
		cont := fr.cur <= fr.hi
		if fr.step < 0 {
			cont = fr.cur >= fr.hi
		}
		if !cont {
			return b.Succs[1], nil // postexit
		}
		// Communication placed at the loop header executes once per
		// iteration, after the φ point.
		if err := sh.execComm(pl.Comm[b.ID][0]); err != nil {
			return nil, err
		}
		return b.Succs[0], nil

	case cfg.PreHeader:
		loop := pl.LoopOf[b.ID]
		if loop == nil {
			panic("spmd: preheader without loop")
		}
		if err := sh.execComm(pl.Comm[b.ID][0]); err != nil {
			return nil, err
		}
		lo, err1 := sh.evalInt(loop.Do.Lo)
		hi, err2 := sh.evalInt(loop.Do.Hi)
		if err1 != nil {
			return nil, err1
		}
		if err2 != nil {
			return nil, err2
		}
		step := 1
		if loop.Do.Step != nil {
			s, err := sh.evalInt(loop.Do.Step)
			if err != nil {
				return nil, err
			}
			if s == 0 {
				return nil, fmt.Errorf("spmd: zero loop step at %s", loop.Do.Pos)
			}
			step = s
		}
		sh.frames[loop] = &frame{lo: lo, hi: hi, step: step}
		empty := lo > hi
		if step < 0 {
			empty = lo < hi
		}
		if empty {
			return b.Succs[1], nil // zero-trip edge
		}
		return b.Succs[0], nil

	default:
		if err := sh.execComm(pl.Comm[b.ID][0]); err != nil {
			return nil, err
		}
		for k, st := range b.Stmts {
			if err := sh.execStmt(st); err != nil {
				return nil, err
			}
			if err := sh.execComm(pl.Comm[b.ID][k+1]); err != nil {
				return nil, err
			}
		}
		if b.Branch != nil {
			v, err := sh.evalCond(b)
			if err != nil {
				return nil, err
			}
			// Every processor evaluates the replicated condition.
			for p := sh.lo; p < sh.hi; p++ {
				sh.led.Compute(p, 1)
			}
			if v {
				return b.Succs[0], nil
			}
			return b.Succs[1], nil
		}
		if len(b.Succs) == 0 {
			return nil, nil
		}
		return b.Succs[0], nil
	}
}

// ---------------------------------------------------------------------
// statement execution

func (sh *shard) execStmt(st *cfg.Stmt) error {
	si := sh.eng.pl.Info[st]
	if si.HasSum {
		clear(sh.sumMemo)
	}
	if si.Sync {
		return sh.execSyncStmt(st, si)
	}
	as := st.Assign

	if si.LHS == nil {
		// Scalar target: every processor computes the replicated value;
		// this shard evaluates its range (the value is processor-
		// independent, cross-shard agreement is checked at the next
		// rendezvous).
		v, err := sh.evalRange(as.RHS, si.Flops)
		if err != nil {
			return err
		}
		sh.scalars[as.LHS.Name] = v
		return nil
	}

	// Owner-computes on a distributed array (replicated-array stores
	// are sync statements).
	idx, err := sh.lhsIndex(as)
	if err != nil {
		return err
	}
	am := si.LHS
	off := am.Offset(idx)
	owner := sh.ownerOf(am, idx)
	if owner >= sh.lo && owner < sh.hi {
		v, extra, err := sh.evalOn(owner, as.RHS)
		if err != nil {
			return err
		}
		am.StoreOwner(off, owner, v)
		sh.led.Compute(owner, si.Flops+extra)
	}
	am.InvalidateRange(off, owner, sh.lo, sh.hi)
	return nil
}

// execSyncStmt executes a statement that needs a rendezvous: either
// its RHS sums a distributed array (reading owner rows across shard
// ranges, so all shards must quiesce first) or its LHS is a
// replicated array (single shared row, written once by the leader).
func (sh *shard) execSyncStmt(st *cfg.Stmt, si *plan.StmtInfo) error {
	eng := sh.eng
	as := st.Assign

	// Rendezvous 1: quiesce. After this point no shard mutates memory
	// until rendezvous 2, so cross-range owner reads are safe.
	if err := eng.ph.await(token{kind: tkStmtA, a: st.ID}, nil); err != nil {
		return err
	}

	var idx []int
	var off, owner int
	var serr error
	eng.syncHas[sh.idx] = false
	if si.LHS != nil {
		idx, serr = sh.lhsIndex(as)
		if serr == nil && si.LHS.Dist != nil {
			off = si.LHS.Offset(idx)
			owner = sh.ownerOf(si.LHS, idx)
		} else if serr == nil {
			off = si.LHS.Offset(idx)
		}
	}
	if serr == nil {
		switch {
		case si.LHS != nil && si.LHS.Dist != nil:
			// Owner-computes: only the owner's shard evaluates.
			if owner >= sh.lo && owner < sh.hi {
				v, extra, err := sh.evalOn(owner, as.RHS)
				if err != nil {
					serr = err
				} else {
					eng.syncVals[sh.idx] = v
					eng.syncHas[sh.idx] = true
					sh.led.Compute(owner, si.Flops+extra)
				}
			}
		default:
			// Scalar or replicated-array target: the value is
			// replicated; this shard evaluates and charges its range.
			v, err := sh.evalRange(as.RHS, si.Flops)
			if err != nil {
				serr = err
			} else {
				eng.syncVals[sh.idx] = v
				eng.syncHas[sh.idx] = true
			}
		}
	}
	eng.shardErrs[sh.idx] = serr

	// Rendezvous 2: the leader validates agreement and performs the
	// single shared write.
	err := eng.ph.await(token{kind: tkStmtB, a: st.ID}, func() error {
		if err := eng.firstShardError(); err != nil {
			return err
		}
		var v0 float64
		have := false
		for i, has := range eng.syncHas {
			if !has {
				continue
			}
			v := eng.syncVals[i]
			if !have {
				v0, have = v, true
			} else if v != v0 && !(math.IsNaN(v) && math.IsNaN(v0)) {
				return fmt.Errorf("spmd: replicated computation diverged: %g vs %g", v0, v)
			}
		}
		if si.LHS != nil && !have {
			return fmt.Errorf("spmd: no shard computed %s", as.LHS.Name)
		}
		eng.syncResult = v0
		if si.LHS != nil && si.LHS.Dist != nil {
			si.LHS.StoreOwner(off, owner, v0)
		} else if si.LHS != nil {
			si.LHS.StoreOwner(off, 0, v0)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if si.LHS == nil {
		sh.scalars[as.LHS.Name] = eng.syncResult
	} else if si.LHS.Dist != nil {
		si.LHS.InvalidateRange(off, owner, sh.lo, sh.hi)
	}
	return nil
}

// evalRange evaluates a replicated expression on each processor of
// the shard's range, verifying intra-shard agreement and charging the
// per-processor flops (base + reduction share) to the shard ledger.
func (sh *shard) evalRange(e ast.Expr, flops int) (float64, error) {
	var v0 float64
	for p := sh.lo; p < sh.hi; p++ {
		v, extra, err := sh.evalOn(p, e)
		if err != nil {
			return 0, err
		}
		if p == sh.lo {
			v0 = v
		} else if v != v0 && !(math.IsNaN(v) && math.IsNaN(v0)) {
			return 0, fmt.Errorf("spmd: replicated computation diverged: %g vs %g", v0, v)
		}
		sh.led.Compute(p, flops+extra)
	}
	return v0, nil
}

func (sh *shard) lhsIndex(as *ast.AssignStmt) ([]int, error) {
	idx := make([]int, len(as.LHS.Subs))
	for i, sub := range as.LHS.Subs {
		if sub.Kind != ast.SubExpr {
			return nil, fmt.Errorf("spmd: unscalarized section on LHS at %s", as.Pos)
		}
		x, err := sh.evalInt(sub.X)
		if err != nil {
			return nil, err
		}
		idx[i] = x
	}
	return idx, nil
}

// ownerOf computes an element's owner through the shard's reusable
// coordinate buffer.
func (sh *shard) ownerOf(am *runtime.ArrayMem, idx []int) int {
	r := am.Dist.Grid.Rank()
	if cap(sh.coords) < r {
		sh.coords = make([]int, r)
	}
	return am.OwnerInto(idx, sh.coords[:r])
}

// evalOn evaluates an expression from one processor's point of view.
// extra counts the processor's share of reduction flops.
func (sh *shard) evalOn(p int, e ast.Expr) (val float64, extra int, err error) {
	switch e := e.(type) {
	case *ast.NumLit:
		return e.Value, 0, nil
	case *ast.Ident:
		if v, ok := sh.ienv[e.Name]; ok {
			return float64(v), 0, nil
		}
		if v, ok := sh.scalars[e.Name]; ok {
			return v, 0, nil
		}
		return 0, 0, fmt.Errorf("spmd: unbound scalar %q", e.Name)
	case *ast.UnaryExpr:
		v, ex, err := sh.evalOn(p, e.X)
		return -v, ex, err
	case *ast.BinExpr:
		x, ex1, err := sh.evalOn(p, e.X)
		if err != nil {
			return 0, 0, err
		}
		y, ex2, err := sh.evalOn(p, e.Y)
		if err != nil {
			return 0, 0, err
		}
		switch e.Op {
		case ast.Add:
			return x + y, ex1 + ex2, nil
		case ast.Sub_:
			return x - y, ex1 + ex2, nil
		case ast.Mul:
			return x * y, ex1 + ex2, nil
		case ast.Div:
			return x / y, ex1 + ex2, nil
		case ast.Pow:
			return math.Pow(x, y), ex1 + ex2, nil
		case ast.CmpLt:
			return b2f(x < y), ex1 + ex2, nil
		case ast.CmpGt:
			return b2f(x > y), ex1 + ex2, nil
		case ast.CmpLe:
			return b2f(x <= y), ex1 + ex2, nil
		case ast.CmpGe:
			return b2f(x >= y), ex1 + ex2, nil
		case ast.CmpEq:
			return b2f(x == y), ex1 + ex2, nil
		case ast.CmpNe:
			return b2f(x != y), ex1 + ex2, nil
		}
		return 0, 0, fmt.Errorf("spmd: bad operator %v", e.Op)
	case *ast.Ref:
		am := sh.eng.pl.RefArr[e]
		if am == nil {
			if v, ok := sh.ienv[e.Name]; ok {
				return float64(v), 0, nil
			}
			return sh.scalars[e.Name], 0, nil
		}
		idx := make([]int, len(e.Subs))
		for i, sub := range e.Subs {
			if sub.Kind != ast.SubExpr {
				return 0, 0, fmt.Errorf("spmd: section read outside SUM at %s", e.Pos)
			}
			x, err := sh.evalInt(sub.X)
			if err != nil {
				return 0, 0, err
			}
			idx[i] = x
		}
		v, err := am.ReadAt(p, am.Offset(idx), idx)
		return v, 0, err
	case *ast.Call:
		if e.Func == "sum" {
			return sh.evalSum(p, e)
		}
		args := make([]float64, len(e.Args))
		var extra int
		for i, a := range e.Args {
			v, ex, err := sh.evalOn(p, a)
			if err != nil {
				return 0, 0, err
			}
			args[i] = v
			extra += ex
		}
		switch e.Func {
		case "sqrt":
			return math.Sqrt(args[0]), extra, nil
		case "abs":
			return math.Abs(args[0]), extra, nil
		case "exp":
			return math.Exp(args[0]), extra, nil
		case "min":
			return math.Min(args[0], args[1]), extra, nil
		case "max":
			return math.Max(args[0], args[1]), extra, nil
		case "mod":
			return math.Mod(args[0], args[1]), extra, nil
		}
		return 0, 0, fmt.Errorf("spmd: unknown intrinsic %q", e.Func)
	}
	return 0, 0, fmt.Errorf("spmd: cannot evaluate %T", e)
}

// evalSum evaluates SUM over an array section: partial sums are
// computed by the owners (charged to extra on processor p as its
// share) and the combine is charged by the reduction group. The total
// is processor-independent, so the section scan is memoized per
// statement execution and reused across the shard's processors.
func (sh *shard) evalSum(p int, e *ast.Call) (float64, int, error) {
	if len(e.Args) != 1 {
		return 0, 0, fmt.Errorf("spmd: sum wants 1 argument")
	}
	ref, ok := e.Args[0].(*ast.Ref)
	if !ok {
		return 0, 0, fmt.Errorf("spmd: sum argument must be an array section")
	}
	if m, ok := sh.sumMemo[e]; ok {
		if m.counts != nil {
			return m.total, m.counts[p], nil
		}
		return m.total, m.n, nil
	}
	am := sh.eng.pl.RefArr[ref]
	if am == nil {
		return 0, 0, fmt.Errorf("spmd: sum over non-array %q", ref.Name)
	}
	sec, err := sh.eng.pl.ConcreteRefSection(ref, am, sh.ienv)
	if err != nil {
		return 0, 0, err
	}
	if am.Dist == nil {
		total := 0.0
		n := 0
		sec.Elems(func(idx []int) bool {
			v, _ := am.ReadAt(0, am.Offset(idx), idx)
			total += v
			n++
			return true
		})
		sh.sumMemo[e] = sumEntry{total: total, n: n}
		return total, n, nil
	}
	total, counts := sh.eng.mem.SumSection(ref.Name, sec)
	sh.sumMemo[e] = sumEntry{total: total, counts: counts}
	return total, counts[p], nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// evalCond evaluates a branch condition. Scalar-only conditions are
// evaluated locally (every shard computes the identical value);
// conditions reading distributed data rendezvous so the leader can
// evaluate processor 0's view while all shards are quiescent.
func (sh *shard) evalCond(b *cfg.Block) (bool, error) {
	eng := sh.eng
	clear(sh.sumMemo)
	if !eng.pl.CondSync[b.ID] {
		v, _, err := sh.evalOn(0, b.Branch.Cond)
		return v != 0, err
	}
	err := eng.ph.await(token{kind: tkCond, a: b.ID}, func() error {
		clear(sh.sumMemo)
		v, _, err := sh.evalOn(0, b.Branch.Cond)
		if err != nil {
			return err
		}
		eng.condVal = v != 0
		return nil
	})
	if err != nil {
		return false, err
	}
	return eng.condVal, nil
}

func (sh *shard) evalInt(e ast.Expr) (int, error) {
	return sh.eng.pl.A.Unit.EvalIntEnv(e, sh.ienv)
}

// VerifyAgainstSequential compares the canonical memory of a parallel
// run against a sequential (single-processor) run of the same
// analysis: it returns an error naming the first differing array
// element. Both runs must use placements of the same program.
func VerifyAgainstSequential(par, seq *RunResult) error {
	for _, name := range par.Mem.Unit.ArrayNames {
		pv := par.Mem.Canonical(name)
		sv := seq.Mem.Canonical(name)
		for i := range pv {
			if pv[i] != sv[i] && !(math.IsNaN(pv[i]) && math.IsNaN(sv[i])) {
				return fmt.Errorf("spmd: array %q differs at flat index %d: parallel %g vs sequential %g", name, i, pv[i], sv[i])
			}
		}
	}
	for k, v := range seq.Scalars {
		if pv, ok := par.Scalars[k]; ok && pv != v && !(math.IsNaN(pv) && math.IsNaN(v)) {
			return fmt.Errorf("spmd: scalar %q differs: parallel %g vs sequential %g", k, pv, v)
		}
	}
	return nil
}
