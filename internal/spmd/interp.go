// Package spmd executes compiled programs on the simulated
// distributed-memory machine. It provides two engines:
//
//   - Run, a functional bulk-synchronous interpreter that executes the
//     scalarized program elementwise over per-processor memories with
//     validity tracking. It proves a communication placement correct
//     (a stale read aborts the run) and produces exact per-processor
//     time and message statistics under the machine cost model.
//
//   - Estimate, an analytic walker that computes the same per-processor
//     CPU/network time split without touching data, so the paper's
//     problem sizes (up to 325³ gravity grids) are simulated in
//     microseconds.
//
// Both engines consume a placement Result from package core, so the
// three compiler versions (orig / nored / comb) can be compared on
// identical programs.
package spmd

import (
	"fmt"
	"math"

	"gcao/internal/ast"
	"gcao/internal/cfg"
	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/obs"
	"gcao/internal/runtime"
	"gcao/internal/section"
)

// Local aliases keep the evaluator readable.
type (
	sectionT    = section.Section
	sectionDimT = section.Dim
)

// RunResult is the outcome of a functional simulation.
type RunResult struct {
	Ledger  *runtime.Ledger
	Mem     *runtime.Memory
	Scalars map[string]float64
}

type interp struct {
	a        *core.Analysis
	res      *core.Result
	mem      *runtime.Memory
	led      *runtime.Ledger
	scalars  map[string]float64
	ienv     map[string]int
	groupsAt map[core.Position][]*core.Group
	flops    map[*cfg.Stmt]int
	frames   map[*cfg.Loop]*frame

	// prof and idle are the communication profile of this run, built
	// only when a recorder is attached (both nil otherwise).
	prof *obs.CommProfile
	idle []float64
}

type frame struct {
	lo, hi, step, cur int
}

// Run executes the program under the given placement on p processors.
// When the analysis carries an obs recorder, the run is profiled:
// sender→receiver traffic, the per-superstep timeline, and the
// per-processor compute/communication/idle split.
func Run(res *core.Result, m machine.Machine, procs int) (*RunResult, error) {
	return RunObs(res, m, procs, res.Analysis.Obs)
}

// RunObs is Run with an explicit recorder (which may be nil to
// disable profiling even when the analysis has one).
func RunObs(res *core.Result, m machine.Machine, procs int, rec *obs.Recorder) (*RunResult, error) {
	a := res.Analysis
	if got := a.Unit.Grid.NumProcs(); got != procs {
		return nil, fmt.Errorf("spmd: unit compiled for %d processors, run requested %d", got, procs)
	}
	endRun := rec.Start("simulate:" + res.Version.String())
	defer endRun()
	it := &interp{
		a:        a,
		res:      res,
		mem:      runtime.NewMemory(a.Unit, procs),
		led:      runtime.NewLedger(procs, m),
		scalars:  map[string]float64{},
		ienv:     map[string]int{},
		groupsAt: map[core.Position][]*core.Group{},
		flops:    map[*cfg.Stmt]int{},
		frames:   map[*cfg.Loop]*frame{},
	}
	if rec != nil {
		it.prof = obs.NewCommProfile(procs)
		it.idle = make([]float64, procs)
	}
	for name, v := range a.Unit.Params {
		it.scalars[name] = float64(v)
	}
	for _, g := range res.Groups {
		it.groupsAt[g.Pos] = append(it.groupsAt[g.Pos], g)
	}
	for _, st := range a.G.Stmts {
		it.flops[st] = countFlops(st.Assign.RHS)
	}
	if err := it.run(); err != nil {
		return nil, err
	}
	it.barrier()
	if it.prof != nil {
		it.finishProfile(rec)
	}
	return &RunResult{Ledger: it.led, Mem: it.mem, Scalars: it.scalars}, nil
}

// barrier synchronizes the ledger clocks, first crediting each
// processor's wait below the slowest clock to the profile's idle
// account (the ledger itself charges that slack to Net).
func (it *interp) barrier() {
	if it.idle != nil {
		maxT := 0.0
		for p := 0; p < it.led.P; p++ {
			if t := it.led.CPU[p] + it.led.Net[p]; t > maxT {
				maxT = t
			}
		}
		for p := 0; p < it.led.P; p++ {
			it.idle[p] += maxT - (it.led.CPU[p] + it.led.Net[p])
		}
	}
	it.led.Barrier()
}

// finishProfile fills the per-processor time split, installs the
// profile, and bumps the run counters. The version-prefixed counters
// let several runs (orig vs comb) share one recorder.
func (it *interp) finishProfile(rec *obs.Recorder) {
	compute := make([]float64, it.led.P)
	comm := make([]float64, it.led.P)
	for p := 0; p < it.led.P; p++ {
		compute[p] = it.led.CPU[p]
		comm[p] = it.led.Net[p] - it.idle[p]
	}
	it.prof.ComputeSec = compute
	it.prof.CommSec = comm
	it.prof.IdleSec = append([]float64(nil), it.idle...)
	rec.SetProfile(it.prof)
	prefix := "spmd." + it.res.Version.String() + "."
	rec.Add(prefix+"supersteps", int64(len(it.prof.Steps)))
	rec.Add(prefix+"messages", int64(it.led.DynMessages))
	rec.Add(prefix+"bytes", int64(it.led.BytesMoved))
	rec.Add(prefix+"barriers", int64(it.led.Barriers))
	rec.Event(obs.LevelInfo, "simulate.done",
		obs.F("version", it.res.Version.String()),
		obs.F("procs", it.led.P),
		obs.F("messages", it.led.DynMessages),
		obs.F("bytes", it.led.BytesMoved),
		obs.F("barriers", it.led.Barriers))
}

func (it *interp) run() error {
	cur := it.a.G.EntryBlock
	var prev *cfg.Block
	for cur != nil {
		next, err := it.execBlock(cur, prev)
		if err != nil {
			return err
		}
		prev, cur = cur, next
	}
	return nil
}

func (it *interp) execBlock(b *cfg.Block, prev *cfg.Block) (*cfg.Block, error) {
	switch b.Kind {
	case cfg.Header:
		loop := b.Loop
		fr := it.frames[loop]
		if prev == loop.PreHeader {
			fr.cur = fr.lo
		} else {
			fr.cur += fr.step
		}
		it.ienv[loop.Var()] = fr.cur
		cont := fr.cur <= fr.hi
		if fr.step < 0 {
			cont = fr.cur >= fr.hi
		}
		if !cont {
			return b.Succs[1], nil // postexit
		}
		// Communication placed at the loop header executes once per
		// iteration, after the φ point.
		if err := it.execComm(core.Position{Block: b, After: -1}); err != nil {
			return nil, err
		}
		return b.Succs[0], nil

	case cfg.PreHeader:
		loop := findLoopByPreheader(it.a.G, b)
		if err := it.execComm(core.Position{Block: b, After: -1}); err != nil {
			return nil, err
		}
		lo, err1 := it.evalInt(loop.Do.Lo)
		hi, err2 := it.evalInt(loop.Do.Hi)
		if err1 != nil {
			return nil, err1
		}
		if err2 != nil {
			return nil, err2
		}
		step := 1
		if loop.Do.Step != nil {
			s, err := it.evalInt(loop.Do.Step)
			if err != nil {
				return nil, err
			}
			if s == 0 {
				return nil, fmt.Errorf("spmd: zero loop step at %s", loop.Do.Pos)
			}
			step = s
		}
		it.frames[loop] = &frame{lo: lo, hi: hi, step: step}
		empty := lo > hi
		if step < 0 {
			empty = lo < hi
		}
		if empty {
			return b.Succs[1], nil // zero-trip edge
		}
		return b.Succs[0], nil

	default:
		if err := it.execComm(core.Position{Block: b, After: -1}); err != nil {
			return nil, err
		}
		for k, st := range b.Stmts {
			if err := it.execStmt(st); err != nil {
				return nil, err
			}
			if err := it.execComm(core.Position{Block: b, After: k}); err != nil {
				return nil, err
			}
		}
		if b.Branch != nil {
			v, err := it.evalCond(b.Branch.Cond)
			if err != nil {
				return nil, err
			}
			// Every processor evaluates the replicated condition.
			for p := 0; p < it.led.P; p++ {
				it.led.Compute(p, 1)
			}
			if v {
				return b.Succs[0], nil
			}
			return b.Succs[1], nil
		}
		if len(b.Succs) == 0 {
			return nil, nil
		}
		return b.Succs[0], nil
	}
}

func findLoopByPreheader(g *cfg.Graph, b *cfg.Block) *cfg.Loop {
	for _, l := range g.Loops {
		if l.PreHeader == b {
			return l
		}
	}
	panic("spmd: preheader without loop")
}

// ---------------------------------------------------------------------
// statement execution

func (it *interp) execStmt(st *cfg.Stmt) error {
	as := st.Assign
	lhs := as.LHS
	arr := it.a.Unit.Arrays[lhs.Name]
	flops := it.flops[st]

	if arr == nil {
		// Scalar target: every processor computes the replicated value.
		v, perProc, err := it.evalOnAll(as.RHS)
		if err != nil {
			return err
		}
		it.scalars[lhs.Name] = v
		for p := 0; p < it.led.P; p++ {
			it.led.Compute(p, flops+perProc[p])
		}
		return nil
	}

	idx := make([]int, len(lhs.Subs))
	for i, sub := range lhs.Subs {
		if sub.Kind != ast.SubExpr {
			return fmt.Errorf("spmd: unscalarized section on LHS at %s", as.Pos)
		}
		x, err := it.evalInt(sub.X)
		if err != nil {
			return err
		}
		idx[i] = x
	}

	if arr.Dist == nil {
		// Replicated array: every processor computes and stores.
		v, perProc, err := it.evalOnAll(as.RHS)
		if err != nil {
			return err
		}
		it.mem.Write(lhs.Name, idx, v)
		for p := 0; p < it.led.P; p++ {
			it.led.Compute(p, flops+perProc[p])
		}
		return nil
	}

	// Owner-computes.
	owner := it.mem.Owner(lhs.Name, idx)
	v, extra, err := it.evalOn(owner, as.RHS)
	if err != nil {
		return err
	}
	it.mem.Write(lhs.Name, idx, v)
	it.led.Compute(owner, flops+extra)
	return nil
}

// evalOnAll evaluates a replicated expression on every processor,
// verifying agreement; it returns the value and per-processor extra
// flop counts (from reductions).
func (it *interp) evalOnAll(e ast.Expr) (float64, []int, error) {
	perProc := make([]int, it.led.P)
	var v0 float64
	for p := 0; p < it.led.P; p++ {
		v, extra, err := it.evalOn(p, e)
		if err != nil {
			return 0, nil, err
		}
		perProc[p] += extra
		if p == 0 {
			v0 = v
		} else if v != v0 && !(math.IsNaN(v) && math.IsNaN(v0)) {
			return 0, nil, fmt.Errorf("spmd: replicated computation diverged: %g vs %g", v0, v)
		}
	}
	return v0, perProc, nil
}

// evalOn evaluates an expression from one processor's point of view.
// extra counts the processor's share of reduction flops.
func (it *interp) evalOn(p int, e ast.Expr) (val float64, extra int, err error) {
	switch e := e.(type) {
	case *ast.NumLit:
		return e.Value, 0, nil
	case *ast.Ident:
		if v, ok := it.ienv[e.Name]; ok {
			return float64(v), 0, nil
		}
		if v, ok := it.scalars[e.Name]; ok {
			return v, 0, nil
		}
		return 0, 0, fmt.Errorf("spmd: unbound scalar %q", e.Name)
	case *ast.UnaryExpr:
		v, ex, err := it.evalOn(p, e.X)
		return -v, ex, err
	case *ast.BinExpr:
		x, ex1, err := it.evalOn(p, e.X)
		if err != nil {
			return 0, 0, err
		}
		y, ex2, err := it.evalOn(p, e.Y)
		if err != nil {
			return 0, 0, err
		}
		switch e.Op {
		case ast.Add:
			return x + y, ex1 + ex2, nil
		case ast.Sub_:
			return x - y, ex1 + ex2, nil
		case ast.Mul:
			return x * y, ex1 + ex2, nil
		case ast.Div:
			return x / y, ex1 + ex2, nil
		case ast.Pow:
			return math.Pow(x, y), ex1 + ex2, nil
		case ast.CmpLt:
			return b2f(x < y), ex1 + ex2, nil
		case ast.CmpGt:
			return b2f(x > y), ex1 + ex2, nil
		case ast.CmpLe:
			return b2f(x <= y), ex1 + ex2, nil
		case ast.CmpGe:
			return b2f(x >= y), ex1 + ex2, nil
		case ast.CmpEq:
			return b2f(x == y), ex1 + ex2, nil
		case ast.CmpNe:
			return b2f(x != y), ex1 + ex2, nil
		}
		return 0, 0, fmt.Errorf("spmd: bad operator %v", e.Op)
	case *ast.Ref:
		arr := it.a.Unit.Arrays[e.Name]
		if arr == nil {
			if v, ok := it.ienv[e.Name]; ok {
				return float64(v), 0, nil
			}
			return it.scalars[e.Name], 0, nil
		}
		idx := make([]int, len(e.Subs))
		for i, sub := range e.Subs {
			if sub.Kind != ast.SubExpr {
				return 0, 0, fmt.Errorf("spmd: section read outside SUM at %s", e.Pos)
			}
			x, err := it.evalInt(sub.X)
			if err != nil {
				return 0, 0, err
			}
			idx[i] = x
		}
		v, err := it.mem.Read(p, e.Name, idx)
		return v, 0, err
	case *ast.Call:
		if e.Func == "sum" {
			return it.evalSum(p, e)
		}
		args := make([]float64, len(e.Args))
		var extra int
		for i, a := range e.Args {
			v, ex, err := it.evalOn(p, a)
			if err != nil {
				return 0, 0, err
			}
			args[i] = v
			extra += ex
		}
		switch e.Func {
		case "sqrt":
			return math.Sqrt(args[0]), extra, nil
		case "abs":
			return math.Abs(args[0]), extra, nil
		case "exp":
			return math.Exp(args[0]), extra, nil
		case "min":
			return math.Min(args[0], args[1]), extra, nil
		case "max":
			return math.Max(args[0], args[1]), extra, nil
		case "mod":
			return math.Mod(args[0], args[1]), extra, nil
		}
		return 0, 0, fmt.Errorf("spmd: unknown intrinsic %q", e.Func)
	}
	return 0, 0, fmt.Errorf("spmd: cannot evaluate %T", e)
}

// evalSum evaluates SUM over an array section: partial sums are
// computed by the owners (charged to extra on processor p as its
// share) and the combine is charged by the reduction group.
func (it *interp) evalSum(p int, e *ast.Call) (float64, int, error) {
	if len(e.Args) != 1 {
		return 0, 0, fmt.Errorf("spmd: sum wants 1 argument")
	}
	ref, ok := e.Args[0].(*ast.Ref)
	if !ok {
		return 0, 0, fmt.Errorf("spmd: sum argument must be an array section")
	}
	arr := it.a.Unit.Arrays[ref.Name]
	if arr == nil {
		return 0, 0, fmt.Errorf("spmd: sum over non-array %q", ref.Name)
	}
	sec, err := it.concreteRefSection(ref)
	if err != nil {
		return 0, 0, err
	}
	if arr.Dist == nil {
		total := 0.0
		n := 0
		sec.Elems(func(idx []int) bool {
			v, _ := it.mem.Read(0, ref.Name, idx)
			total += v
			n++
			return true
		})
		return total, n, nil
	}
	total, counts := it.mem.SumSection(ref.Name, sec)
	return total, counts[p], nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (it *interp) evalCond(e ast.Expr) (bool, error) {
	v, _, err := it.evalOn(0, e)
	return v != 0, err
}

func (it *interp) evalInt(e ast.Expr) (int, error) {
	return it.a.Unit.EvalIntEnv(e, it.ienv)
}

// concreteRefSection resolves a (possibly sectioned) reference to a
// concrete section under the current loop environment.
func (it *interp) concreteRefSection(ref *ast.Ref) (sec sectionT, err error) {
	arr := it.a.Unit.Arrays[ref.Name]
	dims := make([]sectionDimT, arr.Rank())
	if len(ref.Subs) == 0 {
		for i := range dims {
			dims[i] = sectionDimT{Lo: arr.Lo[i], Hi: arr.Hi[i], Step: 1}
		}
		return sectionT{Dims: dims}, nil
	}
	for i, sub := range ref.Subs {
		if sub.Kind == ast.SubExpr {
			x, err := it.evalInt(sub.X)
			if err != nil {
				return sectionT{}, err
			}
			dims[i] = sectionDimT{Lo: x, Hi: x, Step: 1}
			continue
		}
		lo, hi, step := arr.Lo[i], arr.Hi[i], 1
		if sub.Lo != nil {
			if lo, err = it.evalInt(sub.Lo); err != nil {
				return sectionT{}, err
			}
		}
		if sub.Hi != nil {
			if hi, err = it.evalInt(sub.Hi); err != nil {
				return sectionT{}, err
			}
		}
		if sub.Step != nil {
			if step, err = it.evalInt(sub.Step); err != nil {
				return sectionT{}, err
			}
		}
		dims[i] = sectionDimT{Lo: lo, Hi: hi, Step: step}
	}
	return sectionT{Dims: dims}, nil
}

// ---------------------------------------------------------------------
// communication execution

func (it *interp) execComm(pos core.Position) error {
	groups := it.groupsAt[pos]
	if len(groups) == 0 {
		return nil
	}
	for _, g := range groups {
		it.barrier()
		msgs0, bytes0 := it.led.DynMessages, it.led.BytesMoved
		switch g.Kind {
		case core.KindShift:
			// One message per (src,dst) pair for the whole group: the
			// member strips are packed together.
			pairBytes := map[[2]int]int{}
			for _, e := range g.Entries {
				sec, ok := it.concreteEntrySection(e, pos)
				if !ok {
					continue
				}
				for pair, b := range it.mem.Shift(e.Array, sec, g.Map.GridDim, g.Map.Sign, g.Map.Width) {
					pairBytes[pair] += b
				}
			}
			for pair, b := range pairBytes {
				it.led.Message(pair[0], pair[1], b)
				it.prof.AddPair(pair[0], pair[1], int64(b))
			}
		case core.KindReduce:
			// Functionally the SUM statement computes the value; the
			// group charges one combined message of k partials.
			it.led.Reduce(len(g.Entries) * 8)
		case core.KindBcast, core.KindGeneral:
			bytes := 0
			for _, e := range g.Entries {
				sec, ok := it.concreteEntrySection(e, pos)
				if !ok {
					continue
				}
				bytes += it.mem.Broadcast(e.Array, sec)
			}
			it.led.Broadcast(bytes)
		}
		if it.prof != nil {
			it.prof.AddStep(fmt.Sprintf("group%d@%s", g.ID, g.Pos), g.Kind.String(),
				it.led.DynMessages-msgs0, int64(it.led.BytesMoved-bytes0))
		}
	}
	return nil
}

func (it *interp) concreteEntrySection(e *core.Entry, pos core.Position) (sectionT, bool) {
	sym := it.res.CommSection(e, pos.Level())
	env := map[string]int{}
	for k, v := range it.ienv {
		env[k] = v
	}
	sec, ok := sym.Concrete(env)
	if !ok {
		return sectionT{}, false
	}
	// Clip to the declared array bounds: vectorized subscript ranges
	// like i-1 over i=2..n already stay inside, but defensive clipping
	// keeps hulls in range.
	arr := it.a.Unit.Arrays[e.Array]
	return sec.Clip(arr.Lo, arr.Hi), true
}

// countFlops counts the floating-point operations of an expression,
// excluding integer subscript arithmetic (which compiled code strength-
// reduces away).
func countFlops(e ast.Expr) int {
	switch e := e.(type) {
	case *ast.BinExpr:
		return 1 + countFlops(e.X) + countFlops(e.Y)
	case *ast.UnaryExpr:
		return 1 + countFlops(e.X)
	case *ast.Call:
		n := 1
		for _, a := range e.Args {
			n += countFlops(a)
		}
		return n
	default:
		return 0 // literals, scalars, array refs (subscripts excluded)
	}
}

// VerifyAgainstSequential compares the canonical memory of a parallel
// run against a sequential (single-processor) run of the same
// analysis: it returns an error naming the first differing array
// element. Both runs must use placements of the same program.
func VerifyAgainstSequential(par, seq *RunResult) error {
	for _, name := range par.Mem.Unit.ArrayNames {
		pv := par.Mem.Canonical(name)
		sv := seq.Mem.Canonical(name)
		for i := range pv {
			if pv[i] != sv[i] && !(math.IsNaN(pv[i]) && math.IsNaN(sv[i])) {
				return fmt.Errorf("spmd: array %q differs at flat index %d: parallel %g vs sequential %g", name, i, pv[i], sv[i])
			}
		}
	}
	for k, v := range seq.Scalars {
		if pv, ok := par.Scalars[k]; ok && pv != v && !(math.IsNaN(pv) && math.IsNaN(v)) {
			return fmt.Errorf("spmd: scalar %q differs: parallel %g vs sequential %g", k, pv, v)
		}
	}
	return nil
}
