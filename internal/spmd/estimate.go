package spmd

import (
	"fmt"
	"math"

	"gcao/internal/ast"
	"gcao/internal/cfg"
	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/plan"
)

// Cost is the analytic per-processor cost estimate of one program
// under one placement: the CPU and network seconds that make up the
// paper's normalized stacked bars, plus dynamic message statistics.
type Cost struct {
	CPU      float64
	Net      float64
	Messages float64 // point-to-point messages received per processor
	Bytes    float64 // bytes received per processor
}

// Total returns the bulk-synchronous completion time estimate.
func (c Cost) Total() float64 { return c.CPU + c.Net }

// Estimate walks the program symbolically, multiplying statement and
// communication costs by loop trip counts instead of iterating, so
// paper-scale problems (gravity at n=325 is 34M points) are costed
// instantly. It assumes balanced block distributions, which holds for
// the paper's benchmarks.
func Estimate(res *core.Result, m machine.Machine) (Cost, error) {
	a := res.Analysis
	p := a.Unit.Grid.NumProcs()
	var cost Cost

	tripProduct := func(loops []*cfg.Loop) (float64, error) {
		prod := 1.0
		for _, l := range loops {
			t, ok := a.LoopTrip(l)
			if !ok {
				return 0, fmt.Errorf("spmd: loop %q has non-constant bounds", l.Var())
			}
			prod *= float64(t)
		}
		return prod, nil
	}

	// Computation: owner-computes spreads distributed-LHS statements
	// over the processors; replicated work is paid by everyone.
	for _, st := range a.G.Stmts {
		iters, err := tripProduct(st.Loops)
		if err != nil {
			return Cost{}, err
		}
		flops := float64(plan.CountFlops(st.Assign.RHS))
		// SUM over a section adds one flop per element, split across
		// owners.
		sumElems, err := sumSectionElems(a, st)
		if err != nil {
			return Cost{}, err
		}
		lhsArr := a.Unit.Arrays[st.Assign.LHS.Name]
		distributed := lhsArr != nil && lhsArr.Dist != nil
		perProcIters := iters
		if distributed {
			perProcIters = iters / float64(p)
		}
		cost.CPU += flops * perProcIters * m.FlopTime
		cost.CPU += float64(sumElems) * iters / float64(p) * m.FlopTime
	}

	// Communication.
	blockLoops := func(b *cfg.Block) []*cfg.Loop {
		var out []*cfg.Loop
		for l := b.Loop; l != nil; l = l.Parent {
			out = append(out, l)
		}
		return out
	}
	log2p := math.Ceil(math.Log2(float64(p)))
	if p == 1 {
		log2p = 0
	}
	for _, g := range res.Groups {
		execs, err := tripProduct(blockLoops(g.Pos.Block))
		if err != nil {
			return Cost{}, err
		}
		level := g.Pos.Level()
		switch g.Kind {
		case core.KindShift:
			bytes := 0
			for _, e := range g.Entries {
				b, ok := e.BytesForSection(a, res.CommSection(e, level))
				if !ok {
					continue
				}
				bytes += b
			}
			// Each exchange: one packed message in and one out per
			// processor (interior processors; boundaries do less).
			per := m.MsgTime(bytes) + 2*m.BcopyTime(bytes)
			cost.Net += execs * per
			cost.Messages += execs
			cost.Bytes += execs * float64(bytes)
		case core.KindReduce:
			bytes := len(g.Entries) * 8
			cost.Net += execs * m.ReduceTime(bytes, p)
			cost.Messages += execs * log2p
			cost.Bytes += execs * float64(bytes) * log2p
		case core.KindBcast, core.KindGeneral:
			bytes := 0
			for _, e := range g.Entries {
				if n, ok := res.CommSection(e, level).NumElems(); ok {
					bytes += n * 8
				}
			}
			cost.Net += execs * (log2p*m.MsgTime(0) + float64(bytes)*m.PerByte + 2*m.BcopyTime(bytes))
			cost.Messages += execs * log2p
			cost.Bytes += execs * float64(bytes)
		}
	}
	return cost, nil
}

// sumSectionElems returns the total element count summed over by SUM
// calls in the statement's RHS (0 when there is none).
func sumSectionElems(a *core.Analysis, st *cfg.Stmt) (int, error) {
	total := 0
	var walkErr error
	ast.WalkExprs(st.Assign.RHS, func(e ast.Expr) {
		c, ok := e.(*ast.Call)
		if !ok || c.Func != "sum" || len(c.Args) != 1 || walkErr != nil {
			return
		}
		ref, ok := c.Args[0].(*ast.Ref)
		if !ok {
			return
		}
		arr := a.Unit.Arrays[ref.Name]
		if arr == nil {
			return
		}
		n := 1
		if len(ref.Subs) == 0 {
			n = arr.Size()
		} else {
			for i, sub := range ref.Subs {
				if sub.Kind == ast.SubExpr {
					continue // one element per outer iteration
				}
				lo, hi, step := arr.Lo[i], arr.Hi[i], 1
				var err error
				if sub.Lo != nil {
					if lo, err = a.Unit.EvalInt(sub.Lo); err != nil {
						walkErr = err
						return
					}
				}
				if sub.Hi != nil {
					if hi, err = a.Unit.EvalInt(sub.Hi); err != nil {
						walkErr = err
						return
					}
				}
				if sub.Step != nil {
					if step, err = a.Unit.EvalInt(sub.Step); err != nil {
						walkErr = err
						return
					}
				}
				if hi >= lo {
					n *= (hi-lo)/step + 1
				}
			}
		}
		total += n
	})
	return total, walkErr
}

// NormalizedBars runs the three compiler versions over one analysis
// and returns their estimated costs normalized so the original
// version's total is 1.0 — the exact quantity plotted in Fig. 10(b–f).
type Bar struct {
	Version core.Version
	CPU     float64 // normalized CPU segment
	Net     float64 // normalized network segment
	Raw     Cost
}

// EstimateVersions places the program under orig, nored and comb and
// returns the three normalized bars.
func EstimateVersions(a *core.Analysis, m machine.Machine) ([]Bar, error) {
	versions := []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine}
	var bars []Bar
	var base float64
	for i, v := range versions {
		res, err := a.Place(core.Options{Version: v})
		if err != nil {
			return nil, err
		}
		c, err := Estimate(res, m)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = c.Total()
		}
		if base == 0 {
			base = 1
		}
		bars = append(bars, Bar{Version: v, CPU: c.CPU / base, Net: c.Net / base, Raw: c})
	}
	return bars, nil
}
