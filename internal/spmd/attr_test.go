package spmd

import (
	"reflect"
	"strings"
	"testing"

	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/obs"
	"gcao/internal/obs/attr"
)

// attrPair runs the same placement sequentially and with the given
// shard count and returns both attribution records.
func attrPair(t *testing.T, res *core.Result, procs, workers int) (seq, par *attr.Run) {
	t.Helper()
	m := machine.SP2()
	recSeq, recPar := obs.New(), obs.New()
	if _, err := RunParallelObs(res, m, procs, 1, recSeq); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if _, err := RunParallelObs(res, m, procs, workers, recPar); err != nil {
		t.Fatalf("parallel run (j=%d): %v", workers, err)
	}
	seq, par = recSeq.Attribution(), recPar.Attribution()
	if seq == nil || par == nil {
		t.Fatalf("j=%d: missing attribution record (seq %v, par %v)", workers, seq != nil, par != nil)
	}
	return seq, par
}

// TestAttributionMatchesSequential extends the engine's bit-identity
// contract to the attribution layer: per-superstep h-relation records,
// the analyzed report, and the rendered blame table must all be
// identical for every shard count, on every compiler version.
func TestAttributionMatchesSequential(t *testing.T) {
	const procs = 16
	params := map[string]int{"nx": 6, "ny": 13, "nz": 13, "steps": 3}
	a := compile(t, miniGravitySrc, params, procs)
	model := attr.DefaultCostModel()
	for _, v := range []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine} {
		res := placed(t, a, v)
		for _, workers := range []int{2, 3, 4, 7, procs} {
			seq, par := attrPair(t, res, procs, workers)
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s j=%d: attribution records differ:\nseq %+v\npar %+v", v, workers, seq, par)
				continue
			}
			seqRep, parRep := attr.Analyze(seq, model), attr.Analyze(par, model)
			if !reflect.DeepEqual(seqRep, parRep) {
				t.Errorf("%s j=%d: analyzed reports differ", v, workers)
			}
			if sb, pb := seqRep.FormatBlame(10), parRep.FormatBlame(10); sb != pb {
				t.Errorf("%s j=%d: blame tables differ:\nseq:\n%s\npar:\n%s", v, workers, sb, pb)
			}
		}
	}
}

// TestAttributionRecordShape sanity-checks the record itself: every
// superstep carries a site ID minted by the placer, h-relations are
// bounded by the step's total bytes, and step indices are dense.
func TestAttributionRecordShape(t *testing.T) {
	const procs = 16
	params := map[string]int{"nx": 6, "ny": 13, "nz": 13, "steps": 3}
	a := compile(t, miniGravitySrc, params, procs)
	res := placed(t, a, core.VersionCombine)
	run, _ := attrPair(t, res, procs, 4)
	if run.Version != "comb" || run.Procs != procs {
		t.Fatalf("run header = %q/%d", run.Version, run.Procs)
	}
	if len(run.Steps) == 0 {
		t.Fatal("no attribution supersteps recorded")
	}
	for i, s := range run.Steps {
		if s.Index != i {
			t.Errorf("step %d has index %d", i, s.Index)
		}
		if s.Site == "" || !strings.HasPrefix(s.Site, "comb/g") {
			t.Errorf("step %d: site %q not minted by the placer", i, s.Site)
		}
		if s.HIn > s.Bytes || s.HOut > s.Bytes {
			t.Errorf("step %d: h-relation (%d, %d) exceeds step bytes %d", i, s.HIn, s.HOut, s.Bytes)
		}
		if s.Bytes > 0 && s.H() == 0 {
			t.Errorf("step %d: moved %d bytes but h-relation is zero", i, s.Bytes)
		}
		if len(s.Arrays) == 0 {
			t.Errorf("step %d: no arrays recorded", i)
		}
	}
}

// TestBlameLinksToGreedyDecision is the acceptance criterion tying the
// three layers together: the top-blamed site of a simulated run must
// correspond to a placement the decision log shows the comb version's
// GreedyChoose selected (outcome "placed", same site ID, same group).
func TestBlameLinksToGreedyDecision(t *testing.T) {
	const procs = 16
	params := map[string]int{"nx": 6, "ny": 13, "nz": 13, "steps": 3}
	a := compile(t, miniGravitySrc, params, procs)
	rec := obs.New()
	a.Obs = rec
	res, err := a.Place(core.Options{Version: core.VersionCombine})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunParallelObs(res, machine.SP2(), procs, 4, rec); err != nil {
		t.Fatal(err)
	}
	rep := attr.Analyze(rec.Attribution(), attr.DefaultCostModel())
	if len(rep.Sites) == 0 {
		t.Fatal("no blamed sites")
	}
	top := rep.Sites[0]
	if top.CritSec <= 0 {
		t.Fatalf("top site %q contributes no critical-path cost", top.Site)
	}
	var match *obs.Decision
	for i, d := range rec.Decisions() {
		if d.Version == "comb" && d.Outcome == obs.OutcomePlaced && d.Site == top.Site {
			match = &rec.Decisions()[i]
			break
		}
	}
	if match == nil {
		t.Fatalf("top-blamed site %q has no placed decision in the log", top.Site)
	}
	// The site ID encodes the group the decision names, closing the
	// loop: blame → site → decision → group.
	var g *core.Group
	for _, cand := range res.Groups {
		if cand.SiteID == top.Site {
			g = cand
			break
		}
	}
	if g == nil {
		t.Fatalf("site %q not found among placed groups", top.Site)
	}
	if match.Group != g.ID || match.GroupPos != g.Pos.String() {
		t.Fatalf("decision names group %d@%s, site belongs to group %d@%s",
			match.Group, match.GroupPos, g.ID, g.Pos)
	}
	if len(top.Sources) == 0 {
		t.Errorf("top site %q carries no source blame", top.Site)
	}
}
