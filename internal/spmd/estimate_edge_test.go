package spmd

import (
	"math"
	"testing"

	"gcao/internal/core"
	"gcao/internal/machine"
)

// localSrc has only owner-local accesses: every reference is aligned
// with its LHS, so the analysis finds no communication entries.
const localSrc = `
routine lo(n)
real a(n, n)
!hpf$ distribute (block, block) :: a
do i = 1, n
do j = 1, n
a(i, j) = i + j
enddo
enddo
do i = 1, n
do j = 1, n
a(i, j) = a(i, j) * 2
enddo
enddo
end
`

// TestEstimateNoCommunication: a routine without communication entries
// must cost zero network time but nonzero CPU, under every version.
func TestEstimateNoCommunication(t *testing.T) {
	a := compile(t, localSrc, map[string]int{"n": 16}, 4)
	if got := len(a.CommEntries()); got != 0 {
		t.Fatalf("aligned routine has %d comm entries, want 0", got)
	}
	for _, v := range []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine} {
		res := placed(t, a, v)
		c, err := Estimate(res, machine.SP2())
		if err != nil {
			t.Fatal(err)
		}
		if c.Net != 0 || c.Messages != 0 || c.Bytes != 0 {
			t.Errorf("%v: comm-free routine costed net=%v msgs=%v bytes=%v, want all zero", v, c.Net, c.Messages, c.Bytes)
		}
		if c.CPU <= 0 {
			t.Errorf("%v: CPU = %v, want > 0", v, c.CPU)
		}
	}
}

// TestEstimateSingleProcessor: on one processor every section is
// local, so the estimate carries no payload bytes (placement still
// emits the exchange skeleton, so a fixed per-exchange overhead
// remains) and the functional run sends nothing at all.
func TestEstimateSingleProcessor(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 8, "steps": 1}, 1)
	res := placed(t, a, core.VersionCombine)
	c, err := Estimate(res, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if c.Bytes != 0 {
		t.Errorf("P=1 estimate moves %v payload bytes, want 0", c.Bytes)
	}
	if c.Net < 0 || math.IsNaN(c.Net) {
		t.Errorf("P=1 net = %v, want finite and non-negative", c.Net)
	}
	if c.CPU <= 0 {
		t.Errorf("P=1 CPU = %v, want > 0", c.CPU)
	}
	run, err := Run(res, machine.SP2(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.Ledger.DynMessages != 0 || run.Ledger.BytesMoved != 0 {
		t.Errorf("P=1 run moved %d messages / %d bytes, want none",
			run.Ledger.DynMessages, run.Ledger.BytesMoved)
	}
}

// TestEstimateComponentsNonNegative sweeps versions × machines over a
// communicating program: every cost component must be finite and
// non-negative, and Total must be their sum.
func TestEstimateComponentsNonNegative(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 16, "steps": 2}, 4)
	for _, m := range []machine.Machine{machine.SP2(), machine.NOW()} {
		for _, v := range []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine} {
			c, err := Estimate(placed(t, a, v), m)
			if err != nil {
				t.Fatal(err)
			}
			for name, x := range map[string]float64{"cpu": c.CPU, "net": c.Net, "messages": c.Messages, "bytes": c.Bytes} {
				if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
					t.Errorf("%s/%v: %s = %v", m.Name, v, name, x)
				}
			}
			if got := c.Total(); math.Abs(got-(c.CPU+c.Net)) > 1e-15 {
				t.Errorf("%s/%v: Total() = %v, want CPU+Net = %v", m.Name, v, got, c.CPU+c.Net)
			}
		}
	}
}

// TestEstimateVersionsBarsConsistent: the normalized bars must be the
// raw costs divided by the orig total — segment by segment, not just in
// aggregate — and orig must normalize to exactly 1.
func TestEstimateVersionsBarsConsistent(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 32, "steps": 2}, 4)
	bars, err := EstimateVersions(a, machine.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 3 {
		t.Fatalf("bars = %d, want 3", len(bars))
	}
	base := bars[0].Raw.Total()
	if base <= 0 {
		t.Fatalf("orig raw total = %v, want > 0", base)
	}
	if tot := bars[0].CPU + bars[0].Net; math.Abs(tot-1) > 1e-12 {
		t.Errorf("orig bar total = %v, want 1", tot)
	}
	for _, b := range bars {
		if math.Abs(b.CPU-b.Raw.CPU/base) > 1e-12 || math.Abs(b.Net-b.Raw.Net/base) > 1e-12 {
			t.Errorf("%v: bar (%v, %v) inconsistent with raw (%v, %v) / base %v",
				b.Version, b.CPU, b.Net, b.Raw.CPU, b.Raw.Net, base)
		}
		if b.CPU < 0 || b.Net < 0 {
			t.Errorf("%v: negative bar segment (%v, %v)", b.Version, b.CPU, b.Net)
		}
	}
}

// TestEstimateVersionsNoCommDegenerate: with zero communication the
// three bars are identical and still normalized against a positive
// base (the CPU-only total).
func TestEstimateVersionsNoCommDegenerate(t *testing.T) {
	a := compile(t, localSrc, map[string]int{"n": 16}, 4)
	bars, err := EstimateVersions(a, machine.NOW())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bars {
		if b.Net != 0 {
			t.Errorf("%v: net segment = %v, want 0", b.Version, b.Net)
		}
		if math.Abs(b.CPU-1) > 1e-12 {
			t.Errorf("%v: CPU segment = %v, want 1 (same work as orig)", b.Version, b.CPU)
		}
	}
}
