package spmd

import (
	"testing"

	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/obs"
)

// TestProfileMatchesLedger: the communication profile is an alternate
// accounting of the same run — its per-superstep totals must equal the
// ledger's global counts exactly, and the pair matrix must show real
// point-to-point traffic for a multi-processor stencil.
func TestProfileMatchesLedger(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 8, "steps": 2}, 4)
	rec := obs.New()
	a.Obs = rec
	res := placed(t, a, core.VersionCombine)
	run, err := Run(res, machine.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	prof := rec.CommProfile()
	if prof == nil {
		t.Fatal("run with a recorder produced no profile")
	}
	if prof.Procs != 4 {
		t.Errorf("profile procs = %d, want 4", prof.Procs)
	}
	if got := prof.TotalBytes(); got != int64(run.Ledger.BytesMoved) {
		t.Errorf("superstep bytes sum to %d, ledger moved %d", got, run.Ledger.BytesMoved)
	}
	if got := prof.TotalMessages(); got != run.Ledger.DynMessages {
		t.Errorf("superstep messages sum to %d, ledger counted %d", got, run.Ledger.DynMessages)
	}
	if len(prof.Steps) == 0 {
		t.Error("stencil run recorded no supersteps")
	}
	// Pair matrix: every shift byte is attributed to a sender→receiver
	// pair, so the matrix total matches the ledger too (the stencil has
	// no collectives).
	var pairTotal int64
	for _, row := range prof.PairBytes {
		for _, b := range row {
			pairTotal += b
		}
	}
	if pairTotal != int64(run.Ledger.BytesMoved) {
		t.Errorf("pair matrix sums to %d bytes, ledger moved %d", pairTotal, run.Ledger.BytesMoved)
	}
	if prof.MaxPairBytes() == 0 {
		t.Error("4-processor stencil must have point-to-point traffic")
	}
	// Time split: compute + comm + idle per processor, all non-negative,
	// and compute+comm+idle must equal the processor's elapsed clock.
	for p := 0; p < 4; p++ {
		if prof.ComputeSec[p] < 0 || prof.CommSec[p] < -1e-12 || prof.IdleSec[p] < 0 {
			t.Errorf("p%d: negative time split: compute=%v comm=%v idle=%v",
				p, prof.ComputeSec[p], prof.CommSec[p], prof.IdleSec[p])
		}
	}
	// Counters mirror the ledger.
	c := rec.Counters()
	if c["spmd.comb.messages"] != int64(run.Ledger.DynMessages) {
		t.Errorf("spmd.comb.messages = %d, want %d", c["spmd.comb.messages"], run.Ledger.DynMessages)
	}
	if c["spmd.comb.supersteps"] != int64(len(prof.Steps)) {
		t.Errorf("spmd.comb.supersteps = %d, want %d", c["spmd.comb.supersteps"], len(prof.Steps))
	}
}

// TestProfileDoesNotPerturbRun: the instrumented run must behave
// identically to the bare run — same messages, bytes, and elapsed time.
func TestProfileDoesNotPerturbRun(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 8, "steps": 1}, 4)
	res := placed(t, a, core.VersionCombine)
	bare, err := Run(res, machine.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	inst, err := RunObs(res, machine.SP2(), 4, rec)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Ledger.DynMessages != inst.Ledger.DynMessages ||
		bare.Ledger.BytesMoved != inst.Ledger.BytesMoved ||
		bare.Ledger.Barriers != inst.Ledger.Barriers ||
		bare.Ledger.ElapsedTime() != inst.Ledger.ElapsedTime() {
		t.Errorf("instrumented run differs: bare {msgs %d bytes %d barriers %d t %v}, instrumented {msgs %d bytes %d barriers %d t %v}",
			bare.Ledger.DynMessages, bare.Ledger.BytesMoved, bare.Ledger.Barriers, bare.Ledger.ElapsedTime(),
			inst.Ledger.DynMessages, inst.Ledger.BytesMoved, inst.Ledger.Barriers, inst.Ledger.ElapsedTime())
	}
	if err := VerifyAgainstSequential(bare, inst); err != nil {
		t.Errorf("instrumented run computed different values: %v", err)
	}
}

// TestProfileReductionSteps: collective operations appear in the
// superstep timeline (with tree-accounted bytes) even though they skip
// the point-to-point pair matrix.
func TestProfileReductionSteps(t *testing.T) {
	a := compile(t, reduceSrc, map[string]int{"n": 8}, 4)
	rec := obs.New()
	a.Obs = rec
	res := placed(t, a, core.VersionCombine)
	run, err := Run(res, machine.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	prof := rec.CommProfile()
	if prof == nil {
		t.Fatal("no profile")
	}
	sums := 0
	for _, s := range prof.Steps {
		if s.Kind == core.KindReduce.String() {
			sums++
			if s.Messages <= 0 || s.Bytes <= 0 {
				t.Errorf("reduction superstep %d has no traffic: %+v", s.Index, s)
			}
		}
	}
	if sums == 0 {
		t.Error("reduction run recorded no SUM supersteps")
	}
	if got := prof.TotalBytes(); got != int64(run.Ledger.BytesMoved) {
		t.Errorf("superstep bytes %d != ledger %d with collectives", got, run.Ledger.BytesMoved)
	}
}
