package spmd

import (
	"math"
	"reflect"
	"testing"

	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/obs"
)

// miniGravitySrc is a condensed gravity sweep: a 3-d (*,BLOCK,BLOCK)
// field swept plane by plane with NNC stencils, boundary SUM
// reductions feeding replicated scalars, a replicated-array write, and
// a branch over a distributed array — every rendezvous kind the
// sharded engine has.
const miniGravitySrc = `
routine mg(nx, ny, nz, steps)
real g(nx, ny, nz)
real glast(ny, nz), w(ny, nz)
real r(4)
real s1, s2, c
!hpf$ distribute (*, block, block) :: g
!hpf$ distribute (block, block) :: glast, w
c = 0.25
do j = 1, ny
do k = 1, nz
glast(j, k) = 0
w(j, k) = 0
do i = 1, nx
g(i, j, k) = 1.0 + mod(i + 2 * j + 3 * k, 7) * 0.125
enddo
enddo
enddo
do it = 1, steps
do i = 2, nx - 1
do j = 2, ny - 1
do k = 2, nz - 1
w(j, k) = g(i, j - 1, k) + g(i, j + 1, k) + g(i, j, k - 1) + g(i, j, k + 1) - 4 * g(i, j, k)
enddo
enddo
s1 = sum(g(i, ny, 1:nz))
s2 = sum(glast(1, 1:nz))
r(1) = s1 + s2
do j = 2, ny - 1
do k = 2, nz - 1
w(j, k) = w(j, k) + 0.001 * (s1 + s2) + 0.0001 * r(1)
enddo
enddo
if (g(2, 2, 2) > 0) then
do j = 2, ny - 1
do k = 2, nz - 1
glast(j, k) = g(i, j, k)
g(i, j, k) = g(i, j, k) + c * w(j, k)
enddo
enddo
endif
enddo
enddo
end
`

// runPair executes the same placement sequentially and with the given
// shard count, both profiled.
func runPair(t *testing.T, res *core.Result, procs, workers int) (seq, par *RunResult, seqProf, parProf *obs.CommProfile) {
	t.Helper()
	m := machine.SP2()
	recSeq, recPar := obs.New(), obs.New()
	seq, err := RunParallelObs(res, m, procs, 1, recSeq)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	par, err = RunParallelObs(res, m, procs, workers, recPar)
	if err != nil {
		t.Fatalf("parallel run (j=%d): %v", workers, err)
	}
	return seq, par, recSeq.CommProfile(), recPar.CommProfile()
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

// requireBitIdentical compares every observable of two runs exactly:
// ledger clocks and counters, canonical memory and per-processor raw
// rows (including ghost copies and validity), replicated scalars, and
// the communication profile.
func requireBitIdentical(t *testing.T, res *core.Result, workers int, seq, par *RunResult, seqProf, parProf *obs.CommProfile) {
	t.Helper()
	if !sameFloats(seq.Ledger.CPU, par.Ledger.CPU) {
		t.Errorf("j=%d: CPU clocks differ:\nseq %v\npar %v", workers, seq.Ledger.CPU, par.Ledger.CPU)
	}
	if !sameFloats(seq.Ledger.Net, par.Ledger.Net) {
		t.Errorf("j=%d: Net clocks differ:\nseq %v\npar %v", workers, seq.Ledger.Net, par.Ledger.Net)
	}
	if !reflect.DeepEqual(seq.Ledger.MsgsRecv, par.Ledger.MsgsRecv) {
		t.Errorf("j=%d: MsgsRecv differ: %v vs %v", workers, seq.Ledger.MsgsRecv, par.Ledger.MsgsRecv)
	}
	if seq.Ledger.DynMessages != par.Ledger.DynMessages ||
		seq.Ledger.BytesMoved != par.Ledger.BytesMoved ||
		seq.Ledger.Barriers != par.Ledger.Barriers {
		t.Errorf("j=%d: counters differ: msgs %d/%d bytes %d/%d barriers %d/%d", workers,
			seq.Ledger.DynMessages, par.Ledger.DynMessages,
			seq.Ledger.BytesMoved, par.Ledger.BytesMoved,
			seq.Ledger.Barriers, par.Ledger.Barriers)
	}
	if !reflect.DeepEqual(seq.Scalars, par.Scalars) {
		t.Errorf("j=%d: scalars differ: %v vs %v", workers, seq.Scalars, par.Scalars)
	}
	for _, name := range res.Analysis.Unit.ArrayNames {
		if !sameFloats(seq.Mem.Canonical(name), par.Mem.Canonical(name)) {
			t.Errorf("j=%d: canonical %s differs", workers, name)
		}
		vs, vp := seq.Mem.View(name), par.Mem.View(name)
		for p := range vs.Data {
			if !sameFloats(vs.Data[p], vp.Data[p]) {
				t.Errorf("j=%d: %s raw row for proc %d differs", workers, name, p)
			}
			if !reflect.DeepEqual(vs.Valid[p], vp.Valid[p]) {
				t.Errorf("j=%d: %s validity for proc %d differs", workers, name, p)
			}
		}
	}
	if seqProf == nil || parProf == nil {
		t.Fatalf("j=%d: missing comm profile (seq %v, par %v)", workers, seqProf != nil, parProf != nil)
	}
	if !reflect.DeepEqual(seqProf.PairBytes, parProf.PairBytes) ||
		!reflect.DeepEqual(seqProf.PairMsgs, parProf.PairMsgs) {
		t.Errorf("j=%d: pair matrices differ", workers)
	}
	if !reflect.DeepEqual(seqProf.Steps, parProf.Steps) {
		t.Errorf("j=%d: superstep timelines differ:\nseq %v\npar %v", workers, seqProf.Steps, parProf.Steps)
	}
	if !sameFloats(seqProf.ComputeSec, parProf.ComputeSec) ||
		!sameFloats(seqProf.CommSec, parProf.CommSec) ||
		!sameFloats(seqProf.IdleSec, parProf.IdleSec) {
		t.Errorf("j=%d: per-processor time splits differ", workers)
	}
}

// TestParallelMatchesSequential is the engine's contract: every shard
// count yields bit-identical results to the single-shard path, for
// every compiler version, on a program exercising every rendezvous.
func TestParallelMatchesSequential(t *testing.T) {
	const procs = 16
	params := map[string]int{"nx": 6, "ny": 13, "nz": 13, "steps": 3}
	a := compile(t, miniGravitySrc, params, procs)
	for _, v := range []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine} {
		res := placed(t, a, v)
		for _, workers := range []int{2, 3, 4, 7, procs} {
			seq, par, seqProf, parProf := runPair(t, res, procs, workers)
			requireBitIdentical(t, res, workers, seq, par, seqProf, parProf)
		}
	}
}

// TestParallelMatchesSequentialStencil covers the 2-d (BLOCK,BLOCK)
// shape on an uneven shard split.
func TestParallelMatchesSequentialStencil(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 14, "steps": 2}, 9)
	for _, v := range []core.Version{core.VersionOrig, core.VersionCombine} {
		res := placed(t, a, v)
		for _, workers := range []int{2, 4, 5, 9} {
			seq, par, seqProf, parProf := runPair(t, res, 9, workers)
			requireBitIdentical(t, res, workers, seq, par, seqProf, parProf)
		}
	}
}

// TestParallelReduction pins the reduction path: replicated scalar
// results must agree across shard counts.
func TestParallelReduction(t *testing.T) {
	a := compile(t, reduceSrc, map[string]int{"n": 12}, 9)
	res := placed(t, a, core.VersionCombine)
	for _, workers := range []int{2, 3, 9} {
		_, par, _, _ := runPair(t, res, 9, workers)
		if par.Scalars["s1"] != 12 {
			t.Errorf("j=%d: s1 = %v, want 12", workers, par.Scalars["s1"])
		}
		if par.Scalars["s2"] != 144 {
			t.Errorf("j=%d: s2 = %v, want 144", workers, par.Scalars["s2"])
		}
	}
}

// TestParallelStaleReadDetected: validity tracking must survive
// sharding — a stripped placement still fails, on every shard count,
// without deadlocking the phaser.
func TestParallelStaleReadDetected(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 14, "steps": 1}, 9)
	res := placed(t, a, core.VersionCombine)
	res.Groups = nil
	for _, workers := range []int{1, 3, 9} {
		if _, err := RunParallelObs(res, machine.SP2(), 9, workers, nil); err == nil {
			t.Errorf("j=%d: run without communication must fail with a stale read", workers)
		}
	}
}

// TestAutoWorkers pins the sequential-path threshold.
func TestAutoWorkers(t *testing.T) {
	if w := autoWorkers(DefaultParallelThreshold - 1); w != 1 {
		t.Errorf("below threshold: %d workers, want 1", w)
	}
	if w := autoWorkers(1); w != 1 {
		t.Errorf("procs=1: %d workers, want 1", w)
	}
}
