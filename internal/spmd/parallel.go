package spmd

// The sharded execution engine. A run is executed by S worker shards
// over contiguous processor ranges; each shard redundantly walks the
// full control-flow graph with replicated integer bookkeeping and
// performs the per-processor work (evaluation, owner-computes stores,
// validity kills, ghost deliveries) only for its own range. Shards
// meet at a phaser rendezvous exactly where the BSP model requires
// agreement: communication groups (superstep barriers), statements
// that read owner rows across ranges (distributed SUM), shared-row
// writes (replicated arrays), and branch conditions over distributed
// data. The last shard to arrive runs the leader action — absorbing
// the range-scoped ledger views into the master ledger, charging
// message costs in sorted pair order, merging the shards' scratch
// communication profiles — so every master-side mutation has a single
// writer and a deterministic order, making results bit-identical to a
// single-shard run regardless of worker count.

import (
	"fmt"
	"math"
	goruntime "runtime"
	"sort"
	"sync"

	"gcao/internal/ast"
	"gcao/internal/cfg"
	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/obs"
	"gcao/internal/obs/attr"
	"gcao/internal/plan"
	"gcao/internal/runtime"
)

// DefaultParallelThreshold is the processor count below which Run
// stays on a single shard: the rendezvous overhead only pays off when
// enough per-processor work exists between barriers.
const DefaultParallelThreshold = 8

// Run executes the program under the given placement on p processors.
// When the analysis carries an obs recorder, the run is profiled:
// sender→receiver traffic, the per-superstep timeline, and the
// per-processor compute/communication/idle split. The per-processor
// loops are sharded over min(GOMAXPROCS, procs) workers when procs
// reaches DefaultParallelThreshold; results are bit-identical either
// way.
func Run(res *core.Result, m machine.Machine, procs int) (*RunResult, error) {
	return RunObs(res, m, procs, res.Analysis.Obs)
}

// RunObs is Run with an explicit recorder (which may be nil to
// disable profiling even when the analysis has one).
func RunObs(res *core.Result, m machine.Machine, procs int, rec *obs.Recorder) (*RunResult, error) {
	return RunParallelObs(res, m, procs, autoWorkers(procs), rec)
}

// RunParallel is Run with an explicit shard count: workers=1 forces
// the sequential path, workers<=0 selects GOMAXPROCS. The worker
// count never changes the result bits, only the wall clock.
func RunParallel(res *core.Result, m machine.Machine, procs, workers int) (*RunResult, error) {
	return RunParallelObs(res, m, procs, workers, res.Analysis.Obs)
}

func autoWorkers(procs int) int {
	if procs < DefaultParallelThreshold {
		return 1
	}
	w := goruntime.GOMAXPROCS(0)
	if w > procs {
		w = procs
	}
	return w
}

// RunParallelObs is the full-control entry point: explicit shard
// count and explicit recorder.
func RunParallelObs(res *core.Result, m machine.Machine, procs, workers int, rec *obs.Recorder) (*RunResult, error) {
	a := res.Analysis
	if got := a.Unit.Grid.NumProcs(); got != procs {
		return nil, fmt.Errorf("spmd: unit compiled for %d processors, run requested %d", got, procs)
	}
	if workers < 1 {
		workers = goruntime.GOMAXPROCS(0)
	}
	if workers > procs {
		workers = procs
	}
	endRun := rec.Start("simulate:" + res.Version.String())
	defer endRun()

	mem := runtime.NewMemory(a.Unit, procs)
	eng := &engine{
		pl:           plan.New(res, mem),
		mem:          mem,
		led:          runtime.NewLedger(procs, m),
		ph:           newPhaser(workers),
		syncVals:     make([]float64, workers),
		syncHas:      make([]bool, workers),
		shardErrs:    make([]error, workers),
		pairsByShard: make([]map[[2]int]int, workers),
		bcastBytes:   make([]int, workers),
	}
	if rec != nil {
		eng.prof = obs.NewCommProfile(procs)
		eng.idle = make([]float64, procs)
		eng.attrRun = &attr.Run{Version: res.Version.String(), Procs: procs}
		eng.attrScr = make([]*attr.Scratch, workers)
		for i := range eng.attrScr {
			eng.attrScr[i] = attr.NewScratch(procs)
		}
	}
	eng.shards = make([]*shard, workers)
	for i := range eng.shards {
		lo := i * procs / workers
		hi := (i + 1) * procs / workers
		sh := &shard{
			eng:     eng,
			idx:     i,
			lo:      lo,
			hi:      hi,
			ienv:    map[string]int{},
			scalars: map[string]float64{},
			frames:  map[*cfg.Loop]*frame{},
			led:     eng.led.View(lo, hi),
			sumMemo: map[*ast.Call]sumEntry{},
		}
		for name, v := range a.Unit.Params {
			sh.scalars[name] = float64(v)
		}
		if rec != nil {
			sh.prof = obs.NewCommProfile(procs)
		}
		eng.shards[i] = sh
	}

	var wg sync.WaitGroup
	for _, sh := range eng.shards[1:] {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.main()
		}(sh)
	}
	eng.shards[0].main()
	wg.Wait()
	if err := eng.ph.error(); err != nil {
		return nil, err
	}
	if eng.prof != nil {
		eng.finishProfile(rec)
	}
	return &RunResult{Ledger: eng.led, Mem: eng.mem, Scalars: eng.shards[0].scalars}, nil
}

// main runs one shard to completion: the CFG walk, then the final
// rendezvous that folds the shard state into the master ledger and
// profile (mirroring the sequential engine's trailing barrier).
func (sh *shard) main() {
	if err := sh.run(); err != nil {
		sh.eng.ph.fail(err)
		return
	}
	eng := sh.eng
	eng.ph.await(token{kind: tkDone}, func() error {
		eng.absorbLedgers()
		if err := eng.checkScalarAgreement(); err != nil {
			return err
		}
		eng.masterBarrier()
		eng.mergeProfiles()
		return nil
	})
}

// ---------------------------------------------------------------------
// engine: shared run state and rendezvous scratch

type engine struct {
	pl     *plan.Plan
	mem    *runtime.Memory
	led    *runtime.Ledger
	ph     *phaser
	shards []*shard

	// prof and idle are the master communication profile of this run,
	// built only when a recorder is attached (both nil otherwise).
	prof *obs.CommProfile
	idle []float64

	// attrRun is the cost-attribution record (one h-relation Step per
	// superstep, appended by the rendezvous-B leader); attrScr holds
	// one shard-local h-relation scratch per shard, folded by the
	// leader in shard-index order. Both nil without a recorder.
	attrRun *attr.Run
	attrScr []*attr.Scratch

	// Rendezvous scratch. Each field is written either by the single
	// rendezvous leader while all other shards are parked in the
	// phaser, or by exactly one shard at its own index during a
	// parallel phase; it is read only on the far side of the next
	// rendezvous, whose mutex publishes the writes.
	condVal      bool
	syncVals     []float64
	syncHas      []bool
	syncResult   float64
	shardErrs    []error
	pairsByShard []map[[2]int]int
	bcastBytes   []int
	secs         []sectionT
	secOK        []bool
	msgs0        int
	bytes0       int
}

// absorbLedgers folds every shard's range-scoped CPU clocks into the
// master ledger (an idempotent snapshot copy).
func (eng *engine) absorbLedgers() {
	for _, sh := range eng.shards {
		eng.led.Absorb(sh.led)
	}
}

// masterBarrier synchronizes the master ledger clocks, first crediting
// each processor's wait below the slowest clock to the profile's idle
// account (the ledger itself charges that slack to Net).
func (eng *engine) masterBarrier() {
	if eng.idle != nil {
		maxT := 0.0
		for p := 0; p < eng.led.P; p++ {
			if t := eng.led.CPU[p] + eng.led.Net[p]; t > maxT {
				maxT = t
			}
		}
		for p := 0; p < eng.led.P; p++ {
			eng.idle[p] += maxT - (eng.led.CPU[p] + eng.led.Net[p])
		}
	}
	eng.led.Barrier()
}

// checkScalarAgreement verifies that the shards' replicated scalar
// environments have not diverged — the cross-shard completion of the
// per-range agreement check in evalRange.
func (eng *engine) checkScalarAgreement() error {
	s0 := eng.shards[0].scalars
	for _, sh := range eng.shards[1:] {
		for k, v0 := range s0 {
			if v := sh.scalars[k]; v != v0 && !(math.IsNaN(v) && math.IsNaN(v0)) {
				return fmt.Errorf("spmd: replicated scalar %q diverged across shards: %g vs %g", k, v0, v)
			}
		}
	}
	return nil
}

// mergeProfiles folds each shard's scratch pair matrix into the
// master profile and resets the scratch. Pairs are integer sums over
// disjoint receiver ranges, so the merged matrix is bit-identical to
// the single-shard one.
func (eng *engine) mergeProfiles() {
	if eng.prof == nil {
		return
	}
	for _, sh := range eng.shards {
		eng.prof.Merge(sh.prof)
		for i := range sh.prof.PairBytes {
			for j := range sh.prof.PairBytes[i] {
				sh.prof.PairBytes[i][j] = 0
				sh.prof.PairMsgs[i][j] = 0
			}
		}
	}
}

// addAttrStep appends the finished superstep's h-relation record to
// the attribution run. Runs only in the rendezvous-B leader (single
// writer, superstep order), so the step stream is deterministic. For
// shift groups the shard-local scratches are folded in shard-index
// order — integer sums over disjoint receiver ranges, so the fold is
// bit-identical for any worker count; collectives charge the same
// full-section payload on every processor, so the ledger byte delta
// is the h-relation directly.
func (eng *engine) addAttrStep(g *core.Group) {
	st := attr.Step{
		Index:    len(eng.attrRun.Steps),
		Site:     g.SiteID,
		Kind:     g.Kind.String(),
		Label:    fmt.Sprintf("group%d@%s", g.ID, g.Pos),
		Sources:  g.Sources,
		Messages: eng.led.DynMessages - eng.msgs0,
		Bytes:    int64(eng.led.BytesMoved - eng.bytes0),
	}
	seen := map[string]bool{}
	for _, e := range g.Entries {
		if !seen[e.Array] {
			seen[e.Array] = true
			st.Arrays = append(st.Arrays, e.Array)
		}
	}
	sort.Strings(st.Arrays)
	switch g.Kind {
	case core.KindShift:
		acc := eng.attrScr[0]
		for _, scr := range eng.attrScr[1:] {
			scr.MergeInto(acc)
		}
		st.HIn, st.HOut = acc.MaxInOut()
		for _, scr := range eng.attrScr {
			scr.Reset()
		}
	default:
		st.HIn, st.HOut = st.Bytes, st.Bytes
	}
	eng.attrRun.Steps = append(eng.attrRun.Steps, st)
}

// firstShardError returns the lowest-indexed shard's recorded error,
// so failure reporting is deterministic (the lowest shard owns the
// lowest processors, matching the sequential engine's first-failing-
// processor order).
func (eng *engine) firstShardError() error {
	for _, err := range eng.shardErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// finishProfile fills the per-processor time split, installs the
// profile, and bumps the run counters. The version-prefixed counters
// let several runs (orig vs comb) share one recorder.
func (eng *engine) finishProfile(rec *obs.Recorder) {
	compute := make([]float64, eng.led.P)
	comm := make([]float64, eng.led.P)
	for p := 0; p < eng.led.P; p++ {
		compute[p] = eng.led.CPU[p]
		comm[p] = eng.led.Net[p] - eng.idle[p]
	}
	eng.prof.ComputeSec = compute
	eng.prof.CommSec = comm
	eng.prof.IdleSec = append([]float64(nil), eng.idle...)
	rec.SetProfile(eng.prof)
	rec.SetAttribution(eng.attrRun)
	prefix := "spmd." + eng.pl.Res.Version.String() + "."
	rec.Add(prefix+"supersteps", int64(len(eng.prof.Steps)))
	rec.Add(prefix+"messages", int64(eng.led.DynMessages))
	rec.Add(prefix+"bytes", int64(eng.led.BytesMoved))
	rec.Add(prefix+"barriers", int64(eng.led.Barriers))
	rec.Event(obs.LevelInfo, "simulate.done",
		obs.F("version", eng.pl.Res.Version.String()),
		obs.F("procs", eng.led.P),
		obs.F("messages", eng.led.DynMessages),
		obs.F("bytes", eng.led.BytesMoved),
		obs.F("barriers", eng.led.Barriers))
}

// ---------------------------------------------------------------------
// communication execution (superstep rendezvous)

// execComm executes the communication groups placed at one position.
// Each group is one superstep: rendezvous A quiesces the shards,
// absorbs the shard clocks, runs the barrier and concretizes the
// entry sections once; the shards then deliver the elements whose
// receivers fall in their own ranges concurrently; rendezvous B
// merges the per-shard pair maps and charges the master ledger in
// sorted pair order, so the charge order — and with it every float
// accumulation — is reproducible run-to-run.
func (sh *shard) execComm(groups []*core.Group) error {
	if len(groups) == 0 {
		return nil
	}
	eng := sh.eng
	for _, g := range groups {
		g := g
		err := eng.ph.await(token{kind: tkCommA, a: g.ID}, func() error {
			eng.absorbLedgers()
			if err := eng.checkScalarAgreement(); err != nil {
				return err
			}
			eng.masterBarrier()
			eng.msgs0, eng.bytes0 = eng.led.DynMessages, eng.led.BytesMoved
			eng.secs = make([]sectionT, len(g.Entries))
			eng.secOK = make([]bool, len(g.Entries))
			for i, e := range g.Entries {
				eng.secs[i], eng.secOK[i] = eng.pl.ConcreteEntrySection(e, g.Pos, sh.ienv)
			}
			if g.Kind == core.KindReduce {
				// Functionally the SUM statement computes the value; the
				// group charges one combined message of k partials.
				eng.led.Reduce(len(g.Entries) * 8)
			}
			return nil
		})
		if err != nil {
			return err
		}

		switch g.Kind {
		case core.KindShift:
			// One message per (src,dst) pair for the whole group: the
			// member strips are packed together. This shard delivers
			// the strips whose receivers lie in its range.
			pairs := map[[2]int]int{}
			for i, e := range g.Entries {
				if !eng.secOK[i] {
					continue
				}
				for pair, b := range eng.mem.ShiftRange(e.Array, eng.secs[i], g.Map.GridDim, g.Map.Sign, g.Map.Width, sh.lo, sh.hi) {
					pairs[pair] += b
				}
			}
			eng.pairsByShard[sh.idx] = pairs
			for _, pair := range sortedPairs(pairs) {
				sh.prof.AddPair(pair[0], pair[1], int64(pairs[pair]))
			}
			if eng.attrScr != nil {
				// Shard-local h-relation accumulation: only deliveries
				// whose receivers fall in this shard's range are here,
				// so each delivery is counted exactly once run-wide.
				scr := eng.attrScr[sh.idx]
				for pair, b := range pairs {
					scr.AddPair(pair[0], pair[1], int64(b))
				}
			}
		case core.KindBcast, core.KindGeneral:
			bytes := 0
			for i, e := range g.Entries {
				if !eng.secOK[i] {
					continue
				}
				bytes += eng.mem.BroadcastRange(e.Array, eng.secs[i], sh.lo, sh.hi)
			}
			eng.bcastBytes[sh.idx] = bytes
		}

		err = eng.ph.await(token{kind: tkCommB, a: g.ID}, func() error {
			switch g.Kind {
			case core.KindShift:
				merged := map[[2]int]int{}
				for s := range eng.pairsByShard {
					for pair, b := range eng.pairsByShard[s] {
						merged[pair] += b
					}
					eng.pairsByShard[s] = nil
				}
				for _, pair := range sortedPairs(merged) {
					eng.led.Message(pair[0], pair[1], merged[pair])
				}
			case core.KindBcast, core.KindGeneral:
				// Every shard observed the same full-section payload.
				eng.led.Broadcast(eng.bcastBytes[0])
			}
			eng.mergeProfiles()
			if eng.prof != nil {
				eng.prof.AddStep(fmt.Sprintf("group%d@%s", g.ID, g.Pos), g.Kind.String(),
					eng.led.DynMessages-eng.msgs0, int64(eng.led.BytesMoved-eng.bytes0))
			}
			if eng.attrRun != nil {
				eng.addAttrStep(g)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// sortedPairs returns the keys of a pair-byte map in (src, dst)
// order: the deterministic charge order for ledgers and profiles.
func sortedPairs(m map[[2]int]int) [][2]int {
	out := make([][2]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ---------------------------------------------------------------------
// phaser: the cyclic barrier the shards rendezvous on

// token identifies a rendezvous point; shards arriving at a barrier
// with different tokens have divergent control flow — an interpreter
// invariant violation surfaced as an error rather than a deadlock.
type token struct {
	kind byte
	a    int
}

const (
	tkStmtA byte = iota // sync statement: quiesce before evaluation
	tkStmtB             // sync statement: leader validates and writes
	tkCond              // branch condition over distributed data
	tkCommA             // superstep: barrier + section concretization
	tkCommB             // superstep: merge and charge traffic
	tkDone              // end of program: final barrier and merges
)

// phaser is a sync.Cond-based cyclic barrier with leader actions: the
// last shard to arrive runs the leader function while the others are
// parked, giving every master-side mutation a single writer. Errors
// are sticky — once a shard fails or a leader action errors, every
// current and future await returns the same error, unwinding all
// shards without deadlock.
type phaser struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
	tok     token
	err     error
}

func newPhaser(parties int) *phaser {
	ph := &phaser{parties: parties}
	ph.cond = sync.NewCond(&ph.mu)
	return ph
}

// await blocks until all parties arrive with the same token, then
// releases them together; the last arriver runs leader (if non-nil)
// first. Returns the phaser's sticky error, if any.
func (ph *phaser) await(t token, leader func() error) error {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	if ph.err != nil {
		return ph.err
	}
	if ph.arrived == 0 {
		ph.tok = t
	} else if ph.tok != t {
		ph.err = fmt.Errorf("spmd: shards diverged: rendezvous %v vs %v", ph.tok, t)
		ph.cond.Broadcast()
		return ph.err
	}
	ph.arrived++
	if ph.arrived == ph.parties {
		if leader != nil {
			if err := leader(); err != nil && ph.err == nil {
				ph.err = err
			}
		}
		ph.arrived = 0
		ph.gen++
		ph.cond.Broadcast()
		return ph.err
	}
	gen := ph.gen
	for ph.gen == gen && ph.err == nil {
		ph.cond.Wait()
	}
	return ph.err
}

// fail records a shard's failure outside a rendezvous and wakes every
// parked shard; the first error wins.
func (ph *phaser) fail(err error) {
	ph.mu.Lock()
	if ph.err == nil {
		ph.err = err
	}
	ph.cond.Broadcast()
	ph.mu.Unlock()
}

func (ph *phaser) error() error {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	return ph.err
}
