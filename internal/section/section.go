// Package section implements regular array section descriptors (RSDs):
// per-dimension triplets lo:hi:step describing rectangular, strided
// subsections of Fortran-style arrays. Sections are the "D" component of
// the Available Section Descriptors (ASDs) of Gupta, Schonberg and
// Srinivasan that the placement algorithm of Chakrabarti, Gupta and Choi
// (PLDI 1996) manipulates: redundancy elimination needs containment
// tests, and message combining needs approximate unions with a bounded
// blow-up check (the paper requires that |D1 ∪ D2|, as approximated by a
// single descriptor, not exceed |D1| + |D2| by more than a small
// constant).
//
// All bounds are inclusive, matching Fortran triplet notation. A
// dimension with Lo > Hi is empty, and a section with any empty
// dimension is empty.
package section

import (
	"fmt"
	"strings"
)

// Dim is a single dimension of a section: the triplet Lo:Hi:Step with
// inclusive bounds. Step must be >= 1 for non-empty dimensions.
type Dim struct {
	Lo, Hi, Step int
}

// Section is a rectangular, possibly strided array section. The zero
// value is the empty zero-dimensional section.
type Section struct {
	Dims []Dim
}

// New builds a section from dimension triplets.
func New(dims ...Dim) Section {
	return Section{Dims: dims}
}

// Whole returns the section covering an entire array with the given
// inclusive per-dimension bounds [lo[i], hi[i]].
func Whole(lo, hi []int) Section {
	if len(lo) != len(hi) {
		panic("section: Whole: mismatched bound ranks")
	}
	d := make([]Dim, len(lo))
	for i := range lo {
		d[i] = Dim{Lo: lo[i], Hi: hi[i], Step: 1}
	}
	return Section{Dims: d}
}

// Point returns the degenerate section holding a single element.
func Point(idx ...int) Section {
	d := make([]Dim, len(idx))
	for i, v := range idx {
		d[i] = Dim{Lo: v, Hi: v, Step: 1}
	}
	return Section{Dims: d}
}

// Rank reports the number of dimensions.
func (s Section) Rank() int { return len(s.Dims) }

// normDim canonicalizes one dimension: an empty range becomes the
// canonical empty dim, a single-point range gets Step 1, and Hi is
// clamped down to the last element actually reached by the stride.
func normDim(d Dim) Dim {
	if d.Step <= 0 {
		d.Step = 1
	}
	if d.Lo > d.Hi {
		return Dim{Lo: 1, Hi: 0, Step: 1}
	}
	n := (d.Hi - d.Lo) / d.Step
	d.Hi = d.Lo + n*d.Step
	if d.Lo == d.Hi {
		d.Step = 1
	}
	return d
}

// Normalize returns the canonical form of s: strides positive, Hi
// clamped to the last reached element, empty dims in canonical form.
func (s Section) Normalize() Section {
	out := Section{Dims: make([]Dim, len(s.Dims))}
	for i, d := range s.Dims {
		out.Dims[i] = normDim(d)
	}
	return out
}

// IsEmpty reports whether the section contains no elements. A rank-0
// section is considered empty.
func (s Section) IsEmpty() bool {
	if len(s.Dims) == 0 {
		return true
	}
	for _, d := range s.Dims {
		if d.Lo > d.Hi {
			return true
		}
	}
	return false
}

// NumElems returns the number of elements in the section.
func (s Section) NumElems() int {
	if s.IsEmpty() {
		return 0
	}
	n := 1
	for _, d := range s.Dims {
		dd := normDim(d)
		n *= (dd.Hi-dd.Lo)/dd.Step + 1
	}
	return n
}

// dimCount returns the element count of a single normalized dimension.
func dimCount(d Dim) int {
	if d.Lo > d.Hi {
		return 0
	}
	return (d.Hi-d.Lo)/d.Step + 1
}

// Equal reports whether s and t denote the same set of elements.
func (s Section) Equal(t Section) bool {
	if len(s.Dims) != len(t.Dims) {
		return false
	}
	if s.IsEmpty() && t.IsEmpty() {
		return true
	}
	if s.IsEmpty() != t.IsEmpty() {
		return false
	}
	sn, tn := s.Normalize(), t.Normalize()
	for i := range sn.Dims {
		if sn.Dims[i] != tn.Dims[i] {
			return false
		}
	}
	return true
}

// dimContains reports whether normalized dim a contains normalized dim b
// as sets of integers.
func dimContains(a, b Dim) bool {
	if b.Lo > b.Hi {
		return true
	}
	if a.Lo > a.Hi {
		return false
	}
	if b.Lo < a.Lo || b.Hi > a.Hi {
		return false
	}
	// Every point of b must be on a's lattice: b.Lo ≡ a.Lo (mod a.Step)
	// and b.Step a multiple of a.Step (unless b is a single point).
	if (b.Lo-a.Lo)%a.Step != 0 {
		return false
	}
	if dimCount(b) == 1 {
		return true
	}
	return b.Step%a.Step == 0
}

// Contains reports whether s ⊇ t elementwise. Sections of different
// rank are incomparable (returns false) unless t is empty.
func (s Section) Contains(t Section) bool {
	if t.IsEmpty() {
		return true
	}
	if len(s.Dims) != len(t.Dims) || s.IsEmpty() {
		return false
	}
	sn, tn := s.Normalize(), t.Normalize()
	for i := range sn.Dims {
		if !dimContains(sn.Dims[i], tn.Dims[i]) {
			return false
		}
	}
	return true
}

// gcd of two non-negative ints.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// dimIntersect intersects two normalized dims exactly when both strides
// are 1 or the lattices line up; otherwise it returns a conservative
// overapproximation flag. ok=false means the exact intersection is not
// representable as a single triplet and the returned dim overapproximates.
func dimIntersect(a, b Dim) (Dim, bool) {
	if a.Lo > a.Hi || b.Lo > b.Hi {
		return Dim{Lo: 1, Hi: 0, Step: 1}, true
	}
	lo := max(a.Lo, b.Lo)
	hi := min(a.Hi, b.Hi)
	if lo > hi {
		return Dim{Lo: 1, Hi: 0, Step: 1}, true
	}
	if a.Step == 1 && b.Step == 1 {
		return Dim{Lo: lo, Hi: hi, Step: 1}, true
	}
	// Solve x ≡ a.Lo (mod a.Step), x ≡ b.Lo (mod b.Step) by search over
	// one period; strides in compiler-generated sections are tiny.
	step := a.Step / gcd(a.Step, b.Step) * b.Step
	for x := lo; x < lo+step && x <= hi; x++ {
		if (x-a.Lo)%a.Step == 0 && (x-b.Lo)%b.Step == 0 {
			d := normDim(Dim{Lo: x, Hi: hi, Step: step})
			return d, true
		}
	}
	return Dim{Lo: 1, Hi: 0, Step: 1}, true
}

// Intersect returns the exact intersection of s and t when both have
// the same rank. For mismatched ranks it returns the empty section.
func (s Section) Intersect(t Section) Section {
	if len(s.Dims) != len(t.Dims) || s.IsEmpty() || t.IsEmpty() {
		return Section{Dims: []Dim{{Lo: 1, Hi: 0, Step: 1}}}
	}
	sn, tn := s.Normalize(), t.Normalize()
	out := Section{Dims: make([]Dim, len(sn.Dims))}
	for i := range sn.Dims {
		d, _ := dimIntersect(sn.Dims[i], tn.Dims[i])
		out.Dims[i] = d
	}
	return out.Normalize()
}

// Overlaps reports whether s ∩ t is non-empty.
func (s Section) Overlaps(t Section) bool {
	return !s.Intersect(t).IsEmpty()
}

// UnionBound returns the smallest single descriptor covering both s and
// t, together with the "blow-up": covered elements divided by
// |s| + |t| (>= 0.5 when s, t overlap fully; large when the hull covers
// many elements in neither section). The placement pass refuses to
// combine sections whose hull blows up past a small constant, exactly
// as required in §4.7 of the paper. Mismatched ranks return ok=false.
func (s Section) UnionBound(t Section) (hull Section, blowup float64, ok bool) {
	if len(s.Dims) != len(t.Dims) {
		return Section{}, 0, false
	}
	if s.IsEmpty() {
		return t.Normalize(), 1, true
	}
	if t.IsEmpty() {
		return s.Normalize(), 1, true
	}
	sn, tn := s.Normalize(), t.Normalize()
	out := Section{Dims: make([]Dim, len(sn.Dims))}
	for i := range sn.Dims {
		a, b := sn.Dims[i], tn.Dims[i]
		lo := min(a.Lo, b.Lo)
		hi := max(a.Hi, b.Hi)
		step := gcd(a.Step, b.Step)
		if step == 0 {
			step = 1
		}
		// The offsets of the two lattices must agree modulo the merged
		// step; otherwise fall back to step 1.
		if (a.Lo-b.Lo)%step != 0 {
			step = 1
		}
		out.Dims[i] = normDim(Dim{Lo: lo, Hi: hi, Step: step})
	}
	total := s.NumElems() + t.NumElems()
	if total == 0 {
		return out, 1, true
	}
	return out, float64(out.NumElems()) / float64(total), true
}

// Shift translates the section by the given per-dimension offsets.
func (s Section) Shift(off []int) Section {
	if len(off) != len(s.Dims) {
		panic(fmt.Sprintf("section: Shift: rank %d section with %d offsets", len(s.Dims), len(off)))
	}
	out := Section{Dims: make([]Dim, len(s.Dims))}
	for i, d := range s.Dims {
		out.Dims[i] = Dim{Lo: d.Lo + off[i], Hi: d.Hi + off[i], Step: d.Step}
	}
	return out
}

// Clip restricts the section to the box [lo, hi] (inclusive).
func (s Section) Clip(lo, hi []int) Section {
	if len(lo) != len(s.Dims) || len(hi) != len(s.Dims) {
		panic("section: Clip: rank mismatch")
	}
	box := Whole(lo, hi)
	return s.Intersect(box)
}

// String renders the section in Fortran triplet notation.
func (s Section) String() string {
	if len(s.Dims) == 0 {
		return "()"
	}
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range s.Dims {
		if i > 0 {
			b.WriteByte(',')
		}
		if d.Lo > d.Hi {
			b.WriteString("empty")
			continue
		}
		if d.Lo == d.Hi {
			fmt.Fprintf(&b, "%d", d.Lo)
			continue
		}
		fmt.Fprintf(&b, "%d:%d", d.Lo, d.Hi)
		if d.Step != 1 {
			fmt.Fprintf(&b, ":%d", d.Step)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Elems enumerates all element index vectors of the section in
// row-major order, calling f for each. f must not retain the slice.
// Enumeration stops early if f returns false.
func (s Section) Elems(f func(idx []int) bool) {
	if s.IsEmpty() {
		return
	}
	sn := s.Normalize()
	idx := make([]int, len(sn.Dims))
	for i, d := range sn.Dims {
		idx[i] = d.Lo
	}
	for {
		if !f(idx) {
			return
		}
		// Advance the last dimension fastest.
		k := len(idx) - 1
		for k >= 0 {
			idx[k] += sn.Dims[k].Step
			if idx[k] <= sn.Dims[k].Hi {
				break
			}
			idx[k] = sn.Dims[k].Lo
			k--
		}
		if k < 0 {
			return
		}
	}
}
