package section

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		in, want Dim
	}{
		{Dim{1, 10, 1}, Dim{1, 10, 1}},
		{Dim{1, 10, 3}, Dim{1, 10, 3}}, // 1,4,7,10 — hi reached exactly
		{Dim{1, 9, 3}, Dim{1, 7, 3}},   // clamp hi to last reached
		{Dim{5, 5, 7}, Dim{5, 5, 1}},   // single point gets unit step
		{Dim{10, 1, 1}, Dim{1, 0, 1}},  // empty canonicalizes
		{Dim{1, 10, 0}, Dim{1, 10, 1}}, // non-positive step repaired
		{Dim{3, 4, 2}, Dim{3, 3, 1}},   // stride overshoots: one point
	}
	for _, tc := range tests {
		got := New(tc.in).Normalize().Dims[0]
		if got != tc.want {
			t.Errorf("Normalize(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNumElems(t *testing.T) {
	tests := []struct {
		s    Section
		want int
	}{
		{New(Dim{1, 10, 1}), 10},
		{New(Dim{1, 10, 2}), 5},
		{New(Dim{1, 10, 3}), 4},
		{New(Dim{1, 10, 1}, Dim{1, 5, 2}), 30},
		{New(Dim{2, 1, 1}), 0},
		{Point(3, 4), 1},
		{Section{}, 0},
	}
	for _, tc := range tests {
		if got := tc.s.NumElems(); got != tc.want {
			t.Errorf("%v.NumElems() = %d, want %d", tc.s, got, tc.want)
		}
	}
}

func TestElemsMatchesNumElems(t *testing.T) {
	cases := []Section{
		New(Dim{1, 7, 2}),
		New(Dim{0, 5, 1}, Dim{2, 8, 3}),
		New(Dim{1, 1, 1}, Dim{1, 4, 1}, Dim{3, 9, 2}),
		New(Dim{5, 4, 1}),
	}
	for _, s := range cases {
		n := 0
		s.Elems(func([]int) bool { n++; return true })
		if n != s.NumElems() {
			t.Errorf("%v: enumerated %d, NumElems %d", s, n, s.NumElems())
		}
	}
}

func TestElemsEarlyStop(t *testing.T) {
	s := New(Dim{1, 100, 1})
	n := 0
	s.Elems(func([]int) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop after %d elems, want 5", n)
	}
}

// member reports brute-force membership of x in a normalized dim.
func member(d Dim, x int) bool {
	d = normDim(d)
	if x < d.Lo || x > d.Hi {
		return false
	}
	return (x-d.Lo)%d.Step == 0
}

func TestContainsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randDim := func() Dim {
		return Dim{Lo: rng.Intn(8), Hi: rng.Intn(16), Step: 1 + rng.Intn(4)}
	}
	for trial := 0; trial < 2000; trial++ {
		a, b := randDim(), randDim()
		got := dimContains(normDim(a), normDim(b))
		want := true
		for x := -2; x < 20; x++ {
			if member(b, x) && !member(a, x) {
				want = false
				break
			}
		}
		if got && !want {
			t.Fatalf("dimContains(%v, %v) = true but %v has points outside %v", a, b, b, a)
		}
		// The test may be conservative (false when true), but must be
		// exact for unit strides.
		if !got && want && normDim(a).Step == 1 && normDim(b).Step == 1 {
			t.Fatalf("dimContains(%v, %v) = false but containment holds with unit strides", a, b)
		}
	}
}

func TestIntersectBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	randDim := func() Dim {
		return Dim{Lo: rng.Intn(8), Hi: rng.Intn(16), Step: 1 + rng.Intn(4)}
	}
	for trial := 0; trial < 2000; trial++ {
		a, b := New(randDim()), New(randDim())
		got := a.Intersect(b)
		for x := -2; x < 20; x++ {
			inA := member(a.Dims[0], x)
			inB := member(b.Dims[0], x)
			inG := member(got.Dims[0], x)
			if (inA && inB) != inG {
				t.Fatalf("Intersect(%v, %v) = %v: x=%d inA=%v inB=%v inGot=%v", a, b, got, x, inA, inB, inG)
			}
		}
	}
}

func TestUnionBoundCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randSec := func() Section {
		return New(
			Dim{Lo: rng.Intn(6), Hi: rng.Intn(12), Step: 1 + rng.Intn(3)},
			Dim{Lo: rng.Intn(6), Hi: rng.Intn(12), Step: 1 + rng.Intn(3)},
		)
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randSec(), randSec()
		hull, blowup, ok := a.UnionBound(b)
		if !ok {
			t.Fatalf("UnionBound(%v, %v) not ok", a, b)
		}
		if !hull.Contains(a.Normalize()) && !a.IsEmpty() {
			// Contains may be conservative on strided lattices; verify
			// by brute force instead.
			a.Elems(func(idx []int) bool {
				if !pointIn(hull, idx) {
					t.Fatalf("hull %v of (%v, %v) misses %v", hull, a, b, idx)
				}
				return true
			})
		}
		b.Elems(func(idx []int) bool {
			if !pointIn(hull, idx) {
				t.Fatalf("hull %v of (%v, %v) misses %v", hull, a, b, idx)
			}
			return true
		})
		if !a.IsEmpty() && !b.IsEmpty() && blowup <= 0 {
			t.Fatalf("blowup %v not positive", blowup)
		}
	}
}

func pointIn(s Section, idx []int) bool {
	if len(idx) != len(s.Dims) {
		return false
	}
	for i, d := range s.Dims {
		if !member(d, idx[i]) {
			return false
		}
	}
	return true
}

func TestShiftClip(t *testing.T) {
	s := New(Dim{2, 9, 1}, Dim{1, 5, 2})
	sh := s.Shift([]int{-1, 2})
	want := New(Dim{1, 8, 1}, Dim{3, 7, 2})
	if !sh.Equal(want) {
		t.Errorf("Shift = %v, want %v", sh, want)
	}
	cl := sh.Clip([]int{2, 2}, []int{6, 6})
	if cl.Dims[0].Lo != 2 || cl.Dims[0].Hi != 6 {
		t.Errorf("Clip dim0 = %v", cl.Dims[0])
	}
	for _, d := range cl.Dims {
		if d.Lo < 2 || d.Hi > 6 {
			t.Errorf("Clip out of range: %v", cl)
		}
	}
}

func TestEqualQuick(t *testing.T) {
	// Equality must agree with mutual containment for unit strides.
	f := func(alo, ahi, blo, bhi uint8) bool {
		a := New(Dim{int(alo % 10), int(ahi % 20), 1})
		b := New(Dim{int(blo % 10), int(bhi % 20), 1})
		eq := a.Equal(b)
		mutual := a.Contains(b) && b.Contains(a)
		return eq == mutual
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOverlaps(t *testing.T) {
	a := New(Dim{1, 10, 2}) // odds
	b := New(Dim{2, 10, 2}) // evens
	if a.Overlaps(b) {
		t.Error("odd and even lattices must not overlap")
	}
	c := New(Dim{1, 10, 1})
	if !a.Overlaps(c) {
		t.Error("1:10:2 overlaps 1:10")
	}
}

func TestWholeAndPoint(t *testing.T) {
	w := Whole([]int{1, 0}, []int{4, 3})
	if w.NumElems() != 16 {
		t.Errorf("Whole elems = %d", w.NumElems())
	}
	p := Point(2, 2)
	if !w.Contains(p) {
		t.Error("whole should contain interior point")
	}
	if w.Contains(Point(5, 2)) {
		t.Error("whole should not contain out-of-range point")
	}
}
