package codegen

import (
	"strings"
	"testing"

	"gcao/internal/core"
	"gcao/internal/parser"
	"gcao/internal/sem"
)

func emit(t *testing.T, src string, params map[string]int, procs int, v core.Version) string {
	t.Helper()
	r, err := parser.ParseRoutine(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u, err := sem.Analyze(r, params, sem.Options{Procs: procs})
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	a, err := core.NewAnalysis(u)
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	res, err := a.Place(core.Options{Version: v})
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	return Emit(res)
}

const src = `
routine st(n)
real a(n, n), b(n, n)
real x
!hpf$ distribute (block, block) :: a, b
do i = 1, n
do j = 1, n
a(i, j) = i + j
enddo
enddo
if (x > 0) then
do i = 2, n
do j = 1, n
b(i, j) = a(i - 1, j)
enddo
enddo
endif
x = sum(a(1, 1:n))
end
`

func TestEmitStructure(t *testing.T) {
	out := emit(t, src, map[string]int{"n": 8}, 4, core.VersionCombine)
	for _, want := range []string{
		"do i = 1, n",
		"enddo",
		"if ((x > 0)) then",
		"endif",
		"COMM exchange shift[dim0-1]",
		"COMM global-sum reduce",
		"a(1,1:8)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	// The exchange must be printed before the consuming loop nest.
	commIdx := strings.Index(out, "COMM exchange")
	useIdx := strings.Index(out, "b(i,j) = a((i - 1),j)")
	if commIdx < 0 || useIdx < 0 || commIdx > useIdx {
		t.Errorf("exchange not emitted before its use:\n%s", out)
	}
	// Every statement of the routine appears.
	for _, want := range []string{"a(i,j) = (i + j)", "x = sum(a(1,1:n))"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing statement %q:\n%s", want, out)
		}
	}
}

func TestEmitCountsMatchPlacement(t *testing.T) {
	for _, v := range []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine} {
		out := emit(t, src, map[string]int{"n": 8}, 4, v)
		got := strings.Count(out, "COMM ")
		r, _ := parser.ParseRoutine(src)
		u, _ := sem.Analyze(r, map[string]int{"n": 8}, sem.Options{Procs: 4})
		a, _ := core.NewAnalysis(u)
		res, _ := a.Place(core.Options{Version: v})
		if got != res.TotalMessages() {
			t.Errorf("%v: %d COMM lines vs %d groups:\n%s", v, got, res.TotalMessages(), out)
		}
	}
}

func TestEmitElseBranch(t *testing.T) {
	src2 := `
routine br(n)
real a(n)
real x
if (x > 0) then
a(1) = 1
else
a(2) = 2
endif
end
`
	out := emit(t, src2, map[string]int{"n": 8}, 2, core.VersionCombine)
	if !strings.Contains(out, "else") {
		t.Errorf("else branch missing:\n%s", out)
	}
	if strings.Count(out, "a(1) = 1") != 1 || strings.Count(out, "a(2) = 2") != 1 {
		t.Errorf("branch statements wrong:\n%s", out)
	}
}

func TestEmitRedundantAnnotation(t *testing.T) {
	fig4 := `
routine fig4(n)
real a(n,n), b(n,n), c(n,n), d(n,n)
real cond
!hpf$ processors p(4)
!hpf$ distribute (block,*) :: a, b, c, d
b(1:n, 1:n:2) = 1
b(1:n, 2:n:2) = 2
if (cond > 0) then
a(1:n, 1:n) = 3
else
a(1:n, 1:n) = d(1:n, 1:n)
endif
do i = 2, n
do j = 1, n, 2
c(i, j) = a(i-1, j) + b(i-1, j)
enddo
do j = 1, n
c(i, j) = a(i-1, j) + b(i-1, j)
enddo
enddo
end
`
	out := emit(t, fig4, map[string]int{"n": 16}, 4, core.VersionCombine)
	if !strings.Contains(out, "subsumes redundant") {
		t.Errorf("redundancy annotation missing:\n%s", out)
	}
}
