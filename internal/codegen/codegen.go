// Package codegen renders a placed program as the annotated scalarized
// listing the paper's prototype emitted for hand compilation (Fig. 6:
// "Trace dump to listing file"): the scalarized statements interleaved
// with COMM pseudo-calls at their chosen positions, each naming the
// runtime operation, the mapping, the array sections moved, and the
// redundant references riding along. The listing doubles as this
// implementation's code generator output: the functional simulator in
// package spmd executes exactly the operation sequence printed here.
package codegen

import (
	"fmt"
	"sort"
	"strings"

	"gcao/internal/ast"
	"gcao/internal/cfg"
	"gcao/internal/core"
)

// Emit renders the annotated SPMD listing for a placement result.
func Emit(res *core.Result) string {
	e := &emitter{
		a:        res.Analysis,
		groupsAt: map[core.Position][]*core.Group{},
	}
	for _, g := range res.Groups {
		e.groupsAt[g.Pos] = append(e.groupsAt[g.Pos], g)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "! routine %s on %s, %s placement: %d communication operations\n",
		e.a.Unit.Routine.Name, e.a.Unit.Grid, res.Version, len(res.Groups))
	e.block(&b, e.a.G.EntryBlock, nil, 0)
	return b.String()
}

type emitter struct {
	a        *core.Analysis
	groupsAt map[core.Position][]*core.Group
	emitted  map[*cfg.Block]bool
}

// block walks the structured CFG in source order, emitting statements
// and the communication groups attached to each position.
func (e *emitter) block(b *strings.Builder, blk *cfg.Block, stop *cfg.Block, depth int) {
	if blk == nil || blk == stop {
		return
	}
	e.comm(b, core.Position{Block: blk, After: -1}, depth)
	for k, st := range blk.Stmts {
		e.stmt(b, st, depth)
		e.comm(b, core.Position{Block: blk, After: k}, depth)
	}
	switch {
	case blk.Branch != nil:
		fmt.Fprintf(b, "%sif (%s) then\n", indent(depth), ast.ExprString(blk.Branch.Cond))
		thenB, elseB := blk.Succs[0], blk.Succs[1]
		join := findJoin(thenB)
		e.block(b, thenB, join, depth+1)
		if elseB != join {
			fmt.Fprintf(b, "%selse\n", indent(depth))
			e.block(b, elseB, join, depth+1)
		}
		fmt.Fprintf(b, "%sendif\n", indent(depth))
		e.block(b, join, stop, depth)
	case blk.Kind == cfg.PreHeader:
		loop := e.loopOfPreheader(blk)
		step := ""
		if loop.Do.Step != nil {
			step = ", " + ast.ExprString(loop.Do.Step)
		}
		fmt.Fprintf(b, "%sdo %s = %s, %s%s\n", indent(depth), loop.Var(),
			ast.ExprString(loop.Do.Lo), ast.ExprString(loop.Do.Hi), step)
		// Header-top communication executes once per iteration.
		e.comm(b, core.Position{Block: loop.Header, After: -1}, depth+1)
		body := loop.Header.Succs[0]
		e.block(b, body, loop.Header, depth+1)
		fmt.Fprintf(b, "%senddo\n", indent(depth))
		e.block(b, loop.PostExit, stop, depth)
	case len(blk.Succs) > 0:
		e.block(b, blk.Succs[0], stop, depth)
	}
}

func (e *emitter) loopOfPreheader(blk *cfg.Block) *cfg.Loop {
	for _, l := range e.a.G.Loops {
		if l.PreHeader == blk {
			return l
		}
	}
	panic("codegen: preheader without loop")
}

// findJoin locates the join block that closes an if: the nearest
// common post-dominator approximated structurally — the first Join
// block reachable by following single successors from the then-entry.
func findJoin(thenB *cfg.Block) *cfg.Block {
	seen := map[*cfg.Block]bool{}
	blk := thenB
	for blk != nil && !seen[blk] {
		if blk.Kind == cfg.Join {
			return blk
		}
		seen[blk] = true
		if blk.Branch != nil {
			// Nested if: skip to its join first.
			blk = findJoin(blk.Succs[0])
			continue
		}
		switch blk.Kind {
		case cfg.PreHeader:
			// Skip over the whole loop via the zero-trip edge target.
			blk = blk.Succs[1]
		default:
			if len(blk.Succs) == 0 {
				return nil
			}
			blk = blk.Succs[0]
		}
	}
	return blk
}

func (e *emitter) stmt(b *strings.Builder, st *cfg.Stmt, depth int) {
	fmt.Fprintf(b, "%s%s = %s\n", indent(depth),
		ast.ExprString(st.Assign.LHS), ast.ExprString(st.Assign.RHS))
}

func (e *emitter) comm(b *strings.Builder, pos core.Position, depth int) {
	for _, g := range e.groupsAt[pos] {
		var parts []string
		for _, en := range g.Entries {
			parts = append(parts, fmt.Sprintf("%s%s", en.Array, en.SectionAt(e.a, pos.Level())))
		}
		sort.Strings(parts)
		line := fmt.Sprintf("%sCOMM %s %s {%s}", indent(depth), OpName(g), g.Map, strings.Join(parts, ", "))
		if g.SiteID != "" {
			line += fmt.Sprintf("  ! site %s", g.SiteID)
		}
		if len(g.Attached) > 0 {
			var rs []string
			for _, r := range g.Attached {
				rs = append(rs, r.Array)
			}
			sort.Strings(rs)
			line += fmt.Sprintf("  ! subsumes redundant {%s}", strings.Join(rs, ", "))
		}
		b.WriteString(line + "\n")
	}
}

// OpName is the listing vocabulary for a communication group: the
// runtime operation name a COMM pseudo-call prints. Execution backends
// label the operations they perform with the same names, so a native
// run's operation counts can be read against the emitted listing.
func OpName(g *core.Group) string {
	switch g.Kind {
	case core.KindShift:
		return "exchange"
	case core.KindReduce:
		return "global-sum"
	case core.KindBcast:
		return "broadcast"
	default:
		return "gather"
	}
}

func indent(depth int) string { return strings.Repeat("  ", depth) }
