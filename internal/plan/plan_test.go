package plan_test

import (
	"testing"

	"gcao/internal/bench"
	"gcao/internal/core"
	"gcao/internal/plan"
	"gcao/internal/runtime"
)

// TestPlanShape builds a plan for a placed benchmark and checks the
// indexes both backends rely on: every placed group is reachable
// through Comm, every statement has a recipe, and the per-block tables
// span the CFG.
func TestPlanShape(t *testing.T) {
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		t.Fatal(err)
	}
	a, err := pr.Compile(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Place(core.Options{Version: core.VersionCombine})
	if err != nil {
		t.Fatal(err)
	}
	mem := runtime.NewMemory(a.Unit, 4)
	pl := plan.New(res, mem)

	if pl.A != a || pl.Res != res {
		t.Fatal("plan does not reference its inputs")
	}
	nblocks := len(a.G.Blocks)
	if len(pl.Comm) != nblocks || len(pl.CondSync) != nblocks || len(pl.LoopOf) != nblocks {
		t.Fatalf("per-block tables sized %d/%d/%d, want %d",
			len(pl.Comm), len(pl.CondSync), len(pl.LoopOf), nblocks)
	}
	placed := 0
	for _, byPos := range pl.Comm {
		for _, groups := range byPos {
			placed += len(groups)
		}
	}
	if placed != len(res.Groups) {
		t.Fatalf("Comm indexes %d groups, placement has %d", placed, len(res.Groups))
	}
	stmts := 0
	for _, b := range a.G.Blocks {
		for _, st := range b.Stmts {
			stmts++
			if pl.Info[st] == nil {
				t.Fatalf("no recipe for statement in block %d", b.ID)
			}
		}
	}
	if stmts == 0 {
		t.Fatal("no statements walked")
	}
}

// TestCountFlops spot-checks the flop counter the estimator and both
// backends charge work with.
func TestCountFlops(t *testing.T) {
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		t.Fatal(err)
	}
	a, err := pr.Compile(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range a.G.Blocks {
		for _, st := range b.Stmts {
			if st.Assign != nil {
				total += plan.CountFlops(st.Assign.RHS)
			}
		}
	}
	if total == 0 {
		t.Fatal("counted zero flops over the shallow benchmark")
	}
}

// TestBuildTree checks the binomial-tree invariants the native
// collectives rely on, across powers of two, primes and composites:
// parent/child consistency, the DFS pre-order permutation with its
// inverse and subtree sizes, and the log-P depth bound.
func TestBuildTree(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 25, 64, 100} {
		tr := plan.BuildTree(procs)
		if tr.Procs != procs || len(tr.Order) != procs {
			t.Fatalf("P=%d: order has %d entries", procs, len(tr.Order))
		}
		if tr.Parent[0] != -1 {
			t.Fatalf("P=%d: root parent = %d", procs, tr.Parent[0])
		}
		seen := make([]bool, procs)
		for i, p := range tr.Order {
			if seen[p] {
				t.Fatalf("P=%d: %d appears twice in Order", procs, p)
			}
			seen[p] = true
			if tr.Pos[p] != i {
				t.Fatalf("P=%d: Pos[%d] = %d, want %d", procs, p, tr.Pos[p], i)
			}
		}
		for p := 1; p < procs; p++ {
			if want := p &^ (p & -p); tr.Parent[p] != want {
				t.Fatalf("P=%d: Parent[%d] = %d, want %d", procs, p, tr.Parent[p], want)
			}
		}
		for p := 0; p < procs; p++ {
			size := 1
			for i, c := range tr.Children[p] {
				if c <= p || c >= procs {
					t.Fatalf("P=%d: child %d of %d out of range", procs, c, p)
				}
				if i > 0 && c <= tr.Children[p][i-1] {
					t.Fatalf("P=%d: children of %d not ascending: %v", procs, p, tr.Children[p])
				}
				if tr.Parent[c] != p {
					t.Fatalf("P=%d: Parent[%d] = %d, want %d", procs, c, tr.Parent[c], p)
				}
				size += tr.SubSize[c]
			}
			if tr.SubSize[p] != size {
				t.Fatalf("P=%d: SubSize[%d] = %d, want %d", procs, p, tr.SubSize[p], size)
			}
			// A subtree is the node followed by its children's subtrees
			// contiguously; spot-check the slice starts at p.
			if sub := tr.Subtree(p); sub[0] != p || len(sub) != size {
				t.Fatalf("P=%d: Subtree(%d) = %v", procs, p, sub)
			}
		}
		logP := 0
		for 1<<logP < procs {
			logP++
		}
		if d := tr.Depth(); d > logP {
			t.Fatalf("P=%d: depth %d exceeds ceil(log2 P) = %d", procs, d, logP)
		}
	}
}
