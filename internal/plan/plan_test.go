package plan_test

import (
	"testing"

	"gcao/internal/bench"
	"gcao/internal/core"
	"gcao/internal/plan"
	"gcao/internal/runtime"
)

// TestPlanShape builds a plan for a placed benchmark and checks the
// indexes both backends rely on: every placed group is reachable
// through Comm, every statement has a recipe, and the per-block tables
// span the CFG.
func TestPlanShape(t *testing.T) {
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		t.Fatal(err)
	}
	a, err := pr.Compile(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Place(core.Options{Version: core.VersionCombine})
	if err != nil {
		t.Fatal(err)
	}
	mem := runtime.NewMemory(a.Unit, 4)
	pl := plan.New(res, mem)

	if pl.A != a || pl.Res != res {
		t.Fatal("plan does not reference its inputs")
	}
	nblocks := len(a.G.Blocks)
	if len(pl.Comm) != nblocks || len(pl.CondSync) != nblocks || len(pl.LoopOf) != nblocks {
		t.Fatalf("per-block tables sized %d/%d/%d, want %d",
			len(pl.Comm), len(pl.CondSync), len(pl.LoopOf), nblocks)
	}
	placed := 0
	for _, byPos := range pl.Comm {
		for _, groups := range byPos {
			placed += len(groups)
		}
	}
	if placed != len(res.Groups) {
		t.Fatalf("Comm indexes %d groups, placement has %d", placed, len(res.Groups))
	}
	stmts := 0
	for _, b := range a.G.Blocks {
		for _, st := range b.Stmts {
			stmts++
			if pl.Info[st] == nil {
				t.Fatalf("no recipe for statement in block %d", b.ID)
			}
		}
	}
	if stmts == 0 {
		t.Fatal("no statements walked")
	}
}

// TestCountFlops spot-checks the flop counter the estimator and both
// backends charge work with.
func TestCountFlops(t *testing.T) {
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		t.Fatal(err)
	}
	a, err := pr.Compile(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range a.G.Blocks {
		for _, st := range b.Stmts {
			if st.Assign != nil {
				total += plan.CountFlops(st.Assign.RHS)
			}
		}
	}
	if total == 0 {
		t.Fatal("counted zero flops over the shallow benchmark")
	}
}
