// Package plan precomputes the execution recipe shared by every
// backend that runs a placed program: the BSP simulator (package spmd)
// and the native goroutine backend (package native) both walk the same
// CFG, execute the same communication groups at the same positions,
// and resolve the same array references. Building that index once here
// keeps the backends' group/CFG walking logically identical — the
// bit-for-bit equivalence argument between them starts with "both
// executed the same Plan".
//
// A Plan is immutable after New and safe for concurrent readers.
package plan

import (
	"gcao/internal/asd"
	"gcao/internal/ast"
	"gcao/internal/cfg"
	"gcao/internal/core"
	"gcao/internal/runtime"
	"gcao/internal/section"
)

// StmtInfo is the precomputed execution recipe of one statement.
type StmtInfo struct {
	// Flops counts the statement's floating-point operations (see
	// CountFlops).
	Flops int
	// LHS is the resolved LHS array view, nil for scalar targets.
	LHS *runtime.ArrayMem
	// Sync marks statements that need cross-processor agreement before
	// the store: a replicated-array store (single shared row) or a SUM
	// over a distributed array (reads owner rows across processors).
	Sync bool
	// HasSum marks statements whose RHS contains any SUM, so
	// per-statement reduction memos are reset before evaluation.
	HasSum bool
	// DistSums lists the RHS's distributed SUM calls in WalkCalls
	// order — the statement-level collectives every processor must run
	// before evaluation, precomputed so backends never re-walk the
	// expression tree per execution.
	DistSums []SumCall
}

// SumCall is one distributed SUM collective: the call site, the summed
// reference, its resolved memory view, and a conservative element-count
// bound for sizing gather buffers once at setup.
type SumCall struct {
	Call  *ast.Call
	Ref   *ast.Ref
	Am    *runtime.ArrayMem
	Bound int
}

// Plan is the immutable per-run precomputation: communication groups
// indexed by block and statement position (instead of a map keyed by
// core.Position), per-statement recipes, resolved array views per AST
// reference, and the rendezvous requirements of branch conditions.
type Plan struct {
	A   *core.Analysis
	Res *core.Result
	// Comm[b.ID][k+1] lists the groups placed after statement k of
	// block b (index 0 is the block-top position After=-1), in
	// Res.Groups order.
	Comm [][][]*core.Group
	Info map[*cfg.Stmt]*StmtInfo
	// RefArr resolves array references to their memory views; scalar
	// references are absent.
	RefArr map[*ast.Ref]*runtime.ArrayMem
	// CondSync[b.ID] marks branch conditions that read distributed
	// data and therefore need cross-processor agreement on the taken
	// edge; CondSums[b.ID] lists the condition's distributed SUM
	// collectives in WalkCalls order.
	CondSync []bool
	CondSums [][]SumCall
	LoopOf   []*cfg.Loop // by preheader block ID
	// Tree is the binomial collective schedule for the run's processor
	// count: broadcasts, gathers, reductions and barriers follow its
	// parent/child edges for a log-P critical path.
	Tree *Tree
	// Bound maps each placed group to a conservative element-count
	// bound of its concretized payload (per processor pair), so backend
	// buffer capacities are decided once at setup, not per transfer.
	// The bound uses the symbolic section's constant element count when
	// it has one and degrades to the full declared array size otherwise.
	Bound map[*core.Group]int
	// symSec caches each placed entry's expanded symbolic section at
	// its group's level (see New); ConcreteEntrySection reads it.
	symSec map[*core.Entry]asd.SymSection
}

// New builds the plan for one placement over one memory image.
func New(res *core.Result, mem *runtime.Memory) *Plan {
	a := res.Analysis
	pl := &Plan{A: a, Res: res}
	n := len(a.G.Blocks)
	pl.Comm = make([][][]*core.Group, n)
	for _, b := range a.G.Blocks {
		pl.Comm[b.ID] = make([][]*core.Group, len(b.Stmts)+1)
	}
	for _, g := range res.Groups {
		b := g.Pos.Block
		pl.Comm[b.ID][g.Pos.After+1] = append(pl.Comm[b.ID][g.Pos.After+1], g)
	}
	pl.Info = make(map[*cfg.Stmt]*StmtInfo, len(a.G.Stmts))
	pl.RefArr = map[*ast.Ref]*runtime.ArrayMem{}
	resolve := func(e ast.Expr) {
		WalkRefs(e, func(r *ast.Ref) {
			if a.Unit.Arrays[r.Name] != nil {
				pl.RefArr[r] = mem.View(r.Name)
			}
		})
	}
	for _, st := range a.G.Stmts {
		si := &StmtInfo{Flops: CountFlops(st.Assign.RHS)}
		if arr := a.Unit.Arrays[st.Assign.LHS.Name]; arr != nil {
			si.LHS = mem.View(st.Assign.LHS.Name)
		}
		si.HasSum = ExprHasSum(st.Assign.RHS)
		si.Sync = (si.LHS != nil && si.LHS.Dist == nil) ||
			ExprHasDistributedSum(a, st.Assign.RHS)
		si.DistSums = pl.distSums(st.Assign.RHS, mem)
		pl.Info[st] = si
		resolve(st.Assign.RHS)
	}
	pl.CondSync = make([]bool, n)
	pl.CondSums = make([][]SumCall, n)
	pl.LoopOf = make([]*cfg.Loop, n)
	for _, b := range a.G.Blocks {
		if b.Branch != nil {
			pl.CondSync[b.ID] = ExprReadsDistributed(a, b.Branch.Cond)
			pl.CondSums[b.ID] = pl.distSums(b.Branch.Cond, mem)
			resolve(b.Branch.Cond)
		}
	}
	for _, l := range a.G.Loops {
		if l.PreHeader != nil {
			pl.LoopOf[l.PreHeader.ID] = l
		}
	}
	pl.Tree = BuildTree(mem.P)
	pl.Bound = make(map[*core.Group]int, len(res.Groups))
	pl.symSec = map[*core.Entry]asd.SymSection{}
	for _, g := range res.Groups {
		total := 0
		for _, e := range g.Entries {
			// Expanding the symbolic section (SectionAt) walks the
			// dependence forms and is by far the most allocation-heavy
			// step of entry concretization; it depends only on the
			// entry and its group's placement level, so it is done
			// exactly once here and the executors concretize from the
			// cache.
			sym := res.CommSection(e, g.Pos.Level())
			pl.symSec[e] = sym
			total += pl.entryBound(sym, a.Unit.Arrays[e.Array].Size())
		}
		pl.Bound[g] = total
	}
	return pl
}

// distSums collects the distributed SUM calls of an expression in
// WalkCalls order, with their references, memory views and gather
// bounds resolved once.
func (pl *Plan) distSums(e ast.Expr, mem *runtime.Memory) []SumCall {
	var out []SumCall
	WalkCalls(e, func(c *ast.Call) {
		if c.Func != "sum" || len(c.Args) != 1 {
			return
		}
		ref, ok := c.Args[0].(*ast.Ref)
		if !ok {
			return
		}
		if arr := pl.A.Unit.Arrays[ref.Name]; arr != nil && arr.Dist != nil {
			out = append(out, SumCall{Call: c, Ref: ref, Am: mem.View(ref.Name), Bound: arr.Size()})
		}
	})
	return out
}

// entryBound bounds one entry's concretized element count: the
// symbolic section's constant count when it has one (point dimensions
// count 1 even while symbolic), else the full declared array size —
// sections are clipped to the array bounds, so the fallback is sound.
func (pl *Plan) entryBound(sym asd.SymSection, arraySize int) int {
	if n, ok := sym.NumElems(); ok {
		return n
	}
	return arraySize
}

// Tree is a binomial collective tree over processors 0..Procs-1,
// rooted at processor 0: gathers ascend it, broadcasts and barrier
// releases descend it, giving every collective a ceil(log2 P) critical
// path instead of the O(P) star through the root. The shape is the
// classic binomial construction — the parent of p clears p's lowest
// set bit, the children of p are p+1, p+2, p+4, ... up to the next
// power of two (clipped to Procs) — which is defined for every P, not
// just powers of two.
//
// Gathered payloads concatenate in DFS pre-order: a node's own
// contribution followed by each child subtree's payload in child
// order. Order, Pos and SubSize let the root carve a received child
// buffer back into per-processor streams without any per-message
// headers: child c's buffer holds the contributions of
// Order[Pos[c] : Pos[c]+SubSize[c]], in that order.
type Tree struct {
	Procs    int
	Parent   []int   // Parent[p]; -1 for the root
	Children [][]int // in ascending processor order
	Order    []int   // DFS pre-order from the root
	Pos      []int   // Pos[p] = index of p in Order
	SubSize  []int   // SubSize[p] = size of p's subtree
}

// BuildTree constructs the binomial tree for procs processors.
func BuildTree(procs int) *Tree {
	t := &Tree{
		Procs:    procs,
		Parent:   make([]int, procs),
		Children: make([][]int, procs),
		Order:    make([]int, 0, procs),
		Pos:      make([]int, procs),
		SubSize:  make([]int, procs),
	}
	for p := 0; p < procs; p++ {
		if p == 0 {
			t.Parent[p] = -1
		} else {
			t.Parent[p] = p &^ (p & -p) // clear the lowest set bit
		}
		// Children are p + 2^k for 2^k below p's lowest set bit (every
		// power of two for the root), clipped to the processor count.
		lim := p & -p
		if p == 0 {
			lim = procs
		}
		for step := 1; step < lim && p+step < procs; step <<= 1 {
			t.Children[p] = append(t.Children[p], p+step)
		}
	}
	// DFS pre-order and subtree sizes, iteratively (procs can be large).
	type visit struct{ p, child int }
	stack := make([]visit, 0, 64)
	stack = append(stack, visit{0, 0})
	t.Pos[0] = 0
	t.Order = append(t.Order, 0)
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.child < len(t.Children[top.p]) {
			c := t.Children[top.p][top.child]
			top.child++
			t.Pos[c] = len(t.Order)
			t.Order = append(t.Order, c)
			stack = append(stack, visit{c, 0})
			continue
		}
		t.SubSize[top.p] = len(t.Order) - t.Pos[top.p]
		stack = stack[:len(stack)-1]
	}
	return t
}

// Subtree returns the processors of p's subtree in DFS pre-order — the
// concatenation order of p's gathered payload.
func (t *Tree) Subtree(p int) []int {
	return t.Order[t.Pos[p] : t.Pos[p]+t.SubSize[p]]
}

// Depth returns the length of the longest root-to-leaf edge path — the
// collective critical path in hops.
func (t *Tree) Depth() int {
	depth := make([]int, t.Procs)
	max := 0
	// Order is pre-order, so parents appear before children.
	for _, p := range t.Order {
		if t.Parent[p] >= 0 {
			depth[p] = depth[t.Parent[p]] + 1
			if depth[p] > max {
				max = depth[p]
			}
		}
	}
	return max
}

// WalkRefs visits every array/scalar reference of an expression,
// including references nested in subscript and section bounds.
func WalkRefs(e ast.Expr, f func(*ast.Ref)) {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		WalkRefs(e.X, f)
	case *ast.BinExpr:
		WalkRefs(e.X, f)
		WalkRefs(e.Y, f)
	case *ast.Call:
		for _, a := range e.Args {
			WalkRefs(a, f)
		}
	case *ast.Ref:
		f(e)
		for _, sub := range e.Subs {
			for _, x := range []ast.Expr{sub.X, sub.Lo, sub.Hi, sub.Step} {
				if x != nil {
					WalkRefs(x, f)
				}
			}
		}
	}
}

// WalkCalls visits every intrinsic call of an expression in evaluation
// order (a call before its arguments).
func WalkCalls(e ast.Expr, f func(*ast.Call)) {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		WalkCalls(e.X, f)
	case *ast.BinExpr:
		WalkCalls(e.X, f)
		WalkCalls(e.Y, f)
	case *ast.Call:
		f(e)
		for _, a := range e.Args {
			WalkCalls(a, f)
		}
	}
}

// ExprHasSum reports whether the expression contains any SUM call.
func ExprHasSum(e ast.Expr) bool {
	found := false
	WalkCalls(e, func(c *ast.Call) {
		if c.Func == "sum" {
			found = true
		}
	})
	return found
}

// ExprHasDistributedSum reports whether the expression sums a
// distributed array (the case that needs a cross-processor combine).
func ExprHasDistributedSum(a *core.Analysis, e ast.Expr) bool {
	found := false
	WalkCalls(e, func(c *ast.Call) {
		if c.Func != "sum" || len(c.Args) != 1 {
			return
		}
		if ref, ok := c.Args[0].(*ast.Ref); ok {
			if arr := a.Unit.Arrays[ref.Name]; arr != nil && arr.Dist != nil {
				found = true
			}
		}
	})
	return found
}

// ExprReadsDistributed reports whether the expression references any
// distributed array.
func ExprReadsDistributed(a *core.Analysis, e ast.Expr) bool {
	found := false
	WalkRefs(e, func(r *ast.Ref) {
		if arr := a.Unit.Arrays[r.Name]; arr != nil && arr.Dist != nil {
			found = true
		}
	})
	return found
}

// CountFlops counts the floating-point operations of an expression,
// excluding integer subscript arithmetic (which compiled code strength-
// reduces away).
func CountFlops(e ast.Expr) int {
	switch e := e.(type) {
	case *ast.BinExpr:
		return 1 + CountFlops(e.X) + CountFlops(e.Y)
	case *ast.UnaryExpr:
		return 1 + CountFlops(e.X)
	case *ast.Call:
		n := 1
		for _, a := range e.Args {
			n += CountFlops(a)
		}
		return n
	default:
		return 0 // literals, scalars, array refs (subscripts excluded)
	}
}

// ConcreteRefSection resolves a (possibly sectioned) reference to a
// concrete section under a loop environment.
func (pl *Plan) ConcreteRefSection(ref *ast.Ref, am *runtime.ArrayMem, ienv map[string]int) (sec section.Section, err error) {
	arr := am.Arr
	dims := make([]section.Dim, arr.Rank())
	if len(ref.Subs) == 0 {
		for i := range dims {
			dims[i] = section.Dim{Lo: arr.Lo[i], Hi: arr.Hi[i], Step: 1}
		}
		return section.Section{Dims: dims}, nil
	}
	for i, sub := range ref.Subs {
		if sub.Kind == ast.SubExpr {
			x, err := pl.A.Unit.EvalIntEnv(sub.X, ienv)
			if err != nil {
				return section.Section{}, err
			}
			dims[i] = section.Dim{Lo: x, Hi: x, Step: 1}
			continue
		}
		lo, hi, step := arr.Lo[i], arr.Hi[i], 1
		if sub.Lo != nil {
			if lo, err = pl.A.Unit.EvalIntEnv(sub.Lo, ienv); err != nil {
				return section.Section{}, err
			}
		}
		if sub.Hi != nil {
			if hi, err = pl.A.Unit.EvalIntEnv(sub.Hi, ienv); err != nil {
				return section.Section{}, err
			}
		}
		if sub.Step != nil {
			if step, err = pl.A.Unit.EvalIntEnv(sub.Step, ienv); err != nil {
				return section.Section{}, err
			}
		}
		dims[i] = section.Dim{Lo: lo, Hi: hi, Step: step}
	}
	return section.Section{Dims: dims}, nil
}

// ConcreteEntrySection concretizes one group entry's communicated
// section under a loop environment, clipped to the declared array
// bounds (vectorized subscript ranges like i-1 over i=2..n already
// stay inside, but defensive clipping keeps hulls in range).
func (pl *Plan) ConcreteEntrySection(e *core.Entry, pos core.Position, ienv map[string]int) (section.Section, bool) {
	// The symbolic section was expanded once at plan time (see New);
	// Concrete only reads the environment (lin.Form.Eval is pure), so
	// the caller's loop environment is passed through without the
	// per-call copy this hot path used to allocate.
	sym, ok := pl.symSec[e]
	if !ok {
		sym = pl.Res.CommSection(e, pos.Level())
	}
	sec, ok := sym.Concrete(ienv)
	if !ok {
		return section.Section{}, false
	}
	arr := pl.A.Unit.Arrays[e.Array]
	return sec.Clip(arr.Lo, arr.Hi), true
}
