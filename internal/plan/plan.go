// Package plan precomputes the execution recipe shared by every
// backend that runs a placed program: the BSP simulator (package spmd)
// and the native goroutine backend (package native) both walk the same
// CFG, execute the same communication groups at the same positions,
// and resolve the same array references. Building that index once here
// keeps the backends' group/CFG walking logically identical — the
// bit-for-bit equivalence argument between them starts with "both
// executed the same Plan".
//
// A Plan is immutable after New and safe for concurrent readers.
package plan

import (
	"gcao/internal/ast"
	"gcao/internal/cfg"
	"gcao/internal/core"
	"gcao/internal/runtime"
	"gcao/internal/section"
)

// StmtInfo is the precomputed execution recipe of one statement.
type StmtInfo struct {
	// Flops counts the statement's floating-point operations (see
	// CountFlops).
	Flops int
	// LHS is the resolved LHS array view, nil for scalar targets.
	LHS *runtime.ArrayMem
	// Sync marks statements that need cross-processor agreement before
	// the store: a replicated-array store (single shared row) or a SUM
	// over a distributed array (reads owner rows across processors).
	Sync bool
	// HasSum marks statements whose RHS contains any SUM, so
	// per-statement reduction memos are reset before evaluation.
	HasSum bool
}

// Plan is the immutable per-run precomputation: communication groups
// indexed by block and statement position (instead of a map keyed by
// core.Position), per-statement recipes, resolved array views per AST
// reference, and the rendezvous requirements of branch conditions.
type Plan struct {
	A   *core.Analysis
	Res *core.Result
	// Comm[b.ID][k+1] lists the groups placed after statement k of
	// block b (index 0 is the block-top position After=-1), in
	// Res.Groups order.
	Comm [][][]*core.Group
	Info map[*cfg.Stmt]*StmtInfo
	// RefArr resolves array references to their memory views; scalar
	// references are absent.
	RefArr map[*ast.Ref]*runtime.ArrayMem
	// CondSync[b.ID] marks branch conditions that read distributed
	// data and therefore need cross-processor agreement on the taken
	// edge.
	CondSync []bool
	LoopOf   []*cfg.Loop // by preheader block ID
}

// New builds the plan for one placement over one memory image.
func New(res *core.Result, mem *runtime.Memory) *Plan {
	a := res.Analysis
	pl := &Plan{A: a, Res: res}
	n := len(a.G.Blocks)
	pl.Comm = make([][][]*core.Group, n)
	for _, b := range a.G.Blocks {
		pl.Comm[b.ID] = make([][]*core.Group, len(b.Stmts)+1)
	}
	for _, g := range res.Groups {
		b := g.Pos.Block
		pl.Comm[b.ID][g.Pos.After+1] = append(pl.Comm[b.ID][g.Pos.After+1], g)
	}
	pl.Info = make(map[*cfg.Stmt]*StmtInfo, len(a.G.Stmts))
	pl.RefArr = map[*ast.Ref]*runtime.ArrayMem{}
	resolve := func(e ast.Expr) {
		WalkRefs(e, func(r *ast.Ref) {
			if a.Unit.Arrays[r.Name] != nil {
				pl.RefArr[r] = mem.View(r.Name)
			}
		})
	}
	for _, st := range a.G.Stmts {
		si := &StmtInfo{Flops: CountFlops(st.Assign.RHS)}
		if arr := a.Unit.Arrays[st.Assign.LHS.Name]; arr != nil {
			si.LHS = mem.View(st.Assign.LHS.Name)
		}
		si.HasSum = ExprHasSum(st.Assign.RHS)
		si.Sync = (si.LHS != nil && si.LHS.Dist == nil) ||
			ExprHasDistributedSum(a, st.Assign.RHS)
		pl.Info[st] = si
		resolve(st.Assign.RHS)
	}
	pl.CondSync = make([]bool, n)
	pl.LoopOf = make([]*cfg.Loop, n)
	for _, b := range a.G.Blocks {
		if b.Branch != nil {
			pl.CondSync[b.ID] = ExprReadsDistributed(a, b.Branch.Cond)
			resolve(b.Branch.Cond)
		}
	}
	for _, l := range a.G.Loops {
		if l.PreHeader != nil {
			pl.LoopOf[l.PreHeader.ID] = l
		}
	}
	return pl
}

// WalkRefs visits every array/scalar reference of an expression,
// including references nested in subscript and section bounds.
func WalkRefs(e ast.Expr, f func(*ast.Ref)) {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		WalkRefs(e.X, f)
	case *ast.BinExpr:
		WalkRefs(e.X, f)
		WalkRefs(e.Y, f)
	case *ast.Call:
		for _, a := range e.Args {
			WalkRefs(a, f)
		}
	case *ast.Ref:
		f(e)
		for _, sub := range e.Subs {
			for _, x := range []ast.Expr{sub.X, sub.Lo, sub.Hi, sub.Step} {
				if x != nil {
					WalkRefs(x, f)
				}
			}
		}
	}
}

// WalkCalls visits every intrinsic call of an expression in evaluation
// order (a call before its arguments).
func WalkCalls(e ast.Expr, f func(*ast.Call)) {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		WalkCalls(e.X, f)
	case *ast.BinExpr:
		WalkCalls(e.X, f)
		WalkCalls(e.Y, f)
	case *ast.Call:
		f(e)
		for _, a := range e.Args {
			WalkCalls(a, f)
		}
	}
}

// ExprHasSum reports whether the expression contains any SUM call.
func ExprHasSum(e ast.Expr) bool {
	found := false
	WalkCalls(e, func(c *ast.Call) {
		if c.Func == "sum" {
			found = true
		}
	})
	return found
}

// ExprHasDistributedSum reports whether the expression sums a
// distributed array (the case that needs a cross-processor combine).
func ExprHasDistributedSum(a *core.Analysis, e ast.Expr) bool {
	found := false
	WalkCalls(e, func(c *ast.Call) {
		if c.Func != "sum" || len(c.Args) != 1 {
			return
		}
		if ref, ok := c.Args[0].(*ast.Ref); ok {
			if arr := a.Unit.Arrays[ref.Name]; arr != nil && arr.Dist != nil {
				found = true
			}
		}
	})
	return found
}

// ExprReadsDistributed reports whether the expression references any
// distributed array.
func ExprReadsDistributed(a *core.Analysis, e ast.Expr) bool {
	found := false
	WalkRefs(e, func(r *ast.Ref) {
		if arr := a.Unit.Arrays[r.Name]; arr != nil && arr.Dist != nil {
			found = true
		}
	})
	return found
}

// CountFlops counts the floating-point operations of an expression,
// excluding integer subscript arithmetic (which compiled code strength-
// reduces away).
func CountFlops(e ast.Expr) int {
	switch e := e.(type) {
	case *ast.BinExpr:
		return 1 + CountFlops(e.X) + CountFlops(e.Y)
	case *ast.UnaryExpr:
		return 1 + CountFlops(e.X)
	case *ast.Call:
		n := 1
		for _, a := range e.Args {
			n += CountFlops(a)
		}
		return n
	default:
		return 0 // literals, scalars, array refs (subscripts excluded)
	}
}

// ConcreteRefSection resolves a (possibly sectioned) reference to a
// concrete section under a loop environment.
func (pl *Plan) ConcreteRefSection(ref *ast.Ref, am *runtime.ArrayMem, ienv map[string]int) (sec section.Section, err error) {
	arr := am.Arr
	dims := make([]section.Dim, arr.Rank())
	if len(ref.Subs) == 0 {
		for i := range dims {
			dims[i] = section.Dim{Lo: arr.Lo[i], Hi: arr.Hi[i], Step: 1}
		}
		return section.Section{Dims: dims}, nil
	}
	for i, sub := range ref.Subs {
		if sub.Kind == ast.SubExpr {
			x, err := pl.A.Unit.EvalIntEnv(sub.X, ienv)
			if err != nil {
				return section.Section{}, err
			}
			dims[i] = section.Dim{Lo: x, Hi: x, Step: 1}
			continue
		}
		lo, hi, step := arr.Lo[i], arr.Hi[i], 1
		if sub.Lo != nil {
			if lo, err = pl.A.Unit.EvalIntEnv(sub.Lo, ienv); err != nil {
				return section.Section{}, err
			}
		}
		if sub.Hi != nil {
			if hi, err = pl.A.Unit.EvalIntEnv(sub.Hi, ienv); err != nil {
				return section.Section{}, err
			}
		}
		if sub.Step != nil {
			if step, err = pl.A.Unit.EvalIntEnv(sub.Step, ienv); err != nil {
				return section.Section{}, err
			}
		}
		dims[i] = section.Dim{Lo: lo, Hi: hi, Step: step}
	}
	return section.Section{Dims: dims}, nil
}

// ConcreteEntrySection concretizes one group entry's communicated
// section under a loop environment, clipped to the declared array
// bounds (vectorized subscript ranges like i-1 over i=2..n already
// stay inside, but defensive clipping keeps hulls in range).
func (pl *Plan) ConcreteEntrySection(e *core.Entry, pos core.Position, ienv map[string]int) (section.Section, bool) {
	sym := pl.Res.CommSection(e, pos.Level())
	env := map[string]int{}
	for k, v := range ienv {
		env[k] = v
	}
	sec, ok := sym.Concrete(env)
	if !ok {
		return section.Section{}, false
	}
	arr := pl.A.Unit.Arrays[e.Array]
	return sec.Clip(arr.Lo, arr.Hi), true
}
