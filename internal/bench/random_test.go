package bench

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/parser"
	"gcao/internal/sem"
	"gcao/internal/spmd"
)

// progGen generates random but well-formed mini-HPF programs over a
// fixed set of distributed 2-d arrays: stencil statements with random
// offsets (including diagonals), occasional strided array statements,
// IF/ELSE around nests, reductions into scalars, and a timestep loop.
// Every generated program is compiled under all three strategies and
// executed on the functional simulator; stale-read detection plus
// elementwise comparison against a single-processor run make this a
// soundness fuzzer for the whole placement pipeline.
type progGen struct {
	rng    *rand.Rand
	b      strings.Builder
	arrays []string
	scalar int
	depth  int
}

func (g *progGen) line(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

// stencil emits one nest writing dst from a random stencil of src.
func (g *progGen) stencil(dst, src string) {
	di := g.rng.Intn(3) - 1 // -1, 0, 1
	dj := g.rng.Intn(3) - 1
	di2 := g.rng.Intn(3) - 1
	dj2 := g.rng.Intn(3) - 1
	g.line("do i = 2, n - 1")
	g.line("do j = 2, n - 1")
	g.line("%s(i, j) = 0.4 * %s(i + %d, j + %d) + 0.3 * %s(i + %d, j + %d) + 0.2 * %s(i, j)",
		dst, src, di, dj, src, di2, dj2, dst)
	g.line("enddo")
	g.line("enddo")
}

// arrayStmt emits an F90 array statement (exercises the scalarizer).
func (g *progGen) arrayStmt(dst, src string) {
	if g.rng.Intn(2) == 0 {
		g.line("%s(2:n, 2:n) = %s(1:n-1, 1:n-1) * 0.5", dst, src)
	} else {
		g.line("%s(1:n:2, 1:n) = %s(1:n:2, 1:n) + 1", dst, src)
	}
}

// reduction emits a SUM into a fresh scalar and a use of it.
func (g *progGen) reduction(src, dst string) {
	g.scalar++
	s := fmt.Sprintf("s%d", g.scalar)
	g.line("%s = sum(%s(2, 1:n))", s, src)
	g.line("do i = 2, n - 1")
	g.line("do j = 2, n - 1")
	g.line("%s(i, j) = %s(i, j) + 0.001 * %s", dst, dst, s)
	g.line("enddo")
	g.line("enddo")
}

func (g *progGen) stmtBlock(budget int) {
	for k := 0; k < budget; k++ {
		dst := g.arrays[g.rng.Intn(len(g.arrays))]
		src := g.arrays[g.rng.Intn(len(g.arrays))]
		switch g.rng.Intn(6) {
		case 0:
			g.arrayStmt(dst, src)
		case 1:
			g.reduction(src, dst)
		case 2:
			if g.depth < 1 {
				g.depth++
				g.line("if (x > 0) then")
				g.stmtBlock(1)
				if g.rng.Intn(2) == 0 {
					g.line("else")
					g.stmtBlock(1)
				}
				g.line("endif")
				g.depth--
				continue
			}
			g.stencil(dst, src)
		default:
			g.stencil(dst, src)
		}
	}
}

func (g *progGen) generate(seed int64) string {
	g.rng = rand.New(rand.NewSource(seed))
	g.b.Reset()
	g.scalar = 0
	g.arrays = []string{"u", "v", "w"}
	g.line("routine fuzz(n, steps)")
	g.line("real u(0:n+1, 0:n+1), v(0:n+1, 0:n+1), w(0:n+1, 0:n+1)")
	// Plenty of scalars for the reductions.
	var scalars []string
	for i := 1; i <= 12; i++ {
		scalars = append(scalars, fmt.Sprintf("s%d", i))
	}
	g.line("real x, %s", strings.Join(scalars, ", "))
	g.line("!hpf$ distribute (block, block) :: u, v, w")
	g.line("do i = 0, n + 1")
	g.line("do j = 0, n + 1")
	g.line("u(i, j) = 1 + mod(i * 3 + j, 7) * 0.25")
	g.line("v(i, j) = 1 + mod(i + j * 2, 5) * 0.5")
	g.line("w(i, j) = 0")
	g.line("enddo")
	g.line("enddo")
	g.line("x = %d", g.rng.Intn(3)-1)
	g.line("do it = 1, steps")
	g.stmtBlock(3 + g.rng.Intn(3))
	g.line("enddo")
	g.line("end")
	return g.b.String()
}

// TestRandomProgramsEndToEnd fuzzes the whole compiler: for dozens of
// random programs, all three placement strategies must produce
// schedules that deliver exactly the data each computation reads
// (validity tracking) and compute results identical to a sequential
// execution.
func TestRandomProgramsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz harness skipped in -short mode")
	}
	maxSeed := int64(40)
	if s := os.Getenv("GCAO_FUZZ_SEEDS"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			maxSeed = v
		}
	}
	m := machine.SP2()
	gen := &progGen{}
	for seed := int64(1); seed <= maxSeed; seed++ {
		src := gen.generate(seed)
		params := map[string]int{"n": 8, "steps": 2}

		compileAt := func(procs int) (*core.Analysis, error) {
			r, err := parser.ParseRoutine(src)
			if err != nil {
				return nil, err
			}
			u, err := sem.Analyze(r, params, sem.Options{Procs: procs})
			if err != nil {
				return nil, err
			}
			return core.NewAnalysis(u)
		}

		seqA, err := compileAt(1)
		if err != nil {
			t.Fatalf("seed %d: sequential compile: %v\n%s", seed, err, src)
		}
		seqRes, err := seqA.Place(core.Options{Version: core.VersionCombine})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seq, err := spmd.Run(seqRes, m, 1)
		if err != nil {
			t.Fatalf("seed %d: sequential run: %v\n%s", seed, err, src)
		}

		a, err := compileAt(4)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		for _, v := range []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine} {
			res, err := a.Place(core.Options{Version: v})
			if err != nil {
				t.Fatalf("seed %d %v: place: %v\n%s", seed, v, err, src)
			}
			run, err := spmd.Run(res, m, 4)
			if err != nil {
				t.Fatalf("seed %d %v: run: %v\n%s", seed, v, err, src)
			}
			if err := spmd.VerifyAgainstSequential(run, seq); err != nil {
				t.Fatalf("seed %d %v: %v\n%s", seed, v, err, src)
			}
		}

		// The partial-redundancy extension must stay sound on random
		// programs too.
		res, err := a.Place(core.Options{Version: core.VersionCombine, PartialRedundancy: true})
		if err != nil {
			t.Fatalf("seed %d partial: place: %v", seed, err)
		}
		run, err := spmd.Run(res, m, 4)
		if err != nil {
			t.Fatalf("seed %d partial: run: %v\n%s", seed, err, src)
		}
		if err := spmd.VerifyAgainstSequential(run, seq); err != nil {
			t.Fatalf("seed %d partial: %v\n%s", seed, err, src)
		}
	}
}
