package bench

import (
	"testing"

	"gcao/internal/core"
)

// measuredCounts is this implementation's Fig. 10(a) table at the
// default sizes, P=25. Six of seven rows match the paper exactly; the
// shallow "orig" row measures 18 against the paper's 20 because our
// shallow source elides the periodic-boundary copy statements the
// original benchmark also communicated for (see EXPERIMENTS.md).
var measuredCounts = []CountRow{
	{"shallow", "main", "NNC", 18, 14, 8},
	{"gravity", "main", "NNC", 8, 8, 4},
	{"gravity", "main", "SUM", 8, 8, 2},
	{"trimesh", "normdot", "NNC", 24, 24, 4},
	{"trimesh", "gauss", "NNC", 13, 13, 4},
	{"hydflo", "flux", "NNC", 52, 30, 6},
	{"hydflo", "hydro", "NNC", 12, 12, 6},
}

// TestFig10aCounts locks down the static message-count table.
func TestFig10aCounts(t *testing.T) {
	rows, err := Fig10aTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(measuredCounts) {
		for _, r := range rows {
			t.Logf("%+v", r)
		}
		t.Fatalf("rows = %d, want %d", len(rows), len(measuredCounts))
	}
	for i, want := range measuredCounts {
		if rows[i] != want {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], want)
		}
	}
}

// TestFig10aOrdering asserts the monotone structure the paper's table
// exhibits: comb <= nored <= orig everywhere, strict on every row for
// comb.
func TestFig10aOrdering(t *testing.T) {
	rows, err := Fig10aTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NoRed > r.Orig {
			t.Errorf("%s/%s %s: nored %d > orig %d", r.Bench, r.Routine, r.CommType, r.NoRed, r.Orig)
		}
		if r.Comb >= r.NoRed {
			t.Errorf("%s/%s %s: comb %d not below nored %d", r.Bench, r.Routine, r.CommType, r.Comb, r.NoRed)
		}
	}
}

// TestCountsStableAcrossSizes: static call-site counts are a compiler
// property and must not depend on the problem size within each
// benchmark's working range.
func TestCountsStableAcrossSizes(t *testing.T) {
	for _, pr := range Programs() {
		sizes := []int{pr.DefaultN, pr.DefaultN * 2}
		var prev []CountRow
		for _, n := range sizes {
			rows, err := StaticCounts(pr, n, 25)
			if err != nil {
				t.Fatalf("%s/%s n=%d: %v", pr.Bench, pr.Routine, n, err)
			}
			if prev != nil {
				for i := range rows {
					if rows[i] != prev[i] {
						t.Errorf("%s/%s: counts changed between n=%d and n=%d: %+v vs %+v",
							pr.Bench, pr.Routine, sizes[0], n, prev[i], rows[i])
					}
				}
			}
			prev = rows
		}
	}
}

// TestCountsAcrossMachines: the same table holds at the NOW's P=8.
func TestCountsAtP8(t *testing.T) {
	for _, pr := range Programs() {
		rows, err := StaticCounts(pr, pr.DefaultN, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			for _, want := range measuredCounts {
				if want.Bench == r.Bench && want.Routine == r.Routine && want.CommType == r.CommType {
					if r != want {
						t.Errorf("P=8 %s/%s %s = %d/%d/%d, want %d/%d/%d",
							r.Bench, r.Routine, r.CommType, r.Orig, r.NoRed, r.Comb,
							want.Orig, want.NoRed, want.Comb)
					}
				}
			}
		}
	}
}

// TestChartsShape verifies the Fig. 10(b)–(f) regimes: comb never
// exceeds nored, nored never exceeds orig, communication cost drops by
// roughly 2x or more under comb, and the relative gain shrinks as the
// problem grows (communication amortizes).
func TestChartsShape(t *testing.T) {
	for _, spec := range ChartSpecs() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			c, err := RunChart(spec)
			if err != nil {
				t.Fatal(err)
			}
			var prevGain float64 = -1
			for i, pt := range c.Points {
				if len(pt.Bars) != 3 {
					t.Fatalf("n=%d: %d bars", pt.N, len(pt.Bars))
				}
				orig, nored, comb := pt.Bars[0], pt.Bars[1], pt.Bars[2]
				if nored.Net > orig.Net+1e-12 {
					t.Errorf("n=%d: nored net %v > orig %v", pt.N, nored.Net, orig.Net)
				}
				if comb.Net > nored.Net+1e-12 {
					t.Errorf("n=%d: comb net %v > nored %v", pt.N, comb.Net, nored.Net)
				}
				// The paper: communication cost reduced by ~2x or more.
				if ratio := c.CommRatio[i]; ratio > 0.6 {
					t.Errorf("n=%d: comb/orig network ratio %.2f, want <= 0.6", pt.N, ratio)
				}
				gain := 1.0 - (comb.CPU + comb.Net)
				if prevGain >= 0 && gain > prevGain+0.02 {
					t.Errorf("n=%d: overall gain %.3f grew with size (prev %.3f)", pt.N, gain, prevGain)
				}
				prevGain = gain
			}
		})
	}
}

// TestVersionCostsConsistency: the placed message counts and the
// estimated network costs must order the same way.
func TestVersionCostsConsistency(t *testing.T) {
	pr, err := ByName("shallow", "main")
	if err != nil {
		t.Fatal(err)
	}
	a, err := pr.Compile(128, 25)
	if err != nil {
		t.Fatal(err)
	}
	type vc struct {
		msgs int
	}
	counts := map[core.Version]vc{}
	for _, v := range []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine} {
		res, err := a.Place(core.Options{Version: v})
		if err != nil {
			t.Fatal(err)
		}
		counts[v] = vc{msgs: res.TotalMessages()}
	}
	if !(counts[core.VersionCombine].msgs < counts[core.VersionRedund].msgs &&
		counts[core.VersionRedund].msgs < counts[core.VersionOrig].msgs) {
		t.Errorf("message counts not strictly ordered: %v", counts)
	}
}
