package bench

import (
	"testing"

	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/spmd"
)

// TestFunctionalEquivalence is the end-to-end soundness proof of every
// placement strategy: each benchmark is executed on the functional
// simulator under orig, nored and comb placements and compared
// elementwise against a single-processor run. The simulator's validity
// tracking aborts on any read of data a processor neither owns nor
// received, so a pass means each placement communicates exactly the
// data the computation needs.
func TestFunctionalEquivalence(t *testing.T) {
	sizes := map[string]int{
		"shallow/main":    8,
		"gravity/main":    6,
		"trimesh/normdot": 8,
		"trimesh/gauss":   8,
		"hydflo/flux":     5,
		"hydflo/hydro":    5,
	}
	m := machine.SP2()
	for _, pr := range Programs() {
		pr := pr
		n := sizes[pr.Bench+"/"+pr.Routine]
		if n == 0 {
			t.Fatalf("no test size for %s/%s", pr.Bench, pr.Routine)
		}
		t.Run(pr.Bench+"/"+pr.Routine, func(t *testing.T) {
			// Sequential reference.
			seqA, err := pr.Compile(n, 1)
			if err != nil {
				t.Fatalf("compile seq: %v", err)
			}
			seqRes, err := seqA.Place(core.Options{Version: core.VersionCombine})
			if err != nil {
				t.Fatalf("place seq: %v", err)
			}
			seq, err := spmd.Run(seqRes, m, 1)
			if err != nil {
				t.Fatalf("run seq: %v", err)
			}

			for _, procs := range []int{4, 9} {
				a, err := pr.Compile(n, procs)
				if err != nil {
					t.Fatalf("compile P=%d: %v", procs, err)
				}
				var msgs []int
				for _, v := range []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine} {
					res, err := a.Place(core.Options{Version: v})
					if err != nil {
						t.Fatalf("place %v: %v", v, err)
					}
					run, err := spmd.Run(res, m, procs)
					if err != nil {
						t.Fatalf("P=%d %v: functional run failed: %v", procs, v, err)
					}
					if err := spmd.VerifyAgainstSequential(run, seq); err != nil {
						t.Errorf("P=%d %v: %v", procs, v, err)
					}
					msgs = append(msgs, run.Ledger.DynMessages)
				}
				// The optimized placement must not move more messages
				// than the baseline.
				if msgs[2] > msgs[0] {
					t.Errorf("P=%d: comb moved %d dynamic messages, orig moved %d", procs, msgs[2], msgs[0])
				}
				t.Logf("P=%d dynamic messages: orig=%d nored=%d comb=%d", procs, msgs[0], msgs[1], msgs[2])
			}
		})
	}
}
