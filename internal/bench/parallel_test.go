package bench

import (
	"bytes"
	"reflect"
	"testing"
)

// TestParallelSweepMatchesSequential: the pooled sweep must produce
// byte-identical output to the sequential one — the determinism
// contract behind `runbench -j`.
func TestParallelSweepMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 10 sweep")
	}
	seq, err := CollectBenchResult("test", "gotest")
	if err != nil {
		t.Fatal(err)
	}
	par, err := CollectBenchResultParallel("test", "gotest", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel sweep entries differ from sequential")
	}
	var bseq, bpar bytes.Buffer
	if err := WriteBenchResult(&bseq, seq); err != nil {
		t.Fatal(err)
	}
	if err := WriteBenchResult(&bpar, par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bseq.Bytes(), bpar.Bytes()) {
		t.Fatal("parallel sweep JSON differs from sequential")
	}
}

// TestRunChartsMatchesSequential checks the chart path the same way,
// on a subset of specs to stay fast.
func TestRunChartsMatchesSequential(t *testing.T) {
	specs := ChartSpecs()[:2]
	seq, err := RunCharts(append([]Chart(nil), specs...), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCharts(append([]Chart(nil), specs...), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel charts differ from sequential")
	}
}
