package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/obs"
	"gcao/internal/spmd"
)

// CountRow is one Fig. 10(a) row: static communication call-site
// counts under the three compiler versions.
type CountRow struct {
	Bench, Routine string
	CommType       string
	Orig, NoRed    int
	Comb           int
}

// PaperCounts reproduces the Fig. 10(a) table published in the paper
// for comparison in EXPERIMENTS.md.
var PaperCounts = []CountRow{
	{"shallow", "main", "NNC", 20, 14, 8},
	{"gravity", "main", "NNC", 8, 8, 4},
	{"gravity", "main", "SUM", 8, 8, 2},
	{"trimesh", "normdot", "NNC", 24, 24, 4},
	{"trimesh", "gauss", "NNC", 13, 13, 4},
	{"hydflo", "flux", "NNC", 52, 30, 6},
	{"hydflo", "hydro", "NNC", 12, 12, 6},
}

// countKinds aggregates a result's groups into the two columns the
// paper reports: NNC (including the rare general patterns) and SUM.
func countKinds(res *core.Result) map[string]int {
	out := map[string]int{}
	for _, g := range res.Groups {
		switch g.Kind {
		case core.KindReduce:
			out["SUM"]++
		default:
			out["NNC"]++
		}
	}
	return out
}

// StaticCounts compiles a program at its default size on p processors
// and returns the per-comm-type rows.
func StaticCounts(pr *Program, n, p int) ([]CountRow, error) {
	return StaticCountsObs(pr, n, p, nil)
}

// StaticCountsObs is StaticCounts with an observability recorder
// attached to the compilation, so the three placements log their
// phase spans, elimination counters and decision records.
func StaticCountsObs(pr *Program, n, p int, rec *obs.Recorder) ([]CountRow, error) {
	end := rec.Start("bench:" + pr.Bench + "/" + pr.Routine)
	defer end()
	a, err := pr.Compile(n, p)
	if err != nil {
		return nil, err
	}
	a.Obs = rec
	byVersion := map[core.Version]map[string]int{}
	for _, v := range []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine} {
		res, err := a.Place(core.Options{Version: v})
		if err != nil {
			return nil, err
		}
		byVersion[v] = countKinds(res)
	}
	kinds := map[string]bool{}
	for _, m := range byVersion {
		for k := range m {
			kinds[k] = true
		}
	}
	var kindList []string
	for k := range kinds {
		kindList = append(kindList, k)
	}
	sort.Strings(kindList) // NNC before SUM, as in the paper's table
	var rows []CountRow
	for _, k := range kindList {
		rows = append(rows, CountRow{
			Bench: pr.Bench, Routine: pr.Routine, CommType: k,
			Orig:  byVersion[core.VersionOrig][k],
			NoRed: byVersion[core.VersionRedund][k],
			Comb:  byVersion[core.VersionCombine][k],
		})
	}
	return rows, nil
}

// Fig10aTable computes the full static-count table at the default
// sizes on the SP2 processor counts.
func Fig10aTable() ([]CountRow, error) {
	var rows []CountRow
	for _, pr := range Programs() {
		r, err := StaticCounts(pr, pr.DefaultN, pr.Procs["SP2"])
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	// Merge duplicate (bench, routine, type) rows produced by two
	// programs of one routine (none today) and drop zero rows that the
	// paper does not report.
	var out []CountRow
	for _, r := range rows {
		if r.Orig == 0 && r.NoRed == 0 && r.Comb == 0 {
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteFig10a renders the table like the paper's Fig. 10(a).
func WriteFig10a(w io.Writer, rows []CountRow) {
	fmt.Fprintf(w, "%-9s %-9s %-5s %6s %6s %6s\n", "Benchmark", "Routine", "Comm", "orig", "nored", "comb")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %-9s %-5s %6d %6d %6d\n", r.Bench, r.Routine, r.CommType, r.Orig, r.NoRed, r.Comb)
	}
}

// ---------------------------------------------------------------------
// Fig. 10(b)–(f): normalized running-time bars per problem size.

// ChartPoint is one problem size of one chart: the three versions'
// normalized CPU/network segments.
type ChartPoint struct {
	N    int
	Bars []spmd.Bar
}

// Chart is one of the paper's five bar charts.
type Chart struct {
	ID        string // "b".."f"
	Title     string
	Machine   string
	Bench     string
	Routines  []string
	Procs     int
	Sizes     []int
	Points    []ChartPoint
	CommRatio []float64 // comb network time / orig network time per size
}

// ChartSpecs lists the paper's five charts with their size sweeps.
// The sizes follow Fig. 10; the largest 3-d sizes are trimmed to keep
// the analytic sweep instant while covering the same regime.
func ChartSpecs() []Chart {
	return []Chart{
		{ID: "b", Title: "SP2 shallow, P=25", Machine: "SP2", Bench: "shallow", Routines: []string{"main"}, Procs: 25,
			Sizes: []int{100, 125, 150, 175, 200, 225, 250, 275}},
		{ID: "c", Title: "SP2 gravity, P=25", Machine: "SP2", Bench: "gravity", Routines: []string{"main"}, Procs: 25,
			Sizes: []int{100, 125, 150, 175, 200, 225, 250, 275, 300, 325}},
		{ID: "d", Title: "NOW shallow, P=8", Machine: "NOW", Bench: "shallow", Routines: []string{"main"}, Procs: 8,
			Sizes: []int{400, 450, 500}},
		{ID: "e", Title: "NOW gravity, P=8", Machine: "NOW", Bench: "gravity", Routines: []string{"main"}, Procs: 8,
			Sizes: []int{100, 124, 150, 174, 200, 224, 250, 274}},
		{ID: "f", Title: "NOW trimesh, P=8", Machine: "NOW", Bench: "trimesh", Routines: []string{"normdot"}, Procs: 8,
			Sizes: []int{192, 256, 320}},
		{ID: "f2", Title: "NOW hydflo, P=8", Machine: "NOW", Bench: "hydflo", Routines: []string{"flux"}, Procs: 8,
			Sizes: []int{28, 32, 40, 48, 56, 64}},
	}
}

// RunChart fills one chart spec with estimated bars.
func RunChart(spec Chart) (Chart, error) {
	m, err := machine.ByName(spec.Machine)
	if err != nil {
		return Chart{}, err
	}
	pr, err := ByName(spec.Bench, spec.Routines[0])
	if err != nil {
		return Chart{}, err
	}
	for _, n := range spec.Sizes {
		a, err := pr.Compile(n, spec.Procs)
		if err != nil {
			return Chart{}, err
		}
		bars, err := spmd.EstimateVersions(a, m)
		if err != nil {
			return Chart{}, err
		}
		spec.Points = append(spec.Points, ChartPoint{N: n, Bars: bars})
		origNet := bars[0].Raw.Net
		combNet := bars[len(bars)-1].Raw.Net
		ratio := 0.0
		if origNet > 0 {
			ratio = combNet / origNet
		}
		spec.CommRatio = append(spec.CommRatio, ratio)
	}
	return spec, nil
}

// WriteChart renders a chart as a text table plus ASCII bars, the same
// series the paper plots.
func WriteChart(w io.Writer, c Chart) {
	fmt.Fprintf(w, "Fig.10(%s) %s\n", c.ID, c.Title)
	fmt.Fprintf(w, "%6s  %-7s %8s %8s %8s   %s\n", "n", "version", "cpu", "net", "total", "normalized total (bar)")
	for _, pt := range c.Points {
		for _, b := range pt.Bars {
			total := b.CPU + b.Net
			bar := strings.Repeat("#", int(total*40+0.5))
			fmt.Fprintf(w, "%6d  %-7s %8.3f %8.3f %8.3f   %s\n", pt.N, b.Version, b.CPU, b.Net, total, bar)
		}
	}
	fmt.Fprintln(w)
}
