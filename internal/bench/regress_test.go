package bench

import (
	"bytes"
	"strings"
	"testing"
)

func entry(chart, version string, cpu, net, msgs, bts float64, groups int) BenchEntry {
	return BenchEntry{
		Chart: chart, Bench: "jacobi", Routine: "smooth", Machine: "SP2",
		Procs: 25, N: 512, Version: version,
		RawCPU: cpu, RawNet: net, Messages: msgs, Bytes: bts, StaticGroups: groups,
	}
}

func TestCompareBenchResultsCatchesRegressions(t *testing.T) {
	base := BenchResult{Rev: "aaa", Entries: []BenchEntry{
		entry("10b", "orig", 1.0, 0.5, 100, 4096, 9),
		entry("10b", "comb", 1.0, 0.2, 40, 4096, 3),
	}}

	// Identical current run: clean.
	if regs := CompareBenchResults(base, base, 0.05); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}

	// Within tolerance: clean.
	cur := BenchResult{Rev: "bbb", Entries: []BenchEntry{
		entry("10b", "orig", 1.04, 0.5, 100, 4096, 9),
		entry("10b", "comb", 1.0, 0.2, 40, 4096, 3),
	}}
	if regs := CompareBenchResults(base, cur, 0.05); len(regs) != 0 {
		t.Fatalf("in-tolerance drift flagged: %v", regs)
	}

	// Improvements are never regressions.
	cur = BenchResult{Rev: "bbb", Entries: []BenchEntry{
		entry("10b", "orig", 0.5, 0.1, 50, 1024, 5),
		entry("10b", "comb", 0.5, 0.1, 20, 1024, 2),
	}}
	if regs := CompareBenchResults(base, cur, 0.05); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}

	// Exceeding tolerance on time, messages and groups all fire.
	cur = BenchResult{Rev: "ccc", Entries: []BenchEntry{
		entry("10b", "orig", 1.2, 0.5, 100, 4096, 9),
		entry("10b", "comb", 1.0, 0.2, 50, 4096, 4),
	}}
	regs := CompareBenchResults(base, cur, 0.05)
	got := map[string]bool{}
	for _, r := range regs {
		got[r.Metric+"@"+r.Key] = true
	}
	for _, want := range []string{
		"total_seconds@10b/jacobi/smooth/SP2/P25/n512/orig",
		"messages@10b/jacobi/smooth/SP2/P25/n512/comb",
		"static_groups@10b/jacobi/smooth/SP2/P25/n512/comb",
	} {
		if !got[want] {
			t.Errorf("missing regression %s in %v", want, regs)
		}
	}
	if got["total_seconds@10b/jacobi/smooth/SP2/P25/n512/comb"] {
		t.Errorf("unchanged comb time flagged: %v", regs)
	}

	// A dropped entry is a regression too.
	cur = BenchResult{Rev: "ddd", Entries: []BenchEntry{
		entry("10b", "orig", 1.0, 0.5, 100, 4096, 9),
	}}
	regs = CompareBenchResults(base, cur, 0.05)
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("dropped entry not caught: %v", regs)
	}
	if !strings.Contains(regs[0].Key, "/comb") {
		t.Fatalf("wrong entry reported missing: %v", regs[0])
	}

	// Extra entries in the current run are allowed.
	cur = BenchResult{Rev: "eee", Entries: []BenchEntry{
		entry("10b", "orig", 1.0, 0.5, 100, 4096, 9),
		entry("10b", "comb", 1.0, 0.2, 40, 4096, 3),
		entry("10c", "orig", 2.0, 0.9, 300, 8192, 12),
	}}
	if regs := CompareBenchResults(base, cur, 0.05); len(regs) != 0 {
		t.Fatalf("new coverage flagged: %v", regs)
	}
}

func TestCompareBenchResultsZeroBaseline(t *testing.T) {
	base := BenchResult{Entries: []BenchEntry{entry("10b", "comb", 1.0, 0.0, 0, 0, 3)}}
	// Zero stays zero: clean.
	if regs := CompareBenchResults(base, base, 0.05); len(regs) != 0 {
		t.Fatalf("zero self-compare regressed: %v", regs)
	}
	// Growth from a zero baseline fires (ratio is a finite sentinel).
	cur := BenchResult{Entries: []BenchEntry{entry("10b", "comb", 1.0, 0.0, 12, 512, 3)}}
	regs := CompareBenchResults(base, cur, 0.05)
	if len(regs) != 2 {
		t.Fatalf("from-zero growth: got %v, want messages+bytes", regs)
	}
	for _, r := range regs {
		if r.Ratio <= 1 || r.Ratio != r.Ratio { // finite, >1, not NaN
			t.Fatalf("bad ratio for zero baseline: %+v", r)
		}
	}
}

func TestBenchResultJSONRoundTrip(t *testing.T) {
	orig := BenchResult{Rev: "abc123", Go: "go1.22", Entries: []BenchEntry{
		entry("10b", "orig", 1.5, 0.25, 120, 65536, 9),
		entry("10d", "comb", 0.75, 0.0625, 24, 16384, 2),
	}}
	orig.Entries[0].NormCPU = 0.8
	orig.Entries[0].NormNet = 0.2
	var buf bytes.Buffer
	if err := WriteBenchResult(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rev != orig.Rev || back.Go != orig.Go || len(back.Entries) != 2 {
		t.Fatalf("header lost: %+v", back)
	}
	for i := range orig.Entries {
		if back.Entries[i] != orig.Entries[i] {
			t.Fatalf("entry %d changed:\n got %+v\nwant %+v", i, back.Entries[i], orig.Entries[i])
		}
	}
	if _, err := ReadBenchResult(strings.NewReader("{broken")); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}

// TestCollectBenchResult runs the real sweep at chart scale and checks
// the gate's end-to-end property: a fresh collection self-compares
// clean, and a synthetically perturbed baseline is caught.
func TestCollectBenchResult(t *testing.T) {
	res, err := CollectBenchResult("test", "go-test")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("empty sweep")
	}
	// Three versions per (chart, size); orig normalizes to 1.
	perKey := map[string]int{}
	for _, e := range res.Entries {
		perKey[e.Chart+"/"+e.Bench] += 1
		if e.Version == "orig" {
			if tot := e.NormCPU + e.NormNet; tot < 0.999 || tot > 1.001 {
				t.Errorf("%s: orig normalized total = %g, want 1", e.Key(), tot)
			}
		}
		if e.RawCPU < 0 || e.RawNet < 0 || e.Messages < 0 || e.Bytes < 0 || e.StaticGroups < 0 {
			t.Errorf("%s: negative metric: %+v", e.Key(), e)
		}
	}
	for chart, n := range perKey {
		if n%3 != 0 {
			t.Errorf("chart %s has %d entries, not a multiple of 3 versions", chart, n)
		}
	}

	// Determinism: collecting twice and self-comparing is clean — the
	// exact property `make benchgate` relies on.
	res2, err := CollectBenchResult("test", "go-test")
	if err != nil {
		t.Fatal(err)
	}
	if regs := CompareBenchResults(res, res2, 0.0); len(regs) != 0 {
		t.Fatalf("sweep is nondeterministic: %v", regs)
	}

	// Perturbed baseline: make one baseline entry better than reality
	// by more than the tolerance; the gate must fail.
	perturbed := BenchResult{Rev: res.Rev, Entries: append([]BenchEntry(nil), res.Entries...)}
	perturbed.Entries[0].RawCPU *= 0.5
	perturbed.Entries[0].RawNet *= 0.5
	perturbed.Entries[0].Messages *= 0.5
	if regs := CompareBenchResults(perturbed, res, 0.05); len(regs) == 0 {
		t.Fatal("perturbed baseline not detected")
	}
}

// TestCompareBenchResultsIgnoresOldNativeEntries pins the
// forward-compatibility guard for native entries: histories written
// before the tree-collective fabric carry native measurements without
// wire_bytes/allocs/alloc_bytes (they decode as zero), and comparing
// against them must neither error nor report regressions — native
// wall-clock is machine-dependent and never gates.
func TestCompareBenchResultsIgnoresOldNativeEntries(t *testing.T) {
	old := `{
  "rev": "aaa",
  "entries": [],
  "native": [
    {"bench": "gravity", "routine": "main", "n": 48, "procs": 4,
     "version": "comb", "native_seconds": 0.5,
     "messages": 100, "bytes": 4096, "speedup_vs_orig": 1.5}
  ]
}`
	base, err := ReadBenchResult(strings.NewReader(old))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Native) != 1 || base.Native[0].WireBytes != 0 || base.Native[0].Allocs != 0 {
		t.Fatalf("old-format native entry mis-decoded: %+v", base.Native)
	}
	cur := BenchResult{Rev: "bbb", Native: []NativeEntry{{
		Bench: "gravity", Routine: "main", N: 48, Procs: 4, Version: "comb",
		NativeSeconds: 0.1, Messages: 100, Bytes: 4096,
		WireBytes: 3200, Allocs: 250, AllocBytes: 0, SpeedupVsOrig: 1.5,
	}}}
	if regs := CompareBenchResults(base, cur, 0.05); len(regs) != 0 {
		t.Fatalf("native entries must not gate: %v", regs)
	}
}
