package bench

// Parallel benchmark sweeps. The Fig. 10 sweep is a grid of
// independent points — (chart, size) compilations, each followed by
// three per-version placements and cost estimates — so the harness
// fans them over a bounded sched.Pool in two stages: first every
// compilation, then every (point, version) placement against its
// compiled analysis (concurrent placements of one analysis are safe;
// the loop-bound memoization is mutex-guarded). Results are assembled
// by index in chart → size → version order, so the output is
// byte-identical to the sequential sweep regardless of worker count.

import (
	"context"
	"fmt"

	"gcao/internal/core"
	"gcao/internal/core/bound"
	"gcao/internal/machine"
	"gcao/internal/sched"
	"gcao/internal/spmd"
)

var sweepVersions = []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine}

// verCost is one (point, version) sweep result: the analytic cost and
// the placed static group count.
type verCost struct {
	cost   spmd.Cost
	static int
}

// sweepCosts computes costs[specIdx][sizeIdx][versionIdx] for the
// given chart specs over a pool of the given width (workers <= 1 runs
// on a single pool worker, which is the sequential order). bounds is
// the per-point communication lower bound, shared by every version.
func sweepCosts(specs []Chart, workers int) (costs [][][]verCost, bounds [][]float64, err error) {
	type point struct {
		spec, size int
		m          machine.Machine
		pr         *Program
		a          *core.Analysis
	}
	var points []*point
	for si := range specs {
		spec := &specs[si]
		m, err := machine.ByName(spec.Machine)
		if err != nil {
			return nil, nil, err
		}
		pr, err := ByName(spec.Bench, spec.Routines[0])
		if err != nil {
			return nil, nil, err
		}
		for ni := range spec.Sizes {
			points = append(points, &point{spec: si, size: ni, m: m, pr: pr})
		}
	}
	if workers < 1 {
		workers = 1
	}

	// Stage 1: compile every point.
	pool := sched.New(workers, len(points)*len(sweepVersions))
	defer pool.Close()
	ctx := context.Background()
	compileTasks := make([]sched.BatchTask, len(points))
	for i, pt := range points {
		pt := pt
		compileTasks[i] = sched.BatchTask{Run: func(context.Context) (any, error) {
			return pt.pr.Compile(specs[pt.spec].Sizes[pt.size], specs[pt.spec].Procs)
		}}
	}
	for _, r := range pool.Batch(ctx, compileTasks) {
		if r.Err != nil {
			pt := points[r.Index]
			return nil, nil, fmt.Errorf("bench: compiling %s n=%d: %w", pt.pr.Bench, specs[pt.spec].Sizes[pt.size], r.Err)
		}
		points[r.Index].a = r.Value.(*core.Analysis)
	}

	// The lower bound is per point (placement-independent), cheap to
	// derive, and needed before version placement results assemble.
	bounds = make([][]float64, len(specs))
	for si := range specs {
		bounds[si] = make([]float64, len(specs[si].Sizes))
	}
	for _, pt := range points {
		bounds[pt.spec][pt.size] = bound.Compute(pt.a).TotalBytes
	}

	// Stage 2: place and estimate every version of every point.
	verTasks := make([]sched.BatchTask, 0, len(points)*len(sweepVersions))
	for _, pt := range points {
		pt := pt
		for _, v := range sweepVersions {
			v := v
			verTasks = append(verTasks, sched.BatchTask{Run: func(context.Context) (any, error) {
				res, err := pt.a.Place(core.Options{Version: v})
				if err != nil {
					return nil, err
				}
				c, err := spmd.Estimate(res, pt.m)
				if err != nil {
					return nil, err
				}
				return verCost{cost: c, static: res.TotalMessages()}, nil
			}})
		}
	}
	verResults := pool.Batch(ctx, verTasks)

	costs = make([][][]verCost, len(specs))
	for si := range specs {
		costs[si] = make([][]verCost, len(specs[si].Sizes))
		for ni := range costs[si] {
			costs[si][ni] = make([]verCost, len(sweepVersions))
		}
	}
	for i, r := range verResults {
		pt := points[i/len(sweepVersions)]
		if r.Err != nil {
			return nil, nil, fmt.Errorf("bench: placing %s n=%d %s: %w",
				pt.pr.Bench, specs[pt.spec].Sizes[pt.size], sweepVersions[i%len(sweepVersions)], r.Err)
		}
		costs[pt.spec][pt.size][i%len(sweepVersions)] = r.Value.(verCost)
	}
	return costs, bounds, nil
}

// normBars converts one point's raw costs into the normalized bars of
// EstimateVersions (orig total = 1.0).
func normBars(vcs []verCost) []spmd.Bar {
	base := vcs[0].cost.Total()
	if base == 0 {
		base = 1
	}
	bars := make([]spmd.Bar, len(vcs))
	for i, vc := range vcs {
		bars[i] = spmd.Bar{Version: sweepVersions[i], CPU: vc.cost.CPU / base, Net: vc.cost.Net / base, Raw: vc.cost}
	}
	return bars
}

// RunCharts fills every chart spec, fanning the sweep over the given
// number of workers. workers <= 1 is the sequential path; any worker
// count produces identical charts.
func RunCharts(specs []Chart, workers int) ([]Chart, error) {
	if workers <= 1 {
		out := make([]Chart, len(specs))
		for i, spec := range specs {
			c, err := RunChart(spec)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	}
	costs, _, err := sweepCosts(specs, workers)
	if err != nil {
		return nil, err
	}
	out := make([]Chart, len(specs))
	for si, spec := range specs {
		for ni, n := range spec.Sizes {
			bars := normBars(costs[si][ni])
			spec.Points = append(spec.Points, ChartPoint{N: n, Bars: bars})
			origNet := bars[0].Raw.Net
			combNet := bars[len(bars)-1].Raw.Net
			ratio := 0.0
			if origNet > 0 {
				ratio = combNet / origNet
			}
			spec.CommRatio = append(spec.CommRatio, ratio)
		}
		out[si] = spec
	}
	return out, nil
}

// CollectBenchResultParallel is CollectBenchResult over a bounded
// worker pool. Entries appear in the same chart → size → version
// order as the sequential collector, so the emitted JSON is
// byte-identical for any worker count.
func CollectBenchResultParallel(rev, goVersion string, workers int) (BenchResult, error) {
	if workers <= 1 {
		return CollectBenchResult(rev, goVersion)
	}
	specs := ChartSpecs()
	costs, bounds, err := sweepCosts(specs, workers)
	if err != nil {
		return BenchResult{}, err
	}
	out := BenchResult{Rev: rev, Go: goVersion}
	for si, spec := range specs {
		for ni, n := range spec.Sizes {
			base := costs[si][ni][0].cost.Total()
			if base == 0 {
				base = 1
			}
			for vi, v := range sweepVersions {
				c := costs[si][ni][vi].cost
				out.Entries = append(out.Entries, BenchEntry{
					Chart: spec.ID, Bench: spec.Bench, Routine: spec.Routines[0],
					Machine: spec.Machine, Procs: spec.Procs, N: n,
					Version: v.String(),
					NormCPU: c.CPU / base, NormNet: c.Net / base,
					RawCPU: c.CPU, RawNet: c.Net,
					Messages: c.Messages, Bytes: c.Bytes,
					StaticGroups: costs[si][ni][vi].static,
					BoundBytes:   bounds[si][ni],
					GapRatio:     gapOf(bounds[si][ni], c.Bytes),
				})
			}
		}
	}
	return out, nil
}

// gapOf is Bound.Gap without rebuilding the struct: actual/bound, or 0
// when the bound is zero.
func gapOf(boundBytes, actualBytes float64) float64 {
	if boundBytes <= 0 {
		return 0
	}
	return actualBytes / boundBytes
}
