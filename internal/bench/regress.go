package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gcao/internal/core"
	"gcao/internal/core/bound"
	"gcao/internal/machine"
	"gcao/internal/spmd"
)

// BenchEntry is one measured point of a benchmark result file: one
// chart, problem size and compiler version, with the normalized and
// raw analytic costs plus the message/byte accounting — everything a
// later commit must not regress.
type BenchEntry struct {
	Chart   string `json:"chart"`
	Bench   string `json:"bench"`
	Routine string `json:"routine"`
	Machine string `json:"machine"`
	Procs   int    `json:"procs"`
	N       int    `json:"n"`
	Version string `json:"version"`
	// NormCPU/NormNet are normalized so the orig version's total is
	// 1.0 (the Fig. 10(b–f) bars); Raw values are estimated seconds.
	NormCPU float64 `json:"norm_cpu"`
	NormNet float64 `json:"norm_net"`
	RawCPU  float64 `json:"raw_cpu_seconds"`
	RawNet  float64 `json:"raw_net_seconds"`
	// Messages/Bytes are the estimator's per-processor dynamic
	// accounting; StaticGroups is the placed call-site count of
	// Fig. 10(a).
	Messages     float64 `json:"messages"`
	Bytes        float64 `json:"bytes"`
	StaticGroups int     `json:"static_groups"`
	// BoundBytes is the placement-independent communication lower bound
	// of the compiled point (internal/core/bound); it is the same for
	// every version of one (chart, size). GapRatio is Bytes/BoundBytes —
	// how many times the provable floor this version moves — or 0 when
	// the bound itself is zero (no gap measurable).
	BoundBytes float64 `json:"bound_bytes"`
	GapRatio   float64 `json:"gap_ratio"`
}

// PctOfOptimal is BoundBytes/Bytes as a percentage: 100 means the
// version provably moves the minimum possible traffic.
func (e BenchEntry) PctOfOptimal() float64 {
	if e.Bytes <= 0 {
		if e.BoundBytes <= 0 {
			return 100
		}
		return 0
	}
	return e.BoundBytes / e.Bytes * 100
}

// Key identifies the entry across runs.
func (e BenchEntry) Key() string {
	return fmt.Sprintf("%s/%s/%s/%s/P%d/n%d/%s",
		e.Chart, e.Bench, e.Routine, e.Machine, e.Procs, e.N, e.Version)
}

// RawTotal is the estimated completion time in seconds.
func (e BenchEntry) RawTotal() float64 { return e.RawCPU + e.RawNet }

// BenchResult is the machine-readable document `runbench -out` writes
// (BENCH_<rev>.json): deterministic analytic results, so two runs of
// one commit are byte-comparable and cross-commit diffs are real.
type BenchResult struct {
	Rev     string       `json:"rev"`
	Go      string       `json:"go,omitempty"`
	Entries []BenchEntry `json:"entries"`
	// Native holds wall-clock measurements from the native goroutine
	// backend when the sweep ran with -backend native. Wall-clock is
	// host-dependent, so the regression gate never compares these;
	// omitempty keeps default sweeps byte-identical to older baselines.
	Native []NativeEntry `json:"native,omitempty"`
}

// CollectBenchResult sweeps every Fig. 10 chart spec and records, per
// problem size and compiler version, the normalized/raw analytic cost
// and the message/byte counts.
func CollectBenchResult(rev, goVersion string) (BenchResult, error) {
	out := BenchResult{Rev: rev, Go: goVersion}
	versions := []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine}
	for _, spec := range ChartSpecs() {
		m, err := machine.ByName(spec.Machine)
		if err != nil {
			return BenchResult{}, err
		}
		pr, err := ByName(spec.Bench, spec.Routines[0])
		if err != nil {
			return BenchResult{}, err
		}
		for _, n := range spec.Sizes {
			a, err := pr.Compile(n, spec.Procs)
			if err != nil {
				return BenchResult{}, err
			}
			lb := bound.Compute(a)
			var base float64
			for i, v := range versions {
				res, err := a.Place(core.Options{Version: v})
				if err != nil {
					return BenchResult{}, err
				}
				cost, err := spmd.Estimate(res, m)
				if err != nil {
					return BenchResult{}, err
				}
				if i == 0 {
					base = cost.Total()
					if base == 0 {
						base = 1
					}
				}
				out.Entries = append(out.Entries, BenchEntry{
					Chart: spec.ID, Bench: spec.Bench, Routine: spec.Routines[0],
					Machine: spec.Machine, Procs: spec.Procs, N: n,
					Version: v.String(),
					NormCPU: cost.CPU / base, NormNet: cost.Net / base,
					RawCPU: cost.CPU, RawNet: cost.Net,
					Messages: cost.Messages, Bytes: cost.Bytes,
					StaticGroups: res.TotalMessages(),
					BoundBytes:   lb.TotalBytes,
					GapRatio:     lb.Gap(cost.Bytes),
				})
			}
		}
	}
	return out, nil
}

// WriteBenchResult emits the document as indented JSON.
func WriteBenchResult(w io.Writer, r BenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchResult parses a document written by WriteBenchResult.
func ReadBenchResult(r io.Reader) (BenchResult, error) {
	var out BenchResult
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return BenchResult{}, fmt.Errorf("bench: decoding baseline: %w", err)
	}
	return out, nil
}

// Regression is one metric of one benchmark point that got worse than
// the baseline by more than the tolerance.
type Regression struct {
	Key    string  `json:"key"`
	Metric string  `json:"metric"`
	Base   float64 `json:"base"`
	Cur    float64 `json:"cur"`
	// Ratio is cur/base (+Inf rendered as a large number never occurs:
	// a zero baseline only regresses when cur exceeds the absolute
	// floor).
	Ratio float64 `json:"ratio"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.6g -> %.6g (%.1f%% worse)", r.Key, r.Metric, r.Base, r.Cur, (r.Ratio-1)*100)
}

// floors below which a metric difference is noise, not a regression
// (estimated seconds jitter at the float level on different FMA
// contraction; counts are exact).
const secondsFloor = 1e-9

// CompareBenchResults reports every metric of cur that is worse than
// base by more than tol (relative: cur > base*(1+tol)). A baseline
// entry missing from cur is itself a regression — losing coverage must
// not pass the gate. Entries only in cur (new benchmarks) are fine.
func CompareBenchResults(base, cur BenchResult, tol float64) []Regression {
	curBy := map[string]BenchEntry{}
	for _, e := range cur.Entries {
		curBy[e.Key()] = e
	}
	var regs []Regression
	for _, b := range base.Entries {
		c, ok := curBy[b.Key()]
		if !ok {
			regs = append(regs, Regression{Key: b.Key(), Metric: "missing", Base: 1, Cur: 0, Ratio: 1})
			continue
		}
		check := func(metric string, bv, cv, floor float64) {
			if cv <= floor && bv <= floor {
				return
			}
			if cv > bv*(1+tol) && cv-bv > floor {
				ratio := cv / bv
				if bv == 0 {
					ratio = 2 + tol // sentinel: from-zero growth
				}
				regs = append(regs, Regression{Key: b.Key(), Metric: metric, Base: bv, Cur: cv, Ratio: ratio})
			}
		}
		check("total_seconds", b.RawTotal(), c.RawTotal(), secondsFloor)
		check("net_seconds", b.RawNet, c.RawNet, secondsFloor)
		check("messages", b.Messages, c.Messages, 0)
		check("bytes", b.Bytes, c.Bytes, 0)
		check("static_groups", float64(b.StaticGroups), float64(c.StaticGroups), 0)
		// Gap ratio only gates when the baseline recorded one: baselines
		// written before the lower bound existed decode to zero here.
		if b.GapRatio > 0 {
			check("gap_ratio", b.GapRatio, c.GapRatio, 0)
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Key != regs[j].Key {
			return regs[i].Key < regs[j].Key
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}
