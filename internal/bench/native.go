package bench

import (
	"fmt"
	goruntime "runtime"
	"time"

	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/native"
	"gcao/internal/obs"
	"gcao/internal/obs/attr"
	"gcao/internal/spmd"
)

// NativeEntry is one measured native-backend execution: a benchmark
// run for real as goroutines at a fixed modest size, with the
// wall-clock and traffic the run actually took. Wall-clock is
// machine-dependent, so these entries ride in BenchResult.Native —
// outside the deterministic, gated Entries — and CompareBenchResults
// never looks at them (histories written before a field existed
// simply decode it as zero).
type NativeEntry struct {
	Bench   string `json:"bench"`
	Routine string `json:"routine"`
	N       int    `json:"n"`
	Procs   int    `json:"procs"`
	Version string `json:"version"`
	// NativeSeconds is the goroutine fleet's wall clock for a
	// steady-state run (engine construction excluded).
	NativeSeconds float64 `json:"native_seconds"`
	Messages      int64   `json:"messages"`
	Bytes         int64   `json:"bytes"`
	// WireBytes counts every word actually sent — payload, validity
	// bitmaps and framing — where Bytes counts delivered element
	// payload only. Omitted (zero) in histories older than the
	// tree-collective fabric.
	WireBytes int64 `json:"wire_bytes,omitempty"`
	// Allocs is the Go-heap allocation count of the measured
	// steady-state run; AllocBytes is the payload-buffer bytes the
	// message fabric itself allocated (zero once its pools are warm).
	Allocs     uint64 `json:"allocs,omitempty"`
	AllocBytes int64  `json:"alloc_bytes,omitempty"`
	// SpeedupVsOrig is the orig version's wall clock over this
	// version's — the native analogue of the paper's normalized bars.
	SpeedupVsOrig float64 `json:"speedup_vs_orig"`
	// Runtime-profiler fields, from a separate profiled run of the same
	// engine (omitted in histories older than the profiler): compute
	// skew (max/mean per superstep), the fraction of processor time
	// spent blocked in communication, the machine constants fitted by
	// least squares against the SP2-modeled supersteps, and the site
	// whose measured cost strays furthest from its model.
	SkewRatio          float64 `json:"skew_ratio,omitempty"`
	BlockedFrac        float64 `json:"blocked_frac,omitempty"`
	FittedL            float64 `json:"fitted_l_seconds,omitempty"`
	FittedG            float64 `json:"fitted_g_seconds_per_byte,omitempty"`
	WorstResidualSite  string  `json:"worst_residual_site,omitempty"`
	WorstResidualRatio float64 `json:"worst_residual_ratio,omitempty"`
}

// Key identifies the entry across runs.
func (e NativeEntry) Key() string {
	return fmt.Sprintf("%s/%s/P%d/n%d/%s", e.Bench, e.Routine, e.Procs, e.N, e.Version)
}

// nativeSize picks the problem size the native sweep runs a benchmark
// at: big enough that communication is real, small enough that the
// element-wise interpreter finishes in well under a second per run.
func nativeSize(bench string) int {
	if bench == "hydflo" {
		return 16
	}
	return 48
}

// nativeProcs is the grid the native sweep runs on. Four processors
// (2×2) exercises both grid dimensions on any host.
const nativeProcs = 4

// CollectNativeResult runs every paper benchmark natively under all
// three compiler versions and records wall-clock, messages, bytes on
// the wire and heap allocations per run, plus each version's speedup
// over orig. Each measurement is a steady-state run: the engine is
// built and warmed once (filling the recycled buffer pools), then the
// measured run reuses it, so the numbers reflect execution cost, not
// setup.
func CollectNativeResult() ([]NativeEntry, error) {
	var out []NativeEntry
	versions := []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine}
	for _, pr := range Programs() {
		n := nativeSize(pr.Bench)
		a, err := pr.Compile(n, nativeProcs)
		if err != nil {
			return nil, err
		}
		var origSecs float64
		for i, v := range versions {
			res, err := a.Place(core.Options{Version: v})
			if err != nil {
				return nil, err
			}
			eng, err := native.NewEngine(res, nativeProcs)
			if err != nil {
				return nil, fmt.Errorf("bench: native %s/%s %s: %w", pr.Bench, pr.Routine, v, err)
			}
			if _, err := eng.Run(); err != nil { // warm pools and scratch
				return nil, fmt.Errorf("bench: native %s/%s %s: %w", pr.Bench, pr.Routine, v, err)
			}
			var ms0, ms1 goruntime.MemStats
			goruntime.ReadMemStats(&ms0)
			start := time.Now()
			run, err := eng.Run()
			if err != nil {
				return nil, fmt.Errorf("bench: native %s/%s %s: %w", pr.Bench, pr.Routine, v, err)
			}
			secs := time.Since(start).Seconds()
			goruntime.ReadMemStats(&ms1)
			if i == 0 {
				origSecs = secs
			}
			e := NativeEntry{
				Bench: pr.Bench, Routine: pr.Routine, N: n, Procs: nativeProcs,
				Version:       v.String(),
				NativeSeconds: secs,
				Messages:      run.Stats.Messages,
				Bytes:         run.Stats.Bytes,
				WireBytes:     run.Stats.WireBytes,
				Allocs:        ms1.Mallocs - ms0.Mallocs,
				AllocBytes:    run.Stats.AllocBytes,
			}
			if secs > 0 {
				e.SpeedupVsOrig = origSecs / secs
			}
			if err := profileNativeEntry(&e, eng, res); err != nil {
				return nil, fmt.Errorf("bench: native %s/%s %s: %w", pr.Bench, pr.Routine, v, err)
			}
			out = append(out, e)
		}
	}
	return out, nil
}

// profileNativeEntry runs the already-warm engine once more with the
// runtime profiler armed (the measured steady-state run above stays
// unperturbed), simulates the same placement to obtain the analytic
// per-superstep model, and fills the entry's profiler fields: skew,
// blocked-time fraction, and the (L, g) constants fitted against the
// SP2 cost model. A degenerate fit (no h spread) leaves the fitted
// fields zero; the skew and blocked fraction are still measured.
func profileNativeEntry(e *NativeEntry, eng *native.Engine, res *core.Result) error {
	eng.EnableProfiling(0)
	defer eng.DisableProfiling()
	run, err := eng.Run()
	if err != nil {
		return err
	}
	np := run.Profile
	if np == nil {
		return fmt.Errorf("profiled run produced no profile")
	}
	e.SkewRatio = np.SkewRatio
	if tot := np.ComputeSeconds + np.BlockedSeconds; tot > 0 {
		e.BlockedFrac = np.BlockedSeconds / tot
	}
	m := machine.SP2()
	rec := obs.New()
	if _, err := spmd.RunObs(res, m, e.Procs, rec); err != nil {
		return err
	}
	c := np.Calibrate(obs.ModelSteps(rec.Attribution(), attr.CostModel{
		GSecPerByte: m.PerByte,
		LSec:        m.SendOverhead + m.RecvOverhead + m.Latency,
	}))
	if c.Degenerate || c.Mismatched > 0 {
		return nil
	}
	e.FittedL, e.FittedG = c.FittedL, c.FittedG
	if w := c.WorstResidual(); w != nil {
		e.WorstResidualSite, e.WorstResidualRatio = w.Site, w.Ratio
	}
	return nil
}
