// Package bench contains the mini-HPF sources of the paper's four
// benchmarks — shallow (NCAR shallow water), gravity (NPAC),
// trimesh, and hydflo — rewritten from the structural descriptions in
// §2 and §5, together with the harness that regenerates the Fig. 10
// tables and charts. The sources follow the real codes' computational
// patterns (the shallow water equations of the NCAR SWM kernel, the
// plane-sweep + global sums of gravity, multi-array stencil sweeps for
// trimesh, and two-stage flux updates over (n+2)³ state arrays for
// hydflo), at the distributions the paper states: (BLOCK,BLOCK) for
// the 2-d codes and (*,BLOCK,BLOCK) for the 3-d codes.
package bench

import (
	"fmt"

	"gcao/internal/core"
	"gcao/internal/parser"
	"gcao/internal/sem"
)

// Program is one benchmark routine with its parameter binding.
type Program struct {
	// Bench and Routine name the Fig. 10(a) row.
	Bench, Routine string
	// CommType is the communication column of Fig. 10(a).
	CommType core.CommKind
	// Source is the mini-HPF text.
	Source string
	// Params binds the routine parameters for problem size n with a
	// fixed small number of timesteps.
	Params func(n int) map[string]int
	// DefaultN is a representative problem size for static counts.
	DefaultN int
	// Procs returns the processor count the paper used per machine.
	Procs map[string]int
}

// Compile runs the front end and communication analysis for problem
// size n on p processors.
func (pr *Program) Compile(n, p int) (*core.Analysis, error) {
	r, err := parser.ParseRoutine(pr.Source)
	if err != nil {
		return nil, fmt.Errorf("bench %s/%s: %w", pr.Bench, pr.Routine, err)
	}
	u, err := sem.Analyze(r, pr.Params(n), sem.Options{Procs: p})
	if err != nil {
		return nil, fmt.Errorf("bench %s/%s: %w", pr.Bench, pr.Routine, err)
	}
	a, err := core.NewAnalysis(u)
	if err != nil {
		return nil, fmt.Errorf("bench %s/%s: %w", pr.Bench, pr.Routine, err)
	}
	return a, nil
}

// ---------------------------------------------------------------------
// shallow — the NCAR shallow water model main loop (13 two-dimensional
// (BLOCK,BLOCK) arrays; §5 and Fig. 2). One timestep: the loop-100
// nest computing cu, cv, z, h; the loop-200 nest computing unew, vnew,
// pnew; and the loop-300 time smoothing.
const shallowSrc = `
routine main(n, steps)
real p(0:n+1, 0:n+1), u(0:n+1, 0:n+1), v(0:n+1, 0:n+1)
real cu(0:n+1, 0:n+1), cv(0:n+1, 0:n+1), z(0:n+1, 0:n+1), h(0:n+1, 0:n+1)
real unew(0:n+1, 0:n+1), vnew(0:n+1, 0:n+1), pnew(0:n+1, 0:n+1)
real uold(0:n+1, 0:n+1), vold(0:n+1, 0:n+1), pold(0:n+1, 0:n+1)
real fsdx, fsdy, tdts8, tdtsdx, tdtsdy, alpha
!hpf$ distribute (block, block) :: p, u, v, cu, cv, z, h
!hpf$ distribute (block, block) :: unew, vnew, pnew, uold, vold, pold
fsdx = 4.0 / n
fsdy = 4.0 / n
tdts8 = 0.125
tdtsdx = 2.0 / n
tdtsdy = 2.0 / n
alpha = 0.001
do i = 0, n + 1
do j = 0, n + 1
p(i, j) = 10.0 + i * 0.01 + j * 0.02
u(i, j) = 1.0 + mod(i + j, 3)
v(i, j) = 2.0 - mod(i * j, 5) * 0.1
uold(i, j) = u(i, j)
vold(i, j) = v(i, j)
pold(i, j) = p(i, j)
cu(i, j) = 0
cv(i, j) = 0
z(i, j) = 0
h(i, j) = 0
enddo
enddo
do it = 1, steps
do i = 1, n
do j = 1, n
cu(i, j) = 0.5 * (p(i, j) + p(i - 1, j)) * u(i, j)
cv(i, j) = 0.5 * (p(i, j) + p(i, j - 1)) * v(i, j)
z(i, j) = (fsdx * (v(i, j) - v(i - 1, j)) - fsdy * (u(i, j) - u(i, j - 1))) / (p(i - 1, j - 1) + p(i, j - 1) + p(i - 1, j) + p(i, j))
h(i, j) = p(i, j) + 0.25 * (u(i + 1, j) * u(i + 1, j) + u(i, j) * u(i, j) + v(i, j + 1) * v(i, j + 1) + v(i, j) * v(i, j))
enddo
enddo
do i = 1, n
do j = 1, n
unew(i, j) = uold(i, j) + tdts8 * (z(i, j + 1) + z(i, j)) * (cv(i, j + 1) + cv(i - 1, j + 1) + cv(i - 1, j) + cv(i, j)) - tdtsdx * (h(i, j) - h(i - 1, j))
vnew(i, j) = vold(i, j) - tdts8 * (z(i + 1, j) + z(i, j)) * (cu(i + 1, j) + cu(i, j) + cu(i, j - 1) + cu(i + 1, j - 1)) - tdtsdy * (h(i, j) - h(i, j - 1))
pnew(i, j) = pold(i, j) - tdtsdx * (cu(i + 1, j) - cu(i, j)) - tdtsdy * (cv(i, j + 1) - cv(i, j))
enddo
enddo
do i = 1, n
do j = 1, n
uold(i, j) = u(i, j) + alpha * (unew(i, j) - 2 * u(i, j) + uold(i, j))
vold(i, j) = v(i, j) + alpha * (vnew(i, j) - 2 * v(i, j) + vold(i, j))
pold(i, j) = p(i, j) + alpha * (pnew(i, j) - 2 * p(i, j) + pold(i, j))
u(i, j) = unew(i, j)
v(i, j) = vnew(i, j)
p(i, j) = pnew(i, j)
enddo
enddo
enddo
end
`

// ---------------------------------------------------------------------
// gravity — the NPAC gravity code of Fig. 1: a 3-d field g(nx,ny,nz)
// distributed (*,BLOCK,BLOCK) swept plane by plane; per plane, NNC
// stencils of g and of the saved previous plane glast, four boundary
// SUM reductions of each, and the plane update.
const gravitySrc = `
routine main(nx, ny, nz, steps)
real g(nx, ny, nz)
real glast(ny, nz), w1(ny, nz), w2(ny, nz)
real s1, s2, s3, s4, t1, t2, t3, t4, c
!hpf$ distribute (*, block, block) :: g
!hpf$ distribute (block, block) :: glast, w1, w2
c = 0.25
do j = 1, ny
do k = 1, nz
glast(j, k) = 0
w1(j, k) = 0
w2(j, k) = 0
do i = 1, nx
g(i, j, k) = 1.0 + mod(i + 2 * j + 3 * k, 7) * 0.125
enddo
enddo
enddo
do it = 1, steps
do i = 2, nx - 1
do j = 2, ny - 1
do k = 2, nz - 1
w1(j, k) = g(i, j - 1, k) + g(i, j + 1, k) + g(i, j, k - 1) + g(i, j, k + 1) - 4 * g(i, j, k)
enddo
enddo
do j = 2, ny - 1
do k = 2, nz - 1
w2(j, k) = glast(j - 1, k) + glast(j + 1, k) + glast(j, k - 1) + glast(j, k + 1) - 4 * glast(j, k)
enddo
enddo
s1 = sum(g(i, ny, 1:nz))
s2 = sum(g(i, ny - 1, 1:nz))
s3 = sum(g(i, 1, 1:nz))
s4 = sum(g(i, 2, 1:nz))
do j = 2, ny - 1
do k = 2, nz - 1
w1(j, k) = w1(j, k) + 0.001 * (s1 + s2 + s3 + s4)
enddo
enddo
t1 = sum(glast(ny, 1:nz))
t2 = sum(glast(ny - 1, 1:nz))
t3 = sum(glast(1, 1:nz))
t4 = sum(glast(2, 1:nz))
do j = 2, ny - 1
do k = 2, nz - 1
w2(j, k) = w2(j, k) + 0.001 * (t1 + t2 + t3 + t4)
enddo
enddo
do j = 2, ny - 1
do k = 2, nz - 1
glast(j, k) = g(i, j, k)
enddo
enddo
do j = 2, ny - 1
do k = 2, nz - 1
g(i, j, k) = g(i, j, k) + c * (w1(j, k) + w2(j, k))
enddo
enddo
enddo
enddo
end
`

// ---------------------------------------------------------------------
// trimesh — triangular-mesh relaxation over many n×n (BLOCK,BLOCK)
// arrays ("over 25 such arrays", §5). The normdot routine applies a
// five-point stencil to six edge fields; gauss is a Gauss-style sweep
// over three coefficient arrays plus a right-hand side.
const trimeshNormdotSrc = `
routine normdot(n, steps)
real e1(n, n), e2(n, n), e3(n, n), e4(n, n), e5(n, n), e6(n, n)
real r1(n, n), r2(n, n), r3(n, n), r4(n, n), r5(n, n), r6(n, n)
real w
!hpf$ distribute (block, block) :: e1, e2, e3, e4, e5, e6
!hpf$ distribute (block, block) :: r1, r2, r3, r4, r5, r6
w = 0.2
do i = 1, n
do j = 1, n
e1(i, j) = 1 + mod(i + j, 4) * 0.25
e2(i, j) = 1 + mod(i + 2 * j, 5) * 0.2
e3(i, j) = 1 + mod(2 * i + j, 3) * 0.5
e4(i, j) = 1 + mod(i * j, 7) * 0.125
e5(i, j) = 1 + mod(3 * i + j, 4) * 0.3
e6(i, j) = 1 + mod(i + 3 * j, 6) * 0.15
r1(i, j) = 0
r2(i, j) = 0
r3(i, j) = 0
r4(i, j) = 0
r5(i, j) = 0
r6(i, j) = 0
enddo
enddo
do it = 1, steps
do i = 2, n - 1
do j = 2, n - 1
r1(i, j) = e1(i - 1, j) + e1(i + 1, j) + e1(i, j - 1) + e1(i, j + 1) - 4 * e1(i, j)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
r2(i, j) = e2(i - 1, j) + e2(i + 1, j) + e2(i, j - 1) + e2(i, j + 1) - 4 * e2(i, j)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
r3(i, j) = e3(i - 1, j) + e3(i + 1, j) + e3(i, j - 1) + e3(i, j + 1) - 4 * e3(i, j)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
r4(i, j) = e4(i - 1, j) + e4(i + 1, j) + e4(i, j - 1) + e4(i, j + 1) - 4 * e4(i, j)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
r5(i, j) = e5(i - 1, j) + e5(i + 1, j) + e5(i, j - 1) + e5(i, j + 1) - 4 * e5(i, j)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
r6(i, j) = e6(i - 1, j) + e6(i + 1, j) + e6(i, j - 1) + e6(i, j + 1) - 4 * e6(i, j)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
e1(i, j) = e1(i, j) + w * r1(i, j)
e2(i, j) = e2(i, j) + w * r2(i, j)
e3(i, j) = e3(i, j) + w * r3(i, j)
e4(i, j) = e4(i, j) + w * r4(i, j)
e5(i, j) = e5(i, j) + w * r5(i, j)
e6(i, j) = e6(i, j) + w * r6(i, j)
enddo
enddo
enddo
end
`

const trimeshGaussSrc = `
routine gauss(n, steps)
real a(n, n), b(n, n), cc(n, n), rhs(n, n)
real q1(n, n), q2(n, n), q3(n, n), q4(n, n)
real w
!hpf$ distribute (block, block) :: a, b, cc, rhs, q1, q2, q3, q4
w = 0.25
do i = 1, n
do j = 1, n
a(i, j) = 1 + mod(i + j, 3) * 0.4
b(i, j) = 1 + mod(i + 2 * j, 4) * 0.3
cc(i, j) = 1 + mod(2 * i + j, 5) * 0.2
rhs(i, j) = mod(i * j, 9) * 0.1
q1(i, j) = 0
q2(i, j) = 0
q3(i, j) = 0
q4(i, j) = 0
enddo
enddo
do it = 1, steps
do i = 2, n - 1
do j = 2, n - 1
q1(i, j) = a(i - 1, j) + a(i + 1, j) + a(i, j - 1) + a(i, j + 1)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
q2(i, j) = b(i - 1, j) + b(i + 1, j) + b(i, j - 1) + b(i, j + 1)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
q3(i, j) = cc(i - 1, j) + cc(i + 1, j) + cc(i, j - 1) + cc(i, j + 1)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
q4(i, j) = rhs(i - 1, j) + w * (q1(i, j) + q2(i, j) + q3(i, j))
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
a(i, j) = a(i, j) + w * q1(i, j)
b(i, j) = b(i, j) + w * q2(i, j)
cc(i, j) = cc(i, j) + w * q3(i, j)
rhs(i, j) = rhs(i, j) + w * q4(i, j)
enddo
enddo
enddo
end
`

// ---------------------------------------------------------------------
// hydflo — hydrodynamic flow over (n+2)³ state arrays distributed
// (*,BLOCK,BLOCK) ("eight 5×(n+2)³ arrays", §5). The flux routine
// computes directional fluxes from seven state fields and applies them
// in five conservative updates; hydro is a two-stage stencil pass.
const hydfloFluxSrc = `
routine flux(n, steps)
real qa(n + 2, n + 2, n + 2), qb(n + 2, n + 2, n + 2), qc(n + 2, n + 2, n + 2)
real qd(n + 2, n + 2, n + 2), qe(n + 2, n + 2, n + 2), qf(n + 2, n + 2, n + 2)
real qg(n + 2, n + 2, n + 2)
real fx(n + 2, n + 2, n + 2), fy(n + 2, n + 2, n + 2), wk(n + 2, n + 2, n + 2)
real cfl
!hpf$ distribute (*, block, block) :: qa, qb, qc, qd, qe, qf, qg, fx, fy, wk
cfl = 0.1
do i = 1, n + 2
do j = 1, n + 2
do k = 1, n + 2
qa(i, j, k) = 1 + mod(i + j + k, 3) * 0.2
qb(i, j, k) = 1 + mod(i + 2 * j + k, 4) * 0.15
qc(i, j, k) = 1 + mod(i + j + 2 * k, 5) * 0.1
qd(i, j, k) = 1 + mod(2 * i + j + k, 3) * 0.25
qe(i, j, k) = 1 + mod(i + 3 * j + k, 6) * 0.05
qf(i, j, k) = 1 + mod(3 * i + j + k, 4) * 0.12
qg(i, j, k) = 1 + mod(i + j + 3 * k, 5) * 0.08
fx(i, j, k) = 0
fy(i, j, k) = 0
wk(i, j, k) = 0
enddo
enddo
enddo
do it = 1, steps
do i = 2, n + 1
do j = 2, n + 1
do k = 2, n + 1
fx(i, j, k) = qa(i, j - 1, k) - qa(i, j + 1, k) + qb(i, j - 1, k) - qb(i, j + 1, k) + qc(i, j - 1, k) - qc(i, j + 1, k) + qd(i, j - 1, k) - qd(i, j + 1, k) + qe(i, j - 1, k) - qe(i, j + 1, k) + qf(i, j - 1, k) - qf(i, j + 1, k) + qg(i, j - 1, k) - qg(i, j + 1, k)
enddo
enddo
enddo
do i = 2, n + 1
do j = 2, n + 1
do k = 2, n + 1
fy(i, j, k) = qa(i, j, k - 1) - qa(i, j, k + 1) + qb(i, j, k - 1) - qb(i, j, k + 1) + qc(i, j, k - 1) - qc(i, j, k + 1) + qd(i, j, k - 1) - qd(i, j, k + 1) + qe(i, j, k - 1) - qe(i, j, k + 1) + qf(i, j, k - 1) - qf(i, j, k + 1) + qg(i, j, k - 1) - qg(i, j, k + 1)
enddo
enddo
enddo
do i = 2, n + 1
do j = 2, n + 1
do k = 2, n + 1
wk(i, j, k) = qa(i, j - 1, k) + qa(i, j + 1, k) + qb(i, j - 1, k) + qb(i, j + 1, k) + qc(i, j - 1, k) + qc(i, j + 1, k) + qd(i, j - 1, k) + qd(i, j + 1, k) + qe(i, j - 1, k) + qe(i, j + 1, k) + qf(i, j - 1, k) + qf(i, j + 1, k) + qg(i, j - 1, k) + qg(i, j + 1, k)
enddo
enddo
enddo
do i = 2, n + 1
do j = 2, n
do k = 2, n
qa(i, j, k) = qa(i, j, k) - cfl * (fx(i, j + 1, k) - fx(i, j, k)) - cfl * (fy(i, j, k + 1) - fy(i, j, k))
enddo
enddo
enddo
do i = 2, n + 1
do j = 2, n
do k = 2, n
qb(i, j, k) = qb(i, j, k) - cfl * (fx(i, j + 1, k) - fx(i, j, k)) - cfl * (fy(i, j, k + 1) - fy(i, j, k))
enddo
enddo
enddo
do i = 2, n + 1
do j = 2, n
do k = 2, n
qc(i, j, k) = qc(i, j, k) - cfl * (fx(i, j + 1, k) - fx(i, j, k)) - cfl * (fy(i, j, k + 1) - fy(i, j, k))
enddo
enddo
enddo
do i = 2, n + 1
do j = 2, n
do k = 2, n
qd(i, j, k) = qd(i, j, k) - cfl * (fx(i, j + 1, k) - fx(i, j, k)) - cfl * (fy(i, j, k + 1) - fy(i, j, k))
enddo
enddo
enddo
do i = 2, n + 1
do j = 2, n
do k = 2, n
qe(i, j, k) = qe(i, j, k) - cfl * (fx(i, j + 1, k) - fx(i, j, k)) - cfl * (fy(i, j, k + 1) - fy(i, j, k))
enddo
enddo
enddo
do i = 2, n + 1
do j = 2, n
do k = 2, n
qf(i, j, k) = qf(i, j, k) + cfl * wk(i, j, k)
enddo
enddo
enddo
do i = 2, n + 1
do j = 2, n
do k = 2, n
qg(i, j, k) = qg(i, j, k) - cfl * wk(i, j, k)
enddo
enddo
enddo
enddo
end
`

const hydfloHydroSrc = `
routine hydro(n, steps)
real da(n + 2, n + 2, n + 2), db(n + 2, n + 2, n + 2), dc(n + 2, n + 2, n + 2)
real t1(n + 2, n + 2, n + 2), t2(n + 2, n + 2, n + 2)
real cfl
!hpf$ distribute (*, block, block) :: da, db, dc, t1, t2
cfl = 0.05
do i = 1, n + 2
do j = 1, n + 2
do k = 1, n + 2
da(i, j, k) = 1 + mod(i + j + k, 4) * 0.2
db(i, j, k) = 1 + mod(i + 2 * j + k, 3) * 0.3
dc(i, j, k) = 1 + mod(i + j + 2 * k, 5) * 0.1
t1(i, j, k) = 0
t2(i, j, k) = 0
enddo
enddo
enddo
do it = 1, steps
do i = 2, n + 1
do j = 2, n + 1
do k = 2, n + 1
t1(i, j, k) = da(i, j - 1, k) + da(i, j + 1, k) + db(i, j - 1, k) + db(i, j + 1, k)
dc(i, j, k) = da(i, j, k) + db(i, j, k)
enddo
enddo
enddo
do i = 2, n + 1
do j = 2, n + 1
do k = 2, n + 1
t2(i, j, k) = 0.5 * t1(i, j, k) + da(i, j, k - 1) + da(i, j, k + 1) + db(i, j, k - 1) + db(i, j, k + 1) + dc(i, j, k - 1) + dc(i, j, k + 1) + dc(i, j - 1, k) + dc(i, j + 1, k)
enddo
enddo
enddo
do i = 2, n + 1
do j = 2, n + 1
do k = 2, n + 1
da(i, j, k) = da(i, j, k) + cfl * t2(i, j, k)
db(i, j, k) = db(i, j, k) - cfl * t2(i, j, k)
enddo
enddo
enddo
enddo
end
`

// Programs lists the Fig. 10(a) rows in paper order.
func Programs() []*Program {
	steps := func(extra map[string]int) func(n int) map[string]int {
		return func(n int) map[string]int {
			m := map[string]int{"n": n, "steps": 2}
			for k, v := range extra {
				m[k] = v
			}
			return m
		}
	}
	return []*Program{
		{
			Bench: "shallow", Routine: "main", CommType: core.KindShift,
			Source: shallowSrc, Params: steps(nil), DefaultN: 64,
			Procs: map[string]int{"SP2": 25, "NOW": 8},
		},
		{
			Bench: "gravity", Routine: "main", CommType: core.KindShift,
			Source: gravitySrc,
			Params: func(n int) map[string]int {
				return map[string]int{"nx": n, "ny": n, "nz": n, "steps": 1}
			},
			DefaultN: 16,
			Procs:    map[string]int{"SP2": 25, "NOW": 8},
		},
		{
			Bench: "trimesh", Routine: "normdot", CommType: core.KindShift,
			Source: trimeshNormdotSrc, Params: steps(nil), DefaultN: 64,
			Procs: map[string]int{"SP2": 25, "NOW": 8},
		},
		{
			Bench: "trimesh", Routine: "gauss", CommType: core.KindShift,
			Source: trimeshGaussSrc, Params: steps(nil), DefaultN: 64,
			Procs: map[string]int{"SP2": 25, "NOW": 8},
		},
		{
			Bench: "hydflo", Routine: "flux", CommType: core.KindShift,
			Source: hydfloFluxSrc, Params: steps(nil), DefaultN: 16,
			Procs: map[string]int{"SP2": 25, "NOW": 8},
		},
		{
			Bench: "hydflo", Routine: "hydro", CommType: core.KindShift,
			Source: hydfloHydroSrc, Params: steps(nil), DefaultN: 16,
			Procs: map[string]int{"SP2": 25, "NOW": 8},
		},
	}
}

// ByName returns the program for a bench/routine pair.
func ByName(bench, routine string) (*Program, error) {
	for _, p := range Programs() {
		if p.Bench == bench && p.Routine == routine {
			return p, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown program %s/%s", bench, routine)
}
