package history

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gcao/internal/bench"
)

// sweep fabricates a small BenchResult whose comb entry has the given
// bytes against a fixed bound of 100, so the gap ratio is bytes/100.
func sweep(rev string, bytes float64) bench.BenchResult {
	mk := func(version string, b float64) bench.BenchEntry {
		return bench.BenchEntry{
			Chart: "b", Bench: "shallow", Routine: "main",
			Machine: "SP2", Procs: 16, N: 512, Version: version,
			RawCPU: 1.0, RawNet: b / 1e6,
			Messages: 10, Bytes: b, StaticGroups: 3,
			BoundBytes: 100, GapRatio: b / 100,
		}
	}
	return bench.BenchResult{
		Rev:     rev,
		Entries: []bench.BenchEntry{mk("orig", 4*bytes), mk("nored", 2*bytes), mk("comb", bytes)},
	}
}

func tmpStore(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "history.jsonl")
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	recs, err := Load(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("got %d records from a missing file", len(recs))
	}
}

func TestAppendLoadRoundTrip(t *testing.T) {
	path := tmpStore(t)
	r1, err := Append(path, "aaa1111", 1000, sweep("aaa1111", 400))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Append(path, "bbb2222", 2000, sweep("bbb2222", 300))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seq != 1 || r2.Seq != 2 {
		t.Fatalf("seqs = %d, %d, want 1, 2", r1.Seq, r2.Seq)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Rev != "aaa1111" || recs[1].Rev != "bbb2222" {
		t.Fatalf("round trip lost data: %+v", recs)
	}
	if got := recs[1].Result.Entries[2].GapRatio; got != 3 {
		t.Fatalf("comb gap ratio = %v, want 3", got)
	}
}

// TestTruncatedLastLine kills an append mid-write: the final line is
// cut off. Load must drop exactly that line, silently.
func TestTruncatedLastLine(t *testing.T) {
	path := tmpStore(t)
	if _, err := Append(path, "aaa1111", 1000, sweep("aaa1111", 400)); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(path, "bbb2222", 2000, sweep("bbb2222", 300)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-37], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatalf("truncated tail must be forgiven, got %v", err)
	}
	if len(recs) != 1 || recs[0].Rev != "aaa1111" {
		t.Fatalf("want the one intact record, got %+v", recs)
	}
}

// TestMidFileCorruptionFails: garbage before the final line is real
// corruption, not a torn append, and must be an error.
func TestMidFileCorruptionFails(t *testing.T) {
	// Build the damage by hand — Append itself refuses to bury a torn
	// tail, so a store with mid-file garbage can only come from outside.
	path := tmpStore(t)
	good := tmpStore(t)
	if _, err := Append(good, "aaa1111", 1000, sweep("aaa1111", 400)); err != nil {
		t.Fatal(err)
	}
	line, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append(append([]byte{}, line...), []byte("{\"seq\": not json\n")...)
	corrupt = append(corrupt, line...)
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("mid-file garbage loaded without error")
	}
}

// TestAppendAfterTruncation: Append onto a torn tail must repair the
// store, not bury the fragment mid-file.
func TestAppendAfterTruncation(t *testing.T) {
	path := tmpStore(t)
	if _, err := Append(path, "aaa1111", 1000, sweep("aaa1111", 400)); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(path, "bbb2222", 2000, sweep("bbb2222", 300)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-41], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Append(path, "ccc3333", 3000, sweep("ccc3333", 200))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 2 {
		t.Fatalf("seq after losing record 2 = %d, want 2", rec.Seq)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatalf("store not repaired: %v", err)
	}
	if len(recs) != 2 || recs[0].Rev != "aaa1111" || recs[1].Rev != "ccc3333" {
		t.Fatalf("repaired store = %+v", recs)
	}
	raw, _ := os.ReadFile(path)
	if strings.Contains(string(raw[:len(raw)-1]), "bbb2222") {
		t.Fatal("torn fragment still buried in the store")
	}
}

// TestDuplicateRev: re-running one commit keeps only the latest run.
func TestDuplicateRev(t *testing.T) {
	path := tmpStore(t)
	for i, bytes := range []float64{400, 300, 350} {
		rev := "aaa1111"
		if i == 1 {
			rev = "bbb2222"
		}
		if _, err := Append(path, rev, int64(i)*1000, sweep(rev, bytes)); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	dd := Dedupe(recs)
	if len(dd) != 2 {
		t.Fatalf("deduped to %d records, want 2", len(dd))
	}
	// The aaa1111 re-run (seq 3, bytes 350) must win and order by seq:
	// bbb2222 (seq 2) first, then aaa1111 (seq 3).
	if dd[0].Rev != "bbb2222" || dd[1].Rev != "aaa1111" || dd[1].Seq != 3 {
		t.Fatalf("dedupe order = %+v", dd)
	}
	if got := dd[1].Result.Entries[2].Bytes; got != 350 {
		t.Fatalf("kept run has bytes %v, want the re-run's 350", got)
	}
}

func TestTrendAndCheck(t *testing.T) {
	path := tmpStore(t)
	for i, bytes := range []float64{400, 300} {
		rev := []string{"aaa1111", "bbb2222"}[i]
		if _, err := Append(path, rev, int64(i)*1000, sweep(rev, bytes)); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	series := Trend(recs, "comb")
	if len(series) != 1 || series[0].Key != "b/shallow@SP2" {
		t.Fatalf("series = %+v", series)
	}
	pts := series[0].Points
	if len(pts) != 2 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].GapRatio != 4 || pts[1].GapRatio != 3 {
		t.Fatalf("gap ratios = %v, %v, want 4, 3", pts[0].GapRatio, pts[1].GapRatio)
	}
	if math.Abs(pts[1].PctOfOptimal-100.0/3) > 1e-9 {
		t.Fatalf("pct of optimal = %v", pts[1].PctOfOptimal)
	}
	// 400 -> 300 improved: no regression.
	if regs := Check(recs, "comb", 0.05); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
	// Inject a regression: a third revision with 60% more traffic.
	if _, err := Append(path, "ccc3333", 3000, sweep("ccc3333", 480)); err != nil {
		t.Fatal(err)
	}
	recs, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	regs := Check(recs, "comb", 0.05)
	if len(regs) != 1 {
		t.Fatalf("injected regression not flagged: %v", regs)
	}
	r := regs[0]
	if r.Key != "b/shallow@SP2" || r.Prev != 3 || r.Cur != 4.8 || r.CurRev != "ccc3333" {
		t.Fatalf("regression = %+v", r)
	}
	// Within tolerance passes.
	if regs := Check(recs, "comb", 0.65); len(regs) != 0 {
		t.Fatalf("tolerant check still flags: %v", regs)
	}
}

func TestCheckSingleRevisionPasses(t *testing.T) {
	path := tmpStore(t)
	if _, err := Append(path, "aaa1111", 1000, sweep("aaa1111", 400)); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Check(recs, "comb", 0.05); len(regs) != 0 {
		t.Fatalf("one-revision history flagged: %v", regs)
	}
}
