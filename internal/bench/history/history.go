// Package history is the persistent benchmark-history store: an
// append-only JSONL file in which each line is one full benchmark
// sweep (a bench.BenchResult) stamped with the git revision it ran at
// and a monotonic sequence number. The format is chosen for
// durability under the failure it actually meets — a process killed
// mid-append — so Load tolerates a truncated final line (the store
// self-repairs on the next Append) while corruption anywhere else is
// reported as the error it is.
package history

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"gcao/internal/bench"
)

// Record is one line of the store: a benchmark sweep pinned to a
// revision and ordered by a per-file monotonic sequence.
type Record struct {
	// Seq orders records within one store file; Append assigns
	// max(existing)+1 so ordering survives even when revisions repeat
	// or clocks go backwards.
	Seq int `json:"seq"`
	// Rev is the git revision (or other label) the sweep ran at.
	Rev string `json:"rev"`
	// UnixNS is the caller-supplied wall-clock stamp of the run.
	UnixNS int64 `json:"unix_ns"`
	// Result is the full sweep document.
	Result bench.BenchResult `json:"result"`
}

// Load reads every intact record of a store file in sequence order. A
// missing file is an empty history, not an error. A truncated final
// line — the telltale of a killed append — is dropped with no error;
// garbage anywhere before the final line fails loudly, because that is
// real corruption no append could have caused.
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return read(f, path)
}

func read(r io.Reader, path string) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	lineNo := 0
	var pendingErr error // a bad line is only forgivable if it is last
	var pendingLine int
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if pendingErr != nil {
			return nil, fmt.Errorf("history: %s:%d: %w", path, pendingLine, pendingErr)
		}
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr, pendingLine = err, lineNo
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("history: %s: %w", path, err)
	}
	// pendingErr still set here means the malformed line was the final
	// one: a truncated append, silently dropped.
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs, nil
}

// Append adds one sweep to the store, creating the file if needed, and
// assigns Seq = max(existing)+1. If the file's last append was cut off
// mid-line (no trailing newline, or a truncated record), appending
// blindly would bury the broken fragment mid-file where Load rightly
// refuses to forgive it — so Append instead rewrites the store from
// the intact records plus the new one, via an atomic rename.
func Append(path string, rev string, unixNS int64, result bench.BenchResult) (Record, error) {
	recs, err := Load(path)
	if err != nil {
		return Record{}, err
	}
	maxSeq := 0
	for _, r := range recs {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	rec := Record{Seq: maxSeq + 1, Rev: rev, UnixNS: unixNS, Result: result}

	damaged, err := tailDamaged(path)
	if err != nil {
		return Record{}, err
	}
	if damaged {
		// Rewrite from the intact records: atomic replace via rename so
		// a second crash cannot make things worse.
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return Record{}, err
		}
		for _, r := range append(recs, rec) {
			if err := writeRecord(f, r); err != nil {
				f.Close()
				os.Remove(tmp)
				return Record{}, err
			}
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return Record{}, err
		}
		if err := os.Rename(tmp, path); err != nil {
			return Record{}, err
		}
		return rec, nil
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return Record{}, err
	}
	if err := writeRecord(f, rec); err != nil {
		f.Close()
		return Record{}, err
	}
	return rec, f.Close()
}

func writeRecord(w io.Writer, r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// tailDamaged reports whether the file ends mid-record: either the
// final byte is not a newline, or the final line is not valid JSON.
func tailDamaged(path string) (bool, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if len(b) == 0 {
		return false, nil
	}
	if b[len(b)-1] != '\n' {
		return true, nil
	}
	lines := bytes.Split(bytes.TrimRight(b, "\n"), []byte("\n"))
	last := bytes.TrimSpace(lines[len(lines)-1])
	if len(last) == 0 {
		return false, nil
	}
	var rec Record
	return json.Unmarshal(last, &rec) != nil, nil
}

// Dedupe collapses repeated revisions — re-runs of one commit — to the
// latest record of each rev (highest Seq wins), preserving sequence
// order among the survivors.
func Dedupe(recs []Record) []Record {
	best := map[string]Record{}
	for _, r := range recs {
		if prev, ok := best[r.Rev]; !ok || r.Seq > prev.Seq {
			best[r.Rev] = r
		}
	}
	out := make([]Record, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Latest returns the newest record (highest Seq), or false on an empty
// history.
func Latest(recs []Record) (Record, bool) {
	if len(recs) == 0 {
		return Record{}, false
	}
	best := recs[0]
	for _, r := range recs[1:] {
		if r.Seq > best.Seq {
			best = r
		}
	}
	return best, true
}

// Point is one revision's aggregate of one benchmark series.
type Point struct {
	Rev          string  `json:"rev"`
	Seq          int     `json:"seq"`
	UnixNS       int64   `json:"unix_ns"`
	Bytes        float64 `json:"bytes"`
	BoundBytes   float64 `json:"bound_bytes"`
	GapRatio     float64 `json:"gap_ratio"`
	PctOfOptimal float64 `json:"pct_of_optimal"`
	TotalSeconds float64 `json:"total_seconds"`
}

// Series is one benchmark's trajectory across revisions for a fixed
// compiler version: the per-revision traffic, bound, gap and time,
// summed over the benchmark's problem sizes.
type Series struct {
	// Key identifies the benchmark: "chart/bench@machine".
	Key    string  `json:"key"`
	Points []Point `json:"points"`
}

// Trend aggregates a history into per-benchmark series for one
// compiler version ("orig", "nored", "comb"). Duplicate revisions are
// deduped (latest run of a rev wins); within a record, entries of one
// benchmark are summed over problem sizes so each revision is a single
// point per series.
func Trend(recs []Record, version string) []Series {
	recs = Dedupe(recs)
	type agg struct {
		bytes, bound, seconds float64
	}
	byKey := map[string][]Point{}
	var order []string
	for _, rec := range recs {
		sums := map[string]*agg{}
		for _, e := range rec.Result.Entries {
			if e.Version != version {
				continue
			}
			k := seriesKey(e)
			a := sums[k]
			if a == nil {
				a = &agg{}
				sums[k] = a
				if _, seen := byKey[k]; !seen && !contains(order, k) {
					order = append(order, k)
				}
			}
			a.bytes += e.Bytes
			a.bound += e.BoundBytes
			a.seconds += e.RawTotal()
		}
		for k, a := range sums {
			p := Point{
				Rev: rec.Rev, Seq: rec.Seq, UnixNS: rec.UnixNS,
				Bytes: a.bytes, BoundBytes: a.bound,
				TotalSeconds: a.seconds,
			}
			if a.bound > 0 {
				p.GapRatio = a.bytes / a.bound
			}
			switch {
			case a.bytes > 0:
				p.PctOfOptimal = a.bound / a.bytes * 100
			case a.bound <= 0:
				p.PctOfOptimal = 100
			}
			byKey[k] = append(byKey[k], p)
		}
	}
	sort.Strings(order)
	out := make([]Series, 0, len(order))
	for _, k := range order {
		out = append(out, Series{Key: k, Points: byKey[k]})
	}
	return out
}

func seriesKey(e bench.BenchEntry) string {
	return e.Chart + "/" + e.Bench + "@" + e.Machine
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// NativePoint is one revision's native-backend wall clock for one
// benchmark.
type NativePoint struct {
	Rev           string  `json:"rev"`
	Seq           int     `json:"seq"`
	UnixNS        int64   `json:"unix_ns"`
	Seconds       float64 `json:"native_seconds"`
	SpeedupVsOrig float64 `json:"speedup_vs_orig"`
	// WireBytes is the run's raw bytes on the wire; zero for records
	// written before the native backend measured it.
	WireBytes int64 `json:"wire_bytes,omitempty"`
	// Profiler fields: compute skew, blocked-time fraction and the
	// fitted machine constants; zero for records written before the
	// native runtime profiler existed.
	SkewRatio   float64 `json:"skew_ratio,omitempty"`
	BlockedFrac float64 `json:"blocked_frac,omitempty"`
	FittedL     float64 `json:"fitted_l_seconds,omitempty"`
	FittedG     float64 `json:"fitted_g_seconds_per_byte,omitempty"`
}

// NativeSeries is one benchmark's native wall-clock trajectory across
// revisions for a fixed compiler version.
type NativeSeries struct {
	// Key identifies the benchmark: "bench/routine".
	Key    string        `json:"key"`
	Points []NativePoint `json:"points"`
}

// NativeTrend aggregates a history's native-backend measurements into
// per-benchmark series for one compiler version. Records written
// before the native backend existed carry no native entries and simply
// contribute no points — old histories remain loadable and gapless
// series render shorter, never wrong. Wall-clock is host-dependent, so
// nothing gates on these series; they exist for the dashboard.
func NativeTrend(recs []Record, version string) []NativeSeries {
	recs = Dedupe(recs)
	byKey := map[string][]NativePoint{}
	var order []string
	for _, rec := range recs {
		for _, e := range rec.Result.Native {
			if e.Version != version {
				continue
			}
			k := e.Bench + "/" + e.Routine
			if _, seen := byKey[k]; !seen && !contains(order, k) {
				order = append(order, k)
			}
			byKey[k] = append(byKey[k], NativePoint{
				Rev: rec.Rev, Seq: rec.Seq, UnixNS: rec.UnixNS,
				Seconds: e.NativeSeconds, SpeedupVsOrig: e.SpeedupVsOrig,
				WireBytes: e.WireBytes,
				SkewRatio: e.SkewRatio, BlockedFrac: e.BlockedFrac,
				FittedL: e.FittedL, FittedG: e.FittedG,
			})
		}
	}
	sort.Strings(order)
	out := make([]NativeSeries, 0, len(order))
	for _, k := range order {
		out = append(out, NativeSeries{Key: k, Points: byKey[k]})
	}
	return out
}

// Regression is one series whose newest revision's gap ratio got worse
// than the previous revision's by more than the tolerance.
type Regression struct {
	Key     string  `json:"key"`
	PrevRev string  `json:"prev_rev"`
	CurRev  string  `json:"cur_rev"`
	Prev    float64 `json:"prev_gap"`
	Cur     float64 `json:"cur_gap"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: gap %.3f (rev %s) -> %.3f (rev %s), %.1f%% worse",
		r.Key, r.Prev, r.PrevRev, r.Cur, r.CurRev, (r.Cur/r.Prev-1)*100)
}

// Check compares the newest record's gap ratios against the previous
// record's, per series, and reports every series that regressed past
// the relative tolerance. Histories with fewer than two (deduped)
// revisions have nothing to compare and pass vacuously. Gap ratios are
// arch-deterministic (byte counts over byte counts), so Check is safe
// to gate CI on where wall-clock seconds would flake.
func Check(recs []Record, version string, tol float64) []Regression {
	var regs []Regression
	for _, s := range Trend(recs, version) {
		if len(s.Points) < 2 {
			continue
		}
		prev, cur := s.Points[len(s.Points)-2], s.Points[len(s.Points)-1]
		if prev.GapRatio <= 0 {
			continue // no measurable baseline gap
		}
		if cur.GapRatio > prev.GapRatio*(1+tol) {
			regs = append(regs, Regression{
				Key: s.Key, PrevRev: prev.Rev, CurRev: cur.Rev,
				Prev: prev.GapRatio, Cur: cur.GapRatio,
			})
		}
	}
	return regs
}
