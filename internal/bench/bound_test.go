package bench

import (
	"strconv"
	"testing"

	"gcao/internal/core"
	"gcao/internal/core/bound"
	"gcao/internal/machine"
	"gcao/internal/parser"
	"gcao/internal/sem"
	"gcao/internal/spmd"
)

var soundnessVersions = []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine}

// checkBoundSoundness places an analysis under every version and
// asserts the lower bound never exceeds the estimated traffic nor the
// simulated ledger traffic (when simulate is true).
func checkBoundSoundness(t *testing.T, label string, a *core.Analysis, m machine.Machine, simulate bool) {
	t.Helper()
	b := bound.Compute(a)
	if b.TotalBytes < 0 {
		t.Fatalf("%s: negative bound %v", label, b.TotalBytes)
	}
	for _, v := range soundnessVersions {
		res, err := a.Place(core.Options{Version: v})
		if err != nil {
			t.Fatalf("%s %v: place: %v", label, v, err)
		}
		cost, err := spmd.Estimate(res, m)
		if err != nil {
			t.Fatalf("%s %v: estimate: %v", label, v, err)
		}
		if b.TotalBytes > cost.Bytes {
			t.Errorf("%s %v: bound %.0f exceeds estimated bytes %.0f\nterms: %v",
				label, v, b.TotalBytes, cost.Bytes, b.Terms)
		}
		if !simulate {
			continue
		}
		run, err := spmd.Run(res, m, a.Unit.Grid.NumProcs())
		if err != nil {
			t.Fatalf("%s %v: run: %v", label, v, err)
		}
		if b.TotalBytes > float64(run.Ledger.BytesMoved) {
			t.Errorf("%s %v: bound %.0f exceeds simulated ledger bytes %d\nterms: %v",
				label, v, b.TotalBytes, run.Ledger.BytesMoved, b.Terms)
		}
	}
	// The partial-redundancy extension trims sections below SectionAt;
	// the bound must survive it too.
	res, err := a.Place(core.Options{Version: core.VersionCombine, PartialRedundancy: true})
	if err != nil {
		t.Fatalf("%s partial: place: %v", label, err)
	}
	cost, err := spmd.Estimate(res, m)
	if err != nil {
		t.Fatalf("%s partial: estimate: %v", label, err)
	}
	if b.TotalBytes > cost.Bytes {
		t.Errorf("%s partial: bound %.0f exceeds estimated bytes %.0f", label, b.TotalBytes, cost.Bytes)
	}
}

// TestBoundSoundFig10Estimates sweeps every Fig. 10 chart spec at its
// full problem sizes: for every benchmark × size × version the bound
// must not exceed the analytic byte estimate.
func TestBoundSoundFig10Estimates(t *testing.T) {
	for _, spec := range ChartSpecs() {
		m, err := machine.ByName(spec.Machine)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := ByName(spec.Bench, spec.Routines[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range spec.Sizes {
			a, err := pr.Compile(n, spec.Procs)
			if err != nil {
				t.Fatal(err)
			}
			label := spec.ID + "/" + spec.Bench + "/n=" + strconv.Itoa(n)
			checkBoundSoundness(t, label, a, m, false)
		}
	}
}

// TestBoundSoundFig10Simulated runs every benchmark at a small size on
// the functional simulator: the bound must not exceed the bytes the
// ledger actually moved, under any compiler version.
func TestBoundSoundFig10Simulated(t *testing.T) {
	m := machine.SP2()
	for _, pr := range Programs() {
		n := 6
		if pr.Bench == "shallow" || pr.Bench == "trimesh" {
			n = 8
		}
		a, err := pr.Compile(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		checkBoundSoundness(t, pr.Bench+"/"+pr.Routine, a, m, true)
	}
}

// TestBoundSoundRandomCorpus fuzzes the bound: for random programs the
// floor must stay below both the estimate and the simulated ledger of
// all three versions.
func TestBoundSoundRandomCorpus(t *testing.T) {
	maxSeed := int64(25)
	if testing.Short() {
		maxSeed = 5
	}
	m := machine.SP2()
	gen := &progGen{}
	for seed := int64(1); seed <= maxSeed; seed++ {
		src := gen.generate(seed)
		r, err := parser.ParseRoutine(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		u, err := sem.Analyze(r, map[string]int{"n": 8, "steps": 2}, sem.Options{Procs: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, err := core.NewAnalysis(u)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkBoundSoundness(t, "fuzz/seed="+strconv.FormatInt(seed, 10), a, m, true)
	}
}

// TestBoundZeroOnOneProcessor asserts the degenerate case: a single
// processor never communicates, so the bound is exactly zero.
func TestBoundZeroOnOneProcessor(t *testing.T) {
	pr, err := ByName("shallow", "main")
	if err != nil {
		t.Fatal(err)
	}
	a, err := pr.Compile(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b := bound.Compute(a); b.TotalBytes != 0 {
		t.Fatalf("single-processor bound = %v, want 0", b.TotalBytes)
	}
}

// TestBoundPositiveOnBenchmarks asserts the bound is not vacuous: each
// paper benchmark at paper scale has a strictly positive floor, so the
// gap dashboard has a denominator to report.
func TestBoundPositiveOnBenchmarks(t *testing.T) {
	for _, pr := range Programs() {
		a, err := pr.Compile(pr.DefaultN, pr.Procs["SP2"])
		if err != nil {
			t.Fatal(err)
		}
		b := bound.Compute(a)
		if b.TotalBytes <= 0 {
			t.Errorf("%s/%s: bound %v, want > 0", pr.Bench, pr.Routine, b.TotalBytes)
		}
	}
}
