// Package ast defines the abstract syntax tree of the mini-HPF input
// language: routines containing declarations, HPF distribution
// directives, DO loops, IF statements, and (array-)assignments whose
// subscripts may be F90 section triplets. The scalarizer rewrites
// section assignments into elementwise DO loops before analysis, so
// the communication pass only ever sees scalar subscripts.
package ast

import (
	"fmt"
	"strings"

	"gcao/internal/source"
)

// ElemType is the element type of a variable.
type ElemType int

const (
	Real ElemType = iota
	Integer
)

func (t ElemType) String() string {
	if t == Integer {
		return "integer"
	}
	return "real"
}

// Program is a whole compilation unit.
type Program struct {
	Routines []*Routine
}

// Routine finds a routine by (lower-cased) name, or nil.
func (p *Program) Routine(name string) *Routine {
	for _, r := range p.Routines {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Routine is one procedure. Params are integer scalars whose values
// are supplied at compile time (the paper compiles for fixed problem
// sizes; pHPF likewise specializes on the data partitioning).
type Routine struct {
	Name   string
	Params []string
	Decls  []*Decl
	Dirs   []Dir
	Body   []Stmt
	Pos    source.Pos
}

// Decl declares one or more variables of an element type. A variable
// with Bounds is an array; otherwise it is a scalar.
type Decl struct {
	Type  ElemType
	Items []DeclItem
	Pos   source.Pos
}

// DeclItem is a single declared variable.
type DeclItem struct {
	Name   string
	Bounds []Bound // nil for scalars
}

// Bound is one array dimension declaration lo:hi (lo defaults to 1).
type Bound struct {
	Lo, Hi Expr // Lo may be nil meaning 1
}

// Dir is an HPF directive.
type Dir interface {
	dirNode()
	String() string
}

// ProcessorsDir declares a named processor arrangement:
// !hpf$ processors p(4,4)
type ProcessorsDir struct {
	Name  string
	Shape []Expr
	Pos   source.Pos
}

func (*ProcessorsDir) dirNode() {}
func (d *ProcessorsDir) String() string {
	parts := make([]string, len(d.Shape))
	for i, e := range d.Shape {
		parts[i] = ExprString(e)
	}
	return fmt.Sprintf("!hpf$ processors %s(%s)", d.Name, strings.Join(parts, ","))
}

// DistKind is a per-dimension distribution keyword.
type DistKind int

const (
	DistStar DistKind = iota
	DistBlock
	DistCyclic
)

func (k DistKind) String() string {
	switch k {
	case DistStar:
		return "*"
	case DistBlock:
		return "block"
	case DistCyclic:
		return "cyclic"
	}
	return "?"
}

// DistributeDir distributes arrays: !hpf$ distribute a(block,block) onto p
// A single directive may name several arrays sharing the same pattern
// via "distribute (block,block) onto p :: a, b, c".
type DistributeDir struct {
	Arrays []string
	Kinds  []DistKind
	Onto   string // optional processors name
	Pos    source.Pos
}

func (*DistributeDir) dirNode() {}
func (d *DistributeDir) String() string {
	parts := make([]string, len(d.Kinds))
	for i, k := range d.Kinds {
		parts[i] = k.String()
	}
	s := fmt.Sprintf("!hpf$ distribute (%s)", strings.Join(parts, ","))
	if d.Onto != "" {
		s += " onto " + d.Onto
	}
	return s + " :: " + strings.Join(d.Arrays, ", ")
}

// Stmt is a statement.
type Stmt interface {
	stmtNode()
	StmtPos() source.Pos
}

// AssignStmt is "lhs = rhs". The LHS reference may carry section
// subscripts before scalarization.
type AssignStmt struct {
	LHS *Ref
	RHS Expr
	Pos source.Pos
	// Label is an optional source label carried through scalarization
	// so that analyses can report statements in terms of the original
	// program lines (used by the Fig. 4 running-example tests).
	Label string
}

func (*AssignStmt) stmtNode()             {}
func (s *AssignStmt) StmtPos() source.Pos { return s.Pos }

// CallStmt invokes another routine: call sub(a, n). The inliner
// (package inline) substitutes the callee's body before analysis —
// the paper defers interprocedural analysis to future work (§7), and
// full inlining is the standard way pHPF-era compilers realized it.
type CallStmt struct {
	Name string
	Args []Expr
	Pos  source.Pos
}

func (*CallStmt) stmtNode()             {}
func (s *CallStmt) StmtPos() source.Pos { return s.Pos }

// DoStmt is a counted DO loop: do v = lo, hi [, step].
type DoStmt struct {
	Var          string
	Lo, Hi, Step Expr // Step may be nil meaning 1
	Body         []Stmt
	Pos          source.Pos
}

func (*DoStmt) stmtNode()             {}
func (s *DoStmt) StmtPos() source.Pos { return s.Pos }

// IfStmt is if (cond) then ... [else ...] endif.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  source.Pos
}

func (*IfStmt) stmtNode()             {}
func (s *IfStmt) StmtPos() source.Pos { return s.Pos }

// Expr is an expression.
type Expr interface {
	exprNode()
	ExprPos() source.Pos
}

// NumLit is a numeric literal.
type NumLit struct {
	Text  string
	Value float64
	IsInt bool
	Pos   source.Pos
}

func (*NumLit) exprNode()             {}
func (e *NumLit) ExprPos() source.Pos { return e.Pos }

// Ident is a scalar variable or parameter reference.
type Ident struct {
	Name string
	Pos  source.Pos
}

func (*Ident) exprNode()             {}
func (e *Ident) ExprPos() source.Pos { return e.Pos }

// SubKind distinguishes element subscripts from section triplets.
type SubKind int

const (
	SubExpr  SubKind = iota // a(i+1)
	SubRange                // a(1:n:2) or a(:)
)

// Sub is one subscript.
type Sub struct {
	Kind SubKind
	X    Expr // element subscript (SubExpr)
	// Triplet parts; nil means the declared bound / step 1.
	Lo, Hi, Step Expr
}

// IsFull reports whether the subscript is a bare ":".
func (s Sub) IsFull() bool {
	return s.Kind == SubRange && s.Lo == nil && s.Hi == nil && s.Step == nil
}

// Ref is an array reference a(subs...) or a bare array name "a" (whole
// array, equivalent to all-":" subscripts).
type Ref struct {
	Name string
	Subs []Sub
	Pos  source.Pos
}

func (*Ref) exprNode()             {}
func (e *Ref) ExprPos() source.Pos { return e.Pos }

// HasSection reports whether any subscript is a range (so the ref
// denotes an array section rather than an element). A bare name with
// no subscripts also counts once the name is known to be an array; the
// parser cannot know that, so callers consult the symbol table.
func (e *Ref) HasSection() bool {
	for _, s := range e.Subs {
		if s.Kind == SubRange {
			return true
		}
	}
	return false
}

// BinOp is a binary operator.
type BinOp int

const (
	Add BinOp = iota
	Sub_
	Mul
	Div
	Pow
	CmpLt
	CmpGt
	CmpLe
	CmpGe
	CmpEq
	CmpNe
)

var binOpNames = map[BinOp]string{
	Add: "+", Sub_: "-", Mul: "*", Div: "/", Pow: "**",
	CmpLt: "<", CmpGt: ">", CmpLe: "<=", CmpGe: ">=", CmpEq: "==", CmpNe: "/=",
}

func (op BinOp) String() string { return binOpNames[op] }

// BinExpr is a binary operation.
type BinExpr struct {
	Op   BinOp
	X, Y Expr
	Pos  source.Pos
}

func (*BinExpr) exprNode()             {}
func (e *BinExpr) ExprPos() source.Pos { return e.Pos }

// UnaryExpr is unary minus.
type UnaryExpr struct {
	X   Expr
	Pos source.Pos
}

func (*UnaryExpr) exprNode()             {}
func (e *UnaryExpr) ExprPos() source.Pos { return e.Pos }

// Call is an intrinsic call: sum, sqrt, abs, min, max, cshift, mod.
type Call struct {
	Func string
	Args []Expr
	Pos  source.Pos
}

func (*Call) exprNode()             {}
func (e *Call) ExprPos() source.Pos { return e.Pos }

// Intrinsics lists the supported intrinsic functions.
var Intrinsics = map[string]bool{
	"sum": true, "sqrt": true, "abs": true, "min": true, "max": true,
	"mod": true, "exp": true,
}

// ExprString renders an expression back to surface syntax.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case nil:
		return ""
	case *NumLit:
		return e.Text
	case *Ident:
		return e.Name
	case *Ref:
		if len(e.Subs) == 0 {
			return e.Name
		}
		parts := make([]string, len(e.Subs))
		for i, s := range e.Subs {
			parts[i] = subString(s)
		}
		return e.Name + "(" + strings.Join(parts, ",") + ")"
	case *BinExpr:
		return "(" + ExprString(e.X) + " " + e.Op.String() + " " + ExprString(e.Y) + ")"
	case *UnaryExpr:
		return "(-" + ExprString(e.X) + ")"
	case *Call:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = ExprString(a)
		}
		return e.Func + "(" + strings.Join(parts, ",") + ")"
	}
	return fmt.Sprintf("<%T>", e)
}

func subString(s Sub) string {
	if s.Kind == SubExpr {
		return ExprString(s.X)
	}
	out := ExprString(s.Lo) + ":" + ExprString(s.Hi)
	if s.Step != nil {
		out += ":" + ExprString(s.Step)
	}
	return out
}

// StmtString renders a statement (single line for assignments,
// multi-line for compound statements) for diagnostics.
func StmtString(s Stmt) string {
	var b strings.Builder
	writeStmt(&b, s, 0)
	return strings.TrimRight(b.String(), "\n")
}

func writeStmt(b *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	switch s := s.(type) {
	case *AssignStmt:
		fmt.Fprintf(b, "%s%s = %s\n", ind, ExprString(s.LHS), ExprString(s.RHS))
	case *DoStmt:
		step := ""
		if s.Step != nil {
			step = ", " + ExprString(s.Step)
		}
		fmt.Fprintf(b, "%sdo %s = %s, %s%s\n", ind, s.Var, ExprString(s.Lo), ExprString(s.Hi), step)
		for _, c := range s.Body {
			writeStmt(b, c, depth+1)
		}
		fmt.Fprintf(b, "%senddo\n", ind)
	case *CallStmt:
		parts := make([]string, len(s.Args))
		for i, a := range s.Args {
			parts[i] = ExprString(a)
		}
		fmt.Fprintf(b, "%scall %s(%s)\n", ind, s.Name, strings.Join(parts, ", "))
	case *IfStmt:
		fmt.Fprintf(b, "%sif (%s) then\n", ind, ExprString(s.Cond))
		for _, c := range s.Then {
			writeStmt(b, c, depth+1)
		}
		if len(s.Else) > 0 {
			fmt.Fprintf(b, "%selse\n", ind)
			for _, c := range s.Else {
				writeStmt(b, c, depth+1)
			}
		}
		fmt.Fprintf(b, "%sendif\n", ind)
	}
}

// Walk visits every statement in the body, depth first, calling f.
func Walk(body []Stmt, f func(Stmt)) {
	for _, s := range body {
		f(s)
		switch s := s.(type) {
		case *DoStmt:
			Walk(s.Body, f)
		case *IfStmt:
			Walk(s.Then, f)
			Walk(s.Else, f)
		}
	}
}

// WalkExprs visits every expression in an expression tree, depth first.
func WalkExprs(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch e := e.(type) {
	case *BinExpr:
		WalkExprs(e.X, f)
		WalkExprs(e.Y, f)
	case *UnaryExpr:
		WalkExprs(e.X, f)
	case *Call:
		for _, a := range e.Args {
			WalkExprs(a, f)
		}
	case *Ref:
		for _, s := range e.Subs {
			WalkExprs(s.X, f)
			WalkExprs(s.Lo, f)
			WalkExprs(s.Hi, f)
			WalkExprs(s.Step, f)
		}
	}
}
