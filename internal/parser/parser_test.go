package parser

import (
	"strings"
	"testing"

	"gcao/internal/ast"
)

func parseOne(t *testing.T, src string) *ast.Routine {
	t.Helper()
	r, err := ParseRoutine(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return r
}

func TestRoutineShape(t *testing.T) {
	r := parseOne(t, `
routine foo(n, m)
real a(n, m), b(0:n+1)
integer k
!hpf$ processors p(2, 2)
!hpf$ distribute a(block, block) onto p
!hpf$ distribute (block) :: b
a(1, 1) = 0
end
`)
	if r.Name != "foo" {
		t.Errorf("name = %q", r.Name)
	}
	if len(r.Params) != 2 || r.Params[0] != "n" || r.Params[1] != "m" {
		t.Errorf("params = %v", r.Params)
	}
	if len(r.Decls) != 2 {
		t.Fatalf("decls = %d", len(r.Decls))
	}
	items := r.Decls[0].Items
	if len(items) != 2 || items[0].Name != "a" || len(items[0].Bounds) != 2 {
		t.Errorf("decl items = %+v", items)
	}
	if items[1].Bounds[0].Lo == nil {
		t.Error("b's lower bound 0 should be explicit")
	}
	if len(r.Dirs) != 3 {
		t.Fatalf("dirs = %d", len(r.Dirs))
	}
	pd, ok := r.Dirs[0].(*ast.ProcessorsDir)
	if !ok || pd.Name != "p" || len(pd.Shape) != 2 {
		t.Errorf("processors dir = %+v", r.Dirs[0])
	}
	dd, ok := r.Dirs[1].(*ast.DistributeDir)
	if !ok || dd.Arrays[0] != "a" || dd.Onto != "p" || dd.Kinds[0] != ast.DistBlock {
		t.Errorf("distribute dir = %+v", r.Dirs[1])
	}
	dd2 := r.Dirs[2].(*ast.DistributeDir)
	if len(dd2.Arrays) != 1 || dd2.Arrays[0] != "b" {
		t.Errorf(":: form arrays = %v", dd2.Arrays)
	}
	if len(r.Body) != 1 {
		t.Errorf("body stmts = %d", len(r.Body))
	}
}

func TestControlFlow(t *testing.T) {
	r := parseOne(t, `
routine cf(n)
real a(n)
real x
do i = 1, n, 2
if (x > 0) then
a(i) = 1
else
a(i) = 2
endif
enddo
do j = 1, n
a(j) = 0
end do
end
`)
	d, ok := r.Body[0].(*ast.DoStmt)
	if !ok || d.Var != "i" || d.Step == nil {
		t.Fatalf("do stmt = %+v", r.Body[0])
	}
	iff, ok := d.Body[0].(*ast.IfStmt)
	if !ok || len(iff.Then) != 1 || len(iff.Else) != 1 {
		t.Fatalf("if stmt = %+v", d.Body[0])
	}
	d2, ok := r.Body[1].(*ast.DoStmt)
	if !ok || d2.Step != nil {
		t.Fatalf("second do = %+v", r.Body[1])
	}
}

func TestSubscripts(t *testing.T) {
	r := parseOne(t, `
routine subs(n)
real a(n, n), b(n, n)
b(2:n, :) = a(1:n-1:2, 1)
end
`)
	as := r.Body[0].(*ast.AssignStmt)
	lhs := as.LHS
	if lhs.Subs[0].Kind != ast.SubRange || lhs.Subs[0].Hi == nil || lhs.Subs[0].Lo == nil {
		t.Errorf("lhs sub0 = %+v", lhs.Subs[0])
	}
	if !lhs.Subs[1].IsFull() {
		t.Errorf("lhs sub1 should be bare ':': %+v", lhs.Subs[1])
	}
	rhs := as.RHS.(*ast.Ref)
	if rhs.Subs[0].Kind != ast.SubRange || rhs.Subs[0].Step == nil {
		t.Errorf("rhs sub0 = %+v", rhs.Subs[0])
	}
	if rhs.Subs[1].Kind != ast.SubExpr {
		t.Errorf("rhs sub1 = %+v", rhs.Subs[1])
	}
}

func TestExprPrecedence(t *testing.T) {
	r := parseOne(t, `
routine e()
real x, y, z
x = y + z * 2 ** 3 ** 2
end
`)
	as := r.Body[0].(*ast.AssignStmt)
	// y + (z * (2 ** (3 ** 2)))
	add, ok := as.RHS.(*ast.BinExpr)
	if !ok || add.Op != ast.Add {
		t.Fatalf("top = %v", ast.ExprString(as.RHS))
	}
	mul, ok := add.Y.(*ast.BinExpr)
	if !ok || mul.Op != ast.Mul {
		t.Fatalf("rhs of + = %v", ast.ExprString(add.Y))
	}
	pow, ok := mul.Y.(*ast.BinExpr)
	if !ok || pow.Op != ast.Pow {
		t.Fatalf("rhs of * = %v", ast.ExprString(mul.Y))
	}
	// Right-associative power.
	if _, ok := pow.Y.(*ast.BinExpr); !ok {
		t.Errorf("power should be right associative: %v", ast.ExprString(pow))
	}
}

func TestIntrinsics(t *testing.T) {
	r := parseOne(t, `
routine s(n)
real g(n, n)
real x
x = sum(g(1, :)) + sqrt(abs(x)) + min(x, 2.0) + mod(3, 2)
end
`)
	as := r.Body[0].(*ast.AssignStmt)
	var calls []string
	ast.WalkExprs(as.RHS, func(e ast.Expr) {
		if c, ok := e.(*ast.Call); ok {
			calls = append(calls, c.Func)
		}
	})
	want := map[string]bool{"sum": true, "sqrt": true, "abs": true, "min": true, "mod": true}
	for _, c := range calls {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("missing calls: %v (got %v)", want, calls)
	}
}

func TestUnaryAndComparison(t *testing.T) {
	r := parseOne(t, `
routine u()
real x, y
if (-x <= y) then
y = -2 * x
endif
end
`)
	iff := r.Body[0].(*ast.IfStmt)
	cmp, ok := iff.Cond.(*ast.BinExpr)
	if !ok || cmp.Op != ast.CmpLe {
		t.Fatalf("cond = %v", ast.ExprString(iff.Cond))
	}
	if _, ok := cmp.X.(*ast.UnaryExpr); !ok {
		t.Errorf("lhs of <= should be unary minus: %v", ast.ExprString(cmp.X))
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"missing end", "routine f()\nx = 1\n", "missing 'end'"},
		{"unterminated do", "routine f()\ndo i = 1, 2\nx = 1\nend\n", "expected"},
		{"bad directive", "routine f()\n!hpf$ align a with b\nend\n", "unknown HPF directive"},
		{"empty input", "\n", "no routines"},
		{"garbage stmt", "routine f()\n+ 1\nend\n", "expected statement"},
		{"bad dist kind", "routine f()\nreal a(4)\n!hpf$ distribute a(diag)\nend\n", "distribution kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestMultipleRoutines(t *testing.T) {
	p, err := Parse(`
routine a()
real x
x = 1
end

routine b()
real y
y = 2
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Routines) != 2 || p.Routine("b") == nil || p.Routine("zzz") != nil {
		t.Errorf("routines = %d", len(p.Routines))
	}
	if _, err := ParseRoutine("routine a()\nreal x\nx=1\nend\nroutine b()\nreal y\ny=1\nend\n"); err == nil {
		t.Error("ParseRoutine must reject multi-routine input")
	}
}

func TestEndRoutineForm(t *testing.T) {
	if _, err := ParseRoutine("routine f()\nreal x\nx = 1\nend routine f\n"); err != nil {
		t.Errorf("'end routine name' form: %v", err)
	}
}
