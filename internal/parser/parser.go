// Package parser implements a recursive-descent parser for the
// mini-HPF language. See package ast for the tree it produces and
// package source for lexical conventions.
//
// Grammar (newline-terminated statements, case-insensitive keywords):
//
//	program   = { routine } .
//	routine   = "routine" name [ "(" name {"," name} ")" ] NL
//	            { decl | directive | stmt } "end" NL .
//	decl      = ("real"|"integer") item {"," item} NL .
//	item      = name [ "(" bound {"," bound} ")" ] .
//	bound     = expr [ ":" expr ] .
//	directive = "!hpf$" "processors" name "(" expr {"," expr} ")" NL
//	          | "!hpf$" "distribute" name "(" dk {"," dk} ")" ["onto" name] NL
//	          | "!hpf$" "distribute" "(" dk {"," dk} ")" ["onto" name]
//	            "::" name {"," name} NL .
//	dk        = "block" | "cyclic" | "*" .
//	stmt      = assign | do | if .
//	do        = "do" name "=" expr "," expr ["," expr] NL {stmt} enddo NL .
//	enddo     = "enddo" | "end" "do" .
//	if        = "if" "(" expr ")" "then" NL {stmt}
//	            ["else" NL {stmt}] endif NL .
//	endif     = "endif" | "end" "if" .
//	assign    = ref "=" expr NL .
//	ref       = name [ "(" sub {"," sub} ")" ] .
//	sub       = expr | [expr] ":" [expr] [":" expr] .
//	expr      = rel { ("<"|">"|"<="|">="|"=="|"/=") rel } .
//	rel       = term { ("+"|"-") term } .
//	term      = pow { ("*"|"/") pow } .
//	pow       = factor [ "**" pow ] .
//	factor    = number | ref | call | "(" expr ")" | "-" factor .
package parser

import (
	"fmt"

	"gcao/internal/ast"
	"gcao/internal/source"
)

type parser struct {
	toks []source.Token
	pos  int
}

// Parse parses a whole program.
func Parse(src string) (*ast.Program, error) {
	toks, err := source.ScanAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	p.skipNewlines()
	for !p.at(source.EOF) {
		r, err := p.routine()
		if err != nil {
			return nil, err
		}
		prog.Routines = append(prog.Routines, r)
		p.skipNewlines()
	}
	if len(prog.Routines) == 0 {
		return nil, fmt.Errorf("parser: no routines in input")
	}
	return prog, nil
}

// ParseRoutine parses a source fragment containing exactly one routine.
func ParseRoutine(src string) (*ast.Routine, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Routines) != 1 {
		return nil, fmt.Errorf("parser: expected 1 routine, found %d", len(prog.Routines))
	}
	return prog.Routines[0], nil
}

func (p *parser) cur() source.Token     { return p.toks[p.pos] }
func (p *parser) at(k source.Kind) bool { return p.cur().Kind == k }

func (p *parser) atKw(kw string) bool {
	t := p.cur()
	return t.Kind == source.Ident && t.Text == kw
}

func (p *parser) next() source.Token {
	t := p.toks[p.pos]
	if t.Kind != source.EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k source.Kind) (source.Token, error) {
	if !p.at(k) {
		return p.cur(), source.Errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) expectKw(kw string) error {
	if !p.atKw(kw) {
		return source.Errorf(p.cur().Pos, "expected %q, found %s", kw, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) expectNL() error {
	if p.at(source.EOF) {
		return nil
	}
	if !p.at(source.Newline) {
		return source.Errorf(p.cur().Pos, "expected end of statement, found %s", p.cur())
	}
	p.skipNewlines()
	return nil
}

func (p *parser) skipNewlines() {
	for p.at(source.Newline) {
		p.next()
	}
}

func (p *parser) routine() (*ast.Routine, error) {
	start := p.cur().Pos
	if err := p.expectKw("routine"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(source.Ident)
	if err != nil {
		return nil, err
	}
	r := &ast.Routine{Name: nameTok.Text, Pos: start}
	if p.at(source.LParen) {
		p.next()
		for !p.at(source.RParen) {
			t, err := p.expect(source.Ident)
			if err != nil {
				return nil, err
			}
			r.Params = append(r.Params, t.Text)
			if p.at(source.Comma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(source.RParen); err != nil {
			return nil, err
		}
	}
	if err := p.expectNL(); err != nil {
		return nil, err
	}
	// Declarations and directives may be interleaved before the body;
	// we also accept directives between statements (HPF allows comment
	// directives anywhere) but bind them at routine scope.
	for {
		switch {
		case p.atKw("real") || p.atKw("integer"):
			d, err := p.decl()
			if err != nil {
				return nil, err
			}
			r.Decls = append(r.Decls, d)
		case p.at(source.HPFDir):
			d, err := p.directive()
			if err != nil {
				return nil, err
			}
			r.Dirs = append(r.Dirs, d)
		default:
			goto body
		}
	}
body:
	for !p.atKw("end") {
		if p.at(source.EOF) {
			return nil, source.Errorf(p.cur().Pos, "unexpected EOF in routine %q (missing 'end'?)", r.Name)
		}
		if p.at(source.HPFDir) {
			d, err := p.directive()
			if err != nil {
				return nil, err
			}
			r.Dirs = append(r.Dirs, d)
			continue
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		r.Body = append(r.Body, s)
	}
	p.next() // "end"
	// Optional "end routine [name]".
	if p.atKw("routine") {
		p.next()
		if p.at(source.Ident) {
			p.next()
		}
	}
	if err := p.expectNL(); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *parser) decl() (*ast.Decl, error) {
	start := p.cur().Pos
	var typ ast.ElemType
	if p.atKw("real") {
		typ = ast.Real
	} else {
		typ = ast.Integer
	}
	p.next()
	d := &ast.Decl{Type: typ, Pos: start}
	for {
		t, err := p.expect(source.Ident)
		if err != nil {
			return nil, err
		}
		item := ast.DeclItem{Name: t.Text}
		if p.at(source.LParen) {
			p.next()
			for {
				b, err := p.bound()
				if err != nil {
					return nil, err
				}
				item.Bounds = append(item.Bounds, b)
				if p.at(source.Comma) {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(source.RParen); err != nil {
				return nil, err
			}
		}
		d.Items = append(d.Items, item)
		if p.at(source.Comma) {
			p.next()
			continue
		}
		break
	}
	if err := p.expectNL(); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) bound() (ast.Bound, error) {
	e, err := p.expr()
	if err != nil {
		return ast.Bound{}, err
	}
	if p.at(source.Colon) {
		p.next()
		hi, err := p.expr()
		if err != nil {
			return ast.Bound{}, err
		}
		return ast.Bound{Lo: e, Hi: hi}, nil
	}
	return ast.Bound{Lo: nil, Hi: e}, nil
}

func (p *parser) directive() (ast.Dir, error) {
	start := p.cur().Pos
	p.next() // !hpf$
	switch {
	case p.atKw("processors"):
		p.next()
		nameTok, err := p.expect(source.Ident)
		if err != nil {
			return nil, err
		}
		d := &ast.ProcessorsDir{Name: nameTok.Text, Pos: start}
		if _, err := p.expect(source.LParen); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Shape = append(d.Shape, e)
			if p.at(source.Comma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(source.RParen); err != nil {
			return nil, err
		}
		if err := p.expectNL(); err != nil {
			return nil, err
		}
		return d, nil
	case p.atKw("distribute"):
		p.next()
		d := &ast.DistributeDir{Pos: start}
		// Either "distribute a(block,block)" or "distribute (block,...)
		// [onto p] :: a, b".
		if p.at(source.Ident) {
			nameTok := p.next()
			d.Arrays = append(d.Arrays, nameTok.Text)
		}
		if _, err := p.expect(source.LParen); err != nil {
			return nil, err
		}
		for {
			k, err := p.distKind()
			if err != nil {
				return nil, err
			}
			d.Kinds = append(d.Kinds, k)
			if p.at(source.Comma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(source.RParen); err != nil {
			return nil, err
		}
		if p.atKw("onto") {
			p.next()
			t, err := p.expect(source.Ident)
			if err != nil {
				return nil, err
			}
			d.Onto = t.Text
		}
		if len(d.Arrays) == 0 {
			// "::" a, b, c
			if _, err := p.expect(source.Colon); err != nil {
				return nil, err
			}
			if _, err := p.expect(source.Colon); err != nil {
				return nil, err
			}
			for {
				t, err := p.expect(source.Ident)
				if err != nil {
					return nil, err
				}
				d.Arrays = append(d.Arrays, t.Text)
				if p.at(source.Comma) {
					p.next()
					continue
				}
				break
			}
		}
		if err := p.expectNL(); err != nil {
			return nil, err
		}
		return d, nil
	}
	return nil, source.Errorf(p.cur().Pos, "unknown HPF directive %s", p.cur())
}

func (p *parser) distKind() (ast.DistKind, error) {
	switch {
	case p.at(source.Star):
		p.next()
		return ast.DistStar, nil
	case p.atKw("block"):
		p.next()
		return ast.DistBlock, nil
	case p.atKw("cyclic"):
		p.next()
		return ast.DistCyclic, nil
	}
	return 0, source.Errorf(p.cur().Pos, "expected distribution kind, found %s", p.cur())
}

func (p *parser) stmt() (ast.Stmt, error) {
	switch {
	case p.atKw("do"):
		return p.doStmt()
	case p.atKw("if"):
		return p.ifStmt()
	case p.atKw("call"):
		return p.callStmt()
	case p.at(source.Ident):
		return p.assign()
	}
	return nil, source.Errorf(p.cur().Pos, "expected statement, found %s", p.cur())
}

func (p *parser) callStmt() (ast.Stmt, error) {
	start := p.cur().Pos
	p.next() // call
	name, err := p.expect(source.Ident)
	if err != nil {
		return nil, err
	}
	s := &ast.CallStmt{Name: name.Text, Pos: start}
	if p.at(source.LParen) {
		p.next()
		for !p.at(source.RParen) {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Args = append(s.Args, a)
			if p.at(source.Comma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(source.RParen); err != nil {
			return nil, err
		}
	}
	if err := p.expectNL(); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) doStmt() (ast.Stmt, error) {
	start := p.cur().Pos
	p.next() // do
	v, err := p.expect(source.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(source.Assign); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(source.Comma); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	var step ast.Expr
	if p.at(source.Comma) {
		p.next()
		step, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectNL(); err != nil {
		return nil, err
	}
	d := &ast.DoStmt{Var: v.Text, Lo: lo, Hi: hi, Step: step, Pos: start}
	for !p.atKw("enddo") && !p.atKw("end") {
		if p.at(source.EOF) {
			return nil, source.Errorf(start, "unterminated do loop")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		d.Body = append(d.Body, s)
	}
	if p.atKw("enddo") {
		p.next()
	} else { // "end" "do"
		p.next()
		if err := p.expectKw("do"); err != nil {
			return nil, err
		}
	}
	if err := p.expectNL(); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	start := p.cur().Pos
	p.next() // if
	if _, err := p.expect(source.LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(source.RParen); err != nil {
		return nil, err
	}
	if err := p.expectKw("then"); err != nil {
		return nil, err
	}
	if err := p.expectNL(); err != nil {
		return nil, err
	}
	s := &ast.IfStmt{Cond: cond, Pos: start}
	for !p.atKw("else") && !p.atKw("endif") && !p.atKw("end") {
		if p.at(source.EOF) {
			return nil, source.Errorf(start, "unterminated if statement")
		}
		c, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s.Then = append(s.Then, c)
	}
	if p.atKw("else") {
		p.next()
		if err := p.expectNL(); err != nil {
			return nil, err
		}
		for !p.atKw("endif") && !p.atKw("end") {
			if p.at(source.EOF) {
				return nil, source.Errorf(start, "unterminated else branch")
			}
			c, err := p.stmt()
			if err != nil {
				return nil, err
			}
			s.Else = append(s.Else, c)
		}
	}
	if p.atKw("endif") {
		p.next()
	} else { // "end" "if"
		p.next()
		if err := p.expectKw("if"); err != nil {
			return nil, err
		}
	}
	if err := p.expectNL(); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) assign() (ast.Stmt, error) {
	start := p.cur().Pos
	lhs, err := p.ref()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(source.Assign); err != nil {
		return nil, err
	}
	rhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectNL(); err != nil {
		return nil, err
	}
	return &ast.AssignStmt{LHS: lhs, RHS: rhs, Pos: start}, nil
}

func (p *parser) ref() (*ast.Ref, error) {
	t, err := p.expect(source.Ident)
	if err != nil {
		return nil, err
	}
	r := &ast.Ref{Name: t.Text, Pos: t.Pos}
	if p.at(source.LParen) {
		p.next()
		for {
			s, err := p.sub()
			if err != nil {
				return nil, err
			}
			r.Subs = append(r.Subs, s)
			if p.at(source.Comma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(source.RParen); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func (p *parser) sub() (ast.Sub, error) {
	if p.at(source.Colon) {
		p.next()
		return p.subTail(nil)
	}
	e, err := p.expr()
	if err != nil {
		return ast.Sub{}, err
	}
	if p.at(source.Colon) {
		p.next()
		return p.subTail(e)
	}
	return ast.Sub{Kind: ast.SubExpr, X: e}, nil
}

// subTail parses the part of a range subscript after the first colon.
func (p *parser) subTail(lo ast.Expr) (ast.Sub, error) {
	s := ast.Sub{Kind: ast.SubRange, Lo: lo}
	if p.at(source.Comma) || p.at(source.RParen) {
		return s, nil
	}
	if p.at(source.Colon) { // "lo::step"
		p.next()
		step, err := p.expr()
		if err != nil {
			return ast.Sub{}, err
		}
		s.Step = step
		return s, nil
	}
	hi, err := p.expr()
	if err != nil {
		return ast.Sub{}, err
	}
	s.Hi = hi
	if p.at(source.Colon) {
		p.next()
		step, err := p.expr()
		if err != nil {
			return ast.Sub{}, err
		}
		s.Step = step
	}
	return s, nil
}

func (p *parser) expr() (ast.Expr, error) {
	x, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.BinOp
		switch p.cur().Kind {
		case source.Lt:
			op = ast.CmpLt
		case source.Gt:
			op = ast.CmpGt
		case source.Le:
			op = ast.CmpLe
		case source.Ge:
			op = ast.CmpGe
		case source.EqEq:
			op = ast.CmpEq
		case source.Ne:
			op = ast.CmpNe
		default:
			return x, nil
		}
		pos := p.next().Pos
		y, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		x = &ast.BinExpr{Op: op, X: x, Y: y, Pos: pos}
	}
}

func (p *parser) addExpr() (ast.Expr, error) {
	x, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(source.Plus) || p.at(source.Minus) {
		op := ast.Add
		if p.at(source.Minus) {
			op = ast.Sub_
		}
		pos := p.next().Pos
		y, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		x = &ast.BinExpr{Op: op, X: x, Y: y, Pos: pos}
	}
	return x, nil
}

func (p *parser) mulExpr() (ast.Expr, error) {
	x, err := p.powExpr()
	if err != nil {
		return nil, err
	}
	for p.at(source.Star) || p.at(source.Slash) {
		op := ast.Mul
		if p.at(source.Slash) {
			op = ast.Div
		}
		pos := p.next().Pos
		y, err := p.powExpr()
		if err != nil {
			return nil, err
		}
		x = &ast.BinExpr{Op: op, X: x, Y: y, Pos: pos}
	}
	return x, nil
}

func (p *parser) powExpr() (ast.Expr, error) {
	x, err := p.factor()
	if err != nil {
		return nil, err
	}
	if p.at(source.Power) {
		pos := p.next().Pos
		y, err := p.powExpr() // right associative
		if err != nil {
			return nil, err
		}
		return &ast.BinExpr{Op: ast.Pow, X: x, Y: y, Pos: pos}, nil
	}
	return x, nil
}

func (p *parser) factor() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case source.Number:
		p.next()
		var v float64
		isInt := true
		for _, c := range t.Text {
			if c == '.' || c == 'e' {
				isInt = false
				break
			}
		}
		if _, err := fmt.Sscanf(t.Text, "%g", &v); err != nil {
			return nil, source.Errorf(t.Pos, "bad number %q", t.Text)
		}
		return &ast.NumLit{Text: t.Text, Value: v, IsInt: isInt, Pos: t.Pos}, nil
	case source.Minus:
		p.next()
		x, err := p.factor()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{X: x, Pos: t.Pos}, nil
	case source.LParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(source.RParen); err != nil {
			return nil, err
		}
		return x, nil
	case source.Ident:
		if ast.Intrinsics[t.Text] && p.toks[p.pos+1].Kind == source.LParen {
			p.next()
			p.next() // (
			call := &ast.Call{Func: t.Text, Pos: t.Pos}
			for {
				a, err := p.argExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.at(source.Comma) {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(source.RParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		r, err := p.ref()
		if err != nil {
			return nil, err
		}
		if len(r.Subs) == 0 {
			return &ast.Ident{Name: r.Name, Pos: r.Pos}, nil
		}
		return r, nil
	}
	return nil, source.Errorf(t.Pos, "expected expression, found %s", t)
}

// argExpr parses an intrinsic argument, which may be a full expression
// (possibly containing section refs, e.g. sum(g(i,ny,:))).
func (p *parser) argExpr() (ast.Expr, error) {
	return p.expr()
}
