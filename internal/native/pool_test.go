package native

// White-box tests for the recycled message fabric: the ownership
// discipline (a sent buffer is never handed out again until the
// receiver returns it) is what makes buffer reuse safe, and these
// tests are meant to run under -race so any aliasing between a live
// payload and a writer shows up as a data race.

import (
	"testing"
	"unsafe"
)

// pairEngine wires a minimal two-processor fabric by hand — just the
// 0↔1 channel pair — so the pool can be driven without a program.
func pairEngine() (*proc, *proc) {
	eng := &engine{procs: 2, done: make(chan struct{})}
	eng.ch = make([][]chan []float64, 2)
	eng.free = make([][]chan []float64, 2)
	for d := range eng.ch {
		eng.ch[d] = make([]chan []float64, 2)
		eng.free[d] = make([]chan []float64, 2)
	}
	for _, pair := range [][2]int{{1, 0}, {0, 1}} {
		eng.ch[pair[0]][pair[1]] = make(chan []float64, 1)
		eng.free[pair[1]][pair[0]] = make(chan []float64, 2)
	}
	p0 := &proc{eng: eng, p: 0}
	p1 := &proc{eng: eng, p: 1}
	return p0, p1
}

func base(buf []float64) uintptr {
	return uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
}

// TestPoolNoAliasWhileInFlight is the mutate-after-send detector: once
// a buffer is sent, the sender's next getBuf must return different
// backing memory, and writing through it while the receiver is still
// reading the in-flight payload must be race-free. Only after the
// receiver returns the buffer may the pool hand the original memory
// out again.
func TestPoolNoAliasWhileInFlight(t *testing.T) {
	p0, p1 := pairEngine()

	first := p0.getBuf(1, 64)
	firstBase := base(first)
	for i := 0; i < 64; i++ {
		first = append(first, float64(i))
	}
	if err := p0.send(1, first); err != nil {
		t.Fatal(err)
	}

	// Receiver drains the in-flight payload concurrently with the
	// sender's writes into its next buffer; -race arbitrates.
	done := make(chan float64)
	go func() {
		buf, err := p1.recv(0)
		if err != nil {
			t.Error(err)
			done <- 0
			return
		}
		sum := 0.0
		for _, v := range buf {
			sum += v
		}
		p1.putBuf(0, buf)
		done <- sum
	}()

	second := p0.getBuf(1, 64)
	if base(second) == firstBase {
		t.Fatal("getBuf returned the in-flight buffer")
	}
	for i := 0; i < 64; i++ {
		second = append(second, -1)
	}
	if sum := <-done; sum != 64*63/2 {
		t.Fatalf("receiver read %v, want %v (payload corrupted)", sum, 64*63/2)
	}

	// The consumed buffer is home again: the third getBuf must recycle
	// the original backing memory rather than allocate.
	allocBefore := p0.allocBytes
	third := p0.getBuf(1, 64)
	if base(third) != firstBase {
		t.Fatal("returned buffer was not recycled")
	}
	if p0.allocBytes != allocBefore {
		t.Fatalf("recycled getBuf allocated %d bytes", p0.allocBytes-allocBefore)
	}
	if len(third) != 0 {
		t.Fatalf("recycled buffer not reset: len %d", len(third))
	}
}

// TestPoolGrowsUndersizedBuffer checks the grow-once path: a recycled
// buffer too small for the next message is replaced (counted in
// allocBytes) and the larger buffer recycles thereafter.
func TestPoolGrowsUndersizedBuffer(t *testing.T) {
	p0, p1 := pairEngine()

	small := p0.getBuf(1, 8)
	small = append(small, 1)
	if err := p0.send(1, small); err != nil {
		t.Fatal(err)
	}
	buf, err := p1.recv(0)
	if err != nil {
		t.Fatal(err)
	}
	p1.putBuf(0, buf)

	grown := p0.getBuf(1, 128)
	if cap(grown) < 128 {
		t.Fatalf("cap %d, want >= 128", cap(grown))
	}
	if p0.allocBytes != 8*8+128*8 {
		t.Fatalf("allocBytes = %d, want %d", p0.allocBytes, 8*8+128*8)
	}
	grownBase := base(grown)
	if err := p0.send(1, grown); err != nil {
		t.Fatal(err)
	}
	buf, err = p1.recv(0)
	if err != nil {
		t.Fatal(err)
	}
	p1.putBuf(0, buf)
	if again := p0.getBuf(1, 128); base(again) != grownBase {
		t.Fatal("grown buffer was not recycled")
	}
}
