package native_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"gcao/internal/bench"
	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/native"
	"gcao/internal/native/prof"
	"gcao/internal/obs"
	"gcao/internal/obs/attr"
	"gcao/internal/spmd"
)

func profiledEngine(t *testing.T, benchName string, n, p int, v core.Version) (*native.Engine, *core.Result) {
	t.Helper()
	pr, err := bench.ByName(benchName, "main")
	if err != nil {
		t.Fatalf("bench: %v", err)
	}
	res := place(t, pr, n, p, v)
	eng, err := native.NewEngine(res, p)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	eng.EnableProfiling(0)
	return eng, res
}

// eventKey is an Event stripped of its timings — the part of the
// profile that is deterministic (see DESIGN.md §14: the scheduler
// decides who blocks for how long, so Start/Dur are excluded from any
// bit-identity claim).
type eventKey struct {
	Step  int32
	Site  int32
	Phase prof.Phase
}

func eventKeys(evs []prof.Event) []eventKey {
	out := make([]eventKey, len(evs))
	for i, ev := range evs {
		out[i] = eventKey{Step: ev.Step, Site: ev.Site, Phase: ev.Phase}
	}
	return out
}

// TestNativeProfileBitIdentity: event counts, order, phases, superstep
// and site attribution are identical across repeated runs of the same
// engine, for every P in the acceptance matrix. Timings are not
// compared.
func TestNativeProfileBitIdentity(t *testing.T) {
	for _, p := range []int{1, 4, 16, 25} {
		t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
			eng, _ := profiledEngine(t, "gravity", 12, p, core.VersionCombine)
			first, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]eventKey, p)
			for q, evs := range first.Profile.Events {
				want[q] = eventKeys(evs)
			}
			wantSteps := len(first.Profile.Steps)
			// Sends inside barriers, value broadcasts and SUM
			// collectives record under tree-wait/sum phases, so
			// send-phase events are a subset of the message count —
			// and present whenever the run communicated at all.
			sends := countSends(first.Profile)
			if sends > first.Stats.Messages {
				t.Errorf("send events = %d > Stats.Messages = %d", sends, first.Stats.Messages)
			}
			if p > 1 && sends == 0 {
				t.Error("multi-processor run recorded no send events")
			}
			for run := 1; run <= 2; run++ {
				out, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				if got := len(out.Profile.Steps); got != wantSteps {
					t.Fatalf("run %d: %d supersteps, want %d", run, got, wantSteps)
				}
				for q, evs := range out.Profile.Events {
					got := eventKeys(evs)
					if len(got) != len(want[q]) {
						t.Fatalf("run %d proc %d: %d events, want %d", run, q, len(got), len(want[q]))
					}
					for i := range got {
						if got[i] != want[q][i] {
							t.Fatalf("run %d proc %d event %d: %+v, want %+v", run, q, i, got[i], want[q][i])
						}
					}
				}
				// Site attribution resolves against the site table.
				for _, st := range out.Profile.Steps {
					if st.Site >= int32(len(out.Profile.Sites)) {
						t.Fatalf("step %d site %d out of range", st.Step, st.Site)
					}
				}
			}
		})
	}
}

func countSends(p *prof.NativeProfile) int64 {
	var n int64
	for _, evs := range p.Events {
		for _, ev := range evs {
			if ev.Phase == prof.PhaseSend {
				n++
			}
		}
	}
	return n
}

// TestNativeProfileTilesWallTime: each processor's compute + blocked
// seconds must tile its measured wall time within 5% (the acceptance
// criterion; the fold's gap construction makes it near-exact).
func TestNativeProfileTilesWallTime(t *testing.T) {
	eng, _ := profiledEngine(t, "gravity", 24, 16, core.VersionCombine)
	out, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	np := out.Profile
	if np == nil {
		t.Fatal("profiled run returned no profile")
	}
	if np.Truncated {
		t.Fatal("profile truncated; enlarge the test ring")
	}
	for _, ps := range np.ProcTotals {
		sum := ps.ComputeSeconds + ps.BlockedSeconds
		if ps.WallSeconds <= 0 {
			t.Fatalf("proc %d: wall %g", ps.Proc, ps.WallSeconds)
		}
		if rel := math.Abs(sum-ps.WallSeconds) / ps.WallSeconds; rel > 0.05 {
			t.Errorf("proc %d: compute+blocked %.3gs vs wall %.3gs (%.1f%% off)",
				ps.Proc, sum, ps.WallSeconds, rel*100)
		}
	}
	if np.SkewRatio < 1 {
		t.Errorf("skew ratio %g < 1", np.SkewRatio)
	}
}

// TestNativeProfileCalibrationJoin: the native supersteps join the
// simulator's cost-attribution record 1:1 by index with agreeing site
// ids, and the fit comes back non-degenerate on a real benchmark.
func TestNativeProfileCalibrationJoin(t *testing.T) {
	eng, res := profiledEngine(t, "gravity", 12, 16, core.VersionCombine)
	out, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	if _, err := spmd.RunObs(res, machine.SP2(), 16, rec); err != nil {
		t.Fatal(err)
	}
	attrRun := rec.Attribution()
	if attrRun == nil {
		t.Fatal("simulator recorded no attribution")
	}
	if len(attrRun.Steps) != len(out.Profile.Steps) {
		t.Fatalf("superstep mismatch: simulator %d, native %d", len(attrRun.Steps), len(out.Profile.Steps))
	}
	m := machine.SP2()
	model := obs.ModelSteps(attrRun, attr.CostModel{
		GSecPerByte: m.PerByte,
		LSec:        m.SendOverhead + m.RecvOverhead + m.Latency,
	})
	c := out.Profile.Calibrate(model)
	if c.Mismatched != 0 {
		t.Fatalf("%d site mismatches joining native to model", c.Mismatched)
	}
	if c.Points != len(model) {
		t.Fatalf("joined %d of %d supersteps", c.Points, len(model))
	}
	if c.Degenerate {
		t.Fatal("fit degenerate on a benchmark with h spread")
	}
	if math.IsNaN(c.FittedG) || math.IsInf(c.FittedG, 0) {
		t.Fatalf("fitted g = %g", c.FittedG)
	}
	if len(c.Residuals) == 0 {
		t.Fatal("no per-site residuals")
	}
}

// TestNativeProfileFoldRace hammers profiled runs back to back and
// folds the rings from concurrent readers the moment each run's
// goroutines exit; under -race this pins the happens-before edge
// between a processor's last ring write (and its end mark) and the
// fold's reads.
func TestNativeProfileFoldRace(t *testing.T) {
	eng, _ := profiledEngine(t, "shallow", 12, 16, core.VersionCombine)
	for iter := 0; iter < 8; iter++ {
		out, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				np := eng.Profile()
				if np == nil {
					t.Error("concurrent fold returned nil")
					return
				}
				var total float64
				for _, ps := range np.ProcTotals {
					total += ps.ComputeSeconds + ps.BlockedSeconds
				}
				if total < 0 {
					t.Error("negative fold total")
				}
			}()
		}
		wg.Wait()
		if out.Profile == nil {
			t.Fatal("run lost its profile")
		}
	}
}

// BenchmarkNativeProfOverhead{Off,On} measure the acceptance
// criterion directly: profiling enabled must cost gravity P=25 less
// than 5% of wall time. Compare ns/op across the pair.
func BenchmarkNativeProfOverheadOff(b *testing.B) { profOverhead(b, false) }
func BenchmarkNativeProfOverheadOn(b *testing.B)  { profOverhead(b, true) }

func profOverhead(b *testing.B, on bool) {
	pr, err := bench.ByName("gravity", "main")
	if err != nil {
		b.Fatal(err)
	}
	a, err := pr.Compile(48, 25)
	if err != nil {
		b.Fatal(err)
	}
	res, err := a.Place(core.Options{Version: core.VersionCombine})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := native.NewEngine(res, 25)
	if err != nil {
		b.Fatal(err)
	}
	if on {
		eng.EnableProfiling(0)
	}
	if _, err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNativeProfilingOffCostsNothing: a run without profiling returns
// no profile and records nothing, and DisableProfiling actually
// disarms a profiled engine.
func TestNativeProfilingOffCostsNothing(t *testing.T) {
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		t.Fatal(err)
	}
	res := place(t, pr, 12, 4, core.VersionCombine)
	eng, err := native.NewEngine(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Profile != nil {
		t.Fatal("unprofiled run produced a profile")
	}
	eng.EnableProfiling(0)
	if out, err = eng.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Profile == nil {
		t.Fatal("profiled run produced no profile")
	}
	eng.DisableProfiling()
	if out, err = eng.Run(); err != nil {
		t.Fatal(err)
	}
	if out.Profile != nil {
		t.Fatal("disabled profiler still produced a profile")
	}
}
