package native_test

import (
	"fmt"
	"math"
	goruntime "runtime"
	"testing"

	"gcao/internal/bench"
	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/native"
)

var versions = []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine}

func place(t *testing.T, pr *bench.Program, n, p int, v core.Version) *core.Result {
	t.Helper()
	a, err := pr.Compile(n, p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := a.Place(core.Options{Version: v})
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	return res
}

// TestNativeMatchesSimulator is the acceptance matrix: every paper
// benchmark × every compiler version × P ∈ {1, 4, 16, 25} must
// produce bit-identical final memory and scalars on both backends.
func TestNativeMatchesSimulator(t *testing.T) {
	m := machine.SP2()
	for _, pr := range bench.Programs() {
		pr := pr
		n := 12
		if pr.Bench == "hydflo" {
			n = 10
		}
		for _, v := range versions {
			for _, p := range []int{1, 4, 16, 25} {
				name := fmt.Sprintf("%s/%s/%s/P%d", pr.Bench, pr.Routine, v, p)
				t.Run(name, func(t *testing.T) {
					res := place(t, pr, n, p, v)
					if err := native.VerifyAgainstSimulator(res, m, p); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestNativeConcurrentBenchmarks runs the native backend on all four
// paper benchmarks at once; under -race this proves the row-ownership
// discipline (each goroutine writes only its own data/validity rows,
// shared rows only inside barriers).
func TestNativeConcurrentBenchmarks(t *testing.T) {
	m := machine.SP2()
	for _, pr := range bench.Programs() {
		pr := pr
		t.Run(pr.Bench+"/"+pr.Routine, func(t *testing.T) {
			t.Parallel()
			n := 8
			if pr.Bench == "hydflo" {
				n = 6
			}
			res := place(t, pr, n, 4, core.VersionCombine)
			if err := native.VerifyAgainstSimulator(res, m, 4); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNativeOversubscription is the regression test for the
// oversubscription policy: P=64 logical processors on GOMAXPROCS=1
// must complete (every native operation blocks, none spins) and still
// match the simulator.
func TestNativeOversubscription(t *testing.T) {
	old := goruntime.GOMAXPROCS(1)
	defer goruntime.GOMAXPROCS(old)

	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		t.Fatal(err)
	}
	res := place(t, pr, 16, 64, core.VersionCombine)
	if err := native.VerifyAgainstSimulator(res, machine.SP2(), 64); err != nil {
		t.Fatal(err)
	}
}

// TestNativeProcsClamp verifies both sides of the clamp: a count past
// MaxProcs is refused with the policy in the error, and a mismatched
// grid is rejected before any goroutine starts.
func TestNativeProcsClamp(t *testing.T) {
	pr, err := bench.ByName("gravity", "main")
	if err != nil {
		t.Fatal(err)
	}
	res := place(t, pr, 8, 4, core.VersionCombine)
	if _, err := native.Run(res, 5); err == nil {
		t.Fatal("grid/procs mismatch not rejected")
	}
	if native.MaxProcs() < 1024 {
		t.Fatalf("MaxProcs() = %d, want >= 1024", native.MaxProcs())
	}
}

// TestNativeStats sanity-checks the run statistics: a multi-processor
// stencil run must move real messages and count its operations under
// the codegen listing vocabulary.
func TestNativeStats(t *testing.T) {
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		t.Fatal(err)
	}
	res := place(t, pr, 12, 4, core.VersionCombine)
	out, err := native.Run(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := out.Stats
	if st.Procs != 4 || st.Messages == 0 || st.Bytes == 0 || st.Collectives == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.Ops["exchange"] == 0 {
		t.Fatalf("no exchange ops counted: %v", st.Ops)
	}
	if st.ElapsedSeconds <= 0 {
		t.Fatalf("elapsed = %v", st.ElapsedSeconds)
	}
}

// TestNativeTreeOddP exercises the binomial-tree collectives at
// non-power-of-two and prime processor counts — ragged trees whose
// last subtree is clipped — and requires bit-identical agreement with
// the simulator.
func TestNativeTreeOddP(t *testing.T) {
	m := machine.SP2()
	for _, name := range []string{"gravity", "shallow"} {
		pr, err := bench.ByName(name, "main")
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{3, 5, 7, 13} {
			t.Run(fmt.Sprintf("%s/P%d", name, p), func(t *testing.T) {
				res := place(t, pr, 12, p, core.VersionCombine)
				if err := native.VerifyAgainstSimulator(res, m, p); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestNativeEngineReuse verifies the reusable-engine contract: a
// second Run on the same engine resets state and reproduces the first
// run bit for bit, and the recycled fabric means the repeat run
// allocates no new payload buffers.
func TestNativeEngineReuse(t *testing.T) {
	pr, err := bench.ByName("gravity", "main")
	if err != nil {
		t.Fatal(err)
	}
	res := place(t, pr, 12, 4, core.VersionCombine)
	eng, err := native.NewEngine(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot run 1 (the result aliases engine memory).
	scal1 := map[string]float64{}
	for k, v := range first.Scalars {
		scal1[k] = v
	}
	data1 := map[string][][]float64{}
	for _, arr := range res.Analysis.Unit.Arrays {
		am := first.Mem.View(arr.Name)
		rows := make([][]float64, len(am.Data))
		for i := range am.Data {
			rows[i] = append([]float64(nil), am.Data[i]...)
		}
		data1[arr.Name] = rows
	}
	st1 := first.Stats

	second, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range scal1 {
		if !sameBitsTest(second.Scalars[k], v) {
			t.Fatalf("scalar %s: run2 %v != run1 %v", k, second.Scalars[k], v)
		}
	}
	for name, rows := range data1 {
		am := second.Mem.View(name)
		for i := range rows {
			for j := range rows[i] {
				if !sameBitsTest(am.Data[i][j], rows[i][j]) {
					t.Fatalf("%s row %d off %d: run2 %v != run1 %v", name, i, j, am.Data[i][j], rows[i][j])
				}
			}
		}
	}
	st2 := second.Stats
	if st2.Messages != st1.Messages || st2.Bytes != st1.Bytes || st2.WireBytes != st1.WireBytes || st2.Hops != st1.Hops {
		t.Fatalf("traffic differs between runs: run1 %+v run2 %+v", st1, st2)
	}
	if st2.AllocBytes != 0 {
		t.Fatalf("steady-state run allocated %d payload bytes, want 0", st2.AllocBytes)
	}
}

func sameBitsTest(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
