// Package native executes a placed program as real concurrent
// goroutines — one per logical processor — instead of simulating it
// under the BSP cost model. Each goroutine owns its processor's row of
// every distributed array (the same per-processor memory image package
// runtime gives the simulator) and the placed communication groups are
// realized as actual channel transfers: ghost-strip exchanges as
// neighbour sends with packed validity bitmaps, broadcasts, gathers
// and distributed SUMs as binomial-tree collectives rooted at
// processor 0 (log-P critical path), with every payload slice recycled
// through per-pair free channels so the fabric allocates nothing in
// steady state.
//
// The backend is built to be bit-for-bit equivalent to the simulator
// (spmd.Run): both execute the same plan.Plan, every floating-point
// accumulation happens in the same order on the same values, and the
// VerifyAgainstSimulator harness enforces the equivalence for every
// paper benchmark × compiler version × processor count. The codegen
// listing is the contract between the two: the operations a native run
// performs are exactly the COMM pseudo-calls the listing prints, and
// Stats.Ops counts them under the listing's vocabulary (exchange,
// broadcast, gather, global-sum).
//
// Determinism argument (see DESIGN.md §13): each processor's state —
// its array rows, validity planes, scalar environment and loop frames
// — is written only by its own goroutine outside of barriers, and
// evolves as a pure function of program order plus the messages it
// receives. Message contents are pure functions of the senders' state
// at matched program points, tree hops move bits without arithmetic,
// and every collective combines operands in a fixed section order at
// the root only. By induction the whole run is a deterministic
// function of the placement, independent of goroutine scheduling;
// since the simulator computes the same function (same plan, same
// evaluation order, same combine order), the final states agree
// bitwise.
package native

import (
	"fmt"
	"math"
	goruntime "runtime"
	"sync"
	"time"

	"gcao/internal/ast"
	"gcao/internal/cfg"
	"gcao/internal/core"
	"gcao/internal/native/prof"
	"gcao/internal/obs"
	"gcao/internal/plan"
	"gcao/internal/runtime"
)

// Stats summarizes one native run.
type Stats struct {
	// Procs is the logical processor (goroutine) count.
	Procs int
	// Messages counts payload-bearing channel transfers (each message
	// once, at the sender); Bytes counts the delivered element payload
	// (8 bytes per float64), excluding protocol framing.
	Messages int64
	Bytes    int64
	// WireBytes counts every float64 word actually sent per hop —
	// payload, validity bitmaps and framing included — so it is the
	// bytes-on-the-wire figure the optimality-gap dashboard can compare
	// against the modeled ledger.
	WireBytes int64
	// Hops counts the tree messages collectives moved (gather ascents,
	// broadcast descents, value broadcasts); the critical path of one
	// collective is ceil(log2 P) of them.
	Hops int64
	// AllocBytes counts payload-buffer bytes the message fabric
	// allocated because no recycled buffer fit; zero in steady state.
	AllocBytes int64
	// Collectives counts executed communication groups; Barriers the
	// full synchronization barriers (replicated-array stores).
	Collectives int64
	Barriers    int64
	// Ops counts the executed communication operations under the
	// codegen listing's vocabulary (exchange, broadcast, gather,
	// global-sum).
	Ops map[string]int64
	// ElapsedSeconds is the wall clock of the run proper (first
	// goroutine launch through final barrier).
	ElapsedSeconds float64
}

// RunResult is the outcome of a native execution: the distributed
// memory image (owner rows hold the canonical values), the replicated
// scalar state, and the run statistics.
type RunResult struct {
	Mem     *runtime.Memory
	Scalars map[string]float64
	Stats   Stats
	// Profile is the folded runtime profile when the engine ran with
	// profiling enabled (see Engine.EnableProfiling), nil otherwise.
	Profile *prof.NativeProfile
}

// MaxProcs returns the largest logical processor count Run accepts
// under the oversubscription policy: up to 256 goroutines per
// available core (and never fewer than 1024 total) run multiplexed on
// the Go scheduler — every native operation blocks on a channel or a
// barrier, never spins, so progress is guaranteed at any GOMAXPROCS,
// including P=64 on a single core. Beyond the clamp a run is refused:
// that many parked goroutines signals a misconfigured grid, not a
// bigger machine.
func MaxProcs() int {
	n := goruntime.GOMAXPROCS(0) * 256
	if n < 1024 {
		n = 1024
	}
	return n
}

// Run executes the placement natively on procs goroutines.
func Run(res *core.Result, procs int) (*RunResult, error) {
	return RunObs(res, procs, nil)
}

// RunObs is Run with an obs recorder: the run is wrapped in a
// "native:<version>" phase span and its message/byte/collective
// counters are added under the native.<version>. prefix.
func RunObs(res *core.Result, procs int, rec *obs.Recorder) (*RunResult, error) {
	eng, err := NewEngine(res, procs)
	if err != nil {
		return nil, err
	}
	endRun := rec.Start("native:" + res.Version.String())
	defer endRun()
	out, err := eng.Run()
	if err != nil {
		return nil, err
	}
	if rec != nil {
		st := out.Stats
		prefix := "native." + res.Version.String() + "."
		rec.Add(prefix+"messages", st.Messages)
		rec.Add(prefix+"bytes", st.Bytes)
		rec.Add(prefix+"wire_bytes", st.WireBytes)
		rec.Add(prefix+"collective_hops", st.Hops)
		rec.Add(prefix+"alloc_bytes", st.AllocBytes)
		rec.Add(prefix+"collectives", st.Collectives)
		rec.Add(prefix+"barriers", st.Barriers)
		rec.Event(obs.LevelInfo, "native.done",
			obs.F("version", res.Version.String()),
			obs.F("procs", procs),
			obs.F("messages", st.Messages),
			obs.F("bytes", st.Bytes),
			obs.F("wire_bytes", st.WireBytes),
			obs.F("seconds", st.ElapsedSeconds))
	}
	return out, nil
}

// RunProfiled executes the placement natively with the runtime
// profiler enabled, installs the folded profile on the recorder (when
// one is given) and returns the result with RunResult.Profile set.
func RunProfiled(res *core.Result, procs int, rec *obs.Recorder) (*RunResult, error) {
	eng, err := NewEngine(res, procs)
	if err != nil {
		return nil, err
	}
	eng.EnableProfiling(0)
	endRun := rec.Start("native:" + res.Version.String())
	defer endRun()
	out, err := eng.Run()
	if err != nil {
		return nil, err
	}
	rec.SetNativeProfile(out.Profile)
	return out, nil
}

// ---------------------------------------------------------------------
// Engine: a prepared native execution, reusable across runs

// Engine is a prepared native execution: the plan, the memory image,
// the channel fabric and every per-processor scratch, built once.
// Run resets the memory image and replays the program, so repeated
// runs measure steady-state execution — the recycled message buffers
// and scratches survive between runs and the fabric allocates nothing
// after the first. An Engine is not safe for concurrent Runs, and a
// failed run poisons the engine (the error latch stays closed).
type Engine struct {
	eng *engine
	res *core.Result
}

// NewEngine prepares a native execution of the placement on procs
// goroutines: builds the memory image and shared plan, connects the
// channel fabric (tree and grid-neighbour pairs with their recycle
// channels), and sizes every per-processor scratch from the plan's
// bounds so the hot paths allocate nothing.
func NewEngine(res *core.Result, procs int) (*Engine, error) {
	a := res.Analysis
	if got := a.Unit.Grid.NumProcs(); got != procs {
		return nil, fmt.Errorf("native: unit compiled for %d processors, run requested %d", got, procs)
	}
	if max := MaxProcs(); procs > max {
		return nil, fmt.Errorf("native: %d processors exceeds the oversubscription clamp of %d (256×GOMAXPROCS, min 1024)", procs, max)
	}
	mem := runtime.NewMemory(a.Unit, procs)
	eng := &engine{
		pl:    plan.New(res, mem),
		mem:   mem,
		procs: procs,
		done:  make(chan struct{}),
	}
	eng.connectFabric()

	// Scratch sizing: the maximum array rank bounds subscript vectors,
	// the grid rank bounds owner-coordinate vectors.
	maxRank, gridRank := 1, a.Unit.Grid.Rank()
	for _, arr := range a.Unit.Arrays {
		if r := arr.Rank(); r > maxRank {
			maxRank = r
		}
	}
	if gridRank < 1 {
		gridRank = 1
	}

	eng.ps = make([]*proc, procs)
	for p := 0; p < procs; p++ {
		pc := &proc{
			eng:      eng,
			p:        p,
			coords:   a.Unit.Grid.Coords(p),
			ienv:     map[string]int{},
			scalars:  map[string]float64{},
			frames:   map[*cfg.Loop]*frame{},
			sumMemo:  map[*ast.Call]float64{},
			ops:      map[string]int64{},
			cbuf:     make([]int, gridRank),
			coordbuf: make([]int, gridRank),
			lhsidx:   make([]int, maxRank),
		}
		if p == 0 {
			// Gather-assembly scratch: only the tree root carves
			// per-processor streams out of child buffers.
			pc.cnt = make([]int, procs)
			pc.pos = make([]int, procs)
			pc.streams = make([][]float64, procs)
			pc.childbufs = make([][]float64, 0, len(eng.pl.Tree.Children[0]))
		}
		for name, v := range a.Unit.Params {
			pc.scalars[name] = float64(v)
		}
		eng.ps[p] = pc
	}
	return &Engine{eng: eng, res: res}, nil
}

// EnableProfiling arms the runtime profiler: every processor gets a
// preallocated event ring of at least eventsPerProc entries (<= 0
// selects prof.DefaultRingSize) and subsequent Runs fold the rings
// into RunResult.Profile. The rings are allocated here, once — the
// warm path records into them without allocating. Superstep indices in
// the profile follow group execution order, matching the simulator's
// attr.Step indices; the site table is the placement's stable SiteIDs.
func (e *Engine) EnableProfiling(eventsPerProc int) {
	eng := e.eng
	eng.sites = make([]string, len(e.res.Groups))
	for _, g := range e.res.Groups {
		eng.sites[g.ID] = g.SiteID
	}
	for _, pc := range eng.ps {
		pc.ring = prof.NewRing(eventsPerProc)
	}
}

// DisableProfiling disarms the profiler; later Runs record nothing and
// pay nothing (the nil-ring check is the only residue on hot paths).
func (e *Engine) DisableProfiling() {
	for _, pc := range e.eng.ps {
		pc.ring = nil
	}
}

// Run executes the prepared program once. The first call initializes,
// later calls reset the memory image and per-processor state first —
// message buffers and scratches are recycled, so steady-state runs do
// not allocate. The returned RunResult shares the engine's memory
// image; it is valid until the next Run.
func (e *Engine) Run() (*RunResult, error) {
	eng := e.eng
	if err := eng.err(); err != nil {
		return nil, fmt.Errorf("native: engine poisoned by earlier failure: %w", err)
	}
	if eng.ran {
		eng.mem.Reset()
	}
	eng.ran = true
	a := e.res.Analysis
	for _, pc := range eng.ps {
		clear(pc.ienv)
		clear(pc.frames)
		clear(pc.sumMemo)
		clear(pc.ops)
		clear(pc.scalars)
		for name, v := range a.Unit.Params {
			pc.scalars[name] = float64(v)
		}
		pc.msgs, pc.bytes, pc.wire, pc.hops, pc.allocBytes = 0, 0, 0, 0, 0
		pc.colls, pc.barriers = 0, 0
		pc.nextStep = 0
		if pc.ring != nil {
			pc.ring.Reset()
			pc.evStep, pc.evSite = -1, -1
			pc.evSend, pc.evRecv = prof.PhaseSend, prof.PhaseTreeWait
			pc.endNS = 0
		}
	}

	start := time.Now()
	eng.profStart = start
	var wg sync.WaitGroup
	for _, pc := range eng.ps[1:] {
		wg.Add(1)
		go func(pc *proc) {
			defer wg.Done()
			pc.main()
		}(pc)
	}
	eng.ps[0].main()
	wg.Wait()
	if err := eng.err(); err != nil {
		return nil, err
	}

	st := Stats{
		Procs:          eng.procs,
		Collectives:    eng.ps[0].colls,
		Barriers:       eng.ps[0].barriers,
		Ops:            eng.ps[0].ops,
		ElapsedSeconds: time.Since(start).Seconds(),
	}
	for _, pc := range eng.ps {
		st.Messages += pc.msgs
		st.Bytes += pc.bytes
		st.WireBytes += pc.wire
		st.Hops += pc.hops
		st.AllocBytes += pc.allocBytes
	}
	out := &RunResult{Mem: eng.mem, Scalars: eng.ps[0].scalars, Stats: st}
	if eng.ps[0].ring != nil {
		rings := make([]*prof.Ring, eng.procs)
		ends := make([]int64, eng.procs)
		for p, pc := range eng.ps {
			rings[p] = pc.ring
			ends[p] = pc.endNS
		}
		out.Profile = prof.Fold(eng.sites, rings, ends, int64(st.ElapsedSeconds*1e9))
	}
	return out, nil
}

// Profile returns the last Run's folded profile (nil when profiling is
// disabled or no profiled Run completed). The profile is rebuilt per
// Run; a retained pointer stays valid but stale.
func (e *Engine) Profile() *prof.NativeProfile {
	// Folding happens in Run; re-fold on demand so callers holding
	// only the engine can still read the last run's profile.
	eng := e.eng
	if eng.ps[0].ring == nil || !eng.ran {
		return nil
	}
	rings := make([]*prof.Ring, eng.procs)
	ends := make([]int64, eng.procs)
	var wall int64
	for p, pc := range eng.ps {
		rings[p] = pc.ring
		ends[p] = pc.endNS
		if pc.endNS > wall {
			wall = pc.endNS
		}
	}
	return prof.Fold(eng.sites, rings, ends, wall)
}

// ---------------------------------------------------------------------
// engine: shared immutable state plus the error latch

type engine struct {
	pl    *plan.Plan
	mem   *runtime.Memory
	procs int
	ps    []*proc
	ran   bool

	// profStart anchors profiler timestamps (set per Run); sites is
	// the placement-site table indexed by group ID, built when
	// profiling is enabled.
	profStart time.Time
	sites     []string

	// ch[dst][src] carries messages src→dst; free[src][dst] carries
	// consumed buffers back from dst to src for reuse. Both are
	// allocated only for pairs the protocol uses (binomial-tree edges
	// and grid neighbours), so the fabric stays O(P·rank) instead of
	// O(P²).
	ch   [][]chan []float64
	free [][]chan []float64

	// done is closed once on the first failure; every channel
	// operation selects on it, so an error unwinds all goroutines
	// without deadlock.
	done     chan struct{}
	failOnce sync.Once
	errMu    sync.Mutex
	errVal   error
}

// connectFabric allocates the channel pairs the protocol can use: the
// binomial-tree edges (collectives, barriers, condition broadcasts)
// and both directions between grid neighbours (shift exchanges).
// Capacity 1 lets a sender run one message ahead; each pair's recycle
// channel holds the at most two buffers the pair can have in flight.
func (eng *engine) connectFabric() {
	eng.ch = make([][]chan []float64, eng.procs)
	eng.free = make([][]chan []float64, eng.procs)
	for d := range eng.ch {
		eng.ch[d] = make([]chan []float64, eng.procs)
		eng.free[d] = make([]chan []float64, eng.procs)
	}
	connect := func(dst, src int) {
		if dst != src && eng.ch[dst][src] == nil {
			eng.ch[dst][src] = make(chan []float64, 1)
			eng.free[src][dst] = make(chan []float64, 2)
		}
	}
	for p := 1; p < eng.procs; p++ {
		parent := eng.pl.Tree.Parent[p]
		connect(p, parent)
		connect(parent, p)
	}
	shape := eng.pl.A.Unit.Grid.Shape
	for p := 0; p < eng.procs; p++ {
		coords := eng.pl.A.Unit.Grid.Coords(p)
		stride := 1
		for d := len(shape) - 1; d >= 0; d-- {
			if coords[d]+1 < shape[d] {
				connect(p, p+stride)
				connect(p+stride, p)
			}
			stride *= shape[d]
		}
	}
}

func (eng *engine) fail(err error) {
	eng.errMu.Lock()
	if eng.errVal == nil {
		eng.errVal = err
	}
	eng.errMu.Unlock()
	eng.failOnce.Do(func() { close(eng.done) })
}

func (eng *engine) err() error {
	eng.errMu.Lock()
	defer eng.errMu.Unlock()
	return eng.errVal
}

// ---------------------------------------------------------------------
// proc: one logical processor's goroutine state

// frame is one loop's iteration state (replicated per processor).
type frame struct {
	lo, hi, step, cur int
}

type proc struct {
	eng     *engine
	p       int
	coords  []int
	ienv    map[string]int
	scalars map[string]float64
	frames  map[*cfg.Loop]*frame
	// sumMemo caches SUM totals per call site within one statement
	// execution, mirroring the simulator's per-statement memo.
	sumMemo map[*ast.Call]float64

	// Reusable scratch, sized once at engine setup so the hot paths
	// allocate nothing: grid-coordinate vectors for owner computations
	// (cbuf) and shift destinations (coordbuf), the LHS subscript
	// vector, stack-disciplined subscript/argument scratch for
	// expression evaluation, the concretized entry list, the packed
	// contribution and assembled-section buffers, the shift validity
	// bitmap, and — root only — the gather stream-carving scratch.
	cbuf      []int
	coordbuf  []int
	lhsidx    []int
	idxstack  []int
	argstack  []float64
	entbuf    []entrySec
	minebuf   []float64
	fullbuf   []float64
	bitbuf    []uint64
	cnt       []int       // root: per-proc element counts of one gather
	pos       []int       // root: per-proc stream positions
	streams   [][]float64 // root: per-proc operand streams
	childbufs [][]float64 // root: child buffers held during assembly

	msgs, bytes     int64
	wire, hops      int64
	allocBytes      int64
	colls, barriers int64
	ops             map[string]int64

	// Profiler state. ring is nil when profiling is off — every
	// recording site guards on that, so the disabled path costs one
	// predictable branch. nextStep counts executed communication
	// groups (the superstep index, matching attr.Step order);
	// evStep/evSite/evSend/evRecv are the attribution context the
	// comm primitives stamp onto events. Distributed-SUM legs run at
	// the SUM statement, before their global-sum marker group's
	// position assigns a step index, so they record with
	// prof.PendingStep and the marker patches them (this goroutine's
	// own ring — single writer). endNS is the goroutine's finish
	// mark, nanoseconds since run start.
	ring           *prof.Ring
	nextStep       int32
	evStep, evSite int32
	evSend, evRecv prof.Phase
	endNS          int64
}

// nowNS is the profiler clock: nanoseconds since the run started.
func (pc *proc) nowNS() int64 {
	return int64(time.Since(pc.eng.profStart))
}

func (pc *proc) main() {
	if err := pc.run(); err != nil {
		pc.eng.fail(err)
	}
	if pc.ring != nil {
		pc.endNS = pc.nowNS()
	}
}

func (pc *proc) run() error {
	cur := pc.eng.pl.A.G.EntryBlock
	var prev *cfg.Block
	for cur != nil {
		next, err := pc.execBlock(cur, prev)
		if err != nil {
			return err
		}
		prev, cur = cur, next
	}
	return nil
}

// execBlock mirrors the simulator shard's CFG walk exactly: the same
// loop frame updates, the same zero-trip and post-exit edges, the same
// communication positions.
func (pc *proc) execBlock(b *cfg.Block, prev *cfg.Block) (*cfg.Block, error) {
	pl := pc.eng.pl
	switch b.Kind {
	case cfg.Header:
		loop := b.Loop
		fr := pc.frames[loop]
		if prev == loop.PreHeader {
			fr.cur = fr.lo
		} else {
			fr.cur += fr.step
		}
		pc.ienv[loop.Var()] = fr.cur
		cont := fr.cur <= fr.hi
		if fr.step < 0 {
			cont = fr.cur >= fr.hi
		}
		if !cont {
			return b.Succs[1], nil // postexit
		}
		if err := pc.execComm(pl.Comm[b.ID][0]); err != nil {
			return nil, err
		}
		return b.Succs[0], nil

	case cfg.PreHeader:
		loop := pl.LoopOf[b.ID]
		if loop == nil {
			panic("native: preheader without loop")
		}
		if err := pc.execComm(pl.Comm[b.ID][0]); err != nil {
			return nil, err
		}
		lo, err1 := pc.evalInt(loop.Do.Lo)
		hi, err2 := pc.evalInt(loop.Do.Hi)
		if err1 != nil {
			return nil, err1
		}
		if err2 != nil {
			return nil, err2
		}
		step := 1
		if loop.Do.Step != nil {
			s, err := pc.evalInt(loop.Do.Step)
			if err != nil {
				return nil, err
			}
			if s == 0 {
				return nil, fmt.Errorf("native: zero loop step at %s", loop.Do.Pos)
			}
			step = s
		}
		fr := pc.frames[loop]
		if fr == nil {
			fr = &frame{}
			pc.frames[loop] = fr
		}
		fr.lo, fr.hi, fr.step = lo, hi, step
		empty := lo > hi
		if step < 0 {
			empty = lo < hi
		}
		if empty {
			return b.Succs[1], nil // zero-trip edge
		}
		return b.Succs[0], nil

	default:
		if err := pc.execComm(pl.Comm[b.ID][0]); err != nil {
			return nil, err
		}
		for k, st := range b.Stmts {
			if err := pc.execStmt(st); err != nil {
				return nil, err
			}
			if err := pc.execComm(pl.Comm[b.ID][k+1]); err != nil {
				return nil, err
			}
		}
		if b.Branch != nil {
			v, err := pc.evalCond(b)
			if err != nil {
				return nil, err
			}
			if v {
				return b.Succs[0], nil
			}
			return b.Succs[1], nil
		}
		if len(b.Succs) == 0 {
			return nil, nil
		}
		return b.Succs[0], nil
	}
}

// execStmt executes one assignment. Distributed SUMs in the RHS are
// statement-level collectives: every processor participates before any
// evaluation, exactly where the simulator's rendezvous sits.
func (pc *proc) execStmt(st *cfg.Stmt) error {
	si := pc.eng.pl.Info[st]
	if si.HasSum {
		clear(pc.sumMemo)
		if err := pc.precomputeSums(si.DistSums); err != nil {
			return err
		}
	}
	as := st.Assign

	if si.LHS == nil {
		// Scalar target: every processor computes the replicated value
		// locally (determinism makes the copies identical).
		v, err := pc.eval(as.RHS)
		if err != nil {
			return err
		}
		pc.scalars[as.LHS.Name] = v
		return nil
	}

	idx, err := pc.lhsIndex(as)
	if err != nil {
		return err
	}
	am := si.LHS
	off := am.Offset(idx)

	if am.Dist == nil {
		// Replicated-array store: the single shared row 0 is written by
		// processor 0 alone, inside a pair of barriers that separate
		// the write from every other processor's reads in program
		// order.
		v, err := pc.eval(as.RHS)
		if err != nil {
			return err
		}
		if err := pc.barrier(); err != nil {
			return err
		}
		if pc.p == 0 {
			am.StoreOwner(off, 0, v)
		}
		return pc.barrier()
	}

	// Owner-computes: the owner evaluates from its own rows and stores
	// into its own row; every other processor kills its stale copy in
	// its own validity plane (same program point, own row only — no
	// cross-row writes anywhere).
	owner := am.OwnerInto(idx, pc.cbuf[:am.Dist.Grid.Rank()])
	if owner == pc.p {
		v, err := pc.eval(as.RHS)
		if err != nil {
			return err
		}
		am.StoreOwner(off, owner, v)
	} else {
		am.Valid[pc.p][off] = false
	}
	return nil
}

// lhsIndex evaluates the LHS subscripts into the per-proc scratch
// (valid until the next statement).
func (pc *proc) lhsIndex(as *ast.AssignStmt) ([]int, error) {
	idx := pc.lhsidx[:len(as.LHS.Subs)]
	for i, sub := range as.LHS.Subs {
		if sub.Kind != ast.SubExpr {
			return nil, fmt.Errorf("native: unscalarized section on LHS at %s", as.Pos)
		}
		x, err := pc.evalInt(sub.X)
		if err != nil {
			return nil, err
		}
		idx[i] = x
	}
	return idx, nil
}

// evalCond evaluates a branch condition. Conditions over scalar or
// replicated data are evaluated locally (identical on every
// processor); conditions reading distributed data run their SUM
// collectives, then processor 0 evaluates its own view and the taken
// edge descends the broadcast tree so control flow cannot diverge.
func (pc *proc) evalCond(b *cfg.Block) (bool, error) {
	clear(pc.sumMemo)
	cond := b.Branch.Cond
	if !pc.eng.pl.CondSync[b.ID] {
		v, err := pc.eval(cond)
		return v != 0, err
	}
	if err := pc.precomputeSums(pc.eng.pl.CondSums[b.ID]); err != nil {
		return false, err
	}
	var v float64
	if pc.p == 0 {
		var err error
		if v, err = pc.eval(cond); err != nil {
			return false, err
		}
	}
	if pc.ring != nil {
		// Condition agreement happens outside any placed group.
		pc.evStep, pc.evSite = -1, -1
		pc.evSend, pc.evRecv = prof.PhaseTreeWait, prof.PhaseTreeWait
	}
	v, err := pc.bcastValue(v)
	return v != 0, err
}

func (pc *proc) evalInt(e ast.Expr) (int, error) {
	return pc.eng.pl.A.Unit.EvalIntEnv(e, pc.ienv)
}

// eval evaluates an expression from this processor's point of view,
// mirroring the simulator's evalOn case for case so every
// floating-point operation happens in the same order.
func (pc *proc) eval(e ast.Expr) (float64, error) {
	switch e := e.(type) {
	case *ast.NumLit:
		return e.Value, nil
	case *ast.Ident:
		if v, ok := pc.ienv[e.Name]; ok {
			return float64(v), nil
		}
		if v, ok := pc.scalars[e.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("native: unbound scalar %q", e.Name)
	case *ast.UnaryExpr:
		v, err := pc.eval(e.X)
		return -v, err
	case *ast.BinExpr:
		x, err := pc.eval(e.X)
		if err != nil {
			return 0, err
		}
		y, err := pc.eval(e.Y)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case ast.Add:
			return x + y, nil
		case ast.Sub_:
			return x - y, nil
		case ast.Mul:
			return x * y, nil
		case ast.Div:
			return x / y, nil
		case ast.Pow:
			return math.Pow(x, y), nil
		case ast.CmpLt:
			return b2f(x < y), nil
		case ast.CmpGt:
			return b2f(x > y), nil
		case ast.CmpLe:
			return b2f(x <= y), nil
		case ast.CmpGe:
			return b2f(x >= y), nil
		case ast.CmpEq:
			return b2f(x == y), nil
		case ast.CmpNe:
			return b2f(x != y), nil
		}
		return 0, fmt.Errorf("native: bad operator %v", e.Op)
	case *ast.Ref:
		am := pc.eng.pl.RefArr[e]
		if am == nil {
			if v, ok := pc.ienv[e.Name]; ok {
				return float64(v), nil
			}
			return pc.scalars[e.Name], nil
		}
		// Subscripts evaluate through the integer environment (no
		// float recursion), so a stack-disciplined scratch keeps this
		// per-element path allocation-free.
		base := len(pc.idxstack)
		for _, sub := range e.Subs {
			if sub.Kind != ast.SubExpr {
				pc.idxstack = pc.idxstack[:base]
				return 0, fmt.Errorf("native: section read outside SUM at %s", e.Pos)
			}
			x, err := pc.evalInt(sub.X)
			if err != nil {
				pc.idxstack = pc.idxstack[:base]
				return 0, err
			}
			pc.idxstack = append(pc.idxstack, x)
		}
		idx := pc.idxstack[base:]
		v, err := am.ReadAt(pc.p, am.Offset(idx), idx)
		pc.idxstack = pc.idxstack[:base]
		return v, err
	case *ast.Call:
		if e.Func == "sum" {
			return pc.evalSum(e)
		}
		return pc.evalIntrinsic(e)
	}
	return 0, fmt.Errorf("native: cannot evaluate %T", e)
}

// evalIntrinsic evaluates a non-SUM intrinsic call, staging arguments
// on the per-proc value stack (calls nest, so the scratch is a stack,
// not a buffer).
func (pc *proc) evalIntrinsic(e *ast.Call) (float64, error) {
	base := len(pc.argstack)
	for _, a := range e.Args {
		v, err := pc.eval(a)
		if err != nil {
			pc.argstack = pc.argstack[:base]
			return 0, err
		}
		pc.argstack = append(pc.argstack, v)
	}
	args := pc.argstack[base:]
	var v float64
	var err error
	switch e.Func {
	case "sqrt":
		v = math.Sqrt(args[0])
	case "abs":
		v = math.Abs(args[0])
	case "exp":
		v = math.Exp(args[0])
	case "min":
		v = math.Min(args[0], args[1])
	case "max":
		v = math.Max(args[0], args[1])
	case "mod":
		v = math.Mod(args[0], args[1])
	default:
		err = fmt.Errorf("native: unknown intrinsic %q", e.Func)
	}
	pc.argstack = pc.argstack[:base]
	return v, err
}

// evalSum resolves a SUM call: distributed sums must already be in the
// memo (precomputeSums runs the collective at the statement level —
// finding one here means a processor would deadlock waiting for peers
// that are not summing); replicated sums are computed locally from the
// shared row in section order, matching the simulator's scan.
func (pc *proc) evalSum(e *ast.Call) (float64, error) {
	if v, ok := pc.sumMemo[e]; ok {
		return v, nil
	}
	if len(e.Args) != 1 {
		return 0, fmt.Errorf("native: sum wants 1 argument")
	}
	ref, ok := e.Args[0].(*ast.Ref)
	if !ok {
		return 0, fmt.Errorf("native: sum argument must be an array section")
	}
	am := pc.eng.pl.RefArr[ref]
	if am == nil {
		return 0, fmt.Errorf("native: sum over non-array %q", ref.Name)
	}
	if am.Dist != nil {
		return 0, fmt.Errorf("native: distributed sum of %q reached evaluation without a collective", ref.Name)
	}
	sec, err := pc.eng.pl.ConcreteRefSection(ref, am, pc.ienv)
	if err != nil {
		return 0, err
	}
	total := 0.0
	sec.Elems(func(idx []int) bool {
		total += am.Data[0][am.Offset(idx)]
		return true
	})
	pc.sumMemo[e] = total
	return total, nil
}

// precomputeSums runs the collective combine for every distributed SUM
// of a statement or condition — the plan precomputed the call list in
// WalkCalls order (identical on all processors) — filling the memo
// eval reads from.
func (pc *proc) precomputeSums(calls []plan.SumCall) error {
	for _, sc := range calls {
		if _, ok := pc.sumMemo[sc.Call]; ok {
			continue
		}
		total, err := pc.collectiveSum(sc)
		if err != nil {
			return err
		}
		pc.sumMemo[sc.Call] = total
	}
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
