package native

import (
	"fmt"
	"math"

	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/spmd"
)

// VerifyAgainstSimulator runs the placement on both backends — the BSP
// simulator (the reference, per ROADMAP) and the native goroutine
// engine — and compares the final distributed memory and scalar state
// bit for bit. The machine model only prices the simulator's ledger;
// it cannot influence values.
func VerifyAgainstSimulator(res *core.Result, m machine.Machine, procs int) error {
	sim, err := spmd.Run(res, m, procs)
	if err != nil {
		return fmt.Errorf("native: simulator reference failed: %w", err)
	}
	nat, err := Run(res, procs)
	if err != nil {
		return fmt.Errorf("native: native run failed: %w", err)
	}
	return Diff(nat, sim)
}

// Diff compares a native result against a simulator result bit for bit
// (math.Float64bits equality, NaN pairs forgiven): every array's
// canonical (owner-assembled) image, then the replicated scalars. It
// returns an error naming the first difference.
func Diff(nat *RunResult, sim *spmd.RunResult) error {
	for _, name := range nat.Mem.Unit.ArrayNames {
		nv := nat.Mem.Canonical(name)
		sv := sim.Mem.Canonical(name)
		if len(nv) != len(sv) {
			return fmt.Errorf("native: array %q size differs: native %d vs simulator %d", name, len(nv), len(sv))
		}
		for i := range nv {
			if !sameBits(nv[i], sv[i]) {
				return fmt.Errorf("native: array %q differs at flat index %d: native %v vs simulator %v (bits %016x vs %016x)",
					name, i, nv[i], sv[i], math.Float64bits(nv[i]), math.Float64bits(sv[i]))
			}
		}
	}
	for k, v := range sim.Scalars {
		if nv, ok := nat.Scalars[k]; ok && !sameBits(nv, v) {
			return fmt.Errorf("native: scalar %q differs: native %v vs simulator %v", k, nv, v)
		}
	}
	return nil
}

// sameBits is bit equality with the one forgiveness VerifyAgainst-
// Sequential also grants: any NaN equals any NaN.
func sameBits(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}
