// Package prof is the native runtime profiler: fixed-size phase events
// recorded by each engine goroutine into a preallocated per-processor
// ring, folded after the run into a NativeProfile — per-superstep
// per-processor timelines, blocked-vs-compute accounting, skew and
// straggler ranking — and calibrated against the analytic L+g·h model
// by a least-squares fit of the measured (L, g) machine constants.
//
// The package is stdlib-only (time is not even needed: events carry
// nanoseconds the engine stamped) so every layer of the observability
// stack can embed its types without an import cycle.
//
// Recording discipline: only communication operations are recorded —
// sends, receive waits, tree waits, reduction legs. Compute time is
// derived at fold time as the gaps between consecutive events on each
// processor (the leading gap from run start, the trailing gap to the
// processor's end mark), attributed to the FOLLOWING event's superstep.
// Compute + blocked therefore tile each processor's wall time by
// construction, and an empty lane is pure compute. Timings are
// excluded from any bit-identity claim: the scheduler decides who
// blocks for how long; only event counts, order, phases and site
// attribution are deterministic.
package prof

import (
	"fmt"
	"math"
	"sort"
)

// Phase classifies where a native processor's wall time went.
type Phase uint8

const (
	// PhaseCompute is derived at fold time (gaps between events);
	// engines never record it directly.
	PhaseCompute Phase = iota
	// PhaseSend is time blocked handing a payload to a channel.
	PhaseSend
	// PhaseRecvWait is time blocked waiting for a ghost-strip
	// neighbour message.
	PhaseRecvWait
	// PhaseTreeWait is time blocked in a binomial-tree collective leg
	// (broadcast, gather, barrier, condition agreement).
	PhaseTreeWait
	// PhaseSum is time blocked in a distributed-SUM collective
	// (operand gather and total broadcast).
	PhaseSum

	numPhases
)

// String names the phase under the vocabulary the issue and the docs
// use.
func (p Phase) String() string {
	switch p {
	case PhaseCompute:
		return "compute"
	case PhaseSend:
		return "send"
	case PhaseRecvWait:
		return "recv-wait"
	case PhaseTreeWait:
		return "tree-wait"
	case PhaseSum:
		return "sum"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Event is one fixed-size profiler record: a communication operation
// on one processor. Start and Dur are nanoseconds relative to the
// engine's run start. Step is the superstep index — the run-global
// execution index of the communication group, matching the simulator's
// attr.Step indices — and Site indexes the profiler's site table (the
// placed group's ID); both are -1 for operations outside any group
// (barriers, condition broadcasts).
type Event struct {
	Start int64 `json:"start_ns"`
	Dur   int64 `json:"dur_ns"`
	Step  int32 `json:"step"`
	Site  int32 `json:"site"`
	Phase Phase `json:"phase"`
}

// Ring is a preallocated fixed-capacity event buffer for one
// processor. Record never allocates and never blocks: past the
// capacity it wraps, keeping the newest events and counting the
// drops. A Ring is single-writer (its processor's goroutine); readers
// must wait for the run to finish.
type Ring struct {
	buf  []Event
	mask uint64
	n    uint64 // total events recorded since Reset
}

// DefaultRingSize is the per-processor event capacity when the caller
// does not choose one: 64Ki events × 24 bytes ≈ 1.5 MiB per processor,
// enough for every paper benchmark's full run without wrapping.
const DefaultRingSize = 1 << 16

// NewRing builds a ring with at least the requested capacity, rounded
// up to a power of two; n <= 0 selects DefaultRingSize.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return &Ring{buf: make([]Event, c), mask: uint64(c - 1)}
}

// Record appends one event, overwriting the oldest when full.
func (r *Ring) Record(ev Event) {
	r.buf[r.n&r.mask] = ev
	r.n++
}

// Reset forgets every recorded event (the buffer is retained).
func (r *Ring) Reset() { r.n = 0 }

// PendingStep is the sentinel a recorder stamps on events whose
// superstep is not yet known — distributed-SUM legs run at the SUM
// statement, before their marker group's position assigns the step
// index. PatchPending resolves them; unresolved sentinels fold as
// unattributed (they count in processor totals, not in any step).
const PendingStep int32 = -2

// PatchPending rewrites the newest contiguous run of PendingStep
// events to the given step and site, stopping at the first event that
// is not pending. Stopping early under-attributes but never
// mis-attributes: a sentinel that another event buried stays
// unattributed rather than joining the wrong superstep.
func (r *Ring) PatchPending(step, site int32) {
	lo := uint64(0)
	if r.n > uint64(len(r.buf)) {
		lo = r.n - uint64(len(r.buf))
	}
	for seq := r.n; seq > lo; seq-- {
		ev := &r.buf[(seq-1)&r.mask]
		if ev.Step != PendingStep {
			return
		}
		ev.Step, ev.Site = step, site
	}
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r.n > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(r.n)
}

// Dropped returns how many events were overwritten by wraparound.
func (r *Ring) Dropped() uint64 {
	if r.n > uint64(len(r.buf)) {
		return r.n - uint64(len(r.buf))
	}
	return 0
}

// Snapshot copies the retained events oldest-first (recording order,
// which is also chronological: each processor records sequentially).
func (r *Ring) Snapshot() []Event {
	n := r.Len()
	out := make([]Event, 0, n)
	if r.n > uint64(len(r.buf)) {
		head := r.n & r.mask
		out = append(out, r.buf[head:]...)
		out = append(out, r.buf[:head]...)
		return out
	}
	return append(out, r.buf[:n]...)
}

// ---------------------------------------------------------------------
// Folding: rings → NativeProfile

// StepStat aggregates one superstep across processors. Compute and
// blocked are reported per processor (index = processor number) so the
// skew and straggler accounting — and any timeline rendering — can see
// the distribution, not just the moments.
type StepStat struct {
	// Step is the superstep index (group execution order, run-global).
	Step int32 `json:"step"`
	// Site indexes the profile's site table; -1 when no event of the
	// step carried one.
	Site int32 `json:"site"`
	// Events counts the step's recorded events across processors.
	Events int64 `json:"events"`
	// ComputeSec[p] is the gap time attributed to this step on
	// processor p; BlockedSec[p] the recorded send/wait time.
	ComputeSec []float64 `json:"compute_sec"`
	BlockedSec []float64 `json:"blocked_sec"`
	// MaxComputeSec / MeanComputeSec summarize the compute
	// distribution; their ratio is the step's skew.
	MaxComputeSec  float64 `json:"max_compute_sec"`
	MeanComputeSec float64 `json:"mean_compute_sec"`
	// CommSec is the measured cost of the superstep: the maximum over
	// processors of its blocked time — the native analogue of the
	// model's L + g·h, and the t_k the calibration fits.
	CommSec float64 `json:"comm_sec"`
}

// ProcStat is one processor's wall-time split. WallSeconds is the
// processor's own end mark, and ComputeSeconds plus the four blocked
// phases tile it exactly (up to ring truncation).
type ProcStat struct {
	Proc            int     `json:"proc"`
	WallSeconds     float64 `json:"wall_seconds"`
	ComputeSeconds  float64 `json:"compute_seconds"`
	SendSeconds     float64 `json:"send_seconds"`
	RecvWaitSeconds float64 `json:"recv_wait_seconds"`
	TreeWaitSeconds float64 `json:"tree_wait_seconds"`
	SumSeconds      float64 `json:"sum_seconds"`
	BlockedSeconds  float64 `json:"blocked_seconds"`
	Events          int     `json:"events"`
	Dropped         uint64  `json:"dropped,omitempty"`
	// StragglerSteps counts the supersteps where this processor had
	// the maximum compute time — the straggler ranking key.
	StragglerSteps int `json:"straggler_steps"`
}

// NativeProfile is the folded result of one profiled native run.
type NativeProfile struct {
	Procs       int     `json:"procs"`
	WallSeconds float64 `json:"wall_seconds"`
	// Sites is the placement-site table; Event.Site and StepStat.Site
	// index it.
	Sites []string   `json:"sites"`
	Steps []StepStat `json:"steps"`
	// ProcTotals has one entry per processor, in processor order.
	ProcTotals []ProcStat `json:"proc_totals"`
	// SkewRatio is Σ_s max_p compute(s,p) / Σ_s mean_p compute(s,p):
	// 1.0 is a perfectly balanced run, 2.0 means the critical path
	// spends twice the average processor's compute per superstep.
	SkewRatio float64 `json:"skew_ratio"`
	// ComputeSeconds / BlockedSeconds are totals across processors.
	ComputeSeconds float64 `json:"compute_seconds"`
	BlockedSeconds float64 `json:"blocked_seconds"`
	// Stragglers ranks processors by StragglerSteps, worst first.
	Stragglers []int `json:"stragglers,omitempty"`
	// Truncated marks a profile where at least one ring wrapped; gap
	// derivation is then incomplete and per-step stats undercount.
	Truncated bool `json:"truncated,omitempty"`
	// Calib is attached by Calibrate; nil until then.
	Calib *Calibration `json:"calib,omitempty"`
	// Events holds each processor's chronological event stream. It is
	// excluded from JSON (it dwarfs the aggregates) but kept in memory
	// so trace exporters can render per-processor lanes.
	Events [][]Event `json:"-"`
}

// Fold builds the profile from each processor's ring, end mark
// (nanoseconds since run start, when the goroutine finished) and the
// site table. Rings and ends must have one entry per processor.
func Fold(sites []string, rings []*Ring, endNS []int64, wallNS int64) *NativeProfile {
	p := &NativeProfile{
		Procs:       len(rings),
		WallSeconds: float64(wallNS) / 1e9,
		Sites:       sites,
		Events:      make([][]Event, len(rings)),
		ProcTotals:  make([]ProcStat, len(rings)),
	}

	// Pass 1: snapshot streams, find the step count.
	maxStep := int32(-1)
	for q, r := range rings {
		evs := r.Snapshot()
		p.Events[q] = evs
		if r.Dropped() > 0 {
			p.Truncated = true
		}
		for _, ev := range evs {
			if ev.Step > maxStep {
				maxStep = ev.Step
			}
		}
	}
	steps := int(maxStep) + 1
	p.Steps = make([]StepStat, steps)
	for s := range p.Steps {
		p.Steps[s] = StepStat{
			Step:       int32(s),
			Site:       -1,
			ComputeSec: make([]float64, len(rings)),
			BlockedSec: make([]float64, len(rings)),
		}
	}

	// Pass 2: per processor, walk the stream deriving compute gaps and
	// accumulating phase totals. A gap belongs to the FOLLOWING
	// event's step; the trailing gap (last event → end mark) and gaps
	// before step -1 events count only in the processor totals.
	for q, evs := range p.Events {
		ps := &p.ProcTotals[q]
		ps.Proc = q
		ps.Events = len(evs)
		ps.Dropped = rings[q].Dropped()
		ps.WallSeconds = float64(endNS[q]) / 1e9
		cursor := int64(0)
		if ps.Dropped > 0 && len(evs) > 0 {
			// The stream's head was overwritten: gaps before the
			// oldest surviving event are unknowable, so start the
			// cursor there instead of at zero.
			cursor = evs[0].Start
		}
		for _, ev := range evs {
			gap := ev.Start - cursor
			if gap < 0 {
				gap = 0
			}
			cursor = ev.Start + ev.Dur
			gapSec := float64(gap) / 1e9
			durSec := float64(ev.Dur) / 1e9
			ps.ComputeSeconds += gapSec
			switch ev.Phase {
			case PhaseSend:
				ps.SendSeconds += durSec
			case PhaseRecvWait:
				ps.RecvWaitSeconds += durSec
			case PhaseTreeWait:
				ps.TreeWaitSeconds += durSec
			case PhaseSum:
				ps.SumSeconds += durSec
			}
			if ev.Step >= 0 {
				st := &p.Steps[ev.Step]
				st.Events++
				st.ComputeSec[q] += gapSec
				st.BlockedSec[q] += durSec
				if st.Site < 0 && ev.Site >= 0 {
					st.Site = ev.Site
				}
			}
		}
		if tail := endNS[q] - cursor; tail > 0 {
			ps.ComputeSeconds += float64(tail) / 1e9
		}
		ps.BlockedSeconds = ps.SendSeconds + ps.RecvWaitSeconds +
			ps.TreeWaitSeconds + ps.SumSeconds
		p.ComputeSeconds += ps.ComputeSeconds
		p.BlockedSeconds += ps.BlockedSeconds
	}

	// Pass 3: step moments, skew, stragglers.
	var skewNum, skewDen float64
	for s := range p.Steps {
		st := &p.Steps[s]
		maxC, sumC, argmax := 0.0, 0.0, 0
		for q, c := range st.ComputeSec {
			sumC += c
			if c > maxC {
				maxC, argmax = c, q
			}
			if b := st.BlockedSec[q]; b > st.CommSec {
				st.CommSec = b
			}
		}
		st.MaxComputeSec = maxC
		st.MeanComputeSec = sumC / float64(len(rings))
		if maxC > 0 {
			p.ProcTotals[argmax].StragglerSteps++
		}
		skewNum += st.MaxComputeSec
		skewDen += st.MeanComputeSec
	}
	if skewDen > 0 {
		p.SkewRatio = skewNum / skewDen
	} else {
		p.SkewRatio = 1
	}
	p.Stragglers = make([]int, len(rings))
	for q := range p.Stragglers {
		p.Stragglers[q] = q
	}
	sort.SliceStable(p.Stragglers, func(i, j int) bool {
		return p.ProcTotals[p.Stragglers[i]].StragglerSteps >
			p.ProcTotals[p.Stragglers[j]].StragglerSteps
	})
	return p
}

// SiteName resolves a site index against the table; -1 and
// out-of-range render as "?".
func (p *NativeProfile) SiteName(site int32) string {
	if site < 0 || int(site) >= len(p.Sites) {
		return "?"
	}
	return p.Sites[site]
}

// ---------------------------------------------------------------------
// Calibration: measured supersteps vs the analytic model

// ModelStep is the analytic model's view of one superstep, converted
// from the simulator's cost-attribution record (attr.Step) by the
// caller so this package stays stdlib-only. Index must match the
// native superstep index — both backends execute the identical group
// sequence in program order, so position k is the same group in both.
type ModelStep struct {
	// Index is the superstep index.
	Index int `json:"index"`
	// Site is the group's stable placement-site id, asserted against
	// the profile's site table at join time.
	Site string `json:"site"`
	// HBytes is the step's h-relation in bytes: max over processors
	// of bytes in/out, the h the model charges g against.
	HBytes int64 `json:"h_bytes"`
	// ModeledSec is the step's analytic cost L + g·h under the paper
	// machine's constants.
	ModeledSec float64 `json:"modeled_sec"`
}

// SiteResidual compares measured and modeled time for one placement
// site (summed over its supersteps).
type SiteResidual struct {
	Site        string  `json:"site"`
	Steps       int     `json:"steps"`
	MeasuredSec float64 `json:"measured_sec"`
	ModeledSec  float64 `json:"modeled_sec"`
	// Ratio is measured/modeled; > 1 means the model is optimistic
	// for this site on this machine.
	Ratio float64 `json:"ratio"`
}

// Calibration is the least-squares fit of the measured superstep costs
// t_k against the model's h-relations: t_k ≈ L + g·h_k. FittedL is in
// seconds, FittedG in seconds per byte — directly comparable to the
// paper's per-machine constants.
type Calibration struct {
	FittedL float64 `json:"fitted_l_seconds"`
	FittedG float64 `json:"fitted_g_seconds_per_byte"`
	// R2 is the fit's coefficient of determination over the joined
	// points.
	R2 float64 `json:"r2"`
	// Points counts the joined (h_k, t_k) pairs; Mismatched counts
	// steps whose site ids disagreed between profile and model (they
	// are excluded from the fit).
	Points     int `json:"points"`
	Mismatched int `json:"mismatched,omitempty"`
	// Degenerate marks fits with fewer than two points or no spread
	// in h; FittedG is 0 and FittedL the mean measured cost then.
	Degenerate bool           `json:"degenerate,omitempty"`
	Residuals  []SiteResidual `json:"residuals,omitempty"`
}

// Calibrate joins the profile's measured supersteps against the
// model's record by index (asserting site agreement), fits (L, g) by
// least squares, attaches the result to the profile and returns it.
// Supersteps missing on either side are skipped.
func (p *NativeProfile) Calibrate(model []ModelStep) *Calibration {
	c := &Calibration{}
	type pt struct {
		h, t    float64
		modeled float64
		site    string
	}
	var pts []pt
	for _, ms := range model {
		if ms.Index < 0 || ms.Index >= len(p.Steps) {
			continue
		}
		st := &p.Steps[ms.Index]
		if st.Site >= 0 && ms.Site != "" && p.SiteName(st.Site) != ms.Site {
			c.Mismatched++
			continue
		}
		pts = append(pts, pt{
			h: float64(ms.HBytes), t: st.CommSec,
			modeled: ms.ModeledSec, site: ms.Site,
		})
	}
	c.Points = len(pts)

	// Closed-form simple linear regression t = L + g·h.
	var sh, st2, shh, sht float64
	for _, q := range pts {
		sh += q.h
		st2 += q.t
		shh += q.h * q.h
		sht += q.h * q.t
	}
	n := float64(len(pts))
	den := n*shh - sh*sh
	if len(pts) < 2 || den == 0 {
		c.Degenerate = true
		if n > 0 {
			c.FittedL = st2 / n
		}
	} else {
		c.FittedG = (n*sht - sh*st2) / den
		c.FittedL = (st2 - c.FittedG*sh) / n
		mean := st2 / n
		var ssRes, ssTot float64
		for _, q := range pts {
			d := q.t - (c.FittedL + c.FittedG*q.h)
			ssRes += d * d
			ssTot += (q.t - mean) * (q.t - mean)
		}
		if ssTot > 0 {
			c.R2 = 1 - ssRes/ssTot
		}
	}

	// Per-site residuals, worst measured/modeled ratio first.
	bySite := map[string]*SiteResidual{}
	var order []string
	for _, q := range pts {
		r := bySite[q.site]
		if r == nil {
			r = &SiteResidual{Site: q.site}
			bySite[q.site] = r
			order = append(order, q.site)
		}
		r.Steps++
		r.MeasuredSec += q.t
		r.ModeledSec += q.modeled
	}
	for _, site := range order {
		r := bySite[site]
		if r.ModeledSec > 0 {
			r.Ratio = r.MeasuredSec / r.ModeledSec
		} else if r.MeasuredSec > 0 {
			r.Ratio = math.Inf(1)
		}
		c.Residuals = append(c.Residuals, *r)
	}
	sort.SliceStable(c.Residuals, func(i, j int) bool {
		return c.Residuals[i].Ratio > c.Residuals[j].Ratio
	})
	p.Calib = c
	return c
}

// WorstResidual returns the residual whose measured/modeled ratio is
// furthest from 1 (in either direction), or nil when none exist.
func (c *Calibration) WorstResidual() *SiteResidual {
	if c == nil || len(c.Residuals) == 0 {
		return nil
	}
	worst, score := -1, -1.0
	for i := range c.Residuals {
		r := c.Residuals[i].Ratio
		if r <= 0 {
			continue
		}
		s := r
		if s < 1 {
			s = 1 / s
		}
		if s > score {
			worst, score = i, s
		}
	}
	if worst < 0 {
		return nil
	}
	return &c.Residuals[worst]
}
