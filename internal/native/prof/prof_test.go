package prof

import (
	"math"
	"testing"
)

func TestRingWraparoundKeepsNewest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 7; i++ {
		r.Record(Event{Start: int64(i), Step: int32(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", r.Dropped())
	}
	evs := r.Snapshot()
	for i, ev := range evs {
		if want := int64(3 + i); ev.Start != want {
			t.Fatalf("snapshot[%d].Start = %d, want %d (oldest-first)", i, ev.Start, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("after reset: len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

func TestNewRingRoundsUpAndDefaults(t *testing.T) {
	if got := len(NewRing(0).buf); got != DefaultRingSize {
		t.Fatalf("default capacity = %d, want %d", got, DefaultRingSize)
	}
	if got := len(NewRing(5).buf); got != 8 {
		t.Fatalf("capacity for 5 = %d, want 8", got)
	}
}

func TestRingRecordDoesNotAllocate(t *testing.T) {
	r := NewRing(1 << 10)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			r.Record(Event{Start: int64(i), Dur: 1, Step: 0, Site: 0, Phase: PhaseSend})
		}
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %.1f allocs/run, want 0", allocs)
	}
}

// foldFixture builds a two-processor, two-superstep profile:
//
//	proc 0: [0,10) compute, [10,20) send step 0, [20,30) compute, [30,40) sum step 1, end 45
//	proc 1: [0,30) compute, [30,35) recv-wait step 0, end 40 (step 1 never blocks here)
func foldFixture() *NativeProfile {
	r0, r1 := NewRing(16), NewRing(16)
	r0.Record(Event{Start: 10, Dur: 10, Step: 0, Site: 0, Phase: PhaseSend})
	r0.Record(Event{Start: 30, Dur: 10, Step: 1, Site: 1, Phase: PhaseSum})
	r1.Record(Event{Start: 30, Dur: 5, Step: 0, Site: 0, Phase: PhaseRecvWait})
	return Fold([]string{"v/g0@pos/NNC", "v/g1@pos/SUM"}, []*Ring{r0, r1}, []int64{45, 40}, 50)
}

func TestFoldTilesWallTime(t *testing.T) {
	p := foldFixture()
	// Compute gaps + blocked spans must tile each processor's wall
	// time exactly.
	for q, ps := range p.ProcTotals {
		sum := ps.ComputeSeconds + ps.BlockedSeconds
		if math.Abs(sum-ps.WallSeconds) > 1e-12 {
			t.Errorf("proc %d: compute+blocked = %g, wall = %g", q, sum, ps.WallSeconds)
		}
	}
	p0 := p.ProcTotals[0]
	if p0.ComputeSeconds != 25e-9 || p0.SendSeconds != 10e-9 || p0.SumSeconds != 10e-9 {
		t.Errorf("proc 0 split = compute %g send %g sum %g", p0.ComputeSeconds, p0.SendSeconds, p0.SumSeconds)
	}
	p1 := p.ProcTotals[1]
	if math.Abs(p1.ComputeSeconds-35e-9) > 1e-15 || p1.RecvWaitSeconds != 5e-9 {
		t.Errorf("proc 1 split = compute %g recv %g", p1.ComputeSeconds, p1.RecvWaitSeconds)
	}
}

func TestFoldStepAttribution(t *testing.T) {
	p := foldFixture()
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(p.Steps))
	}
	s0 := p.Steps[0]
	if s0.Site != 0 || s0.Events != 2 {
		t.Fatalf("step 0 = %+v", s0)
	}
	// Gaps attribute to the following event's step: proc 0's leading
	// 10ns and proc 1's leading 30ns both precede step-0 events.
	if s0.ComputeSec[0] != 10e-9 || s0.ComputeSec[1] != 30e-9 {
		t.Errorf("step 0 compute = %v", s0.ComputeSec)
	}
	// CommSec is the max blocked across procs: proc 0 sent for 10ns.
	if s0.CommSec != 10e-9 {
		t.Errorf("step 0 comm = %g, want 10e-9", s0.CommSec)
	}
	s1 := p.Steps[1]
	if s1.Site != 1 || s1.ComputeSec[0] != 10e-9 || s1.CommSec != 10e-9 {
		t.Errorf("step 1 = %+v", s1)
	}
	// Skew: step 0 max 30 mean 20, step 1 max 10 mean 5.
	want := (30.0 + 10.0) / (20.0 + 5.0)
	if math.Abs(p.SkewRatio-want) > 1e-12 {
		t.Errorf("skew = %g, want %g", p.SkewRatio, want)
	}
	// Proc 1 is the step-0 straggler, proc 0 the step-1 straggler —
	// both had one max-compute step, so the ranking is stable order.
	if p.ProcTotals[0].StragglerSteps != 1 || p.ProcTotals[1].StragglerSteps != 1 {
		t.Errorf("straggler steps = %d, %d", p.ProcTotals[0].StragglerSteps, p.ProcTotals[1].StragglerSteps)
	}
}

func TestFoldTruncationStartsAtOldestSurvivor(t *testing.T) {
	r := NewRing(2)
	r.Record(Event{Start: 10, Dur: 5, Step: 0, Site: 0, Phase: PhaseSend})
	r.Record(Event{Start: 20, Dur: 5, Step: 1, Site: 0, Phase: PhaseSend})
	r.Record(Event{Start: 30, Dur: 5, Step: 2, Site: 0, Phase: PhaseSend})
	p := Fold([]string{"s"}, []*Ring{r}, []int64{40}, 40)
	if !p.Truncated {
		t.Fatal("profile not marked truncated")
	}
	// The head was overwritten: compute starts at the oldest
	// survivor (20), so gaps are 0 + 5 + tail 5.
	if got := p.ProcTotals[0].ComputeSeconds; got != 10e-9 {
		t.Errorf("compute = %g, want 10e-9", got)
	}
}

func TestCalibrateRecoversPlantedConstants(t *testing.T) {
	// Plant t_k = L + g·h_k exactly and check the fit recovers it.
	const L, g = 40e-6, 0.9e-6 // SP2-flavoured constants
	sites := []string{"v/g0@p/NNC", "v/g1@p/BCAST", "v/g2@p/SUM"}
	rings := []*Ring{NewRing(16)}
	hs := []int64{800, 4000, 64}
	start := int64(0)
	for k, h := range hs {
		d := int64((L + g*float64(h)) * 1e9)
		rings[0].Record(Event{Start: start, Dur: d, Step: int32(k), Site: int32(k), Phase: PhaseSend})
		start += d + 100
	}
	p := Fold(sites, rings, []int64{start}, start)
	model := make([]ModelStep, len(hs))
	for k, h := range hs {
		model[k] = ModelStep{Index: k, Site: sites[k], HBytes: h, ModeledSec: L + g*float64(h)}
	}
	c := p.Calibrate(model)
	if c.Degenerate || c.Points != 3 || c.Mismatched != 0 {
		t.Fatalf("calibration = %+v", c)
	}
	if math.Abs(c.FittedL-L) > 5e-9 || math.Abs(c.FittedG-g) > 1e-10 {
		t.Errorf("fitted L=%g g=%g, want L=%g g=%g", c.FittedL, c.FittedG, L, g)
	}
	if c.R2 < 0.999 {
		t.Errorf("R2 = %g, want ~1", c.R2)
	}
	// Durations are stored in whole nanoseconds, so the replanted
	// ratio carries a sub-ppm truncation error.
	for _, r := range c.Residuals {
		if math.Abs(r.Ratio-1) > 1e-4 {
			t.Errorf("site %s ratio = %g, want ~1", r.Site, r.Ratio)
		}
	}
	if p.Calib != c {
		t.Error("Calibrate did not attach the result to the profile")
	}
}

func TestCalibrateDegenerateAndMismatch(t *testing.T) {
	r := NewRing(4)
	r.Record(Event{Start: 0, Dur: 100, Step: 0, Site: 0, Phase: PhaseSend})
	p := Fold([]string{"v/g0@p/NNC"}, []*Ring{r}, []int64{100}, 100)
	c := p.Calibrate([]ModelStep{{Index: 0, Site: "v/g0@p/NNC", HBytes: 8, ModeledSec: 1e-6}})
	if !c.Degenerate || c.FittedG != 0 || c.FittedL != 100e-9 {
		t.Fatalf("single-point fit = %+v", c)
	}
	// A site mismatch excludes the step instead of joining wrong data.
	c = p.Calibrate([]ModelStep{{Index: 0, Site: "OTHER", HBytes: 8, ModeledSec: 1e-6}})
	if c.Mismatched != 1 || c.Points != 0 {
		t.Fatalf("mismatched fit = %+v", c)
	}
	// Out-of-range indexes are skipped silently.
	c = p.Calibrate([]ModelStep{{Index: 99, Site: "x", HBytes: 8}})
	if c.Points != 0 {
		t.Fatalf("out-of-range join = %+v", c)
	}
}

func TestWorstResidual(t *testing.T) {
	c := &Calibration{Residuals: []SiteResidual{
		{Site: "a", Ratio: 1.5},
		{Site: "b", Ratio: 0.2}, // 5× off, worse than 1.5×
	}}
	if w := c.WorstResidual(); w == nil || w.Site != "b" {
		t.Fatalf("worst = %+v", w)
	}
	if (&Calibration{}).WorstResidual() != nil {
		t.Error("empty calibration has a worst residual")
	}
	var nilc *Calibration
	if nilc.WorstResidual() != nil {
		t.Error("nil calibration has a worst residual")
	}
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{
		PhaseCompute: "compute", PhaseSend: "send", PhaseRecvWait: "recv-wait",
		PhaseTreeWait: "tree-wait", PhaseSum: "sum",
	} {
		if p.String() != want {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
}
