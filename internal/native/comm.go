package native

// The channel protocol. Every transfer is a blocking operation on a
// capacity-1 channel guarded by the engine's done latch, so the
// backend never spins: at any GOMAXPROCS (including 1) the Go
// scheduler parks blocked processors and progress is guaranteed as
// long as both endpoints of each pair agree on the per-pair message
// sequence — which the replicated CFG walk guarantees, since every
// processor executes the same communication groups at the same program
// points in the same order.
//
// Buffer lifecycle (zero allocation in steady state). Alongside every
// data channel src→dst rides a recycle channel dst→src. A send
// transfers ownership of the payload slice to the receiver; once the
// receiver has fully consumed the message it returns the slice through
// the recycle channel, and the sender's next getBuf reuses it. At most
// two buffers are ever in flight per pair (one queued in the capacity-1
// data channel, one being consumed), so the recycle channel's capacity
// of two never drops a buffer in practice; if a slice is ever too small
// it is grown once and the grown slice recycles thereafter. Initial
// capacities come from the plan's per-group payload bounds, so after
// the first execution of each group the fabric allocates nothing.
//
// Per group kind:
//
//   - exchange (KindShift): each processor derives the element list of
//     the ghost strip from its own loop environment — sender and
//     receiver compute identical lists because the concretized entry
//     sections and the region filters are pure functions of shared
//     state — and one message per neighbour pair carries the packed
//     strip (combining realized literally). Validity travels as a
//     packed bitmap trailer (one bit per strip element) instead of a
//     flag word per element, so only the elements the sender holds
//     current occupy payload words: the wire format is
//     [valid values...][bitmap words][element count], roughly halving
//     exchange bytes versus the value+flag interleaving.
//
//   - broadcast / gather (KindBcast, KindGeneral): a binomial tree
//     rooted at processor 0 (plan.Tree). Owners pack their section
//     elements in section order; payloads concatenate up the tree in
//     DFS pre-order; the root carves the received subtree buffers back
//     into per-processor streams (using per-owner element counts from
//     its own section scan — no headers) and reassembles the full
//     section by popping each element from its owner's stream, exactly
//     the owner-order scan SumSection uses. The full section then
//     descends the tree, each hop forwarding a private copy, and every
//     processor stores the elements it does not own. Critical path:
//     ceil(log2 P) hops up, the same down.
//
//   - global-sum (KindReduce): no data motion here — the combine
//     happened at the SUM statement itself (collectiveSum), which is
//     where the simulator's functional value is produced too; the
//     group only marks the superstep in the listing. The collective
//     gathers raw operands up the tree (never partial sums) so the
//     root's section-order accumulation is bit-identical to the
//     simulator's scan, then broadcasts the total down the tree.

import (
	"fmt"
	"math"

	"gcao/internal/codegen"
	"gcao/internal/core"
	"gcao/internal/native/prof"
	"gcao/internal/plan"
	"gcao/internal/runtime"
	"gcao/internal/section"
)

// send transfers ownership of a payload to dst, counting the message
// and its wire words at the sender. A nil channel for the pair is a
// protocol bug, not a user error. The sender must not touch buf again
// until it comes back through the pair's recycle channel.
func (pc *proc) send(dst int, buf []float64) error {
	ch := pc.eng.ch[dst][pc.p]
	if ch == nil {
		return fmt.Errorf("native: no channel %d→%d (protocol bug)", pc.p, dst)
	}
	var t0 int64
	if pc.ring != nil {
		t0 = pc.nowNS()
	}
	select {
	case ch <- buf:
		pc.msgs++
		pc.wire += int64(8 * len(buf))
		if pc.ring != nil {
			pc.ring.Record(prof.Event{
				Start: t0, Dur: pc.nowNS() - t0,
				Step: pc.evStep, Site: pc.evSite, Phase: pc.evSend,
			})
		}
		return nil
	case <-pc.eng.done:
		return pc.eng.err()
	}
}

func (pc *proc) recv(src int) ([]float64, error) {
	ch := pc.eng.ch[pc.p][src]
	if ch == nil {
		return nil, fmt.Errorf("native: no channel %d→%d (protocol bug)", src, pc.p)
	}
	var t0 int64
	if pc.ring != nil {
		t0 = pc.nowNS()
	}
	select {
	case buf := <-ch:
		if pc.ring != nil {
			pc.ring.Record(prof.Event{
				Start: t0, Dur: pc.nowNS() - t0,
				Step: pc.evStep, Site: pc.evSite, Phase: pc.evRecv,
			})
		}
		return buf, nil
	case <-pc.eng.done:
		return nil, pc.eng.err()
	}
}

// getBuf returns an empty payload slice for a message to dst: the
// pair's recycled buffer when one is available, a fresh allocation
// (counted in Stats.AllocBytes) only when the pool is empty or the
// recycled slice is too small for need.
func (pc *proc) getBuf(dst, need int) []float64 {
	var buf []float64
	select {
	case buf = <-pc.eng.free[pc.p][dst]:
	default:
	}
	if cap(buf) < need {
		buf = make([]float64, 0, need)
		pc.allocBytes += int64(8 * need)
		return buf
	}
	return buf[:0]
}

// putBuf returns a fully consumed message from src to the pair's
// recycle channel. The caller must hold no live reference into buf.
func (pc *proc) putBuf(src int, buf []float64) {
	if buf == nil {
		return
	}
	select {
	case pc.eng.free[src][pc.p] <- buf:
	default:
	}
}

// barrier is a full synchronization over the binomial tree: completion
// tokens ascend (a processor signals its parent only after all its
// children signaled), then the release descends. Used only around
// shared-row (replicated array) writes.
func (pc *proc) barrier() error {
	pc.barriers++
	if pc.ring != nil {
		// Barriers guard replicated-array stores; they belong to no
		// placed group.
		pc.evStep, pc.evSite = -1, -1
		pc.evSend, pc.evRecv = prof.PhaseTreeWait, prof.PhaseTreeWait
	}
	t := pc.eng.pl.Tree
	for _, c := range t.Children[pc.p] {
		if _, err := pc.recv(c); err != nil {
			return err
		}
	}
	if pc.p != 0 {
		if err := pc.send(t.Parent[pc.p], nil); err != nil {
			return err
		}
		if _, err := pc.recv(t.Parent[pc.p]); err != nil {
			return err
		}
	}
	for _, c := range t.Children[pc.p] {
		if err := pc.send(c, nil); err != nil {
			return err
		}
	}
	return nil
}

// bcastValue broadcasts one float64 from processor 0 down the tree,
// returning the value on every processor (bit-identical: the bits are
// copied, never recomputed). Used for condition agreement and SUM
// totals.
func (pc *proc) bcastValue(v float64) (float64, error) {
	t := pc.eng.pl.Tree
	if pc.p != 0 {
		buf, err := pc.recv(t.Parent[pc.p])
		if err != nil {
			return 0, err
		}
		v = buf[0]
		pc.putBuf(t.Parent[pc.p], buf)
	}
	for _, c := range t.Children[pc.p] {
		b := pc.getBuf(c, 1)
		b = append(b, v)
		pc.hops++
		if err := pc.send(c, b); err != nil {
			return 0, err
		}
	}
	if pc.p != 0 {
		pc.bytes += 8 * int64(len(t.Children[pc.p]))
	} else {
		pc.bytes += 8 * int64(len(t.Children[pc.p]))
	}
	return v, nil
}

// execComm executes the communication groups placed at one position,
// in placement order — the exact COMM sequence the codegen listing
// prints there.
func (pc *proc) execComm(groups []*core.Group) error {
	for _, g := range groups {
		step := pc.nextStep
		pc.nextStep++
		pc.colls++
		pc.ops[codegen.OpName(g)]++
		if pc.ring != nil {
			pc.evStep, pc.evSite = step, int32(g.ID)
			pc.evSend = prof.PhaseSend
			if g.Kind == core.KindShift {
				pc.evRecv = prof.PhaseRecvWait
			} else {
				pc.evRecv = prof.PhaseTreeWait
			}
		}
		var err error
		switch g.Kind {
		case core.KindShift:
			err = pc.shiftExchange(g)
		case core.KindBcast, core.KindGeneral:
			err = pc.bcastGather(g)
		case core.KindReduce:
			// Combine already performed at the SUM statement (the
			// group's position is after it) — the group only marks the
			// superstep. Claim the SUM's pending events for this step
			// and drop a zero-duration marker so the fold sees the
			// step's site even when the collective moved nothing.
			if pc.ring != nil {
				pc.ring.PatchPending(step, int32(g.ID))
				pc.ring.Record(prof.Event{
					Start: pc.nowNS(), Dur: 0,
					Step: step, Site: int32(g.ID), Phase: prof.PhaseSum,
				})
			}
		}
		if err != nil {
			return err
		}
	}
	if pc.ring != nil {
		pc.evStep, pc.evSite = -1, -1
	}
	return nil
}

// entrySec is one concretized group entry.
type entrySec struct {
	am  *runtime.ArrayMem
	sec section.Section
	ad  int // array dim moved by the shift (unused for collectives)
}

// concretizeEntries resolves the group's entry sections under this
// processor's loop environment into the per-proc scratch (valid until
// the next call). The environment is replicated, so every processor
// derives the identical list.
func (pc *proc) concretizeEntries(g *core.Group, needDim bool) []entrySec {
	out := pc.entbuf[:0]
	for _, e := range g.Entries {
		sec, ok := pc.eng.pl.ConcreteEntrySection(e, g.Pos, pc.ienv)
		if !ok {
			continue
		}
		am := pc.eng.mem.View(e.Array)
		if am.Dist == nil {
			continue
		}
		ad := -1
		if needDim {
			if ad = am.ShiftArrayDim(g.Map.GridDim); ad < 0 {
				continue
			}
		}
		out = append(out, entrySec{am: am, sec: sec, ad: ad})
	}
	pc.entbuf = out
	return out
}

// shiftExchange performs one ghost-strip exchange. Data moves from
// grid coordinate c to c-sign along g.Map.GridDim: this processor
// sends its strip to the neighbour at coordinate c-sign (if any) and
// receives the neighbour strip from coordinate c+sign (if any). The
// payload carries only the elements the sender holds current plus a
// packed validity bitmap trailer, reproducing the simulator's rule
// that only valid elements travel.
func (pc *proc) shiftExchange(g *core.Group) error {
	ents := pc.concretizeEntries(g, true)
	gridDim, sign, width := g.Map.GridDim, g.Map.Sign, g.Map.Width
	grid := pc.eng.pl.A.Unit.Grid
	shape := grid.Shape[gridDim]
	myCoord := pc.coords[gridDim]
	stride := 1
	for i := gridDim + 1; i < grid.Rank(); i++ {
		stride *= grid.Shape[i]
	}

	// Send leg: pack the valid strip elements and the validity bitmap
	// for the receiving neighbour. Wire format:
	// [values...][bitmap words][element count].
	if c := myCoord - sign; c >= 0 && c < shape {
		dst := pc.p - sign*stride
		dstCoords := pc.coordbuf[:len(pc.coords)]
		copy(dstCoords, pc.coords)
		dstCoords[gridDim] = c
		bound := pc.eng.pl.Bound[g]
		payload := pc.getBuf(dst, bound+bound/64+2)
		bits := pc.bitbuf[:0]
		n := 0
		for _, es := range ents {
			es := es
			pc.forEachStripElem(es, gridDim, sign, width, myCoord, dstCoords, func(off int) {
				if n%64 == 0 {
					bits = append(bits, 0)
				}
				if es.am.Valid[pc.p][off] {
					bits[n/64] |= 1 << (n % 64)
					payload = append(payload, es.am.Data[pc.p][off])
					pc.bytes += 8
				}
				n++
			})
		}
		pc.bitbuf = bits
		for _, w := range bits {
			payload = append(payload, math.Float64frombits(w))
		}
		payload = append(payload, float64(n))
		if err := pc.send(dst, payload); err != nil {
			return err
		}
	}

	// Receive leg: unpack the neighbour's strip into our own rows,
	// consulting the bitmap trailer, then recycle the buffer.
	if c := myCoord + sign; c >= 0 && c < shape {
		src := pc.p + sign*stride
		buf, err := pc.recv(src)
		if err != nil {
			return err
		}
		if len(buf) == 0 {
			return fmt.Errorf("native: exchange %d→%d protocol mismatch: empty payload", src, pc.p)
		}
		n := int(buf[len(buf)-1])
		nw := (n + 63) / 64
		nv := len(buf) - 1 - nw
		if nv < 0 {
			return fmt.Errorf("native: exchange %d→%d protocol mismatch: %d words cannot hold %d elements", src, pc.p, len(buf), n)
		}
		words := buf[nv : len(buf)-1]
		k, vpos := 0, 0
		for _, es := range ents {
			es := es
			pc.forEachStripElem(es, gridDim, sign, width, c, pc.coords, func(off int) {
				if k < n && math.Float64bits(words[k/64])&(1<<uint(k%64)) != 0 {
					es.am.Data[pc.p][off] = buf[vpos]
					es.am.Valid[pc.p][off] = true
					vpos++
				}
				k++
			})
		}
		if k != n || vpos != nv {
			return fmt.Errorf("native: exchange %d→%d protocol mismatch: %d/%d elements packed, %d/%d expected", src, pc.p, n, nv, k, vpos)
		}
		pc.putBuf(src, buf)
	}
	return nil
}

// forEachStripElem visits the offsets of one entry's strip elements in
// section order: elements owned (along the moved dimension) by
// srcCoord, inside the sender's boundary strip of the given width, and
// within the receiver's extended local region. Sender and receiver
// call this with the same arguments and visit the same list.
func (pc *proc) forEachStripElem(es entrySec, gridDim, sign, width, srcCoord int, dstCoords []int, f func(off int)) {
	am, ad := es.am, es.ad
	es.sec.Elems(func(idx []int) bool {
		x := idx[ad]
		if am.Dist.OwnerDim(ad, x) != srcCoord {
			return true
		}
		lo, hi, ok := am.Dist.LocalRange(ad, srcCoord)
		if !ok {
			return true
		}
		inStrip := false
		if sign > 0 {
			inStrip = x >= lo && x < lo+width
		} else {
			inStrip = x <= hi && x > hi-width
		}
		if !inStrip {
			return true
		}
		if !runtime.InExtendedRegion(am.Arr, dstCoords, idx, ad, width) {
			return true
		}
		f(am.Offset(idx))
		return true
	})
}

// gatherUp moves this processor's contribution (already packed into
// pc.minebuf in section order) up the binomial tree. Intermediate
// nodes concatenate — own elements, then each child subtree's payload
// in child order, which is DFS pre-order by induction — and forward to
// the parent; no floating-point operation happens on the way up, so
// the root sees every operand bit-exact. At the root, gatherUp carves
// the child buffers into per-processor streams using cnt (the
// element count each processor contributed, from the caller's own
// section scan) and returns them; the caller must call releaseGather
// once the streams are consumed. Non-roots return nil.
//
// bound is a per-processor payload bound used to size the up-edge
// buffer once; exceeding it grows the buffer one time, after which the
// grown slice recycles.
func (pc *proc) gatherUp(cnt []int, bound int) ([][]float64, error) {
	t := pc.eng.pl.Tree
	if pc.p != 0 {
		out := pc.getBuf(t.Parent[pc.p], bound)
		out = append(out, pc.minebuf...)
		for _, c := range t.Children[pc.p] {
			b, err := pc.recv(c)
			if err != nil {
				return nil, err
			}
			out = append(out, b...)
			pc.putBuf(c, b)
		}
		pc.hops++
		return nil, pc.send(t.Parent[pc.p], out)
	}
	// Root: keep the child buffers and index per-processor streams into
	// them. streams[q] aliases a child buffer until releaseGather.
	streams := pc.streams
	streams[0] = pc.minebuf
	pc.childbufs = pc.childbufs[:0]
	for _, c := range t.Children[0] {
		b, err := pc.recv(c)
		if err != nil {
			return nil, err
		}
		pc.childbufs = append(pc.childbufs, b)
		off := 0
		for _, q := range t.Subtree(c) {
			if off+cnt[q] > len(b) {
				return nil, fmt.Errorf("native: gather from %d short: %d words for processor %d at offset %d", c, len(b), q, off)
			}
			streams[q] = b[off : off+cnt[q]]
			off += cnt[q]
		}
		if off != len(b) {
			return nil, fmt.Errorf("native: gather from %d protocol mismatch: %d words, %d expected", c, len(b), off)
		}
	}
	return streams, nil
}

// releaseGather recycles the child buffers a root-side gatherUp left
// in flight. No stream returned by gatherUp may be read afterwards.
func (pc *proc) releaseGather() {
	t := pc.eng.pl.Tree
	for i, c := range t.Children[0] {
		pc.putBuf(c, pc.childbufs[i])
	}
	pc.childbufs = pc.childbufs[:0]
}

// bcastDown broadcasts the root's assembled buffer down the tree: each
// hop forwards a private copy to every child (ownership of a sent
// buffer transfers to the receiver, so forwarding shares nothing),
// then returns the received buffer for local consumption. The root
// passes its own assembled slice; non-roots pass nil and receive.
// Non-roots must putBuf the returned slice to their parent when done.
func (pc *proc) bcastDown(full []float64) ([]float64, error) {
	t := pc.eng.pl.Tree
	if pc.p != 0 {
		var err error
		if full, err = pc.recv(t.Parent[pc.p]); err != nil {
			return nil, err
		}
	}
	for _, c := range t.Children[pc.p] {
		b := pc.getBuf(c, len(full))
		b = append(b, full...)
		pc.hops++
		pc.bytes += 8 * int64(len(full))
		if err := pc.send(c, b); err != nil {
			return nil, err
		}
	}
	return full, nil
}

// bcastGather performs one broadcast/gather group over the binomial
// tree: per entry, owners pack their section elements in section
// order, operands ascend the tree, the root reassembles the full
// section by popping each element from its owner's stream (the same
// owner-order scan SumSection uses), the section descends the tree,
// and every processor stores the elements it does not own.
func (pc *proc) bcastGather(g *core.Group) error {
	bound := pc.eng.pl.Bound[g]
	for _, es := range pc.concretizeEntries(g, false) {
		am := es.am
		coords := pc.cbuf[:am.Dist.Grid.Rank()]

		// Pack owned elements in section order; the root also counts
		// every processor's contribution for stream reconstruction.
		mine := pc.minebuf[:0]
		cnt := pc.cnt
		if pc.p == 0 {
			for i := range cnt {
				cnt[i] = 0
			}
			es.sec.Elems(func(idx []int) bool {
				o := am.OwnerInto(idx, coords)
				cnt[o]++
				if o == 0 {
					mine = append(mine, am.Data[0][am.Offset(idx)])
				}
				return true
			})
		} else {
			es.sec.Elems(func(idx []int) bool {
				if am.OwnerInto(idx, coords) == pc.p {
					mine = append(mine, am.Data[pc.p][am.Offset(idx)])
				}
				return true
			})
			pc.bytes += 8 * int64(len(mine))
		}
		pc.minebuf = mine

		streams, err := pc.gatherUp(cnt, bound)
		if err != nil {
			return err
		}

		var full []float64
		if pc.p == 0 {
			full = pc.fullbuf[:0]
			pos := pc.pos
			for i := range pos {
				pos[i] = 0
			}
			es.sec.Elems(func(idx []int) bool {
				o := am.OwnerInto(idx, coords)
				full = append(full, streams[o][pos[o]])
				pos[o]++
				return true
			})
			pc.fullbuf = full
			pc.releaseGather()
		}
		if full, err = pc.bcastDown(full); err != nil {
			return err
		}

		k := 0
		es.sec.Elems(func(idx []int) bool {
			o := am.OwnerInto(idx, coords)
			if o != pc.p {
				off := am.Offset(idx)
				am.Data[pc.p][off] = full[k]
				am.Valid[pc.p][off] = true
			}
			k++
			return true
		})
		if pc.p != 0 {
			pc.putBuf(pc.eng.pl.Tree.Parent[pc.p], full)
		}
	}
	return nil
}

// collectiveSum combines a distributed SUM: owners stream their
// section elements up the binomial tree as raw operands, the root
// replays the simulator's global section-order scan — popping each
// element from its owner's stream, so the floating-point accumulation
// order is bit-identical to SumSection — and the total descends the
// tree.
func (pc *proc) collectiveSum(sc plan.SumCall) (float64, error) {
	if pc.ring != nil {
		// The combine runs at the SUM statement, before its global-sum
		// marker group's position assigns a superstep index: record
		// the legs as pending and let the marker patch them.
		pc.evStep, pc.evSite = prof.PendingStep, -1
		pc.evSend, pc.evRecv = prof.PhaseSum, prof.PhaseSum
	}
	am := sc.Am
	sec, err := pc.eng.pl.ConcreteRefSection(sc.Ref, am, pc.ienv)
	if err != nil {
		return 0, err
	}
	coords := pc.cbuf[:am.Dist.Grid.Rank()]

	mine := pc.minebuf[:0]
	cnt := pc.cnt
	if pc.p == 0 {
		for i := range cnt {
			cnt[i] = 0
		}
		sec.Elems(func(idx []int) bool {
			o := am.OwnerInto(idx, coords)
			cnt[o]++
			if o == 0 {
				mine = append(mine, am.Data[0][am.Offset(idx)])
			}
			return true
		})
	} else {
		sec.Elems(func(idx []int) bool {
			if am.OwnerInto(idx, coords) == pc.p {
				mine = append(mine, am.Data[pc.p][am.Offset(idx)])
			}
			return true
		})
		pc.bytes += 8 * int64(len(mine))
	}
	pc.minebuf = mine

	streams, err := pc.gatherUp(cnt, sc.Bound)
	if err != nil {
		return 0, err
	}

	if pc.p != 0 {
		return pc.bcastValue(0)
	}

	pos := pc.pos
	for i := range pos {
		pos[i] = 0
	}
	total := 0.0
	sec.Elems(func(idx []int) bool {
		o := am.OwnerInto(idx, coords)
		total += streams[o][pos[o]]
		pos[o]++
		return true
	})
	pc.releaseGather()
	return pc.bcastValue(total)
}
