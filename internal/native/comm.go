package native

// The channel protocol. Every transfer is a blocking operation on a
// capacity-1 channel guarded by the engine's done latch, so the
// backend never spins: at any GOMAXPROCS (including 1) the Go
// scheduler parks blocked processors and progress is guaranteed as
// long as both endpoints of each pair agree on the per-pair message
// sequence — which the replicated CFG walk guarantees, since every
// processor executes the same communication groups at the same program
// points in the same order.
//
// Per group kind:
//
//   - exchange (KindShift): each processor derives the element list of
//     the ghost strip from its own loop environment — sender and
//     receiver compute identical lists because the concretized entry
//     sections and the region filters are pure functions of shared
//     state — and one message per neighbour pair carries the packed
//     strip (combining realized literally). A validity flag rides with
//     every element so the receiver applies exactly the deliveries the
//     simulator's ShiftRange performs.
//
//   - broadcast / gather (KindBcast, KindGeneral): a star through
//     processor 0 — owners pack their section elements in section
//     order, the root reassembles the full section by popping each
//     element from its owner's queue, rebroadcasts, and every
//     processor stores the elements it does not own.
//
//   - global-sum (KindReduce): no data motion here — the combine
//     happened at the SUM statement itself (collectiveSum), which is
//     where the simulator's functional value is produced too; the
//     group only marks the superstep in the listing.

import (
	"fmt"

	"gcao/internal/ast"

	"gcao/internal/codegen"
	"gcao/internal/core"
	"gcao/internal/runtime"
	"gcao/internal/section"
)

// send transfers a payload to dst, counting the message at the sender.
// A nil channel for the pair is a protocol bug, not a user error.
func (pc *proc) send(dst int, buf []float64) error {
	ch := pc.eng.ch[dst][pc.p]
	if ch == nil {
		return fmt.Errorf("native: no channel %d→%d (protocol bug)", pc.p, dst)
	}
	select {
	case ch <- buf:
		pc.msgs++
		return nil
	case <-pc.eng.done:
		return pc.eng.err()
	}
}

func (pc *proc) recv(src int) ([]float64, error) {
	ch := pc.eng.ch[pc.p][src]
	if ch == nil {
		return nil, fmt.Errorf("native: no channel %d→%d (protocol bug)", src, pc.p)
	}
	select {
	case buf := <-ch:
		return buf, nil
	case <-pc.eng.done:
		return nil, pc.eng.err()
	}
}

// barrier is a full synchronization: gather empty tokens into
// processor 0, then release everyone. Used only around shared-row
// (replicated array) writes.
func (pc *proc) barrier() error {
	pc.barriers++
	if pc.p == 0 {
		for q := 1; q < pc.eng.procs; q++ {
			if _, err := pc.recv(q); err != nil {
				return err
			}
		}
		for q := 1; q < pc.eng.procs; q++ {
			if err := pc.send(q, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := pc.send(0, nil); err != nil {
		return err
	}
	_, err := pc.recv(0)
	return err
}

// execComm executes the communication groups placed at one position,
// in placement order — the exact COMM sequence the codegen listing
// prints there.
func (pc *proc) execComm(groups []*core.Group) error {
	for _, g := range groups {
		pc.colls++
		pc.ops[codegen.OpName(g)]++
		var err error
		switch g.Kind {
		case core.KindShift:
			err = pc.shiftExchange(g)
		case core.KindBcast, core.KindGeneral:
			err = pc.bcastGather(g)
		case core.KindReduce:
			// Combine already performed at the SUM statement.
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// entrySec is one concretized group entry.
type entrySec struct {
	am  *runtime.ArrayMem
	sec section.Section
	ad  int // array dim moved by the shift (unused for collectives)
}

// concretizeEntries resolves the group's entry sections under this
// processor's loop environment. The environment is replicated, so
// every processor derives the identical list.
func (pc *proc) concretizeEntries(g *core.Group, needDim bool) []entrySec {
	var out []entrySec
	for _, e := range g.Entries {
		sec, ok := pc.eng.pl.ConcreteEntrySection(e, g.Pos, pc.ienv)
		if !ok {
			continue
		}
		am := pc.eng.mem.View(e.Array)
		if am.Dist == nil {
			continue
		}
		ad := -1
		if needDim {
			if ad = am.ShiftArrayDim(g.Map.GridDim); ad < 0 {
				continue
			}
		}
		out = append(out, entrySec{am: am, sec: sec, ad: ad})
	}
	return out
}

// shiftExchange performs one ghost-strip exchange. Data moves from
// grid coordinate c to c-sign along g.Map.GridDim: this processor
// sends its strip to the neighbour at coordinate c-sign (if any) and
// receives the neighbour strip from coordinate c+sign (if any). The
// payload interleaves a validity flag per element, reproducing the
// simulator's rule that only elements the sender holds current travel.
func (pc *proc) shiftExchange(g *core.Group) error {
	ents := pc.concretizeEntries(g, true)
	gridDim, sign, width := g.Map.GridDim, g.Map.Sign, g.Map.Width
	grid := pc.eng.pl.A.Unit.Grid
	shape := grid.Shape[gridDim]
	myCoord := pc.coords[gridDim]
	stride := 1
	for i := gridDim + 1; i < grid.Rank(); i++ {
		stride *= grid.Shape[i]
	}

	// Send leg: pack the strip for the receiving neighbour.
	if c := myCoord - sign; c >= 0 && c < shape {
		dst := pc.p - sign*stride
		dstCoords := append([]int(nil), pc.coords...)
		dstCoords[gridDim] = c
		var payload []float64
		for _, es := range ents {
			es := es
			pc.forEachStripElem(es, gridDim, sign, width, myCoord, dstCoords, func(off int) {
				if es.am.Valid[pc.p][off] {
					payload = append(payload, es.am.Data[pc.p][off], 1)
					pc.bytes += 8
				} else {
					payload = append(payload, 0, 0)
				}
			})
		}
		if err := pc.send(dst, payload); err != nil {
			return err
		}
	}

	// Receive leg: unpack the neighbour's strip into our own rows.
	if c := myCoord + sign; c >= 0 && c < shape {
		src := pc.p + sign*stride
		buf, err := pc.recv(src)
		if err != nil {
			return err
		}
		k := 0
		for _, es := range ents {
			es := es
			pc.forEachStripElem(es, gridDim, sign, width, c, pc.coords, func(off int) {
				if k+1 < len(buf) && buf[k+1] != 0 {
					es.am.Data[pc.p][off] = buf[k]
					es.am.Valid[pc.p][off] = true
				}
				k += 2
			})
		}
		if k != len(buf) {
			return fmt.Errorf("native: exchange %d→%d protocol mismatch: %d elements packed, %d expected", src, pc.p, len(buf)/2, k/2)
		}
	}
	return nil
}

// forEachStripElem visits the offsets of one entry's strip elements in
// section order: elements owned (along the moved dimension) by
// srcCoord, inside the sender's boundary strip of the given width, and
// within the receiver's extended local region. Sender and receiver
// call this with the same arguments and visit the same list.
func (pc *proc) forEachStripElem(es entrySec, gridDim, sign, width, srcCoord int, dstCoords []int, f func(off int)) {
	am, ad := es.am, es.ad
	es.sec.Elems(func(idx []int) bool {
		x := idx[ad]
		if am.Dist.OwnerDim(ad, x) != srcCoord {
			return true
		}
		lo, hi, ok := am.Dist.LocalRange(ad, srcCoord)
		if !ok {
			return true
		}
		inStrip := false
		if sign > 0 {
			inStrip = x >= lo && x < lo+width
		} else {
			inStrip = x <= hi && x > hi-width
		}
		if !inStrip {
			return true
		}
		if !runtime.InExtendedRegion(am.Arr, dstCoords, idx, ad, width) {
			return true
		}
		f(am.Offset(idx))
		return true
	})
}

// bcastGather performs one broadcast/gather group as a star through
// processor 0: per entry, owners pack their elements in section order,
// the root reassembles the full section (popping each element from its
// owner's queue — the same owner-order scan SumSection uses), sends it
// back out, and every processor keeps the elements it does not own.
func (pc *proc) bcastGather(g *core.Group) error {
	for _, es := range pc.concretizeEntries(g, false) {
		am := es.am
		r := am.Dist.Grid.Rank()
		if cap(pc.cbuf) < r {
			pc.cbuf = make([]int, r)
		}
		coords := pc.cbuf[:r]

		var mine []float64
		es.sec.Elems(func(idx []int) bool {
			if am.OwnerInto(idx, coords) == pc.p {
				mine = append(mine, am.Data[pc.p][am.Offset(idx)])
			}
			return true
		})

		var full []float64
		if pc.p == 0 {
			bufs := make([][]float64, pc.eng.procs)
			bufs[0] = mine
			for q := 1; q < pc.eng.procs; q++ {
				b, err := pc.recv(q)
				if err != nil {
					return err
				}
				bufs[q] = b
			}
			cur := make([]int, pc.eng.procs)
			es.sec.Elems(func(idx []int) bool {
				o := am.OwnerInto(idx, coords)
				full = append(full, bufs[o][cur[o]])
				cur[o]++
				return true
			})
			for q := 1; q < pc.eng.procs; q++ {
				if err := pc.send(q, full); err != nil {
					return err
				}
				pc.bytes += 8 * int64(len(full))
			}
		} else {
			pc.bytes += 8 * int64(len(mine))
			if err := pc.send(0, mine); err != nil {
				return err
			}
			var err error
			if full, err = pc.recv(0); err != nil {
				return err
			}
		}

		k := 0
		es.sec.Elems(func(idx []int) bool {
			o := am.OwnerInto(idx, coords)
			if o != pc.p {
				off := am.Offset(idx)
				am.Data[pc.p][off] = full[k]
				am.Valid[pc.p][off] = true
			}
			k++
			return true
		})
	}
	return nil
}

// collectiveSum combines a distributed SUM: owners stream their
// section elements to processor 0, which replays the simulator's
// global section-order scan — popping each element from its owner's
// queue, so the floating-point accumulation order is bit-identical to
// SumSection — and broadcasts the total.
func (pc *proc) collectiveSum(ref *ast.Ref, am *runtime.ArrayMem) (float64, error) {
	sec, err := pc.eng.pl.ConcreteRefSection(ref, am, pc.ienv)
	if err != nil {
		return 0, err
	}
	r := am.Dist.Grid.Rank()
	if cap(pc.cbuf) < r {
		pc.cbuf = make([]int, r)
	}
	coords := pc.cbuf[:r]

	var mine []float64
	sec.Elems(func(idx []int) bool {
		if am.OwnerInto(idx, coords) == pc.p {
			mine = append(mine, am.Data[pc.p][am.Offset(idx)])
		}
		return true
	})

	if pc.p != 0 {
		pc.bytes += 8 * int64(len(mine))
		if err := pc.send(0, mine); err != nil {
			return 0, err
		}
		buf, err := pc.recv(0)
		if err != nil {
			return 0, err
		}
		return buf[0], nil
	}

	bufs := make([][]float64, pc.eng.procs)
	bufs[0] = mine
	for q := 1; q < pc.eng.procs; q++ {
		b, err := pc.recv(q)
		if err != nil {
			return 0, err
		}
		bufs[q] = b
	}
	cur := make([]int, pc.eng.procs)
	total := 0.0
	sec.Elems(func(idx []int) bool {
		o := am.OwnerInto(idx, coords)
		total += bufs[o][cur[o]]
		cur[o]++
		return true
	})
	for q := 1; q < pc.eng.procs; q++ {
		if err := pc.send(q, []float64{total}); err != nil {
			return 0, err
		}
		pc.bytes += 8
	}
	return total, nil
}
