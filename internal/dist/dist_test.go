package dist

import (
	"testing"
	"testing/quick"
)

func mustGrid(t *testing.T, shape ...int) Grid {
	t.Helper()
	g, err := NewGrid(shape...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridCoordsRoundTrip(t *testing.T) {
	g := mustGrid(t, 3, 4, 2)
	if g.NumProcs() != 24 {
		t.Fatalf("NumProcs = %d", g.NumProcs())
	}
	for pid := 0; pid < g.NumProcs(); pid++ {
		if back := g.PID(g.Coords(pid)); back != pid {
			t.Fatalf("PID(Coords(%d)) = %d", pid, back)
		}
	}
}

func TestSquareGrid(t *testing.T) {
	cases := map[int][2]int{
		1:  {1, 1},
		4:  {2, 2},
		8:  {2, 4},
		9:  {3, 3},
		25: {5, 5},
		12: {3, 4},
		7:  {1, 7}, // prime: degenerate but valid
	}
	for p, want := range cases {
		g, err := SquareGrid(p)
		if err != nil {
			t.Fatal(err)
		}
		if g.Shape[0] != want[0] || g.Shape[1] != want[1] {
			t.Errorf("SquareGrid(%d) = %v, want %v", p, g.Shape, want)
		}
	}
	if _, err := SquareGrid(0); err == nil {
		t.Error("SquareGrid(0) must fail")
	}
}

func TestBlockOwnership(t *testing.T) {
	g := mustGrid(t, 3)
	d, err := New(g, []int{1}, []int{10}, Block)
	if err != nil {
		t.Fatal(err)
	}
	// Block size ceil(10/3) = 4: blocks 1-4, 5-8, 9-10.
	wantOwners := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for i := 1; i <= 10; i++ {
		if got := d.OwnerDim(0, i); got != wantOwners[i-1] {
			t.Errorf("OwnerDim(%d) = %d, want %d", i, got, wantOwners[i-1])
		}
	}
	lo, hi, ok := d.LocalRange(0, 2)
	if !ok || lo != 9 || hi != 10 {
		t.Errorf("LocalRange(2) = %d..%d, %v", lo, hi, ok)
	}
}

// Property: for BLOCK distributions, every index is owned by exactly
// the coordinate whose LocalRange contains it, and local counts sum to
// the extent.
func TestBlockPartitionProperty(t *testing.T) {
	f := func(np, nu uint8) bool {
		p := int(np%6) + 1
		n := int(nu%40) + p
		g, err := NewGrid(p)
		if err != nil {
			return false
		}
		d, err := New(g, []int{0}, []int{n - 1}, Block)
		if err != nil {
			return false
		}
		total := 0
		for c := 0; c < p; c++ {
			total += d.LocalCount(0, c)
			lo, hi, ok := d.LocalRange(0, c)
			if !ok {
				continue
			}
			for x := lo; x <= hi; x++ {
				if d.OwnerDim(0, x) != c {
					return false
				}
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCyclicOwnership(t *testing.T) {
	g := mustGrid(t, 4)
	d, err := New(g, []int{1}, []int{10}, Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if got, want := d.OwnerDim(0, i), (i-1)%4; got != want {
			t.Errorf("cyclic OwnerDim(%d) = %d, want %d", i, got, want)
		}
	}
	// Counts: 10 elements round-robin over 4 procs: 3,3,2,2.
	want := []int{3, 3, 2, 2}
	for c := 0; c < 4; c++ {
		if got := d.LocalCount(0, c); got != want[c] {
			t.Errorf("cyclic LocalCount(%d) = %d, want %d", c, got, want[c])
		}
	}
}

func TestMultiDimOwner(t *testing.T) {
	g := mustGrid(t, 2, 3)
	d, err := New(g, []int{1, 1, 1}, []int{4, 8, 9}, Star, Block, Block)
	if err != nil {
		t.Fatal(err)
	}
	if dims := d.DistributedDims(); len(dims) != 2 || dims[0] != 1 || dims[1] != 2 {
		t.Fatalf("DistributedDims = %v", dims)
	}
	// dim1 extent 8 over 2 -> blocks of 4; dim2 extent 9 over 3 -> 3.
	own := d.Owner([]int{3, 5, 7})
	coords := g.Coords(own)
	if coords[0] != 1 || coords[1] != 2 {
		t.Errorf("Owner coords = %v, want [1 2]", coords)
	}
}

func TestSameLayout(t *testing.T) {
	g := mustGrid(t, 2, 2)
	a, _ := New(g, []int{1, 1}, []int{8, 8}, Block, Block)
	b, _ := New(g, []int{1, 1}, []int{8, 8}, Block, Block)
	c, _ := New(g, []int{1, 1}, []int{8, 9}, Block, Block)
	if !a.SameLayout(b) {
		t.Error("identical layouts should compare equal")
	}
	if a.SameLayout(c) {
		t.Error("different extents should not compare equal")
	}
	// A 3-d array with a leading star dim and the same distributed
	// bounds is not SameLayout (rank differs), by design.
	d3, _ := New(g, []int{1, 1, 1}, []int{5, 8, 8}, Star, Block, Block)
	if a.SameLayout(d3) {
		t.Error("rank mismatch should not compare equal")
	}
}

func TestNewValidation(t *testing.T) {
	g := mustGrid(t, 2, 2)
	if _, err := New(g, []int{1}, []int{4, 5}, Block); err == nil {
		t.Error("mismatched bounds rank must fail")
	}
	if _, err := New(g, []int{1, 1, 1}, []int{4, 4, 4}, Block, Block, Block); err == nil {
		t.Error("three distributed dims on a 2-d grid must fail")
	}
	if _, err := NewGrid(); err == nil {
		t.Error("empty grid must fail")
	}
	if _, err := NewGrid(0); err == nil {
		t.Error("zero-size grid must fail")
	}
}
