// Package dist models HPF data distributions: processor grids, and
// per-dimension BLOCK / CYCLIC / * (collapsed) distributions of arrays
// onto those grids. It answers the questions the communication
// analysis and the SPMD runtime need: which processor owns an element,
// which contiguous local range a processor holds, and how wide the
// overlap (ghost) region must be for a given nearest-neighbour shift.
//
// The paper's benchmarks use (BLOCK,BLOCK) for 2-d arrays and
// (*,BLOCK,BLOCK) for 3-d arrays on a square processor grid, so BLOCK
// is the workhorse here; CYCLIC is implemented for completeness of the
// substrate and exercised by tests.
package dist

import (
	"fmt"
	"strings"
)

// Kind is the per-dimension distribution kind.
type Kind int

const (
	// Star means the dimension is collapsed: every processor holds the
	// whole extent (HPF "*").
	Star Kind = iota
	// Block divides the dimension into one contiguous chunk per
	// processor-grid dimension element.
	Block
	// Cyclic deals elements round-robin.
	Cyclic
)

func (k Kind) String() string {
	switch k {
	case Star:
		return "*"
	case Block:
		return "BLOCK"
	case Cyclic:
		return "CYCLIC"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Grid is a Cartesian processor arrangement, e.g. 5x5 for P=25.
type Grid struct {
	// Shape holds the extent of each grid dimension.
	Shape []int
}

// NewGrid validates and builds a processor grid.
func NewGrid(shape ...int) (Grid, error) {
	if len(shape) == 0 {
		return Grid{}, fmt.Errorf("dist: empty grid shape")
	}
	for _, s := range shape {
		if s < 1 {
			return Grid{}, fmt.Errorf("dist: grid dimension %d < 1", s)
		}
	}
	return Grid{Shape: append([]int(nil), shape...)}, nil
}

// SquareGrid builds the most-square 2-d grid with p processors,
// matching how pHPF lays out (BLOCK,BLOCK) arrays. p must have an
// integer factorization; we pick factors as close as possible.
func SquareGrid(p int) (Grid, error) {
	if p < 1 {
		return Grid{}, fmt.Errorf("dist: %d processors", p)
	}
	best := 1
	for f := 1; f*f <= p; f++ {
		if p%f == 0 {
			best = f
		}
	}
	return NewGrid(best, p/best)
}

// NumProcs returns the total processor count of the grid.
func (g Grid) NumProcs() int {
	n := 1
	for _, s := range g.Shape {
		n *= s
	}
	return n
}

// Rank returns the grid dimensionality.
func (g Grid) Rank() int { return len(g.Shape) }

// Coords converts a linear processor id to grid coordinates
// (row-major: the last dimension varies fastest).
func (g Grid) Coords(pid int) []int {
	c := make([]int, len(g.Shape))
	for i := len(g.Shape) - 1; i >= 0; i-- {
		c[i] = pid % g.Shape[i]
		pid /= g.Shape[i]
	}
	return c
}

// PID converts grid coordinates back to a linear processor id.
func (g Grid) PID(coords []int) int {
	if len(coords) != len(g.Shape) {
		panic("dist: PID: coordinate rank mismatch")
	}
	id := 0
	for i, c := range coords {
		if c < 0 || c >= g.Shape[i] {
			panic(fmt.Sprintf("dist: PID: coordinate %d out of range [0,%d)", c, g.Shape[i]))
		}
		id = id*g.Shape[i] + c
	}
	return id
}

func (g Grid) String() string {
	parts := make([]string, len(g.Shape))
	for i, s := range g.Shape {
		parts[i] = fmt.Sprint(s)
	}
	return "P(" + strings.Join(parts, ",") + ")"
}

// DimDist is the distribution of one array dimension.
type DimDist struct {
	Kind Kind
	// GridDim is the processor-grid dimension this array dimension is
	// mapped to; meaningful only for Block and Cyclic.
	GridDim int
}

// Dist is a complete distribution of an array onto a grid.
type Dist struct {
	Grid Grid
	// Dims has one entry per array dimension.
	Dims []DimDist
	// Lo and Hi are the array's inclusive declared bounds per dimension.
	Lo, Hi []int
}

// New builds and validates a distribution. kinds uses one entry per
// array dimension; distributed dimensions are assigned to grid
// dimensions in order (first distributed dim -> grid dim 0, etc.),
// which matches the HPF default and the paper's benchmark layouts.
func New(g Grid, lo, hi []int, kinds ...Kind) (Dist, error) {
	if len(lo) != len(kinds) || len(hi) != len(kinds) {
		return Dist{}, fmt.Errorf("dist: bounds rank %d/%d vs %d kinds", len(lo), len(hi), len(kinds))
	}
	d := Dist{Grid: g, Lo: append([]int(nil), lo...), Hi: append([]int(nil), hi...)}
	gd := 0
	for _, k := range kinds {
		dd := DimDist{Kind: k}
		if k != Star {
			if gd >= g.Rank() {
				return Dist{}, fmt.Errorf("dist: more distributed dims than grid dims (%d)", g.Rank())
			}
			dd.GridDim = gd
			gd++
		}
		d.Dims = append(d.Dims, dd)
	}
	if gd != g.Rank() && gd != 0 {
		// Allow using a prefix of the grid only if the remaining grid
		// dims are size 1; otherwise the mapping is ambiguous.
		for i := gd; i < g.Rank(); i++ {
			if g.Shape[i] != 1 {
				return Dist{}, fmt.Errorf("dist: %d distributed dims on grid %v", gd, g)
			}
		}
	}
	return d, nil
}

// Rank returns the array dimensionality.
func (d Dist) Rank() int { return len(d.Dims) }

// Extent returns the declared number of elements in array dim i.
func (d Dist) Extent(i int) int { return d.Hi[i] - d.Lo[i] + 1 }

// blockSize returns the ceiling block size for dimension i.
func (d Dist) blockSize(i int) int {
	p := d.Grid.Shape[d.Dims[i].GridDim]
	n := d.Extent(i)
	return (n + p - 1) / p
}

// OwnerDim returns the grid coordinate (in the dimension's grid dim)
// owning array index x of dimension i. For Star dims it returns 0.
func (d Dist) OwnerDim(i, x int) int {
	dd := d.Dims[i]
	switch dd.Kind {
	case Star:
		return 0
	case Block:
		b := d.blockSize(i)
		c := (x - d.Lo[i]) / b
		p := d.Grid.Shape[dd.GridDim]
		if c >= p {
			c = p - 1
		}
		return c
	case Cyclic:
		p := d.Grid.Shape[dd.GridDim]
		return ((x-d.Lo[i])%p + p) % p
	}
	panic("dist: unknown kind")
}

// Owner returns the linear processor id owning the element at idx.
func (d Dist) Owner(idx []int) int {
	if len(idx) != d.Rank() {
		panic("dist: Owner: rank mismatch")
	}
	coords := make([]int, d.Grid.Rank())
	for i, dd := range d.Dims {
		if dd.Kind == Star {
			continue
		}
		coords[dd.GridDim] = d.OwnerDim(i, idx[i])
	}
	return d.Grid.PID(coords)
}

// LocalRange returns the inclusive index range of dimension i owned by
// the processor whose coordinate in that dimension's grid dim is c.
// For Star dims the whole extent is returned. ok is false when the
// processor owns nothing in that dimension (possible with uneven
// blocks).
func (d Dist) LocalRange(i, c int) (lo, hi int, ok bool) {
	dd := d.Dims[i]
	switch dd.Kind {
	case Star:
		return d.Lo[i], d.Hi[i], true
	case Block:
		b := d.blockSize(i)
		lo = d.Lo[i] + c*b
		hi = lo + b - 1
		if hi > d.Hi[i] {
			hi = d.Hi[i]
		}
		return lo, hi, lo <= hi
	case Cyclic:
		// Cyclic local sets are strided, not contiguous; report the
		// covering range. Callers needing exact membership use OwnerDim.
		if c >= d.Extent(i) {
			return 0, -1, false
		}
		return d.Lo[i] + c, d.Hi[i], true
	}
	panic("dist: unknown kind")
}

// LocalCount returns the number of elements of dimension i owned by
// grid coordinate c.
func (d Dist) LocalCount(i, c int) int {
	dd := d.Dims[i]
	switch dd.Kind {
	case Star:
		return d.Extent(i)
	case Block:
		lo, hi, ok := d.LocalRange(i, c)
		if !ok {
			return 0
		}
		return hi - lo + 1
	case Cyclic:
		p := d.Grid.Shape[dd.GridDim]
		n := d.Extent(i)
		cnt := n / p
		if c < n%p {
			cnt++
		}
		return cnt
	}
	panic("dist: unknown kind")
}

// DistributedDims returns the array dims that are actually partitioned.
func (d Dist) DistributedDims() []int {
	var out []int
	for i, dd := range d.Dims {
		if dd.Kind != Star {
			out = append(out, i)
		}
	}
	return out
}

// SameLayout reports whether two distributions partition index space
// identically: same grid, same kinds, same grid-dim assignment and the
// same bounds on distributed dimensions. Arrays with the same layout
// can have their nearest-neighbour messages combined (identical
// sender–receiver mapping), which is the Fig. 1 / Fig. 3 combining
// condition.
func (d Dist) SameLayout(o Dist) bool {
	if d.Rank() != o.Rank() || d.Grid.Rank() != o.Grid.Rank() {
		return false
	}
	for i, s := range d.Grid.Shape {
		if o.Grid.Shape[i] != s {
			return false
		}
	}
	for i := range d.Dims {
		if d.Dims[i] != o.Dims[i] {
			return false
		}
		if d.Dims[i].Kind != Star {
			if d.Lo[i] != o.Lo[i] || d.Hi[i] != o.Hi[i] {
				return false
			}
		}
	}
	return true
}

func (d Dist) String() string {
	parts := make([]string, len(d.Dims))
	for i, dd := range d.Dims {
		parts[i] = dd.Kind.String()
	}
	return "(" + strings.Join(parts, ",") + ") onto " + d.Grid.String()
}
