// Package asd implements Available Section Descriptors — the (D, M)
// pairs of Gupta, Schonberg and Srinivasan that the paper's placement
// algorithm manipulates (§4.6): D is the array section being
// communicated, and M is the mapping from data to the processors that
// receive it. Redundancy elimination needs the subsumption test
// ((D1,M1) is redundant given (D2,M2) when D1 ⊆ D2 and M1(D1) ⊆
// M2(D1)); message combining needs the compatibility test (mappings
// identical or one a subset of the other, §4.7).
//
// Sections here are symbolic: their bounds are affine forms over the
// loop variables enclosing the communication point, so a descriptor
// like g(i−1, 1:n) compares exactly against g(i−1, 1:n:2) with the
// outer i still unbound.
package asd

import (
	"fmt"
	"strings"

	"gcao/internal/lin"
	"gcao/internal/section"
)

// SymDim is one dimension of a symbolic section: Lo:Hi:Step with
// affine bounds and a constant step.
type SymDim struct {
	Lo, Hi lin.Form
	Step   int
}

// Point builds a degenerate symbolic dimension holding one element.
func Point(f lin.Form) SymDim { return SymDim{Lo: f, Hi: f, Step: 1} }

// ConstDim builds a constant-bound dimension.
func ConstDim(lo, hi, step int) SymDim {
	return SymDim{Lo: lin.ConstForm(lo), Hi: lin.ConstForm(hi), Step: step}
}

// IsPoint reports whether the dimension provably holds one element.
func (d SymDim) IsPoint() bool { return d.Lo.Equal(d.Hi) }

// Count returns the element count when the bounds are constant.
func (d SymDim) Count() (int, bool) {
	lo, ok1 := d.Lo.IsConst()
	hi, ok2 := d.Hi.IsConst()
	if !ok1 || !ok2 {
		if d.IsPoint() {
			return 1, true
		}
		return 0, false
	}
	if lo > hi {
		return 0, true
	}
	step := d.Step
	if step < 1 {
		step = 1
	}
	return (hi-lo)/step + 1, true
}

func (d SymDim) String() string {
	if d.IsPoint() {
		return d.Lo.String()
	}
	s := d.Lo.String() + ":" + d.Hi.String()
	if d.Step != 1 {
		s += fmt.Sprintf(":%d", d.Step)
	}
	return s
}

// SymSection is a symbolic regular section.
type SymSection struct {
	Dims []SymDim
}

// Rank returns the number of dimensions.
func (s SymSection) Rank() int { return len(s.Dims) }

func (s SymSection) String() string {
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Equal reports provable element-set equality.
func (s SymSection) Equal(t SymSection) bool {
	if len(s.Dims) != len(t.Dims) {
		return false
	}
	for i := range s.Dims {
		a, b := s.Dims[i], t.Dims[i]
		if !a.Lo.Equal(b.Lo) || !a.Hi.Equal(b.Hi) {
			return false
		}
		if a.IsPoint() && b.IsPoint() {
			continue
		}
		if a.Step != b.Step {
			return false
		}
	}
	return true
}

// Contains conservatively reports whether s ⊇ t is provable: per
// dimension the bound differences must be constants of the right sign
// and the strides must nest.
func (s SymSection) Contains(t SymSection) bool {
	if len(s.Dims) != len(t.Dims) {
		return false
	}
	for i := range s.Dims {
		a, b := s.Dims[i], t.Dims[i]
		dlo, ok := b.Lo.ConstDiff(a.Lo)
		if !ok || dlo < 0 {
			return false
		}
		dhi, ok := a.Hi.ConstDiff(b.Hi)
		if !ok || dhi < 0 {
			return false
		}
		astep := a.Step
		if astep < 1 {
			astep = 1
		}
		if dlo%astep != 0 {
			return false
		}
		if b.IsPoint() {
			continue
		}
		bstep := b.Step
		if bstep < 1 {
			bstep = 1
		}
		if bstep%astep != 0 {
			return false
		}
	}
	return true
}

// Hull returns the smallest single symbolic descriptor provably
// covering s and t, and the multiplicative blow-up of its element
// count versus |s| + |t| when all counts are constant. ok=false when
// the bounds are not comparable (non-constant differences), in which
// case the sections cannot be combined into one descriptor.
func (s SymSection) Hull(t SymSection) (hull SymSection, blowup float64, ok bool) {
	if len(s.Dims) != len(t.Dims) {
		return SymSection{}, 0, false
	}
	hull.Dims = make([]SymDim, len(s.Dims))
	for i := range s.Dims {
		a, b := s.Dims[i], t.Dims[i]
		lo := a.Lo
		if d, okd := b.Lo.ConstDiff(a.Lo); okd {
			if d < 0 {
				lo = b.Lo
			}
		} else {
			return SymSection{}, 0, false
		}
		hi := a.Hi
		if d, okd := b.Hi.ConstDiff(a.Hi); okd {
			if d > 0 {
				hi = b.Hi
			}
		} else {
			return SymSection{}, 0, false
		}
		step := gcd(maxInt(a.Step, 1), maxInt(b.Step, 1))
		// The strides must share phase; otherwise fall back to unit
		// stride (a denser hull).
		if d, okd := a.Lo.ConstDiff(b.Lo); !okd || d%step != 0 {
			step = 1
		}
		hull.Dims[i] = SymDim{Lo: lo, Hi: hi, Step: step}
	}
	ns, oks := s.NumElems()
	nt, okt := t.NumElems()
	nh, okh := hull.NumElems()
	if oks && okt && okh && ns+nt > 0 {
		return hull, float64(nh) / float64(ns+nt), true
	}
	return hull, 1, true // unknown sizes: rule-of-thumb handled by caller
}

// Subtract returns the part of s not covered by t, when that
// difference is representable as a single regular section: t must
// cover s in every dimension except at most one, and in that dimension
// the leftover must be a single interval at one end (a strip trim).
// ok=false means the difference is not a single descriptor; callers
// then keep the full section. Strides must be unit in the trimmed
// dimension.
func (s SymSection) Subtract(t SymSection) (diff SymSection, ok bool) {
	if len(s.Dims) != len(t.Dims) {
		return SymSection{}, false
	}
	trimDim := -1
	for i := range s.Dims {
		a, b := s.Dims[i], t.Dims[i]
		dlo, ok1 := a.Lo.ConstDiff(b.Lo)
		dhi, ok2 := b.Hi.ConstDiff(a.Hi)
		if !ok1 || !ok2 {
			return SymSection{}, false
		}
		covered := dlo >= 0 && dhi >= 0 && nestedStride(b, a)
		if covered {
			continue
		}
		if trimDim >= 0 {
			return SymSection{}, false // leftover in two dimensions
		}
		trimDim = i
	}
	if trimDim < 0 {
		// Fully covered: the empty difference.
		out := SymSection{Dims: append([]SymDim(nil), s.Dims...)}
		out.Dims[0] = ConstDim(1, 0, 1)
		return out, true
	}
	a, b := s.Dims[trimDim], t.Dims[trimDim]
	if a.Step != 1 || b.Step != 1 {
		return SymSection{}, false
	}
	dlo, _ := a.Lo.ConstDiff(b.Lo) // a.Lo - b.Lo
	dhi, _ := b.Hi.ConstDiff(a.Hi) // b.Hi - a.Hi
	out := SymSection{Dims: append([]SymDim(nil), s.Dims...)}
	switch {
	case dlo < 0 && dhi >= 0:
		// Leftover strip below t: [a.Lo, min(a.Hi, b.Lo-1)].
		hi := b.Lo.AddConst(-1)
		if d, ok := a.Hi.ConstDiff(hi); !ok {
			return SymSection{}, false
		} else if d < 0 {
			hi = a.Hi // t entirely above s: difference is all of s
		}
		out.Dims[trimDim] = SymDim{Lo: a.Lo, Hi: hi, Step: 1}
		return out, true
	case dhi < 0 && dlo >= 0:
		// Leftover strip above t: [max(a.Lo, b.Hi+1), a.Hi].
		lo := b.Hi.AddConst(1)
		if d, ok := lo.ConstDiff(a.Lo); !ok {
			return SymSection{}, false
		} else if d < 0 {
			lo = a.Lo // t entirely below s
		}
		out.Dims[trimDim] = SymDim{Lo: lo, Hi: a.Hi, Step: 1}
		return out, true
	default:
		return SymSection{}, false // strips at both ends
	}
}

// nestedStride reports that outer's lattice covers inner's points for
// dims already known to be bound-covered.
func nestedStride(outer, inner SymDim) bool {
	if inner.IsPoint() {
		return true
	}
	os := outer.Step
	if os < 1 {
		os = 1
	}
	is := inner.Step
	if is < 1 {
		is = 1
	}
	if is%os != 0 {
		return false
	}
	d, ok := inner.Lo.ConstDiff(outer.Lo)
	return ok && d%os == 0
}

// NumElems returns the element count when every dimension is constant
// (point dimensions count 1 even when symbolic).
func (s SymSection) NumElems() (int, bool) {
	n := 1
	for _, d := range s.Dims {
		c, ok := d.Count()
		if !ok {
			return 0, false
		}
		n *= c
	}
	return n, true
}

// Concrete evaluates the section under an environment binding the
// remaining symbolic variables.
func (s SymSection) Concrete(env map[string]int) (section.Section, bool) {
	out := section.Section{Dims: make([]section.Dim, len(s.Dims))}
	for i, d := range s.Dims {
		lo, ok1 := d.Lo.Eval(env)
		hi, ok2 := d.Hi.Eval(env)
		if !ok1 || !ok2 {
			return section.Section{}, false
		}
		step := d.Step
		if step < 1 {
			step = 1
		}
		out.Dims[i] = section.Dim{Lo: lo, Hi: hi, Step: step}
	}
	return out.Normalize(), true
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MapKind classifies communication mappings.
type MapKind int

const (
	// MapShift is nearest-neighbour communication along one processor
	// grid dimension: every processor receives a ghost strip of Width
	// elements from the neighbour in direction Sign.
	MapShift MapKind = iota
	// MapReduce is a global reduction (the result is combined across
	// processors and made available everywhere).
	MapReduce
	// MapBcast replicates data owned by one processor (or one grid
	// slice) to all.
	MapBcast
	// MapGeneral is any other many-to-many pattern (transposes,
	// layout-changing copies); equality is by canonical signature.
	MapGeneral
)

func (k MapKind) String() string {
	switch k {
	case MapShift:
		return "shift"
	case MapReduce:
		return "reduce"
	case MapBcast:
		return "bcast"
	case MapGeneral:
		return "general"
	}
	return fmt.Sprintf("MapKind(%d)", int(k))
}

// Mapping is the M component of an ASD: the sender→receiver relation
// in (virtual) processor space. GridShape identifies the processor
// arrangement; two mappings on different arrangements never compare.
type Mapping struct {
	Kind      MapKind
	GridShape []int
	// Shift fields.
	GridDim int // which grid dimension the shift moves along
	Sign    int // +1: data moves toward higher coords; -1: lower
	Width   int // ghost strip width in elements
	// Signature canonicalizes MapBcast and MapGeneral patterns.
	Signature string
}

func (m Mapping) sameGrid(o Mapping) bool {
	if len(m.GridShape) != len(o.GridShape) {
		return false
	}
	for i := range m.GridShape {
		if m.GridShape[i] != o.GridShape[i] {
			return false
		}
	}
	return true
}

// Equal reports identical sender–receiver relations.
func (m Mapping) Equal(o Mapping) bool {
	if m.Kind != o.Kind || !m.sameGrid(o) {
		return false
	}
	switch m.Kind {
	case MapShift:
		return m.GridDim == o.GridDim && m.Sign == o.Sign && m.Width == o.Width
	case MapReduce:
		return true
	default:
		return m.Signature == o.Signature
	}
}

// SubsetOf reports M(D) ⊆ O(D): every transfer m performs is also
// performed by o. For shifts this holds when both move along the same
// grid dimension in the same direction and o's strip is at least as
// wide (the paper's "one pattern is a subset of another").
func (m Mapping) SubsetOf(o Mapping) bool {
	if m.Kind != o.Kind || !m.sameGrid(o) {
		return false
	}
	switch m.Kind {
	case MapShift:
		return m.GridDim == o.GridDim && m.Sign == o.Sign && m.Width <= o.Width
	case MapReduce:
		return true
	default:
		return m.Signature == o.Signature
	}
}

// CompatibleWith reports whether two communications may be combined
// into one message: identical relations or one a subset of the other
// (§4.7: "communications for (D1,M1) and (D2,M2) are combined only if
// M1 = M2 or M1 ⊂ M2").
func (m Mapping) CompatibleWith(o Mapping) bool {
	return m.SubsetOf(o) || o.SubsetOf(m)
}

// Union returns the coarser of two compatible mappings.
func (m Mapping) Union(o Mapping) Mapping {
	if m.SubsetOf(o) {
		return o
	}
	return m
}

func (m Mapping) String() string {
	switch m.Kind {
	case MapShift:
		dir := "+"
		if m.Sign < 0 {
			dir = "-"
		}
		return fmt.Sprintf("shift[dim%d%s%d]", m.GridDim, dir, m.Width)
	case MapReduce:
		return "reduce"
	default:
		return fmt.Sprintf("%s[%s]", m.Kind, m.Signature)
	}
}

// ASD is an Available Section Descriptor: the data D (a symbolic
// section of a named array) and the mapping M.
type ASD struct {
	Array string
	Data  SymSection
	Map   Mapping
}

// Subsumes reports whether this descriptor makes other redundant:
// same array, other's data contained, and other's mapping a subset —
// the (D1 ⊆ D2) ∧ (M1(D1) ⊆ M2(D1)) test of §4.6.
func (a ASD) Subsumes(other ASD) bool {
	return a.Array == other.Array &&
		a.Data.Contains(other.Data) &&
		other.Map.SubsetOf(a.Map)
}

func (a ASD) String() string {
	return fmt.Sprintf("%s%s via %s", a.Array, a.Data, a.Map)
}
