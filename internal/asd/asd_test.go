package asd

import (
	"math/rand"
	"testing"

	"gcao/internal/lin"
)

func i(v int) lin.Form      { return lin.ConstForm(v) }
func sym(n string) lin.Form { return lin.Var(n) }

func TestSymDimCount(t *testing.T) {
	cases := []struct {
		d    SymDim
		want int
		ok   bool
	}{
		{ConstDim(1, 10, 1), 10, true},
		{ConstDim(1, 10, 3), 4, true},
		{ConstDim(5, 4, 1), 0, true},
		{Point(sym("i")), 1, true},
		{SymDim{Lo: sym("i"), Hi: sym("i").AddConst(3), Step: 1}, 0, false},
	}
	for _, tc := range cases {
		got, ok := tc.d.Count()
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("Count(%v) = %d, %v; want %d, %v", tc.d, got, ok, tc.want, tc.ok)
		}
	}
}

func TestSymSectionEqualAndContains(t *testing.T) {
	a := SymSection{Dims: []SymDim{Point(sym("i").AddConst(-1)), ConstDim(1, 10, 1)}}
	b := SymSection{Dims: []SymDim{Point(sym("i").AddConst(-1)), ConstDim(1, 10, 2)}}
	if a.Equal(b) {
		t.Error("different strides are not equal")
	}
	if !a.Contains(b) {
		t.Error("unit-stride dim contains stride-2 dim with same bounds")
	}
	if b.Contains(a) {
		t.Error("stride-2 dim must not contain unit-stride dim")
	}
	// Symbolic point dims compare by form.
	c := SymSection{Dims: []SymDim{Point(sym("i")), ConstDim(1, 10, 1)}}
	if a.Contains(c) || c.Contains(a) {
		t.Error("i-1 and i rows are not comparable by constant offset ≥ 0 in both directions")
	}
	// But i contains i (reflexive).
	if !c.Contains(c) || !c.Equal(c) {
		t.Error("containment/equality must be reflexive")
	}
}

func TestContainsOffset(t *testing.T) {
	big := SymSection{Dims: []SymDim{ConstDim(0, 10, 1)}}
	small := SymSection{Dims: []SymDim{ConstDim(2, 8, 1)}}
	if !big.Contains(small) || small.Contains(big) {
		t.Error("constant-offset containment failed")
	}
	// Symbolic bounds with constant difference.
	a := SymSection{Dims: []SymDim{{Lo: sym("i").AddConst(-1), Hi: sym("i").AddConst(2), Step: 1}}}
	b := SymSection{Dims: []SymDim{{Lo: sym("i"), Hi: sym("i").AddConst(1), Step: 1}}}
	if !a.Contains(b) || b.Contains(a) {
		t.Error("symbolic containment with constant slack failed")
	}
}

func TestHull(t *testing.T) {
	a := SymSection{Dims: []SymDim{ConstDim(1, 4, 1)}}
	b := SymSection{Dims: []SymDim{ConstDim(3, 8, 1)}}
	h, blowup, ok := a.Hull(b)
	if !ok {
		t.Fatal("hull must exist for constant bounds")
	}
	if lo, _ := h.Dims[0].Lo.IsConst(); lo != 1 {
		t.Errorf("hull lo = %v", h.Dims[0].Lo)
	}
	if hi, _ := h.Dims[0].Hi.IsConst(); hi != 8 {
		t.Errorf("hull hi = %v", h.Dims[0].Hi)
	}
	if blowup != 8.0/10.0 {
		t.Errorf("blowup = %v", blowup)
	}
	// Incomparable symbolic bounds: no hull.
	c := SymSection{Dims: []SymDim{{Lo: sym("i"), Hi: sym("i"), Step: 1}}}
	d := SymSection{Dims: []SymDim{{Lo: sym("j"), Hi: sym("j"), Step: 1}}}
	if _, _, ok := c.Hull(d); ok {
		t.Error("hull of unrelated symbolic bounds must fail")
	}
}

func TestHullCoversBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		a := SymSection{Dims: []SymDim{ConstDim(rng.Intn(6), rng.Intn(12), 1+rng.Intn(3))}}
		b := SymSection{Dims: []SymDim{ConstDim(rng.Intn(6), rng.Intn(12), 1+rng.Intn(3))}}
		h, _, ok := a.Hull(b)
		if !ok {
			t.Fatal("const hull must exist")
		}
		ca, _ := a.Concrete(nil)
		cb, _ := b.Concrete(nil)
		ch, _ := h.Concrete(nil)
		for _, s := range []struct {
			name string
			sec  interface{ Elems(func([]int) bool) }
		}{
			{"a", ca}, {"b", cb},
		} {
			s.sec.Elems(func(idx []int) bool {
				x := idx[0]
				lo, _ := h.Dims[0].Lo.IsConst()
				hi, _ := h.Dims[0].Hi.IsConst()
				if x < lo || x > hi {
					t.Fatalf("hull %v of %v,%v misses %d from %s", ch, ca, cb, x, s.name)
				}
				return true
			})
		}
	}
}

func TestConcrete(t *testing.T) {
	s := SymSection{Dims: []SymDim{Point(sym("i").AddConst(-1)), ConstDim(1, 6, 2)}}
	sec, ok := s.Concrete(map[string]int{"i": 4})
	if !ok {
		t.Fatal("concrete eval failed")
	}
	if sec.Dims[0].Lo != 3 || sec.Dims[0].Hi != 3 {
		t.Errorf("dim0 = %v", sec.Dims[0])
	}
	if sec.NumElems() != 3 {
		t.Errorf("elems = %d", sec.NumElems())
	}
	if _, ok := s.Concrete(nil); ok {
		t.Error("missing binding must fail")
	}
}

func TestMappingRelations(t *testing.T) {
	grid := []int{4, 4}
	left1 := Mapping{Kind: MapShift, GridShape: grid, GridDim: 0, Sign: -1, Width: 1}
	left2 := Mapping{Kind: MapShift, GridShape: grid, GridDim: 0, Sign: -1, Width: 2}
	right := Mapping{Kind: MapShift, GridShape: grid, GridDim: 0, Sign: +1, Width: 1}
	up := Mapping{Kind: MapShift, GridShape: grid, GridDim: 1, Sign: -1, Width: 1}

	if !left1.SubsetOf(left2) || left2.SubsetOf(left1) {
		t.Error("narrow strip is a subset of wide strip, not vice versa")
	}
	if !left1.CompatibleWith(left2) || !left2.CompatibleWith(left1) {
		t.Error("same direction, different widths must combine")
	}
	if left1.CompatibleWith(right) || left1.CompatibleWith(up) {
		t.Error("different directions/dims must not combine")
	}
	if u := left1.Union(left2); u.Width != 2 {
		t.Errorf("union width = %d", u.Width)
	}
	other := Mapping{Kind: MapShift, GridShape: []int{2, 8}, GridDim: 0, Sign: -1, Width: 1}
	if left1.CompatibleWith(other) {
		t.Error("different grids never combine")
	}

	r1 := Mapping{Kind: MapReduce, GridShape: grid}
	r2 := Mapping{Kind: MapReduce, GridShape: grid}
	if !r1.CompatibleWith(r2) || !r1.Equal(r2) {
		t.Error("reductions on the same grid combine")
	}
	if r1.CompatibleWith(left1) {
		t.Error("reduce and shift must not combine")
	}

	g1 := Mapping{Kind: MapGeneral, GridShape: grid, Signature: "x"}
	g2 := Mapping{Kind: MapGeneral, GridShape: grid, Signature: "y"}
	if g1.CompatibleWith(g2) {
		t.Error("general mappings with different signatures must not combine")
	}
	if !g1.CompatibleWith(g1) {
		t.Error("identical general mappings combine")
	}
}

func TestASDSubsumes(t *testing.T) {
	grid := []int{4}
	m1 := Mapping{Kind: MapShift, GridShape: grid, GridDim: 0, Sign: -1, Width: 1}
	m2 := Mapping{Kind: MapShift, GridShape: grid, GridDim: 0, Sign: -1, Width: 2}
	big := ASD{Array: "a", Data: SymSection{Dims: []SymDim{ConstDim(1, 10, 1)}}, Map: m2}
	small := ASD{Array: "a", Data: SymSection{Dims: []SymDim{ConstDim(2, 9, 2)}}, Map: m1}
	if !big.Subsumes(small) {
		t.Error("bigger data + wider mapping must subsume")
	}
	if small.Subsumes(big) {
		t.Error("subsumption is antisymmetric here")
	}
	otherArray := ASD{Array: "b", Data: small.Data, Map: m1}
	if big.Subsumes(otherArray) {
		t.Error("different arrays never subsume")
	}
}

func TestSubtract(t *testing.T) {
	sec := func(dims ...SymDim) SymSection { return SymSection{Dims: dims} }
	cases := []struct {
		name string
		s, t SymSection
		want string
		ok   bool
	}{
		{"trim-high", sec(ConstDim(1, 10, 1)), sec(ConstDim(0, 7, 1)), "(8:10)", true},
		{"trim-low", sec(ConstDim(0, 10, 1)), sec(ConstDim(3, 12, 1)), "(0:2)", true},
		{"covered", sec(ConstDim(2, 5, 1)), sec(ConstDim(1, 6, 1)), "", true},
		{"both-ends", sec(ConstDim(0, 10, 1)), sec(ConstDim(3, 7, 1)), "", false},
		{"two-dims", sec(ConstDim(0, 10, 1), ConstDim(0, 10, 1)), sec(ConstDim(1, 10, 1), ConstDim(1, 10, 1)), "", false},
		{"second-dim", sec(ConstDim(1, 8, 1), ConstDim(1, 10, 1)), sec(ConstDim(1, 8, 1), ConstDim(1, 8, 1)), "(1:8,9:10)", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, ok := tc.s.Subtract(tc.t)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if !ok {
				return
			}
			if tc.want == "" {
				if n, k := d.NumElems(); !k || n != 0 {
					t.Errorf("want empty difference, got %v", d)
				}
				return
			}
			if got := d.String(); got != tc.want {
				t.Errorf("diff = %v, want %v", got, tc.want)
			}
		})
	}
}

// Property: whenever Subtract succeeds on constant unit-stride
// sections, diff ⊆ s, diff ∩ t = ∅, and t ∪ diff ⊇ s.
func TestSubtractBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	member := func(sec SymSection, x, y int) bool {
		lo0, _ := sec.Dims[0].Lo.IsConst()
		hi0, _ := sec.Dims[0].Hi.IsConst()
		lo1, _ := sec.Dims[1].Lo.IsConst()
		hi1, _ := sec.Dims[1].Hi.IsConst()
		return x >= lo0 && x <= hi0 && y >= lo1 && y <= hi1
	}
	empty := func(sec SymSection) bool {
		n, ok := sec.NumElems()
		return ok && n == 0
	}
	for trial := 0; trial < 1000; trial++ {
		mk := func() SymSection {
			return SymSection{Dims: []SymDim{
				ConstDim(rng.Intn(5), rng.Intn(10), 1),
				ConstDim(rng.Intn(5), rng.Intn(10), 1),
			}}
		}
		s, u := mk(), mk()
		d, ok := s.Subtract(u)
		if !ok {
			continue
		}
		for x := 0; x < 12; x++ {
			for y := 0; y < 12; y++ {
				inS, inT := member(s, x, y), member(u, x, y)
				inD := !empty(d) && member(d, x, y)
				if inD && !inS {
					t.Fatalf("diff %v of %v - %v contains (%d,%d) outside s", d, s, u, x, y)
				}
				if inD && inT {
					t.Fatalf("diff %v of %v - %v overlaps t at (%d,%d)", d, s, u, x, y)
				}
				if inS && !inT && !inD {
					t.Fatalf("diff %v of %v - %v misses (%d,%d)", d, s, u, x, y)
				}
			}
		}
	}
}

func TestStringForms(t *testing.T) {
	m := Mapping{Kind: MapShift, GridShape: []int{2, 2}, GridDim: 1, Sign: -1, Width: 2}
	if got := m.String(); got != "shift[dim1-2]" {
		t.Errorf("Mapping.String = %q", got)
	}
	r := Mapping{Kind: MapReduce}
	if r.String() != "reduce" {
		t.Errorf("reduce string = %q", r.String())
	}
	a := ASD{Array: "a", Data: SymSection{Dims: []SymDim{ConstDim(1, 4, 1)}}, Map: m}
	if got := a.String(); got != "a(1:4) via shift[dim1-2]" {
		t.Errorf("ASD.String = %q", got)
	}
	if MapBcast.String() != "bcast" || MapGeneral.String() != "general" || MapKind(9).String() == "" {
		t.Error("MapKind strings")
	}
}
