package scalarize

import (
	"strings"
	"testing"

	"gcao/internal/ast"
	"gcao/internal/parser"
	"gcao/internal/sem"
)

func scalarizeSrc(t *testing.T, src string, params map[string]int) *Result {
	t.Helper()
	r, err := parser.ParseRoutine(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u, err := sem.Analyze(r, params, sem.Options{Procs: 4})
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	res, err := Scalarize(u)
	if err != nil {
		t.Fatalf("scalarize: %v", err)
	}
	return res
}

func bodyString(res *Result) string {
	var b strings.Builder
	for _, s := range res.Body {
		b.WriteString(ast.StmtString(s))
		b.WriteByte('\n')
	}
	return b.String()
}

func TestSimpleSection(t *testing.T) {
	res := scalarizeSrc(t, `
routine f(n)
real a(n), b(n), c(n)
c(2:n) = a(1:n-1) + b(1:n-1)
end
`, map[string]int{"n": 8})
	if res.StmtsExpanded != 1 || res.LoopsCreated != 1 {
		t.Fatalf("expanded=%d loops=%d", res.StmtsExpanded, res.LoopsCreated)
	}
	d, ok := res.Body[0].(*ast.DoStmt)
	if !ok {
		t.Fatalf("not a loop: %v", ast.StmtString(res.Body[0]))
	}
	// Direct-bounds form: do v = 2, 8; c(v) = a(v-1) + b(v-1).
	lo, _ := d.Lo.(*ast.NumLit)
	hi, _ := d.Hi.(*ast.NumLit)
	if lo == nil || hi == nil || lo.Value != 2 || hi.Value != 8 {
		t.Errorf("bounds %v..%v", ast.ExprString(d.Lo), ast.ExprString(d.Hi))
	}
	s := ast.StmtString(res.Body[0])
	if !strings.Contains(s, "- 1") && !strings.Contains(s, "-1") {
		t.Errorf("offset subscript missing in %q", s)
	}
}

func TestWholeArrayAndScalarRHS(t *testing.T) {
	res := scalarizeSrc(t, `
routine f(n)
real a(n, n), d(n, n)
a = 3
a = d
end
`, map[string]int{"n": 4})
	if res.StmtsExpanded != 2 || res.LoopsCreated != 4 {
		t.Fatalf("expanded=%d loops=%d\n%s", res.StmtsExpanded, res.LoopsCreated, bodyString(res))
	}
	// Second statement reads d elementwise.
	d2 := res.Body[1].(*ast.DoStmt)
	inner := d2.Body[0].(*ast.DoStmt).Body[0].(*ast.AssignStmt)
	ref, ok := inner.RHS.(*ast.Ref)
	if !ok || ref.Name != "d" || len(ref.Subs) != 2 || ref.Subs[0].Kind != ast.SubExpr {
		t.Errorf("rhs = %v", ast.ExprString(inner.RHS))
	}
}

func TestStridedSections(t *testing.T) {
	res := scalarizeSrc(t, `
routine f(n)
real b(n, n)
b(1:n, 1:n:2) = 1
end
`, map[string]int{"n": 8})
	outer := res.Body[0].(*ast.DoStmt)
	innerDo := outer.Body[0].(*ast.DoStmt)
	if innerDo.Step == nil {
		t.Fatalf("strided dim should keep step:\n%s", bodyString(res))
	}
	st, _ := innerDo.Step.(*ast.NumLit)
	if st == nil || st.Value != 2 {
		t.Errorf("step = %v", ast.ExprString(innerDo.Step))
	}
}

func TestMismatchedStepsNormalize(t *testing.T) {
	// Different strides on the two sides force the normalized form
	// (loop from 0 with explicit affine subscripts).
	res := scalarizeSrc(t, `
routine f(n)
real a(n), c(n)
c(1:n:2) = a(1:n/2)
end
`, map[string]int{"n": 8})
	d := res.Body[0].(*ast.DoStmt)
	lo, _ := d.Lo.(*ast.NumLit)
	if lo == nil || lo.Value != 0 {
		t.Fatalf("normalized loop should start at 0:\n%s", bodyString(res))
	}
	s := bodyString(res)
	if !strings.Contains(s, "2 *") {
		t.Errorf("normalized form should scale the index: %s", s)
	}
}

func TestConformanceError(t *testing.T) {
	r, err := parser.ParseRoutine(`
routine f(n)
real a(n), c(n)
c(1:n) = a(1:n-1)
end
`)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sem.Analyze(r, map[string]int{"n": 8}, sem.Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Scalarize(u); err == nil || !strings.Contains(err.Error(), "non-conforming") {
		t.Errorf("want non-conforming error, got %v", err)
	}
}

func TestReductionLeftIntact(t *testing.T) {
	res := scalarizeSrc(t, `
routine f(n)
real g(n, n)
real x
do i = 1, n
x = sum(g(i, 1:n))
enddo
end
`, map[string]int{"n": 8})
	d := res.Body[0].(*ast.DoStmt)
	as, ok := d.Body[0].(*ast.AssignStmt)
	if !ok {
		t.Fatalf("sum statement should remain an assignment:\n%s", bodyString(res))
	}
	call, ok := as.RHS.(*ast.Call)
	if !ok || call.Func != "sum" {
		t.Fatalf("rhs = %v", ast.ExprString(as.RHS))
	}
	ref := call.Args[0].(*ast.Ref)
	if ref.Subs[1].Kind != ast.SubRange {
		t.Error("sum argument section must keep its range subscript")
	}
}

func TestSumOverWholeArrayExpanded(t *testing.T) {
	res := scalarizeSrc(t, `
routine f(n)
real g(n, n)
real x
x = sum(g)
end
`, map[string]int{"n": 4})
	as := res.Body[0].(*ast.AssignStmt)
	call := as.RHS.(*ast.Call)
	ref, ok := call.Args[0].(*ast.Ref)
	if !ok || len(ref.Subs) != 2 || ref.Subs[0].Kind != ast.SubRange {
		t.Fatalf("whole-array sum arg = %v", ast.ExprString(call.Args[0]))
	}
}

func TestSumInArrayStatementRejected(t *testing.T) {
	r, _ := parser.ParseRoutine(`
routine f(n)
real a(n), g(n, n)
a(1:n) = sum(g)
end
`)
	u, err := sem.Analyze(r, map[string]int{"n": 4}, sem.Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Scalarize(u); err == nil {
		t.Error("SUM inside an array statement must be rejected")
	}
}

func TestNestedControlPreserved(t *testing.T) {
	res := scalarizeSrc(t, `
routine f(n)
real a(n), b(n)
real x
do k = 1, 2
if (x > 0) then
a(1:n) = 1
else
b(1:n) = 2
endif
enddo
end
`, map[string]int{"n": 4})
	d := res.Body[0].(*ast.DoStmt)
	iff := d.Body[0].(*ast.IfStmt)
	if _, ok := iff.Then[0].(*ast.DoStmt); !ok {
		t.Errorf("then branch should hold the scalarized loop:\n%s", bodyString(res))
	}
	if _, ok := iff.Else[0].(*ast.DoStmt); !ok {
		t.Errorf("else branch should hold the scalarized loop:\n%s", bodyString(res))
	}
}

func TestLabelsPropagate(t *testing.T) {
	res := scalarizeSrc(t, `
routine f(n)
real a(n)
a(1:n) = 1
end
`, map[string]int{"n": 4})
	d := res.Body[0].(*ast.DoStmt)
	as := d.Body[0].(*ast.AssignStmt)
	if as.Label == "" {
		t.Error("scalarized statement lost its source label")
	}
}
