// Package scalarize rewrites F90 array-section assignments into
// elementwise DO loops, reproducing the behaviour of the pHPF
// scalarizer described in §2.3 of the paper: each array statement
// becomes its own loop nest (no fusion), which is precisely what makes
// earliest-placement redundancy elimination syntax-sensitive (Fig. 3,
// middle column) and what the global placement algorithm is robust to.
//
// Reduction statements — assignments whose right-hand side contains a
// SUM over an array section — are deliberately left unscalarized: the
// compiler treats reduction communication specially (§6.2), and the
// runtime executes SUM natively.
package scalarize

import (
	"fmt"

	"gcao/internal/ast"
	"gcao/internal/sem"
	"gcao/internal/source"
)

// Result carries the scalarized body and statistics.
type Result struct {
	Body []ast.Stmt
	// LoopsCreated counts the DO loops the scalarizer introduced.
	LoopsCreated int
	// StmtsExpanded counts array statements that were expanded.
	StmtsExpanded int
}

type scalarizer struct {
	u       *sem.Unit
	counter int
	res     *Result
}

// Scalarize returns a new routine body in which every F90 array
// statement has been rewritten as a scalar loop nest. The input body
// is not modified. Statement labels are propagated so later analyses
// can report against original source lines.
func Scalarize(u *sem.Unit) (*Result, error) {
	s := &scalarizer{u: u, res: &Result{}}
	body, err := s.body(u.Routine.Body)
	if err != nil {
		return nil, err
	}
	s.res.Body = body
	return s.res, nil
}

func (s *scalarizer) freshVar() string {
	s.counter++
	return fmt.Sprintf("i$%d", s.counter)
}

func (s *scalarizer) body(stmts []ast.Stmt) ([]ast.Stmt, error) {
	var out []ast.Stmt
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.AssignStmt:
			ns, err := s.assign(st)
			if err != nil {
				return nil, err
			}
			out = append(out, ns...)
		case *ast.DoStmt:
			b, err := s.body(st.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, &ast.DoStmt{Var: st.Var, Lo: st.Lo, Hi: st.Hi, Step: st.Step, Body: b, Pos: st.Pos})
		case *ast.IfStmt:
			t, err := s.body(st.Then)
			if err != nil {
				return nil, err
			}
			e, err := s.body(st.Else)
			if err != nil {
				return nil, err
			}
			out = append(out, &ast.IfStmt{Cond: st.Cond, Then: t, Else: e, Pos: st.Pos})
		default:
			out = append(out, st)
		}
	}
	return out, nil
}

// expandWhole turns a bare array name reference (no subscripts) into a
// full-section reference.
func (s *scalarizer) expandWhole(r *ast.Ref) *ast.Ref {
	a := s.u.Arrays[r.Name]
	if a == nil || len(r.Subs) > 0 {
		return r
	}
	subs := make([]ast.Sub, a.Rank())
	for i := range subs {
		subs[i] = ast.Sub{Kind: ast.SubRange}
	}
	return &ast.Ref{Name: r.Name, Subs: subs, Pos: r.Pos}
}

// rangeInfo is one resolved triplet of a section subscript.
type rangeInfo struct {
	dim          int // array dimension index
	lo, hi, step int
}

// resolveRanges evaluates the range subscripts of a reference.
func (s *scalarizer) resolveRanges(r *ast.Ref) ([]rangeInfo, error) {
	a := s.u.Arrays[r.Name]
	if a == nil {
		return nil, nil
	}
	var out []rangeInfo
	for d, sub := range r.Subs {
		if sub.Kind != ast.SubRange {
			continue
		}
		ri := rangeInfo{dim: d, lo: a.Lo[d], hi: a.Hi[d], step: 1}
		var err error
		if sub.Lo != nil {
			ri.lo, err = s.u.EvalInt(sub.Lo)
			if err != nil {
				return nil, source.Errorf(r.Pos, "scalarize: section bound of %q must be a compile-time integer: %v", r.Name, err)
			}
		}
		if sub.Hi != nil {
			ri.hi, err = s.u.EvalInt(sub.Hi)
			if err != nil {
				return nil, source.Errorf(r.Pos, "scalarize: section bound of %q must be a compile-time integer: %v", r.Name, err)
			}
		}
		if sub.Step != nil {
			ri.step, err = s.u.EvalInt(sub.Step)
			if err != nil {
				return nil, source.Errorf(r.Pos, "scalarize: section step of %q must be a compile-time integer: %v", r.Name, err)
			}
			if ri.step < 1 {
				return nil, source.Errorf(r.Pos, "scalarize: section step of %q must be >= 1", r.Name)
			}
		}
		out = append(out, ri)
	}
	return out, nil
}

func rangeCount(ri rangeInfo) int {
	if ri.lo > ri.hi {
		return 0
	}
	return (ri.hi-ri.lo)/ri.step + 1
}

// containsSum reports whether the expression contains a SUM call.
func containsSum(e ast.Expr) bool {
	found := false
	ast.WalkExprs(e, func(e ast.Expr) {
		if c, ok := e.(*ast.Call); ok && c.Func == "sum" {
			found = true
		}
	})
	return found
}

// isArrayStmt reports whether the assignment needs scalarization.
func (s *scalarizer) isArrayStmt(st *ast.AssignStmt) bool {
	if a := s.u.Arrays[st.LHS.Name]; a != nil {
		if len(st.LHS.Subs) == 0 {
			return true // whole-array assignment
		}
		if st.LHS.HasSection() {
			return true
		}
	}
	// RHS whole-array or section refs also force expansion only when
	// the LHS is an array element written elementwise; an RHS section
	// with a scalar LHS is only legal under SUM, handled separately.
	return false
}

func (s *scalarizer) assign(st *ast.AssignStmt) ([]ast.Stmt, error) {
	label := st.Label
	if label == "" {
		label = fmt.Sprintf("L%d", st.Pos.Line)
	}
	if !s.isArrayStmt(st) {
		// Still expand bare array names on the RHS under SUM.
		out := &ast.AssignStmt{LHS: st.LHS, RHS: s.expandRHSWholes(st.RHS), Pos: st.Pos, Label: label}
		return []ast.Stmt{out}, nil
	}
	if containsSum(st.RHS) {
		return nil, source.Errorf(st.Pos, "scalarize: SUM on the right-hand side of an array statement is not supported")
	}

	lhs := s.expandWhole(st.LHS)
	lranges, err := s.resolveRanges(lhs)
	if err != nil {
		return nil, err
	}
	if len(lranges) == 0 {
		return nil, source.Errorf(st.Pos, "scalarize: internal: array statement without ranges")
	}

	// Check whether every RHS section conforms with matching steps, so
	// we can use the readable direct-bounds form; otherwise normalize.
	type refRanges struct {
		ref    *ast.Ref
		ranges []rangeInfo
	}
	var rhsRefs []refRanges
	var walkErr error
	rhs := s.expandRHSWholes(st.RHS)
	ast.WalkExprs(rhs, func(e ast.Expr) {
		if walkErr != nil {
			return
		}
		r, ok := e.(*ast.Ref)
		if !ok || s.u.Arrays[r.Name] == nil {
			return
		}
		rr, err := s.resolveRanges(r)
		if err != nil {
			walkErr = err
			return
		}
		if len(rr) == 0 {
			return
		}
		if len(rr) != len(lranges) {
			walkErr = source.Errorf(r.Pos, "scalarize: %q has %d section dims, LHS has %d", r.Name, len(rr), len(lranges))
			return
		}
		for i := range rr {
			if rangeCount(rr[i]) != rangeCount(lranges[i]) {
				walkErr = source.Errorf(r.Pos, "scalarize: non-conforming sections: %q dim %d has %d elements, LHS has %d",
					r.Name, rr[i].dim, rangeCount(rr[i]), rangeCount(lranges[i]))
				return
			}
		}
		rhsRefs = append(rhsRefs, refRanges{ref: r, ranges: rr})
	})
	if walkErr != nil {
		return nil, walkErr
	}

	direct := true
	for _, rr := range rhsRefs {
		for i := range rr.ranges {
			if rr.ranges[i].step != lranges[i].step {
				direct = false
			}
		}
	}

	// Allocate one loop variable per sectioned LHS dimension.
	vars := make([]string, len(lranges))
	for i := range vars {
		vars[i] = s.freshVar()
	}

	// Build the index expression substitutions. In direct form the loop
	// variable runs over the LHS triplet and an RHS index is v + (rlo -
	// llo). In normalized form the variable runs 0..count-1 and indexes
	// are lo + v*step on both sides.
	num := func(v int, pos source.Pos) ast.Expr {
		return &ast.NumLit{Text: fmt.Sprint(v), Value: float64(v), IsInt: true, Pos: pos}
	}
	mkIdx := func(v string, base, coef int, pos source.Pos) ast.Expr {
		ve := ast.Expr(&ast.Ident{Name: v, Pos: pos})
		if coef != 1 {
			ve = &ast.BinExpr{Op: ast.Mul, X: num(coef, pos), Y: ve, Pos: pos}
		}
		if base == 0 {
			return ve
		}
		if base > 0 {
			return &ast.BinExpr{Op: ast.Add, X: ve, Y: num(base, pos), Pos: pos}
		}
		return &ast.BinExpr{Op: ast.Sub_, X: ve, Y: num(-base, pos), Pos: pos}
	}

	// New LHS with element subscripts.
	newLHS := &ast.Ref{Name: lhs.Name, Pos: lhs.Pos, Subs: append([]ast.Sub(nil), lhs.Subs...)}
	{
		k := 0
		for d, sub := range lhs.Subs {
			if sub.Kind != ast.SubRange {
				continue
			}
			var idx ast.Expr
			if direct {
				idx = &ast.Ident{Name: vars[k], Pos: lhs.Pos}
			} else {
				idx = mkIdx(vars[k], lranges[k].lo, lranges[k].step, lhs.Pos)
			}
			newLHS.Subs[d] = ast.Sub{Kind: ast.SubExpr, X: idx}
			k++
			_ = d
		}
	}

	// Rewrite the RHS, substituting each sectioned ref.
	newRHS := s.rewriteRHS(rhs, lranges, vars, direct, mkIdx)

	inner := &ast.AssignStmt{LHS: newLHS, RHS: newRHS, Pos: st.Pos, Label: label}
	s.res.StmtsExpanded++

	// Wrap in loops, first sectioned dimension outermost (matching the
	// pHPF scalarizer's row-major order for these examples).
	var out ast.Stmt = inner
	for k := len(lranges) - 1; k >= 0; k-- {
		var lo, hi ast.Expr
		var step ast.Expr
		if direct {
			lo = num(lranges[k].lo, st.Pos)
			hi = num(lranges[k].hi, st.Pos)
			if lranges[k].step != 1 {
				step = num(lranges[k].step, st.Pos)
			}
		} else {
			lo = num(0, st.Pos)
			hi = num(rangeCount(lranges[k])-1, st.Pos)
		}
		out = &ast.DoStmt{Var: vars[k], Lo: lo, Hi: hi, Step: step, Body: []ast.Stmt{out}, Pos: st.Pos}
		s.res.LoopsCreated++
	}
	return []ast.Stmt{out}, nil
}

// expandRHSWholes replaces bare array-name identifiers in an
// expression with full-section references.
func (s *scalarizer) expandRHSWholes(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		if a := s.u.Arrays[e.Name]; a != nil {
			subs := make([]ast.Sub, a.Rank())
			for i := range subs {
				subs[i] = ast.Sub{Kind: ast.SubRange}
			}
			return &ast.Ref{Name: e.Name, Subs: subs, Pos: e.Pos}
		}
		return e
	case *ast.BinExpr:
		return &ast.BinExpr{Op: e.Op, X: s.expandRHSWholes(e.X), Y: s.expandRHSWholes(e.Y), Pos: e.Pos}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{X: s.expandRHSWholes(e.X), Pos: e.Pos}
	case *ast.Call:
		args := make([]ast.Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = s.expandRHSWholes(a)
		}
		return &ast.Call{Func: e.Func, Args: args, Pos: e.Pos}
	default:
		return e
	}
}

type idxMaker func(v string, base, coef int, pos source.Pos) ast.Expr

// rewriteRHS substitutes loop variables into every sectioned reference
// of the RHS expression tree.
func (s *scalarizer) rewriteRHS(e ast.Expr, lranges []rangeInfo, vars []string, direct bool, mkIdx idxMaker) ast.Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ref:
		if s.u.Arrays[e.Name] == nil || !e.HasSection() {
			return e
		}
		rr, err := s.resolveRanges(e)
		if err != nil || len(rr) != len(lranges) {
			return e // validated earlier; defensive
		}
		out := &ast.Ref{Name: e.Name, Pos: e.Pos, Subs: append([]ast.Sub(nil), e.Subs...)}
		k := 0
		for d, sub := range e.Subs {
			if sub.Kind != ast.SubRange {
				continue
			}
			var idx ast.Expr
			if direct {
				idx = mkIdx(vars[k], rr[k].lo-lranges[k].lo, 1, e.Pos)
			} else {
				idx = mkIdx(vars[k], rr[k].lo, rr[k].step, e.Pos)
			}
			out.Subs[d] = ast.Sub{Kind: ast.SubExpr, X: idx}
			k++
			_ = d
		}
		return out
	case *ast.BinExpr:
		return &ast.BinExpr{Op: e.Op,
			X: s.rewriteRHS(e.X, lranges, vars, direct, mkIdx),
			Y: s.rewriteRHS(e.Y, lranges, vars, direct, mkIdx), Pos: e.Pos}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{X: s.rewriteRHS(e.X, lranges, vars, direct, mkIdx), Pos: e.Pos}
	case *ast.Call:
		args := make([]ast.Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = s.rewriteRHS(a, lranges, vars, direct, mkIdx)
		}
		return &ast.Call{Func: e.Func, Args: args, Pos: e.Pos}
	default:
		return e
	}
}
