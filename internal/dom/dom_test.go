package dom

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gcao/internal/cfg"
	"gcao/internal/parser"
)

func buildGraph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	r, err := parser.ParseRoutine(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.Build(r.Body)
}

func TestAgainstReference(t *testing.T) {
	srcs := []string{
		`
routine a()
real x
x = 1
end
`, `
routine b()
real x
do i = 1, 3
do j = 1, 3
x = 1
enddo
enddo
end
`, `
routine c()
real x
if (x > 0) then
do i = 1, 2
x = 1
enddo
else
x = 2
endif
do k = 1, 2
if (x > 1) then
x = 3
endif
enddo
end
`,
	}
	for i, src := range srcs {
		g := buildGraph(t, src)
		tr := New(g)
		if err := tr.Verify(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

// randomProgram builds a random structured routine for property
// testing the dominator computation.
func randomProgram(rng *rand.Rand, depth int) string {
	var b strings.Builder
	b.WriteString("routine r()\nreal x\n")
	var gen func(d int)
	stmts := 0
	gen = func(d int) {
		n := 1 + rng.Intn(3)
		for i := 0; i < n && stmts < 30; i++ {
			switch {
			case d < depth && rng.Intn(3) == 0:
				fmt.Fprintf(&b, "do v%d = 1, 3\n", stmts)
				stmts++
				gen(d + 1)
				b.WriteString("enddo\n")
			case d < depth && rng.Intn(3) == 0:
				b.WriteString("if (x > 0) then\n")
				stmts++
				gen(d + 1)
				if rng.Intn(2) == 0 {
					b.WriteString("else\n")
					gen(d + 1)
				}
				b.WriteString("endif\n")
			default:
				b.WriteString("x = 1\n")
				stmts++
			}
		}
	}
	gen(0)
	b.WriteString("end\n")
	return b.String()
}

func TestRandomStructuredPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		src := randomProgram(rng, 3)
		g := buildGraph(t, src)
		tr := New(g)
		if err := tr.Verify(); err != nil {
			t.Fatalf("trial %d (%s): %v", trial, src, err)
		}
	}
}

func TestTreeProperties(t *testing.T) {
	g := buildGraph(t, `
routine f()
real x
do i = 1, 3
if (x > 0) then
x = 1
endif
enddo
x = 2
end
`)
	tr := New(g)
	// Entry dominates everything.
	for _, b := range g.Blocks {
		if !tr.Dominates(g.EntryBlock, b) {
			t.Errorf("entry should dominate %v", b)
		}
	}
	// IDom is a strict dominator and dominance is transitive through it.
	for _, b := range g.Blocks {
		id := tr.IDom(b)
		if b == g.EntryBlock {
			if id != nil {
				t.Error("entry has no idom")
			}
			continue
		}
		if id == nil || !tr.StrictlyDominates(id, b) {
			t.Errorf("idom(%v) = %v not a strict dominator", b, id)
		}
	}
	// Children lists are consistent with IDom.
	for _, b := range g.Blocks {
		for _, c := range tr.Children(b) {
			if tr.IDom(c) != b {
				t.Errorf("child %v of %v has idom %v", c, b, tr.IDom(c))
			}
		}
	}
	// A loop preheader dominates its header and postexit.
	l := g.Loops[0]
	if !tr.StrictlyDominates(l.PreHeader, l.Header) || !tr.StrictlyDominates(l.PreHeader, l.PostExit) {
		t.Error("preheader must dominate header and postexit")
	}
	// The header does NOT dominate the postexit (zero-trip bypass).
	if tr.Dominates(l.Header, l.PostExit) {
		t.Error("zero-trip edge should break header's dominance of postexit")
	}
}

func TestDominatesStmt(t *testing.T) {
	g := buildGraph(t, `
routine f()
real x, y
x = 1
y = 2
end
`)
	tr := New(g)
	s0, s1 := g.Stmts[0], g.Stmts[1]
	if !tr.DominatesStmt(s0, s1) || tr.DominatesStmt(s1, s0) {
		t.Error("in-block statement dominance by index failed")
	}
	if !tr.DominatesStmt(s0, s0) {
		t.Error("statement dominates itself")
	}
}

func TestFrontier(t *testing.T) {
	g := buildGraph(t, `
routine f()
real x
if (x > 0) then
x = 1
else
x = 2
endif
end
`)
	tr := New(g)
	df := tr.Frontier()
	// Both branch blocks have the join in their frontier.
	entry := g.EntryBlock
	thenB, elseB := entry.Succs[0], entry.Succs[1]
	for _, b := range []*cfg.Block{thenB, elseB} {
		found := false
		for _, f := range df[b] {
			if f.Kind == cfg.Join {
				found = true
			}
		}
		if !found {
			t.Errorf("join missing from frontier of %v: %v", b, df[b])
		}
	}
	// The join is not in its own frontier here (single-level if).
	for _, f := range df[entry] {
		if f == entry {
			t.Error("entry in its own frontier")
		}
	}
}

func TestLoopFrontierContainsHeader(t *testing.T) {
	g := buildGraph(t, `
routine f()
real x
do i = 1, 3
x = 1
enddo
end
`)
	tr := New(g)
	df := tr.Frontier()
	l := g.Loops[0]
	// The body (which contains the backedge source) has the header in
	// its frontier — that is where φEntry goes.
	foundHeader := false
	for _, bs := range df {
		for _, f := range bs {
			if f == l.Header {
				foundHeader = true
			}
		}
	}
	if !foundHeader {
		t.Error("loop header must appear in some dominance frontier")
	}
}

// TestDeepNesting builds a pathologically deep chain of nested loops —
// the CFG shape that overflowed the stack when the DFS walks in New
// were recursive — and checks the tree is still correct end to end.
func TestDeepNesting(t *testing.T) {
	const depth = 2000
	var sb strings.Builder
	sb.WriteString("routine deep(n)\nreal a(n)\n!hpf$ distribute (block) :: a\n")
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&sb, "do i%d = 1, 2\n", i)
	}
	sb.WriteString("a(1) = 1\n")
	for i := 0; i < depth; i++ {
		sb.WriteString("enddo\n")
	}
	sb.WriteString("end\n")
	g := buildGraph(t, sb.String())
	tree := New(g)
	// Every loop header must be dominated by every enclosing header;
	// spot-check the innermost block against the entry chain.
	inner := g.Blocks[len(g.Blocks)-1]
	if !tree.Dominates(g.EntryBlock, inner) {
		t.Fatal("entry must dominate every reachable block")
	}
	for _, b := range g.Blocks {
		if b != g.EntryBlock && tree.IDom(b) == nil {
			t.Fatalf("B%d reachable but has no idom", b.ID)
		}
	}
}
