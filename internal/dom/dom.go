// Package dom computes dominators and the dominator tree of an
// augmented CFG using the iterative algorithm of Cooper, Harvey and
// Kennedy ("A Simple, Fast Dominance Algorithm"). The placement pass
// uses dominance three ways: Earliest(u) must dominate the use, the
// candidate set is the dominator-tree path from Latest(u) to
// Earliest(u), and redundancy elimination propagates along dominance.
package dom

import (
	"fmt"

	"gcao/internal/cfg"
)

// Tree is the dominator tree of a graph.
type Tree struct {
	g *cfg.Graph
	// idom[b.ID] is the immediate dominator block ID; entry maps to
	// itself.
	idom []int
	// children[b.ID] lists dominator-tree children.
	children [][]int
	// pre and post are DFS numbers over the dominator tree, giving
	// O(1) Dominates queries.
	pre, post []int
	rpo       []*cfg.Block // reverse postorder of the CFG
}

// New computes dominators for g. Unreachable blocks (there are none in
// graphs built by cfg.Build) would be given the entry as idom.
func New(g *cfg.Graph) *Tree {
	t := &Tree{g: g}
	n := len(g.Blocks)
	t.idom = make([]int, n)
	for i := range t.idom {
		t.idom[i] = -1
	}

	// Reverse postorder. The DFS runs on an explicit stack: deeply
	// nested loop CFGs from large inlined units would otherwise
	// overflow the goroutine stack. Each frame remembers the next
	// successor edge to explore; a block is emitted when its frame
	// pops, reproducing the recursive postorder exactly.
	seen := make([]bool, n)
	order := make([]*cfg.Block, 0, n)
	type dfsFrame struct {
		b    *cfg.Block
		next int
	}
	stack := []dfsFrame{{b: g.EntryBlock}}
	seen[g.EntryBlock.ID] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.b.Succs) {
			s := f.b.Succs[f.next]
			f.next++
			if !seen[s.ID] {
				seen[s.ID] = true
				stack = append(stack, dfsFrame{b: s})
			}
			continue
		}
		order = append(order, f.b)
		stack = stack[:len(stack)-1]
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	t.rpo = order

	rpoNum := make([]int, n)
	for i, b := range order {
		rpoNum[b.ID] = i
	}

	t.idom[g.EntryBlock.ID] = g.EntryBlock.ID
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == g.EntryBlock {
				continue
			}
			newIdom := -1
			for _, p := range b.Preds {
				if t.idom[p.ID] == -1 {
					continue // not yet processed
				}
				if newIdom == -1 {
					newIdom = p.ID
					continue
				}
				newIdom = t.intersect(p.ID, newIdom, rpoNum)
			}
			if newIdom != -1 && t.idom[b.ID] != newIdom {
				t.idom[b.ID] = newIdom
				changed = true
			}
		}
	}

	// Children lists and DFS numbering for O(1) dominance queries.
	t.children = make([][]int, n)
	for _, b := range g.Blocks {
		if b == g.EntryBlock || t.idom[b.ID] == -1 {
			continue
		}
		p := t.idom[b.ID]
		t.children[p] = append(t.children[p], b.ID)
	}
	t.pre = make([]int, n)
	t.post = make([]int, n)
	clock := 0
	type numFrame struct {
		id   int
		next int
	}
	num := []numFrame{{id: g.EntryBlock.ID}}
	clock++
	t.pre[g.EntryBlock.ID] = clock
	for len(num) > 0 {
		f := &num[len(num)-1]
		if f.next < len(t.children[f.id]) {
			c := t.children[f.id][f.next]
			f.next++
			clock++
			t.pre[c] = clock
			num = append(num, numFrame{id: c})
			continue
		}
		clock++
		t.post[f.id] = clock
		num = num[:len(num)-1]
	}
	return t
}

func (t *Tree) intersect(b1, b2 int, rpoNum []int) int {
	for b1 != b2 {
		for rpoNum[b1] > rpoNum[b2] {
			b1 = t.idom[b1]
		}
		for rpoNum[b2] > rpoNum[b1] {
			b2 = t.idom[b2]
		}
	}
	return b1
}

// IDom returns the immediate dominator of b, or nil for the entry.
func (t *Tree) IDom(b *cfg.Block) *cfg.Block {
	if b == t.g.EntryBlock {
		return nil
	}
	id := t.idom[b.ID]
	if id < 0 {
		return nil
	}
	return t.g.Blocks[id]
}

// Dominates reports whether a dominates b (reflexively).
func (t *Tree) Dominates(a, b *cfg.Block) bool {
	if t.pre[a.ID] == 0 || t.pre[b.ID] == 0 {
		return false // unreachable
	}
	return t.pre[a.ID] <= t.pre[b.ID] && t.post[b.ID] <= t.post[a.ID]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (t *Tree) StrictlyDominates(a, b *cfg.Block) bool {
	return a != b && t.Dominates(a, b)
}

// Children returns the dominator-tree children of b.
func (t *Tree) Children(b *cfg.Block) []*cfg.Block {
	ids := t.children[b.ID]
	out := make([]*cfg.Block, len(ids))
	for i, id := range ids {
		out[i] = t.g.Blocks[id]
	}
	return out
}

// RPO returns the blocks in reverse postorder.
func (t *Tree) RPO() []*cfg.Block { return t.rpo }

// Frontier computes the dominance frontier of every block (Cytron et
// al.), used for φ insertion by the SSA builder.
func (t *Tree) Frontier() map[*cfg.Block][]*cfg.Block {
	df := map[*cfg.Block][]*cfg.Block{}
	for _, b := range t.g.Blocks {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			runner := p
			for runner != nil && runner != t.IDom(b) {
				if !blockIn(df[runner], b) {
					df[runner] = append(df[runner], b)
				}
				runner = t.IDom(runner)
			}
		}
	}
	return df
}

func blockIn(bs []*cfg.Block, b *cfg.Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// DominatesStmt reports whether statement a dominates statement b:
// either a's block strictly dominates b's, or they share a block and a
// comes first (a statement dominates itself).
func (t *Tree) DominatesStmt(a, b *cfg.Stmt) bool {
	if a.Block == b.Block {
		return a.Index <= b.Index
	}
	return t.Dominates(a.Block, b.Block)
}

// Verify checks the dominator tree against a reference O(n^2)
// computation; used by property tests.
func (t *Tree) Verify() error {
	ref := slowDominators(t.g)
	for _, a := range t.g.Blocks {
		for _, b := range t.g.Blocks {
			want := ref[a.ID][b.ID]
			got := t.Dominates(a, b)
			if want != got {
				return fmt.Errorf("dom: Dominates(B%d, B%d) = %v, reference says %v", a.ID, b.ID, got, want)
			}
		}
	}
	return nil
}

// slowDominators computes dominance by the classic dataflow fixpoint.
func slowDominators(g *cfg.Graph) [][]bool {
	n := len(g.Blocks)
	dom := make([][]bool, n) // dom[b][a]: a is in Dom(b)? We store dom[a][b] = a dominates b.
	in := make([]map[int]bool, n)
	all := map[int]bool{}
	for i := 0; i < n; i++ {
		all[i] = true
	}
	for i := 0; i < n; i++ {
		if i == g.EntryBlock.ID {
			in[i] = map[int]bool{i: true}
		} else {
			m := map[int]bool{}
			for k := range all {
				m[k] = true
			}
			in[i] = m
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range g.Blocks {
			if b == g.EntryBlock {
				continue
			}
			var m map[int]bool
			for _, p := range b.Preds {
				if m == nil {
					m = map[int]bool{}
					for k := range in[p.ID] {
						m[k] = true
					}
				} else {
					for k := range m {
						if !in[p.ID][k] {
							delete(m, k)
						}
					}
				}
			}
			if m == nil {
				m = map[int]bool{}
			}
			m[b.ID] = true
			if len(m) != len(in[b.ID]) {
				in[b.ID] = m
				changed = true
				continue
			}
			for k := range m {
				if !in[b.ID][k] {
					in[b.ID] = m
					changed = true
					break
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		dom[i] = make([]bool, n)
	}
	for b := 0; b < n; b++ {
		for a := range in[b] {
			dom[a][b] = true
		}
	}
	// Unreachable blocks: nothing dominates them except per init; the
	// fast algorithm reports false, so clear rows/cols for blocks with
	// no path from entry.
	reach := make([]bool, n)
	work := []*cfg.Block{g.EntryBlock}
	reach[g.EntryBlock.ID] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !reach[s.ID] {
				reach[s.ID] = true
				work = append(work, s)
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if !reach[a] || !reach[b] {
				dom[a][b] = false
			}
		}
	}
	return dom
}
