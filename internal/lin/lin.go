// Package lin provides linear (affine) forms over named integer
// variables: c0 + Σ ci·vi. The dependence tester uses them to compare
// subscripts, and the available-section machinery uses them as symbolic
// section bounds, so that a section like g(i-1, 1:n) keeps the outer
// loop variable i symbolic while n is folded to its compile-time value.
package lin

import (
	"fmt"
	"sort"
	"strings"
)

// Form is an affine form c0 + Σ Coef[v]·v. A nil Coef map means the
// form is the constant Const. Zero-coefficient entries are never
// stored.
type Form struct {
	Const int
	Coef  map[string]int
}

// Const returns a constant form.
func ConstForm(c int) Form { return Form{Const: c} }

// Var returns the form 1·name.
func Var(name string) Form {
	return Form{Coef: map[string]int{name: 1}}
}

// clone returns a deep copy.
func (f Form) clone() Form {
	out := Form{Const: f.Const}
	if len(f.Coef) > 0 {
		out.Coef = make(map[string]int, len(f.Coef))
		for k, v := range f.Coef {
			out.Coef[k] = v
		}
	}
	return out
}

func (f *Form) set(name string, c int) {
	if c == 0 {
		delete(f.Coef, name)
		return
	}
	if f.Coef == nil {
		f.Coef = map[string]int{}
	}
	f.Coef[name] = c
}

// Add returns f + g.
func (f Form) Add(g Form) Form {
	out := f.clone()
	out.Const += g.Const
	for k, v := range g.Coef {
		out.set(k, out.Coef[k]+v)
	}
	return out
}

// Sub returns f - g.
func (f Form) Sub(g Form) Form {
	out := f.clone()
	out.Const -= g.Const
	for k, v := range g.Coef {
		out.set(k, out.Coef[k]-v)
	}
	return out
}

// Scale returns c·f.
func (f Form) Scale(c int) Form {
	if c == 0 {
		return Form{}
	}
	out := Form{Const: f.Const * c}
	for k, v := range f.Coef {
		out.set(k, v*c)
	}
	return out
}

// AddConst returns f + c.
func (f Form) AddConst(c int) Form {
	out := f.clone()
	out.Const += c
	return out
}

// IsConst reports whether the form has no variable terms, returning
// the constant.
func (f Form) IsConst() (int, bool) {
	if len(f.Coef) == 0 {
		return f.Const, true
	}
	return 0, false
}

// CoefOf returns the coefficient of a variable.
func (f Form) CoefOf(name string) int { return f.Coef[name] }

// Vars returns the variables with non-zero coefficients, sorted.
func (f Form) Vars() []string {
	out := make([]string, 0, len(f.Coef))
	for k := range f.Coef {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SingleVar reports whether f = coef·name + konst for exactly one
// variable.
func (f Form) SingleVar() (name string, coef, konst int, ok bool) {
	if len(f.Coef) != 1 {
		return "", 0, 0, false
	}
	for k, v := range f.Coef {
		return k, v, f.Const, true
	}
	return "", 0, 0, false
}

// Equal reports structural equality (same polynomial).
func (f Form) Equal(g Form) bool {
	d := f.Sub(g)
	c, ok := d.IsConst()
	return ok && c == 0
}

// ConstDiff returns f - g when the difference is a constant.
func (f Form) ConstDiff(g Form) (int, bool) {
	return f.Sub(g).IsConst()
}

// Eval evaluates the form under an environment; missing variables
// report ok=false.
func (f Form) Eval(env map[string]int) (int, bool) {
	v := f.Const
	for k, c := range f.Coef {
		x, ok := env[k]
		if !ok {
			return 0, false
		}
		v += c * x
	}
	return v, true
}

// DependsOnly reports whether every variable of f is in the allowed
// set.
func (f Form) DependsOnly(allowed map[string]bool) bool {
	for k := range f.Coef {
		if !allowed[k] {
			return false
		}
	}
	return true
}

// String renders the form.
func (f Form) String() string {
	var parts []string
	for _, v := range f.Vars() {
		c := f.Coef[v]
		switch c {
		case 1:
			parts = append(parts, v)
		case -1:
			parts = append(parts, "-"+v)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, v))
		}
	}
	if f.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprint(f.Const))
	}
	s := strings.Join(parts, "+")
	return strings.ReplaceAll(s, "+-", "-")
}
