package lin

import (
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	f := Var("i").Scale(2).AddConst(3) // 2i + 3
	g := Var("j").Sub(Var("i"))        // j - i
	sum := f.Add(g)                    // i + j + 3
	if sum.CoefOf("i") != 1 || sum.CoefOf("j") != 1 || sum.Const != 3 {
		t.Fatalf("sum = %v", sum)
	}
	if got := sum.String(); got != "i+j+3" {
		t.Errorf("String = %q", got)
	}
	v, ok := sum.Eval(map[string]int{"i": 2, "j": 5})
	if !ok || v != 10 {
		t.Errorf("Eval = %d, %v", v, ok)
	}
	if _, ok := sum.Eval(map[string]int{"i": 2}); ok {
		t.Error("Eval with missing variable must fail")
	}
}

func TestZeroCoefficientsVanish(t *testing.T) {
	f := Var("i").Sub(Var("i"))
	if c, ok := f.IsConst(); !ok || c != 0 {
		t.Fatalf("i - i = %v, want constant 0", f)
	}
	if len(f.Vars()) != 0 {
		t.Errorf("Vars of zero form = %v", f.Vars())
	}
}

func TestSingleVar(t *testing.T) {
	f := Var("k").Scale(-3).AddConst(7)
	name, coef, k, ok := f.SingleVar()
	if !ok || name != "k" || coef != -3 || k != 7 {
		t.Fatalf("SingleVar = %q %d %d %v", name, coef, k, ok)
	}
	if _, _, _, ok := ConstForm(4).SingleVar(); ok {
		t.Error("constant is not single-var")
	}
	if _, _, _, ok := Var("a").Add(Var("b")).SingleVar(); ok {
		t.Error("two-var form is not single-var")
	}
}

func TestConstDiff(t *testing.T) {
	f := Var("i").AddConst(4)
	g := Var("i").AddConst(1)
	if d, ok := f.ConstDiff(g); !ok || d != 3 {
		t.Errorf("ConstDiff = %d, %v", d, ok)
	}
	if _, ok := f.ConstDiff(Var("j")); ok {
		t.Error("ConstDiff across different variables must fail")
	}
}

// Property: evaluation is a ring homomorphism for Add/Sub/Scale.
func TestEvalHomomorphism(t *testing.T) {
	mk := func(ci, cj, c int8) Form {
		return Var("i").Scale(int(ci)).Add(Var("j").Scale(int(cj))).AddConst(int(c))
	}
	f := func(ai, aj, ac, bi, bj, bc, vi, vj int8) bool {
		a := mk(ai, aj, ac)
		b := mk(bi, bj, bc)
		env := map[string]int{"i": int(vi), "j": int(vj)}
		av, _ := a.Eval(env)
		bv, _ := b.Eval(env)
		s, _ := a.Add(b).Eval(env)
		d, _ := a.Sub(b).Eval(env)
		m, _ := a.Scale(3).Eval(env)
		return s == av+bv && d == av-bv && m == 3*av
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Equal is reflexive and agrees with zero difference.
func TestEqualQuick(t *testing.T) {
	f := func(ci, cj, c int8) bool {
		a := Var("i").Scale(int(ci)).Add(Var("j").Scale(int(cj))).AddConst(int(c))
		b := Var("j").Scale(int(cj)).Add(Var("i").Scale(int(ci))).AddConst(int(c))
		return a.Equal(b) && a.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDependsOnly(t *testing.T) {
	f := Var("i").Add(Var("j"))
	if !f.DependsOnly(map[string]bool{"i": true, "j": true}) {
		t.Error("DependsOnly should accept full set")
	}
	if f.DependsOnly(map[string]bool{"i": true}) {
		t.Error("DependsOnly should reject missing j")
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		f    Form
		want string
	}{
		{ConstForm(0), "0"},
		{ConstForm(-4), "-4"},
		{Var("i"), "i"},
		{Var("i").Scale(-1), "-i"},
		{Var("i").Scale(2).AddConst(-3), "2*i-3"},
	}
	for _, tc := range cases {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.f, got, tc.want)
		}
	}
}
