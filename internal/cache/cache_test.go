package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestFingerprintCanonical(t *testing.T) {
	a := Fingerprint("src", "main", CanonParams(map[string]int{"n": 4, "steps": 2}), "8")
	b := Fingerprint("src", "main", CanonParams(map[string]int{"steps": 2, "n": 4}), "8")
	if a != b {
		t.Fatalf("param order changed the fingerprint: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint is not hex SHA-256: %q", a)
	}
	// Segment boundaries are unambiguous.
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("segment boundary collision")
	}
	// Every field is significant.
	base := Fingerprint("src", "main", "n=4", "8")
	for i, other := range []string{
		Fingerprint("src2", "main", "n=4", "8"),
		Fingerprint("src", "main2", "n=4", "8"),
		Fingerprint("src", "main", "n=5", "8"),
		Fingerprint("src", "main", "n=4", "16"),
	} {
		if other == base {
			t.Fatalf("field %d did not affect the fingerprint", i)
		}
	}
}

func TestCanonParamsEmpty(t *testing.T) {
	if got := CanonParams(nil); got != "" {
		t.Fatalf("CanonParams(nil) = %q", got)
	}
	if got := CanonParams(map[string]int{"b": 2, "a": 1}); got != "a=1,b=2" {
		t.Fatalf("CanonParams = %q", got)
	}
}

func TestDoHitMiss(t *testing.T) {
	c := New(8, 0, 2)
	calls := 0
	fn := func() (any, error) { calls++; return "v", nil }
	v, out, err := c.Do("k", nil, fn)
	if err != nil || v != "v" || out != Miss {
		t.Fatalf("first Do = %v, %v, %v", v, out, err)
	}
	v, out, err = c.Do("k", nil, fn)
	if err != nil || v != "v" || out != Hit {
		t.Fatalf("second Do = %v, %v, %v", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(8, 0, 1)
	boom := errors.New("boom")
	calls := 0
	_, out, err := c.Do("k", nil, func() (any, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) || out != Miss {
		t.Fatalf("Do = %v, %v", out, err)
	}
	_, _, err = c.Do("k", nil, func() (any, error) { calls++; return "ok", nil })
	if err != nil || calls != 2 {
		t.Fatalf("error was cached: calls=%d err=%v", calls, err)
	}
	if c.Len() != 1 {
		t.Fatalf("entries = %d", c.Len())
	}
}

func TestEntryBoundEviction(t *testing.T) {
	c := New(4, 0, 1) // one shard, 4 entries
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%d", i)
		c.Do(key, nil, func() (any, error) { return i, nil })
	}
	st := c.Stats()
	if st.Entries != 4 || st.Evictions != 4 {
		t.Fatalf("stats = %+v, want 4 entries and 4 evictions", st)
	}
	// The most recent keys survive, the oldest were evicted.
	if _, out, _ := c.Do("k7", nil, func() (any, error) { return -1, nil }); out != Hit {
		t.Fatal("most recent key evicted")
	}
	if _, out, _ := c.Do("k0", nil, func() (any, error) { return -1, nil }); out != Miss {
		t.Fatal("oldest key still resident")
	}
}

func TestByteBoundEviction(t *testing.T) {
	size := func(any) int64 { return 100 }
	c := New(100, 250, 1) // one shard, 250 bytes => two 100-byte entries fit
	for i := 0; i < 3; i++ {
		c.Do(fmt.Sprintf("k%d", i), size, func() (any, error) { return i, nil })
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 200 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 200 bytes / 1 eviction", st)
	}
	// A single oversized value is admitted (never self-evicts) but
	// pushes everything else out.
	big := func(any) int64 { return 1 << 20 }
	c.Do("huge", big, func() (any, error) { return "x", nil })
	st = c.Stats()
	if st.Entries != 1 || st.Bytes != 1<<20 {
		t.Fatalf("oversized insert: stats = %+v", st)
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := New(2, 0, 1)
	c.Do("a", nil, func() (any, error) { return 1, nil })
	c.Do("b", nil, func() (any, error) { return 2, nil })
	c.Do("a", nil, func() (any, error) { return -1, nil }) // bump a
	c.Do("c", nil, func() (any, error) { return 3, nil })  // evicts b
	if _, out, _ := c.Do("a", nil, func() (any, error) { return -1, nil }); out != Hit {
		t.Fatal("recently used key evicted")
	}
	if _, out, _ := c.Do("b", nil, func() (any, error) { return 2, nil }); out != Miss {
		t.Fatal("least recently used key survived")
	}
}

// TestSingleflightExactlyOnce is the dedup contract: N concurrent
// identical requests trigger exactly one computation, and the counters
// prove it (misses == 1, everything else a hit or an in-flight wait).
func TestSingleflightExactlyOnce(t *testing.T) {
	c := New(8, 0, 4)
	const goroutines = 32
	var calls atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, _, err := c.Do("same", nil, func() (any, error) {
				calls.Add(1)
				return "result", nil
			})
			if err != nil || v != "result" {
				t.Errorf("Do = %v, %v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.InflightWaits != goroutines-1 {
		t.Fatalf("hits (%d) + waits (%d) != %d", st.Hits, st.InflightWaits, goroutines-1)
	}
}

// TestConcurrentHammer mixes identical and distinct keys under
// eviction pressure; run with -race. Each distinct key's computation
// must happen at least once and the value must always be the key's own.
func TestConcurrentHammer(t *testing.T) {
	c := New(8, 4096, 4) // small: forces constant eviction
	const (
		goroutines = 16
		iters      = 200
		keys       = 24
	)
	size := func(any) int64 { return 256 }
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % keys
				key := fmt.Sprintf("key%d", k)
				v, _, err := c.Do(key, size, func() (any, error) {
					return k, nil
				})
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
					return
				}
				if v.(int) != k {
					t.Errorf("Do(%s) = %v, want %d", key, v, k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses+st.InflightWaits != goroutines*iters {
		t.Fatalf("counter sum %d != %d operations",
			st.Hits+st.Misses+st.InflightWaits, goroutines*iters)
	}
	if st.Entries > 8 {
		t.Fatalf("entry bound violated: %d resident", st.Entries)
	}
}
