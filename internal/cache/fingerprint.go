package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
)

// Fingerprint hashes an ordered list of segments into a canonical
// content address: every segment is length-prefixed before hashing, so
// segment boundaries are unambiguous ("ab","c" never collides with
// "a","bc"), and the result is the lowercase hex SHA-256 digest.
// Callers canonicalize unordered inputs before passing them —
// CanonParams does it for parameter bindings — so two requests with
// equal content always produce the same fingerprint regardless of map
// iteration order.
func Fingerprint(segments ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, s := range segments {
		binary.BigEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CanonParams renders a parameter binding canonically: keys sorted,
// "k=v" pairs joined by commas. Two maps with equal contents render
// identically regardless of insertion or iteration order.
func CanonParams(params map[string]int) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(params[k]))
	}
	return b.String()
}
