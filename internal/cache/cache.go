// Package cache implements the serving layer's content-addressed
// compilation cache: a sharded, size-bounded LRU keyed by canonical
// SHA-256 fingerprints of request content, with singleflight
// deduplication so N concurrent identical requests trigger exactly one
// computation. The paper's redundancy-elimination discipline — never
// repeat communication the program already paid for — applied to the
// compiler itself: never repeat an analysis or placement an earlier
// request already paid for.
//
// The cache stores opaque values; gcao layers two tiers on top of it
// (analysis results and placement outcomes) with separate instances,
// so a placement-option change invalidates only the placement tier.
package cache

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Outcome classifies how Do satisfied a lookup.
type Outcome int

const (
	// Miss: this call computed the value (the singleflight leader).
	Miss Outcome = iota
	// Hit: the value was already resident in the LRU.
	Hit
	// Wait: a concurrent identical call was already computing the
	// value; this call waited for its result instead of recomputing.
	Wait
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Wait:
		return "dedup"
	default:
		return "miss"
	}
}

// Cache is a sharded, size-bounded LRU with singleflight deduplication.
// Shards reduce lock contention under concurrent serving load; every
// key maps to one shard by FNV-1a hash, and each shard holds its own
// recency list, byte budget share and in-flight table.
type Cache struct {
	shards     []*shard
	maxEntries int   // per shard
	maxBytes   int64 // per shard; <= 0 disables the byte bound
	// whole-cache configuration, reported by Stats
	cfgEntries int
	cfgBytes   int64

	hits      atomic.Int64
	misses    atomic.Int64
	waits     atomic.Int64
	evictions atomic.Int64
}

type shard struct {
	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight
	bytes    int64
}

type lruEntry struct {
	key  string
	val  any
	size int64
}

// flight is one in-progress computation; waiters block on done and
// then read val/err, which are written exactly once before the close.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New builds a cache bounded to maxEntries entries and roughly
// maxBytes of estimated value size, split across shards. maxEntries is
// clamped to at least one per shard; maxBytes <= 0 disables the byte
// bound; shards < 1 defaults to 16.
func New(maxEntries int, maxBytes int64, shards int) *Cache {
	if shards < 1 {
		shards = 16
	}
	if maxEntries < 1 {
		maxEntries = 1
	}
	if shards > maxEntries {
		shards = maxEntries
	}
	c := &Cache{
		shards:     make([]*shard, shards),
		maxEntries: (maxEntries + shards - 1) / shards,
		cfgEntries: maxEntries,
		cfgBytes:   maxBytes,
	}
	if maxBytes > 0 {
		c.maxBytes = maxBytes / int64(shards)
		if c.maxBytes < 1 {
			c.maxBytes = 1
		}
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			ll:       list.New(),
			items:    map[string]*list.Element{},
			inflight: map[string]*flight{},
		}
	}
	return c
}

func (c *Cache) shard(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Do returns the value for key, computing it with fn on a miss.
// Concurrent Do calls for the same key are deduplicated: exactly one
// caller (the leader) runs fn while the rest wait for its result.
// Errors are delivered to every waiter of the flight and are never
// cached, so a later call retries. size estimates the resident cost of
// a freshly computed value for the byte bound (nil, or a non-positive
// estimate, charges one byte).
func (c *Cache) Do(key string, size func(any) int64, fn func() (any, error)) (any, Outcome, error) {
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.ll.MoveToFront(el)
		v := el.Value.(*lruEntry).val
		sh.mu.Unlock()
		c.hits.Add(1)
		return v, Hit, nil
	}
	if fl, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		c.waits.Add(1)
		<-fl.done
		return fl.val, Wait, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	sh.inflight[key] = fl
	sh.mu.Unlock()

	c.misses.Add(1)
	v, err := fn()
	fl.val, fl.err = v, err

	sh.mu.Lock()
	delete(sh.inflight, key)
	if err == nil {
		c.insertLocked(sh, key, v, size)
	}
	sh.mu.Unlock()
	close(fl.done)
	return v, Miss, err
}

// insertLocked adds a computed value at the front of the shard's
// recency list and evicts from the back until the shard is within both
// bounds again. The newest entry itself is never evicted, so a single
// oversized value is admitted rather than thrashing.
func (c *Cache) insertLocked(sh *shard, key string, v any, size func(any) int64) {
	sz := int64(1)
	if size != nil {
		if s := size(v); s > 0 {
			sz = s
		}
	}
	el := sh.ll.PushFront(&lruEntry{key: key, val: v, size: sz})
	sh.items[key] = el
	sh.bytes += sz
	for sh.ll.Len() > 1 &&
		(sh.ll.Len() > c.maxEntries || (c.maxBytes > 0 && sh.bytes > c.maxBytes)) {
		back := sh.ll.Back()
		e := back.Value.(*lruEntry)
		sh.ll.Remove(back)
		delete(sh.items, e.key)
		sh.bytes -= e.size
		c.evictions.Add(1)
	}
}

// Stats is a point-in-time snapshot of the cache: occupancy, configured
// bounds, and the lifetime hit/miss/dedup/eviction counters.
type Stats struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	MaxEntries    int   `json:"max_entries"`
	MaxBytes      int64 `json:"max_bytes"`
	Shards        int   `json:"shards"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	InflightWaits int64 `json:"inflight_waits"`
	Evictions     int64 `json:"evictions"`
}

// Stats snapshots the cache.
func (c *Cache) Stats() Stats {
	st := Stats{
		MaxEntries:    c.cfgEntries,
		MaxBytes:      c.cfgBytes,
		Shards:        len(c.shards),
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		InflightWaits: c.waits.Load(),
		Evictions:     c.evictions.Load(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Entries += sh.ll.Len()
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}
