package dep

import (
	"testing"

	"gcao/internal/cfg"
	"gcao/internal/dom"
	"gcao/internal/parser"
	"gcao/internal/sem"
	"gcao/internal/ssa"
)

type ctx struct {
	a    *Analysis
	info *ssa.Info
	g    *cfg.Graph
}

func build(t *testing.T, src string, params map[string]int) *ctx {
	t.Helper()
	r, err := parser.ParseRoutine(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u, err := sem.Analyze(r, params, sem.Options{Procs: 4})
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	g := cfg.Build(r.Body)
	tr := dom.New(g)
	info := ssa.Build(g, tr, func(n string) bool {
		_, ok := u.Arrays[n]
		return ok
	})
	if err := info.Validate(); err != nil {
		t.Fatal(err)
	}
	return &ctx{a: New(u), info: info, g: g}
}

// useOf returns the use of array name at the k-th occurrence.
func (c *ctx) useOf(t *testing.T, name string, k int) *ssa.Use {
	t.Helper()
	n := 0
	for _, u := range c.info.Uses {
		if u.Var == name {
			if n == k {
				return u
			}
			n++
		}
	}
	t.Fatalf("no use #%d of %q", k, name)
	return nil
}

// defOf returns the k-th regular def of an array.
func (c *ctx) defOf(t *testing.T, name string, k int) *ssa.RegularDef {
	t.Helper()
	n := 0
	for _, d := range c.info.Defs {
		if d.Var == name {
			if n == k {
				return d
			}
			n++
		}
	}
	t.Fatalf("no def #%d of %q", k, name)
	return nil
}

func TestSubForm(t *testing.T) {
	c := build(t, `
routine f(n)
real a(n)
do i = 1, n
a(i) = 0
enddo
end
`, map[string]int{"n": 8})
	st := c.g.Stmts[0]
	f, ok := c.a.SubForm(st.Assign.LHS.Subs[0].X)
	if !ok || f.CoefOf("i") != 1 || f.Const != 0 {
		t.Errorf("SubForm(i) = %v, %v", f, ok)
	}
}

func TestCarriedDependence(t *testing.T) {
	// a(i) = a(i-1): flow dependence carried at level 1 with distance 1.
	c := build(t, `
routine f(n)
real a(n)
do i = 2, n
a(i) = a(i - 1)
enddo
end
`, map[string]int{"n": 8})
	u := c.useOf(t, "a", 0)
	d := c.defOf(t, "a", 0)
	dirs, feasible := c.a.Directions(d.Stmt, d.LHS, u.Stmt, u.Ref)
	if !feasible || len(dirs) != 1 || dirs[0] != DirGt {
		t.Fatalf("dirs = %v feasible=%v", dirs, feasible)
	}
	if !c.a.IsArrayDep(d, u, 1) {
		t.Error("level-1 dependence expected")
	}
	if got := c.a.DepLevel(d, u); got != 1 {
		t.Errorf("DepLevel = %d, want 1", got)
	}
}

func TestAntiDirectionNotFlow(t *testing.T) {
	// a(i) = a(i+1): the "dependence" runs backward (use of an element
	// written in a LATER iteration) — not a flow dependence, so no
	// placement constraint.
	c := build(t, `
routine f(n)
real a(n)
do i = 1, n - 1
a(i) = a(i + 1)
enddo
end
`, map[string]int{"n": 8})
	u := c.useOf(t, "a", 0)
	d := c.defOf(t, "a", 0)
	dirs, feasible := c.a.Directions(d.Stmt, d.LHS, u.Stmt, u.Ref)
	if !feasible || dirs[0] != DirLt {
		t.Fatalf("dirs = %v", dirs)
	}
	if c.a.IsArrayDep(d, u, 1) {
		t.Error("backward direction must not count as flow dependence")
	}
	if got := c.a.DepLevel(d, u); got != 0 {
		t.Errorf("DepLevel = %d, want 0", got)
	}
}

func TestZIVDisjoint(t *testing.T) {
	// Writes to row 1 can never feed reads of row 2.
	c := build(t, `
routine f(n)
real a(n, n)
do i = 1, n
a(1, i) = a(2, i)
enddo
end
`, map[string]int{"n": 8})
	u := c.useOf(t, "a", 0)
	d := c.defOf(t, "a", 0)
	if _, feasible := c.a.Directions(d.Stmt, d.LHS, u.Stmt, u.Ref); feasible {
		t.Error("ZIV-disjoint refs must be independent")
	}
}

func TestStrideLatticeDisjoint(t *testing.T) {
	// The Fig. 4 case: writes to even columns never feed reads of odd
	// columns even though the loops differ.
	c := build(t, `
routine f(n)
real b(n, n), c2(n, n)
do i = 1, n
do j = 2, n, 2
b(i, j) = 2
enddo
enddo
do i = 2, n
do j = 1, n, 2
c2(i, j) = b(i - 1, j)
enddo
enddo
end
`, map[string]int{"n": 8})
	u := c.useOf(t, "b", 0)
	d := c.defOf(t, "b", 0)
	if _, feasible := c.a.Directions(d.Stmt, d.LHS, u.Stmt, u.Ref); feasible {
		t.Error("even/odd column lattices must be disjoint")
	}
	if c.a.IsArrayDep(d, u, 0) {
		t.Error("IsArrayDep must be false for disjoint lattices")
	}
}

func TestSameIterationEqualDirection(t *testing.T) {
	// Def and use of the same plane index inside a sweep loop: the
	// direction at the sweep level is fixed to "=", so the dependence
	// pins communication at that level (the conservative ≥0 reading of
	// Fig. 8d the paper's counts require).
	c := build(t, `
routine f(n)
real g(n, n), w(n, n)
do it = 1, 2
do i = 2, n - 1
do j = 1, n
w(i, j) = g(i, j)
enddo
do j = 1, n
g(i, j) = w(i, j)
enddo
enddo
enddo
end
`, map[string]int{"n": 8})
	u := c.useOf(t, "g", 0) // g(i,j) read in the w statement
	d := c.defOf(t, "g", 0) // g(i,j) written later in the body
	dirs, feasible := c.a.Directions(d.Stmt, d.LHS, u.Stmt, u.Ref)
	if !feasible || len(dirs) != 2 {
		t.Fatalf("dirs = %v", dirs)
	}
	if dirs[0] != DirAll || dirs[1] != DirEq {
		t.Fatalf("dirs = %v, want [* =]", dirs)
	}
	if !c.a.IsArrayDep(d, u, 2) {
		t.Error("level-2 (i loop) dependence expected under the >=0 rule")
	}
	if got := c.a.DepLevel(d, u); got != 2 {
		t.Errorf("DepLevel = %d, want 2", got)
	}
}

func TestEntryDefAlwaysDepends(t *testing.T) {
	c := build(t, `
routine f(n)
real a(n)
do i = 2, n
a(i) = a(i - 1)
enddo
end
`, map[string]int{"n": 8})
	u := c.useOf(t, "a", 0)
	entry := &ssa.EntryDef{Var: "a", Blk: c.g.EntryBlock}
	if !c.a.IsArrayDep(entry, u, 5) {
		t.Error("ENTRY pseudo-def must always depend (Fig. 8d first line)")
	}
}

func TestReachingRegularDefs(t *testing.T) {
	c := build(t, `
routine f(n)
real a(n)
real x
if (x > 0) then
a(1) = 1
else
a(2) = 2
endif
do i = 2, n
a(i) = a(i - 1)
enddo
end
`, map[string]int{"n": 8})
	u := c.useOf(t, "a", 0)
	regs, entry := ReachingRegularDefs(u)
	if len(regs) != 3 {
		t.Errorf("reaching regular defs = %d, want 3 (both branches + loop def)", len(regs))
	}
	if entry == nil {
		t.Error("ENTRY should be reachable through the preserving chain")
	}
}

func TestRangeSubscriptConservative(t *testing.T) {
	// Reduction use with a range subscript: directions unconstrained,
	// dependence assumed.
	c := build(t, `
routine f(n)
real g(n, n)
real x
do i = 2, n
do j = 1, n
g(i, j) = 1
enddo
x = sum(g(i - 1, 1:n))
enddo
end
`, map[string]int{"n": 8})
	u := c.useOf(t, "g", 0)
	if !u.InReduction {
		t.Fatal("expected the sum use")
	}
	d := c.defOf(t, "g", 0)
	dirs, feasible := c.a.Directions(d.Stmt, d.LHS, u.Stmt, u.Ref)
	if !feasible {
		t.Fatal("must be feasible")
	}
	if dirs[0] != DirGt {
		t.Errorf("dim-1 distance is +1: dirs = %v", dirs)
	}
}

func TestDirSetString(t *testing.T) {
	cases := map[DirSet]string{
		DirLt: "<", DirEq: "=", DirGt: ">", DirAll: "*",
		DirEq | DirGt: ">=", 0: "∅",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", in, got, want)
		}
	}
}
