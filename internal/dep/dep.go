// Package dep implements the array dependence testing the placement
// algorithm needs: affine subscript extraction, direction vectors over
// the common loops of a definition and a use, and the IsArrayDep
// predicate of Fig. 8(d). Subscripts are affine forms over loop
// variables with routine parameters folded to constants; the tester
// handles ZIV and strong-SIV pairs exactly and is conservative (all
// directions possible) otherwise, which is safe for placement: a
// spurious dependence only forfeits an optimization.
package dep

import (
	"gcao/internal/ast"
	"gcao/internal/cfg"
	"gcao/internal/lin"
	"gcao/internal/sem"
	"gcao/internal/ssa"
)

// DirSet is the set of possible dependence directions at one loop
// level. The sign convention follows the paper: a direction is the
// sign of (use iteration − def iteration), so Gt means the definition
// executes in an earlier iteration than the use (a carried true
// dependence, "v > 0" in Fig. 8d).
type DirSet uint8

const (
	DirLt DirSet = 1 << iota // use iteration earlier than def iteration
	DirEq                    // same iteration
	DirGt                    // def iteration earlier than use iteration
)

// DirAll is the unconstrained direction set.
const DirAll = DirLt | DirEq | DirGt

// Has reports whether the set admits direction d.
func (s DirSet) Has(d DirSet) bool { return s&d != 0 }

func (s DirSet) String() string {
	switch s {
	case 0:
		return "∅"
	case DirLt:
		return "<"
	case DirEq:
		return "="
	case DirGt:
		return ">"
	case DirAll:
		return "*"
	case DirEq | DirGt:
		return ">="
	case DirEq | DirLt:
		return "<="
	case DirLt | DirGt:
		return "<>"
	}
	return "?"
}

// Analysis holds per-routine context for dependence queries.
type Analysis struct {
	Unit *sem.Unit
}

// New builds a dependence analysis for a routine.
func New(u *sem.Unit) *Analysis { return &Analysis{Unit: u} }

// SubForm extracts the affine form of an element subscript expression,
// folding routine parameters and literals to constants and keeping
// loop variables symbolic. ok is false when the expression is not
// affine (division, products of variables, intrinsic calls, array
// refs).
func (a *Analysis) SubForm(e ast.Expr) (lin.Form, bool) {
	switch e := e.(type) {
	case nil:
		return lin.Form{}, false
	case *ast.NumLit:
		if !e.IsInt {
			return lin.Form{}, false
		}
		return lin.ConstForm(int(e.Value)), true
	case *ast.Ident:
		if v, ok := a.Unit.Params[e.Name]; ok {
			return lin.ConstForm(v), true
		}
		return lin.Var(e.Name), true
	case *ast.UnaryExpr:
		f, ok := a.SubForm(e.X)
		if !ok {
			return lin.Form{}, false
		}
		return f.Scale(-1), true
	case *ast.BinExpr:
		x, okx := a.SubForm(e.X)
		y, oky := a.SubForm(e.Y)
		if !okx || !oky {
			return lin.Form{}, false
		}
		switch e.Op {
		case ast.Add:
			return x.Add(y), true
		case ast.Sub_:
			return x.Sub(y), true
		case ast.Mul:
			if c, ok := x.IsConst(); ok {
				return y.Scale(c), true
			}
			if c, ok := y.IsConst(); ok {
				return x.Scale(c), true
			}
			return lin.Form{}, false
		case ast.Div:
			cx, okx := x.IsConst()
			cy, oky := y.IsConst()
			if okx && oky && cy != 0 && cx%cy == 0 {
				return lin.ConstForm(cx / cy), true
			}
			return lin.Form{}, false
		}
		return lin.Form{}, false
	}
	return lin.Form{}, false
}

// Directions computes the per-common-loop direction sets for a
// dependence from the definition statement (writing dref) to the use
// statement (reading uref), both references to the same array.
// feasible=false means the subscripts can never name the same element,
// so there is no dependence at all. The returned slice has one entry
// per common loop, outermost first.
func (a *Analysis) Directions(dstmt *cfg.Stmt, dref *ast.Ref, ustmt *cfg.Stmt, uref *ast.Ref) (dirs []DirSet, feasible bool) {
	common := cfg.CommonLoops(ustmt, dstmt)
	dirs = make([]DirSet, len(common))
	for i := range dirs {
		dirs[i] = DirAll
	}
	if len(dref.Subs) == 0 || len(uref.Subs) == 0 || len(dref.Subs) != len(uref.Subs) {
		// Whole-array or rank-mismatched references: conservative.
		return dirs, true
	}
	commonVar := map[string]int{} // loop var -> level index (0-based)
	for i, l := range common {
		commonVar[l.Var()] = i
	}

	// fixed[i] holds a required distance at level i once constrained.
	type constraint struct {
		set  bool
		dist int
	}
	fixed := make([]constraint, len(common))

	for k := range dref.Subs {
		dsub, usub := dref.Subs[k], uref.Subs[k]
		if dsub.Kind == ast.SubRange || usub.Kind == ast.SubRange {
			continue // section subscript (reduction use): unconstrained
		}
		df, okd := a.SubForm(dsub.X)
		uf, oku := a.SubForm(usub.X)
		if !okd || !oku {
			continue // non-affine: unconstrained
		}
		dc, dConst := df.IsConst()
		uc, uConst := uf.IsConst()
		switch {
		case dConst && uConst:
			if dc != uc {
				return nil, false // ZIV: never the same element
			}
		case dConst || uConst:
			// One side fixed: check the constant lies in the other
			// side's value lattice at all; if not, the subscripts can
			// never meet (stride/range disjointness).
			if a.latticesDisjoint(df, dstmt, uf, ustmt) {
				return nil, false
			}
			// Otherwise the distance is unconstrained.
			continue
		default:
			dv, dcoef, dk, dok := df.SingleVar()
			uv, ucoef, uk, uok := uf.SingleVar()
			if !dok || !uok {
				continue // multi-variable: unconstrained
			}
			di, dCommon := commonVar[dv]
			ui, uCommon := commonVar[uv]
			if !dCommon || !uCommon || dv != uv {
				// Different loops or private loop variables: the inner
				// loop may satisfy the equation — unless the two value
				// lattices are provably disjoint (e.g. the Fig. 4 odd
				// vs even column sections).
				if a.latticesDisjoint(df, dstmt, uf, ustmt) {
					return nil, false
				}
				continue
			}
			if dcoef != ucoef {
				if a.latticesDisjoint(df, dstmt, uf, ustmt) {
					return nil, false
				}
				continue // weak SIV: conservative
			}
			if dcoef == 0 {
				if dk != uk {
					return nil, false
				}
				continue
			}
			// dcoef*vd + dk == dcoef*vu + uk  =>  vu - vd = (dk-uk)/dcoef
			num := dk - uk
			if num%dcoef != 0 {
				return nil, false // non-integral distance: independent
			}
			dist := num / dcoef
			lvl := di
			_ = ui
			if fixed[lvl].set && fixed[lvl].dist != dist {
				return nil, false // conflicting constraints
			}
			fixed[lvl] = constraint{set: true, dist: dist}
		}
	}
	for i, c := range fixed {
		if !c.set {
			continue
		}
		switch {
		case c.dist > 0:
			dirs[i] = DirGt
		case c.dist < 0:
			dirs[i] = DirLt
		default:
			dirs[i] = DirEq
		}
	}
	return dirs, true
}

// valueLattice bounds the values a subscript form can take over the
// full range of its (single) loop variable: the arithmetic set
// lo:hi:step. ok=false when the form is not a constant or a single
// loop variable with compile-time loop bounds.
func (a *Analysis) valueLattice(f lin.Form, stmt *cfg.Stmt) (lo, hi, step int, ok bool) {
	if c, isConst := f.IsConst(); isConst {
		return c, c, 1, true
	}
	v, coef, k, single := f.SingleVar()
	if !single || coef == 0 {
		return 0, 0, 0, false
	}
	var loop *cfg.Loop
	for _, l := range stmt.Loops {
		if l.Var() == v {
			loop = l
		}
	}
	if loop == nil {
		return 0, 0, 0, false
	}
	llo, err1 := a.Unit.EvalInt(loop.Do.Lo)
	lhi, err2 := a.Unit.EvalInt(loop.Do.Hi)
	if err1 != nil || err2 != nil || llo > lhi {
		return 0, 0, 0, false
	}
	lstep := 1
	if loop.Do.Step != nil {
		s, err := a.Unit.EvalInt(loop.Do.Step)
		if err != nil || s < 1 {
			return 0, 0, 0, false
		}
		lstep = s
	}
	v1 := coef*llo + k
	v2 := coef*lhi + k
	if v1 > v2 {
		v1, v2 = v2, v1
	}
	st := coef * lstep
	if st < 0 {
		st = -st
	}
	if st == 0 {
		st = 1
	}
	return v1, v2, st, true
}

// latticesDisjoint soundly reports that two subscript value sets can
// never intersect: either their ranges do not overlap or their strides
// and offsets are incompatible modulo the gcd.
func (a *Analysis) latticesDisjoint(df lin.Form, dstmt *cfg.Stmt, uf lin.Form, ustmt *cfg.Stmt) bool {
	dlo, dhi, dstep, ok1 := a.valueLattice(df, dstmt)
	ulo, uhi, ustep, ok2 := a.valueLattice(uf, ustmt)
	if !ok1 || !ok2 {
		return false
	}
	if dhi < ulo || uhi < dlo {
		return true
	}
	g := gcd(dstep, ustep)
	if g > 1 && (dlo-ulo)%g != 0 {
		return true
	}
	return false
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// IsArrayDep implements Fig. 8(d): it reports whether a true
// dependence from def d to use u exists with direction vector
// v_i = 0 for i < level and v_i >= 0 for i >= level, over the common
// loops of d and u. The pseudo-def at ENTRY always depends (first line
// of the figure). level is 1-based; level 0 asks only for
// feasibility.
func (a *Analysis) IsArrayDep(d ssa.Def, u *ssa.Use, level int) bool {
	switch d := d.(type) {
	case *ssa.EntryDef:
		return true
	case *ssa.RegularDef:
		dirs, feasible := a.Directions(d.Stmt, d.LHS, u.Stmt, u.Ref)
		if !feasible {
			return false
		}
		if level > len(dirs) {
			return false
		}
		// A qualifying flow vector has v_i = 0 for i < level and is
		// lexicographically positive from position level on (the
		// first non-"=" component must be ">"; components after it
		// are unconstrained), or is all-"=" — the conservative
		// loop-independent reading the paper's counts rely on.
		for i := 0; i < level-1 && i < len(dirs); i++ {
			if !dirs[i].Has(DirEq) {
				return false
			}
		}
		for i := max(level-1, 0); i < len(dirs); i++ {
			if dirs[i].Has(DirGt) {
				return true // carried at level i+1; the rest is free
			}
			if !dirs[i].Has(DirEq) {
				return false // forced "<" before any ">" is possible
			}
		}
		return true // the all-"=" (loop-independent) vector
	default:
		return false // φ-defs carry no direct dependence
	}
}

// DepLevel returns the deepest loop level that carries (or, for
// loop-independent dependences, contains) a dependence from d to u —
// max_l { IsArrayDep(d, u, l) } in the paper's notation — or 0 when no
// dependence constrains placement.
func (a *Analysis) DepLevel(d ssa.Def, u *ssa.Use) int {
	rd, ok := d.(*ssa.RegularDef)
	if !ok {
		return 0
	}
	cnl := ssa.CNL(rd, u)
	for l := cnl; l >= 1; l-- {
		if a.IsArrayDep(d, u, l) {
			return l
		}
	}
	return 0
}

// ReachingRegularDefs collects every regular definition transitively
// reachable from the use's SSA chain (through φ arguments and the
// inputs of preserving defs), plus the ENTRY pseudo-def if reached.
// This is the set "d ranges over the reaching regular defs of u" of
// §4.2.
func ReachingRegularDefs(u *ssa.Use) (regs []*ssa.RegularDef, entry *ssa.EntryDef) {
	seen := map[ssa.Def]bool{}
	var walk func(d ssa.Def)
	walk = func(d ssa.Def) {
		if d == nil || seen[d] {
			return
		}
		seen[d] = true
		switch d := d.(type) {
		case *ssa.EntryDef:
			entry = d
		case *ssa.RegularDef:
			regs = append(regs, d)
			walk(d.Input)
		case *ssa.PhiDef:
			for _, a := range d.Args {
				walk(a)
			}
		}
	}
	walk(u.Reaching)
	return regs, entry
}
