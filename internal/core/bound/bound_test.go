package bound

import (
	"testing"

	"gcao/internal/core"
	"gcao/internal/parser"
	"gcao/internal/sem"
)

func compile(t *testing.T, src string, params map[string]int, procs int) *core.Analysis {
	t.Helper()
	r, err := parser.ParseRoutine(src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sem.Analyze(r, params, sem.Options{Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalysis(u)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

const stencilSrc = `
routine smooth(n, steps)
real a(0:n+1, 0:n+1), b(0:n+1, 0:n+1)
!hpf$ distribute (block, block) :: a, b
do it = 1, steps
do i = 1, n
do j = 1, n
b(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
enddo
enddo
enddo
end
`

func TestStencilBoundShape(t *testing.T) {
	a := compile(t, stencilSrc, map[string]int{"n": 16, "steps": 2}, 4)
	b := Compute(a)
	if b.Procs != 4 {
		t.Fatalf("procs = %d, want 4", b.Procs)
	}
	if b.TotalBytes <= 0 {
		t.Fatalf("stencil bound = %v, want > 0", b.TotalBytes)
	}
	// Four shift directions of one array collapse into a single "data"
	// term: each could in principle be trimmed against the others, so
	// only the cheapest is guaranteed.
	if len(b.Terms) != 1 {
		t.Fatalf("terms = %v, want one data term for array a", b.Terms)
	}
	term := b.Terms[0]
	if term.Array != "a" || term.Channel != "data" {
		t.Fatalf("term = %+v, want array a channel data", term)
	}
	if term.Entries != 4 {
		t.Fatalf("entries = %d, want the 4 stencil shifts", term.Entries)
	}
	if term.Bytes != b.TotalBytes {
		t.Fatalf("term bytes %v != total %v", term.Bytes, b.TotalBytes)
	}
}

func TestLocalProgramHasZeroBound(t *testing.T) {
	src := `
routine local(n)
real a(1:n), b(1:n)
!hpf$ distribute (block) :: a, b
do i = 1, n
b(i) = a(i) * 2.0
enddo
end
`
	a := compile(t, src, map[string]int{"n": 32}, 4)
	if b := Compute(a); b.TotalBytes != 0 || len(b.Terms) != 0 {
		t.Fatalf("aligned program bound = %+v, want zero", b)
	}
}

func TestGapRatios(t *testing.T) {
	b := Bound{TotalBytes: 100}
	if g := b.Gap(400); g != 4 {
		t.Fatalf("Gap(400) = %v, want 4", g)
	}
	if p := b.PctOfOptimal(400); p != 25 {
		t.Fatalf("PctOfOptimal(400) = %v, want 25", p)
	}
	if p := b.PctOfOptimal(0); p != 0 {
		t.Fatalf("PctOfOptimal(0) with positive bound = %v, want 0", p)
	}
	zero := Bound{}
	if g := zero.Gap(400); g != 0 {
		t.Fatalf("zero-bound Gap = %v, want 0 (unmeasurable)", g)
	}
	if p := zero.PctOfOptimal(0); p != 100 {
		t.Fatalf("zero traffic on zero bound = %v, want 100", p)
	}
}
