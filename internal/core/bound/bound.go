// Package bound computes a per-program communication lower bound from
// the communication analysis alone — no placement is consulted — in
// the spirit of the memory-independent lower bounds of Christ, Demmel,
// Knight et al.: a floor on the bytes that must cross processor
// boundaries under the given distribution, valid for every placement
// the compiler can produce. Dividing a placement's measured (or
// estimated) traffic by the bound yields its optimality-gap ratio, the
// quantity the benchmark dashboard tracks across revisions.
//
// # Derivation
//
// Every non-local reference yields a communication entry whose legal
// placements are its dominator-path candidate positions (§4.4 of the
// paper); all three compiler versions, the exhaustive optimal search,
// and any future strategy choose from that set. Placing an entry at
// candidate c costs at least execs(c)·payload(level(c)) bytes, where
// execs is the trip product of the loops enclosing c and payload the
// per-exchange message volume at c's vectorization level. The entry's
// individual floor is therefore the minimum of that product over its
// candidates.
//
// Entries do not contribute independently: redundancy elimination,
// subset elimination and partial-redundancy trimming can serve one
// entry's data with another's traffic, but only ever with traffic of
// the same array — Available Section Descriptors are per-array, so
// cross-array subsumption is impossible. Reductions form a separate
// channel: they move combining-tree partial results, never array
// sections, so no data exchange can absorb them (and vice versa).
// Hence entries are grouped by (array, channel) where channel is
// "data" (shift/broadcast/general) or "sum" (reductions), and each
// group contributes the MINIMUM floor of its members once: whatever
// the placement, the first exchange actually executed for that group
// pays at least the cheapest member's floor.
//
// # When the bound is loose (deliberately)
//
//   - A group with several non-overlapping entries (e.g. a left and a
//     right ghost strip of one array) is counted once, not twice,
//     because wide strips can overlap and trimming could then serve
//     one from the other. Soundness is kept; tightness is lost.
//   - Per-exchange payloads round DOWN (floor of the average boundary
//     band, floor of per-processor local extents), where the analytic
//     estimator rounds up, so the bound never exceeds what the
//     estimator or the simulator charges on uneven block boundaries.
//   - Loops with non-constant bounds make executions and payloads
//     unknowable at compile time; affected candidates (or entries)
//     contribute zero rather than a guess.
//   - On a single processor nothing ever crosses a boundary and the
//     bound is exactly zero.
//
// The soundness obligation — bound ≤ simulated ledger bytes and
// bound ≤ estimated bytes for every benchmark × version and for the
// random-program corpus — is enforced by tests in internal/bench.
package bound

import (
	"fmt"
	"sort"

	"gcao/internal/asd"
	"gcao/internal/core"
	"gcao/internal/sem"
)

// Term is one (array, channel) group's contribution to the bound.
type Term struct {
	// Array is the distributed array whose traffic the term floors.
	Array string `json:"array"`
	// Channel is "data" for section-moving communication (NNC,
	// broadcast, general) or "sum" for reduction partials.
	Channel string `json:"channel"`
	// Bytes is the group floor: the cheapest member entry's minimal
	// executions × payload over its candidate placements.
	Bytes float64 `json:"bytes"`
	// Entries counts the communication entries sharing this floor.
	Entries int `json:"entries"`
	// Level and Execs describe the candidate achieving the floor: the
	// vectorization level and the number of times it executes.
	Level int     `json:"level"`
	Execs float64 `json:"execs"`
}

// Bound is the program's communication lower bound.
type Bound struct {
	// TotalBytes is the sum of the per-group floors: no placement of
	// this analysis moves fewer bytes.
	TotalBytes float64 `json:"total_bytes"`
	// Procs is the processor count the bound was derived for.
	Procs int `json:"procs"`
	// Terms lists the per-(array, channel) contributions, sorted by
	// array then channel.
	Terms []Term `json:"terms,omitempty"`
}

// Gap returns the optimality-gap ratio actual/bound (how many times
// the bound a placement moves). A zero bound — nothing provably needs
// to move — yields 0, meaning "no gap measurable".
func (b Bound) Gap(actualBytes float64) float64 {
	if b.TotalBytes <= 0 {
		return 0
	}
	return actualBytes / b.TotalBytes
}

// PctOfOptimal returns bound/actual as a percentage: 100 means the
// placement is provably optimal, 25 means it moves 4× the floor. Zero
// actual traffic with a zero bound is reported as 100.
func (b Bound) PctOfOptimal(actualBytes float64) float64 {
	if actualBytes <= 0 {
		if b.TotalBytes <= 0 {
			return 100
		}
		return 0
	}
	return b.TotalBytes / actualBytes * 100
}

func (t Term) String() string {
	return fmt.Sprintf("%s/%s >= %.0fB (x%g execs at level %d, %d entries)",
		t.Array, t.Channel, t.Bytes, t.Execs, t.Level, t.Entries)
}

// Compute derives the lower bound of an analyzed routine. Unknowable
// quantities degrade the bound toward zero, never upward, so the
// result is sound for every placement strategy.
func Compute(a *core.Analysis) Bound {
	p := a.Unit.Grid.NumProcs()
	out := Bound{Procs: p}
	if p <= 1 {
		return out // a single processor never communicates
	}
	type groupKey struct{ array, channel string }
	type groupMin struct {
		bytes   float64
		level   int
		execs   float64
		entries int
		found   bool
	}
	groups := map[groupKey]*groupMin{}
	for _, e := range a.CommEntries() {
		channel := "data"
		if e.Kind == core.KindReduce {
			channel = "sum"
		}
		key := groupKey{e.Array, channel}
		g := groups[key]
		if g == nil {
			g = &groupMin{}
			groups[key] = g
		}
		g.entries++
		bytes, level, execs, ok := entryFloor(a, e)
		if !ok {
			// An entry whose floor is unknowable could, for all we can
			// prove, be served for free — the whole group's floor
			// collapses to zero.
			g.bytes, g.found = 0, true
			continue
		}
		if !g.found || bytes < g.bytes {
			g.bytes, g.level, g.execs, g.found = bytes, level, execs, true
		}
	}
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].array != keys[j].array {
			return keys[i].array < keys[j].array
		}
		return keys[i].channel < keys[j].channel
	})
	for _, k := range keys {
		g := groups[k]
		out.Terms = append(out.Terms, Term{
			Array: k.array, Channel: k.channel,
			Bytes: g.bytes, Entries: g.entries,
			Level: g.level, Execs: g.execs,
		})
		out.TotalBytes += g.bytes
	}
	return out
}

// entryFloor returns the minimum over the entry's candidate positions
// of executions × payload. ok is false when every candidate is
// unknowable (symbolic loop bounds all the way down).
func entryFloor(a *core.Analysis, e *core.Entry) (bytes float64, level int, execs float64, ok bool) {
	cands := e.Candidates
	if len(cands) == 0 {
		cands = []core.Position{e.Latest}
	}
	for _, c := range cands {
		if !c.Valid() {
			continue
		}
		ex, exOK := positionExecs(a, c)
		if !exOK {
			continue
		}
		lv := c.Level()
		pay, payOK := payloadFloor(a, e, lv)
		if !payOK {
			continue
		}
		total := ex * float64(pay)
		if !ok || total < bytes {
			bytes, level, execs, ok = total, lv, ex, true
		}
	}
	return bytes, level, execs, ok
}

// positionExecs is the trip product of the loops enclosing a position.
func positionExecs(a *core.Analysis, p core.Position) (float64, bool) {
	execs := 1.0
	for l := p.Block.Loop; l != nil; l = l.Parent {
		trip, ok := a.LoopTrip(l)
		if !ok {
			return 0, false
		}
		if trip <= 0 {
			return 0, true // the position never executes
		}
		execs *= float64(trip)
	}
	return execs, true
}

// payloadFloor is the guaranteed per-exchange byte volume of an entry
// vectorized to the given level. It mirrors the analytic estimator's
// payload model but rounds every partition-dependent quantity DOWN, so
// the floor never exceeds what the estimator or the simulator charges.
func payloadFloor(a *core.Analysis, e *core.Entry, level int) (int, bool) {
	arr := a.Unit.Arrays[e.Array]
	if arr == nil {
		return 0, false
	}
	switch e.Kind {
	case core.KindReduce:
		// One partial result must reach the combining tree.
		return arr.ElemBytes(), true
	case core.KindShift:
		sec := e.SectionAt(a, level)
		rows := stripRowsFloor(a, e, arr, sec)
		bytes := rows * arr.ElemBytes()
		for di, d := range sec.Dims {
			if gridDimOf(arr, di) == e.Map.GridDim && arr.Dist != nil && arr.Dist.Dims[di].Kind != 0 {
				continue // the shifted dimension contributes the strip rows
			}
			n, ok := d.Count()
			if !ok {
				return 0, false
			}
			// A distributed dimension contributes at most its local
			// part; floor, where the estimator ceils.
			if arr.Dist != nil && arr.Dist.Dims[di].Kind != 0 {
				g := arr.Dist.Grid.Shape[arr.Dist.Dims[di].GridDim]
				n = n / g
			}
			if n < 0 {
				n = 0
			}
			bytes *= n
		}
		return bytes, true
	default: // broadcast / general: the whole section must leave its owners
		n, ok := e.SectionAt(a, level).NumElems()
		if !ok {
			return 0, false
		}
		return n * arr.ElemBytes(), true
	}
}

// stripRowsFloor counts the shifted-dimension rows one ghost exchange
// is guaranteed to carry: the floor, over neighbour pairs, of the
// average intersection of the section with each partition-boundary
// band. Symbolic bounds floor to zero (not the mapping width — the
// section might dodge every boundary).
func stripRowsFloor(a *core.Analysis, e *core.Entry, arr *sem.Array, sec asd.SymSection) int {
	ad := -1
	for k := range arr.Lo {
		if gridDimOf(arr, k) == e.Map.GridDim {
			ad = k
			break
		}
	}
	if ad < 0 || ad >= len(sec.Dims) || arr.Dist == nil {
		return 0
	}
	lo, ok1 := sec.Dims[ad].Lo.IsConst()
	hi, ok2 := sec.Dims[ad].Hi.IsConst()
	if !ok1 || !ok2 {
		return 0
	}
	shape := a.Unit.Grid.Shape[e.Map.GridDim]
	if shape <= 1 {
		return 0
	}
	total, pairs := 0, 0
	for c := 0; c < shape; c++ {
		blo, bhi, ok := arr.Dist.LocalRange(ad, c)
		if !ok {
			continue
		}
		var bandLo, bandHi int
		if e.Map.Sign > 0 {
			if c == 0 {
				continue // no lower neighbour to send to
			}
			bandLo, bandHi = blo, min(blo+e.Map.Width-1, bhi)
		} else {
			if c == shape-1 {
				continue // no upper neighbour
			}
			bandLo, bandHi = max(bhi-e.Map.Width+1, blo), bhi
		}
		pairs++
		l, h := max(bandLo, lo), min(bandHi, hi)
		if l <= h {
			total += h - l + 1
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / pairs
}

// gridDimOf returns the grid dimension an array dimension is
// distributed onto, or −1.
func gridDimOf(arr *sem.Array, dim int) int {
	if arr.Dist == nil || arr.Dist.Dims[dim].Kind == 0 {
		return -1
	}
	return arr.Dist.Dims[dim].GridDim
}
