package core

import (
	"fmt"

	"gcao/internal/cfg"
)

// The general placement-selection problem — pick one candidate
// position per reference minimizing total message cost — is NP-hard
// (Claim 6.1: an approximation-preserving reduction from chromatic
// number), which is why the compiler uses the greedy heuristic of
// Fig. 9(g). For small programs an exhaustive search over the
// candidate assignment space is feasible; PlaceOptimal implements it
// so the test suite and the ablation benchmarks can measure how close
// the greedy choice gets.

// DynamicMessages estimates the total number of communication
// operations executed at run time under a placement: each group
// counts once per execution of its position (the product of the
// enclosing loops' trip counts).
func (a *Analysis) DynamicMessages(res *Result) (float64, error) {
	total := 0.0
	for _, g := range res.Groups {
		execs, err := a.positionExecs(g.Pos)
		if err != nil {
			return 0, err
		}
		total += execs
	}
	return total, nil
}

func (a *Analysis) positionExecs(p Position) (float64, error) {
	execs := 1.0
	for l := p.Block.Loop; l != nil; l = l.Parent {
		trip, ok := a.LoopTrip(l)
		if !ok {
			return 0, fmt.Errorf("core: loop %q has non-constant bounds", l.Var())
		}
		execs *= float64(trip)
	}
	return execs, nil
}

// PlaceOptimal exhaustively searches the candidate assignment space
// for the placement minimizing the dynamic message count, grouping
// co-located compatible entries exactly as the greedy placer would.
// It fails when the space exceeds maxCombos assignments. Redundant
// entries are eliminated first (with the same global procedure the
// greedy placer uses), so the search covers the §4.7 choice step.
func (a *Analysis) PlaceOptimal(opts Options, maxCombos int) (*Result, error) {
	// Run the global pipeline once to obtain the post-elimination
	// entry set and attachments.
	ref, err := a.Place(Options{
		Version:               VersionCombine,
		CombineThresholdBytes: opts.CombineThresholdBytes,
		MaxHullBlowup:         opts.MaxHullBlowup,
		DisableSubsetElim:     opts.DisableSubsetElim,
	})
	if err != nil {
		return nil, err
	}
	var live []*Entry
	for _, e := range a.CommEntries() {
		if ref.Redundant[e] == nil {
			live = append(live, e)
		}
	}
	attached := map[*Entry][]*Entry{}
	for e, by := range ref.Redundant {
		root := by
		for ref.Redundant[root] != nil {
			root = ref.Redundant[root]
		}
		attached[root] = append(attached[root], e)
	}
	// Candidate sets constrained by attachments.
	cands := make([][]Position, len(live))
	combos := 1
	for i, e := range live {
		set := map[Position]int{}
		for _, p := range e.Candidates {
			set[p]++
		}
		need := 1
		for _, r := range attached[e] {
			need++
			for _, p := range r.Candidates {
				if _, ok := set[p]; ok {
					set[p]++
				}
			}
		}
		for _, p := range e.Candidates {
			if set[p] == need {
				cands[i] = append(cands[i], p)
			}
		}
		if len(cands[i]) == 0 {
			cands[i] = []Position{e.Latest}
		}
		combos *= len(cands[i])
		if combos > maxCombos {
			return nil, fmt.Errorf("core: optimal search space %d exceeds limit %d", combos, maxCombos)
		}
	}

	assign := make([]int, len(live))
	best := make([]int, len(live))
	bestCost := -1.0
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(live) {
			cost, err := a.assignmentCost(live, assign, cands, opts)
			if err != nil {
				return err
			}
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				copy(best, assign)
			}
			return nil
		}
		for k := range cands[i] {
			assign[i] = k
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}

	// Materialize the best assignment as a Result.
	res := &Result{Analysis: a, Version: VersionCombine, Redundant: ref.Redundant, PosOf: map[*Entry]Position{}}
	byPos := map[Position][]*Entry{}
	for i, e := range live {
		byPos[cands[i][best[i]]] = append(byPos[cands[i][best[i]]], e)
	}
	for _, p := range a.sortedPosList(byPos) {
		for _, members := range a.partition(byPos[p], p, opts) {
			var att []*Entry
			for _, m := range members {
				att = append(att, attached[m]...)
			}
			res.addGroup(p, members, att)
		}
	}
	a.sortGroups(res)
	return res, nil
}

// assignmentCost evaluates one candidate assignment: co-located
// compatible entries share a message.
func (a *Analysis) assignmentCost(live []*Entry, assign []int, cands [][]Position, opts Options) (float64, error) {
	byPos := map[Position][]*Entry{}
	for i, e := range live {
		p := cands[i][assign[i]]
		byPos[p] = append(byPos[p], e)
	}
	total := 0.0
	for p, es := range byPos {
		execs, err := a.positionExecs(p)
		if err != nil {
			return 0, err
		}
		total += execs * float64(len(a.partition(es, p, opts)))
	}
	return total, nil
}

// partition groups co-located entries into combinable sets with the
// same first-fit rule the greedy placer uses.
func (a *Analysis) partition(es []*Entry, p Position, opts Options) [][]*Entry {
	var groups [][]*Entry
	for _, e := range es {
		placed := false
		if !opts.DisableCombining {
			for gi := range groups {
				ok := true
				for _, m := range groups[gi] {
					if !a.canCombine(e, m, p.Level(), opts) {
						ok = false
						break
					}
				}
				if ok && a.groupFits(groups[gi], e, p.Level(), opts) {
					groups[gi] = append(groups[gi], e)
					placed = true
					break
				}
			}
		}
		if !placed {
			groups = append(groups, []*Entry{e})
		}
	}
	return groups
}

// loopOf is a small helper for tests.
func (a *Analysis) LoopOfBlock(b *cfg.Block) *cfg.Loop { return b.Loop }
