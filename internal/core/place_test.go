package core_test

import (
	"testing"

	"gcao/internal/core"
)

// gravityKernel is a Fig. 1 shaped kernel: two fields exchanged in the
// same directions plus adjacent global sums.
const gravityKernel = `
routine grav(n, steps)
real g(n, n, n)
real glast(n, n), w1(n, n), w2(n, n)
real s1, s2, t1, t2
!hpf$ distribute (*, block, block) :: g
!hpf$ distribute (block, block) :: glast, w1, w2
do j = 1, n
do k = 1, n
glast(j, k) = 0
do i = 1, n
g(i, j, k) = i + j + k
enddo
enddo
enddo
do it = 1, steps
do i = 2, n - 1
do j = 2, n - 1
do k = 2, n - 1
w1(j, k) = g(i, j - 1, k) + g(i, j + 1, k)
enddo
enddo
do j = 2, n - 1
do k = 2, n - 1
w2(j, k) = glast(j - 1, k) + glast(j + 1, k)
enddo
enddo
s1 = sum(g(i, 1, 1:n))
s2 = sum(g(i, n, 1:n))
do j = 2, n - 1
do k = 2, n - 1
w1(j, k) = w1(j, k) + 0.01 * (s1 + s2)
enddo
enddo
t1 = sum(glast(1, 1:n))
t2 = sum(glast(n, 1:n))
do j = 2, n - 1
do k = 2, n - 1
glast(j, k) = g(i, j, k) + 0.01 * (t1 + t2)
enddo
enddo
do j = 2, n - 1
do k = 2, n - 1
g(i, j, k) = g(i, j, k) + 0.25 * (w1(j, k) + w2(j, k))
enddo
enddo
enddo
enddo
end
`

// TestGravityCombining checks the Fig. 1 behaviour: the 3-d field's
// plane exchanges combine with the 2-d saved plane's, and adjacent
// reductions merge into one combined message per set.
func TestGravityCombining(t *testing.T) {
	a := analyze(t, gravityKernel, map[string]int{"n": 12, "steps": 2}, 4)

	orig := place(t, a, core.VersionOrig)
	comb := place(t, a, core.VersionCombine)

	if got := orig.Count(core.KindShift); got != 4 {
		t.Errorf("orig NNC = %d, want 4 (2 fields x 2 directions)", got)
	}
	if got := orig.Count(core.KindReduce); got != 4 {
		t.Errorf("orig SUM = %d, want 4", got)
	}
	if got := comb.Count(core.KindShift); got != 2 {
		for _, g := range comb.Groups {
			t.Logf("%v", g)
		}
		t.Errorf("comb NNC = %d, want 2 ({g,glast} per direction)", got)
	}
	if got := comb.Count(core.KindReduce); got != 2 {
		t.Errorf("comb SUM = %d, want 2 (one set per field)", got)
	}
	// Each combined exchange carries both arrays.
	for _, g := range comb.Groups {
		if g.Kind != core.KindShift {
			continue
		}
		arrays := map[string]bool{}
		for _, e := range g.Entries {
			arrays[e.Array] = true
		}
		if !arrays["g"] || !arrays["glast"] {
			t.Errorf("group %v does not combine g with glast", g)
		}
	}
}

// TestReduceSinking checks §6.2: adjacent reductions sink to a common
// point and combine, but never past a use of their result.
func TestReduceSinking(t *testing.T) {
	src := `
routine red(n)
real g(n, n)
real s1, s2, s3, x
!hpf$ distribute (block, block) :: g
do i = 1, n
do j = 1, n
g(i, j) = i + j
enddo
enddo
s1 = sum(g(1, 1:n))
s2 = sum(g(2, 1:n))
x = s1 + 1
s3 = sum(g(3, 1:n))
end
`
	a := analyze(t, src, map[string]int{"n": 8}, 4)
	comb := place(t, a, core.VersionCombine)
	// s1 and s2 combine (s1 may sink past s2's statement, which does
	// not read it); s3 is separated by the use of s1.
	if got := comb.Count(core.KindReduce); got != 2 {
		for _, g := range comb.Groups {
			t.Logf("%v at %v", g, g.Pos)
		}
		t.Fatalf("reduce groups = %d, want 2", got)
	}
	for _, g := range comb.Groups {
		if g.Kind == core.KindReduce && len(g.Entries) == 2 {
			return
		}
	}
	t.Error("expected one combined group of 2 reductions")
}

// TestThresholdAblation: a tiny combining threshold forbids combining.
func TestThresholdAblation(t *testing.T) {
	a := analyze(t, fig3ScalarizedSrc, map[string]int{"n": 64}, 4)
	normal, err := a.Place(core.Options{Version: core.VersionCombine})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := a.Place(core.Options{Version: core.VersionCombine, CombineThresholdBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if normal.TotalMessages() != 1 || tiny.TotalMessages() != 2 {
		t.Errorf("threshold ablation: normal=%d tiny=%d, want 1/2",
			normal.TotalMessages(), tiny.TotalMessages())
	}
}

// TestDisableCombining keeps global placement but one message per
// entry.
func TestDisableCombining(t *testing.T) {
	a := analyze(t, fig3ScalarizedSrc, map[string]int{"n": 64}, 4)
	res, err := a.Place(core.Options{Version: core.VersionCombine, DisableCombining: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMessages() != 2 {
		t.Errorf("messages = %d, want 2 without combining", res.TotalMessages())
	}
}

// TestSubsetElimAblation: §4.5 is more than pruning — discarding the
// early, small CommSets is what lets redundancy elimination remove an
// entry *completely* (the b1 story of §4.6). Without it, b1 keeps its
// early positions and survives as an extra message on Fig. 4; on
// simpler codes the counts agree.
func TestSubsetElimAblation(t *testing.T) {
	run := func(src string, n int) (on, off int) {
		a := analyze(t, src, map[string]int{"n": n}, 4)
		resOn, err := a.Place(core.Options{Version: core.VersionCombine})
		if err != nil {
			t.Fatal(err)
		}
		resOff, err := a.Place(core.Options{Version: core.VersionCombine, DisableSubsetElim: true})
		if err != nil {
			t.Fatal(err)
		}
		return resOn.TotalMessages(), resOff.TotalMessages()
	}
	if on, off := run(fig3ScalarizedSrc, 64); on != 1 || off != 1 {
		t.Errorf("fig3: on=%d off=%d, want 1/1", on, off)
	}
	if on, off := run(fig4Src, 16); on != 1 || off <= on {
		t.Errorf("fig4: on=%d off=%d; disabling subset elimination should cost extra messages", on, off)
	}
}

// TestGreedyVsOptimal: on the running example and the Fig. 3 codes the
// greedy heuristic must match the exhaustive optimum.
func TestGreedyVsOptimal(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		n    int
	}{
		{"fig3", fig3ScalarizedSrc, 64},
		{"fig3fused", fig3FusedSrc, 64},
		{"fig4", fig4Src, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := analyze(t, tc.src, map[string]int{"n": tc.n}, 4)
			greedy, err := a.Place(core.Options{Version: core.VersionCombine})
			if err != nil {
				t.Fatal(err)
			}
			optimal, err := a.PlaceOptimal(core.Options{Version: core.VersionCombine}, 200000)
			if err != nil {
				t.Fatal(err)
			}
			gd, err := a.DynamicMessages(greedy)
			if err != nil {
				t.Fatal(err)
			}
			od, err := a.DynamicMessages(optimal)
			if err != nil {
				t.Fatal(err)
			}
			if gd > od {
				t.Errorf("greedy dynamic messages %.0f exceed optimal %.0f", gd, od)
			}
			if od > gd {
				t.Errorf("exhaustive search found %.0f worse than greedy %.0f — search bug", od, gd)
			}
		})
	}
}

// TestCandidatesOrdered: every entry's candidate list runs from
// Earliest to Latest along the dominator chain.
func TestCandidatesOrdered(t *testing.T) {
	a := analyze(t, fig4Src, map[string]int{"n": 16}, 4)
	for _, e := range a.CommEntries() {
		if len(e.Candidates) == 0 {
			t.Fatalf("%v has no candidates", e)
		}
		if e.Candidates[0] != e.Earliest {
			t.Errorf("%v: first candidate %v != earliest %v", e, e.Candidates[0], e.Earliest)
		}
		if e.Candidates[len(e.Candidates)-1] != e.Latest {
			t.Errorf("%v: last candidate %v != latest %v", e, e.Candidates[len(e.Candidates)-1], e.Latest)
		}
	}
}

// TestBcastClassification: a scalar read of a distributed element is a
// broadcast; wrap-around copies are general patterns, not NNC.
func TestBcastClassification(t *testing.T) {
	src := `
routine b(n)
real a(n)
real x
!hpf$ distribute (block) :: a
do i = 1, n
a(i) = i
enddo
x = a(1)
a(1) = a(n)
end
`
	a := analyze(t, src, map[string]int{"n": 16}, 4)
	var kinds []core.CommKind
	for _, e := range a.CommEntries() {
		kinds = append(kinds, e.Kind)
	}
	hasBcast, hasGeneral := false, false
	for _, k := range kinds {
		if k == core.KindBcast {
			hasBcast = true
		}
		if k == core.KindGeneral {
			hasGeneral = true
		}
	}
	if !hasBcast {
		t.Errorf("scalar = a(1) should classify as broadcast: %v", kinds)
	}
	if !hasGeneral {
		t.Errorf("a(1) = a(n) wrap copy should classify as general: %v", kinds)
	}
}

// TestAlignedAccessIsLocal: perfectly aligned reads need no entries.
func TestAlignedAccessIsLocal(t *testing.T) {
	src := `
routine loc(n)
real a(n, n), b(n, n)
!hpf$ distribute (block, block) :: a, b
do i = 1, n
do j = 1, n
b(i, j) = a(i, j) * 2
enddo
enddo
end
`
	a := analyze(t, src, map[string]int{"n": 16}, 4)
	if got := len(a.CommEntries()); got != 0 {
		t.Errorf("aligned access produced %d comm entries", got)
	}
}

// TestReplicatedArrayIsLocal: reads of replicated data never
// communicate.
func TestReplicatedArrayIsLocal(t *testing.T) {
	src := `
routine rep(n)
real a(n, n), r(n)
!hpf$ distribute (block, block) :: a
do i = 2, n
do j = 1, n
a(i, j) = r(i - 1) + r(i)
enddo
enddo
end
`
	a := analyze(t, src, map[string]int{"n": 16}, 4)
	if got := len(a.CommEntries()); got != 0 {
		t.Errorf("replicated reads produced %d comm entries", got)
	}
}

// TestDiagonalCoalescing: a pure diagonal access rides augmented axis
// exchanges (synthesized when absent), reproducing pHPF's message
// coalescing (§2.2).
func TestDiagonalCoalescing(t *testing.T) {
	src := `
routine diag(n)
real a(n, n), b(n, n)
!hpf$ distribute (block, block) :: a, b
do i = 1, n
do j = 1, n
a(i, j) = i * j
enddo
enddo
do i = 2, n
do j = 2, n
b(i, j) = a(i - 1, j - 1)
enddo
enddo
end
`
	a := analyze(t, src, map[string]int{"n": 16}, 4)
	es := a.CommEntries()
	if len(es) != 2 {
		for _, e := range es {
			t.Logf("%v map=%v", e, e.Map)
		}
		t.Fatalf("diagonal should coalesce into 2 axis exchanges, got %d entries", len(es))
	}
	dims := map[int]bool{}
	for _, e := range es {
		if e.Kind != core.KindShift {
			t.Errorf("%v: want shift", e)
		}
		dims[e.Map.GridDim] = true
	}
	if !dims[0] || !dims[1] {
		t.Error("expected one synthesized exchange per grid dimension")
	}
}

// TestCyclicShiftIsGeneral: a constant-offset access on a CYCLIC
// dimension touches every processor, so it must classify as a general
// pattern, not NNC.
func TestCyclicShiftIsGeneral(t *testing.T) {
	src := `
routine cyc(n)
real a(n), b(n)
!hpf$ distribute (cyclic) :: a, b
do i = 1, n
a(i) = i
enddo
do i = 2, n
b(i) = a(i - 1)
enddo
end
`
	a := analyze(t, src, map[string]int{"n": 16}, 4)
	es := a.CommEntries()
	if len(es) != 1 {
		t.Fatalf("entries = %d", len(es))
	}
	if es[0].Kind != core.KindGeneral {
		t.Errorf("cyclic offset access classified as %v, want GEN", es[0].Kind)
	}
}
