package core_test

import (
	"testing"

	"gcao/internal/core"
	"gcao/internal/parser"
	"gcao/internal/sem"
)

// analyze compiles a mini-HPF routine through the full analysis
// pipeline.
func analyze(t *testing.T, src string, params map[string]int, procs int) *core.Analysis {
	t.Helper()
	r, err := parser.ParseRoutine(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u, err := sem.Analyze(r, params, sem.Options{Procs: procs})
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	a, err := core.NewAnalysis(u)
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	return a
}

func place(t *testing.T, a *core.Analysis, v core.Version) *core.Result {
	t.Helper()
	res, err := a.Place(core.Options{Version: v})
	if err != nil {
		t.Fatalf("place %v: %v", v, err)
	}
	return res
}

// fig4Src is the running example of Fig. 4: a 2-d BLOCK-distributed
// code with strided array statements, an IF/ELSE, and two inner loops
// reading shifted sections.
const fig4Src = `
routine fig4(n)
real a(n,n), b(n,n), c(n,n), d(n,n)
real cond
!hpf$ processors p(4)
!hpf$ distribute (block,*) :: a, b, c, d
b(1:n, 1:n:2) = 1
b(1:n, 2:n:2) = 2
if (cond > 0) then
a(1:n, 1:n) = 3
else
a(1:n, 1:n) = d(1:n, 1:n)
endif
do i = 2, n
do j = 1, n, 2
c(i, j) = a(i-1, j) + b(i-1, j)
enddo
do j = 1, n
c(i, j) = a(i-1, j) + b(i-1, j)
enddo
enddo
end
`

// TestRunningExampleFig4 checks the analysis and optimization steps on
// the paper's running example: four NNC entries (a1, b1, a2, b2), the
// strided b sections distinguished by the dependence tester, global
// redundancy elimination removing a1 and b1 (which earliest placement
// cannot do for b1, §4.6), and greedy combining yielding one message.
func TestRunningExampleFig4(t *testing.T) {
	a := analyze(t, fig4Src, map[string]int{"n": 16}, 4)

	entries := a.CommEntries()
	if len(entries) != 4 {
		for _, e := range entries {
			t.Logf("entry: %v earliest=%v latest=%v", e, e.Earliest, e.Latest)
		}
		t.Fatalf("want 4 comm entries (a1,b1,a2,b2), got %d", len(entries))
	}
	for _, e := range entries {
		if e.Kind != core.KindShift {
			t.Errorf("%v: want NNC, got %v", e, e.Kind)
		}
		if e.CommLevel != 0 {
			t.Errorf("%v: want CommLevel 0 (hoistable above the i loop), got %d", e, e.CommLevel)
		}
	}

	// The combined version must communicate once: {a2, b2} combined,
	// with a1, b1 eliminated as redundant.
	comb := place(t, a, core.VersionCombine)
	if got := comb.TotalMessages(); got != 1 {
		for _, g := range comb.Groups {
			t.Logf("group: %v", g)
		}
		t.Fatalf("comb: want 1 combined message, got %d", got)
	}
	if len(comb.Redundant) != 2 {
		t.Errorf("comb: want 2 entries eliminated as redundant (a1, b1), got %d", len(comb.Redundant))
	}
	g := comb.Groups[0]
	if len(g.Entries) != 2 {
		t.Errorf("comb: want the a and b messages combined (2 members), got %d", len(g.Entries))
	}

	// The baseline vectorizes per reference with per-statement
	// coalescing only: both inner statements fetch a and b separately
	// = 4 messages.
	orig := place(t, a, core.VersionOrig)
	if got := orig.TotalMessages(); got != 4 {
		for _, g := range orig.Groups {
			t.Logf("group: %v members=%d", g, len(g.Entries))
		}
		t.Fatalf("orig: want 4 messages, got %d", got)
	}

	// Earliest placement cannot eliminate b1 (Earliest(b1) = stmt 1 ≠
	// Earliest(b2) = stmt 2), so nored keeps 3 messages: a (a1
	// subsumed by a2 at the same φ point), b1, b2.
	nored := place(t, a, core.VersionRedund)
	if got := nored.TotalMessages(); got != 3 {
		for _, g := range nored.Groups {
			t.Logf("group: %v at %v", g, g.Pos)
		}
		t.Fatalf("nored: want 3 messages, got %d", got)
	}
}

// TestFig4EarliestPoints checks the specific Earliest values the paper
// derives: Earliest(a1) = Earliest(a2) = the endif join (statement 7),
// and Earliest(b1) after statement 1 vs Earliest(b2) after statement 2.
func TestFig4EarliestPoints(t *testing.T) {
	a := analyze(t, fig4Src, map[string]int{"n": 16}, 4)
	var aPos, bPos []core.Position
	for _, e := range a.CommEntries() {
		switch e.Array {
		case "a":
			aPos = append(aPos, e.Earliest)
		case "b":
			bPos = append(bPos, e.Earliest)
		}
	}
	if len(aPos) != 2 || len(bPos) != 2 {
		t.Fatalf("want 2 a-entries and 2 b-entries, got %d/%d", len(aPos), len(bPos))
	}
	if aPos[0] != aPos[1] {
		t.Errorf("Earliest(a1) = %v should equal Earliest(a2) = %v (the endif join)", aPos[0], aPos[1])
	}
	if bPos[0] == bPos[1] {
		t.Errorf("Earliest(b1) and Earliest(b2) must differ (statements 1 vs 2), both %v", bPos[0])
	}
}

// Fig. 3: semantically equivalent codes. The scalarized form (separate
// loops per array statement) defeats earliest-placement combining but
// not the global algorithm.
const fig3ScalarizedSrc = `
routine fig3(n)
real a(n), b(n), c(n)
!hpf$ processors p(4)
!hpf$ distribute (block) :: a, b, c
a(1:n) = 3
b(1:n) = 4
c(2:n) = a(1:n-1) + b(1:n-1)
end
`

const fig3FusedSrc = `
routine fig3f(n)
real a(n), b(n), c(n)
!hpf$ processors p(4)
!hpf$ distribute (block) :: a, b, c
do i = 1, n
a(i) = 3
b(i) = 4
enddo
do i = 2, n
c(i) = a(i-1) + b(i-1)
enddo
end
`

// TestSyntaxSensitivity reproduces Fig. 3: under earliest placement
// the two messages combine only in the fused form; the global
// algorithm combines them in both forms.
func TestSyntaxSensitivity(t *testing.T) {
	for _, tc := range []struct {
		name          string
		src           string
		earliestCount int // messages under earliest placement (+ same-point combining)
	}{
		{"scalarized", fig3ScalarizedSrc, 2},
		{"fused", fig3FusedSrc, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := analyze(t, tc.src, map[string]int{"n": 64}, 4)
			if got := len(a.CommEntries()); got != 2 {
				for _, e := range a.CommEntries() {
					t.Logf("entry %v earliest=%v latest=%v", e, e.Earliest, e.Latest)
				}
				t.Fatalf("want 2 comm entries, got %d", got)
			}

			comb := place(t, a, core.VersionCombine)
			if got := comb.TotalMessages(); got != 1 {
				for _, g := range comb.Groups {
					t.Logf("group %v", g)
				}
				t.Fatalf("comb: want 1 combined message regardless of syntax, got %d", got)
			}

			// Earliest placement + combining pass: messages combine
			// only when their earliest points coincide.
			nored := place(t, a, core.VersionRedund)
			positions := map[core.Position]int{}
			for _, g := range nored.Groups {
				positions[g.Pos]++
			}
			if got := len(positions); got != tc.earliestCount {
				for _, g := range nored.Groups {
					t.Logf("group %v at %v", g, g.Pos)
				}
				t.Fatalf("earliest placement: want %d distinct points, got %d", tc.earliestCount, got)
			}
		})
	}
}
