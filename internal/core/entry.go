// Package core implements the paper's contribution: global analysis
// and optimization of communication placement. For every non-local
// array reference it derives a communication entry with its earliest
// and latest safe positions (§4.2–4.3), marks the dominator-path
// candidate set (§4.4), performs subset elimination (§4.5) and global
// redundancy elimination over ASDs (§4.6), and finally chooses
// positions with the greedy combining heuristic (§4.7). Baseline
// strategies reproducing the paper's "orig" and "nored" compiler
// versions are provided for the evaluation harness.
package core

import (
	"fmt"
	"sort"
	"strings"

	"gcao/internal/asd"
	"gcao/internal/ast"
	"gcao/internal/cfg"
	"gcao/internal/dist"
	"gcao/internal/lin"
	"gcao/internal/sem"
	"gcao/internal/ssa"
)

// Position identifies a point in the CFG where communication code can
// be inserted: immediately after statement Block.Stmts[After], or at
// the top of the block when After is −1. The paper's "communication is
// placed at d means immediately after d" (§4.1).
type Position struct {
	Block *cfg.Block
	After int
}

// Valid reports whether the position indexes its block consistently.
func (p Position) Valid() bool {
	return p.Block != nil && p.After >= -1 && p.After < len(p.Block.Stmts)
}

// Level returns the loop nesting level of the position.
func (p Position) Level() int { return p.Block.NL() }

func (p Position) String() string {
	if p.Block == nil {
		return "<nil>"
	}
	if p.After < 0 {
		return fmt.Sprintf("B%d.top", p.Block.ID)
	}
	return fmt.Sprintf("B%d.after(%s)", p.Block.ID, p.Block.Stmts[p.After].Label())
}

// CommKind classifies the communication needed by a use.
type CommKind int

const (
	// KindNone marks accesses that are purely local (owner-computes
	// alignment) or reads of replicated data.
	KindNone CommKind = iota
	// KindShift is nearest-neighbour communication (NNC).
	KindShift
	// KindReduce is a global reduction.
	KindReduce
	// KindBcast replicates one owner's data everywhere.
	KindBcast
	// KindGeneral is any other pattern (transpose, gather).
	KindGeneral
)

func (k CommKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindShift:
		return "NNC"
	case KindReduce:
		return "SUM"
	case KindBcast:
		return "BCAST"
	case KindGeneral:
		return "GEN"
	}
	return fmt.Sprintf("CommKind(%d)", int(k))
}

// Entry is one communication requirement: a non-local use together
// with the analysis results that drive placement.
type Entry struct {
	ID    int
	Array string
	Kind  CommKind
	// Uses are the SSA uses this entry serves (coalescing can merge
	// several identical references).
	Uses []*ssa.Use
	// Map is the sender→receiver mapping.
	Map asd.Mapping
	// Offsets is the raw per-grid-dim element offset vector for shift
	// communication before diagonal coalescing.
	Offsets []int
	// dims holds the symbolic per-array-dimension section of the
	// reference with all loop variables symbolic; SectionAt expands it
	// for a placement level.
	dims []asd.SymDim

	// CommLevel is the paper's CommLevel(u) (§4.2).
	CommLevel int
	// Latest is the latest safe position (§4.2); Earliest the earliest
	// single dominating def point (§4.3) and its position.
	Latest      Position
	EarliestDef ssa.Def
	Earliest    Position
	// Candidates is the dominator-path candidate set (§4.4), ordered
	// from Earliest to Latest.
	Candidates []Position

	// Coalesced marks diagonal NNC subsumed by axis exchanges; the
	// carriers satisfy this entry's use.
	Coalesced bool
	Carriers  []*Entry

	// Placement results (per Result, reset between strategies):
	// nothing is stored on the entry so one Analysis can be placed
	// under several strategies.
}

// ASDAt returns the entry's Available Section Descriptor as it would
// be communicated at the given loop level.
func (e *Entry) ASDAt(a *Analysis, level int) asd.ASD {
	return asd.ASD{Array: e.Array, Data: e.SectionAt(a, level), Map: e.Map}
}

// String renders the entry for diagnostics.
func (e *Entry) String() string {
	var labels []string
	for _, u := range e.Uses {
		labels = append(labels, u.Stmt.Label())
	}
	return fmt.Sprintf("e%d[%s %s @%s]", e.ID, e.Array, e.Kind, strings.Join(labels, ","))
}

// Use returns the entry's primary use.
func (e *Entry) Use() *ssa.Use { return e.Uses[0] }

// SectionAt returns the section communicated when the entry is placed
// at the given loop level: subscripts over loop variables of loops
// deeper than level are expanded ("message vectorization") using the
// loop bounds; shallower loop variables remain symbolic.
func (e *Entry) SectionAt(a *Analysis, level int) asd.SymSection {
	out := asd.SymSection{Dims: make([]asd.SymDim, len(e.dims))}
	copy(out.Dims, e.dims)
	u := e.Use()
	for li := len(u.Stmt.Loops) - 1; li >= level; li-- {
		loop := u.Stmt.Loops[li]
		lo, hi, step, ok := a.loopBounds(loop)
		if !ok {
			continue // symbolic bounds: leave per-iteration (conservative)
		}
		for di := range out.Dims {
			out.Dims[di] = expandDim(out.Dims[di], loop.Var(), lo, hi, step)
		}
	}
	return out
}

// expandDim expands one loop variable out of a symbolic dimension.
func expandDim(d asd.SymDim, v string, vlo, vhi, vstep int) asd.SymDim {
	cLo := d.Lo.CoefOf(v)
	cHi := d.Hi.CoefOf(v)
	if cLo == 0 && cHi == 0 {
		return d
	}
	if vstep < 1 {
		vstep = 1
	}
	sub := func(f lin.Form, c int, val int) lin.Form {
		// f with v -> val: f - c*v + c*val
		return f.Add(lin.Var(v).Scale(-c)).AddConst(c * val)
	}
	var lo, hi lin.Form
	if cLo >= 0 {
		lo = sub(d.Lo, cLo, vlo)
	} else {
		lo = sub(d.Lo, cLo, vhi)
	}
	if cHi >= 0 {
		hi = sub(d.Hi, cHi, vhi)
	} else {
		hi = sub(d.Hi, cHi, vlo)
	}
	step := d.Step
	if d.Lo.Equal(d.Hi) && cLo == cHi {
		// A point dimension indexed by the loop: stride follows the
		// loop step and coefficient.
		step = abs(cLo) * vstep
		if step == 0 {
			step = 1
		}
	} else {
		// Already a range: expansion makes it denser; a unit stride
		// hull is the safe single-descriptor approximation.
		step = 1
	}
	return asd.SymDim{Lo: lo, Hi: hi, Step: step}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// BytesAt estimates the per-processor message volume in bytes when the
// entry is placed at the given level. Unknown sizes return ok=false;
// the caller then applies the paper's rule of thumb (NNC and
// reductions are assumed combinable).
func (e *Entry) BytesAt(a *Analysis, level int) (int, bool) {
	return e.BytesForSection(a, e.SectionAt(a, level))
}

// BytesForSection estimates the per-processor message volume for an
// explicit section (used by the partial-redundancy extension, which
// trims the communicated section below SectionAt's).
func (e *Entry) BytesForSection(a *Analysis, sec asd.SymSection) (int, bool) {
	arr := a.Unit.Arrays[e.Array]
	if arr == nil {
		return 0, false
	}
	switch e.Kind {
	case KindReduce:
		// The global combine moves one partial result per reduction.
		return arr.ElemBytes(), true
	case KindShift:
		// Ghost strip: the section's rows inside the partition-boundary
		// bands of the shifted grid dim (at most Width per boundary)
		// times the local extent of every other dimension.
		bytes := a.stripRows(e, arr, sec) * arr.ElemBytes()
		for di, d := range sec.Dims {
			if a.gridDimOfArrayDim(arr, di) == e.Map.GridDim && arr.Dist != nil && arr.Dist.Dims[di].Kind != 0 {
				continue // the shifted dimension contributes the strip rows
			}
			n, ok := d.Count()
			if !ok {
				return 0, false
			}
			// A distributed dimension contributes only its local part.
			if arr.Dist != nil && arr.Dist.Dims[di].Kind != 0 {
				g := arr.Dist.Grid.Shape[arr.Dist.Dims[di].GridDim]
				n = (n + g - 1) / g
			}
			if n < 1 {
				n = 1
			}
			bytes *= n
		}
		return bytes, true
	default:
		n, ok := sec.NumElems()
		if !ok {
			return 0, false
		}
		return n * arr.ElemBytes(), true
	}
}

// stripRows counts the shifted-dimension rows one exchange message
// carries: the average, over neighbour pairs, of the section's
// intersection with each partition-boundary band. With a full-extent
// section this is exactly Map.Width (the classic ghost strip); a
// section trimmed away from the boundaries (partial redundancy)
// contributes nothing. Symbolic bounds fall back to Width.
func (a *Analysis) stripRows(e *Entry, arr *sem.Array, sec asd.SymSection) int {
	// Find the array dim mapped to the shifted grid dim.
	ad := -1
	for k := range arr.Lo {
		if a.gridDimOfArrayDim(arr, k) == e.Map.GridDim {
			ad = k
			break
		}
	}
	if ad < 0 || ad >= len(sec.Dims) || arr.Dist == nil {
		return e.Map.Width
	}
	lo, ok1 := sec.Dims[ad].Lo.IsConst()
	hi, ok2 := sec.Dims[ad].Hi.IsConst()
	if !ok1 || !ok2 {
		return e.Map.Width
	}
	shape := a.Unit.Grid.Shape[e.Map.GridDim]
	if shape <= 1 {
		return 0
	}
	total := 0
	pairs := 0
	for c := 0; c < shape; c++ {
		blo, bhi, ok := arr.Dist.LocalRange(ad, c)
		if !ok {
			continue
		}
		var bandLo, bandHi int
		if e.Map.Sign > 0 {
			if c == 0 {
				continue // no lower neighbour to send to
			}
			bandLo, bandHi = blo, min(blo+e.Map.Width-1, bhi)
		} else {
			if c == shape-1 {
				continue // no upper neighbour
			}
			bandLo, bandHi = max(bhi-e.Map.Width+1, blo), bhi
		}
		pairs++
		l, h := max(bandLo, lo), min(bandHi, hi)
		if l <= h {
			total += h - l + 1
		}
	}
	if pairs == 0 {
		return 0
	}
	// Average rows per neighbour message, rounded up.
	return (total + pairs - 1) / pairs
}

// gridDimOfArrayDim returns the grid dimension an array dimension is
// distributed onto, or −1.
func (a *Analysis) gridDimOfArrayDim(arr *sem.Array, dim int) int {
	if arr.Dist == nil || arr.Dist.Dims[dim].Kind == 0 {
		return -1
	}
	return arr.Dist.Dims[dim].GridDim
}

// buildEntries classifies every SSA use and constructs communication
// entries. Local and replicated accesses yield no entry.
func (a *Analysis) buildEntries() error {
	for _, u := range a.SSA.Uses {
		arr := a.Unit.Arrays[u.Var]
		if arr == nil {
			continue
		}
		e, err := a.classifyUse(u, arr)
		if err != nil {
			return err
		}
		if e == nil {
			continue
		}
		e.ID = len(a.Entries)
		a.Entries = append(a.Entries, e)
	}
	return nil
}

// classifyUse determines the communication kind, mapping and symbolic
// section for one use, or nil when the access is local.
func (a *Analysis) classifyUse(u *ssa.Use, arr *sem.Array) (*Entry, error) {
	dims, err := a.refSection(u.Ref, arr)
	if err != nil {
		return nil, err
	}

	if u.InReduction {
		if arr.Dist == nil {
			return nil, nil // replicated: reduction is local
		}
		return &Entry{
			Array: u.Var,
			Kind:  KindReduce,
			Uses:  []*ssa.Use{u},
			Map:   asd.Mapping{Kind: asd.MapReduce, GridShape: a.Unit.Grid.Shape},
			dims:  dims,
		}, nil
	}
	if arr.Dist == nil {
		return nil, nil // replicated data is always local
	}

	lhs := u.Stmt.Assign.LHS
	lhsArr := a.Unit.Arrays[lhs.Name]
	if lhsArr == nil || lhsArr.Dist == nil {
		// Scalar or replicated target: every processor evaluates the
		// statement, so the distributed operand must be broadcast.
		sig := fmt.Sprintf("bcast:%s:%v", arr.Dist.String(), subsSignature(a, u.Ref))
		return &Entry{
			Array: u.Var,
			Kind:  KindBcast,
			Uses:  []*ssa.Use{u},
			Map:   asd.Mapping{Kind: asd.MapBcast, GridShape: a.Unit.Grid.Shape, Signature: sig},
			dims:  dims,
		}, nil
	}

	// Owner-computes: compare the use's subscript in each distributed
	// dimension against the LHS subscript aligned to the same grid dim.
	offsets := make([]int, a.Unit.Grid.Rank())
	general := false
	for k := range arr.Lo {
		g := a.gridDimOfArrayDim(arr, k)
		if g < 0 {
			continue
		}
		ldim := -1
		for m := range lhsArr.Lo {
			if a.gridDimOfArrayDim(lhsArr, m) == g {
				ldim = m
				break
			}
		}
		if ldim < 0 || len(u.Ref.Subs) == 0 || len(lhs.Subs) == 0 {
			general = true
			break
		}
		if u.Ref.Subs[k].Kind == ast.SubRange || lhs.Subs[ldim].Kind == ast.SubRange {
			general = true
			break
		}
		uf, ok1 := a.Dep.SubForm(u.Ref.Subs[k].X)
		lf, ok2 := a.Dep.SubForm(lhs.Subs[ldim].X)
		if !ok1 || !ok2 {
			general = true
			break
		}
		c, ok := uf.ConstDiff(lf)
		if !ok {
			general = true
			break
		}
		// Constant offsets are neighbour strips only under BLOCK; on a
		// CYCLIC dimension every element's neighbour lives on another
		// processor, so the pattern is a general (whole-set) transfer.
		if c != 0 && arr.Dist.Dims[k].Kind != dist.Block {
			general = true
			break
		}
		// The partitionings must agree for the offset to be a uniform
		// neighbour relation.
		if arr.Lo[k] != lhsArr.Lo[ldim] || arr.Hi[k] != lhsArr.Hi[ldim] {
			general = true
			break
		}
		// Offsets reaching past the neighbour's block (including the
		// wrap-around copies of periodic boundary code) are not NNC.
		procs := a.Unit.Grid.Shape[g]
		blockSize := (arr.Hi[k] - arr.Lo[k] + procs) / procs
		if abs(c) >= blockSize {
			general = true
			break
		}
		offsets[g] = c
	}
	if general {
		sig := fmt.Sprintf("gen:%s->%s:%v", arr.Dist.String(), lhsArr.Dist.String(), subsSignature(a, u.Ref))
		return &Entry{
			Array: u.Var,
			Kind:  KindGeneral,
			Uses:  []*ssa.Use{u},
			Map:   asd.Mapping{Kind: asd.MapGeneral, GridShape: a.Unit.Grid.Shape, Signature: sig},
			dims:  dims,
		}, nil
	}
	allZero := true
	for _, c := range offsets {
		if c != 0 {
			allZero = false
		}
	}
	if allZero {
		return nil, nil // perfectly aligned: local access
	}
	e := &Entry{
		Array:   u.Var,
		Kind:    KindShift,
		Uses:    []*ssa.Use{u},
		Offsets: offsets,
		dims:    dims,
	}
	// Single-axis shifts get their mapping now; diagonals are
	// coalesced into axis exchanges by coalesceDiagonals.
	nz := 0
	axis := 0
	for g, c := range offsets {
		if c != 0 {
			nz++
			axis = g
		}
	}
	if nz == 1 {
		e.Map = shiftMapping(a.Unit.Grid.Shape, axis, offsets[axis])
	}
	return e, nil
}

func shiftMapping(gridShape []int, gridDim, offset int) asd.Mapping {
	sign := 1
	if offset < 0 {
		sign = -1
	}
	return asd.Mapping{
		Kind:      asd.MapShift,
		GridShape: gridShape,
		GridDim:   gridDim,
		Sign:      sign,
		Width:     abs(offset),
	}
}

// refSection builds the symbolic section of a reference.
func (a *Analysis) refSection(r *ast.Ref, arr *sem.Array) ([]asd.SymDim, error) {
	if len(r.Subs) == 0 {
		dims := make([]asd.SymDim, arr.Rank())
		for i := range dims {
			dims[i] = asd.ConstDim(arr.Lo[i], arr.Hi[i], 1)
		}
		return dims, nil
	}
	dims := make([]asd.SymDim, len(r.Subs))
	for i, sub := range r.Subs {
		if sub.Kind == ast.SubExpr {
			f, ok := a.Dep.SubForm(sub.X)
			if !ok {
				// Non-affine subscript: conservatively the whole dim.
				dims[i] = asd.ConstDim(arr.Lo[i], arr.Hi[i], 1)
				continue
			}
			dims[i] = asd.Point(f)
			continue
		}
		lo, hi, step := arr.Lo[i], arr.Hi[i], 1
		var err error
		if sub.Lo != nil {
			lo, err = a.Unit.EvalInt(sub.Lo)
			if err != nil {
				return nil, err
			}
		}
		if sub.Hi != nil {
			hi, err = a.Unit.EvalInt(sub.Hi)
			if err != nil {
				return nil, err
			}
		}
		if sub.Step != nil {
			step, err = a.Unit.EvalInt(sub.Step)
			if err != nil {
				return nil, err
			}
		}
		dims[i] = asd.ConstDim(lo, hi, step)
	}
	return dims, nil
}

// subsSignature canonicalizes subscripts for mapping signatures.
func subsSignature(a *Analysis, r *ast.Ref) string {
	var parts []string
	for _, sub := range r.Subs {
		if sub.Kind == ast.SubRange {
			parts = append(parts, ":")
			continue
		}
		if f, ok := a.Dep.SubForm(sub.X); ok {
			// Canonicalize loop variables positionally so that
			// different nests with the same shape compare equal.
			parts = append(parts, canonForm(f, r))
		} else {
			parts = append(parts, ast.ExprString(sub.X))
		}
	}
	return strings.Join(parts, ",")
}

func canonForm(f lin.Form, r *ast.Ref) string {
	vars := f.Vars()
	sort.Strings(vars)
	var b strings.Builder
	fmt.Fprintf(&b, "%d", f.Const)
	for i, v := range vars {
		fmt.Fprintf(&b, "+%d*v%d", f.CoefOf(v), i)
	}
	return b.String()
}
