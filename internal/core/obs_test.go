package core_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"gcao/internal/core"
	"gcao/internal/obs"
	"gcao/internal/parser"
	"gcao/internal/sem"
)

// renderResult serializes a placement to a canonical string so two
// results can be compared byte for byte.
func renderResult(res *core.Result) string {
	var b strings.Builder
	for _, g := range res.Groups {
		fmt.Fprintf(&b, "group%d %v @%v members=%d attached=%d\n",
			g.ID, g.Kind, g.Pos, len(g.Entries), len(g.Attached))
		for _, e := range g.Entries {
			fmt.Fprintf(&b, "  %v\n", e)
		}
	}
	var redundant []*core.Entry
	for e := range res.Redundant {
		redundant = append(redundant, e)
	}
	sort.Slice(redundant, func(i, j int) bool { return redundant[i].ID < redundant[j].ID })
	for _, e := range redundant {
		fmt.Fprintf(&b, "redundant %v subsumed by %v\n", e, res.Redundant[e])
	}
	return b.String()
}

// TestNilRecorderPlacementIdentical: attaching a recorder must not
// change any placement decision — the instrumented and bare paths have
// to produce byte-identical results under every version.
func TestNilRecorderPlacementIdentical(t *testing.T) {
	for _, v := range []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine} {
		bare := analyze(t, fig4Src, map[string]int{"n": 16}, 4)
		inst := analyze(t, fig4Src, map[string]int{"n": 16}, 4)
		inst.Obs = obs.New()
		got := renderResult(place(t, inst, v))
		want := renderResult(place(t, bare, v))
		if got != want {
			t.Errorf("%v: instrumented placement differs from bare placement:\n--- bare ---\n%s--- instrumented ---\n%s", v, want, got)
		}
	}
}

// TestDecisionLogCoversEveryEntry: every analysis entry — placed,
// subsumed, or coalesced — must produce exactly one decision record per
// placement, and outcomes must agree with the result's structure.
func TestDecisionLogCoversEveryEntry(t *testing.T) {
	a := analyze(t, fig4Src, map[string]int{"n": 16}, 4)
	rec := obs.New()
	a.Obs = rec
	res := place(t, a, core.VersionCombine)

	var decs []obs.Decision
	for _, d := range rec.Decisions() {
		if d.Version == core.VersionCombine.String() {
			decs = append(decs, d)
		}
	}
	if len(decs) != len(a.Entries) {
		t.Fatalf("decision records = %d, want one per entry = %d", len(decs), len(a.Entries))
	}
	seen := map[int]bool{}
	counts := map[string]int{}
	for _, d := range decs {
		if seen[d.Entry] {
			t.Errorf("entry e%d recorded twice", d.Entry)
		}
		seen[d.Entry] = true
		counts[d.Outcome]++
		if d.Outcome == obs.OutcomeSubsumed && d.SubsumedBy < 0 {
			t.Errorf("e%d subsumed without a subsumer", d.Entry)
		}
	}
	if counts[obs.OutcomeSubsumed] != len(res.Redundant) {
		t.Errorf("subsumed records = %d, want %d", counts[obs.OutcomeSubsumed], len(res.Redundant))
	}
	placedEntries := 0
	for _, g := range res.Groups {
		placedEntries += len(g.Entries)
	}
	if counts[obs.OutcomePlaced] != placedEntries {
		t.Errorf("placed records = %d, want %d", counts[obs.OutcomePlaced], placedEntries)
	}
	if counts[obs.OutcomeCoalesced] != len(a.Entries)-len(a.CommEntries()) {
		t.Errorf("coalesced records = %d, want %d", counts[obs.OutcomeCoalesced], len(a.Entries)-len(a.CommEntries()))
	}
}

// TestPlacementCountersConsistent: the recorder's counters must agree
// with the result they describe — in particular the comb identity
// messages = entries − eliminated − merges, the quantity behind the
// Fig. 10(a) deltas.
func TestPlacementCountersConsistent(t *testing.T) {
	a := analyze(t, fig4Src, map[string]int{"n": 16}, 4)
	rec := obs.New()
	a.Obs = rec
	orig := place(t, a, core.VersionOrig)
	comb := place(t, a, core.VersionCombine)
	c := rec.Counters()

	if got := c["place.orig.groups"]; got != int64(orig.TotalMessages()) {
		t.Errorf("place.orig.groups = %d, want %d", got, orig.TotalMessages())
	}
	entries := c["place.comb.entries"]
	elim := c["place.comb.redundancy.eliminated"]
	merges := c["place.comb.combine.merges"]
	if got := entries - elim - merges; got != int64(comb.TotalMessages()) {
		t.Errorf("entries(%d) - eliminated(%d) - merges(%d) = %d, want TotalMessages = %d",
			entries, elim, merges, got, comb.TotalMessages())
	}
	if elim != int64(len(comb.Redundant)) {
		t.Errorf("redundancy.eliminated = %d, want %d", elim, len(comb.Redundant))
	}
	if c["place.comb.greedy.iterations"] <= 0 {
		t.Error("greedy.iterations not counted")
	}
}

// TestAnalysisCountersRecorded: a recorder attached at construction
// time sees the entry discovery counters.
func TestAnalysisCountersRecorded(t *testing.T) {
	rec := obs.New()
	r, err := parser.ParseRoutine(fig4Src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sem.Analyze(r, map[string]int{"n": 16}, sem.Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalysisObs(u, rec)
	if err != nil {
		t.Fatal(err)
	}
	c := rec.Counters()
	if c["analysis.entries"] != int64(len(a.Entries)) {
		t.Errorf("analysis.entries = %d, want %d", c["analysis.entries"], len(a.Entries))
	}
	if c["analysis.comm_entries"] != int64(len(a.CommEntries())) {
		t.Errorf("analysis.comm_entries = %d, want %d", c["analysis.comm_entries"], len(a.CommEntries()))
	}
	names := map[string]bool{}
	for _, s := range rec.Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{"scalarize", "cfg", "dom", "ssa", "dep", "entries", "earliest-latest"} {
		if !names[want] {
			t.Errorf("pipeline span %q not recorded", want)
		}
	}
}
