package core_test

import (
	"testing"

	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/spmd"
)

// partialSrc builds two same-direction reads of a whose vectorized
// sections overlap without either containing the other (rows 0..n-1 vs
// rows 1..n), separated from a's redefinition by the timestep loop.
const partialSrc = `
routine pr(n, steps)
real a(0:n+1, 0:n+1), c(0:n+1, 0:n+1), d(0:n+1, 0:n+1)
!hpf$ distribute (block, block) :: a, c, d
do i = 0, n + 1
do j = 0, n + 1
a(i, j) = i * 100 + j
c(i, j) = 0
d(i, j) = 0
enddo
enddo
do it = 1, steps
do i = 1, n
do j = 1, n
c(i, j) = a(i - 1, j)
enddo
enddo
do i = 2, n + 1
do j = 1, n
d(i, j) = a(i - 1, j)
enddo
enddo
do i = 1, n
do j = 1, n
a(i, j) = 0.5 * (c(i, j) + d(i, j))
enddo
enddo
enddo
end
`

// TestPartialRedundancy exercises the §7 future-work extension: with
// combining blocked (tiny threshold) the two a-exchanges land at
// separate points; partial redundancy trims the later one to the
// single uncovered row, and the functional simulator proves the
// trimmed schedule still delivers everything the computation reads.
func TestPartialRedundancy(t *testing.T) {
	a := analyze(t, partialSrc, map[string]int{"n": 8, "steps": 2}, 4)
	opts := core.Options{
		Version:               core.VersionCombine,
		CombineThresholdBytes: 60, // block combining of the two strips
		PartialRedundancy:     true,
	}
	res, err := a.Place(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reduced) != 1 {
		for _, g := range res.Groups {
			for _, e := range g.Entries {
				t.Logf("group%d@%v: %v sec=%v", g.ID, g.Pos, e, res.CommSection(e, g.Pos.Level()))
			}
		}
		t.Fatalf("Reduced entries = %d, want 1", len(res.Reduced))
	}
	for e, sec := range res.Reduced {
		full := e.SectionAt(a, 1)
		nFull, _ := full.NumElems()
		nRed, ok := sec.NumElems()
		if !ok || nRed >= nFull {
			t.Errorf("%v: reduced %v (%d) not smaller than full %v (%d)", e, sec, nRed, full, nFull)
		}
	}

	// Soundness: the trimmed schedule must still satisfy every read.
	run, err := spmd.Run(res, machine.SP2(), 4)
	if err != nil {
		t.Fatalf("functional run with trimmed schedule: %v", err)
	}
	// And match the untrimmed schedule's results.
	baseRes, err := a.Place(core.Options{Version: core.VersionCombine, CombineThresholdBytes: 60})
	if err != nil {
		t.Fatal(err)
	}
	base, err := spmd.Run(baseRes, machine.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := spmd.VerifyAgainstSequential(run, base); err != nil {
		t.Fatalf("trimmed vs untrimmed results differ: %v", err)
	}
	// The trimmed schedule moves fewer bytes.
	if run.Ledger.BytesMoved >= base.Ledger.BytesMoved {
		t.Errorf("trimmed schedule moved %d bytes, untrimmed %d", run.Ledger.BytesMoved, base.Ledger.BytesMoved)
	}
}

// TestPartialRedundancyEstimate: the analytic estimator sees the
// reduced volume too.
func TestPartialRedundancyEstimate(t *testing.T) {
	a := analyze(t, partialSrc, map[string]int{"n": 32, "steps": 2}, 4)
	m := machine.SP2()
	base, err := a.Place(core.Options{Version: core.VersionCombine, CombineThresholdBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	trimmed, err := a.Place(core.Options{Version: core.VersionCombine, CombineThresholdBytes: 200, PartialRedundancy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(trimmed.Reduced) == 0 {
		t.Fatal("expected a reduction at n=32")
	}
	cb, err := spmd.Estimate(base, m)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := spmd.Estimate(trimmed, m)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Bytes >= cb.Bytes {
		t.Errorf("estimated bytes did not shrink: %v vs %v", ct.Bytes, cb.Bytes)
	}
}

// TestPartialRedundancyNoFalseTrims: with the default threshold the
// two reads combine into one exchange, and nothing is trimmed.
func TestPartialRedundancyNoFalseTrims(t *testing.T) {
	a := analyze(t, partialSrc, map[string]int{"n": 8, "steps": 2}, 4)
	res, err := a.Place(core.Options{Version: core.VersionCombine, PartialRedundancy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reduced) != 0 {
		t.Errorf("combined schedule should have no partial trims, got %d", len(res.Reduced))
	}
}
