package core

import (
	"fmt"
	"io"
	"sort"

	"gcao/internal/asd"
	"gcao/internal/cfg"
	"gcao/internal/obs"
)

// Version selects the compilation strategy, matching the paper's three
// measured compiler versions (§5).
type Version int

const (
	// VersionOrig pulls communication into the outermost possible
	// loops (message vectorization to the latest/shallowest position)
	// but performs no redundancy elimination or message scheduling.
	VersionOrig Version = iota
	// VersionRedund adds redundancy elimination via earliest
	// placement — the prior state of the art the paper compares
	// against ("nored" in Fig. 10).
	VersionRedund
	// VersionCombine is the paper's global algorithm: candidate
	// marking, subset elimination, global redundancy elimination, and
	// greedy combining with latest-common placement ("comb").
	VersionCombine
)

func (v Version) String() string {
	switch v {
	case VersionOrig:
		return "orig"
	case VersionRedund:
		return "nored"
	case VersionCombine:
		return "comb"
	}
	return fmt.Sprintf("Version(%d)", int(v))
}

// Options configures placement.
type Options struct {
	Version Version
	// CombineThresholdBytes bounds the combined message size (§4.7);
	// 0 selects the paper's 20 KB.
	CombineThresholdBytes int
	// MaxHullBlowup bounds how much larger the single-descriptor union
	// may be than the two sections combined; 0 selects 1.25.
	MaxHullBlowup float64
	// DisableSubsetElim turns off §4.5 (ablation; §6 notes it must be
	// dropped when overlap matters).
	DisableSubsetElim bool
	// NaiveGreedyOrder processes entries in program order instead of
	// most-constrained-first (ablation).
	NaiveGreedyOrder bool
	// DisableCombining turns off message combining while keeping the
	// global placement machinery (ablation).
	DisableCombining bool
	// PartialRedundancy enables the §7 future-work extension: when an
	// earlier-placed exchange already moves part of a later entry's
	// section (and no definition intervenes), the later message is
	// trimmed to the single-descriptor difference.
	PartialRedundancy bool
	// Trace, when non-nil, receives a human-readable log of the
	// elimination and greedy decisions (the analog of the paper's
	// trace dump to a listing file, Fig. 6).
	Trace io.Writer
	// Obs, when non-nil, receives phase spans, elimination/combining
	// counters and the per-entry placement decision log. When nil the
	// Analysis's own recorder (if any) is used instead.
	Obs *obs.Recorder
}

func (o Options) tracef(format string, args ...any) {
	if o.Trace != nil {
		fmt.Fprintf(o.Trace, format+"\n", args...)
	}
}

func (o Options) threshold() int {
	if o.CombineThresholdBytes > 0 {
		return o.CombineThresholdBytes
	}
	return 20 << 10
}

func (o Options) maxBlowup() float64 {
	if o.MaxHullBlowup > 0 {
		return o.MaxHullBlowup
	}
	return 1.25
}

// Group is one placed communication operation: one runtime call that
// moves the data of all member entries (plus any entries eliminated as
// redundant, which ride along for free).
type Group struct {
	ID       int
	Pos      Position
	Kind     CommKind
	Entries  []*Entry
	Attached []*Entry
	// Map is the union mapping of the members.
	Map asd.Mapping
	// SiteID is the stable placement-site identifier minted after the
	// deterministic group ordering; it is carried through the codegen
	// listing and the runtime comm groups so simulator traffic can be
	// blamed back to this placement decision.
	SiteID string
	// Sources lists the originating source statements of the member
	// and attached entries ("label@line:col"), deduplicated and
	// sorted — the source-level half of the blame record.
	Sources []string
}

func (g *Group) String() string {
	return fmt.Sprintf("group%d@%s %s x%d", g.ID, g.Pos, g.Kind, len(g.Entries))
}

// Result is the outcome of placement under one strategy.
type Result struct {
	Analysis *Analysis
	Version  Version
	Groups   []*Group
	// Redundant maps eliminated entries to their subsumers.
	Redundant map[*Entry]*Entry
	// PosOf maps every live entry to its group's position.
	PosOf map[*Entry]Position
	// Reduced maps entries whose communicated section was trimmed by
	// partial redundancy elimination to the section actually moved.
	Reduced map[*Entry]asd.SymSection

	// subsumedAt records the position at which each redundant entry's
	// subsumption was proven, for the decision log.
	subsumedAt map[*Entry]Position
}

// Counts returns the number of placed communication operations by
// kind — the static call-site counts of Fig. 10(a).
func (r *Result) Counts() map[CommKind]int {
	out := map[CommKind]int{}
	for _, g := range r.Groups {
		out[g.Kind]++
	}
	return out
}

// Count returns the number of placed groups of one kind.
func (r *Result) Count(kind CommKind) int { return r.Counts()[kind] }

// TotalMessages returns the total number of placed groups.
func (r *Result) TotalMessages() int { return len(r.Groups) }

// recorder resolves the effective recorder for one placement: the
// explicit Options recorder wins, else the analysis-wide one.
func (a *Analysis) recorder(opts Options) *obs.Recorder {
	if opts.Obs != nil {
		return opts.Obs
	}
	return a.Obs
}

// Place runs the selected placement strategy over the analysis.
func (a *Analysis) Place(opts Options) (*Result, error) {
	rec := a.recorder(opts)
	prefix := "place." + opts.Version.String() + "."
	endPlace := rec.Start("place:" + opts.Version.String())
	defer endPlace()
	res := &Result{
		Analysis:   a,
		Version:    opts.Version,
		Redundant:  map[*Entry]*Entry{},
		PosOf:      map[*Entry]Position{},
		subsumedAt: map[*Entry]Position{},
	}
	entries := a.CommEntries()
	switch opts.Version {
	case VersionOrig:
		a.placeVectorized(entries, res)
	case VersionRedund:
		a.placeEarliestRedundant(entries, res)
	case VersionCombine:
		if err := a.placeGlobal(entries, res, opts, rec, prefix); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown version %v", opts.Version)
	}
	a.sortGroups(res)
	if opts.PartialRedundancy {
		a.reducePartial(res, opts)
	}
	rec.Add(prefix+"entries", int64(len(entries)))
	rec.Add(prefix+"redundant", int64(len(res.Redundant)))
	rec.Add(prefix+"groups", int64(len(res.Groups)))
	a.recordDecisions(rec, res)
	rec.Event(obs.LevelInfo, "place.done",
		obs.F("version", opts.Version.String()),
		obs.F("entries", len(entries)),
		obs.F("groups", len(res.Groups)),
		obs.F("redundant", len(res.Redundant)))
	return res, nil
}

// CommSection returns the section an entry actually communicates at a
// level: the partial-redundancy-trimmed section when one was recorded,
// the full section otherwise.
func (r *Result) CommSection(e *Entry, level int) asd.SymSection {
	if sec, ok := r.Reduced[e]; ok {
		return sec
	}
	return e.SectionAt(r.Analysis, level)
}

// reducePartial implements the §7 extension: for every pair of placed
// shift entries of the same array where an earlier (dominating)
// exchange with an at-least-as-wide mapping already moves part of a
// later entry's section — and the data is already fully available at
// the earlier point (its Earliest dominates it), so nothing can stale
// the overlap — the later message shrinks to the single-descriptor
// difference. The functional simulator's validity tracking verifies
// the soundness of every trim the tests exercise.
func (a *Analysis) reducePartial(res *Result, opts Options) {
	res.Reduced = map[*Entry]asd.SymSection{}
	for _, gLate := range res.Groups {
		if gLate.Kind != KindShift {
			continue
		}
		for _, eLate := range gLate.Entries {
			for _, gEarly := range res.Groups {
				if gEarly == gLate || gEarly.Kind != KindShift {
					continue
				}
				if !a.posDominates(gEarly.Pos, gLate.Pos) || gEarly.Pos == gLate.Pos {
					continue
				}
				if gEarly.Pos.Level() != gLate.Pos.Level() {
					continue // sections live in different symbolic bases
				}
				if !a.posDominates(eLate.Earliest, gEarly.Pos) {
					continue // a constraining def intervenes
				}
				for _, eEarly := range gEarly.Entries {
					if eEarly.Array != eLate.Array || !eLate.Map.SubsetOf(eEarly.Map) {
						continue
					}
					late := res.CommSection(eLate, gLate.Pos.Level())
					early := res.CommSection(eEarly, gEarly.Pos.Level())
					diff, ok := late.Subtract(early)
					if !ok {
						continue
					}
					nl, okl := late.NumElems()
					nd, okd := diff.NumElems()
					if okl && okd && nd < nl {
						res.Reduced[eLate] = diff
						opts.tracef("partial-redundancy: %v trimmed from %v to %v (covered by %v)",
							eLate, late, diff, eEarly)
					}
				}
			}
		}
	}
}

func (r *Result) addGroup(pos Position, members, attached []*Entry) *Group {
	g := &Group{ID: len(r.Groups), Pos: pos, Kind: members[0].Kind, Entries: members, Attached: attached, Map: members[0].Map}
	for _, e := range members[1:] {
		g.Map = g.Map.Union(e.Map)
	}
	for _, e := range members {
		r.PosOf[e] = pos
	}
	r.Groups = append(r.Groups, g)
	return g
}

// sortGroups orders groups deterministically by position (dominance,
// then block/slot) for stable output.
func (a *Analysis) sortGroups(res *Result) {
	sort.SliceStable(res.Groups, func(i, j int) bool {
		p, q := res.Groups[i].Pos, res.Groups[j].Pos
		if p.Block != q.Block {
			if a.posDominates(p, q) {
				return true
			}
			if a.posDominates(q, p) {
				return false
			}
			return p.Block.ID < q.Block.ID
		}
		if p.After != q.After {
			return p.After < q.After
		}
		return res.Groups[i].Entries[0].ID < res.Groups[j].Entries[0].ID
	})
	for i, g := range res.Groups {
		g.ID = i
		g.SiteID = fmt.Sprintf("%s/g%d@%s/%s", res.Version, g.ID, g.Pos, g.Kind)
		g.Sources = groupSources(g)
	}
}

// groupSources collects the source statements whose references a
// group's exchange serves — members and subsumed attachments alike —
// as "label@line:col" strings, deduplicated and sorted.
func groupSources(g *Group) []string {
	seen := map[string]bool{}
	var out []string
	add := func(e *Entry) {
		for _, u := range e.Uses {
			if u.Stmt == nil || u.Stmt.Assign == nil {
				continue
			}
			s := fmt.Sprintf("%s@%s", u.Stmt.Label(), u.Stmt.Assign.Pos)
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	for _, e := range g.Entries {
		add(e)
	}
	for _, e := range g.Attached {
		add(e)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------
// "orig": message vectorization with single-nest coalescing.

// placeVectorized reproduces the baseline compiler: every reference's
// communication is vectorized to its latest (outermost-possible)
// position, and references of the same array with the same pattern in
// the same statement share one exchange via an overlap region sized to
// the widest offset (classic per-statement message coalescing [15] /
// overlap analysis [30]). No redundancy is detected across statements
// and no messages are combined across arrays — that is exactly what
// the paper's "orig" compiler did.
func (a *Analysis) placeVectorized(entries []*Entry, res *Result) {
	type bucketKey struct {
		stmt  *cfg.Stmt
		array string
		kind  CommKind
		pos   Position
		dim   int
		sign  int
		sig   string
		uniq  int // distinct reductions never share
	}
	order := make([]bucketKey, 0, len(entries))
	buckets := map[bucketKey][]*Entry{}
	for _, e := range entries {
		k := bucketKey{stmt: e.Use().Stmt, array: e.Array, kind: e.Kind, pos: e.Latest}
		switch e.Kind {
		case KindShift:
			k.dim, k.sign = e.Map.GridDim, e.Map.Sign
		case KindReduce:
			k.uniq = e.ID
		default:
			k.sig = e.Map.Signature
		}
		if _, ok := buckets[k]; !ok {
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], e)
	}
	for _, k := range order {
		res.addGroup(k.pos, buckets[k], nil)
	}
}

// ---------------------------------------------------------------------
// "nored": earliest placement with pairwise redundancy elimination.

func (a *Analysis) placeEarliestRedundant(entries []*Entry, res *Result) {
	// Order entries so that dominating positions come first; an entry
	// is redundant when an earlier-placed live entry subsumes it.
	order := append([]*Entry(nil), entries...)
	sort.SliceStable(order, func(i, j int) bool {
		p, q := order[i].Earliest, order[j].Earliest
		if p == q {
			// Wider strips and larger sections first, so that an
			// entry subsumed by a co-located bigger one is seen after
			// its subsumer.
			if order[i].Map.Width != order[j].Map.Width {
				return order[i].Map.Width > order[j].Map.Width
			}
			ni, oki := order[i].SectionAt(a, p.Level()).NumElems()
			nj, okj := order[j].SectionAt(a, p.Level()).NumElems()
			if oki && okj && ni != nj {
				return ni > nj
			}
			return order[i].ID < order[j].ID
		}
		return a.posDominates(p, q)
	})
	var live []*Entry
	for _, e := range order {
		level := e.Earliest.Level()
		redundant := false
		for _, prev := range live {
			// Only co-located communications deduplicate safely here:
			// e's Earliest sits immediately after its last
			// constraining definition, so data fetched by an exchange
			// at any strictly earlier point may be overwritten before
			// e's use. (The global algorithm does better because its
			// candidate sets encode exactly which positions are
			// kill-free; this locality is the fundamental limitation
			// of earliest placement the paper exploits.)
			if prev.Earliest != e.Earliest {
				continue
			}
			if prev.ASDAt(a, level).Subsumes(e.ASDAt(a, level)) {
				res.Redundant[e] = prev
				res.subsumedAt[e] = prev.Earliest
				redundant = true
				break
			}
		}
		if redundant {
			continue
		}
		live = append(live, e)
	}
	// Attach eliminated entries to their subsumer's group.
	attached := map[*Entry][]*Entry{}
	for e, by := range res.Redundant {
		attached[by] = append(attached[by], e)
	}
	for _, e := range live {
		res.addGroup(e.Earliest, []*Entry{e}, attached[e])
	}
}

// ---------------------------------------------------------------------
// "comb": the paper's global algorithm (§4.5–4.7, Fig. 9e–g).

type posKey = Position

func (a *Analysis) placeGlobal(entries []*Entry, res *Result, opts Options, rec *obs.Recorder, prefix string) error {
	// CommSet(S): entries with S among their candidates (Fig. 9e).
	commSet := map[posKey]map[*Entry]bool{}
	for _, e := range entries {
		for _, p := range e.Candidates {
			if commSet[p] == nil {
				commSet[p] = map[*Entry]bool{}
			}
			commSet[p][e] = true
		}
	}
	rec.Add(prefix+"candidate_positions", int64(len(commSet)))

	// Subset elimination (§4.5): CommSet(S1) ⊆ CommSet(S2) empties S1;
	// for equal sets keep the later position (the final step pushes
	// communication as late as possible anyway).
	if !opts.DisableSubsetElim {
		endSubset := rec.Start("subset-elim")
		positions := a.sortedPositions(commSet)
		for _, p := range positions {
			if len(commSet[p]) == 0 {
				continue
			}
			for _, q := range positions {
				if p == q || len(commSet[p]) == 0 {
					continue
				}
				if len(commSet[q]) == 0 {
					continue
				}
				if isSubset(commSet[p], commSet[q]) {
					if setEqual(commSet[p], commSet[q]) {
						// Empty the dominating (earlier) one.
						if a.posDominates(p, q) {
							opts.tracef("subset-elim: CommSet(%v) == CommSet(%v): drop %v", p, q, p)
							commSet[p] = nil
						} else {
							opts.tracef("subset-elim: CommSet(%v) == CommSet(%v): drop %v", p, q, q)
							commSet[q] = nil
						}
						rec.Add(prefix+"subset.dropped_positions", 1)
						continue
					}
					opts.tracef("subset-elim: CommSet(%v) subset of CommSet(%v): drop %v", p, q, p)
					commSet[p] = nil
					rec.Add(prefix+"subset.dropped_positions", 1)
				}
			}
		}
		endSubset()
	}

	// Global redundancy elimination (§4.6, Fig. 9f): when c2 subsumes
	// c1 at S, disable c1 at S and every position S dominates; iterate
	// to fixpoint. An entry with no remaining position is eliminated
	// entirely and attached to its subsumer.
	endRedund := rec.Start("redundancy-elim")
	subsumer := map[*Entry]*Entry{}
	for changed := true; changed; {
		changed = false
		for _, p := range a.sortedPositions(commSet) {
			set := commSet[p]
			if len(set) < 2 {
				continue
			}
			es := sortedEntries(set)
			for _, c1 := range es {
				if subsumer[c1] != nil {
					continue
				}
				for _, c2 := range es {
					if c1 == c2 || subsumer[c2] != nil {
						continue
					}
					level := p.Level()
					if !c2.ASDAt(a, level).Subsumes(c1.ASDAt(a, level)) {
						continue
					}
					// Disable c1 here and everywhere dominated by p.
					removed := false
					for q, qset := range commSet {
						if qset[c1] && (q == p || a.posDominates(p, q)) {
							delete(qset, c1)
							removed = true
						}
					}
					if removed {
						changed = true
						rec.Add(prefix+"redundancy.disabled_positions", 1)
					}
					if len(positionsOf(commSet, c1)) == 0 {
						opts.tracef("redundancy: %v fully subsumed by %v at %v", c1, c2, p)
						subsumer[c1] = c2
						res.Redundant[c1] = c2
						res.subsumedAt[c1] = p
						rec.Add(prefix+"redundancy.eliminated", 1)
					}
					break
				}
			}
		}
	}
	endRedund()

	// GreedyChoose (Fig. 9g): consider the most constrained entry
	// first; pin it at the position compatible with the most other
	// candidates.
	live := make([]*Entry, 0, len(entries))
	for _, e := range entries {
		if subsumer[e] == nil {
			live = append(live, e)
		}
	}
	order := append([]*Entry(nil), live...)
	if !opts.NaiveGreedyOrder {
		sort.SliceStable(order, func(i, j int) bool {
			ni := len(positionsOf(commSet, order[i]))
			nj := len(positionsOf(commSet, order[j]))
			if ni != nj {
				return ni < nj
			}
			return order[i].ID < order[j].ID
		})
	}
	endGreedy := rec.Start("greedy-choose")
	pinned := map[*Entry]Position{}
	for _, c := range order {
		rec.Add(prefix+"greedy.iterations", 1)
		stmtSet := positionsOf(commSet, c)
		if len(stmtSet) == 0 {
			// Defensive: should not happen for live entries.
			stmtSet = []Position{c.Latest}
		}
		rec.Add(prefix+"greedy.positions_considered", int64(len(stmtSet)))
		best := stmtSet[0]
		bestCount := -1
		for _, s := range stmtSet {
			count := 0
			for e2 := range commSet[s] {
				if e2 != c && a.canCombine(c, e2, s.Level(), opts) {
					count++
				}
			}
			// Ties prefer the later (most dominated) position to
			// reduce buffer/cache pressure, as §4.7 prescribes.
			if count > bestCount || (count == bestCount && a.posDominates(best, s)) {
				best, bestCount = s, count
			}
		}
		opts.tracef("greedy: pin %v at %v (combinable partners %d of %d positions)", c, best, bestCount, len(stmtSet))
		pinned[c] = best
		for q, qset := range commSet {
			if q != best {
				delete(qset, c)
			}
		}
	}
	endGreedy()

	// Partition each position's entries into combine groups.
	byPos := map[Position][]*Entry{}
	for _, e := range live {
		byPos[pinned[e]] = append(byPos[pinned[e]], e)
	}
	// Subsumption can chain (e1 ⊆ e2 ⊆ e3 with e2 itself eliminated);
	// every eliminated entry attaches to its live root so the final
	// group position honours the whole chain's candidate sets.
	root := func(e *Entry) *Entry {
		for subsumer[e] != nil {
			e = subsumer[e]
		}
		return e
	}
	attached := map[*Entry][]*Entry{}
	for e := range subsumer {
		attached[root(e)] = append(attached[root(e)], e)
	}
	// entryCommon is the candidate-position set of an entry intersected
	// with those of the redundant entries riding on it; a group must
	// keep the intersection of its members' sets non-empty so the
	// final "latest common position" exists.
	entryCommon := func(e *Entry) map[Position]bool {
		set := map[Position]bool{}
		for _, p := range e.Candidates {
			set[p] = true
		}
		for _, r := range attached[e] {
			rset := map[Position]bool{}
			for _, p := range r.Candidates {
				rset[p] = true
			}
			for p := range set {
				if !rset[p] {
					delete(set, p)
				}
			}
		}
		return set
	}
	intersect := func(a, b map[Position]bool) map[Position]bool {
		out := map[Position]bool{}
		for p := range a {
			if b[p] {
				out[p] = true
			}
		}
		return out
	}

	endCombine := rec.Start("combine")
	for _, p := range a.sortedPosList(byPos) {
		es := byPos[p]
		sort.SliceStable(es, func(i, j int) bool { return es[i].ID < es[j].ID })
		var groups [][]*Entry
		var commons []map[Position]bool
		for _, e := range es {
			ec := entryCommon(e)
			placedInGroup := false
			if !opts.DisableCombining {
				for gi := range groups {
					ok := true
					for _, m := range groups[gi] {
						pairOK, reason := a.combineVerdict(e, m, p.Level(), opts)
						if !pairOK {
							opts.tracef("combine: %v does not join group of %v (%s)", e, m, reason)
							rec.Add(prefix+"combine.rejected."+reason, 1)
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					if !a.groupFits(groups[gi], e, p.Level(), opts) {
						rec.Add(prefix+"combine.rejected."+reasonThreshold, 1)
						continue // combined size beyond the threshold
					}
					merged := intersect(commons[gi], ec)
					if len(merged) == 0 {
						rec.Add(prefix+"combine.rejected."+reasonNoCommonPos, 1)
						continue // no shared placement point
					}
					groups[gi] = append(groups[gi], e)
					commons[gi] = merged
					placedInGroup = true
					rec.Add(prefix+"combine.merges", 1)
					break
				}
			}
			if !placedInGroup {
				groups = append(groups, []*Entry{e})
				commons = append(commons, ec)
			}
		}
		for gi, members := range groups {
			// Final position: the latest candidate position common to
			// every member and every attached redundant entry.
			pos := a.latestOf(commons[gi], members[0].Latest)
			var att []*Entry
			for _, m := range members {
				att = append(att, attached[m]...)
			}
			res.addGroup(pos, members, att)
		}
	}
	endCombine()
	return nil
}

// latestOf picks the most dominated position of a non-empty set, or
// the fallback when the set is empty (defensive; the grouping keeps
// sets non-empty).
func (a *Analysis) latestOf(set map[Position]bool, fallback Position) Position {
	var best Position
	first := true
	for p := range set {
		if first || a.posDominates(best, p) {
			best = p
			first = false
		}
	}
	if first {
		return fallback
	}
	return best
}

// Rejection reasons recorded by the combining counters: kind or
// mapping incompatibility (§4.7's "identical or subset" rule), the
// combined-size threshold (the measured 20 KB knee of Fig. 5), the
// bounded single-descriptor union (hull blowup), unknown sizes, and a
// group whose members share no remaining candidate position.
const (
	reasonKind        = "kind"
	reasonMapping     = "mapping"
	reasonThreshold   = "threshold"
	reasonHull        = "hull"
	reasonUnknownSize = "unknown_size"
	reasonNoCommonPos = "no_common_pos"
)

// canCombine implements the §4.7 compatibility criteria: mappings
// identical or one a subset of the other, combined size under the
// machine threshold (with the NNC/reduction rule of thumb when sizes
// are unknown), and a bounded single-descriptor union.
func (a *Analysis) canCombine(e1, e2 *Entry, level int, opts Options) bool {
	ok, _ := a.combineVerdict(e1, e2, level, opts)
	return ok
}

// combineVerdict is canCombine plus the reason a pair cannot combine,
// for the observability counters and trace log.
func (a *Analysis) combineVerdict(e1, e2 *Entry, level int, opts Options) (bool, string) {
	if e1.Kind != e2.Kind {
		return false, reasonKind
	}
	if !e1.Map.CompatibleWith(e2.Map) {
		return false, reasonMapping
	}
	if e1.Kind == KindReduce {
		return true, "" // partial results concatenate into one message
	}
	b1, ok1 := e1.BytesAt(a, level)
	b2, ok2 := e2.BytesAt(a, level)
	if ok1 && ok2 {
		if b1+b2 > opts.threshold() {
			return false, reasonThreshold
		}
	} else if e1.Kind != KindShift {
		return false, reasonUnknownSize // unknown size: only NNC gets the rule of thumb
	}
	s1 := e1.SectionAt(a, level)
	s2 := e2.SectionAt(a, level)
	if e1.Array == e2.Array {
		_, blowup, ok := s1.Hull(s2)
		if !ok || blowup > opts.maxBlowup() {
			return false, reasonHull
		}
		return true, ""
	}
	if e1.Kind == KindShift {
		// Cross-array NNC compares the sections projected onto the
		// distributed (grid) dimensions: a 3-d g(i,1:ny,1:nz) plane
		// combines with a 2-d glast(1:ny,1:nz) because their template
		// footprints coincide (Fig. 1). Footprints may differ by a
		// bounded hull (sections of stencil operands are offset by a
		// point or two), matching the paper's single-descriptor rule.
		g1, ok1 := a.gridSection(e1, level)
		g2, ok2 := a.gridSection(e2, level)
		if !ok1 || !ok2 {
			return false, reasonMapping
		}
		hull, blowup, ok := g1.Hull(g2)
		if !ok {
			return false, reasonHull
		}
		n1, ok1 := g1.NumElems()
		n2, ok2 := g2.NumElems()
		nh, okh := hull.NumElems()
		if ok1 && ok2 && okh {
			// The shared descriptor covers the hull for both arrays:
			// bound the padding on each.
			if float64(2*nh) <= opts.maxBlowup()*float64(n1+n2) {
				return true, ""
			}
			return false, reasonHull
		}
		_ = blowup
		if g1.Equal(g2) {
			return true, ""
		}
		return false, reasonHull
	}
	// Other kinds share one descriptor across arrays: the hull must
	// cover both without excessive padding on either.
	hull, _, ok := s1.Hull(s2)
	if !ok {
		return false, reasonHull
	}
	n1, ok1 := s1.NumElems()
	n2, ok2 := s2.NumElems()
	nh, okh := hull.NumElems()
	if !ok1 || !ok2 || !okh {
		// Unknown sizes: require provably identical sections.
		if s1.Equal(s2) {
			return true, ""
		}
		return false, reasonUnknownSize
	}
	if float64(2*nh) <= opts.maxBlowup()*float64(n1+n2) {
		return true, ""
	}
	return false, reasonHull
}

// gridSection projects an entry's section onto the processor grid
// dimensions of its array's distribution.
func (a *Analysis) gridSection(e *Entry, level int) (asd.SymSection, bool) {
	arr := a.Unit.Arrays[e.Array]
	if arr == nil || arr.Dist == nil {
		return asd.SymSection{}, false
	}
	sec := e.SectionAt(a, level)
	out := asd.SymSection{Dims: make([]asd.SymDim, a.Unit.Grid.Rank())}
	found := make([]bool, a.Unit.Grid.Rank())
	for k := range arr.Lo {
		g := a.gridDimOfArrayDim(arr, k)
		if g < 0 || k >= len(sec.Dims) {
			continue
		}
		out.Dims[g] = sec.Dims[k]
		found[g] = true
	}
	for _, f := range found {
		if !f {
			return asd.SymSection{}, false
		}
	}
	return out, true
}

// ---------------------------------------------------------------------
// small helpers

func (a *Analysis) sortedPositions(m map[posKey]map[*Entry]bool) []Position {
	out := make([]Position, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Block != out[j].Block {
			return out[i].Block.ID < out[j].Block.ID
		}
		return out[i].After < out[j].After
	})
	return out
}

func (a *Analysis) sortedPosList(m map[Position][]*Entry) []Position {
	out := make([]Position, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Block != out[j].Block {
			return out[i].Block.ID < out[j].Block.ID
		}
		return out[i].After < out[j].After
	})
	return out
}

func sortedEntries(set map[*Entry]bool) []*Entry {
	out := make([]*Entry, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func positionsOf(commSet map[posKey]map[*Entry]bool, e *Entry) []Position {
	var out []Position
	for p, set := range commSet {
		if set[e] {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Block != out[j].Block {
			return out[i].Block.ID < out[j].Block.ID
		}
		return out[i].After < out[j].After
	})
	return out
}

func isSubset(a, b map[*Entry]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

func setEqual(a, b map[*Entry]bool) bool {
	return len(a) == len(b) && isSubset(a, b)
}

// CanCombineForTest exposes the combining predicate for tests and
// diagnostic tools.
func (a *Analysis) CanCombineForTest(e1, e2 *Entry, level int, opts Options) bool {
	return a.canCombine(e1, e2, level, opts)
}

// groupFits bounds the total packed size of a combined message by the
// machine threshold (§4.7): the pairwise test alone would let a group
// of individually small strips grow past the point where combining
// stops paying.
func (a *Analysis) groupFits(members []*Entry, e *Entry, level int, opts Options) bool {
	if e.Kind == KindReduce {
		return true // reductions move one partial per member
	}
	total, ok := e.BytesAt(a, level)
	if !ok {
		return true // unknown sizes: the NNC rule of thumb applies
	}
	for _, m := range members {
		b, okm := m.BytesAt(a, level)
		if !okm {
			return true
		}
		total += b
	}
	return total <= opts.threshold()
}
