package core

import (
	"fmt"
	"sync"

	"gcao/internal/asd"
	"gcao/internal/ast"
	"gcao/internal/cfg"
	"gcao/internal/dep"
	"gcao/internal/dom"
	"gcao/internal/obs"
	"gcao/internal/scalarize"
	"gcao/internal/sem"
	"gcao/internal/ssa"
)

// Analysis holds the full communication analysis of one routine: the
// scalarized body, augmented CFG, dominator tree, SSA form, dependence
// context, and the classified communication entries with their
// earliest/latest/candidate positions. One Analysis can be placed
// under several strategies (Place) without re-analysis.
type Analysis struct {
	Unit *sem.Unit
	Scal *scalarize.Result
	G    *cfg.Graph
	Dom  *dom.Tree
	SSA  *ssa.Info
	Dep  *dep.Analysis

	// Obs, when non-nil, receives phase spans, counters and the
	// placement decision log for every Place on this analysis (unless
	// Options.Obs overrides it). Nil disables observability at zero
	// cost.
	Obs *obs.Recorder

	// Entries lists every communication requirement, including entries
	// later coalesced into axis exchanges.
	Entries []*Entry

	// loopBoundMu guards loopBoundCache: one analysis may be placed,
	// estimated and simulated concurrently (the serving layer caches
	// and shares analyses across requests), and the bound memoization
	// is the only lazily written state.
	loopBoundMu    sync.Mutex
	loopBoundCache map[*cfg.Loop][4]int // lo, hi, step, ok(1/0)
}

// NewAnalysis runs the front half of the compiler on an analyzed
// routine: scalarization, CFG construction, dominators, SSA,
// classification, and the earliest/latest/candidate computation for
// every entry.
func NewAnalysis(u *sem.Unit) (*Analysis, error) {
	return NewAnalysisObs(u, nil)
}

// NewAnalysisObs is NewAnalysis with each pipeline phase recorded as a
// span on the recorder (nil-safe).
func NewAnalysisObs(u *sem.Unit, rec *obs.Recorder) (*Analysis, error) {
	end := rec.Start("scalarize")
	scal, err := scalarize.Scalarize(u)
	end()
	if err != nil {
		return nil, err
	}
	end = rec.Start("cfg")
	g := cfg.Build(scal.Body)
	err = g.Validate()
	end()
	if err != nil {
		return nil, err
	}
	end = rec.Start("dom")
	t := dom.New(g)
	end()
	end = rec.Start("ssa")
	info := ssa.Build(g, t, func(name string) bool {
		_, ok := u.Arrays[name]
		return ok
	})
	err = info.Validate()
	end()
	if err != nil {
		return nil, err
	}
	end = rec.Start("dep")
	depA := dep.New(u)
	end()
	a := &Analysis{
		Unit:           u,
		Scal:           scal,
		G:              g,
		Dom:            t,
		SSA:            info,
		Dep:            depA,
		Obs:            rec,
		loopBoundCache: map[*cfg.Loop][4]int{},
	}
	end = rec.Start("entries")
	err = a.buildEntries()
	if err == nil {
		a.coalesceDiagonals()
	}
	end()
	if err != nil {
		return nil, err
	}
	end = rec.Start("earliest-latest")
	for _, e := range a.Entries {
		if e.Coalesced {
			continue
		}
		if err := a.computePlacementRange(e); err != nil {
			end()
			return nil, err
		}
	}
	end()
	rec.Add("analysis.entries", int64(len(a.Entries)))
	rec.Add("analysis.comm_entries", int64(len(a.CommEntries())))
	rec.Add("analysis.coalesced", int64(len(a.Entries)-len(a.CommEntries())))
	rec.Event(obs.LevelInfo, "analysis.done",
		obs.F("routine", u.Routine.Name),
		obs.F("entries", len(a.Entries)),
		obs.F("comm_entries", len(a.CommEntries())))
	return a, nil
}

// loopBounds evaluates a loop's bounds at compile time.
func (a *Analysis) loopBounds(l *cfg.Loop) (lo, hi, step int, ok bool) {
	a.loopBoundMu.Lock()
	defer a.loopBoundMu.Unlock()
	if v, hit := a.loopBoundCache[l]; hit {
		return v[0], v[1], v[2], v[3] == 1
	}
	store := func(lo, hi, step int, ok bool) (int, int, int, bool) {
		f := 0
		if ok {
			f = 1
		}
		a.loopBoundCache[l] = [4]int{lo, hi, step, f}
		return lo, hi, step, ok
	}
	lov, err1 := a.Unit.EvalInt(l.Do.Lo)
	hiv, err2 := a.Unit.EvalInt(l.Do.Hi)
	if err1 != nil || err2 != nil {
		return store(0, 0, 1, false)
	}
	stepv := 1
	if l.Do.Step != nil {
		s, err := a.Unit.EvalInt(l.Do.Step)
		if err != nil || s == 0 {
			return store(0, 0, 1, false)
		}
		stepv = s
	}
	if stepv < 0 {
		lov, hiv, stepv = hiv, lov, -stepv
	}
	return store(lov, hiv, stepv, true)
}

// LoopTrip returns the compile-time trip count of a loop, when its
// bounds are constant under the routine parameters.
func (a *Analysis) LoopTrip(l *cfg.Loop) (int, bool) {
	lo, hi, step, ok := a.loopBounds(l)
	if !ok {
		return 0, false
	}
	if lo > hi {
		return 0, true
	}
	return (hi-lo)/step + 1, true
}

// ---------------------------------------------------------------------
// Latest position (§4.2)

// computeLatest determines CommLevel(u) and the latest position for an
// entry, which is as shallow as possible: just before the outermost
// loop with no true dependence on the use, or just before the
// statement when dependences pin it at full depth.
func (a *Analysis) computeLatest(e *Entry) {
	level := 0
	for _, u := range e.Uses {
		regs, _ := dep.ReachingRegularDefs(u)
		for _, d := range regs {
			if l := a.Dep.DepLevel(d, u); l > level {
				level = l
			}
		}
	}
	u := e.Use()
	if level > u.Stmt.NL() {
		level = u.Stmt.NL()
	}
	e.CommLevel = level
	if level == u.Stmt.NL() {
		e.Latest = Position{Block: u.Stmt.Block, After: u.Stmt.Index - 1}
		return
	}
	loop := u.Stmt.Loops[level] // loop at Depth level+1
	pre := loop.PreHeader
	e.Latest = Position{Block: pre, After: len(pre.Stmts) - 1}
}

// ---------------------------------------------------------------------
// Earliest position (§4.3, Fig. 8)

// computeEarliest finds the earliest single dominating communication
// point for the entry: the first definition, in a depth-first preorder
// walk back through the SSA chain from the use, for which Test returns
// true (Claim 4.1).
func (a *Analysis) computeEarliest(e *Entry) error {
	var best ssa.Def
	var bestPos Position
	for _, u := range e.Uses {
		d := a.earliestDef(u)
		if d == nil {
			return fmt.Errorf("core: no earliest def for %s", u)
		}
		if !a.Dom.Dominates(d.DefBlock(), u.Stmt.Block) {
			return fmt.Errorf("core: earliest def %s does not dominate %s", d, u)
		}
		pos := a.defPosition(d)
		// Merged uses: keep the latest (most dominated) earliest point,
		// which is safe for every member.
		if best == nil || a.posDominates(bestPos, pos) {
			best, bestPos = d, pos
		}
	}
	e.EarliestDef = best
	e.Earliest = bestPos
	return nil
}

// earliestDef implements the walk of Fig. 8(a): visit defs backward
// from Reaching(u) in depth-first preorder; the first def passing Test
// is Earliest(u). The ENTRY pseudo-def always passes.
func (a *Analysis) earliestDef(u *ssa.Use) ssa.Def {
	visited := map[ssa.Def]bool{}
	var found ssa.Def
	var dfs func(d ssa.Def) bool
	dfs = func(d ssa.Def) bool {
		if d == nil || visited[d] {
			return false
		}
		visited[d] = true
		if a.test(d, u) {
			found = d
			return true
		}
		switch d := d.(type) {
		case *ssa.RegularDef:
			return dfs(d.Input)
		case *ssa.PhiDef:
			for _, arg := range d.Args {
				if dfs(arg) {
					return true
				}
			}
		}
		return false
	}
	dfs(u.Reaching)
	return found
}

// test implements Fig. 8(b): a regular def is the earliest point when
// it carries a dependence at the common nesting level; a φ-def is the
// earliest point when two or more of its parameters reach distinct
// dependence sources over node-disjoint backpaths (counted by Rcount
// with a shared visit set).
func (a *Analysis) test(d ssa.Def, u *ssa.Use) bool {
	switch d := d.(type) {
	case *ssa.EntryDef:
		return true
	case *ssa.RegularDef:
		return a.Dep.IsArrayDep(d, u, ssa.CNL(d, u))
	case *ssa.PhiDef:
		// The visit set is shared across parameters so two positive
		// counts certify node-disjoint backpaths (Lemma 4.3). The
		// greedy order in which parameters consume shared prefixes
		// matters — e.g. at a φExit the zero-trip parameter must claim
		// the ENTRY-side path before the through-the-loop parameter
		// walks it — so we accept the test if any parameter ordering
		// yields two positives. Blocks in this structured CFG have at
		// most two predecessors, so this is at most two trials.
		level := ssa.CNL(d, u)
		n := len(d.Args)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		var try func(k int) bool
		try = func(k int) bool {
			if k == n {
				visit := map[ssa.Def]bool{d: true}
				positives := 0
				for _, i := range order {
					if a.rcount(d.Args[i], u, level, visit) > 0 {
						positives++
					}
				}
				return positives >= 2
			}
			for i := k; i < n; i++ {
				order[k], order[i] = order[i], order[k]
				if try(k + 1) {
					return true
				}
				order[k], order[i] = order[i], order[k]
			}
			return false
		}
		return try(0)
	}
	return false
}

// rcount implements Fig. 8(c): it counts dependence sources reachable
// through a φ parameter, visiting every definition at most once so
// that two positive parameter counts certify node-disjoint paths.
func (a *Analysis) rcount(d ssa.Def, u *ssa.Use, level int, visit map[ssa.Def]bool) int {
	if d == nil || visit[d] {
		return 0
	}
	visit[d] = true
	switch d := d.(type) {
	case *ssa.EntryDef:
		return 1 // IsArrayDep is TRUE for the pseudo-def at ENTRY
	case *ssa.PhiDef:
		n := 0
		for _, arg := range d.Args {
			n += a.rcount(arg, u, level, visit)
		}
		return n
	case *ssa.RegularDef:
		if a.Dep.IsArrayDep(d, u, level) {
			return 1
		}
		// All regular array defs are preserving: look through.
		return a.rcount(d.Input, u, level, visit)
	}
	return 0
}

// defPosition returns the position "immediately after d".
func (a *Analysis) defPosition(d ssa.Def) Position {
	switch d := d.(type) {
	case *ssa.EntryDef:
		return Position{Block: a.G.EntryBlock, After: -1}
	case *ssa.RegularDef:
		return Position{Block: d.Stmt.Block, After: d.Stmt.Index}
	case *ssa.PhiDef:
		return Position{Block: d.Blk, After: -1}
	}
	panic("core: unknown def kind")
}

// ---------------------------------------------------------------------
// Candidate positions (§4.4, Fig. 9e)

// posDominates reports whether position p dominates (executes no later
// than) position q.
func (a *Analysis) posDominates(p, q Position) bool {
	if p.Block == q.Block {
		return p.After <= q.After
	}
	return a.Dom.StrictlyDominates(p.Block, q.Block)
}

// computeCandidates marks every statement on the dominator-tree path
// from Latest(u) up to Earliest(u) (Claims 4.5–4.6). Candidates are
// ordered earliest-first.
func (a *Analysis) computeCandidates(e *Entry) error {
	var cands []Position
	c := e.Latest.Block
	if c == e.Earliest.Block {
		for k := e.Earliest.After; k <= e.Latest.After; k++ {
			cands = append(cands, Position{Block: c, After: k})
		}
		e.Candidates = cands
		return nil
	}
	// Latest's block: positions from block top through Latest.
	var below [][]Position
	var blk []Position
	for k := -1; k <= e.Latest.After; k++ {
		blk = append(blk, Position{Block: c, After: k})
	}
	below = append(below, blk)
	c = a.Dom.IDom(c)
	for c != nil && c != e.Earliest.Block {
		blk = nil
		for k := -1; k < len(c.Stmts); k++ {
			blk = append(blk, Position{Block: c, After: k})
		}
		below = append(below, blk)
		c = a.Dom.IDom(c)
	}
	if c == nil {
		return fmt.Errorf("core: dominator walk from %s missed earliest %s for %s", e.Latest, e.Earliest, e)
	}
	blk = nil
	for k := e.Earliest.After; k < len(c.Stmts); k++ {
		blk = append(blk, Position{Block: c, After: k})
	}
	below = append(below, blk)
	// Assemble earliest-first.
	for i := len(below) - 1; i >= 0; i-- {
		cands = append(cands, below[i]...)
	}
	e.Candidates = cands
	return nil
}

func (a *Analysis) computePlacementRange(e *Entry) error {
	if e.Kind == KindReduce {
		a.computeReduceRange(e)
		return nil
	}
	a.computeLatest(e)
	if err := a.computeEarliest(e); err != nil {
		return err
	}
	// The earliest point may sit deeper than or past Latest only when
	// a dependence pins communication next to the use; clamp so the
	// candidate walk is well formed.
	if !a.posDominates(e.Earliest, e.Latest) && e.Earliest != e.Latest {
		e.Earliest = e.Latest
		e.EarliestDef = nil
	}
	return a.computeCandidates(e)
}

// computeReduceRange places reduction communication per §6.2: the
// partial result is computed at the reduction statement, so the global
// combine may happen anywhere between that statement and the first use
// of the result — intervening redefinitions of the summed array cannot
// stale the already-computed partial. The prototype (like the paper's)
// sinks only within the defining basic block, which is exactly enough
// for adjacent reductions to land on a common point and combine ("as
// in gravity").
func (a *Analysis) computeReduceRange(e *Entry) {
	st := e.Use().Stmt
	e.CommLevel = st.NL()
	e.EarliestDef = nil
	e.Earliest = Position{Block: st.Block, After: st.Index}
	lhs := st.Assign.LHS.Name
	last := st.Index
	for k := st.Index + 1; k < len(st.Block.Stmts); k++ {
		if stmtReadsScalar(st.Block.Stmts[k], lhs) {
			break
		}
		last = k
	}
	e.Latest = Position{Block: st.Block, After: last}
	e.Candidates = nil
	for k := st.Index; k <= last; k++ {
		e.Candidates = append(e.Candidates, Position{Block: st.Block, After: k})
	}
}

// stmtReadsScalar reports whether a statement's RHS or subscripts
// mention the named scalar.
func stmtReadsScalar(st *cfg.Stmt, name string) bool {
	found := false
	check := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		if r, ok := e.(*ast.Ref); ok && r.Name == name {
			found = true
		}
	}
	ast.WalkExprs(st.Assign.RHS, check)
	for _, sub := range st.Assign.LHS.Subs {
		ast.WalkExprs(sub.X, check)
		ast.WalkExprs(sub.Lo, check)
		ast.WalkExprs(sub.Hi, check)
		ast.WalkExprs(sub.Step, check)
	}
	return found
}

// ---------------------------------------------------------------------
// Diagonal coalescing and identical-entry merging (pHPF front-end
// optimizations the paper assumes: message coalescing subsumes
// diagonal NNC using augmented axis exchanges, §2.2).

func (a *Analysis) coalesceDiagonals() {
	// Collect axis entries by (array, grid dim, sign, home loop).
	type key struct {
		array string
		dim   int
		sign  int
		loop  *cfg.Loop
	}
	axis := map[key]*Entry{}
	homeLoop := func(e *Entry) *cfg.Loop {
		st := e.Use().Stmt
		if len(st.Loops) == 0 {
			return nil
		}
		return st.Loops[len(st.Loops)-1] // innermost loop = the nest
	}
	for _, e := range a.Entries {
		if e.Kind != KindShift {
			continue
		}
		if nz := nonZeroCount(e.Offsets); nz == 1 {
			k := key{e.Array, e.Map.GridDim, e.Map.Sign, homeLoop(e)}
			if old, ok := axis[k]; !ok || e.Map.Width > old.Map.Width {
				axis[k] = e
			}
		}
	}
	for _, e := range a.Entries {
		if e.Kind != KindShift || nonZeroCount(e.Offsets) < 2 {
			continue
		}
		e.Coalesced = true
		for g, c := range e.Offsets {
			if c == 0 {
				continue
			}
			sign := 1
			if c < 0 {
				sign = -1
			}
			k := key{e.Array, g, sign, homeLoop(e)}
			carrier, ok := axis[k]
			if !ok {
				// Synthesize the axis exchange the diagonal rides on.
				carrier = &Entry{
					ID:      len(a.Entries),
					Array:   e.Array,
					Kind:    KindShift,
					Uses:    e.Uses,
					Offsets: axisOffsets(len(e.Offsets), g, c),
					Map:     shiftMapping(a.Unit.Grid.Shape, g, c),
					dims:    e.dims,
				}
				a.Entries = append(a.Entries, carrier)
				axis[k] = carrier
			} else {
				// The carrier now also serves the diagonal's reads, so
				// its placement range must honour the diagonal's
				// dependences too (a same-sweep carried diagonal pins
				// the exchange inside the carrying loop).
				carrier.Uses = append(carrier.Uses, e.Uses...)
			}
			if w := abs(c); w > carrier.Map.Width {
				carrier.Map.Width = w
			}
			// Augment the carrier's section so the axis exchanges
			// cover the diagonal's corner data (the "augmented form of
			// the NNC along the two axes", §2.2).
			if hull, _, ok := (asd.SymSection{Dims: carrier.dims}).Hull(asd.SymSection{Dims: e.dims}); ok {
				carrier.dims = hull.Dims
			}
			e.Carriers = append(e.Carriers, carrier)
		}
	}
}

func axisOffsets(n, dim, c int) []int {
	out := make([]int, n)
	out[dim] = c
	return out
}

func nonZeroCount(xs []int) int {
	n := 0
	for _, x := range xs {
		if x != 0 {
			n++
		}
	}
	return n
}

// CommEntries returns the entries that require placement (excluding
// coalesced diagonals).
func (a *Analysis) CommEntries() []*Entry {
	var out []*Entry
	for _, e := range a.Entries {
		if !e.Coalesced {
			out = append(out, e)
		}
	}
	return out
}
