package core

import (
	"gcao/internal/obs"
)

// recordDecisions writes one obs.Decision per communication entry —
// including coalesced diagonals — onto the recorder after a placement:
// the machine-readable version of the annotation the paper's prototype
// wrote into its listing file (Fig. 6). Entries are emitted in ID
// order, so the log is deterministic.
func (a *Analysis) recordDecisions(rec *obs.Recorder, res *Result) {
	if rec == nil {
		return
	}
	groupOf := map[*Entry]*Group{}
	for _, g := range res.Groups {
		for _, e := range g.Entries {
			groupOf[e] = g
		}
	}
	for _, e := range a.Entries {
		d := obs.Decision{
			Version:    res.Version.String(),
			Entry:      e.ID,
			Array:      e.Array,
			Kind:       e.Kind.String(),
			CommLevel:  e.CommLevel,
			SubsumedBy: -1,
			Group:      -1,
		}
		if e.Coalesced {
			d.Outcome = obs.OutcomeCoalesced
			for _, c := range e.Carriers {
				d.Carriers = append(d.Carriers, c.ID)
			}
			rec.AddDecision(d)
			continue
		}
		d.Earliest = e.Earliest.String()
		d.Latest = e.Latest.String()
		for _, p := range e.Candidates {
			d.Candidates = append(d.Candidates, p.String())
		}
		if by, ok := res.Redundant[e]; ok {
			d.Outcome = obs.OutcomeSubsumed
			d.SubsumedBy = by.ID
			if p, ok := res.subsumedAt[e]; ok {
				d.SubsumedAt = p.String()
			}
		} else if g := groupOf[e]; g != nil {
			d.Outcome = obs.OutcomePlaced
			d.Group = g.ID
			d.GroupPos = g.Pos.String()
			d.GroupSize = len(g.Entries)
			d.Combined = len(g.Entries) > 1
			d.Site = g.SiteID
		}
		rec.AddDecision(d)
	}
}
