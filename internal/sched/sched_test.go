package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitRunsTask(t *testing.T) {
	p := New(2, 4)
	defer p.Close()
	v, err := p.Submit(context.Background(), func(context.Context) (any, error) {
		return 42, nil
	})
	if err != nil || v.(int) != 42 {
		t.Fatalf("Submit = %v, %v", v, err)
	}
	boom := errors.New("boom")
	_, err = p.Submit(context.Background(), func(context.Context) (any, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Submit error = %v", err)
	}
	st := p.Stats()
	if st.Submitted != 2 || st.Completed != 1 || st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestQueueFull pins the admission contract: with one worker occupied
// and the depth-1 queue holding one job, the next submission is
// rejected immediately with ErrQueueFull.
func TestQueueFull(t *testing.T) {
	p := New(1, 1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupies the worker
		defer wg.Done()
		p.Submit(context.Background(), func(context.Context) (any, error) {
			close(started)
			<-block
			return nil, nil
		})
	}()
	<-started
	wg.Add(1)
	go func() { // sits in the queue
		defer wg.Done()
		p.Submit(context.Background(), func(context.Context) (any, error) { return nil, nil })
	}()
	// Wait until the queue slot is taken.
	for i := 0; p.Stats().Queued != 1; i++ {
		if i > 1000 {
			t.Fatal("queued job never registered")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := p.Submit(context.Background(), func(context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Submit = %v, want ErrQueueFull", err)
	}
	if p.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d", p.Stats().Rejected)
	}
	close(block)
	wg.Wait()
}

// TestExpiredJobSkipped: a job whose deadline lapses while queued is
// never run.
func TestExpiredJobSkipped(t *testing.T) {
	p := New(1, 2)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), func(context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired when it reaches a worker
	ran := make(chan struct{}, 1)
	_, err := p.Submit(ctx, func(context.Context) (any, error) {
		ran <- struct{}{}
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit = %v, want context.Canceled", err)
	}
	close(block)
	// Give the worker a chance to (wrongly) run the canceled job.
	for i := 0; p.Stats().Expired == 0; i++ {
		if i > 1000 {
			t.Fatal("canceled job never drained")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-ran:
		t.Fatal("expired job was executed")
	default:
	}
}

func TestSubmitDeadlineWhileRunning(t *testing.T) {
	p := New(1, 1)
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	_, err := p.Submit(ctx, func(context.Context) (any, error) {
		<-done
		return nil, nil
	})
	close(done)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit = %v, want DeadlineExceeded", err)
	}
}

func TestBatchPerItemResults(t *testing.T) {
	p := New(2, 8)
	defer p.Close()
	boom := errors.New("boom")
	tasks := make([]BatchTask, 8)
	for i := range tasks {
		i := i
		tasks[i] = BatchTask{Run: func(context.Context) (any, error) {
			if i == 3 {
				return nil, boom
			}
			return i * i, nil
		}}
	}
	results := p.Batch(context.Background(), tasks)
	if len(results) != 8 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if i == 3 {
			if !errors.Is(r.Err, boom) {
				t.Fatalf("item 3 err = %v", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Value.(int) != i*i {
			t.Fatalf("item %d = %v, %v", i, r.Value, r.Err)
		}
	}
}

// TestBatchBoundedWorkers: a batch wider than the pool still completes,
// and concurrency never exceeds the worker count.
func TestBatchBoundedWorkers(t *testing.T) {
	const workers = 2
	p := New(workers, 16)
	defer p.Close()
	var cur, peak atomic.Int64
	tasks := make([]BatchTask, 8)
	for i := range tasks {
		tasks[i] = BatchTask{Run: func(context.Context) (any, error) {
			n := cur.Add(1)
			for {
				pk := peak.Load()
				if n <= pk || peak.CompareAndSwap(pk, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return nil, nil
		}}
	}
	results := p.Batch(context.Background(), tasks)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d failed: %v", i, r.Err)
		}
	}
	if pk := peak.Load(); pk > workers {
		t.Fatalf("observed %d concurrent tasks, pool has %d workers", pk, workers)
	}
	if st := p.Stats(); st.Completed != 8 {
		t.Fatalf("completed = %d", st.Completed)
	}
}

func TestCloseFailsQueuedJobs(t *testing.T) {
	p := New(1, 4)
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), func(context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := p.Submit(context.Background(), func(context.Context) (any, error) { return nil, nil })
			errs <- err
		}()
	}
	for i := 0; p.Stats().Queued != 2; i++ {
		if i > 1000 {
			t.Fatal("jobs never queued")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	p.Close()
	for i := 0; i < 2; i++ {
		// Each queued job either ran before shutdown or was failed with
		// ErrClosed; neither may hang.
		if err := <-errs; err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("queued job err = %v", err)
		}
	}
	if _, err := p.Submit(context.Background(), func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Submit = %v", err)
	}
}

// TestPoolHammer drives many concurrent submissions through a small
// pool; run with -race. Rejections are allowed, hangs and lost results
// are not.
func TestPoolHammer(t *testing.T) {
	p := New(4, 8)
	defer p.Close()
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v, err := p.Submit(context.Background(), func(context.Context) (any, error) {
					return fmt.Sprintf("%d-%d", g, i), nil
				})
				switch {
				case errors.Is(err, ErrQueueFull):
					rejected.Add(1)
				case err != nil:
					t.Errorf("Submit: %v", err)
				case v.(string) != fmt.Sprintf("%d-%d", g, i):
					t.Errorf("wrong result %v", v)
				default:
					ok.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if ok.Load() != st.Completed || rejected.Load() != st.Rejected {
		t.Fatalf("stats mismatch: ok=%d completed=%d rejected=%d/%d",
			ok.Load(), st.Completed, rejected.Load(), st.Rejected)
	}
	if ok.Load()+rejected.Load() != 16*50 {
		t.Fatalf("lost submissions: %d + %d != 800", ok.Load(), rejected.Load())
	}
}

// TestQueueWaitObserver pins the queue-wait ledger: every dequeued
// job reports its admission→dequeue wait, including a job held behind
// a busy worker.
func TestQueueWaitObserver(t *testing.T) {
	p := New(1, 2)
	defer p.Close()
	var mu sync.Mutex
	var waits []time.Duration
	p.SetQueueWaitObserver(func(d time.Duration) {
		mu.Lock()
		waits = append(waits, d)
		mu.Unlock()
	})
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Submit(context.Background(), func(context.Context) (any, error) {
			close(started)
			<-block
			return nil, nil
		})
	}()
	<-started
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Submit(context.Background(), func(context.Context) (any, error) { return nil, nil })
	}()
	for i := 0; p.Stats().Queued != 1; i++ {
		if i > 5000 {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the queued job accrue wait
	close(block)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(waits) != 2 {
		t.Fatalf("observed %d waits, want 2", len(waits))
	}
	// The second job waited behind the blocked worker for >= 20ms.
	var max time.Duration
	for _, d := range waits {
		if d < 0 {
			t.Fatalf("negative wait %v", d)
		}
		if d > max {
			max = d
		}
	}
	if max < 20*time.Millisecond {
		t.Fatalf("max queue wait %v, want >= 20ms", max)
	}
}

// TestAvgServiceEWMA pins the service-time estimate used for derived
// Retry-After: it converges toward the observed job duration and
// EstimateDrain scales with the backlog.
func TestAvgServiceEWMA(t *testing.T) {
	p := New(1, 8)
	defer p.Close()
	if p.AvgService() != 0 || p.EstimateDrain() != 0 {
		t.Fatal("fresh pool reports a service time")
	}
	for i := 0; i < 8; i++ {
		p.Submit(context.Background(), func(context.Context) (any, error) {
			time.Sleep(5 * time.Millisecond)
			return nil, nil
		})
	}
	avg := p.AvgService()
	if avg < 4*time.Millisecond || avg > 100*time.Millisecond {
		t.Fatalf("avg service %v, want around 5ms", avg)
	}
	if p.Stats().AvgServiceUS < 4000 {
		t.Fatalf("stats avg_service_us = %d", p.Stats().AvgServiceUS)
	}
	// With an idle pool the drain estimate is zero; it grows with the
	// backlog (checked synthetically to stay deterministic).
	if got := p.EstimateDrain(); got != 0 {
		t.Fatalf("idle drain estimate = %v", got)
	}
	p.queued.Store(6)
	want := time.Duration(6 * p.avgServiceNS.Load())
	if got := p.EstimateDrain(); got != want {
		t.Fatalf("drain estimate = %v, want %v", got, want)
	}
	p.queued.Store(0)
}
