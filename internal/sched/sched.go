// Package sched implements the daemon's batched placement scheduler: a
// bounded worker pool with an admission queue. Admission is
// non-blocking — when the queue is full the submission is rejected
// immediately with ErrQueueFull so the caller can shed load (the HTTP
// layer maps it to 429 + Retry-After) instead of letting latency grow
// without bound. Every job carries a context; a job whose deadline
// expires while it waits in the queue is skipped, not run, so a burst
// never wastes workers on requests nobody is waiting for anymore. The
// Batch API fans a set of jobs across the workers and reports per-item
// results.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by Submit when the admission queue has no
// room; the caller should shed the request (HTTP 429) and retry later.
var ErrQueueFull = errors.New("sched: admission queue full")

// ErrClosed is returned for jobs still queued when the pool shuts
// down, and for submissions after Close.
var ErrClosed = errors.New("sched: pool closed")

// Task is one unit of work; the context carries the request deadline.
type Task func(ctx context.Context) (any, error)

type result struct {
	v   any
	err error
}

type job struct {
	ctx context.Context
	fn  Task
	out chan result // buffered: workers never block delivering
	enq time.Time   // admission time, for the queue-wait ledger
}

// Pool is a fixed set of workers fed from a bounded admission queue.
type Pool struct {
	queue chan *job
	stop  chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool

	workers int
	depth   int

	queued    atomic.Int64
	active    atomic.Int64
	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	expired   atomic.Int64

	// avgServiceNS is an EWMA of per-job run time (α = 1/8), the
	// basis of queue-drain estimates like the HTTP layer's derived
	// Retry-After.
	avgServiceNS atomic.Int64
	// onQueueWait, when set, observes every job's admission→dequeue
	// wait (including jobs that expired in the queue — that wait is
	// exactly the signal a saturation ledger needs).
	onQueueWait func(time.Duration)
}

// New starts a pool of workers fed from an admission queue of the
// given depth. workers < 1 defaults to GOMAXPROCS; depth < 1 defaults
// to 4×workers.
func New(workers, depth int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth < 1 {
		depth = 4 * workers
	}
	p := &Pool{
		queue:   make(chan *job, depth),
		stop:    make(chan struct{}),
		workers: workers,
		depth:   depth,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case j := <-p.queue:
			p.queued.Add(-1)
			p.run(j)
		}
	}
}

func (p *Pool) run(j *job) {
	if p.onQueueWait != nil {
		p.onQueueWait(time.Since(j.enq))
	}
	// A job whose caller already gave up (queue wait exceeded the
	// deadline) is skipped rather than run.
	if err := j.ctx.Err(); err != nil {
		p.expired.Add(1)
		j.out <- result{nil, err}
		return
	}
	p.active.Add(1)
	start := time.Now()
	v, err := j.fn(j.ctx)
	p.observeService(time.Since(start))
	p.active.Add(-1)
	if err != nil {
		p.failed.Add(1)
	} else {
		p.completed.Add(1)
	}
	j.out <- result{v, err}
}

// observeService folds one job's run time into the service-time EWMA.
func (p *Pool) observeService(d time.Duration) {
	for {
		old := p.avgServiceNS.Load()
		next := int64(d)
		if old > 0 {
			next = old + (int64(d)-old)/8
		}
		if p.avgServiceNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetQueueWaitObserver registers a callback receiving every job's
// queue wait (admission to dequeue). Set it before the pool serves
// traffic; the callback must be safe for concurrent use.
func (p *Pool) SetQueueWaitObserver(fn func(time.Duration)) {
	p.onQueueWait = fn
}

// AvgService returns the EWMA of per-job run time (0 before the
// first job completes).
func (p *Pool) AvgService() time.Duration {
	return time.Duration(p.avgServiceNS.Load())
}

// EstimateDrain estimates how long the current backlog (queued plus
// running jobs) will take to clear: backlog × average service time
// spread over the workers. It returns 0 until a service time has
// been observed.
func (p *Pool) EstimateDrain() time.Duration {
	avg := p.avgServiceNS.Load()
	if avg <= 0 {
		return 0
	}
	backlog := p.queued.Load() + p.active.Load()
	return time.Duration(backlog * avg / int64(p.workers))
}

// Submit enqueues one task and waits for its result. It returns
// ErrQueueFull immediately when the admission queue is full, ErrClosed
// after Close, and the context's error if the deadline expires first
// (the task itself is then skipped or keeps running to completion in
// the background — its result is discarded).
func (p *Pool) Submit(ctx context.Context, fn Task) (any, error) {
	j := &job{ctx: ctx, fn: fn, out: make(chan result, 1), enq: time.Now()}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	select {
	case p.queue <- j:
		p.submitted.Add(1)
		p.queued.Add(1)
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		p.rejected.Add(1)
		return nil, ErrQueueFull
	}
	select {
	case r := <-j.out:
		return r.v, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// BatchTask is one item of a Batch: an optional per-item context (the
// batch context is used when nil) and the task to run.
type BatchTask struct {
	Ctx context.Context
	Run Task
}

// BatchResult is one item's outcome.
type BatchResult struct {
	Index int
	Value any
	Err   error
}

// Batch submits every task concurrently and waits for all results.
// Per-item failures — including ErrQueueFull on admission overflow and
// context errors on expiry — land in the item's result rather than
// aborting the batch, so the caller can report per-item status.
func (p *Pool) Batch(ctx context.Context, tasks []BatchTask) []BatchResult {
	out := make([]BatchResult, len(tasks))
	var wg sync.WaitGroup
	for i, t := range tasks {
		wg.Add(1)
		go func(i int, t BatchTask) {
			defer wg.Done()
			tctx := t.Ctx
			if tctx == nil {
				tctx = ctx
			}
			v, err := p.Submit(tctx, t.Run)
			out[i] = BatchResult{Index: i, Value: v, Err: err}
		}(i, t)
	}
	wg.Wait()
	return out
}

// Close stops the workers and fails every job still in the queue with
// ErrClosed. It is safe to call once; subsequent calls are no-ops.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	for {
		select {
		case j := <-p.queue:
			p.queued.Add(-1)
			j.out <- result{nil, ErrClosed}
		default:
			return
		}
	}
}

// Stats is a point-in-time snapshot of the pool.
type Stats struct {
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
	Queued     int64 `json:"queued"`
	Active     int64 `json:"active"`
	Submitted  int64 `json:"submitted"`
	Rejected   int64 `json:"rejected"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Expired    int64 `json:"expired"`
	// AvgServiceUS is the EWMA of per-job run time in microseconds.
	AvgServiceUS int64 `json:"avg_service_us"`
}

// Stats snapshots the pool's occupancy and lifetime counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Workers:      p.workers,
		QueueDepth:   p.depth,
		Queued:       p.queued.Load(),
		Active:       p.active.Load(),
		Submitted:    p.submitted.Load(),
		Rejected:     p.rejected.Load(),
		Completed:    p.completed.Load(),
		Failed:       p.failed.Load(),
		Expired:      p.expired.Load(),
		AvgServiceUS: p.AvgService().Microseconds(),
	}
}
