// Interprocedural walkthrough (§7): a relaxation step factored into a
// subroutine and called on two fields. After inlining, the global
// algorithm combines the two call sites' exchanges into one message
// per direction — optimization across procedure boundaries.
package main

import (
	"fmt"
	"log"

	"gcao"
	"gcao/internal/codegen"
)

const src = `
routine main(n, steps)
real a(n, n), b(n, n), ra(n, n), rb(n, n)
!hpf$ distribute (block, block) :: a, b, ra, rb
do i = 1, n
do j = 1, n
a(i, j) = i + 2 * j
b(i, j) = 3 * i - j
ra(i, j) = 0
rb(i, j) = 0
enddo
enddo
do it = 1, steps
call relaxstep(a, ra, n)
call relaxstep(b, rb, n)
do i = 2, n - 1
do j = 2, n - 1
a(i, j) = a(i, j) + 0.1 * ra(i, j)
b(i, j) = b(i, j) + 0.1 * rb(i, j)
enddo
enddo
enddo
end

routine relaxstep(q, r, n)
real q(n, n), r(n, n)
do i = 2, n - 1
do j = 2, n - 1
r(i, j) = q(i - 1, j) + q(i + 1, j) + q(i, j - 1) + q(i, j + 1) - 4 * q(i, j)
enddo
enddo
end
`

func main() {
	cfg := gcao.Config{Params: map[string]int{"n": 16, "steps": 2}, Procs: 4}
	c, err := gcao.CompileProgram(src, "main", cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []gcao.Strategy{gcao.Vectorize, gcao.Combine} {
		placed, err := c.Place(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s: %d exchanges per timestep\n", s, placed.Messages())
	}
	placed, err := c.Place(gcao.Combine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nannotated listing (note each exchange carries both a and b):")
	fmt.Print(codegen.Emit(placed.Result))

	// Verify against an independently compiled sequential run.
	run, err := placed.Simulate(gcao.SP2(), 4)
	if err != nil {
		log.Fatal(err)
	}
	seqC, err := gcao.CompileProgram(src, "main", gcao.Config{Params: cfg.Params, Procs: 1})
	if err != nil {
		log.Fatal(err)
	}
	seqP, err := seqC.Place(gcao.Combine)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := seqP.Simulate(gcao.SP2(), 1)
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for _, name := range run.Mem.Unit.ArrayNames {
		p := run.Mem.Canonical(name)
		s := seq.Mem.Canonical(name)
		for i := range p {
			if p[i] != s[i] {
				same = false
			}
		}
	}
	fmt.Printf("\nfunctional simulation matches sequential run: %v\n", same)
}
