// Syntax sensitivity (Fig. 3): three semantically equivalent programs.
// Earliest placement can combine the messages for a and b only when
// their definitions share a loop (the hand-coded form); the global
// algorithm produces one combined message for all three forms.
package main

import (
	"fmt"
	"log"

	"gcao"
)

var forms = []struct {
	name string
	src  string
}{
	{"F90 source", `
routine f90(n)
real a(n), b(n), c(n)
!hpf$ processors p(4)
!hpf$ distribute (block) :: a, b, c
a(1:n) = 3
b(1:n) = 4
c(2:n) = a(1:n-1) + b(1:n-1)
end
`},
	{"scalarized", `
routine scal(n)
real a(n), b(n), c(n)
!hpf$ processors p(4)
!hpf$ distribute (block) :: a, b, c
do i = 1, n
a(i) = 3
enddo
do i = 1, n
b(i) = 4
enddo
do i = 2, n
c(i) = a(i - 1) + b(i - 1)
enddo
end
`},
	{"hand-coded F77", `
routine hand(n)
real a(n), b(n), c(n)
!hpf$ processors p(4)
!hpf$ distribute (block) :: a, b, c
do i = 1, n
a(i) = 3
b(i) = 4
enddo
do i = 2, n
c(i) = a(i - 1) + b(i - 1)
enddo
end
`},
}

func main() {
	fmt.Println("Fig. 3: three equivalent programs, messages placed per strategy")
	fmt.Printf("%-15s %18s %18s\n", "form", "earliest placement", "global algorithm")
	for _, f := range forms {
		c, err := gcao.Compile(f.src, gcao.Config{Params: map[string]int{"n": 64}, Procs: 4})
		if err != nil {
			log.Fatal(err)
		}
		earliest, err := c.Place(gcao.EarliestRedundancy)
		if err != nil {
			log.Fatal(err)
		}
		// Count distinct placement points: co-located messages could be
		// combined by a peephole pass; separated ones cannot.
		points := map[string]bool{}
		for _, g := range earliest.Result.Groups {
			points[g.Pos.String()] = true
		}
		comb, err := c.Place(gcao.Combine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %12d points %12d message(s)\n", f.name, len(points), comb.Messages())
	}
	fmt.Println("\nThe global algorithm is insensitive to the surface syntax: it")
	fmt.Println("evaluates all candidate placements and always finds the shared one.")
}
