// Quickstart: compile a small block-distributed stencil, compare the
// three placement strategies, and run the optimized program on the
// simulated SP2 with numerical verification.
package main

import (
	"fmt"
	"log"

	"gcao"
)

const src = `
routine smooth(n, steps)
real a(n, n), b(n, n), ra(n, n), rb(n, n)
!hpf$ distribute (block, block) :: a, b, ra, rb
do i = 1, n
do j = 1, n
a(i, j) = mod(i * 7 + j * 3, 11) * 0.5
b(i, j) = mod(i * 2 + j * 5, 13) * 0.25
ra(i, j) = 0
rb(i, j) = 0
enddo
enddo
do it = 1, steps
do i = 2, n - 1
do j = 2, n - 1
ra(i, j) = 0.25 * (a(i - 1, j) + a(i + 1, j) + a(i, j - 1) + a(i, j + 1))
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
rb(i, j) = 0.25 * (b(i - 1, j) + b(i + 1, j) + b(i, j - 1) + b(i, j + 1))
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
a(i, j) = a(i, j) + 0.5 * (ra(i, j) - a(i, j))
b(i, j) = b(i, j) + 0.5 * (rb(i, j) - b(i, j))
enddo
enddo
enddo
end
`

func main() {
	cfg := gcao.Config{Params: map[string]int{"n": 16, "steps": 3}, Procs: 4}
	c, err := gcao.Compile(src, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d non-local references needing communication:\n", len(c.Entries()))
	for _, e := range c.Entries() {
		fmt.Printf("  %v: %v via %v\n", e, e.SectionAt(c.Analysis, e.Latest.Level()), e.Map)
	}
	fmt.Println()

	for _, s := range []gcao.Strategy{gcao.Vectorize, gcao.EarliestRedundancy, gcao.Combine} {
		placed, err := c.Place(s)
		if err != nil {
			log.Fatal(err)
		}
		cost, err := placed.Estimate(gcao.SP2())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s: %2d messages placed, estimated %.1f ms/run (%.1f ms network)\n",
			s, placed.Messages(), cost.Total()*1e3, cost.Net*1e3)
	}

	// Run the optimized placement on the functional simulator and
	// verify against an independent sequential execution.
	placed, err := c.Place(gcao.Combine)
	if err != nil {
		log.Fatal(err)
	}
	if err := placed.Verify(src, cfg, gcao.SP2(), 4); err != nil {
		log.Fatal(err)
	}
	run, err := placed.Simulate(gcao.SP2(), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfunctional simulation ok: %d dynamic messages, %d bytes moved, results match sequential run\n",
		run.Ledger.DynMessages, run.Ledger.BytesMoved)
}
