// Gravity walkthrough: the Fig. 1 story. The NPAC gravity code does
// four nearest-neighbour exchanges and four global sums for each of
// two fields per plane; the global algorithm combines them into four
// exchanges and two parallel sets of four sums.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"gcao"
	"gcao/internal/bench"
	"gcao/internal/core"
)

func main() {
	pr, err := bench.ByName("gravity", "main")
	if err != nil {
		log.Fatal(err)
	}
	cfg := gcao.Config{Params: pr.Params(16), Procs: 16}
	c, err := gcao.Compile(pr.Source, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("NPAC gravity, n=16, P=16")
	fmt.Printf("%-7s %6s %6s\n", "version", "NNC", "SUM")
	for _, s := range []gcao.Strategy{gcao.Vectorize, gcao.EarliestRedundancy, gcao.Combine} {
		placed, err := c.Place(s)
		if err != nil {
			log.Fatal(err)
		}
		counts := placed.MessageCounts()
		fmt.Printf("%-7s %6d %6d\n", s, counts[core.KindShift], counts[core.KindReduce])
	}

	placed, err := c.Place(gcao.Combine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncombined schedule per i-plane:")
	for _, g := range placed.Result.Groups {
		arrays := map[string]bool{}
		for _, e := range g.Entries {
			arrays[e.Array] = true
		}
		var names []string
		for n := range arrays {
			names = append(names, n)
		}
		sort.Strings(names)
		switch g.Kind {
		case core.KindReduce:
			fmt.Printf("  GLOBAL-SUM x%d   {%s}\n", len(g.Entries), strings.Join(names, ","))
		default:
			fmt.Printf("  EXCHANGE %-12v {%s}\n", g.Map, strings.Join(names, ","))
		}
	}

	// Verify the combined placement functionally on a small instance.
	small := gcao.Config{Params: pr.Params(6), Procs: 4}
	cs, err := gcao.Compile(pr.Source, small)
	if err != nil {
		log.Fatal(err)
	}
	ps, err := cs.Place(gcao.Combine)
	if err != nil {
		log.Fatal(err)
	}
	if err := ps.Verify(pr.Source, small, gcao.SP2(), 4); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfunctional simulation at n=6, P=4 verified against sequential execution")
}
