// Shallow-water walkthrough: compiles the NCAR shallow benchmark,
// shows how the global algorithm schedules its communication (the
// Fig. 2 story: 8 exchanges per timestep instead of 14 or 18), and
// compares estimated running times on both machines.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"gcao"
	"gcao/internal/bench"
)

func main() {
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		log.Fatal(err)
	}
	cfg := gcao.Config{Params: pr.Params(64), Procs: 16}
	c, err := gcao.Compile(pr.Source, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("NCAR shallow water, n=64, P=16")
	for _, s := range []gcao.Strategy{gcao.Vectorize, gcao.EarliestRedundancy, gcao.Combine} {
		placed, err := c.Place(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s: %d exchanges per timestep\n", s, placed.Messages())
	}

	placed, err := c.Place(gcao.Combine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncombined schedule (one line per runtime call):")
	for _, g := range placed.Result.Groups {
		arrays := map[string]bool{}
		for _, e := range g.Entries {
			arrays[e.Array] = true
		}
		var names []string
		for n := range arrays {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("  COMM %-22v {%s}\n", g.Map, strings.Join(names, ","))
	}

	fmt.Println("\nestimated normalized running time (orig = 1.0):")
	for _, mname := range []string{"SP2", "NOW"} {
		m, err := gcao.MachineByName(mname)
		if err != nil {
			log.Fatal(err)
		}
		bars, err := c.CompareStrategies(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s:", mname)
		for _, b := range bars {
			fmt.Printf("  %s=%.3f (net %.3f)", b.Version, b.CPU+b.Net, b.Net)
		}
		fmt.Println()
	}

	// Small functional run with verification.
	small := gcao.Config{Params: pr.Params(8), Procs: 4}
	cs, err := gcao.Compile(pr.Source, small)
	if err != nil {
		log.Fatal(err)
	}
	ps, err := cs.Place(gcao.Combine)
	if err != nil {
		log.Fatal(err)
	}
	if err := ps.Verify(pr.Source, small, gcao.SP2(), 4); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfunctional simulation at n=8, P=4 verified against sequential execution")
}
