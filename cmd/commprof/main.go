// commprof runs one benchmark routine on the functional simulator
// under a placement strategy and prints its communication profile: the
// sender→receiver byte matrix as an ASCII heatmap, the per-superstep
// timeline (one barrier-fenced communication group per row), and the
// per-processor compute/communication/idle time split.
//
// Usage:
//
//	commprof -bench shallow -procs 4 -version comb
//	commprof -bench trimesh -routine gauss -n 12 -procs 8 -machine NOW
//
// -metrics-out exports the full profile (plus placement counters and
// the decision log) as JSON; -explain prints the decision log.
// -blame k prints the top-k communication blame table — placement
// sites ranked by the cost they contribute to the communication
// critical path under a BSP cost model (-g/-L override the
// machine-derived per-byte and per-superstep knobs) — and -trace-out
// gains a superstep lane (tid 2) carrying the per-step h-relations.
//
// -native additionally executes the placement on the profiled native
// goroutine backend and prints the measured side: a per-processor
// phase heatmap (where each processor's wall time actually went),
// the straggler ranking, and the measured-vs-modeled calibration —
// machine constants (L, g) fitted by least squares from the run's own
// supersteps against the -machine model. With -trace-out the trace
// gains one lane per native processor (pid 2).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"gcao/internal/bench"
	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/native"
	nprof "gcao/internal/native/prof"
	"gcao/internal/obs"
	"gcao/internal/obs/attr"
	"gcao/internal/spmd"
)

// shades maps a pair's byte count, normalized to the matrix maximum,
// to a heatmap cell (light → heavy).
var shades = []string{".", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"}

func main() {
	benchName := flag.String("bench", "shallow", "benchmark name (shallow, gravity, trimesh, hydflo)")
	routine := flag.String("routine", "", "routine name (default: the benchmark's first routine)")
	n := flag.Int("n", 0, "problem size (0: a small functional-simulation default)")
	procs := flag.Int("procs", 4, "processor count")
	version := flag.String("version", "comb", "placement strategy: orig, nored, comb")
	machineName := flag.String("machine", "SP2", "machine cost model: SP2 or NOW")
	traceOut := flag.String("trace-out", "", "write pipeline phase spans as a Chrome trace_event JSON file")
	metricsOut := flag.String("metrics-out", "", "write counters, decision log and the communication profile as JSON")
	explain := flag.Bool("explain", false, "print the placement decision log")
	blame := flag.Int("blame", 0, "print the top-k communication blame table and critical path (0: off)")
	nativeRun := flag.Bool("native", false, "execute on the profiled native backend and print the measured per-processor profile and (L, g) calibration")
	gFlag := flag.Float64("g", 0, "BSP per-byte cost override for -blame, seconds/byte (0: derive from -machine)")
	lFlag := flag.Float64("L", 0, "BSP per-superstep latency override for -blame, seconds (0: derive from -machine)")
	flag.Parse()

	var v core.Version
	switch *version {
	case "orig":
		v = core.VersionOrig
	case "nored":
		v = core.VersionRedund
	case "comb":
		v = core.VersionCombine
	default:
		fatal(fmt.Errorf("unknown -version %q (want orig, nored, comb)", *version))
	}
	m, err := machine.ByName(*machineName)
	if err != nil {
		fatal(err)
	}
	var pr *bench.Program
	if *routine != "" {
		pr, err = bench.ByName(*benchName, *routine)
	} else {
		for _, p := range bench.Programs() {
			if p.Bench == *benchName {
				pr = p
				break
			}
		}
		if pr == nil {
			err = fmt.Errorf("unknown benchmark %q", *benchName)
		}
	}
	if err != nil {
		fatal(err)
	}
	size := *n
	if size == 0 {
		// The simulator executes elementwise; default to a small instance
		// that still exercises every communication pattern.
		size = 6
		if pr.Bench == "shallow" || pr.Bench == "trimesh" {
			size = 8
		}
	}

	rec := obs.New()
	a, err := pr.Compile(size, *procs)
	if err != nil {
		fatal(err)
	}
	a.Obs = rec
	res, err := a.Place(core.Options{Version: v})
	if err != nil {
		fatal(err)
	}
	run, err := spmd.Run(res, m, *procs)
	if err != nil {
		fatal(err)
	}
	prof := rec.CommProfile()
	if prof == nil {
		fatal(fmt.Errorf("simulator produced no communication profile"))
	}

	fmt.Printf("commprof: %s/%s n=%d P=%d version=%s machine=%s\n",
		pr.Bench, pr.Routine, size, *procs, v, *machineName)
	fmt.Printf("%d supersteps, %d dynamic messages, %d bytes moved, %d barriers\n\n",
		len(prof.Steps), prof.TotalMessages(), prof.TotalBytes(), run.Ledger.Barriers)

	writeMatrix(prof)
	writeTimeline(prof)
	writeProcSplit(prof)
	if *blame > 0 {
		writeBlame(rec, m, *blame, *gFlag, *lFlag)
	}
	if *nativeRun {
		out, err := native.RunProfiled(res, *procs, rec)
		if err != nil {
			fatal(err)
		}
		writeNativeProfile(out.Profile, rec, m, *gFlag, *lFlag)
	}

	if *explain {
		fmt.Println("== placement decisions ==")
		for _, d := range rec.Decisions() {
			fmt.Println(d.Format())
		}
	}
	writeObs(rec, *traceOut, *metricsOut)
}

// writeMatrix renders the sender→receiver byte matrix as a heatmap,
// one row per sender, shaded by the pair's share of the heaviest pair.
func writeMatrix(prof *obs.CommProfile) {
	fmt.Println("sender→receiver bytes (rows send, columns receive):")
	max := prof.MaxPairBytes()
	if max == 0 {
		fmt.Println("  (no point-to-point traffic)")
		fmt.Println()
		return
	}
	fmt.Print("      ")
	for d := 0; d < prof.Procs; d++ {
		fmt.Printf("%3d", d)
	}
	fmt.Println("   total")
	for s := 0; s < prof.Procs; s++ {
		var rowTotal int64
		fmt.Printf("  p%-3d", s)
		for d := 0; d < prof.Procs; d++ {
			b := prof.PairBytes[s][d]
			rowTotal += b
			if b == 0 {
				fmt.Printf("  %s", shades[0])
				continue
			}
			// Scale nonzero cells over shades[1:] so any traffic is
			// visually distinct from none.
			idx := 1 + int(b*int64(len(shades)-2)/max)
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			fmt.Printf("  %s", shades[idx])
		}
		fmt.Printf("  %7d\n", rowTotal)
	}
	fmt.Printf("  max pair: %d bytes\n\n", max)
}

// writeTimeline prints one row per superstep with a bar scaled to the
// heaviest superstep's byte count.
func writeTimeline(prof *obs.CommProfile) {
	fmt.Println("superstep timeline:")
	var maxBytes int64
	for _, s := range prof.Steps {
		if s.Bytes > maxBytes {
			maxBytes = s.Bytes
		}
	}
	fmt.Printf("  %4s  %-6s %-22s %8s %10s  %s\n", "step", "kind", "group", "msgs", "bytes", "bar")
	for _, s := range prof.Steps {
		bar := ""
		if maxBytes > 0 {
			bar = strings.Repeat("#", int(s.Bytes*30/maxBytes))
		}
		fmt.Printf("  %4d  %-6s %-22s %8d %10d  %s\n", s.Index, s.Kind, s.Label, s.Messages, s.Bytes, bar)
	}
	fmt.Println()
}

// writeBlame analyzes the run's cost-attribution record under the
// machine-derived BSP cost model (unless overridden by -g/-L) and
// prints the top-k bottleneck-site table plus the critical path.
func writeBlame(rec *obs.Recorder, m machine.Machine, k int, g, l float64) {
	run := rec.Attribution()
	if run == nil {
		fatal(fmt.Errorf("simulator produced no attribution record"))
	}
	model := attr.CostModel{GSecPerByte: m.PerByte, LSec: m.SendOverhead + m.RecvOverhead + m.Latency}
	if g > 0 {
		model.GSecPerByte = g
	}
	if l > 0 {
		model.LSec = l
	}
	rep := attr.Analyze(run, model)
	fmt.Print(rep.FormatBlame(k))
	fmt.Println("critical path chain:")
	for _, cs := range rep.CriticalPath {
		fmt.Printf("  step %4d  %-28s cost %10.4gs  cum %10.4gs\n", cs.Index, cs.Site, cs.CostSec, cs.CumSec)
	}
	fmt.Println()
}

// writeNativeProfile prints the measured side of the run: one heatmap
// row per native processor shading where its wall time went across the
// profiler's phases, the straggler ranking, and the least-squares
// (L, g) calibration against the simulator's attribution record under
// the -machine (or -g/-L) cost model.
func writeNativeProfile(np *nprof.NativeProfile, rec *obs.Recorder, m machine.Machine, g, l float64) {
	if np == nil {
		fatal(fmt.Errorf("native backend produced no profile"))
	}
	fmt.Printf("== native run: %d procs, %.6fs wall, %d supersteps ==\n",
		np.Procs, np.WallSeconds, len(np.Steps))
	fmt.Println("per-processor phase split (share of wall time):")
	fmt.Printf("  %-5s %-9s %-9s %-11s %-11s %-9s %10s %10s\n",
		"proc", "compute", "send", "recv-wait", "tree-wait", "sum", "wall(s)", "blocked(s)")
	for _, ps := range np.ProcTotals {
		cell := func(sec float64) string {
			if ps.WallSeconds <= 0 || sec <= 0 {
				return shades[0]
			}
			idx := 1 + int(sec/ps.WallSeconds*float64(len(shades)-2))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			return shades[idx]
		}
		fmt.Printf("  p%-4d %-9s %-9s %-11s %-11s %-9s %10.6f %10.6f\n",
			ps.Proc, cell(ps.ComputeSeconds), cell(ps.SendSeconds), cell(ps.RecvWaitSeconds),
			cell(ps.TreeWaitSeconds), cell(ps.SumSeconds), ps.WallSeconds, ps.BlockedSeconds)
	}
	fmt.Printf("  skew %.3fx (max/mean compute per superstep)", np.SkewRatio)
	if len(np.Stragglers) > 0 {
		fmt.Printf("  stragglers:")
		for i, p := range np.Stragglers {
			if i == 3 {
				break
			}
			fmt.Printf(" p%d", p)
		}
	}
	if np.Truncated {
		fmt.Printf("  [ring truncated]")
	}
	fmt.Println()

	run := rec.Attribution()
	if run == nil {
		fmt.Println("  (no attribution record; calibration skipped)")
		fmt.Println()
		return
	}
	model := attr.CostModel{GSecPerByte: m.PerByte, LSec: m.SendOverhead + m.RecvOverhead + m.Latency}
	if g > 0 {
		model.GSecPerByte = g
	}
	if l > 0 {
		model.LSec = l
	}
	c := np.Calibrate(obs.ModelSteps(run, model))
	if c.Degenerate {
		fmt.Printf("  calibration degenerate (%d points, no h spread)\n\n", c.Points)
		return
	}
	fmt.Printf("measured vs modeled (%d supersteps, R²=%.3f):\n", c.Points, c.R2)
	fmt.Printf("  fitted  L=%.4gs  g=%.4gs/B\n", c.FittedL, c.FittedG)
	fmt.Printf("  model   L=%.4gs  g=%.4gs/B (%s)\n", model.LSec, model.GSecPerByte, m.Name)
	fmt.Println("  worst per-site residuals (measured/modeled):")
	for i, r := range c.Residuals {
		if i == 5 {
			break
		}
		fmt.Printf("    %-32s %d step(s)  %8.4gs vs %8.4gs  %.2fx\n",
			r.Site, r.Steps, r.MeasuredSec, r.ModeledSec, r.Ratio)
	}
	if w := c.WorstResidual(); w != nil && (w.Ratio > 2 || w.Ratio < 0.5) && !math.IsInf(w.Ratio, 0) {
		fmt.Printf("  warning: site %s measured %.2fx its modeled cost — the %s constants do not describe this host\n",
			w.Site, w.Ratio, m.Name)
	}
	fmt.Println()
}

// writeProcSplit prints each processor's compute/comm/idle seconds.
func writeProcSplit(prof *obs.CommProfile) {
	if len(prof.ComputeSec) == 0 {
		return
	}
	fmt.Println("per-processor time split (seconds):")
	fmt.Printf("  %-5s %12s %12s %12s\n", "proc", "compute", "comm", "idle")
	for p := 0; p < prof.Procs; p++ {
		fmt.Printf("  p%-4d %12.6f %12.6f %12.6f\n", p, prof.ComputeSec[p], prof.CommSec[p], prof.IdleSec[p])
	}
	fmt.Println()
}

func writeObs(rec *obs.Recorder, traceOut, metricsOut string) {
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteMetrics(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "commprof:", err)
	os.Exit(1)
}
