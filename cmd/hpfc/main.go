// hpfc is the compiler driver: it parses a mini-HPF routine, runs the
// global communication analysis, and reports the chosen communication
// placement under one of the three strategies — the human-readable
// trace the paper's prototype emitted for hand compilation (Fig. 6).
//
// Usage:
//
//	hpfc -version comb -procs 16 -param n=256 -param steps=10 file.hpf
//
// With -dump the scalarized program, CFG, and per-entry analysis
// (earliest / latest / candidate positions) are printed too.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"gcao"
	"gcao/internal/ast"
	"gcao/internal/codegen"
	"gcao/internal/core"
)

type paramList map[string]int

func (p paramList) String() string { return fmt.Sprint(map[string]int(p)) }

func (p paramList) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.Atoi(val)
	if err != nil {
		return err
	}
	p[strings.ToLower(strings.TrimSpace(name))] = v
	return nil
}

func main() {
	params := paramList{}
	version := flag.String("version", "comb", "placement strategy: orig, nored, comb")
	procs := flag.Int("procs", 4, "processor count (overridden by a PROCESSORS directive)")
	dump := flag.Bool("dump", false, "dump scalarized program and per-entry analysis")
	annotate := flag.Bool("annotate", false, "emit the annotated SPMD listing (the paper's Fig. 6 trace dump)")
	mainName := flag.String("main", "", "main routine of a multi-routine file; calls are inlined (interprocedural analysis)")
	flag.Var(params, "param", "routine parameter binding name=value (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hpfc [flags] file.hpf")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var strat gcao.Strategy
	switch *version {
	case "orig":
		strat = gcao.Vectorize
	case "nored":
		strat = gcao.EarliestRedundancy
	case "comb":
		strat = gcao.Combine
	default:
		fatal(fmt.Errorf("unknown -version %q (want orig, nored, comb)", *version))
	}

	var c *gcao.Compilation
	if *mainName != "" {
		c, err = gcao.CompileProgram(string(src), *mainName, gcao.Config{Params: params, Procs: *procs})
	} else {
		c, err = gcao.Compile(string(src), gcao.Config{Params: params, Procs: *procs})
	}
	if err != nil {
		fatal(err)
	}
	a := c.Analysis

	if *dump {
		fmt.Println("== scalarized program ==")
		for _, s := range a.Scal.Body {
			fmt.Println(ast.StmtString(s))
		}
		fmt.Println("\n== control flow graph ==")
		fmt.Print(a.G.String())
		fmt.Println("== communication entries ==")
		for _, e := range a.CommEntries() {
			fmt.Printf("%v\n  section(latest) = %v\n  mapping  = %v\n  earliest = %v  latest = %v  candidates = %d\n",
				e, e.SectionAt(a, e.Latest.Level()), e.Map, e.Earliest, e.Latest, len(e.Candidates))
		}
		fmt.Println()
	}

	placed, err := c.Place(strat)
	if err != nil {
		fatal(err)
	}
	if *annotate {
		fmt.Print(codegen.Emit(placed.Result))
		return
	}
	fmt.Printf("routine %q on %s: %d communication operations under %s\n",
		a.Unit.Routine.Name, a.Unit.Grid, placed.Messages(), strat)
	counts := placed.MessageCounts()
	var kinds []core.CommKind
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-6s %d\n", k, counts[k])
	}
	fmt.Println()
	for _, g := range placed.Result.Groups {
		arrays := map[string]bool{}
		for _, e := range g.Entries {
			arrays[e.Array] = true
		}
		var names []string
		for n := range arrays {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("COMM %-5s at %-18s {%s}", g.Kind, g.Pos, strings.Join(names, ", "))
		if len(g.Attached) > 0 {
			fmt.Printf("  (+%d redundant eliminated)", len(g.Attached))
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpfc:", err)
	os.Exit(1)
}
