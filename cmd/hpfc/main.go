// hpfc is the compiler driver: it parses a mini-HPF routine, runs the
// global communication analysis, and reports the chosen communication
// placement under one of the three strategies — the human-readable
// trace the paper's prototype emitted for hand compilation (Fig. 6).
//
// Usage:
//
//	hpfc -version comb -procs 16 -param n=256 -param steps=10 file.hpf
//
// The positional argument is a source file; when no such file exists
// it is resolved as a built-in benchmark name ("shallow",
// "examples/shallow", "trimesh/gauss"), with parameters defaulted
// from the benchmark's standard binding.
//
// With -dump the scalarized program, CFG, and per-entry analysis
// (earliest / latest / candidate positions) are printed too. With
// -explain every communication entry's placement decision is printed
// (the machine-readable Fig. 6 annotation); -trace-out and
// -metrics-out export the pipeline observability data as a Chrome
// trace_event file and a metrics/decision-log JSON document.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"gcao"
	"gcao/internal/ast"
	"gcao/internal/bench"
	"gcao/internal/codegen"
	"gcao/internal/core"
	"gcao/internal/obs"
)

type paramList map[string]int

func (p paramList) String() string {
	// Sorted name=value pairs: printing the Go map directly would leak
	// random key order into the output.
	names := make([]string, 0, len(p))
	for name := range p {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s=%d", name, p[name])
	}
	return strings.Join(parts, " ")
}

func (p paramList) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.Atoi(val)
	if err != nil {
		return err
	}
	p[strings.ToLower(strings.TrimSpace(name))] = v
	return nil
}

// loadSource resolves the positional argument: an on-disk source file,
// or a built-in benchmark name such as "shallow", "examples/shallow"
// or "trimesh/gauss". For a benchmark, missing parameters are filled
// in from the benchmark's standard binding at size n (the -param n
// value or the benchmark default).
func loadSource(arg string, params paramList) (string, error) {
	if src, err := os.ReadFile(arg); err == nil {
		return string(src), nil
	}
	parts := strings.Split(strings.Trim(arg, "/"), "/")
	if parts[0] == "examples" {
		parts = parts[1:]
	}
	if len(parts) == 0 || parts[0] == "" {
		return "", fmt.Errorf("no source file or benchmark %q", arg)
	}
	var pr *bench.Program
	if len(parts) >= 2 {
		p, err := bench.ByName(parts[0], parts[1])
		if err != nil {
			return "", err
		}
		pr = p
	} else {
		for _, p := range bench.Programs() {
			if p.Bench == parts[0] {
				pr = p
				break
			}
		}
		if pr == nil {
			return "", fmt.Errorf("no source file or benchmark %q", arg)
		}
	}
	n := pr.DefaultN
	if v, ok := params["n"]; ok {
		n = v
	}
	for name, v := range pr.Params(n) {
		if _, ok := params[name]; !ok {
			params[name] = v
		}
	}
	return pr.Source, nil
}

func main() {
	params := paramList{}
	version := flag.String("version", "comb", "placement strategy: orig, nored, comb")
	procs := flag.Int("procs", 4, "processor count (overridden by a PROCESSORS directive)")
	dump := flag.Bool("dump", false, "dump scalarized program and per-entry analysis")
	annotate := flag.Bool("annotate", false, "emit the annotated SPMD listing (the paper's Fig. 6 trace dump)")
	mainName := flag.String("main", "", "main routine of a multi-routine file; calls are inlined (interprocedural analysis)")
	traceOut := flag.String("trace-out", "", "write pipeline phase spans as a Chrome trace_event JSON file")
	metricsOut := flag.String("metrics-out", "", "write counters, gauges and the placement decision log as JSON")
	explain := flag.Bool("explain", false, "print the per-entry placement decision log")
	flag.Var(params, "param", "routine parameter binding name=value (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hpfc [flags] file.hpf")
		flag.Usage()
		os.Exit(2)
	}
	var rec *obs.Recorder
	if *traceOut != "" || *metricsOut != "" || *explain {
		rec = obs.New()
	}
	src, err := loadSource(flag.Arg(0), params)
	if err != nil {
		fatal(err)
	}

	var strat gcao.Strategy
	switch *version {
	case "orig":
		strat = gcao.Vectorize
	case "nored":
		strat = gcao.EarliestRedundancy
	case "comb":
		strat = gcao.Combine
	default:
		fatal(fmt.Errorf("unknown -version %q (want orig, nored, comb)", *version))
	}

	var c *gcao.Compilation
	cfg := gcao.Config{Params: params, Procs: *procs, Obs: rec}
	if *mainName != "" {
		c, err = gcao.CompileProgram(src, *mainName, cfg)
	} else {
		c, err = gcao.Compile(src, cfg)
	}
	if err != nil {
		fatal(err)
	}
	a := c.Analysis

	if *dump {
		fmt.Println("== scalarized program ==")
		for _, s := range a.Scal.Body {
			fmt.Println(ast.StmtString(s))
		}
		fmt.Println("\n== control flow graph ==")
		fmt.Print(a.G.String())
		fmt.Println("== communication entries ==")
		for _, e := range a.CommEntries() {
			fmt.Printf("%v\n  section(latest) = %v\n  mapping  = %v\n  earliest = %v  latest = %v  candidates = %d\n",
				e, e.SectionAt(a, e.Latest.Level()), e.Map, e.Earliest, e.Latest, len(e.Candidates))
		}
		fmt.Println()
	}

	placed, err := c.Place(strat)
	if err != nil {
		fatal(err)
	}
	if *annotate {
		end := rec.Start("codegen")
		listing := codegen.Emit(placed.Result)
		end()
		fmt.Print(listing)
	} else {
		report(a, placed, strat)
	}
	if *explain {
		fmt.Println("== placement decisions ==")
		for _, d := range rec.Decisions() {
			fmt.Println(d.Format())
		}
	}
	writeObs(rec, *traceOut, *metricsOut)
}

func report(a *core.Analysis, placed *gcao.Placed, strat gcao.Strategy) {
	fmt.Printf("routine %q on %s: %d communication operations under %s\n",
		a.Unit.Routine.Name, a.Unit.Grid, placed.Messages(), strat)
	counts := placed.MessageCounts()
	var kinds []core.CommKind
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("  %-6s %d\n", k, counts[k])
	}
	fmt.Println()
	for _, g := range placed.Result.Groups {
		arrays := map[string]bool{}
		for _, e := range g.Entries {
			arrays[e.Array] = true
		}
		var names []string
		for n := range arrays {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("COMM %-5s at %-18s {%s}", g.Kind, g.Pos, strings.Join(names, ", "))
		if len(g.Attached) > 0 {
			fmt.Printf("  (+%d redundant eliminated)", len(g.Attached))
		}
		fmt.Println()
	}
}

// writeObs exports the recorder to the requested files (shared by the
// cmd tools).
func writeObs(rec *obs.Recorder, traceOut, metricsOut string) {
	if rec == nil {
		return
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteMetrics(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpfc:", err)
	os.Exit(1)
}
