// netprobe regenerates the network and buffer-copy profiling study of
// Fig. 5: for the SP2/MPL and NOW/MPICH cost models it prints bcopy
// bandwidth, sender injection bandwidth and end-to-end receive
// bandwidth as functions of size (log-spaced, as in the paper's
// x-axis), plus the derived facts the placement algorithm relies on —
// the half-power point and the combining threshold.
//
// -machine selects sp2, now or all (default); -json emits the same
// curves as a machine-readable document instead of the text chart.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gcao/internal/machine"
)

// probePoint is one x-axis sample of the Fig. 5 curves.
type probePoint struct {
	Bytes      int     `json:"bytes"`
	BcopyMBs   float64 `json:"bcopy_mb_s"`
	InjectMBs  float64 `json:"inject_mb_s"`
	ReceiveMBs float64 `json:"recv_mb_s"`
}

// probeDoc is one machine's full profile in -json mode.
type probeDoc struct {
	Machine               string       `json:"machine"`
	Points                []probePoint `json:"points"`
	HalfPowerPointBytes   int          `json:"half_power_point_bytes"`
	CombineThresholdBytes int          `json:"combine_threshold_bytes"`
	CacheBytes            int          `json:"cache_bytes"`
}

func main() {
	machineFlag := flag.String("machine", "all", "machine to probe: sp2, now, or all")
	jsonOut := flag.Bool("json", false, "emit the curves as JSON instead of a text chart")
	flag.Parse()

	var machines []machine.Machine
	switch strings.ToLower(*machineFlag) {
	case "sp2":
		machines = []machine.Machine{machine.SP2()}
	case "now":
		machines = []machine.Machine{machine.NOW()}
	case "all":
		machines = []machine.Machine{machine.SP2(), machine.NOW()}
	default:
		fmt.Fprintf(os.Stderr, "netprobe: unknown machine %q (want sp2, now or all)\n", *machineFlag)
		os.Exit(2)
	}

	if *jsonOut {
		docs := make([]probeDoc, 0, len(machines))
		for _, m := range machines {
			docs = append(docs, probe(m))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"machines": docs}); err != nil {
			fmt.Fprintln(os.Stderr, "netprobe:", err)
			os.Exit(1)
		}
		return
	}

	for _, m := range machines {
		d := probe(m)
		fmt.Printf("== %s ==\n", m.Name)
		fmt.Printf("%10s %14s %14s %14s\n", "bytes", "bcopy MB/s", "inject MB/s", "recv MB/s")
		for _, p := range d.Points {
			bar := strings.Repeat("*", int(p.ReceiveMBs/2+0.5))
			fmt.Printf("%10d %14.1f %14.1f %14.1f  %s\n", p.Bytes, p.BcopyMBs, p.InjectMBs, p.ReceiveMBs, bar)
		}
		fmt.Printf("half-power point: %d bytes (startup amortized well below the %d KB cache)\n",
			d.HalfPowerPointBytes, d.CacheBytes>>10)
		fmt.Printf("combining threshold: %d KB\n\n", d.CombineThresholdBytes>>10)
	}
}

// probe samples one machine's bandwidth curves log-spaced from 16 B to
// 4 MB, matching the paper's x-axis.
func probe(m machine.Machine) probeDoc {
	d := probeDoc{
		Machine:               m.Name,
		HalfPowerPointBytes:   m.HalfPowerPoint(),
		CombineThresholdBytes: m.CombineThresholdBytes,
		CacheBytes:            m.CacheBytes,
	}
	for bytes := 16; bytes <= 4<<20; bytes *= 4 {
		d.Points = append(d.Points, probePoint{
			Bytes:      bytes,
			BcopyMBs:   m.BcopyBandwidth(bytes) / 1e6,
			InjectMBs:  m.InjectBandwidth(bytes) / 1e6,
			ReceiveMBs: m.NetworkBandwidth(bytes) / 1e6,
		})
	}
	return d
}
