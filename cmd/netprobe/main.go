// netprobe regenerates the network and buffer-copy profiling study of
// Fig. 5: for the SP2/MPL and NOW/MPICH cost models it prints bcopy
// bandwidth, sender injection bandwidth and end-to-end receive
// bandwidth as functions of size (log-spaced, as in the paper's
// x-axis), plus the derived facts the placement algorithm relies on —
// the half-power point and the combining threshold.
package main

import (
	"flag"
	"fmt"
	"strings"

	"gcao/internal/machine"
)

func main() {
	flag.Parse()
	for _, m := range []machine.Machine{machine.SP2(), machine.NOW()} {
		fmt.Printf("== %s ==\n", m.Name)
		fmt.Printf("%10s %14s %14s %14s\n", "bytes", "bcopy MB/s", "inject MB/s", "recv MB/s")
		for bytes := 16; bytes <= 4<<20; bytes *= 4 {
			b := m.BcopyBandwidth(bytes) / 1e6
			i := m.InjectBandwidth(bytes) / 1e6
			r := m.NetworkBandwidth(bytes) / 1e6
			bar := strings.Repeat("*", int(r/2+0.5))
			fmt.Printf("%10d %14.1f %14.1f %14.1f  %s\n", bytes, b, i, r, bar)
		}
		fmt.Printf("half-power point: %d bytes (startup amortized well below the %d KB cache)\n",
			m.HalfPowerPoint(), m.CacheBytes>>10)
		fmt.Printf("combining threshold: %d KB\n\n", m.CombineThresholdBytes>>10)
	}
}
