package main

import (
	"fmt"
	"strings"

	"gcao/internal/bench/history"
)

// Report is the assembled dashboard model both renderers consume: the
// per-benchmark trend series of the chosen version, the latest
// revision's summary rows, and the regressions of the newest step.
type Report struct {
	Version   string
	Tolerance float64
	// Revs is the deduped revision axis, oldest first.
	Revs []string
	// Series are the per-benchmark trajectories (history.Trend order).
	Series []history.Series
	// Rows summarize the latest revision, one row per benchmark.
	Rows []Row
	// Regressions are the newest step's gap regressions past Tolerance.
	Regressions []history.Regression
	// AggGap/AggPct aggregate the latest revision across benchmarks
	// (total bytes over total bound).
	AggGap float64
	AggPct float64
	// NativeSeries are the native-backend wall-clock trajectories —
	// empty for histories written before the native backend existed, in
	// which case the native panel is skipped (same guard style as the
	// gap_ratio baseline guard).
	NativeSeries []history.NativeSeries
}

// Row is one benchmark's latest state.
type Row struct {
	Key          string
	Bytes        float64
	BoundBytes   float64
	GapRatio     float64
	PctOfOptimal float64
	Seconds      float64
	// PrevGap is the previous revision's gap ratio (0 when this is the
	// first revision the benchmark appears in).
	PrevGap float64
	// Regressed marks the row as past tolerance vs PrevGap.
	Regressed bool
}

func buildReport(recs []history.Record, version string, tol float64) Report {
	rep := Report{
		Version:      version,
		Tolerance:    tol,
		Series:       history.Trend(recs, version),
		Regressions:  history.Check(recs, version, tol),
		NativeSeries: history.NativeTrend(recs, version),
	}
	for _, r := range history.Dedupe(recs) {
		rep.Revs = append(rep.Revs, r.Rev)
	}
	regressed := map[string]bool{}
	for _, r := range rep.Regressions {
		regressed[r.Key] = true
	}
	var sumBytes, sumBound float64
	for _, s := range rep.Series {
		if len(s.Points) == 0 {
			continue
		}
		last := s.Points[len(s.Points)-1]
		row := Row{
			Key: s.Key, Bytes: last.Bytes, BoundBytes: last.BoundBytes,
			GapRatio: last.GapRatio, PctOfOptimal: last.PctOfOptimal,
			Seconds:   last.TotalSeconds,
			Regressed: regressed[s.Key],
		}
		if len(s.Points) > 1 {
			row.PrevGap = s.Points[len(s.Points)-2].GapRatio
		}
		rep.Rows = append(rep.Rows, row)
		sumBytes += last.Bytes
		sumBound += last.BoundBytes
	}
	if sumBound > 0 {
		rep.AggGap = sumBytes / sumBound
	}
	if sumBytes > 0 {
		rep.AggPct = sumBound / sumBytes * 100
	}
	return rep
}

// renderText is the terminal dashboard: the latest revision's gap
// table, the per-benchmark gap trend across revisions, and the
// regression verdict.
func renderText(rep Report) string {
	var b strings.Builder
	latest := "?"
	if len(rep.Revs) > 0 {
		latest = rep.Revs[len(rep.Revs)-1]
	}
	fmt.Fprintf(&b, "optimality gap · version %s · %d revision(s) · latest %s\n",
		rep.Version, len(rep.Revs), latest)
	fmt.Fprintf(&b, "aggregate: %.2fx the communication lower bound (%.1f%% of optimal)\n\n",
		rep.AggGap, rep.AggPct)

	fmt.Fprintf(&b, "  %-24s %12s %12s %8s %8s %10s  %s\n",
		"benchmark", "bytes", "bound", "gap", "%opt", "prev gap", "")
	for _, r := range rep.Rows {
		flag := ""
		if r.Regressed {
			flag = "!! regressed"
		}
		prev := "-"
		if r.PrevGap > 0 {
			prev = fmt.Sprintf("%.2fx", r.PrevGap)
		}
		fmt.Fprintf(&b, "  %-24s %12s %12s %7.2fx %7.1f%% %10s  %s\n",
			r.Key, fmtBytes(r.Bytes), fmtBytes(r.BoundBytes),
			r.GapRatio, r.PctOfOptimal, prev, flag)
	}

	b.WriteString("\ngap-ratio trend (oldest -> newest):\n")
	for _, s := range rep.Series {
		var steps []string
		for _, p := range s.Points {
			steps = append(steps, fmt.Sprintf("%s %.2fx", p.Rev, p.GapRatio))
		}
		fmt.Fprintf(&b, "  %-24s %s\n", s.Key, strings.Join(steps, " -> "))
	}
	b.WriteString("\nwall-time trend (estimated seconds, oldest -> newest):\n")
	for _, s := range rep.Series {
		var steps []string
		for _, p := range s.Points {
			steps = append(steps, fmt.Sprintf("%s %.3gs", p.Rev, p.TotalSeconds))
		}
		fmt.Fprintf(&b, "  %-24s %s\n", s.Key, strings.Join(steps, " -> "))
	}

	if len(rep.NativeSeries) > 0 {
		b.WriteString("\nnative wall-time trend (measured seconds, oldest -> newest):\n")
		for _, s := range rep.NativeSeries {
			var steps []string
			for _, p := range s.Points {
				steps = append(steps, fmt.Sprintf("%s %.3gs (%.2fx)", p.Rev, p.Seconds, p.SpeedupVsOrig))
			}
			fmt.Fprintf(&b, "  %-24s %s\n", s.Key, strings.Join(steps, " -> "))
		}
		// Profiler trend — skipped entirely for histories written before
		// the native runtime profiler measured skew and calibration.
		var prof []string
		for _, s := range rep.NativeSeries {
			var steps []string
			for _, p := range s.Points {
				if p.SkewRatio <= 0 {
					continue
				}
				step := fmt.Sprintf("%s skew %.2fx blocked %.0f%%", p.Rev, p.SkewRatio, p.BlockedFrac*100)
				if p.FittedG != 0 || p.FittedL != 0 {
					step += fmt.Sprintf(" L=%.3gs g=%.3gs/B", p.FittedL, p.FittedG)
				}
				steps = append(steps, step)
			}
			if len(steps) > 0 {
				prof = append(prof, fmt.Sprintf("  %-24s %s", s.Key, strings.Join(steps, " -> ")))
			}
		}
		if len(prof) > 0 {
			b.WriteString("\nnative profiler trend (compute skew, blocked share, fitted constants):\n")
			b.WriteString(strings.Join(prof, "\n") + "\n")
		}
	}

	if len(rep.Regressions) > 0 {
		fmt.Fprintf(&b, "\n%d regression(s) past %.0f%% tolerance:\n", len(rep.Regressions), rep.Tolerance*100)
		for _, r := range rep.Regressions {
			b.WriteString("  !! " + r.String() + "\n")
		}
	} else if len(rep.Revs) > 1 {
		fmt.Fprintf(&b, "\nno gap regressions past %.0f%% tolerance\n", rep.Tolerance*100)
	}
	return b.String()
}

// fmtBytes renders a byte count compactly (1.2 KB, 3.4 MB).
func fmtBytes(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2f GB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2f MB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f KB", v/1e3)
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}
