// gcaoreport renders a benchmark history store (internal/bench/history
// JSONL, written by `runbench -history`) as an optimality-gap
// dashboard: for each Fig. 10 benchmark, how far the chosen compiler
// version's communication traffic sits above the placement-independent
// lower bound, and how that gap has moved across revisions.
//
//	gcaoreport -history bench_history.jsonl            # terminal report
//	gcaoreport -history bench_history.jsonl -html d.html
//	gcaoreport -history bench_history.jsonl -check     # exit 1 on regression
//
// -check compares the newest revision's per-benchmark gap ratios
// against the previous revision's and fails past -tolerance; gap
// ratios are byte ratios, deterministic across architectures, so the
// check is safe to gate CI on where wall-clock seconds would flake.
package main

import (
	"flag"
	"fmt"
	"os"

	"gcao/internal/bench/history"
)

func main() {
	histPath := flag.String("history", "", "bench history JSONL store (required)")
	version := flag.String("version", "comb", "compiler version to report: orig, nored, comb")
	htmlOut := flag.String("html", "", "also write a single-file HTML dashboard here")
	check := flag.Bool("check", false, "exit 1 if the newest revision regressed any benchmark's gap ratio")
	tolerance := flag.Float64("tolerance", 0.05, "relative gap-ratio slack for -check (0.05 = 5% worse allowed)")
	flag.Parse()

	if *histPath == "" {
		fmt.Fprintln(os.Stderr, "gcaoreport: -history is required")
		flag.Usage()
		os.Exit(2)
	}
	recs, err := history.Load(*histPath)
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("no records in %s", *histPath))
	}

	rep := buildReport(recs, *version, *tolerance)
	os.Stdout.WriteString(renderText(rep))

	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, []byte(renderHTML(rep)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("gcaoreport: wrote dashboard to %s\n", *htmlOut)
	}
	if *check && len(rep.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "gcaoreport: %d gap regression(s) past %.0f%% tolerance\n",
			len(rep.Regressions), *tolerance*100)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcaoreport:", err)
	os.Exit(1)
}
