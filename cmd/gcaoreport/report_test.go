package main

import (
	"path/filepath"
	"strings"
	"testing"

	"gcao/internal/bench"
	"gcao/internal/bench/history"
)

// sweep fabricates one revision's result: two benchmarks whose comb
// traffic is the given bytes against a fixed bound of 100 each.
func sweep(rev string, shallowBytes, gravityBytes float64) bench.BenchResult {
	mk := func(chart, b, routine, ver string, bytes float64) bench.BenchEntry {
		return bench.BenchEntry{
			Chart: chart, Bench: b, Routine: routine, Machine: "SP2",
			Procs: 16, N: 512, Version: ver,
			RawCPU: 1.0, RawNet: bytes / 1e6,
			Messages: 10, Bytes: bytes, StaticGroups: 3,
			BoundBytes: 100, GapRatio: bytes / 100,
		}
	}
	return bench.BenchResult{Rev: rev, Entries: []bench.BenchEntry{
		mk("b", "shallow", "main", "orig", 4*shallowBytes),
		mk("b", "shallow", "main", "comb", shallowBytes),
		mk("c", "gravity", "main", "orig", 4*gravityBytes),
		mk("c", "gravity", "main", "comb", gravityBytes),
	}}
}

// buildHistory writes three revisions where gravity regresses 60% in
// the last step while shallow keeps improving.
func buildHistory(t *testing.T) []history.Record {
	t.Helper()
	path := filepath.Join(t.TempDir(), "h.jsonl")
	steps := []struct {
		rev              string
		shallow, gravity float64
	}{
		{"aaa1111", 400, 300},
		{"bbb2222", 350, 250},
		{"ccc3333", 320, 400}, // gravity regresses: 2.5x -> 4.0x
	}
	for i, s := range steps {
		if _, err := history.Append(path, s.rev, int64(i)*1000, sweep(s.rev, s.shallow, s.gravity)); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := history.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestReportFlagsInjectedRegression(t *testing.T) {
	rep := buildReport(buildHistory(t), "comb", 0.05)
	if len(rep.Revs) != 3 {
		t.Fatalf("revs = %v", rep.Revs)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Key != "c/gravity@SP2" {
		t.Fatalf("regressions = %v, want the injected gravity one", rep.Regressions)
	}
	var gravity, shallow *Row
	for i := range rep.Rows {
		switch rep.Rows[i].Key {
		case "c/gravity@SP2":
			gravity = &rep.Rows[i]
		case "b/shallow@SP2":
			shallow = &rep.Rows[i]
		}
	}
	if gravity == nil || shallow == nil {
		t.Fatalf("rows = %+v", rep.Rows)
	}
	if !gravity.Regressed || shallow.Regressed {
		t.Fatalf("flags wrong: gravity %v shallow %v", gravity.Regressed, shallow.Regressed)
	}
	if gravity.GapRatio != 4 || gravity.PrevGap != 2.5 {
		t.Fatalf("gravity gap %v prev %v, want 4 and 2.5", gravity.GapRatio, gravity.PrevGap)
	}
	if shallow.PctOfOptimal != 100.0/320*100 {
		t.Fatalf("shallow pct = %v", shallow.PctOfOptimal)
	}
}

func TestRenderTextTable(t *testing.T) {
	out := renderText(buildReport(buildHistory(t), "comb", 0.05))
	for _, want := range []string{
		"b/shallow@SP2",
		"c/gravity@SP2",
		"!! regressed",
		"aaa1111 4.00x -> bbb2222 3.50x -> ccc3333 3.20x", // shallow gap trend
		"1 regression(s) past 5% tolerance",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("terminal report missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTextNoRegression(t *testing.T) {
	recs := buildHistory(t)[:2] // drop the regressing revision
	out := renderText(buildReport(recs, "comb", 0.05))
	if strings.Contains(out, "regressed") {
		t.Errorf("clean history reports a regression:\n%s", out)
	}
	if !strings.Contains(out, "no gap regressions") {
		t.Errorf("clean verdict missing:\n%s", out)
	}
}

func TestRenderHTMLDashboard(t *testing.T) {
	html := renderHTML(buildReport(buildHistory(t), "comb", 0.05))
	for _, want := range []string{
		"<!doctype html>",
		"b/shallow@SP2",
		"c/gravity@SP2",
		"regressed",                  // the flagged row
		"data-kind=\"pct\"",          // %-of-optimal panels
		"data-kind=\"time\"",         // wall-time panels
		"ccc3333",                    // revision axis
		"Data table",                 // the no-hover twin
		"prefers-color-scheme: dark", // selected dark mode
		"<script>",                   // hover layer
		"aria-label",                 // panels are labeled
		"benchmark(s) regressed",     // banner
	} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// The revision label is attacker-ish data (git config): it must be
	// escaped on the way into the document.
	recs := buildHistory(t)
	recs[2].Rev = "<img src=x>"
	recs[2].Result.Rev = recs[2].Rev
	html = renderHTML(buildReport(recs, "comb", 0.05))
	if strings.Contains(html, "<img src=x>") {
		t.Error("unescaped revision label in HTML")
	}
}

func TestRenderHTMLSingleRevision(t *testing.T) {
	recs := buildHistory(t)[:1]
	html := renderHTML(buildReport(recs, "comb", 0.05))
	if !strings.Contains(html, "b/shallow@SP2") {
		t.Error("single-revision dashboard missing benchmark")
	}
	if strings.Contains(html, "class=\"series\"") {
		t.Error("one point should draw no line path")
	}
}

// buildNativeHistory writes two revisions with native measurements:
// the first from before the runtime profiler (no skew), the second
// profiled and calibrated.
func buildNativeHistory(t *testing.T, profiled bool) []history.Record {
	t.Helper()
	path := filepath.Join(t.TempDir(), "h.jsonl")
	for i, rev := range []string{"aaa1111", "bbb2222"} {
		res := sweep(rev, 400, 300)
		e := bench.NativeEntry{
			Bench: "gravity", Routine: "main", N: 48, Procs: 4,
			Version: "comb", NativeSeconds: 0.5, SpeedupVsOrig: 2,
		}
		if profiled && i == 1 {
			e.SkewRatio = 1.75
			e.BlockedFrac = 0.42
			e.FittedL = 4e-5
			e.FittedG = 1.1e-9
		}
		res.Native = []bench.NativeEntry{e}
		if _, err := history.Append(path, rev, int64(i)*1000, res); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := history.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestRenderNativeProfilerTrend(t *testing.T) {
	rep := buildReport(buildNativeHistory(t, true), "comb", 0.05)
	text := renderText(rep)
	for _, want := range []string{
		"native profiler trend",
		"bbb2222 skew 1.75x blocked 42%",
		"L=4e-05s g=1.1e-09s/B",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("terminal report missing %q:\n%s", want, text)
		}
	}
	html := renderHTML(rep)
	for _, want := range []string{
		"Native compute skew across revisions",
		"data-kind=\"skew\"",
		"1.75x · 42% blocked",
		"native skew, blocked share and fitted (L, g)",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

func TestRenderNativeProfilerSkippedWhenUnprofiled(t *testing.T) {
	// Histories whose native runs predate the profiler carry zero skew
	// on every point: both renderers must omit the profiler sections
	// while still showing the wall-clock trend.
	rep := buildReport(buildNativeHistory(t, false), "comb", 0.05)
	text := renderText(rep)
	if !strings.Contains(text, "native wall-time trend") {
		t.Errorf("wall-time trend missing:\n%s", text)
	}
	if strings.Contains(text, "native profiler trend") {
		t.Errorf("unprofiled history rendered a profiler trend:\n%s", text)
	}
	html := renderHTML(rep)
	if !strings.Contains(html, "Native wall time across revisions") {
		t.Error("dashboard missing native wall-time section")
	}
	if strings.Contains(html, "Native compute skew across revisions") {
		t.Error("unprofiled history rendered skew panels")
	}
}

func TestNiceTicks(t *testing.T) {
	ts := niceTicks(100)
	if ts[0] != 0 || ts[len(ts)-1] < 100 {
		t.Fatalf("ticks for 100 = %v", ts)
	}
	if len(ts) < 3 || len(ts) > 7 {
		t.Fatalf("tick count %d out of range: %v", len(ts), ts)
	}
	if got := niceTicks(0); len(got) != 2 {
		t.Fatalf("ticks for 0 = %v", got)
	}
}
