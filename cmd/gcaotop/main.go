// gcaotop is a terminal ops view for a running gcaod: it consumes the
// daemon's /debug/live server-sent-event stream and renders each
// snapshot as a compact dashboard — request rate, per-route latency
// quantiles, cache hit rate, scheduler queue occupancy and sheds,
// flight-recorder retention — the way top renders a process table.
//
// Usage:
//
//	gcaotop [-addr http://localhost:8080]         follow the stream
//	gcaotop -once                                 one snapshot, then exit
//	gcaotop -once -json                           one raw JSON snapshot (for scripts/CI)
//
// It is a plain net/http + bufio client: anything gcaotop renders, a
// curl -N user can see raw.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "gcaod base URL")
	once := flag.Bool("once", false, "render one snapshot and exit")
	rawJSON := flag.Bool("json", false, "print raw snapshot JSON instead of rendering")
	n := flag.Int("n", 0, "exit after N snapshots (0: until interrupted; -once implies 1)")
	flag.Parse()

	events := *n
	if *once {
		events = 1
	}
	url := fmt.Sprintf("%s/debug/live", strings.TrimRight(*addr, "/"))
	if events > 0 {
		url = fmt.Sprintf("%s?n=%d", url, events)
	}
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		fatal(fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body))))
	}

	first := true
	err = readEvents(resp.Body, func(data []byte) error {
		if *rawJSON {
			fmt.Println(string(data))
			return nil
		}
		snap, err := parseSnapshot(data)
		if err != nil {
			return err
		}
		if !first && events != 1 {
			// Follow mode: repaint in place like top.
			fmt.Print("\033[H\033[2J")
		}
		first = false
		fmt.Print(render(snap))
		return nil
	})
	if err != nil {
		fatal(err)
	}
}

// readEvents decodes a server-sent-event stream, invoking fn with each
// event's data payload.
func readEvents(r io.Reader, fn func([]byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			if err := fn([]byte(rest)); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcaotop:", err)
	os.Exit(1)
}
