package main

import (
	"strings"
	"testing"
)

const fixture = `{
  "unix_ns": 1700000000000000000,
  "version": "abc123",
  "uptime_seconds": 3723.4,
  "req_per_sec": 12.5,
  "inflight": 2,
  "routes": [
    {"route": "/compile", "count": 120, "p50_ms": 1.25, "p99_ms": 9.5},
    {"route": "/metrics", "count": 30, "p50_ms": 0.2, "p99_ms": 0.8}
  ],
  "codes": {"200": 148, "429": 2},
  "cache_hit_rate": 0.75,
  "scheduler": {"workers": 4, "queue_depth": 64, "queued": 3, "active": 4,
    "rejected": 2, "expired": 1, "avg_service_us": 1500},
  "queue_wait_p50_ms": 0.4, "queue_wait_p99_ms": 7.1,
  "flight": {"recent": 120, "slow_retained": 5, "threshold_us": 500000},
  "gap_ratio": 3.21, "gap_points": 6
}`

func TestRenderSnapshot(t *testing.T) {
	snap, err := parseSnapshot([]byte(fixture))
	if err != nil {
		t.Fatal(err)
	}
	out := render(snap)
	for _, want := range []string{
		"gcaod abc123",
		"12.5 req/s",
		"inflight 2",
		"queue 3/64",
		"active 4/4 workers",
		"shed 2",
		"hit 75.0%",
		"120 recent / 5 slow",
		"200:148",
		"429:2",
		"/compile",
		"9.50",
		"/metrics",
		"gap    3.21x",
		"6 benchmark×version pair(s)",
		"native –",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderNativeLine(t *testing.T) {
	snap, err := parseSnapshot([]byte(`{
	  "native": {"runs": 3, "skew_ratio": 1.42, "blocked_seconds": 0.125,
	    "fitted_l_seconds": 4.2e-05, "fitted_g_seconds_per_byte": 1.1e-09,
	    "calibrated": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	out := render(snap)
	for _, want := range []string{
		"native 3 run(s)",
		"skew 1.42x",
		"blocked 0.125s",
		"fitted L 4.2e-05s g 1.1e-09s/B",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "native –") {
		t.Errorf("placeholder shown alongside real native stats:\n%s", out)
	}
	// Uncalibrated profile: stats render, fitted constants do not.
	snap.Native.Calibrated = false
	if out := render(snap); strings.Contains(out, "fitted") {
		t.Errorf("fitted constants shown without calibration:\n%s", out)
	}
}

func TestRenderEmptySnapshot(t *testing.T) {
	snap, err := parseSnapshot([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	out := render(snap)
	if !strings.Contains(out, "req/s") {
		t.Fatalf("empty snapshot render broken:\n%s", out)
	}
	if strings.Contains(out, "lower bound") {
		t.Errorf("gap line shown with no measured pairs:\n%s", out)
	}
}

func TestReadEvents(t *testing.T) {
	stream := "data: {\"a\":1}\n\ndata: {\"a\":2}\n\n: comment line\nevent: x\n"
	var got []string
	err := readEvents(strings.NewReader(stream), func(b []byte) error {
		got = append(got, string(b))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != `{"a":1}` || got[1] != `{"a":2}` {
		t.Fatalf("events = %q", got)
	}
}
