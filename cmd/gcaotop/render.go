package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// snapshot mirrors the fields of gcaod's /debug/live document that the
// dashboard renders. Unknown fields are ignored, so gcaotop tolerates
// a newer daemon.
type snapshot struct {
	UnixNS        int64   `json:"unix_ns"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	ReqPerSec     float64 `json:"req_per_sec"`
	Inflight      int64   `json:"inflight"`
	Routes        []struct {
		Route string  `json:"route"`
		Count uint64  `json:"count"`
		P50ms float64 `json:"p50_ms"`
		P99ms float64 `json:"p99_ms"`
	} `json:"routes"`
	Codes        map[string]int64 `json:"codes"`
	CacheHitRate float64          `json:"cache_hit_rate"`
	Sched        struct {
		Workers      int   `json:"workers"`
		QueueDepth   int   `json:"queue_depth"`
		Queued       int64 `json:"queued"`
		Active       int64 `json:"active"`
		Rejected     int64 `json:"rejected"`
		Expired      int64 `json:"expired"`
		AvgServiceUS int64 `json:"avg_service_us"`
	} `json:"scheduler"`
	QueueWaitP50ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99ms float64 `json:"queue_wait_p99_ms"`
	Flight         struct {
		Recent       int   `json:"recent"`
		SlowRetained int   `json:"slow_retained"`
		ThresholdUS  int64 `json:"threshold_us"`
	} `json:"flight"`
	GapRatio  float64 `json:"gap_ratio"`
	GapPoints int     `json:"gap_points"`
	Native    *struct {
		Runs           int64   `json:"runs"`
		SkewRatio      float64 `json:"skew_ratio"`
		BlockedSeconds float64 `json:"blocked_seconds"`
		FittedL        float64 `json:"fitted_l_seconds"`
		FittedG        float64 `json:"fitted_g_seconds_per_byte"`
		Calibrated     bool    `json:"calibrated"`
	} `json:"native"`
}

func parseSnapshot(data []byte) (snapshot, error) {
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("decoding live snapshot: %w", err)
	}
	return s, nil
}

// render formats one snapshot as the dashboard text.
func render(s snapshot) string {
	var b strings.Builder
	up := time.Duration(s.UptimeSeconds * float64(time.Second)).Truncate(time.Second)
	fmt.Fprintf(&b, "gcaod %s  up %s  %.1f req/s  inflight %d\n",
		s.Version, up, s.ReqPerSec, s.Inflight)
	fmt.Fprintf(&b, "sched  queue %d/%d  active %d/%d workers  avg service %s  wait p50 %.2fms p99 %.2fms  shed %d  expired %d\n",
		s.Sched.Queued, s.Sched.QueueDepth, s.Sched.Active, s.Sched.Workers,
		time.Duration(s.Sched.AvgServiceUS)*time.Microsecond,
		s.QueueWaitP50ms, s.QueueWaitP99ms, s.Sched.Rejected, s.Sched.Expired)
	fmt.Fprintf(&b, "cache  hit %.1f%%   flight %d recent / %d slow (threshold %s)\n",
		s.CacheHitRate*100, s.Flight.Recent, s.Flight.SlowRetained,
		time.Duration(s.Flight.ThresholdUS)*time.Microsecond)
	if s.GapPoints > 0 {
		fmt.Fprintf(&b, "gap    %.2fx the communication lower bound over %d benchmark×version pair(s)\n",
			s.GapRatio, s.GapPoints)
	}
	// The native line always renders: an explicit "–" tells the operator
	// no native run has been observed, rather than silently omitting it.
	if s.Native == nil {
		fmt.Fprintf(&b, "native –\n")
	} else {
		fmt.Fprintf(&b, "native %d run(s)  skew %.2fx  blocked %.3fs",
			s.Native.Runs, s.Native.SkewRatio, s.Native.BlockedSeconds)
		if s.Native.Calibrated {
			fmt.Fprintf(&b, "  fitted L %.3gs g %.3gs/B", s.Native.FittedL, s.Native.FittedG)
		}
		fmt.Fprintf(&b, "\n")
	}
	if len(s.Codes) > 0 {
		codes := make([]string, 0, len(s.Codes))
		for c := range s.Codes {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		parts := make([]string, 0, len(codes))
		for _, c := range codes {
			parts = append(parts, fmt.Sprintf("%s:%d", c, s.Codes[c]))
		}
		fmt.Fprintf(&b, "codes  %s\n", strings.Join(parts, "  "))
	}
	if len(s.Routes) > 0 {
		fmt.Fprintf(&b, "\n%-28s %10s %10s %10s\n", "ROUTE", "COUNT", "P50(ms)", "P99(ms)")
		for _, r := range s.Routes {
			fmt.Fprintf(&b, "%-28s %10d %10.2f %10.2f\n", r.Route, r.Count, r.P50ms, r.P99ms)
		}
	}
	return b.String()
}
