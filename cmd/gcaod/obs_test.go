package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gcao/internal/obs"
	"gcao/internal/obs/reqtrace"
)

// TestRequestIDEverywhere pins the ingress contract: every response —
// success, client error, shed, timeout — carries an X-Request-Id
// header, and every JSON error body repeats the same id.
func TestRequestIDEverywhere(t *testing.T) {
	_, ts := testServer(t)

	// Success paths: header present on compile and on plain GETs.
	resp, out := postCompile(t, ts, map[string]any{
		"source": stencilSrc, "params": map[string]int{"n": 8, "steps": 1}, "procs": 4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	hdr := resp.Header.Get("X-Request-Id")
	if hdr == "" || hdr != out.ReqID {
		t.Fatalf("X-Request-Id %q != body req_id %q", hdr, out.ReqID)
	}
	for _, path := range []string{"/healthz", "/metrics", "/debug/cache", "/debug/flightrecorder"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.Header.Get("X-Request-Id") == "" {
			t.Errorf("%s response missing X-Request-Id", path)
		}
	}

	// Error paths: body req_id matches the header.
	checkErr := func(name string, resp *http.Response, wantStatus int) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s status = %d, want %d", name, resp.StatusCode, wantStatus)
		}
		var body struct {
			ReqID string `json:"req_id"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s body not JSON: %v", name, err)
		}
		id := resp.Header.Get("X-Request-Id")
		if id == "" || body.ReqID != id {
			t.Fatalf("%s: header id %q, body id %q", name, id, body.ReqID)
		}
		if body.Error == "" {
			t.Fatalf("%s: empty error message", name)
		}
	}

	// 400: unknown strategy.
	raw, _ := json.Marshal(map[string]any{
		"source": stencilSrc, "params": map[string]int{"n": 8, "steps": 1},
		"procs": 4, "strategy": "bogus",
	})
	r400, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	checkErr("400", r400, http.StatusBadRequest)

	// 400: bad query parameter on a debug route.
	r400q, err := http.Get(ts.URL + "/debug/decisions?limit=x")
	if err != nil {
		t.Fatal(err)
	}
	checkErr("400 limit", r400q, http.StatusBadRequest)

	// 404: unknown flight record.
	r404, err := http.Get(ts.URL + "/debug/flightrecorder/r999999")
	if err != nil {
		t.Fatal(err)
	}
	checkErr("404", r404, http.StatusNotFound)

	// 413: oversized body (valid JSON shape, so the size limit trips
	// before a syntax error can).
	big := []byte(`{"source":"` + strings.Repeat("x", 5<<20) + `"}`)
	r413, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	checkErr("413", r413, http.StatusRequestEntityTooLarge)
}

// TestRequestIDOnTimeoutAnd429 covers the two shed paths: a timed-out
// compile (503) and a queue overflow (429) both carry the id in header
// and body, and the 429's Retry-After is a derived integer in [1,30].
func TestRequestIDOnTimeoutAnd429(t *testing.T) {
	s := newServer(serverConfig{
		reqTimeout: time.Nanosecond,
		ringSize:   8,
		logW:       io.Discard,
		logLevel:   obs.LevelError,
	})
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	raw, _ := json.Marshal(map[string]any{
		"source": stencilSrc, "params": map[string]int{"n": 8, "steps": 1}, "procs": 4,
	})
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		ReqID string `json:"req_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("timeout body not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timeout status = %d, want 503", resp.StatusCode)
	}
	if id := resp.Header.Get("X-Request-Id"); id == "" || id != body.ReqID {
		t.Fatalf("timeout: header id %q, body id %q", id, body.ReqID)
	}

	sb, tsb, release := blockingServer(t)
	done := make(chan int, 2)
	saturate(t, sb, tsb, done)
	resp2, err := http.Post(tsb.URL+"/compile", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var body2 struct {
		ReqID string `json:"req_id"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&body2); err != nil {
		t.Fatalf("429 body not JSON: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp2.StatusCode)
	}
	if id := resp2.Header.Get("X-Request-Id"); id == "" || id != body2.ReqID {
		t.Fatalf("429: header id %q, body id %q", id, body2.ReqID)
	}
	ra, err := strconv.Atoi(resp2.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Fatalf("Retry-After = %q, want integer in [1,30]", resp2.Header.Get("Retry-After"))
	}
	release()
	<-done
	<-done
}

// TestTraceparentRoundTrip pins W3C trace-context propagation: a valid
// inbound traceparent's trace id is adopted and echoed with the
// daemon's root span id; the retained trace records the remote parent.
func TestTraceparentRoundTrip(t *testing.T) {
	_, ts := testServer(t)
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const parent = "00f067aa0ba902b7"
	inbound := "00-" + traceID + "-" + parent + "-01"

	raw, _ := json.Marshal(map[string]any{
		"source": stencilSrc, "params": map[string]int{"n": 8, "steps": 1}, "procs": 4,
	})
	req, _ := http.NewRequest("POST", ts.URL+"/compile", bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", inbound)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	echoed := resp.Header.Get("Traceparent")
	gotTrace, gotSpan, _, ok := reqtrace.ParseTraceparent(echoed)
	if !ok {
		t.Fatalf("echoed traceparent %q invalid", echoed)
	}
	if gotTrace != traceID {
		t.Fatalf("echoed trace id %q, want %q (adopted)", gotTrace, traceID)
	}
	if gotSpan == parent {
		t.Fatal("echoed span id is the client's parent; want the daemon's root span")
	}

	id := resp.Header.Get("X-Request-Id")
	var rec reqtrace.Record
	getJSON(t, ts.URL+"/debug/flightrecorder/"+id, &rec)
	if rec.TraceID != traceID {
		t.Fatalf("flight record trace id %q, want %q", rec.TraceID, traceID)
	}
	if rec.Trace == nil || rec.Trace.RemoteParent != parent {
		t.Fatalf("flight record remote parent not retained: %+v", rec.Trace)
	}

	// A malformed header is ignored: a fresh valid trace is minted.
	req2, _ := http.NewRequest("POST", ts.URL+"/compile", bytes.NewReader(raw))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("traceparent", "00-zzzz-bad-01")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if _, _, _, ok := reqtrace.ParseTraceparent(resp2.Header.Get("Traceparent")); !ok {
		t.Fatalf("minted traceparent %q invalid", resp2.Header.Get("Traceparent"))
	}
}

// checkPhaseSum asserts the flight-record acceptance criterion: the
// span tree's phase durations sum to the reported wall time within 5%.
func checkPhaseSum(t *testing.T, rec reqtrace.Record) {
	t.Helper()
	if rec.WallUS <= 0 {
		t.Fatalf("record %s has no wall time", rec.ID)
	}
	if len(rec.Phases) == 0 {
		t.Fatalf("record %s has no phases", rec.ID)
	}
	var sum int64
	for _, d := range rec.Phases {
		sum += d
	}
	diff := rec.WallUS - sum
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(rec.WallUS) {
		t.Errorf("record %s: phases sum %dus vs wall %dus (gap %dus > 5%%): %v",
			rec.ID, sum, rec.WallUS, diff, rec.Phases)
	}
}

// TestFlightRecorderResolvesCompile is the tentpole acceptance check:
// for miss, hit AND dedup cache outcomes, the X-Request-Id returned by
// /compile resolves at /debug/flightrecorder/{id} to a span tree whose
// phase durations account for the reported wall time within 5%.
func TestFlightRecorderResolvesCompile(t *testing.T) {
	type barrier struct {
		n  atomic.Int32
		ch chan struct{}
	}
	var hook atomic.Pointer[barrier]
	s := newServer(serverConfig{
		reqTimeout: 30 * time.Second,
		ringSize:   32,
		workers:    2,
		queueDepth: 8,
		logW:       io.Discard,
		logLevel:   obs.LevelError,
	})
	s.testHook = func() {
		b := hook.Load()
		if b == nil {
			return
		}
		if b.n.Add(1) == 2 {
			close(b.ch)
		}
		<-b.ch
	}
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	fetchRecord := func(id string) reqtrace.Record {
		t.Helper()
		var rec reqtrace.Record
		if code := getJSON(t, ts.URL+"/debug/flightrecorder/"+id, &rec); code != http.StatusOK {
			t.Fatalf("flight record %s status = %d", id, code)
		}
		if rec.ID != id || rec.Trace == nil {
			t.Fatalf("flight record %s incomplete: %+v", id, rec)
		}
		return rec
	}

	// Miss and dedup: two identical concurrent requests held at a
	// barrier until both reached a worker, so their cache probes
	// overlap and singleflight coalesces one onto the other. The
	// source is large enough (~80 loop nests) that its compile outlasts
	// a scheduler quantum, so the second goroutine probes mid-compile
	// even on a single CPU; the content hash changes per attempt so a
	// rare non-overlap just retries cleanly.
	var big strings.Builder
	big.WriteString("routine big(n, steps)\nreal a(0:n+1, 0:n+1), b(0:n+1, 0:n+1)\n!hpf$ distribute (block, block) :: a, b\n")
	for k := 0; k < 40; k++ {
		big.WriteString("do i = 1, n\ndo j = 1, n\nb(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))\nenddo\nenddo\n")
		big.WriteString("do i = 1, n\ndo j = 1, n\na(i, j) = b(i, j)\nenddo\nenddo\n")
	}
	big.WriteString("end\n")
	var missRec, dedupRec reqtrace.Record
	var hitBody map[string]any
	found := false
	for attempt := 0; attempt < 5 && !found; attempt++ {
		src := big.String() + fmt.Sprintf("\n! attempt %d\n", attempt)
		body := map[string]any{
			"source": src, "params": map[string]int{"n": 10, "steps": 1},
			"procs": 4, "strategy": "comb",
		}
		hook.Store(&barrier{ch: make(chan struct{})})
		type result struct {
			id   string
			out  compileResponse
			code int
		}
		results := make(chan result, 2)
		for i := 0; i < 2; i++ {
			go func() {
				raw, _ := json.Marshal(body)
				resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(raw))
				if err != nil {
					results <- result{code: -1}
					return
				}
				defer resp.Body.Close()
				var out compileResponse
				_ = json.NewDecoder(resp.Body).Decode(&out)
				results <- result{id: resp.Header.Get("X-Request-Id"), out: out, code: resp.StatusCode}
			}()
		}
		r1, r2 := <-results, <-results
		hook.Store(nil)
		if r1.code != http.StatusOK || r2.code != http.StatusOK {
			t.Fatalf("concurrent compile statuses = %d, %d", r1.code, r2.code)
		}
		outcomes := map[string]result{
			r1.out.Cache.Compile: r1,
			r2.out.Cache.Compile: r2,
		}
		if m, okM := outcomes["miss"]; okM {
			if d, okD := outcomes["dedup"]; okD {
				missRec = fetchRecord(m.id)
				dedupRec = fetchRecord(d.id)
				hitBody = body
				found = true
			}
		}
	}
	if !found {
		t.Fatal("never observed a miss+dedup pair in 5 attempts")
	}
	checkPhaseSum(t, missRec)
	checkPhaseSum(t, dedupRec)
	if missRec.Cache != "miss" || dedupRec.Cache != "dedup" {
		t.Fatalf("record cache outcomes = %q, %q", missRec.Cache, dedupRec.Cache)
	}
	for _, rec := range []reqtrace.Record{missRec, dedupRec} {
		for _, phase := range []string{"ingress", "queue.wait", "compile", "place", "finalize"} {
			if _, ok := rec.Phases[phase]; !ok {
				t.Errorf("record %s missing phase %q: %v", rec.ID, phase, rec.Phases)
			}
		}
	}

	// Hit: repeat the successful request after the dust settles.
	resp, out := postCompile(t, ts, hitBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hit compile status = %d", resp.StatusCode)
	}
	if out.Cache == nil || out.Cache.Compile != "hit" {
		t.Fatalf("expected compile cache hit, got %+v", out.Cache)
	}
	hitRec := fetchRecord(resp.Header.Get("X-Request-Id"))
	checkPhaseSum(t, hitRec)
	if hitRec.Cache != "hit" {
		t.Fatalf("hit record cache = %q", hitRec.Cache)
	}
}

// TestFlightRecorderRetainsErrors pins the slow/errored store: a 400
// lands in the slow listing even though it was fast, and its full
// trace resolves by id.
func TestFlightRecorderRetainsErrors(t *testing.T) {
	_, ts := testServer(t)
	raw, _ := json.Marshal(map[string]any{
		"source": "not hpf at all", "params": map[string]int{}, "procs": 4,
	})
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")

	var listing struct {
		Recent []reqtrace.Record `json:"recent"`
		Slow   []reqtrace.Record `json:"slow"`
		Stats  struct {
			Added    int64 `json:"added"`
			Retained int64 `json:"retained"`
		} `json:"stats"`
	}
	getJSON(t, ts.URL+"/debug/flightrecorder", &listing)
	foundSlow := false
	for _, rec := range listing.Slow {
		if rec.ID == id {
			foundSlow = true
			if rec.Status != http.StatusBadRequest || rec.Error == "" {
				t.Fatalf("retained error record incomplete: %+v", rec)
			}
			if rec.Trace != nil {
				t.Fatal("listing should carry summaries, not span trees")
			}
		}
	}
	if !foundSlow {
		t.Fatalf("errored request %s not in slow store: %+v", id, listing.Slow)
	}
	if listing.Stats.Retained < 1 {
		t.Fatalf("stats retained = %d", listing.Stats.Retained)
	}
	var rec reqtrace.Record
	getJSON(t, ts.URL+"/debug/flightrecorder/"+id, &rec)
	if rec.Trace == nil {
		t.Fatal("by-id fetch lost the span tree")
	}
}

// TestBatchItemsInFlightRecorder checks batch items are individually
// retained, joined to the batch by attribute and trace id.
func TestBatchItemsInFlightRecorder(t *testing.T) {
	_, ts := testServer(t)
	resp, out := postBatch(t, ts, []map[string]any{
		{"source": stencilSrc, "params": map[string]int{"n": 8, "steps": 1}, "procs": 4},
		{"source": stencilSrc, "params": map[string]int{"n": 9, "steps": 1}, "procs": 4},
	})
	if resp.StatusCode != http.StatusOK || out.Succeeded != 2 {
		t.Fatalf("batch status = %d, succeeded = %d", resp.StatusCode, out.Succeeded)
	}
	batchID := resp.Header.Get("X-Request-Id")
	for _, item := range out.Items {
		var rec reqtrace.Record
		if code := getJSON(t, ts.URL+"/debug/flightrecorder/"+item.ReqID, &rec); code != http.StatusOK {
			t.Fatalf("batch item %s not in flight recorder", item.ReqID)
		}
		if rec.Route != "/compile/batch" {
			t.Fatalf("batch item route = %q", rec.Route)
		}
		if rec.Trace.Root.Attrs["batch"] != batchID {
			t.Fatalf("batch item %s not linked to batch %s: %v",
				item.ReqID, batchID, rec.Trace.Root.Attrs)
		}
		checkPhaseSum(t, rec)
	}
}

// TestLiveSSE is the live-view acceptance check: a plain net/http
// client receives at least three consecutive parseable snapshots while
// compile traffic runs concurrently (exercised under -race).
func TestLiveSSE(t *testing.T) {
	s := newServer(serverConfig{
		reqTimeout:   30 * time.Second,
		ringSize:     8,
		liveInterval: 5 * time.Millisecond,
		logW:         io.Discard,
		logLevel:     obs.LevelError,
	})
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				raw, _ := json.Marshal(map[string]any{
					"source": stencilSrc,
					"params": map[string]int{"n": 8 + (i+w)%4, "steps": 1}, "procs": 4,
				})
				resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(raw))
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}

	resp, err := http.Get(ts.URL + "/debug/live?n=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	var docs []liveDoc
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var doc liveDoc
		if err := json.Unmarshal([]byte(line[len("data: "):]), &doc); err != nil {
			t.Fatalf("snapshot not JSON: %v\n%s", err, line)
		}
		docs = append(docs, doc)
	}
	close(stop)
	wg.Wait()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(docs) < 3 {
		t.Fatalf("got %d snapshots, want >= 3", len(docs))
	}
	last := docs[len(docs)-1]
	if last.UnixNS <= docs[0].UnixNS {
		t.Fatal("snapshots not advancing in time")
	}
	if last.Version == "" || last.Codes == nil {
		t.Fatalf("snapshot incomplete: %+v", last)
	}
	// The stream itself appears in the route stats by the later
	// snapshots, as does the compile traffic.
	foundCompile := false
	for _, r := range last.Routes {
		if r.Route == "/compile" && r.Count > 0 && r.P99ms >= r.P50ms {
			foundCompile = true
		}
	}
	if !foundCompile {
		t.Fatalf("live snapshot missing /compile route stats: %+v", last.Routes)
	}
}

// TestQueueWaitHistogram saturates a one-worker pool and checks the
// queue-wait family renders with monotone cumulative buckets and a
// nonzero count once jobs have drained.
func TestQueueWaitHistogram(t *testing.T) {
	s, ts, release := blockingServer(t)
	done := make(chan int, 2)
	saturate(t, s, ts, done)
	time.Sleep(30 * time.Millisecond) // let the queued job accrue wait
	release()
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("blocked request finished with %d", code)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckPromText(text); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	var bucketVals []float64
	var count float64
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, `gcao_queue_wait_seconds_bucket{pool="compile"`) {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("bad bucket line %q", line)
			}
			bucketVals = append(bucketVals, v)
		}
		if strings.HasPrefix(line, `gcao_queue_wait_seconds_count{pool="compile"`) {
			fields := strings.Fields(line)
			count, _ = strconv.ParseFloat(fields[len(fields)-1], 64)
		}
	}
	if len(bucketVals) == 0 || count < 2 {
		t.Fatalf("queue wait family missing: %d buckets, count %v", len(bucketVals), count)
	}
	for i := 1; i < len(bucketVals); i++ {
		if bucketVals[i] < bucketVals[i-1] {
			t.Fatalf("cumulative buckets not monotone: %v", bucketVals)
		}
	}
	if bucketVals[len(bucketVals)-1] != count {
		t.Fatalf("+Inf bucket %v != count %v", bucketVals[len(bucketVals)-1], count)
	}
}

// TestBuildInfoAndHTTPMetrics checks gcao_build_info and the RED
// families appear in a valid exposition after traffic.
func TestBuildInfoAndHTTPMetrics(t *testing.T) {
	_, ts := testServer(t)
	resp, _ := postCompile(t, ts, map[string]any{
		"source": stencilSrc, "params": map[string]int{"n": 8, "steps": 1}, "procs": 4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckPromText(text); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{
		"gcao_build_info{version=\"dev\"} 1",
		"gcao_http_requests_total{code=\"200\",route=\"/compile\"} 1",
		"gcao_http_request_seconds_bucket{route=\"/compile\",le=\"+Inf\"} 1",
		"gcao_http_inflight 1", // the /metrics request itself
		"gcao_pool_workers",
		"gcao_sched_jobs_total{outcome=\"completed\"} 1",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestRouteLabelBounded pins the label normalizer so client-controlled
// paths cannot mint unbounded label values.
func TestRouteLabelBounded(t *testing.T) {
	cases := map[string]string{
		"/compile":                     "/compile",
		"/compile/batch":               "/compile/batch",
		"/debug/decisions/r000001":     "/debug/decisions/{id}",
		"/debug/critpath/r000002":      "/debug/critpath/{id}",
		"/debug/flightrecorder/r00003": "/debug/flightrecorder/{id}",
		"/debug/pprof/heap":            "/debug/pprof",
		"/debug/live":                  "/debug/live",
		"/nonsense/../path":            "other",
		"/":                            "other",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}
