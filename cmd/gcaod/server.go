package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"gcao"
	"gcao/internal/obs"
)

// serverConfig are the daemon's tunables; main fills them from flags,
// tests construct them directly.
type serverConfig struct {
	// reqTimeout bounds one /compile request end to end.
	reqTimeout time.Duration
	// ringSize bounds the retained per-request decision logs.
	ringSize int
	// maxBody bounds a /compile request body in bytes.
	maxBody int64
	// logW + logLevel configure the structured event log.
	logW     io.Writer
	logLevel obs.Level
}

// server is the gcaod daemon state: one process-global metrics
// registry every request is absorbed into, a bounded ring of recent
// request decision logs, the structured event log, and a request
// sequence for ids.
type server struct {
	cfg   serverConfig
	reg   *gcao.Registry
	ring  *obs.DecisionRing
	log   *gcao.Logger
	start time.Time
	seq   atomic.Int64
}

func newServer(cfg serverConfig) *server {
	if cfg.reqTimeout <= 0 {
		cfg.reqTimeout = 30 * time.Second
	}
	if cfg.ringSize <= 0 {
		cfg.ringSize = 256
	}
	if cfg.maxBody <= 0 {
		cfg.maxBody = 4 << 20
	}
	var log *gcao.Logger
	if cfg.logW != nil {
		log = gcao.NewLogger(cfg.logW, cfg.logLevel)
	}
	return &server{
		cfg:   cfg,
		reg:   gcao.NewRegistry(),
		ring:  obs.NewDecisionRing(cfg.ringSize),
		log:   log,
		start: time.Now(),
	}
}

// handler builds the daemon's route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /compile", http.TimeoutHandler(
		http.HandlerFunc(s.handleCompile), s.cfg.reqTimeout,
		`{"error":"compile timed out"}`))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/decisions", s.handleDecisionList)
	mux.HandleFunc("GET /debug/decisions/{id}", s.handleDecisions)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// compileRequest is the POST /compile body.
type compileRequest struct {
	// Source is the mini-HPF text; Main selects the entry routine of a
	// multi-routine program (empty: Source is a single routine).
	Source string `json:"source"`
	Main   string `json:"main,omitempty"`
	// Params binds the routine's integer parameters; Procs is the
	// processor count.
	Params map[string]int `json:"params"`
	Procs  int            `json:"procs"`
	// Strategy is "orig", "nored" or "comb" (default comb); Machine is
	// "SP2" or "NOW" (default SP2).
	Strategy string `json:"strategy,omitempty"`
	Machine  string `json:"machine,omitempty"`
	// Estimate adds the analytic cost model's verdict; Simulate runs
	// the functional simulator (small instances only — it executes the
	// program) and fills the communication profile.
	Estimate bool `json:"estimate,omitempty"`
	Simulate bool `json:"simulate,omitempty"`
}

// compileResponse is the POST /compile result: the placement report
// plus the request's full metrics document.
type compileResponse struct {
	ReqID    string         `json:"req_id"`
	Strategy string         `json:"strategy"`
	Machine  string         `json:"machine"`
	Messages int            `json:"messages"`
	Counts   map[string]int `json:"counts"`
	Estimate *estimateDoc   `json:"estimate,omitempty"`
	Simulate *simulateDoc   `json:"simulate,omitempty"`
	Metrics  obs.MetricsDoc `json:"metrics"`
}

type estimateDoc struct {
	CPUSeconds float64 `json:"cpu_seconds"`
	NetSeconds float64 `json:"net_seconds"`
	Messages   float64 `json:"messages"`
	Bytes      float64 `json:"bytes"`
}

type simulateDoc struct {
	DynMessages int   `json:"dyn_messages"`
	BytesMoved  int64 `json:"bytes_moved"`
	Barriers    int   `json:"barriers"`
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	id := fmt.Sprintf("r%06d", s.seq.Add(1))
	t0 := time.Now()
	rec := obs.New()
	resp, err := s.compile(id, rec, r)
	status := "ok"
	if err != nil {
		status = "error"
	}
	s.reg.Absorb(rec, status)
	record := obs.RequestRecord{
		ID:       id,
		UnixNS:   t0.UnixNano(),
		Status:   status,
		Decision: rec.Decisions(),
		Counters: rec.Counters(),
	}
	if resp != nil {
		record.Strategy = resp.Strategy
	}
	if err != nil {
		record.Error = err.Error()
	}
	s.ring.Add(record)
	s.log.Info("http.compile",
		obs.F("req", id), obs.F("status", status),
		obs.F("dur_us", time.Since(t0).Microseconds()))
	if err != nil {
		writeJSON(w, httpStatus(err), map[string]string{"req_id": id, "error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// badRequestError marks client-side failures (malformed body, unknown
// strategy/machine, source that does not compile).
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func httpStatus(err error) int {
	var bad badRequestError
	if errors.As(err, &bad) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// compile runs one request through the public pipeline API with a
// request-scoped recorder attached.
func (s *server) compile(id string, rec *obs.Recorder, r *http.Request) (*compileResponse, error) {
	var req compileRequest
	body := http.MaxBytesReader(nil, r.Body, s.cfg.maxBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		return nil, badRequestError{fmt.Errorf("decoding request: %w", err)}
	}
	strategy, err := gcao.StrategyByName(req.Strategy)
	if err != nil {
		return nil, badRequestError{err}
	}
	machineName := req.Machine
	if machineName == "" {
		machineName = "SP2"
	}
	m, err := gcao.MachineByName(machineName)
	if err != nil {
		return nil, badRequestError{err}
	}
	cfg := gcao.Config{
		Params: req.Params,
		Procs:  req.Procs,
		Obs:    rec,
		Log:    s.log,
		ReqID:  id,
	}
	var c *gcao.Compilation
	if req.Main != "" {
		c, err = gcao.CompileProgram(req.Source, req.Main, cfg)
	} else {
		c, err = gcao.Compile(req.Source, cfg)
	}
	if err != nil {
		return nil, badRequestError{err}
	}
	placed, err := c.Place(strategy)
	if err != nil {
		return nil, badRequestError{err}
	}
	resp := &compileResponse{
		ReqID:    id,
		Strategy: strategy.String(),
		Machine:  m.Name,
		Messages: placed.Messages(),
		Counts:   map[string]int{},
	}
	for kind, n := range placed.MessageCounts() {
		resp.Counts[kind.String()] = n
	}
	if req.Estimate {
		cost, err := placed.Estimate(m)
		if err != nil {
			return nil, badRequestError{fmt.Errorf("estimate: %w", err)}
		}
		resp.Estimate = &estimateDoc{
			CPUSeconds: cost.CPU, NetSeconds: cost.Net,
			Messages: cost.Messages, Bytes: cost.Bytes,
		}
		// Estimate-only requests still feed the bytes-moved histogram.
		s.reg.ObserveBytes(strategy.String(), cost.Bytes)
	}
	if req.Simulate {
		procs := c.Analysis.Unit.Grid.NumProcs()
		run, err := placed.Simulate(m, procs)
		if err != nil {
			return nil, badRequestError{fmt.Errorf("simulate: %w", err)}
		}
		resp.Simulate = &simulateDoc{
			DynMessages: run.Ledger.DynMessages,
			BytesMoved:  int64(run.Ledger.BytesMoved),
			Barriers:    run.Ledger.Barriers,
		}
	}
	resp.Metrics = rec.Doc()
	return resp, nil
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.Error("http.metrics", obs.F("err", err.Error()))
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"requests":       s.reg.Requests(),
	})
}

func (s *server) handleDecisionList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ids": s.ring.IDs()})
}

func (s *server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.ring.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no retained request " + id})
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
